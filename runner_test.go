package ccsvm_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"ccsvm"
)

// TestRunSpecStringIncludesTag is the regression test for indistinguishable
// sweep rows: two specs that differ only by Tag (the preset/override
// identity) must stringify differently so Runner.Run error messages identify
// the exact failing run.
func TestRunSpecStringIncludesTag(t *testing.T) {
	base := ccsvm.RunSpec{Workload: "matmul", System: smallSystem(t, ccsvm.SystemCCSVM), Params: ccsvm.Params{N: 16, Seed: 1}}
	wide := base
	wide.Tag = "ccsvm-wide"
	if base.String() == wide.String() {
		t.Fatalf("specs differing only by Tag stringify identically: %s", base)
	}
	if !strings.Contains(wide.String(), "ccsvm-wide") {
		t.Fatalf("String() = %q, want the tag in it", wide.String())
	}
	if strings.Contains(base.String(), "tag=") {
		t.Fatalf("untagged String() = %q, should omit the tag field", base.String())
	}
}

// failingSink errors on chosen Emit indices and optionally on Close, to
// exercise the Runner's error joining.
type failingSink struct {
	failEmitAt int // Emit index to fail at; -1 disables
	failClose  bool
	emits      int
	closed     bool
}

func (s *failingSink) Emit(ccsvm.RunResult) error {
	i := s.emits
	s.emits++
	if i == s.failEmitAt {
		return fmt.Errorf("emit %d exploded", i)
	}
	return nil
}

func (s *failingSink) Close() error {
	s.closed = true
	if s.failClose {
		return errors.New("close exploded")
	}
	return nil
}

// TestRunnerJoinsSinkAndRunErrors checks every failure path of Runner.Run at
// once: a failing run, a failing sink Emit, and a failing sink Close must all
// surface in the joined error, while healthy sinks still see every result.
func TestRunnerJoinsSinkAndRunErrors(t *testing.T) {
	specs := []ccsvm.RunSpec{
		{Workload: "vectoradd", System: smallSystem(t, ccsvm.SystemCCSVM), Params: tinyParams("vectoradd")},
		{Workload: "no-such-workload", System: smallSystem(t, ccsvm.SystemCPU), Params: ccsvm.Params{N: 4}, Tag: "bad-row"},
		{Workload: "sparse", System: smallSystem(t, ccsvm.SystemCCSVM), Params: tinyParams("sparse")},
	}
	bad := &failingSink{failEmitAt: 0, failClose: true}
	good := &failingSink{failEmitAt: -1}
	runner := &ccsvm.Runner{Parallel: 2, Sinks: []ccsvm.Sink{bad, good}}
	res, err := runner.Run(specs)
	if err == nil {
		t.Fatal("Run returned nil error despite run, emit, and close failures")
	}
	for _, want := range []string{"no-such-workload", "bad-row", "emit 0 exploded", "close exploded"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error %q missing %q", err, want)
		}
	}
	// A sink error must not derail the stream: both sinks see all results,
	// in order, and are closed.
	if bad.emits != len(specs) || good.emits != len(specs) {
		t.Errorf("sinks saw %d/%d emits, want %d each", bad.emits, good.emits, len(specs))
	}
	if !bad.closed || !good.closed {
		t.Error("sinks not closed after the sweep")
	}
	// The results slice stays complete, with the failure attached in place.
	if len(res) != len(specs) || res[1].Err == nil || res[0].Err != nil || res[2].Err != nil {
		t.Errorf("unexpected result errors: %+v", res)
	}
}

// TestRunnerCloseErrorWithoutRunErrors checks that a Close failure alone
// surfaces even when every run succeeds.
func TestRunnerCloseErrorWithoutRunErrors(t *testing.T) {
	sink := &failingSink{failEmitAt: -1, failClose: true}
	runner := &ccsvm.Runner{Sinks: []ccsvm.Sink{sink}}
	if _, err := runner.Run([]ccsvm.RunSpec{
		{Workload: "vectoradd", System: smallSystem(t, ccsvm.SystemCCSVM), Params: tinyParams("vectoradd")},
	}); err == nil || !strings.Contains(err.Error(), "close exploded") {
		t.Fatalf("err = %v, want the sink close failure", err)
	}
}

// TestRunnerOrderedStreamingWithFailures requires sink output to stay
// byte-identical between Parallel=1 and Parallel=4 when some runs fail:
// failed rows stream in spec order like any other row.
func TestRunnerOrderedStreamingWithFailures(t *testing.T) {
	var specs []ccsvm.RunSpec
	for i := 0; i < 4; i++ {
		specs = append(specs,
			ccsvm.RunSpec{Workload: "vectoradd", System: smallSystem(t, ccsvm.SystemCCSVM), Params: tinyParams("vectoradd"), Tag: fmt.Sprintf("row%d", i)},
			ccsvm.RunSpec{Workload: "no-such-workload", System: smallSystem(t, ccsvm.SystemCPU), Params: ccsvm.Params{N: 4}, Tag: fmt.Sprintf("fail%d", i)},
		)
	}
	run := func(parallel int) (string, string) {
		var jsonl bytes.Buffer
		runner := &ccsvm.Runner{Parallel: parallel, Sinks: []ccsvm.Sink{ccsvm.NewJSONLSink(&jsonl)}}
		_, err := runner.Run(specs)
		if err == nil {
			t.Fatal("expected a joined error from the failing rows")
		}
		return jsonl.String(), err.Error()
	}
	seqOut, seqErr := run(1)
	parOut, parErr := run(4)
	if seqOut != parOut {
		t.Errorf("JSONL output differs between parallel=1 and parallel=4:\n--- seq\n%s\n--- par\n%s", seqOut, parOut)
	}
	if seqErr != parErr {
		t.Errorf("joined error differs between parallel=1 and parallel=4:\nseq: %s\npar: %s", seqErr, parErr)
	}
}

// TestResultsBitIdenticalAcrossRuns is the pooling determinism regression
// test: event and message recycling must not perturb simulated timing or
// metrics, so re-running any (workload, system) pair yields a bit-identical
// Result — including the full per-run metrics map.
func TestResultsBitIdenticalAcrossRuns(t *testing.T) {
	for _, w := range ccsvm.Workloads() {
		for _, kind := range w.SystemKinds() {
			t.Run(w.Name+"/"+string(kind), func(t *testing.T) {
				t.Parallel()
				p := tinyParams(w.Name)
				a, err := w.Run(smallSystem(t, kind), p)
				if err != nil {
					t.Fatal(err)
				}
				b, err := w.Run(smallSystem(t, kind), p)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("repeated run not bit-identical:\nfirst:  %+v\nsecond: %+v", a, b)
				}
				if len(a.Metrics) == 0 {
					t.Fatal("result carries no metrics; the comparison proved nothing")
				}
			})
		}
	}
}

// TestRunnerArenaReuse is the worker-reuse acceptance criterion: a sweep
// whose workers recycle machine parts across runs (the Runner default) must
// produce byte-identical JSONL — every simulated time, metric and trace hash
// — to a fresh-machine-per-run sweep, at any Parallel setting. Fresh machines
// are expressed as a brand-new arena per spec, so no run inherits another's
// engine, memory, or message populations.
func TestRunnerArenaReuse(t *testing.T) {
	specs := ccsvm.Pairs(ccsvm.DefaultParams())
	sweep := func(parallel int, freshPerRun bool) string {
		t.Helper()
		batch := make([]ccsvm.RunSpec, len(specs))
		copy(batch, specs)
		if freshPerRun {
			for i := range batch {
				batch[i].System.Arena = ccsvm.NewArena()
			}
		}
		var buf bytes.Buffer
		r := &ccsvm.Runner{Parallel: parallel, Sinks: []ccsvm.Sink{ccsvm.NewJSONLSink(&buf)}}
		if _, err := r.Run(batch); err != nil {
			t.Fatalf("sweep (parallel=%d, fresh=%v): %v", parallel, freshPerRun, err)
		}
		return buf.String()
	}

	fresh := sweep(1, true)
	if fresh == "" {
		t.Fatal("fresh sweep produced no JSONL; the comparison would prove nothing")
	}
	for _, parallel := range []int{1, 4, 8} {
		if got := sweep(parallel, false); got != fresh {
			t.Errorf("arena-reuse sweep at parallel=%d differs from fresh-machine sweep:\n--- fresh\n%s\n--- reused\n%s",
				parallel, fresh, got)
		}
	}
}

// TestRunnerCacheByteIdentityAllPairs is the service acceptance criterion
// stated end to end: for EVERY registered (workload, system) pair at
// paper-default parameters, the Result served from the cache is
// byte-identical (canonical JSON and reflect.DeepEqual) to a freshly
// simulated one — through a persistent cache directory, so the comparison
// also covers the disk encode/decode round trip.
func TestRunnerCacheByteIdentityAllPairs(t *testing.T) {
	specs := ccsvm.Pairs(ccsvm.DefaultParams())
	// The coherence-protocol dimension must round-trip the cache too: every
	// pair above runs the default MOESI table, so add MESI runs reached both
	// through the preset and through an explicit override (their specs hash
	// differently from every MOESI pair, so the store count below still holds).
	for _, in := range []struct{ workload, preset, override string }{
		{workload: "matmul", preset: "ccsvm-base-mesi"},
		{workload: "barneshut", override: "ccsvm.coherence.protocol=mesi"},
	} {
		var overrides []string
		if in.override != "" {
			overrides = []string{in.override}
		}
		spec, err := ccsvm.BuildSpec(in.workload, ccsvm.SystemCCSVM, in.preset, overrides, ccsvm.DefaultParams())
		if err != nil {
			t.Fatalf("BuildSpec mesi leg %+v: %v", in, err)
		}
		specs = append(specs, spec)
	}

	fresh, err := (&ccsvm.Runner{Parallel: 4}).Run(specs)
	if err != nil {
		t.Fatalf("uncached baseline sweep: %v", err)
	}

	cache, err := ccsvm.NewCache(ccsvm.CacheOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	warm := &ccsvm.Runner{Parallel: 4, Cache: cache}
	first, err := warm.Run(specs)
	if err != nil {
		t.Fatalf("cache-filling sweep: %v", err)
	}
	second, err := warm.Run(specs)
	if err != nil {
		t.Fatalf("cache-served sweep: %v", err)
	}

	for i, spec := range specs {
		if first[i].Cached {
			t.Errorf("%s: first run claims to be cached", spec)
		}
		if !second[i].Cached {
			t.Errorf("%s: second run was not served from the cache", spec)
		}
		if !reflect.DeepEqual(second[i].Result, fresh[i].Result) {
			t.Errorf("%s: cached Result differs from fresh simulation:\ncached %+v\nfresh  %+v",
				spec, second[i].Result, fresh[i].Result)
			continue
		}
		cachedJSON, err := json.Marshal(second[i].Result)
		if err != nil {
			t.Fatal(err)
		}
		freshJSON, err := json.Marshal(fresh[i].Result)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(cachedJSON, freshJSON) {
			t.Errorf("%s: cached Result not byte-identical to fresh:\ncached %s\nfresh  %s",
				spec, cachedJSON, freshJSON)
		}
	}

	s := cache.Stats()
	if int(s.Stores) != len(specs) {
		t.Errorf("cache stored %d results for %d specs", s.Stores, len(specs))
	}
	if int(s.MemHits+s.DiskHits) != len(specs) {
		t.Errorf("second sweep produced %d+%d cache hits for %d specs", s.MemHits, s.DiskHits, len(specs))
	}
}
