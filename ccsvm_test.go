package ccsvm_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"ccsvm"
	"ccsvm/internal/apu"
	"ccsvm/internal/core"
)

// smallSystem builds a fast, small-chip variant of the named system for
// tests, mirroring the small configs the workload tests use.
func smallSystem(t *testing.T, kind ccsvm.SystemKind) ccsvm.System {
	t.Helper()
	if kind == ccsvm.SystemCCSVM {
		return ccsvm.CCSVMSystem(core.SmallConfig())
	}
	cfg := apu.DefaultConfig()
	cfg.GPUContextsPerUnit = 64
	switch kind {
	case ccsvm.SystemCPU:
		return ccsvm.CPUSystem(cfg)
	case ccsvm.SystemOpenCL:
		return ccsvm.OpenCLSystem(cfg)
	case ccsvm.SystemPthreads:
		return ccsvm.PthreadsSystem(cfg)
	}
	t.Fatalf("unknown kind %q", kind)
	return ccsvm.System{}
}

// tinyParams returns a problem size each workload completes quickly at on the
// small chips.
func tinyParams(workload string) ccsvm.Params {
	p := ccsvm.Params{Seed: 7, Density: 0.05}
	switch workload {
	case "matmul":
		p.N = 12
	case "apsp":
		p.N = 10
	case "barneshut":
		p.N = 48
	case "sparse":
		p.N = 24
	case "vectoradd":
		p.N = 32
	default:
		p.N = 8
	}
	return p
}

func TestRegistryEnumeratesPaperWorkloads(t *testing.T) {
	want := []string{"apsp", "barneshut", "matmul", "sparse", "vectoradd"}
	var got []string
	for _, w := range ccsvm.Workloads() {
		got = append(got, w.Name)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Workloads() = %v, want %v", got, want)
	}
	if len(ccsvm.Systems()) != 4 {
		t.Fatalf("Systems() = %v, want 4 kinds", ccsvm.Systems())
	}
	if _, ok := ccsvm.Lookup("nope"); ok {
		t.Fatal("Lookup of unregistered workload succeeded")
	}
	if _, err := ccsvm.NewSystem("riscv"); err == nil {
		t.Fatal("NewSystem of unknown kind succeeded")
	}
}

// TestEveryRegisteredPairRuns runs each registered (workload, system) pair at
// a tiny size and requires a verified, non-zero-time result.
func TestEveryRegisteredPairRuns(t *testing.T) {
	for _, w := range ccsvm.Workloads() {
		for _, kind := range w.SystemKinds() {
			t.Run(w.Name+"/"+string(kind), func(t *testing.T) {
				t.Parallel()
				r, err := w.Run(smallSystem(t, kind), tinyParams(w.Name))
				if err != nil {
					t.Fatal(err)
				}
				if !r.Checked || r.Time <= 0 {
					t.Fatalf("result not checked or zero time: %v", r)
				}
			})
		}
	}
}

func TestUnsupportedPairs(t *testing.T) {
	cases := []struct {
		workload string
		kind     ccsvm.SystemKind
	}{
		{"matmul", ccsvm.SystemPthreads},
		{"apsp", ccsvm.SystemPthreads},
		{"sparse", ccsvm.SystemOpenCL},
		{"sparse", ccsvm.SystemPthreads},
		{"vectoradd", ccsvm.SystemCPU},
		{"barneshut", ccsvm.SystemOpenCL},
	}
	for _, c := range cases {
		w, ok := ccsvm.Lookup(c.workload)
		if !ok {
			t.Fatalf("workload %q not registered", c.workload)
		}
		if w.Supports(c.kind) {
			t.Errorf("%s unexpectedly supports %s", c.workload, c.kind)
			continue
		}
		_, err := w.Run(smallSystem(t, c.kind), tinyParams(c.workload))
		if !errors.Is(err, ccsvm.ErrUnsupportedPair) {
			t.Errorf("%s on %s: err = %v, want ErrUnsupportedPair", c.workload, c.kind, err)
		}
	}
}

// sweepSpecs is a mixed sweep that exercises every workload, used by the
// determinism and sink tests.
func sweepSpecs(t *testing.T) []ccsvm.RunSpec {
	var specs []ccsvm.RunSpec
	for _, w := range ccsvm.Workloads() {
		for _, kind := range w.SystemKinds() {
			specs = append(specs, ccsvm.RunSpec{
				Workload: w.Name,
				System:   smallSystem(t, kind),
				Params:   tinyParams(w.Name),
				Tag:      "sweep",
			})
		}
	}
	return specs
}

// TestRunnerParallelDeterminism requires a parallel=4 sweep to produce
// bit-identical results and byte-identical sink output to parallel=1.
func TestRunnerParallelDeterminism(t *testing.T) {
	specs := sweepSpecs(t)
	var seqJSON, parJSON bytes.Buffer

	seqRunner := &ccsvm.Runner{Parallel: 1, Sinks: []ccsvm.Sink{ccsvm.NewJSONLSink(&seqJSON)}}
	seq, err := seqRunner.Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	parRunner := &ccsvm.Runner{Parallel: 4, Sinks: []ccsvm.Sink{ccsvm.NewJSONLSink(&parJSON)}}
	par, err := parRunner.Run(specs)
	if err != nil {
		t.Fatal(err)
	}

	if len(seq) != len(specs) || len(par) != len(specs) {
		t.Fatalf("result counts: seq=%d par=%d, want %d", len(seq), len(par), len(specs))
	}
	for i := range seq {
		if !reflect.DeepEqual(seq[i].Result, par[i].Result) {
			t.Errorf("spec %v: parallel result %+v differs from sequential %+v",
				specs[i], par[i].Result, seq[i].Result)
		}
	}
	if !bytes.Equal(seqJSON.Bytes(), parJSON.Bytes()) {
		t.Error("JSONL sink output differs between parallel=1 and parallel=4")
	}
}

func TestRunnerErrorsAndSinks(t *testing.T) {
	var jsonl, text bytes.Buffer
	specs := []ccsvm.RunSpec{
		{Workload: "vectoradd", System: smallSystem(t, ccsvm.SystemCCSVM), Params: tinyParams("vectoradd")},
		{Workload: "sparse", System: smallSystem(t, ccsvm.SystemOpenCL), Params: tinyParams("sparse")},
		{Workload: "no-such-workload", System: smallSystem(t, ccsvm.SystemCPU), Params: ccsvm.Params{N: 4}},
	}
	runner := &ccsvm.Runner{Parallel: 2, Sinks: []ccsvm.Sink{
		ccsvm.NewJSONLSink(&jsonl),
		ccsvm.NewTextSink(&text, "error sweep"),
	}}
	res, err := runner.Run(specs)
	if err == nil {
		t.Fatal("Run with failing specs returned nil error")
	}
	if !errors.Is(err, ccsvm.ErrUnsupportedPair) {
		t.Errorf("joined error %v should wrap ErrUnsupportedPair", err)
	}
	if res[0].Err != nil || !res[0].Result.Checked {
		t.Errorf("good spec failed: %+v", res[0])
	}
	if !errors.Is(res[1].Err, ccsvm.ErrUnsupportedPair) {
		t.Errorf("res[1].Err = %v, want ErrUnsupportedPair", res[1].Err)
	}
	if res[2].Err == nil {
		t.Error("unknown workload produced no error")
	}

	lines := strings.Split(strings.TrimSpace(jsonl.String()), "\n")
	if len(lines) != len(specs) {
		t.Fatalf("JSONL emitted %d lines, want %d", len(lines), len(specs))
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("JSONL line not valid JSON: %v", err)
	}
	if rec["workload"] != "vectoradd" || rec["checked"] != true {
		t.Errorf("unexpected JSONL record: %v", rec)
	}
	if !strings.Contains(text.String(), "vectoradd") || !strings.Contains(text.String(), "error sweep") {
		t.Errorf("text sink output missing rows:\n%s", text.String())
	}
}

func TestPairsEnumeration(t *testing.T) {
	specs := ccsvm.Pairs(ccsvm.DefaultParams())
	// 5 workloads x their supported systems: matmul/apsp 3 each, barneshut 3,
	// sparse 2, vectoradd 2.
	if len(specs) != 13 {
		t.Fatalf("Pairs() = %d specs, want 13", len(specs))
	}
	for _, s := range specs {
		w, ok := ccsvm.Lookup(s.Workload)
		if !ok || !w.Supports(s.System.Kind) {
			t.Errorf("Pairs() emitted unresolvable spec %v", s)
		}
	}
}
