package ccsvm

import (
	"fmt"

	"ccsvm/internal/apu"
	"ccsvm/internal/coherence"
	"ccsvm/internal/core"
	"ccsvm/internal/simarena"
	"ccsvm/internal/workloads"
)

// The facade re-exports the simulator's workload/system model so that every
// consumer — cmd/ccsvm-sim, cmd/paper-figs, the benchmarks, the examples, and
// library users — resolves (workload, system) pairs through one registry
// instead of hand-enumerating them. Importing this package is enough to
// populate the registry: the five workload files in internal/workloads
// register themselves at init time.
type (
	// System is one runnable machine model (kind + chip configuration).
	System = workloads.System
	// SystemKind names a machine model variant.
	SystemKind = workloads.SystemKind
	// Params is the parameter schema every workload draws from.
	Params = workloads.Params
	// Workload is a registered benchmark with per-system implementations.
	Workload = workloads.Workload
	// RunFunc is one workload implementation for one system kind.
	RunFunc = workloads.RunFunc
	// Result is the outcome of one run: measured simulated time, off-chip
	// traffic, and whether the functional output was verified.
	Result = workloads.Result
	// Arena recycles machine parts (event engine, physical memory, message
	// pools) across the runs of one worker; set System.Arena to use it. See
	// internal/simarena for the reuse contract.
	Arena = simarena.Arena
)

// NewArena returns an empty machine-part arena for a single worker's runs.
func NewArena() *Arena { return simarena.New() }

// The four systems of the paper's evaluation.
const (
	SystemCCSVM    = workloads.SystemCCSVM
	SystemCPU      = workloads.SystemCPU
	SystemOpenCL   = workloads.SystemOpenCL
	SystemPthreads = workloads.SystemPthreads
)

// ErrUnsupportedPair is returned (wrapped) by Workload.Run and Runner.Run for
// a (workload, system) pair with no implementation.
var ErrUnsupportedPair = workloads.ErrUnsupportedPair

// Design-space exploration: named machine presets and dotted-path parameter
// overrides (see ARCHITECTURE.md, "Sweeping the design space").
type (
	// Preset is a named, documented variant of one machine's configuration.
	Preset = workloads.Preset
	// MachineKind names one of the two simulated chips ("ccsvm" or "apu").
	MachineKind = workloads.MachineKind
	// OverrideError reports a failed parameter override with its dotted
	// path, offending value, and a sentinel classifying the failure.
	OverrideError = workloads.OverrideError
)

// The two machines of the paper's comparison.
const (
	MachineCCSVM = workloads.MachineCCSVM
	MachineAPU   = workloads.MachineAPU
)

// Typed failures of the override layer, matched with errors.Is.
var (
	// ErrUnknownPath reports a dotted path that names no configuration field.
	ErrUnknownPath = workloads.ErrUnknownPath
	// ErrBadValue reports a value that does not parse as the field's type.
	ErrBadValue = workloads.ErrBadValue
	// ErrOutOfRange reports a value that leaves the configuration invalid.
	ErrOutOfRange = workloads.ErrOutOfRange
	// ErrMachineMismatch reports a preset or override applied to a system
	// that runs on the other machine.
	ErrMachineMismatch = workloads.ErrMachineMismatch
)

// RegisterPreset adds a machine preset to the registry. The built-in presets
// register themselves; external packages may add more before running sweeps.
func RegisterPreset(p Preset) { workloads.RegisterPreset(p) }

// LookupPreset finds a registered preset by name; the result is a copy, so
// mutating it never affects the registry.
func LookupPreset(name string) (Preset, bool) { return workloads.LookupPreset(name) }

// Presets returns every registered machine preset sorted by name.
func Presets() []Preset { return workloads.Presets() }

// Protocols lists the registered coherence protocol names in registry order —
// the legal values of the ccsvm.Coherence.Protocol override path and the
// memtest/stress -protocol flag.
func Protocols() []string { return coherence.ProtocolNames() }

// LookupPresetSystem builds a runnable System of the given kind from the
// named preset — the one-call path the CLIs use. Unknown presets are a plain
// error; a kind on the wrong machine wraps ErrMachineMismatch.
func LookupPresetSystem(name string, kind SystemKind) (System, error) {
	p, ok := workloads.LookupPreset(name)
	if !ok {
		return System{}, fmt.Errorf("unknown preset %q (see Presets or ccsvm-sim -list)", name)
	}
	return p.System(kind)
}

// Override assigns one configuration field of the system by dotted path
// ("ccsvm.MTTOPIssueWidth", "apu.OpenCL.KernelLaunch"). Failures are typed:
// ErrUnknownPath, ErrBadValue, ErrOutOfRange, or ErrMachineMismatch.
func Override(sys *System, path, value string) error { return workloads.Set(sys, path, value) }

// ApplyOverrides applies "path=value" assignments in order, stopping at the
// first failure.
func ApplyOverrides(sys *System, assignments []string) error {
	return workloads.Apply(sys, assignments)
}

// OverridePaths enumerates every settable dotted path of a machine's
// configuration, suffixed with its type.
func OverridePaths(machine MachineKind) []string { return workloads.OverridePaths(machine) }

// Register adds a workload to the registry. The built-in benchmarks register
// themselves; external packages may register additional workloads before
// running sweeps.
func Register(w Workload) { workloads.Register(w) }

// Lookup finds a registered workload by name.
func Lookup(name string) (*Workload, bool) { return workloads.Lookup(name) }

// Workloads returns every registered workload sorted by name.
func Workloads() []*Workload { return workloads.All() }

// Systems lists every machine-model kind in presentation order.
func Systems() []SystemKind { return workloads.SystemKinds() }

// NewSystem builds the named system with its Table 2 default configuration.
func NewSystem(kind SystemKind) (System, error) { return workloads.NewSystem(kind) }

// MustSystem is NewSystem for statically-known kinds; it panics on an unknown
// kind.
func MustSystem(kind SystemKind) System {
	sys, err := NewSystem(kind)
	if err != nil {
		panic(err)
	}
	return sys
}

// CCSVMSystem builds the tightly-coupled CCSVM machine from a core config.
func CCSVMSystem(cfg core.Config) System { return workloads.CCSVMSystem(cfg) }

// CPUSystem builds the one-core CPU baseline from an APU config.
func CPUSystem(cfg apu.Config) System { return workloads.CPUSystem(cfg) }

// OpenCLSystem builds the GPU-through-OpenCL machine from an APU config.
func OpenCLSystem(cfg apu.Config) System { return workloads.OpenCLSystem(cfg) }

// PthreadsSystem builds the four-core pthreads machine from an APU config.
func PthreadsSystem(cfg apu.Config) System { return workloads.PthreadsSystem(cfg) }

// DefaultParams returns a small, fast default problem.
func DefaultParams() Params { return workloads.DefaultParams() }

// Pairs enumerates every runnable (workload, system) pair as RunSpecs with
// default systems and the given params — a convenient seed for smoke-test
// sweeps over the whole registry.
func Pairs(p Params) []RunSpec {
	var specs []RunSpec
	for _, w := range Workloads() {
		for _, kind := range w.SystemKinds() {
			specs = append(specs, RunSpec{
				Workload: w.Name,
				System:   MustSystem(kind),
				Params:   p,
			})
		}
	}
	return specs
}
