module ccsvm

go 1.24
