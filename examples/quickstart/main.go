// Quickstart: the paper's Figure 3 vs Figure 4 comparison written against the
// public ccsvm facade. It looks up the vector-add workload in the registry
// and runs it on the two machines that can express it — the CCSVM chip
// (xthreads: allocate in shared virtual memory, spawn MTTOP threads, wait on
// done flags) and the loosely-coupled APU (the full OpenCL stack: buffer
// objects, staging copies, kernel JIT) — then prints the offload-cost gap
// that motivates the paper.
//
// Run with:  go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ccsvm"
)

const n = 256

func main() {
	w, ok := ccsvm.Lookup("vectoradd")
	if !ok {
		log.Fatal("vectoradd not registered")
	}
	params := ccsvm.Params{N: n, Seed: 1}

	x, err := w.Run(ccsvm.MustSystem(ccsvm.SystemCCSVM), params)
	if err != nil {
		log.Fatal(err)
	}
	params.IncludeInit = true
	ocl, err := w.Run(ccsvm.MustSystem(ccsvm.SystemOpenCL), params)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("vector add of %d elements, offload cost by programming model\n", n)
	for _, r := range []ccsvm.Result{x, ocl} {
		fmt.Printf("  %-18s time=%-12v dram=%-6d verified=%v\n",
			r.Label, r.Time, r.DRAMAccesses, r.Checked)
	}
	fmt.Printf("  xthreads offload is %.0fx cheaper than the full OpenCL stack\n",
		x.Speedup(ocl))
}
