// Quickstart: the paper's Figure 4 program written against this repository's
// public API. A CPU thread allocates three vectors in cache-coherent shared
// virtual memory, spawns one MTTOP thread per element with create_mthread,
// waits on per-element done flags, and reads the sums back — no buffer
// objects, no copies, no kernel-compilation step.
//
// Run with:  go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ccsvm/internal/core"
	"ccsvm/internal/mem"
	"ccsvm/internal/xthreads"
)

const n = 256

func main() {
	machine := core.NewMachine(core.DefaultConfig())
	defer machine.Shutdown()

	// The MTTOP kernel: the _MTTOP_ add() function of Figure 4.
	addKernel := machine.RegisterKernel(func(ctx *xthreads.MTTOPContext) {
		args := ctx.Args()
		v1 := mem.VAddr(ctx.Load64(args + 0))
		v2 := mem.VAddr(ctx.Load64(args + 8))
		sum := mem.VAddr(ctx.Load64(args + 16))
		done := mem.VAddr(ctx.Load64(args + 24))
		tid := ctx.TID()
		a := ctx.Load32(v1 + mem.VAddr(4*tid))
		b := ctx.Load32(v2 + mem.VAddr(4*tid))
		ctx.Compute(1)
		ctx.Store32(sum+mem.VAddr(4*tid), a+b)
		ctx.SignalSlot(done, 0)
	})

	var sumVA mem.VAddr
	elapsed, err := machine.RunProgram(func(ctx *xthreads.CPUContext) {
		// The _CPU_ main() of Figure 4.
		v1 := ctx.Malloc(4 * n)
		v2 := ctx.Malloc(4 * n)
		sum := ctx.Malloc(4 * n)
		done := ctx.Malloc(4 * n)
		args := ctx.Malloc(32)
		sumVA = sum
		for i := 0; i < n; i++ {
			ctx.Store32(v1+mem.VAddr(4*i), uint32(i))
			ctx.Store32(v2+mem.VAddr(4*i), uint32(2*i))
			ctx.Store32(done+mem.VAddr(4*i), xthreads.CondIdle)
		}
		ctx.Store64(args+0, uint64(v1))
		ctx.Store64(args+8, uint64(v2))
		ctx.Store64(args+16, uint64(sum))
		ctx.Store64(args+24, uint64(done))

		ctx.CreateMThreads(addKernel, args, 0, n-1) // mthread_create(0, 256, &add, &inputs)
		ctx.Wait(done, 0, n-1)                      // mthread_wait(0, 255, inputs.done)
	})
	if err != nil {
		log.Fatal(err)
	}

	ok := true
	for i := 0; i < n; i++ {
		if machine.MemReadUint32(sumVA+mem.VAddr(4*i)) != uint32(3*i) {
			ok = false
		}
	}
	fmt.Printf("vector add of %d elements on the CCSVM chip\n", n)
	fmt.Printf("  simulated time:   %v\n", elapsed)
	fmt.Printf("  DRAM accesses:    %d\n", machine.DRAMAccesses())
	fmt.Printf("  results correct:  %v\n", ok)
	fmt.Printf("  MTTOP page faults forwarded through the MIFD: ")
	if v, found := machine.Stats.Lookup("mifd.page_faults_forwarded"); found {
		fmt.Printf("%d\n", v)
	} else {
		fmt.Printf("0\n")
	}
}
