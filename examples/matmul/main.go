// Example matmul: the Figure 5 experiment at a single size — dense matrix
// multiply offloaded three ways (CCSVM/xthreads, APU/OpenCL, one APU CPU
// core), printing runtimes and off-chip traffic side by side.
//
// Run with:  go run ./examples/matmul -n 48
package main

import (
	"flag"
	"fmt"
	"log"

	"ccsvm/internal/apu"
	"ccsvm/internal/core"
	"ccsvm/internal/stats"
	"ccsvm/internal/workloads"
)

func main() {
	n := flag.Int("n", 48, "matrix dimension")
	seed := flag.Int64("seed", 1, "input seed")
	flag.Parse()

	cpu, err := workloads.MatMulCPU(apu.DefaultConfig(), *n, *seed)
	if err != nil {
		log.Fatal(err)
	}
	ocl, err := workloads.MatMulOpenCL(apu.DefaultConfig(), *n, *seed, false)
	if err != nil {
		log.Fatal(err)
	}
	oclFull, err := workloads.MatMulOpenCL(apu.DefaultConfig(), *n, *seed, true)
	if err != nil {
		log.Fatal(err)
	}
	ccsvm, err := workloads.MatMulXthreads(core.DefaultConfig(), *n, *seed)
	if err != nil {
		log.Fatal(err)
	}

	t := stats.NewTable(fmt.Sprintf("Dense matrix multiply, N=%d", *n),
		"System", "Time", "Relative to CPU", "DRAM accesses")
	for _, r := range []workloads.Result{cpu, oclFull, ocl, ccsvm} {
		t.AddRow(r.Label, r.Time.String(), float64(r.Time)/float64(cpu.Time), r.DRAMAccesses)
	}
	fmt.Println(t.String())
}
