// Example matmul: the Figure 5 experiment at a single size — dense matrix
// multiply offloaded three ways (CCSVM/xthreads, APU/OpenCL full and no-init,
// one APU CPU core). The sweep is declared as RunSpecs and executed by the
// facade's Runner across a worker pool; the results are identical at any
// parallelism.
//
// Run with:  go run ./examples/matmul -n 48
package main

import (
	"flag"
	"fmt"
	"log"

	"ccsvm"
	"ccsvm/internal/stats"
)

func main() {
	n := flag.Int("n", 48, "matrix dimension")
	seed := flag.Int64("seed", 1, "input seed")
	parallel := flag.Int("parallel", 4, "simulations to run concurrently")
	flag.Parse()

	p := ccsvm.Params{N: *n, Seed: *seed}
	full := p
	full.IncludeInit = true
	specs := []ccsvm.RunSpec{
		{Workload: "matmul", System: ccsvm.MustSystem(ccsvm.SystemCPU), Params: p},
		{Workload: "matmul", System: ccsvm.MustSystem(ccsvm.SystemOpenCL), Params: full},
		{Workload: "matmul", System: ccsvm.MustSystem(ccsvm.SystemOpenCL), Params: p},
		{Workload: "matmul", System: ccsvm.MustSystem(ccsvm.SystemCCSVM), Params: p},
	}

	runner := &ccsvm.Runner{Parallel: *parallel}
	res, err := runner.Run(specs)
	if err != nil {
		log.Fatal(err)
	}
	cpu := res[0].Result

	t := stats.NewTable(fmt.Sprintf("Dense matrix multiply, N=%d", *n),
		"System", "Time", "Relative to CPU", "DRAM accesses")
	for _, rr := range res {
		r := rr.Result
		t.AddRow(r.Label, r.Time.String(), float64(r.Time)/float64(cpu.Time), r.DRAMAccesses)
	}
	fmt.Println(t.String())
}
