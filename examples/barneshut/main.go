// Example barneshut: the Figure 7 experiment at a single body count —
// pointer-chasing Barnes-Hut n-body with its parallel force phase offloaded
// to the MTTOP cores under CCSVM, compared against one APU CPU core and a
// 4-thread pthreads run on the APU's CPU cores. All three runs are resolved
// through the facade registry.
//
// Run with:  go run ./examples/barneshut -bodies 256
package main

import (
	"flag"
	"fmt"
	"log"

	"ccsvm"
	"ccsvm/internal/stats"
)

func main() {
	bodies := flag.Int("bodies", 256, "number of bodies")
	seed := flag.Int64("seed", 1, "input seed")
	flag.Parse()

	w, ok := ccsvm.Lookup("barneshut")
	if !ok {
		log.Fatal("barneshut not registered")
	}
	p := ccsvm.Params{N: *bodies, Seed: *seed}

	var cpu ccsvm.Result
	var results []ccsvm.Result
	for _, kind := range w.SystemKinds() {
		r, err := w.Run(ccsvm.MustSystem(kind), p)
		if err != nil {
			log.Fatal(err)
		}
		if kind == ccsvm.SystemCPU {
			cpu = r
		}
		results = append(results, r)
	}

	t := stats.NewTable(fmt.Sprintf("Barnes-Hut, %d bodies, 2 timesteps", *bodies),
		"System", "Time", "Speedup vs 1 CPU core", "DRAM accesses")
	for _, r := range results {
		t.AddRow(r.Label, r.Time.String(), r.Speedup(cpu), r.DRAMAccesses)
	}
	fmt.Println(t.String())
}
