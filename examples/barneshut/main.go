// Example barneshut: the Figure 7 experiment at a single body count —
// pointer-chasing Barnes-Hut n-body with its parallel force phase offloaded
// to the MTTOP cores under CCSVM, compared against one APU CPU core and a
// 4-thread pthreads run on the APU's CPU cores.
//
// Run with:  go run ./examples/barneshut -bodies 256
package main

import (
	"flag"
	"fmt"
	"log"

	"ccsvm/internal/apu"
	"ccsvm/internal/core"
	"ccsvm/internal/stats"
	"ccsvm/internal/workloads"
)

func main() {
	bodies := flag.Int("bodies", 256, "number of bodies")
	seed := flag.Int64("seed", 1, "input seed")
	flag.Parse()

	cpu, err := workloads.BarnesHutCPU(apu.DefaultConfig(), *bodies, *seed)
	if err != nil {
		log.Fatal(err)
	}
	pth, err := workloads.BarnesHutPthreads(apu.DefaultConfig(), *bodies, *seed)
	if err != nil {
		log.Fatal(err)
	}
	ccsvm, err := workloads.BarnesHutXthreads(core.DefaultConfig(), *bodies, *seed)
	if err != nil {
		log.Fatal(err)
	}

	t := stats.NewTable(fmt.Sprintf("Barnes-Hut, %d bodies, 2 timesteps", *bodies),
		"System", "Time", "Speedup vs 1 CPU core", "DRAM accesses")
	for _, r := range []workloads.Result{cpu, pth, ccsvm} {
		t.AddRow(r.Label, r.Time.String(), r.Speedup(cpu), r.DRAMAccesses)
	}
	fmt.Println(t.String())
}
