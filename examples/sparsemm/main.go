// Example sparsemm: the Figure 8 experiment — sparse matrix multiply over
// pointer-based, dynamically allocated linked-list matrices, with output
// nodes allocated through mttop_malloc. Sweeps density at a fixed size to
// show the mttop_malloc bottleneck growing with density; the whole sweep is
// one RunSpec slice fanned out by the facade's Runner.
//
// Run with:  go run ./examples/sparsemm -n 64
package main

import (
	"flag"
	"fmt"
	"log"

	"ccsvm"
	"ccsvm/internal/stats"
)

func main() {
	n := flag.Int("n", 64, "matrix dimension")
	seed := flag.Int64("seed", 1, "input seed")
	parallel := flag.Int("parallel", 4, "simulations to run concurrently")
	flag.Parse()

	densities := []float64{0.01, 0.02, 0.04, 0.08}
	var specs []ccsvm.RunSpec
	for _, d := range densities {
		p := ccsvm.Params{N: *n, Density: d, Seed: *seed}
		specs = append(specs,
			ccsvm.RunSpec{Workload: "sparse", System: ccsvm.MustSystem(ccsvm.SystemCPU), Params: p},
			ccsvm.RunSpec{Workload: "sparse", System: ccsvm.MustSystem(ccsvm.SystemCCSVM), Params: p},
		)
	}
	runner := &ccsvm.Runner{Parallel: *parallel}
	res, err := runner.Run(specs)
	if err != nil {
		log.Fatal(err)
	}

	t := stats.NewTable(fmt.Sprintf("Sparse matrix multiply, N=%d (pointer-based, mttop_malloc)", *n),
		"Density %", "CPU time", "CCSVM time", "Speedup")
	for i, d := range densities {
		cpu, x := res[2*i].Result, res[2*i+1].Result
		t.AddRow(d*100, cpu.Time.String(), x.Time.String(), x.Speedup(cpu))
	}
	fmt.Println(t.String())
}
