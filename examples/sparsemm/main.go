// Example sparsemm: the Figure 8 experiment — sparse matrix multiply over
// pointer-based, dynamically allocated linked-list matrices, with output
// nodes allocated through mttop_malloc. Sweeps density at a fixed size to
// show the mttop_malloc bottleneck growing with density.
//
// Run with:  go run ./examples/sparsemm -n 64
package main

import (
	"flag"
	"fmt"
	"log"

	"ccsvm/internal/apu"
	"ccsvm/internal/core"
	"ccsvm/internal/stats"
	"ccsvm/internal/workloads"
)

func main() {
	n := flag.Int("n", 64, "matrix dimension")
	seed := flag.Int64("seed", 1, "input seed")
	flag.Parse()

	t := stats.NewTable(fmt.Sprintf("Sparse matrix multiply, N=%d (pointer-based, mttop_malloc)", *n),
		"Density %", "CPU time", "CCSVM time", "Speedup")
	for _, density := range []float64{0.01, 0.02, 0.04, 0.08} {
		cpu, err := workloads.SparseMMCPU(apu.DefaultConfig(), *n, density, *seed)
		if err != nil {
			log.Fatal(err)
		}
		ccsvm, err := workloads.SparseMMXthreads(core.DefaultConfig(), *n, density, *seed)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(density*100, cpu.Time.String(), ccsvm.Time.String(), ccsvm.Speedup(cpu))
	}
	fmt.Println(t.String())
}
