package ccsvm_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"strconv"
	"strings"
	"testing"

	"ccsvm"
)

// overrideSweepSpecs builds a small lane-count sweep through the preset and
// override layers: the ccsvm-small preset with three different MTTOP issue
// widths on two workloads.
func overrideSweepSpecs(t *testing.T) []ccsvm.RunSpec {
	t.Helper()
	p, ok := ccsvm.LookupPreset("ccsvm-small")
	if !ok {
		t.Fatal("ccsvm-small preset not registered")
	}
	var specs []ccsvm.RunSpec
	for _, width := range []int{4, 8, 16} {
		for _, wl := range []string{"vectoradd", "matmul"} {
			sys, err := p.System(ccsvm.SystemCCSVM)
			if err != nil {
				t.Fatal(err)
			}
			if err := ccsvm.Override(&sys, "ccsvm.MTTOPIssueWidth", strconv.Itoa(width)); err != nil {
				t.Fatal(err)
			}
			specs = append(specs, ccsvm.RunSpec{
				Workload: wl,
				System:   sys,
				Params:   ccsvm.Params{N: 12, Seed: 7, Density: 0.05},
				Tag:      "w" + strconv.Itoa(width),
			})
		}
	}
	return specs
}

// TestOverrideSweepParallelDeterminism requires a sweep built from presets
// plus overrides to produce byte-identical JSONL at parallel=1 and
// parallel=4, and the issue-width override to actually change the machine.
func TestOverrideSweepParallelDeterminism(t *testing.T) {
	specs := overrideSweepSpecs(t)
	var seqJSON, parJSON bytes.Buffer
	seq, err := (&ccsvm.Runner{Parallel: 1, Sinks: []ccsvm.Sink{ccsvm.NewJSONLSink(&seqJSON)}}).Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&ccsvm.Runner{Parallel: 4, Sinks: []ccsvm.Sink{ccsvm.NewJSONLSink(&parJSON)}}).Run(specs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqJSON.Bytes(), parJSON.Bytes()) {
		t.Error("JSONL output differs between parallel=1 and parallel=4 for an override sweep")
	}
	// Width 4 and width 16 must give different simulated times for the same
	// workload — otherwise the override silently did nothing.
	if seq[0].Result.Time == seq[4].Result.Time {
		t.Errorf("issue width 4 and 16 gave identical times (%v); override had no effect", seq[0].Result.Time)
	}
}

// TestMetricsSurfacedBySinks requires per-run machine metrics on results and
// in both sink formats.
func TestMetricsSurfacedBySinks(t *testing.T) {
	sys, err := ccsvm.LookupPresetSystem("ccsvm-small", ccsvm.SystemCCSVM)
	if err != nil {
		t.Fatal(err)
	}
	specs := []ccsvm.RunSpec{{Workload: "vectoradd", System: sys, Params: ccsvm.Params{N: 16, Seed: 7}}}
	var jsonl, text bytes.Buffer
	runner := &ccsvm.Runner{Sinks: []ccsvm.Sink{ccsvm.NewJSONLSink(&jsonl), ccsvm.NewTextSink(&text, "metrics probe")}}
	res, err := runner.Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	m := res[0].Result.Metrics
	for _, key := range []string{"l1.hit_rate", "noc.messages", "dram.reads", "mifd.tasks", "mttop.instructions"} {
		if _, ok := m[key]; !ok {
			t.Errorf("CCSVM run missing metric %q (have %v)", key, m)
		}
	}
	if m["mifd.tasks"] < 1 {
		t.Errorf("mifd.tasks = %v, want >= 1", m["mifd.tasks"])
	}
	if rate := m["l1.hit_rate"]; rate <= 0 || rate > 1 {
		t.Errorf("l1.hit_rate = %v, want in (0, 1]", rate)
	}

	var rec struct {
		Metrics map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(jsonl.Bytes(), &rec); err != nil {
		t.Fatalf("JSONL line not valid JSON: %v", err)
	}
	if len(rec.Metrics) == 0 {
		t.Errorf("JSONL record carries no metrics: %s", jsonl.String())
	}
	if !strings.Contains(text.String(), "L1 hit%") {
		t.Errorf("text table has no machine-metric columns:\n%s", text.String())
	}

	// An APU-machine run reports the OpenCL overhead breakdown.
	apuSys, err := ccsvm.LookupPresetSystem("apu-base", ccsvm.SystemOpenCL)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := ccsvm.Lookup("vectoradd")
	r, err := w.Run(apuSys, ccsvm.Params{N: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"opencl.init_us", "opencl.staging_us", "opencl.launch_us"} {
		if r.Metrics[key] <= 0 {
			t.Errorf("OpenCL run metric %q = %v, want > 0", key, r.Metrics[key])
		}
	}
	if _, ok := r.Metrics["gpu.read_hit_rate"]; !ok {
		t.Errorf("OpenCL run missing metric gpu.read_hit_rate (have %v)", r.Metrics)
	}
}

// TestFacadeOverrideErrors exercises the typed sentinels through the facade.
func TestFacadeOverrideErrors(t *testing.T) {
	sys := ccsvm.MustSystem(ccsvm.SystemCCSVM)
	if err := ccsvm.Override(&sys, "ccsvm.NoSuchKnob", "1"); !errors.Is(err, ccsvm.ErrUnknownPath) {
		t.Errorf("unknown path: err = %v, want ErrUnknownPath", err)
	}
	if err := ccsvm.Override(&sys, "ccsvm.NumCPUs", "lots"); !errors.Is(err, ccsvm.ErrBadValue) {
		t.Errorf("bad value: err = %v, want ErrBadValue", err)
	}
	if err := ccsvm.ApplyOverrides(&sys, []string{"ccsvm.NumCPUs=0"}); !errors.Is(err, ccsvm.ErrOutOfRange) {
		t.Errorf("out of range: err = %v, want ErrOutOfRange", err)
	}
	if len(ccsvm.OverridePaths(ccsvm.MachineAPU)) == 0 {
		t.Error("OverridePaths(apu) is empty")
	}
}
