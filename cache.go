package ccsvm

import "ccsvm/internal/resultcache"

// The memoization layer (see ARCHITECTURE.md, "Serving & caching"): because
// Results are bit-deterministic functions of their RunSpec, a Runner given a
// Cache serves repeated specs from storage instead of re-simulating. The
// facade aliases the internal/resultcache types so library users construct
// and inspect caches without reaching into internal packages.
type (
	// Cache is the two-tier (memory LRU + optional persistent directory)
	// content-addressed Result store, keyed by RunSpec.Hash.
	Cache = resultcache.Cache
	// CacheOptions configures NewCache: the LRU capacity and the optional
	// persistent directory.
	CacheOptions = resultcache.Options
	// CacheStats is a snapshot of a cache's hit/miss/byte counters.
	CacheStats = resultcache.Stats
)

// NewCache builds a result cache. An empty Dir means memory-only; a named
// Dir is created and may be shared between concurrent Runners and processes.
func NewCache(opts CacheOptions) (*Cache, error) { return resultcache.New(opts) }
