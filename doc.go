// Package ccsvm is a from-scratch Go reproduction of "Evaluating Cache
// Coherent Shared Virtual Memory for Heterogeneous Multicore Chips"
// (Hechtman & Sorin, ISPASS 2013): a discrete-event simulator of a CPU/MTTOP
// chip tightly coupled through cache-coherent shared virtual memory, the
// xthreads programming model that targets it, a loosely-coupled APU/OpenCL
// baseline machine, and the workloads and sweeps that regenerate every table
// and figure of the paper's evaluation.
//
// The root package is the library's public facade. Its model:
//
//   - A System is one runnable machine: SystemCCSVM (the proposed chip),
//     SystemCPU (one APU CPU core), SystemOpenCL (the loosely-coupled GPU),
//     or SystemPthreads (the APU's four CPU cores). Build one with NewSystem
//     (Table 2 defaults) or from an explicit core.Config/apu.Config.
//   - A Workload is a registered benchmark (matmul, apsp, barneshut, sparse,
//     vectoradd) with one implementation per system it supports. Lookup and
//     Workloads discover them; Workload.Run executes one, returning a Result
//     (simulated time, off-chip DRAM traffic, functional verification).
//     Asking for a pair with no implementation returns ErrUnsupportedPair.
//   - A Runner executes a slice of RunSpecs across a bounded worker pool.
//     Each simulation is an independent single-threaded event engine, so
//     sweeps parallelize perfectly: results and sink output are
//     bit-identical at any Parallel setting. Sinks stream results as a text
//     table (NewTextSink) or JSON lines (NewJSONLSink).
//
// A minimal run:
//
//	w, _ := ccsvm.Lookup("matmul")
//	sys, _ := ccsvm.NewSystem(ccsvm.SystemCCSVM)
//	res, err := w.Run(sys, ccsvm.Params{N: 64, Seed: 42})
//
// And a parallel sweep:
//
//	runner := &ccsvm.Runner{Parallel: 8, Sinks: []ccsvm.Sink{ccsvm.NewJSONLSink(os.Stdout)}}
//	results, err := runner.Run(ccsvm.Pairs(ccsvm.DefaultParams()))
//
// The simulator implementation lives under internal/; the runnable entry
// points are cmd/paper-figs (regenerate the evaluation, with -parallel),
// cmd/ccsvm-sim (run one registry pair; -list, -json), and the programs under
// examples/. The root-level bench_test.go holds one Go benchmark per figure.
// See README.md for a tour.
package ccsvm
