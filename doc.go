// Package ccsvm is a from-scratch Go reproduction of "Evaluating Cache
// Coherent Shared Virtual Memory for Heterogeneous Multicore Chips"
// (Hechtman & Sorin, ISPASS 2013): a discrete-event simulator of a CPU/MTTOP
// chip tightly coupled through cache-coherent shared virtual memory, the
// xthreads programming model that targets it, a loosely-coupled APU/OpenCL
// baseline machine, and the workloads and sweeps that regenerate every table
// and figure of the paper's evaluation.
//
// The implementation lives under internal/; the runnable entry points are
// cmd/paper-figs (regenerate the evaluation), cmd/ccsvm-sim (run one
// benchmark on one system), and the programs under examples/. The root-level
// bench_test.go holds one Go benchmark per figure. See README.md, DESIGN.md
// and EXPERIMENTS.md.
package ccsvm
