// Command ccsvm-sim runs one benchmark on one simulated system and prints its
// measured time, off-chip traffic, and the machine's statistics counters. It
// is the single-experiment companion to cmd/paper-figs.
//
// Usage:
//
//	ccsvm-sim -workload matmul -system ccsvm -n 64
//	ccsvm-sim -workload apsp   -system opencl -n 32
//	ccsvm-sim -workload sparse -system cpu -n 96 -density 0.02
package main

import (
	"flag"
	"fmt"
	"os"

	"ccsvm/internal/apu"
	"ccsvm/internal/core"
	"ccsvm/internal/workloads"
)

func main() {
	workload := flag.String("workload", "matmul", "matmul, apsp, barneshut, sparse, vectoradd")
	system := flag.String("system", "ccsvm", "ccsvm, cpu, opencl, pthreads")
	n := flag.Int("n", 32, "problem size (matrix dimension, vertices, bodies, or elements)")
	density := flag.Float64("density", 0.01, "non-zero density for the sparse workload")
	seed := flag.Int64("seed", 42, "input seed")
	includeInit := flag.Bool("opencl-init", false, "include OpenCL platform init and JIT in the measured region")
	flag.Parse()

	ccsvmCfg := core.DefaultConfig()
	apuCfg := apu.DefaultConfig()

	var (
		res workloads.Result
		err error
	)
	switch *workload + "/" + *system {
	case "matmul/ccsvm":
		res, err = workloads.MatMulXthreads(ccsvmCfg, *n, *seed)
	case "matmul/cpu":
		res, err = workloads.MatMulCPU(apuCfg, *n, *seed)
	case "matmul/opencl":
		res, err = workloads.MatMulOpenCL(apuCfg, *n, *seed, *includeInit)
	case "apsp/ccsvm":
		res, err = workloads.APSPXthreads(ccsvmCfg, *n, *seed)
	case "apsp/cpu":
		res, err = workloads.APSPCPU(apuCfg, *n, *seed)
	case "apsp/opencl":
		res, err = workloads.APSPOpenCL(apuCfg, *n, *seed, *includeInit)
	case "barneshut/ccsvm":
		res, err = workloads.BarnesHutXthreads(ccsvmCfg, *n, *seed)
	case "barneshut/cpu":
		res, err = workloads.BarnesHutCPU(apuCfg, *n, *seed)
	case "barneshut/pthreads":
		res, err = workloads.BarnesHutPthreads(apuCfg, *n, *seed)
	case "sparse/ccsvm":
		res, err = workloads.SparseMMXthreads(ccsvmCfg, *n, *density, *seed)
	case "sparse/cpu":
		res, err = workloads.SparseMMCPU(apuCfg, *n, *density, *seed)
	case "vectoradd/ccsvm":
		res, err = workloads.VectorAddXthreads(ccsvmCfg, *n, *seed)
	case "vectoradd/opencl":
		res, err = workloads.VectorAddOpenCL(apuCfg, *n, *seed, *includeInit)
	default:
		fmt.Fprintf(os.Stderr, "ccsvm-sim: unsupported combination %s on %s\n", *workload, *system)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccsvm-sim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("workload:      %s (n=%d)\n", *workload, *n)
	fmt.Printf("system:        %s\n", res.Label)
	fmt.Printf("measured time: %v\n", res.Time)
	fmt.Printf("DRAM accesses: %d\n", res.DRAMAccesses)
	fmt.Printf("verified:      %v\n", res.Checked)
}
