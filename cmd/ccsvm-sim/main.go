// Command ccsvm-sim runs one benchmark on one simulated system and prints its
// measured time, off-chip traffic, verification status, and per-run machine
// metrics. It is the single-experiment companion to cmd/paper-figs, and is
// entirely registry-driven: every workload, system, and machine preset it can
// run comes from the ccsvm facade, so a newly registered workload or preset
// shows up here with no CLI changes.
//
// Usage:
//
//	ccsvm-sim -list                                  # workloads, pairs, and presets
//	ccsvm-sim -list-paths                            # every -set'able config path
//	ccsvm-sim -workload matmul -system ccsvm -n 64
//	ccsvm-sim -workload apsp   -system opencl -n 32 -json
//	ccsvm-sim -workload sparse -system cpu -n 96 -density 0.02
//
// Design-space exploration:
//
//	ccsvm-sim -workload matmul -preset ccsvm-wide -n 64
//	ccsvm-sim -workload matmul -system ccsvm -set ccsvm.MTTOPIssueWidth=16 -set ccsvm.DRAM.Latency=50ns
//	ccsvm-sim -workload apsp -preset apu-fast-driver -system opencl -n 32
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"ccsvm"
)

// setFlags collects repeated -set path=value assignments.
type setFlags []string

func (s *setFlags) String() string { return fmt.Sprint(*s) }
func (s *setFlags) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	workload := flag.String("workload", "matmul", "workload name (see -list)")
	system := flag.String("system", "", "system kind: ccsvm, cpu, opencl, or pthreads (default: the preset's first kind, or ccsvm)")
	preset := flag.String("preset", "", "machine preset to start from (see -list); default is the system's Table 2 configuration")
	var sets setFlags
	flag.Var(&sets, "set", "override one configuration field, e.g. -set ccsvm.MTTOPIssueWidth=16 (repeatable; see -list-paths)")
	n := flag.Int("n", 32, "problem size (matrix dimension, vertices, bodies, or elements)")
	density := flag.Float64("density", 0.01, "non-zero density for the sparse workload")
	seed := flag.Int64("seed", 42, "input seed")
	includeInit := flag.Bool("opencl-init", false, "include OpenCL platform init and JIT in the measured region")
	list := flag.Bool("list", false, "list every runnable (workload, system) pair and machine preset, then exit")
	listPaths := flag.Bool("list-paths", false, "list every -set'able configuration path, then exit")
	asJSON := flag.Bool("json", false, "emit the result as one JSON line instead of text")
	flag.Parse()

	if *list {
		fmt.Println("workloads:")
		for _, w := range ccsvm.Workloads() {
			fmt.Printf("  %-10s %s\n", w.Name, w.Description)
			for _, kind := range w.SystemKinds() {
				fmt.Printf("               %s/%s\n", w.Name, kind)
			}
		}
		fmt.Println("presets:")
		for _, p := range ccsvm.Presets() {
			fmt.Printf("  %-18s [%s] %s\n", p.Name, p.Machine, p.Description)
		}
		fmt.Println("coherence protocols (-set ccsvm.coherence.protocol=...):")
		for _, name := range ccsvm.Protocols() {
			fmt.Printf("  %s\n", name)
		}
		return
	}
	if *listPaths {
		for _, machine := range []ccsvm.MachineKind{ccsvm.MachineCCSVM, ccsvm.MachineAPU} {
			for _, p := range ccsvm.OverridePaths(machine) {
				fmt.Println(p)
			}
		}
		return
	}

	w, ok := ccsvm.Lookup(*workload)
	if !ok {
		fmt.Fprintf(os.Stderr, "ccsvm-sim: unknown workload %q; -list shows the registry\n", *workload)
		os.Exit(2)
	}
	sys, err := buildSystem(*system, *preset)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccsvm-sim: %v\n", err)
		os.Exit(2)
	}
	if err := ccsvm.ApplyOverrides(&sys, sets); err != nil {
		fmt.Fprintf(os.Stderr, "ccsvm-sim: %v\n", err)
		os.Exit(2)
	}
	params := ccsvm.Params{N: *n, Density: *density, Seed: *seed, IncludeInit: *includeInit}

	res, err := w.Run(sys, params)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccsvm-sim: %v\n", err)
		if errors.Is(err, ccsvm.ErrUnsupportedPair) {
			os.Exit(2)
		}
		os.Exit(1)
	}

	if *asJSON {
		sink := ccsvm.NewJSONLSink(os.Stdout)
		// The tag records the full configuration provenance — preset and
		// overrides — so JSONL lines from different sweep points are
		// distinguishable downstream.
		tag := strings.Join(append(presetTag(*preset), sets...), " ")
		spec := ccsvm.RunSpec{Workload: w.Name, System: sys, Params: params, Tag: tag}
		if err := sink.Emit(ccsvm.RunResult{Spec: spec, Result: res}); err != nil {
			fmt.Fprintf(os.Stderr, "ccsvm-sim: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("workload:      %s (n=%d)\n", w.Name, *n)
	fmt.Printf("system:        %s\n", res.Label)
	if *preset != "" {
		fmt.Printf("preset:        %s\n", *preset)
	}
	for _, s := range sets {
		fmt.Printf("override:      %s\n", s)
	}
	fmt.Printf("measured time: %v\n", res.Time)
	fmt.Printf("DRAM accesses: %d\n", res.DRAMAccesses)
	fmt.Printf("verified:      %v\n", res.Checked)
	if len(res.Metrics) > 0 {
		fmt.Println("machine metrics:")
		keys := make([]string, 0, len(res.Metrics))
		for k := range res.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %-24s %.6g\n", k, res.Metrics[k])
		}
	}
}

// presetTag wraps a non-empty preset name in a one-element slice for tag
// assembly.
func presetTag(preset string) []string {
	if preset == "" {
		return nil
	}
	return []string{preset}
}

// buildSystem resolves the -system and -preset flags into a configured
// System: a preset's configuration when one is named (with -system picking
// the kind, defaulting to the preset's first), otherwise the named system's
// Table 2 default.
func buildSystem(system, preset string) (ccsvm.System, error) {
	if preset == "" {
		if system == "" {
			system = string(ccsvm.SystemCCSVM)
		}
		return ccsvm.NewSystem(ccsvm.SystemKind(system))
	}
	p, ok := ccsvm.LookupPreset(preset)
	if !ok {
		return ccsvm.System{}, fmt.Errorf("unknown preset %q; -list shows the registry", preset)
	}
	kind := p.DefaultKind()
	if system != "" {
		kind = ccsvm.SystemKind(system)
		// Diagnose a typo as an unknown kind, not as a machine mismatch.
		if !knownKind(kind) {
			return ccsvm.System{}, fmt.Errorf("unknown system %q (have %v)", system, ccsvm.Systems())
		}
	}
	return p.System(kind)
}

// knownKind reports whether kind names one of the registered system kinds.
func knownKind(kind ccsvm.SystemKind) bool {
	for _, k := range ccsvm.Systems() {
		if k == kind {
			return true
		}
	}
	return false
}
