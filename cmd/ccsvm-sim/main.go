// Command ccsvm-sim runs one benchmark on one simulated system and prints its
// measured time, off-chip traffic, and verification status. It is the
// single-experiment companion to cmd/paper-figs, and is entirely
// registry-driven: every (workload, system) pair it can run comes from the
// ccsvm facade, so a newly registered workload shows up here with no CLI
// changes.
//
// Usage:
//
//	ccsvm-sim -list                                  # every runnable pair
//	ccsvm-sim -workload matmul -system ccsvm -n 64
//	ccsvm-sim -workload apsp   -system opencl -n 32 -json
//	ccsvm-sim -workload sparse -system cpu -n 96 -density 0.02
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"ccsvm"
)

func main() {
	workload := flag.String("workload", "matmul", "workload name (see -list)")
	system := flag.String("system", "ccsvm", "system name (see -list)")
	n := flag.Int("n", 32, "problem size (matrix dimension, vertices, bodies, or elements)")
	density := flag.Float64("density", 0.01, "non-zero density for the sparse workload")
	seed := flag.Int64("seed", 42, "input seed")
	includeInit := flag.Bool("opencl-init", false, "include OpenCL platform init and JIT in the measured region")
	list := flag.Bool("list", false, "list every runnable (workload, system) pair and exit")
	asJSON := flag.Bool("json", false, "emit the result as one JSON line instead of text")
	flag.Parse()

	if *list {
		for _, w := range ccsvm.Workloads() {
			fmt.Printf("%-10s %s\n", w.Name, w.Description)
			for _, kind := range w.SystemKinds() {
				fmt.Printf("             %s/%s\n", w.Name, kind)
			}
		}
		return
	}

	w, ok := ccsvm.Lookup(*workload)
	if !ok {
		fmt.Fprintf(os.Stderr, "ccsvm-sim: unknown workload %q; -list shows the registry\n", *workload)
		os.Exit(2)
	}
	sys, err := ccsvm.NewSystem(ccsvm.SystemKind(*system))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccsvm-sim: %v\n", err)
		os.Exit(2)
	}
	params := ccsvm.Params{N: *n, Density: *density, Seed: *seed, IncludeInit: *includeInit}

	res, err := w.Run(sys, params)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccsvm-sim: %v\n", err)
		if errors.Is(err, ccsvm.ErrUnsupportedPair) {
			os.Exit(2)
		}
		os.Exit(1)
	}

	if *asJSON {
		sink := ccsvm.NewJSONLSink(os.Stdout)
		spec := ccsvm.RunSpec{Workload: w.Name, System: sys, Params: params}
		if err := sink.Emit(ccsvm.RunResult{Spec: spec, Result: res}); err != nil {
			fmt.Fprintf(os.Stderr, "ccsvm-sim: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("workload:      %s (n=%d)\n", w.Name, *n)
	fmt.Printf("system:        %s\n", res.Label)
	fmt.Printf("measured time: %v\n", res.Time)
	fmt.Printf("DRAM accesses: %d\n", res.DRAMAccesses)
	fmt.Printf("verified:      %v\n", res.Checked)
}
