// Command ccsvm-bench measures simulator throughput for every paper-series
// benchmark and writes the results to BENCH_<date>.json, the repository's
// persistent benchmark baseline. Committing one baseline per optimization PR
// records the performance trajectory of the simulator itself — wall time,
// allocations, and simulation-events-per-second for each series — so
// regressions in the hot path are visible in review rather than discovered
// months later.
//
// Usage:
//
//	ccsvm-bench                       # all series, 1 iteration each, BENCH_<today>.json
//	ccsvm-bench -iters 3              # average over 3 iterations per series
//	ccsvm-bench -out bench-artifacts  # write the JSON under a directory (CI uploads it)
//	ccsvm-bench -date 2026-07-29      # pin the filename date (reproducible CI paths)
//	ccsvm-bench -stdout               # also print the JSON to stdout
//
// The series list mirrors bench_test.go (the `go test -bench` harness): the
// same (workload, system, size) points the paper's figures use, resolved
// through the ccsvm registry. Timing here is wall-clock on the current host —
// the numbers are comparable across commits on the same machine class, not
// across machines; the simulated-time and event counts are bit-deterministic
// everywhere.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"ccsvm"
)

// series is one benchmark point of the paper's evaluation.
type series struct {
	Name     string  `json:"name"`
	Workload string  `json:"workload"`
	System   string  `json:"system"`
	N        int     `json:"n"`
	Density  float64 `json:"density,omitempty"`
	Init     bool    `json:"include_init,omitempty"`
}

// paperSeries mirrors the benchmark list in bench_test.go.
var paperSeries = []series{
	{Name: "fig5_matmul_ccsvm", Workload: "matmul", System: "ccsvm", N: 32},
	{Name: "fig5_matmul_apu_opencl", Workload: "matmul", System: "opencl", N: 32},
	{Name: "fig5_matmul_apu_cpu", Workload: "matmul", System: "cpu", N: 32},
	{Name: "fig6_apsp_ccsvm", Workload: "apsp", System: "ccsvm", N: 20},
	{Name: "fig6_apsp_apu_opencl", Workload: "apsp", System: "opencl", N: 20},
	{Name: "fig6_apsp_apu_cpu", Workload: "apsp", System: "cpu", N: 20},
	{Name: "fig7_barneshut_ccsvm", Workload: "barneshut", System: "ccsvm", N: 96},
	{Name: "fig7_barneshut_apu_cpu", Workload: "barneshut", System: "cpu", N: 96},
	{Name: "fig7_barneshut_apu_pthreads", Workload: "barneshut", System: "pthreads", N: 96},
	{Name: "fig8_sparse_size_ccsvm", Workload: "sparse", System: "ccsvm", N: 48, Density: 0.02},
	{Name: "fig8_sparse_size_apu_cpu", Workload: "sparse", System: "cpu", N: 48, Density: 0.02},
	{Name: "fig8_sparse_density_ccsvm", Workload: "sparse", System: "ccsvm", N: 48, Density: 0.06},
	{Name: "code_vectoradd_xthreads", Workload: "vectoradd", System: "ccsvm", N: 256},
	{Name: "code_vectoradd_opencl", Workload: "vectoradd", System: "opencl", N: 256, Init: true},
}

const benchSeed = 42

// record is one measured series in the emitted JSON.
type record struct {
	series
	Iters        int     `json:"iters"`
	NsPerOp      int64   `json:"ns_per_op"`
	AllocsPerOp  uint64  `json:"allocs_per_op"`
	BytesPerOp   uint64  `json:"bytes_per_op"`
	SimTimePs    int64   `json:"sim_time_ps"`
	SimEvents    float64 `json:"sim_events"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// baseline is the whole emitted file.
type baseline struct {
	Date      string   `json:"date"`
	GoVersion string   `json:"go"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Series    []record `json:"series"`
}

func main() {
	iters := flag.Int("iters", 1, "measured iterations per series (after one warmup run)")
	out := flag.String("out", ".", "directory to write BENCH_<date>.json into")
	date := flag.String("date", time.Now().Format("2006-01-02"), "date stamp for the output filename")
	toStdout := flag.Bool("stdout", false, "also print the JSON document to stdout")
	flag.Parse()

	if *iters < 1 {
		fmt.Fprintln(os.Stderr, "ccsvm-bench: -iters must be at least 1")
		os.Exit(2)
	}
	b := baseline{
		Date:      *date,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	for _, s := range paperSeries {
		rec, err := measure(s, *iters)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccsvm-bench: %s: %v\n", s.Name, err)
			os.Exit(1)
		}
		b.Series = append(b.Series, rec)
		fmt.Fprintf(os.Stderr, "%-28s %12d ns/op %10d allocs/op %14.0f events/sec\n",
			rec.Name, rec.NsPerOp, rec.AllocsPerOp, rec.EventsPerSec)
	}

	doc, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccsvm-bench: %v\n", err)
		os.Exit(1)
	}
	doc = append(doc, '\n')
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "ccsvm-bench: %v\n", err)
		os.Exit(1)
	}
	path := filepath.Join(*out, "BENCH_"+*date+".json")
	if err := os.WriteFile(path, doc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "ccsvm-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	if *toStdout {
		os.Stdout.Write(doc)
	}
}

// measure runs one series: a warmup run to populate pools and caches, then
// iters measured runs bracketed by runtime.MemStats reads for the allocation
// counters. Simulated time and event counts are taken from the last run; they
// are identical across runs by the determinism contract.
func measure(s series, iters int) (record, error) {
	rec := record{series: s, Iters: iters}
	w, ok := ccsvm.Lookup(s.Workload)
	if !ok {
		return rec, fmt.Errorf("workload not registered")
	}
	sys, err := ccsvm.NewSystem(ccsvm.SystemKind(s.System))
	if err != nil {
		return rec, err
	}
	p := ccsvm.Params{N: s.N, Density: s.Density, Seed: benchSeed, IncludeInit: s.Init}

	if _, err := w.Run(sys, p); err != nil {
		return rec, err
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var last ccsvm.Result
	var events float64
	for i := 0; i < iters; i++ {
		r, err := w.Run(sys, p)
		if err != nil {
			return rec, err
		}
		last = r
		events += r.Metrics["sim.events"]
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)

	n := uint64(iters)
	rec.NsPerOp = wall.Nanoseconds() / int64(iters)
	rec.AllocsPerOp = (after.Mallocs - before.Mallocs) / n
	rec.BytesPerOp = (after.TotalAlloc - before.TotalAlloc) / n
	rec.SimTimePs = int64(last.Time)
	rec.SimEvents = last.Metrics["sim.events"]
	if sec := wall.Seconds(); sec > 0 {
		rec.EventsPerSec = events / sec
	}
	return rec, nil
}
