// Command ccsvm-bench measures simulator throughput for every paper-series
// benchmark and writes the results to BENCH_<date>.json, the repository's
// persistent benchmark baseline. Committing one baseline per optimization PR
// records the performance trajectory of the simulator itself — wall time,
// allocations, and simulation-events-per-second for each series — so
// regressions in the hot path are visible in review rather than discovered
// months later.
//
// Measurement mirrors the production sweep path: each series gets a
// machine-part Arena (as the Runner gives each of its workers one), so the
// numbers reflect engine/memory/message-pool reuse, not per-run construction.
//
// Usage:
//
//	ccsvm-bench                       # all series, 1 iteration each, BENCH_<today>.json
//	ccsvm-bench -iters 3              # average over 3 iterations per series
//	ccsvm-bench -out bench-artifacts  # write the JSON under a directory (CI uploads it)
//	ccsvm-bench -date 2026-07-29      # pin the filename date (reproducible CI paths)
//	ccsvm-bench -stdout               # also print the JSON to stdout
//	ccsvm-bench -parallel 1,2,4,8,16  # add scaling_w<N> series: the full list through the Runner
//	ccsvm-bench -cpuprofile cpu.pprof # profile the measured runs (pprof format)
//	ccsvm-bench -memprofile mem.pprof # heap profile after the measured runs
//
// Regression mode diffs a run against a committed baseline instead of
// writing one:
//
//	ccsvm-bench -compare BENCH_2026-07-29.json             # measure, then diff
//	ccsvm-bench -compare old.json -input new.json          # diff two files, no run
//
// The gate has three tiers per series, matched by name: sim_time_ps,
// sim_events and trace_hash must be bit-identical (the determinism contract —
// any drift is a simulation change, not noise), allocs_per_op may grow only
// within a tight threshold (-alloc-threshold, default 5% plus a few-alloc
// slack), and events_per_sec may drop only within a lenient threshold
// (-threshold, default 30%) because wall clock is noisy on shared runners.
// Any violation, or a baseline series missing from the current run, exits 1.
//
// The series list mirrors bench_test.go (the `go test -bench` harness): the
// same (workload, system, size) points the paper's figures use, resolved
// through the ccsvm registry. The scaling_w<N> series sweep that whole list
// through the Runner at a fixed worker-pool size; their efficiency field is
// the measured speedup over the smallest pool divided by the ideal speedup
// (workers beyond GOMAXPROCS cannot add cores). Timing here is wall-clock on
// the current host — the numbers are comparable across commits on the same
// machine class (the baseline records GOMAXPROCS and the CPU model), not
// across machines; the simulated-time, event counts and trace hashes are
// bit-deterministic everywhere.
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"ccsvm"
)

// series is one benchmark point of the paper's evaluation.
type series struct {
	Name     string  `json:"name"`
	Workload string  `json:"workload"`
	System   string  `json:"system"`
	N        int     `json:"n"`
	Density  float64 `json:"density,omitempty"`
	Init     bool    `json:"include_init,omitempty"`
}

// paperSeries mirrors the benchmark list in bench_test.go.
var paperSeries = []series{
	{Name: "fig5_matmul_ccsvm", Workload: "matmul", System: "ccsvm", N: 32},
	{Name: "fig5_matmul_apu_opencl", Workload: "matmul", System: "opencl", N: 32},
	{Name: "fig5_matmul_apu_cpu", Workload: "matmul", System: "cpu", N: 32},
	{Name: "fig6_apsp_ccsvm", Workload: "apsp", System: "ccsvm", N: 20},
	{Name: "fig6_apsp_apu_opencl", Workload: "apsp", System: "opencl", N: 20},
	{Name: "fig6_apsp_apu_cpu", Workload: "apsp", System: "cpu", N: 20},
	{Name: "fig7_barneshut_ccsvm", Workload: "barneshut", System: "ccsvm", N: 96},
	{Name: "fig7_barneshut_apu_cpu", Workload: "barneshut", System: "cpu", N: 96},
	{Name: "fig7_barneshut_apu_pthreads", Workload: "barneshut", System: "pthreads", N: 96},
	{Name: "fig8_sparse_size_ccsvm", Workload: "sparse", System: "ccsvm", N: 48, Density: 0.02},
	{Name: "fig8_sparse_size_apu_cpu", Workload: "sparse", System: "cpu", N: 48, Density: 0.02},
	{Name: "fig8_sparse_density_ccsvm", Workload: "sparse", System: "ccsvm", N: 48, Density: 0.06},
	{Name: "code_vectoradd_xthreads", Workload: "vectoradd", System: "ccsvm", N: 256},
	{Name: "code_vectoradd_opencl", Workload: "vectoradd", System: "opencl", N: 256, Init: true},
}

const benchSeed = 42

// record is one measured series in the emitted JSON.
type record struct {
	series
	Iters int `json:"iters"`
	// Workers is the Runner pool size on scaling_w<N> series; zero on the
	// single-series records.
	Workers     int     `json:"workers,omitempty"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
	BytesPerOp  uint64  `json:"bytes_per_op"`
	SimTimePs   int64   `json:"sim_time_ps"`
	SimEvents   float64 `json:"sim_events"`
	// TraceHash is the engine's order-sensitive event fingerprint in hex; on
	// scaling series it folds the per-run fingerprints of the sweep in spec
	// order. Bit-identical across hosts and worker counts by the determinism
	// contract.
	TraceHash    string  `json:"trace_hash,omitempty"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Efficiency (scaling series only) is the measured events/sec speedup
	// over the smallest measured pool divided by the ideal speedup
	// min(workers, GOMAXPROCS)/min(smallest, GOMAXPROCS).
	Efficiency float64 `json:"efficiency,omitempty"`
}

// baseline is the whole emitted file.
type baseline struct {
	Date      string `json:"date"`
	GoVersion string `json:"go"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// GOMAXPROCS and CPU identify the machine class the wall-clock numbers
	// were measured on; baselines are only comparable within one class.
	GOMAXPROCS int      `json:"gomaxprocs"`
	CPU        string   `json:"cpu,omitempty"`
	Series     []record `json:"series"`
}

func main() {
	iters := flag.Int("iters", 1, "measured iterations per series (after one warmup run)")
	out := flag.String("out", ".", "directory to write BENCH_<date>.json into")
	date := flag.String("date", time.Now().Format("2006-01-02"), "date stamp for the output filename")
	toStdout := flag.Bool("stdout", false, "also print the JSON document to stdout")
	comparePath := flag.String("compare", "", "baseline BENCH_*.json to diff against; regressions exit 1 (no baseline file is written)")
	inputPath := flag.String("input", "", "with -compare: read current results from this BENCH_*.json instead of running the benchmarks")
	evThreshold := flag.Float64("threshold", 0.30, "with -compare: max tolerated relative events/sec drop")
	allocThreshold := flag.Float64("alloc-threshold", 0.05, "with -compare: max tolerated relative allocs/op increase")
	parallel := flag.String("parallel", "", "comma-separated Runner worker counts (e.g. 1,2,4,8,16); adds scaling_w<N> series sweeping the full list through the Runner")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the measured runs to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file after the measured runs")
	flag.Parse()

	if *iters < 1 {
		fmt.Fprintln(os.Stderr, "ccsvm-bench: -iters must be at least 1")
		os.Exit(2)
	}
	if *inputPath != "" && *comparePath == "" {
		fmt.Fprintln(os.Stderr, "ccsvm-bench: -input only makes sense with -compare")
		os.Exit(2)
	}
	workerCounts, err := parseWorkerCounts(*parallel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccsvm-bench: %v\n", err)
		os.Exit(2)
	}

	if *comparePath != "" {
		base, err := readBaseline(*comparePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccsvm-bench: %v\n", err)
			os.Exit(2)
		}
		var cur []record
		if *inputPath != "" {
			in, err := readBaseline(*inputPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ccsvm-bench: %v\n", err)
				os.Exit(2)
			}
			cur = in.Series
		} else {
			cur = mustRunAll(*iters, workerCounts, *cpuProfile, *memProfile)
		}
		if !compare(os.Stdout, base.Series, cur, *evThreshold, *allocThreshold) {
			fmt.Fprintf(os.Stderr, "ccsvm-bench: regression against %s\n", *comparePath)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "ccsvm-bench: no regression against %s\n", *comparePath)
		return
	}
	b := baseline{
		Date:       *date,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPU:        cpuModel(),
	}
	b.Series = mustRunAll(*iters, workerCounts, *cpuProfile, *memProfile)

	doc, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccsvm-bench: %v\n", err)
		os.Exit(1)
	}
	doc = append(doc, '\n')
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "ccsvm-bench: %v\n", err)
		os.Exit(1)
	}
	path := filepath.Join(*out, "BENCH_"+*date+".json")
	if err := os.WriteFile(path, doc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "ccsvm-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	if *toStdout {
		os.Stdout.Write(doc)
	}
}

// parseWorkerCounts decodes the -parallel flag into sorted pool sizes; the
// smallest becomes the scaling reference point.
func parseWorkerCounts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, field := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-parallel: bad worker count %q", field)
		}
		out = append(out, n)
	}
	sort.Ints(out)
	return out, nil
}

// mustRunAll measures every series (and the scaling sweep, when worker counts
// were given), optionally bracketing the measured runs with a CPU profile and
// following them with a heap profile. Any measurement error exits 1.
func mustRunAll(iters int, workerCounts []int, cpuProfile, memProfile string) []record {
	var cpuF *os.File
	if cpuProfile != "" {
		var err error
		cpuF, err = createProfileFile(cpuProfile)
		if err == nil {
			err = pprof.StartCPUProfile(cpuF)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccsvm-bench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
	}
	recs, err := runAll(iters, workerCounts)
	if cpuF != nil {
		pprof.StopCPUProfile()
		cpuF.Close()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccsvm-bench: %v\n", err)
		os.Exit(1)
	}
	if memProfile != "" {
		f, err := createProfileFile(memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccsvm-bench: -memprofile: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ccsvm-bench: -memprofile: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}
	return recs
}

// createProfileFile creates a pprof output file, making its parent directory
// first so `-cpuprofile DIR/cpu.pprof -out DIR` works before DIR exists.
func createProfileFile(path string) (*os.File, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	return os.Create(path)
}

// runAll measures the per-series records followed by the scaling sweep,
// printing one progress line per record to stderr.
func runAll(iters int, workerCounts []int) ([]record, error) {
	var recs []record
	for _, s := range paperSeries {
		rec, err := measure(s, iters)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", s.Name, err)
		}
		recs = append(recs, rec)
		progress(rec)
	}
	scaling, err := measureScaling(iters, workerCounts)
	if err != nil {
		return nil, err
	}
	for _, rec := range scaling {
		progress(rec)
	}
	return append(recs, scaling...), nil
}

func progress(rec record) {
	line := fmt.Sprintf("%-28s %12d ns/op %10d allocs/op %14.0f events/sec",
		rec.Name, rec.NsPerOp, rec.AllocsPerOp, rec.EventsPerSec)
	if rec.Workers > 0 {
		line += fmt.Sprintf("  eff %.2f", rec.Efficiency)
	}
	fmt.Fprintln(os.Stderr, line)
}

// readBaseline loads and decodes one emitted BENCH_*.json document.
func readBaseline(path string) (baseline, error) {
	var b baseline
	doc, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(doc, &b); err != nil {
		return b, fmt.Errorf("%s: %v", path, err)
	}
	return b, nil
}

// cpuModel reads the host CPU model name. Wall-clock baselines are only
// comparable within one machine class, so the file records which class
// produced it; absent on hosts without /proc/cpuinfo.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, "model name"); ok {
			if i := strings.Index(rest, ":"); i >= 0 {
				return strings.TrimSpace(rest[i+1:])
			}
		}
	}
	return ""
}

// allocSlack is the absolute allocs/op increase tolerated on top of the
// relative threshold, so series with near-zero counts don't fail on a
// handful of runtime-internal allocations.
const allocSlack = 16

// compare diffs cur against base series-by-series (matched by name), writes
// one line per series to w, and reports whether the gate passes. The tiers
// are documented in the package comment: exact simulated time, event counts
// and trace hash, tight allocs/op, lenient events/sec.
func compare(w io.Writer, base, cur []record, evThreshold, allocThreshold float64) bool {
	curByName := make(map[string]record, len(cur))
	for _, r := range cur {
		curByName[r.Name] = r
	}
	ok := true
	for _, b := range base {
		c, found := curByName[b.Name]
		if !found {
			fmt.Fprintf(w, "%-28s MISSING: series in baseline but not in this run\n", b.Name)
			ok = false
			continue
		}
		delete(curByName, b.Name)
		var problems []string
		if c.SimTimePs != b.SimTimePs {
			problems = append(problems, fmt.Sprintf("sim_time_ps %d != baseline %d (determinism)", c.SimTimePs, b.SimTimePs))
		}
		if c.SimEvents != b.SimEvents {
			problems = append(problems, fmt.Sprintf("sim_events %.0f != baseline %.0f (determinism)", c.SimEvents, b.SimEvents))
		}
		if b.TraceHash != "" && c.TraceHash != b.TraceHash {
			problems = append(problems, fmt.Sprintf("trace_hash %s != baseline %s (determinism)", c.TraceHash, b.TraceHash))
		}
		allocLimit := uint64(float64(b.AllocsPerOp)*(1+allocThreshold)) + allocSlack
		if c.AllocsPerOp > allocLimit {
			problems = append(problems, fmt.Sprintf("allocs/op %d > limit %d (baseline %d)", c.AllocsPerOp, allocLimit, b.AllocsPerOp))
		}
		if b.EventsPerSec > 0 {
			evLimit := b.EventsPerSec * (1 - evThreshold)
			if c.EventsPerSec < evLimit {
				problems = append(problems, fmt.Sprintf("events/sec %.0f < limit %.0f (baseline %.0f)", c.EventsPerSec, evLimit, b.EventsPerSec))
			}
		}
		if len(problems) > 0 {
			fmt.Fprintf(w, "%-28s FAIL: %s\n", b.Name, strings.Join(problems, "; "))
			ok = false
			continue
		}
		fmt.Fprintf(w, "%-28s ok: %+.1f%% events/sec, %+d allocs/op\n",
			b.Name, 100*(c.EventsPerSec/b.EventsPerSec-1), int64(c.AllocsPerOp)-int64(b.AllocsPerOp))
	}
	// New series are fine — they have no baseline yet — but say so, since a
	// rename shows up as one missing plus one new. Matched entries were
	// deleted above, so whatever is left in curByName is new; iterate cur to
	// keep the output order deterministic.
	for _, r := range cur {
		if _, isNew := curByName[r.Name]; isNew {
			fmt.Fprintf(w, "%-28s new: no baseline entry\n", r.Name)
		}
	}
	return ok
}

// measure runs one series: a warmup run to populate pools and caches, then
// iters measured runs bracketed by runtime.MemStats reads for the allocation
// counters. Simulated time, event counts and the trace hash are taken from
// the last run; they are identical across runs by the determinism contract.
func measure(s series, iters int) (record, error) {
	rec := record{series: s, Iters: iters}
	w, ok := ccsvm.Lookup(s.Workload)
	if !ok {
		return rec, fmt.Errorf("workload not registered")
	}
	sys, err := ccsvm.NewSystem(ccsvm.SystemKind(s.System))
	if err != nil {
		return rec, err
	}
	// The production sweep path gives every Runner worker a machine-part
	// arena; measure the same way. The warmup run populates the arena, so the
	// measured iterations pay reuse cost, not construction cost.
	sys.Arena = ccsvm.NewArena()
	p := ccsvm.Params{N: s.N, Density: s.Density, Seed: benchSeed, IncludeInit: s.Init}

	if _, err := w.Run(sys, p); err != nil {
		return rec, err
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var last ccsvm.Result
	var events float64
	for i := 0; i < iters; i++ {
		r, err := w.Run(sys, p)
		if err != nil {
			return rec, err
		}
		last = r
		events += r.Metrics["sim.events"]
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)

	n := uint64(iters)
	rec.NsPerOp = wall.Nanoseconds() / int64(iters)
	rec.AllocsPerOp = (after.Mallocs - before.Mallocs) / n
	rec.BytesPerOp = (after.TotalAlloc - before.TotalAlloc) / n
	rec.SimTimePs = int64(last.Time)
	rec.SimEvents = last.Metrics["sim.events"]
	rec.TraceHash = traceHash(last)
	if sec := wall.Seconds(); sec > 0 {
		rec.EventsPerSec = events / sec
	}
	return rec, nil
}

// measureScaling sweeps the full paper-series list through the Runner at each
// requested worker-pool size, producing one scaling_w<N> record per size. The
// per-run results are bit-identical at every pool size (the sink-order and
// arena-reuse contracts), so the summed sim_time_ps/sim_events/trace_hash
// columns double as a parallelism determinism check; only wall time varies.
func measureScaling(iters int, workerCounts []int) ([]record, error) {
	if len(workerCounts) == 0 {
		return nil, nil
	}
	specs := make([]ccsvm.RunSpec, 0, len(paperSeries))
	for _, s := range paperSeries {
		sys, err := ccsvm.NewSystem(ccsvm.SystemKind(s.System))
		if err != nil {
			return nil, fmt.Errorf("%s: %v", s.Name, err)
		}
		specs = append(specs, ccsvm.RunSpec{
			Workload: s.Workload,
			System:   sys,
			Params:   ccsvm.Params{N: s.N, Density: s.Density, Seed: benchSeed, IncludeInit: s.Init},
		})
	}
	recs := make([]record, 0, len(workerCounts))
	for _, workers := range workerCounts {
		rec, err := measureSweep(specs, workers, iters)
		if err != nil {
			return nil, fmt.Errorf("scaling_w%d: %v", workers, err)
		}
		recs = append(recs, rec)
	}
	// Efficiency: measured speedup over the smallest pool divided by the
	// ideal speedup. Workers beyond GOMAXPROCS cannot add cores, so the ideal
	// curve flattens there instead of pretending oversubscription should
	// scale linearly.
	ref := recs[0]
	p := runtime.GOMAXPROCS(0)
	for i := range recs {
		ideal := float64(min(recs[i].Workers, p)) / float64(min(ref.Workers, p))
		if ref.EventsPerSec > 0 && ideal > 0 {
			recs[i].Efficiency = (recs[i].EventsPerSec / ref.EventsPerSec) / ideal
		}
	}
	return recs, nil
}

// measureSweep measures one Runner pool size: a warmup sweep, then iters
// measured sweeps of the whole spec list.
func measureSweep(specs []ccsvm.RunSpec, workers, iters int) (record, error) {
	rec := record{
		series:  series{Name: fmt.Sprintf("scaling_w%d", workers), Workload: "all", System: "runner"},
		Iters:   iters,
		Workers: workers,
	}
	runner := &ccsvm.Runner{Parallel: workers}
	if _, err := runner.Run(specs); err != nil {
		return rec, err
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var last []ccsvm.RunResult
	var events float64
	for i := 0; i < iters; i++ {
		results, err := runner.Run(specs)
		if err != nil {
			return rec, err
		}
		last = results
		for _, rr := range results {
			events += rr.Result.Metrics["sim.events"]
		}
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)

	n := uint64(iters)
	rec.NsPerOp = wall.Nanoseconds() / int64(iters)
	rec.AllocsPerOp = (after.Mallocs - before.Mallocs) / n
	rec.BytesPerOp = (after.TotalAlloc - before.TotalAlloc) / n
	for _, rr := range last {
		rec.SimTimePs += int64(rr.Result.Time)
		rec.SimEvents += rr.Result.Metrics["sim.events"]
	}
	rec.TraceHash = foldTraceHashes(last)
	if sec := wall.Seconds(); sec > 0 {
		rec.EventsPerSec = events / sec
	}
	return rec, nil
}

// traceHash recomposes the engine fingerprint halves a Result's metrics carry
// into the hex form the baseline stores.
func traceHash(r ccsvm.Result) string {
	hi := uint64(r.Metrics["sim.trace_hash_hi"])
	lo := uint64(r.Metrics["sim.trace_hash_lo"])
	return fmt.Sprintf("%016x", hi<<32|lo)
}

// foldTraceHashes reduces a sweep's per-run fingerprints, in spec order, to
// one order-sensitive hash for the scaling records.
func foldTraceHashes(results []ccsvm.RunResult) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, rr := range results {
		hi := uint64(rr.Result.Metrics["sim.trace_hash_hi"])
		lo := uint64(rr.Result.Metrics["sim.trace_hash_lo"])
		binary.BigEndian.PutUint64(buf[:], hi<<32|lo)
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
