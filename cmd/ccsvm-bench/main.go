// Command ccsvm-bench measures simulator throughput for every paper-series
// benchmark and writes the results to BENCH_<date>.json, the repository's
// persistent benchmark baseline. Committing one baseline per optimization PR
// records the performance trajectory of the simulator itself — wall time,
// allocations, and simulation-events-per-second for each series — so
// regressions in the hot path are visible in review rather than discovered
// months later.
//
// Usage:
//
//	ccsvm-bench                       # all series, 1 iteration each, BENCH_<today>.json
//	ccsvm-bench -iters 3              # average over 3 iterations per series
//	ccsvm-bench -out bench-artifacts  # write the JSON under a directory (CI uploads it)
//	ccsvm-bench -date 2026-07-29      # pin the filename date (reproducible CI paths)
//	ccsvm-bench -stdout               # also print the JSON to stdout
//
// Regression mode diffs a run against a committed baseline instead of
// writing one:
//
//	ccsvm-bench -compare BENCH_2026-07-29.json             # measure, then diff
//	ccsvm-bench -compare old.json -input new.json          # diff two files, no run
//
// The gate has three tiers per series, matched by name: sim_time_ps and
// sim_events must be bit-identical (the determinism contract — any drift is
// a simulation change, not noise), allocs_per_op may grow only within a
// tight threshold (-alloc-threshold, default 5% plus a few-alloc slack),
// and events_per_sec may drop only within a lenient threshold (-threshold,
// default 30%) because wall clock is noisy on shared runners. Any violation,
// or a baseline series missing from the current run, exits 1.
//
// The series list mirrors bench_test.go (the `go test -bench` harness): the
// same (workload, system, size) points the paper's figures use, resolved
// through the ccsvm registry. Timing here is wall-clock on the current host —
// the numbers are comparable across commits on the same machine class, not
// across machines; the simulated-time and event counts are bit-deterministic
// everywhere.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"ccsvm"
)

// series is one benchmark point of the paper's evaluation.
type series struct {
	Name     string  `json:"name"`
	Workload string  `json:"workload"`
	System   string  `json:"system"`
	N        int     `json:"n"`
	Density  float64 `json:"density,omitempty"`
	Init     bool    `json:"include_init,omitempty"`
}

// paperSeries mirrors the benchmark list in bench_test.go.
var paperSeries = []series{
	{Name: "fig5_matmul_ccsvm", Workload: "matmul", System: "ccsvm", N: 32},
	{Name: "fig5_matmul_apu_opencl", Workload: "matmul", System: "opencl", N: 32},
	{Name: "fig5_matmul_apu_cpu", Workload: "matmul", System: "cpu", N: 32},
	{Name: "fig6_apsp_ccsvm", Workload: "apsp", System: "ccsvm", N: 20},
	{Name: "fig6_apsp_apu_opencl", Workload: "apsp", System: "opencl", N: 20},
	{Name: "fig6_apsp_apu_cpu", Workload: "apsp", System: "cpu", N: 20},
	{Name: "fig7_barneshut_ccsvm", Workload: "barneshut", System: "ccsvm", N: 96},
	{Name: "fig7_barneshut_apu_cpu", Workload: "barneshut", System: "cpu", N: 96},
	{Name: "fig7_barneshut_apu_pthreads", Workload: "barneshut", System: "pthreads", N: 96},
	{Name: "fig8_sparse_size_ccsvm", Workload: "sparse", System: "ccsvm", N: 48, Density: 0.02},
	{Name: "fig8_sparse_size_apu_cpu", Workload: "sparse", System: "cpu", N: 48, Density: 0.02},
	{Name: "fig8_sparse_density_ccsvm", Workload: "sparse", System: "ccsvm", N: 48, Density: 0.06},
	{Name: "code_vectoradd_xthreads", Workload: "vectoradd", System: "ccsvm", N: 256},
	{Name: "code_vectoradd_opencl", Workload: "vectoradd", System: "opencl", N: 256, Init: true},
}

const benchSeed = 42

// record is one measured series in the emitted JSON.
type record struct {
	series
	Iters        int     `json:"iters"`
	NsPerOp      int64   `json:"ns_per_op"`
	AllocsPerOp  uint64  `json:"allocs_per_op"`
	BytesPerOp   uint64  `json:"bytes_per_op"`
	SimTimePs    int64   `json:"sim_time_ps"`
	SimEvents    float64 `json:"sim_events"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// baseline is the whole emitted file.
type baseline struct {
	Date      string   `json:"date"`
	GoVersion string   `json:"go"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Series    []record `json:"series"`
}

func main() {
	iters := flag.Int("iters", 1, "measured iterations per series (after one warmup run)")
	out := flag.String("out", ".", "directory to write BENCH_<date>.json into")
	date := flag.String("date", time.Now().Format("2006-01-02"), "date stamp for the output filename")
	toStdout := flag.Bool("stdout", false, "also print the JSON document to stdout")
	comparePath := flag.String("compare", "", "baseline BENCH_*.json to diff against; regressions exit 1 (no baseline file is written)")
	inputPath := flag.String("input", "", "with -compare: read current results from this BENCH_*.json instead of running the benchmarks")
	evThreshold := flag.Float64("threshold", 0.30, "with -compare: max tolerated relative events/sec drop")
	allocThreshold := flag.Float64("alloc-threshold", 0.05, "with -compare: max tolerated relative allocs/op increase")
	flag.Parse()

	if *iters < 1 {
		fmt.Fprintln(os.Stderr, "ccsvm-bench: -iters must be at least 1")
		os.Exit(2)
	}
	if *inputPath != "" && *comparePath == "" {
		fmt.Fprintln(os.Stderr, "ccsvm-bench: -input only makes sense with -compare")
		os.Exit(2)
	}

	if *comparePath != "" {
		base, err := readBaseline(*comparePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccsvm-bench: %v\n", err)
			os.Exit(2)
		}
		var cur []record
		if *inputPath != "" {
			in, err := readBaseline(*inputPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ccsvm-bench: %v\n", err)
				os.Exit(2)
			}
			cur = in.Series
		} else {
			for _, s := range paperSeries {
				rec, err := measure(s, *iters)
				if err != nil {
					fmt.Fprintf(os.Stderr, "ccsvm-bench: %s: %v\n", s.Name, err)
					os.Exit(1)
				}
				cur = append(cur, rec)
			}
		}
		if !compare(os.Stdout, base.Series, cur, *evThreshold, *allocThreshold) {
			fmt.Fprintf(os.Stderr, "ccsvm-bench: regression against %s\n", *comparePath)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "ccsvm-bench: no regression against %s\n", *comparePath)
		return
	}
	b := baseline{
		Date:      *date,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	for _, s := range paperSeries {
		rec, err := measure(s, *iters)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccsvm-bench: %s: %v\n", s.Name, err)
			os.Exit(1)
		}
		b.Series = append(b.Series, rec)
		fmt.Fprintf(os.Stderr, "%-28s %12d ns/op %10d allocs/op %14.0f events/sec\n",
			rec.Name, rec.NsPerOp, rec.AllocsPerOp, rec.EventsPerSec)
	}

	doc, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccsvm-bench: %v\n", err)
		os.Exit(1)
	}
	doc = append(doc, '\n')
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "ccsvm-bench: %v\n", err)
		os.Exit(1)
	}
	path := filepath.Join(*out, "BENCH_"+*date+".json")
	if err := os.WriteFile(path, doc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "ccsvm-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	if *toStdout {
		os.Stdout.Write(doc)
	}
}

// readBaseline loads and decodes one emitted BENCH_*.json document.
func readBaseline(path string) (baseline, error) {
	var b baseline
	doc, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(doc, &b); err != nil {
		return b, fmt.Errorf("%s: %v", path, err)
	}
	return b, nil
}

// allocSlack is the absolute allocs/op increase tolerated on top of the
// relative threshold, so series with near-zero counts don't fail on a
// handful of runtime-internal allocations.
const allocSlack = 16

// compare diffs cur against base series-by-series (matched by name), writes
// one line per series to w, and reports whether the gate passes. The tiers
// are documented in the package comment: exact simulated time and event
// counts, tight allocs/op, lenient events/sec.
func compare(w io.Writer, base, cur []record, evThreshold, allocThreshold float64) bool {
	curByName := make(map[string]record, len(cur))
	for _, r := range cur {
		curByName[r.Name] = r
	}
	ok := true
	for _, b := range base {
		c, found := curByName[b.Name]
		if !found {
			fmt.Fprintf(w, "%-28s MISSING: series in baseline but not in this run\n", b.Name)
			ok = false
			continue
		}
		delete(curByName, b.Name)
		var problems []string
		if c.SimTimePs != b.SimTimePs {
			problems = append(problems, fmt.Sprintf("sim_time_ps %d != baseline %d (determinism)", c.SimTimePs, b.SimTimePs))
		}
		if c.SimEvents != b.SimEvents {
			problems = append(problems, fmt.Sprintf("sim_events %.0f != baseline %.0f (determinism)", c.SimEvents, b.SimEvents))
		}
		allocLimit := uint64(float64(b.AllocsPerOp)*(1+allocThreshold)) + allocSlack
		if c.AllocsPerOp > allocLimit {
			problems = append(problems, fmt.Sprintf("allocs/op %d > limit %d (baseline %d)", c.AllocsPerOp, allocLimit, b.AllocsPerOp))
		}
		if b.EventsPerSec > 0 {
			evLimit := b.EventsPerSec * (1 - evThreshold)
			if c.EventsPerSec < evLimit {
				problems = append(problems, fmt.Sprintf("events/sec %.0f < limit %.0f (baseline %.0f)", c.EventsPerSec, evLimit, b.EventsPerSec))
			}
		}
		if len(problems) > 0 {
			fmt.Fprintf(w, "%-28s FAIL: %s\n", b.Name, strings.Join(problems, "; "))
			ok = false
			continue
		}
		fmt.Fprintf(w, "%-28s ok: %+.1f%% events/sec, %+d allocs/op\n",
			b.Name, 100*(c.EventsPerSec/b.EventsPerSec-1), int64(c.AllocsPerOp)-int64(b.AllocsPerOp))
	}
	// New series are fine — they have no baseline yet — but say so, since a
	// rename shows up as one missing plus one new. Matched entries were
	// deleted above, so whatever is left in curByName is new; iterate cur to
	// keep the output order deterministic.
	for _, r := range cur {
		if _, isNew := curByName[r.Name]; isNew {
			fmt.Fprintf(w, "%-28s new: no baseline entry\n", r.Name)
		}
	}
	return ok
}

// measure runs one series: a warmup run to populate pools and caches, then
// iters measured runs bracketed by runtime.MemStats reads for the allocation
// counters. Simulated time and event counts are taken from the last run; they
// are identical across runs by the determinism contract.
func measure(s series, iters int) (record, error) {
	rec := record{series: s, Iters: iters}
	w, ok := ccsvm.Lookup(s.Workload)
	if !ok {
		return rec, fmt.Errorf("workload not registered")
	}
	sys, err := ccsvm.NewSystem(ccsvm.SystemKind(s.System))
	if err != nil {
		return rec, err
	}
	p := ccsvm.Params{N: s.N, Density: s.Density, Seed: benchSeed, IncludeInit: s.Init}

	if _, err := w.Run(sys, p); err != nil {
		return rec, err
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var last ccsvm.Result
	var events float64
	for i := 0; i < iters; i++ {
		r, err := w.Run(sys, p)
		if err != nil {
			return rec, err
		}
		last = r
		events += r.Metrics["sim.events"]
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)

	n := uint64(iters)
	rec.NsPerOp = wall.Nanoseconds() / int64(iters)
	rec.AllocsPerOp = (after.Mallocs - before.Mallocs) / n
	rec.BytesPerOp = (after.TotalAlloc - before.TotalAlloc) / n
	rec.SimTimePs = int64(last.Time)
	rec.SimEvents = last.Metrics["sim.events"]
	if sec := wall.Seconds(); sec > 0 {
		rec.EventsPerSec = events / sec
	}
	return rec, nil
}
