// ccsvm-lint runs the ccsvm static-analysis suite (internal/lint) over the
// repository: determinism, pool-ownership, engine-context and hot-path
// enforcement, plus //ccsvm: directive hygiene. It is the multichecker CI
// runs; a non-zero exit means findings (1) or a load failure (2).
//
// Usage:
//
//	go run ./cmd/ccsvm-lint ./...
//	go run ./cmd/ccsvm-lint -only determinism,hotpath ./internal/sim
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ccsvm/internal/lint"
	"ccsvm/internal/lint/analysis"
	"ccsvm/internal/lint/load"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ccsvm-lint [-only names] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, strings.ReplaceAll(a.Doc, "\n", "\n                   "))
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Println(a.Name)
		}
		return
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var selected []*analysis.Analyzer
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "ccsvm-lint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
		analyzers = selected
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, modPath, err := load.ModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccsvm-lint:", err)
		os.Exit(2)
	}
	loader := load.New(load.Config{Root: root, ModulePath: modPath})
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccsvm-lint:", err)
		os.Exit(2)
	}
	findings, err := lint.Run(loader.Fset(), pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccsvm-lint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Printf("%s: [%s] %s\n", f.Pos, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "ccsvm-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
