// ccsvm-lint runs the ccsvm static-analysis suite (internal/lint) over the
// repository: determinism, pool-ownership, engine-context and hot-path
// enforcement, plus //ccsvm: directive hygiene. It is the multichecker CI
// runs; a non-zero exit means findings (1) or a load failure (2).
//
// Usage:
//
//	go run ./cmd/ccsvm-lint ./...
//	go run ./cmd/ccsvm-lint -only determinism,hotpath ./internal/sim
//	go run ./cmd/ccsvm-lint -format sarif ./... > lint.sarif
//
// -format selects the report rendering: text (default, one line per
// finding), json (a small stable schema for scripting), or sarif (SARIF
// 2.1.0 for code-scanning upload). JSON and SARIF documents are written to
// stdout even when there are no findings; the exit status is the signal.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ccsvm/internal/lint"
	"ccsvm/internal/lint/analysis"
	"ccsvm/internal/lint/load"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	format := flag.String("format", "text", "report format: text, json or sarif")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ccsvm-lint [-only names] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, strings.ReplaceAll(a.Doc, "\n", "\n                   "))
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(os.Stderr, "ccsvm-lint: unknown format %q (want text, json or sarif)\n", *format)
		os.Exit(2)
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Println(a.Name)
		}
		return
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var selected []*analysis.Analyzer
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "ccsvm-lint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
		analyzers = selected
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, modPath, err := load.ModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccsvm-lint:", err)
		os.Exit(2)
	}
	loader := load.New(load.Config{Root: root, ModulePath: modPath})
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccsvm-lint:", err)
		os.Exit(2)
	}
	findings, err := lint.Run(loader.Fset(), pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccsvm-lint:", err)
		os.Exit(2)
	}
	switch *format {
	case "json":
		err = lint.WriteJSON(os.Stdout, findings, root)
	case "sarif":
		err = lint.WriteSARIF(os.Stdout, findings, analyzers, root)
	default:
		for _, f := range findings {
			fmt.Printf("%s: [%s] %s\n", f.Pos, f.Analyzer, f.Message)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccsvm-lint:", err)
		os.Exit(2)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "ccsvm-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
