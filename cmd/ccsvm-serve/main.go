// ccsvm-serve is the long-running sweep service: an HTTP front end over the
// simulator with a content-addressed result cache and request coalescing
// (see internal/sweepd and ARCHITECTURE.md, "Serving & caching").
//
// Usage:
//
//	ccsvm-serve [-addr :8344] [-cache-dir DIR] [-cache-entries N]
//	            [-parallel N] [-queue N]
//
//	curl -s localhost:8344/healthz
//	curl -s -X POST localhost:8344/run -d '{"workload":"matmul","system":"ccsvm"}'
//	curl -s -X POST localhost:8344/sweep -d '{"specs":[
//	  {"workload":"matmul","system":"ccsvm"},
//	  {"workload":"matmul","preset":"apu-base","system":"opencl"}]}'
//	curl -s localhost:8344/cache/stats
//
// With -cache-dir, results persist across restarts; repeated specs are
// served in O(lookup) from the cache, and duplicate in-flight specs attach
// to one simulation. SIGINT/SIGTERM drain in-flight jobs before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ccsvm"
	"ccsvm/internal/sweepd"
)

func main() {
	addr := flag.String("addr", ":8344", "listen address")
	cacheDir := flag.String("cache-dir", "", "persistent result-cache directory (empty: in-memory cache only)")
	cacheEntries := flag.Int("cache-entries", 0, "in-memory cache capacity (0: default)")
	parallel := flag.Int("parallel", 0, "max concurrent simulations (0: GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max admitted requests before 503 (0: default)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	cache, err := ccsvm.NewCache(ccsvm.CacheOptions{MaxEntries: *cacheEntries, Dir: *cacheDir})
	if err != nil {
		log.Fatalf("ccsvm-serve: %v", err)
	}
	svc := sweepd.New(sweepd.Config{Cache: cache, Parallel: *parallel, QueueDepth: *queue})
	srv := &http.Server{Addr: *addr, Handler: svc}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("ccsvm-serve: listening on %s (cache dir %q)", *addr, *cacheDir)

	select {
	case err := <-errCh:
		log.Fatalf("ccsvm-serve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("ccsvm-serve: draining (up to %v)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop accepting and wait for handlers, then for the job queue — the
	// handlers hold the jobs, so the second wait is a belt-and-braces bound.
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("ccsvm-serve: http shutdown: %v", err)
	}
	if err := svc.Shutdown(drainCtx); err != nil {
		log.Printf("ccsvm-serve: job drain: %v", err)
	}
	log.Printf("ccsvm-serve: done")
}
