// Command ccsvm-stress drives the coherence-conformance stress subsystem
// (internal/memtest) from the command line: it generates seed-driven random
// load/store/atomic traffic over a small shared working set, runs it on the
// full CCSVM stack, and checks the data-value oracle, the protocol invariants
// at quiesce points, pool accounting, and (across repeated seeds) the
// determinism contract. On failure it minimizes the program to a directed
// litmus case and prints it as reproducible Go source.
//
// Usage:
//
//	ccsvm-stress -seed 1 -ops 100000 -preset ccsvm-base
//	ccsvm-stress -protocol mesi           # stress the MESI table instead of MOESI
//	ccsvm-stress -duration 30s            # keep drawing seeds for 30 s
//	ccsvm-stress -inject-skip-invs 1      # prove the checks catch a planted bug
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ccsvm/internal/memtest"
)

func main() {
	var (
		preset   = flag.String("preset", "ccsvm-base", "machine to stress: a ccsvm preset name, \"small\" or \"tiny\"")
		protocol = flag.String("protocol", "", "coherence protocol to run (moesi, mesi); empty keeps the machine's configured one")
		seed     = flag.Int64("seed", 1, "generator seed (replaying a seed reproduces a run bit for bit)")
		ops      = flag.Int("ops", 100_000, "total operation budget, split across all threads")
		cores    = flag.Int("cores", 3, "CPU threads (including main)")
		mttop    = flag.Int("mttop", 6, "MTTOP threads")
		rounds   = flag.Int("rounds", 2, "program launches per run, with an invariant sample at each quiesce")
		lines    = flag.Int("lines", 16, "distinct cache lines in the shared working set")
		slots    = flag.Int("slots-per-line", 4, "independent 8-byte slots per line (false-sharing pressure)")
		pctRead  = flag.Int("read", 35, "percent loads")
		pctWrite = flag.Int("write", 30, "percent stores")
		pctAtom  = flag.Int("atomic", 20, "percent atomic RMWs (the rest are compute bursts)")
		duration = flag.Duration("duration", 0, "keep drawing consecutive seeds until this much wall time has passed (0: one seed)")
		shrink   = flag.Bool("shrink", true, "on failure, minimize to a litmus case and print Go source")
		inject   = flag.Int("inject-skip-invs", 0, "arm the directory's skip-invalidation fault injection (self-test of the checks)")
		verbose  = flag.Bool("v", false, "print a line per run")
	)
	flag.Parse()

	threads := *cores + *mttop
	if threads < 1 {
		fmt.Fprintln(os.Stderr, "ccsvm-stress: need at least one thread")
		os.Exit(2)
	}
	cfg := memtest.Config{
		MachineName:             *preset,
		Protocol:                *protocol,
		Seed:                    *seed,
		CPUThreads:              *cores,
		MTTOPThreads:            *mttop,
		OpsPerThread:            (*ops + threads - 1) / threads,
		Rounds:                  *rounds,
		Lines:                   *lines,
		SlotsPerLine:            *slots,
		PctRead:                 *pctRead,
		PctWrite:                *pctWrite,
		PctAtomic:               *pctAtom,
		InjectSkipInvalidations: *inject,
	}

	start := time.Now()
	runs := 0
	for {
		cfg.Seed = *seed + int64(runs)
		runs++
		rep := memtest.RunSeed(cfg)
		if *verbose || !rep.OK() {
			fmt.Printf("seed %-6d ops %-8d sim %-12v events %-9d trace %#016x mem %#016x msgs %d\n",
				rep.Seed, rep.Ops, rep.SimTime, rep.Events, rep.TraceHash, rep.MemHash, rep.Pool.Gets)
		}
		if !rep.OK() {
			fmt.Printf("FAIL seed %d: %s\n", rep.Seed, rep.FailureSummary())
			if *shrink {
				prog := memtest.Generate(cfg)
				small, sruns := memtest.Shrink(cfg, prog, 300)
				fmt.Printf("\nshrunk %d ops -> %d ops in %d runs; reproducer:\n\n",
					prog.Ops(), small.Ops(), sruns)
				fmt.Println(memtest.GoSource(cfg, small, fmt.Sprintf("LitmusSeed%d", rep.Seed)))
			}
			os.Exit(1)
		}
		if *duration <= 0 || time.Since(start) >= *duration {
			break
		}
	}
	label := *preset
	if *protocol != "" {
		label += "/" + *protocol
	}
	fmt.Printf("PASS %d run(s) on %s (%d ops/run, %d threads, seed %d..%d) in %v\n",
		runs, label, cfg.OpsPerThread*threads, threads, *seed, *seed+int64(runs-1), time.Since(start).Round(time.Millisecond))
}
