// Command paper-figs regenerates the tables and figures of the paper's
// evaluation section (Hechtman & Sorin, ISPASS 2013). Each figure is printed
// as a text table of the same data series the paper plots; EXPERIMENTS.md
// records a captured run and compares the shapes against the paper.
//
// Usage:
//
//	paper-figs -fig all             # every experiment, quick sweep sizes
//	paper-figs -fig all -parallel 4 # same tables, sweeps fanned out over 4 workers
//	paper-figs -fig 5 -full         # Figure 5 only, larger sweep
//	paper-figs -fig table2          # the system-configuration table
//	paper-figs -fig lanes           # MTTOP issue-width sensitivity sweep
//	paper-figs -fig cache           # shared-L2 size sensitivity sweep
//	paper-figs -fig protocols       # MOESI-vs-MESI coherence protocol sweep
//
// Every (workload, system) pair is resolved through the ccsvm registry and
// executed by the facade's Runner; -parallel changes only wall-clock time,
// never the numbers in the tables (each simulation is an independent
// deterministic engine).
package main

import (
	"flag"
	"fmt"
	"os"

	"ccsvm/internal/experiments"
	"ccsvm/internal/stats"
)

func main() {
	fig := flag.String("fig", "all", "which experiment to run: all, table2, 5, 6, 7, 8a, 8b, 9, code, lanes, cache, protocols")
	full := flag.Bool("full", false, "use the larger sweep sizes (slower)")
	seed := flag.Int64("seed", 42, "workload input seed")
	parallel := flag.Int("parallel", 1, "simulations to run concurrently (0 = GOMAXPROCS)")
	flag.Parse()

	opts := experiments.DefaultOptions()
	opts.Full = *full
	opts.Seed = *seed
	opts.Parallel = *parallel

	run := func(name string, fn func(experiments.Options) (*stats.Table, error)) {
		tb, err := fn(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paper-figs: %s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(tb.String())
	}

	switch *fig {
	case "all":
		tables, err := experiments.All(opts)
		for _, tb := range tables {
			fmt.Println(tb.String())
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "paper-figs: %v\n", err)
			os.Exit(1)
		}
	case "table2":
		fmt.Println(experiments.Table2().String())
	case "5":
		run("figure 5", experiments.Figure5)
	case "6":
		run("figure 6", experiments.Figure6)
	case "7":
		run("figure 7", experiments.Figure7)
	case "8a":
		run("figure 8 left", experiments.Figure8Left)
	case "8b":
		run("figure 8 right", experiments.Figure8Right)
	case "9":
		run("figure 9", experiments.Figure9)
	case "code":
		run("code comparison", experiments.CodeComparison)
	case "lanes":
		run("lane sensitivity", experiments.LaneSensitivity)
	case "cache":
		run("cache sensitivity", experiments.CacheSensitivity)
	case "protocols":
		run("protocol sensitivity", experiments.ProtocolSensitivity)
	default:
		fmt.Fprintf(os.Stderr, "paper-figs: unknown figure %q\n", *fig)
		os.Exit(2)
	}
}
