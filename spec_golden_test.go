package ccsvm_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	"ccsvm"
)

// The golden hash-stability suite: testdata/spec_hashes.json commits the
// content address of a spec for every (workload, system) pair, every preset,
// every override path of both machines, and a spread of parameter points.
// RunSpec.Hash keys the persistent result cache, so ANY drift in the
// canonical encoding — a reordered config field, a renamed parameter, a new
// normalization — silently poisons or orphans cached results unless it is
// paired with a SpecFormatVersion bump. This test makes that drift loud:
// regenerate the fixture ONLY together with a version bump, via
//
//	go test -run TestGoldenSpecHashes -update-spec-hashes .

var updateSpecHashes = flag.Bool("update-spec-hashes", false,
	"rewrite testdata/spec_hashes.json from the current encoding (pair with a SpecFormatVersion bump)")

// goldenSpecsPath is the committed fixture location.
const goldenSpecsPath = "testdata/spec_hashes.json"

// goldenEntry is one committed (spec → hash) pair. The spec is stored in its
// BuildSpec input form so the fixture is readable and re-resolvable.
type goldenEntry struct {
	Name      string       `json:"name"`
	Workload  string       `json:"workload"`
	System    string       `json:"system"`
	Preset    string       `json:"preset,omitempty"`
	Overrides []string     `json:"overrides,omitempty"`
	Params    goldenParams `json:"params"`
	Hash      string       `json:"hash"`
}

// goldenParams mirrors ccsvm.Params.
type goldenParams struct {
	N           int     `json:"n"`
	Density     float64 `json:"density"`
	Seed        int64   `json:"seed"`
	IncludeInit bool    `json:"include_init"`
}

// goldenValueFor picks a structurally valid override value for a path's
// declared type (the " type" suffix of ccsvm.OverridePaths entries).
// Validated enum fields need a real member rather than the generic
// placeholder of their type.
func goldenValueFor(path, typ string) string {
	if strings.HasSuffix(path, ".Coherence.Protocol") {
		return "mesi"
	}
	switch typ {
	case "bool":
		return "true"
	case "duration":
		return "5ns"
	case "float64":
		return "0.5"
	case "string":
		return "golden"
	default: // int, int8..int64, uint..uint64
		return "2"
	}
}

// goldenSpecs enumerates the fixture population deterministically.
func goldenSpecs(t *testing.T) []goldenEntry {
	t.Helper()
	p := ccsvm.DefaultParams()
	var entries []goldenEntry
	add := func(name, workload string, kind ccsvm.SystemKind, preset string, overrides []string, params ccsvm.Params) {
		spec, err := ccsvm.BuildSpec(workload, kind, preset, overrides, params)
		if err != nil {
			t.Fatalf("golden spec %q does not resolve: %v", name, err)
		}
		entries = append(entries, goldenEntry{
			Name:      name,
			Workload:  workload,
			System:    string(spec.System.Kind),
			Preset:    preset,
			Overrides: overrides,
			Params: goldenParams{N: params.N, Density: params.Density,
				Seed: params.Seed, IncludeInit: params.IncludeInit},
			Hash: spec.Hash().Hex(),
		})
	}

	// Every registered (workload, system) pair at paper-default params.
	for _, w := range ccsvm.Workloads() {
		for _, kind := range w.SystemKinds() {
			add(fmt.Sprintf("pair/%s/%s", w.Name, kind), w.Name, kind, "", nil, p)
		}
	}
	// Every preset on every system kind its machine runs, carried by the
	// first registered workload that supports the kind.
	workloadFor := func(kind ccsvm.SystemKind) string {
		for _, w := range ccsvm.Workloads() {
			if w.Supports(kind) {
				return w.Name
			}
		}
		t.Fatalf("no registered workload supports system %s", kind)
		return ""
	}
	for _, pr := range ccsvm.Presets() {
		for _, kind := range pr.Kinds() {
			add(fmt.Sprintf("preset/%s/%s", pr.Name, kind), workloadFor(kind), kind, pr.Name, nil, p)
		}
	}
	// Every override path of both machines, each as a single-override spec
	// on that machine's default matmul run.
	for _, machine := range []struct {
		kind ccsvm.MachineKind
		sys  ccsvm.SystemKind
	}{{ccsvm.MachineCCSVM, ccsvm.SystemCCSVM}, {ccsvm.MachineAPU, ccsvm.SystemCPU}} {
		for _, pathType := range ccsvm.OverridePaths(machine.kind) {
			path, typ, ok := strings.Cut(pathType, " ")
			if !ok {
				t.Fatalf("override path %q has no type suffix", pathType)
			}
			override := path + "=" + goldenValueFor(path, typ)
			add("override/"+path, "matmul", machine.sys, "", []string{override}, p)
		}
	}
	// Every coherence protocol on every CCSVM preset: the protocol dimension
	// must split the key space on every chip variant, not just the default.
	for _, pr := range ccsvm.Presets() {
		if pr.Machine != ccsvm.MachineCCSVM {
			continue
		}
		for _, proto := range ccsvm.Protocols() {
			add(fmt.Sprintf("protocol/%s/%s", pr.Name, proto), "matmul", ccsvm.SystemCCSVM, pr.Name,
				[]string{"ccsvm.coherence.protocol=" + proto}, p)
		}
	}
	// Parameter spread: size, seed, density (on the workload that reads it),
	// and the opencl init phase.
	for _, n := range []int{1, 8, 64} {
		pn := p
		pn.N = n
		add(fmt.Sprintf("params/n=%d", n), "matmul", ccsvm.SystemCCSVM, "", nil, pn)
	}
	for _, seed := range []int64{0, 1, 12345} {
		ps := p
		ps.Seed = seed
		add(fmt.Sprintf("params/seed=%d", seed), "matmul", ccsvm.SystemCCSVM, "", nil, ps)
	}
	for _, d := range []float64{0.01, 0.5} {
		pd := p
		pd.Density = d
		add(fmt.Sprintf("params/density=%g", d), "sparse", ccsvm.SystemCCSVM, "", nil, pd)
	}
	pi := p
	pi.IncludeInit = true
	add("params/include_init", "matmul", ccsvm.SystemOpenCL, "", nil, pi)
	return entries
}

// TestGoldenSpecHashes verifies every committed hash, and that the fixture
// population itself is unchanged (a grown config schema adds override
// entries, which must also arrive with a version bump).
func TestGoldenSpecHashes(t *testing.T) {
	current := goldenSpecs(t)

	if *updateSpecHashes {
		raw, err := json.MarshalIndent(current, "", "  ")
		if err != nil {
			t.Fatalf("marshal fixture: %v", err)
		}
		if err := os.WriteFile(goldenSpecsPath, append(raw, '\n'), 0o644); err != nil {
			t.Fatalf("write fixture: %v", err)
		}
		t.Logf("rewrote %s with %d entries at format v%d", goldenSpecsPath, len(current), ccsvm.SpecFormatVersion)
		return
	}

	raw, err := os.ReadFile(goldenSpecsPath)
	if err != nil {
		t.Fatalf("read fixture (generate with -update-spec-hashes): %v", err)
	}
	var committed []goldenEntry
	if err := json.Unmarshal(raw, &committed); err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	byName := make(map[string]goldenEntry, len(committed))
	for _, e := range committed {
		byName[e.Name] = e
	}

	drift := false
	for _, e := range current {
		want, ok := byName[e.Name]
		if !ok {
			t.Errorf("spec %q is not in the fixture (schema grew?)", e.Name)
			drift = true
			continue
		}
		delete(byName, e.Name)
		if e.Hash != want.Hash {
			t.Errorf("spec %q hash drifted:\n  committed %s\n  current   %s", e.Name, want.Hash, e.Hash)
			drift = true
		}
	}
	for name := range byName {
		t.Errorf("fixture entry %q no longer generated (schema shrank?)", name)
		drift = true
	}
	if drift {
		t.Fatalf("canonical RunSpec encoding drifted from %s: persisted cache keys would go stale silently. "+
			"Bump ccsvm.SpecFormatVersion (currently %d) and regenerate with -update-spec-hashes.",
			goldenSpecsPath, ccsvm.SpecFormatVersion)
	}
}
