package ccsvm_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// TestDocLint fails when an exported symbol in the public facade (the root
// package), in internal/workloads — the two packages contributors extend
// when adding workloads, presets, or overrides — in the lint suite
// (internal/lint and its subpackages, whose exported Analyzers and helpers
// are the contributor-facing surface of the static-enforcement layer), or in
// the serving layer (internal/resultcache and internal/sweepd, whose wire
// and cache formats are operator-facing contracts) lacks a doc comment. CI
// runs it as a dedicated step so documentation debt fails the build, not
// just review.
func TestDocLint(t *testing.T) {
	for _, dir := range []string{
		".",
		"internal/workloads",
		"internal/lint",
		"internal/lint/analysis",
		"internal/lint/cfg",
		"internal/lint/dataflow",
		"internal/lint/load",
		"internal/lint/linttest",
		"internal/resultcache",
		"internal/sweepd",
	} {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for path, file := range pkg.Files {
				lintFile(t, fset, path, file)
			}
		}
	}
}

func lintFile(t *testing.T, fset *token.FileSet, path string, file *ast.File) {
	t.Helper()
	report := func(pos token.Pos, kind, name string) {
		t.Errorf("%s: exported %s %s has no doc comment", fset.Position(pos), kind, name)
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				report(d.Pos(), kind, d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, name := range s.Names {
						if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							report(s.Pos(), "value", name.Name)
						}
					}
				}
			}
		}
	}
}
