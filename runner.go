package ccsvm

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"

	"ccsvm/internal/simarena"
	"ccsvm/internal/stats"
)

// RunSpec names one simulation to run: a registered workload, the system to
// run it on, and its parameters. Tag is an optional caller label carried
// through to the RunResult and the sinks. Preset and Overrides record how
// the System was derived (BuildSpec fills them); they are provenance for
// sinks and the sweep service, not identity — CanonicalBytes and Hash
// address the spec by its resolved configuration, so two routes to the same
// machine share one cache entry.
type RunSpec struct {
	Workload string
	System   System
	Params   Params
	Tag      string
	// Preset is the named machine preset the System was built from, if any.
	Preset string
	// Overrides are the dotted-path "path=value" assignments applied to the
	// System after construction, in application order.
	Overrides []string
}

// String formats the spec as "workload/system(n=.. ...)", including every
// parameter that distinguishes sweep rows — problem size and seed, the
// optional density and init flags, and the Tag carrying preset/override
// identity — so error messages from Runner.Run identify the exact failing
// run even when two rows differ only by machine variant.
func (s RunSpec) String() string {
	out := fmt.Sprintf("%s/%s(n=%d seed=%d", s.Workload, s.System.Kind, s.Params.N, s.Params.Seed)
	if s.Params.Density != 0 {
		out += fmt.Sprintf(" d=%v", s.Params.Density)
	}
	if s.Params.IncludeInit {
		out += " +init"
	}
	if s.Preset != "" {
		out += fmt.Sprintf(" preset=%s", s.Preset)
	}
	for _, o := range s.Overrides {
		out += " " + o
	}
	if s.Tag != "" {
		out += fmt.Sprintf(" tag=%q", s.Tag)
	}
	return out + ")"
}

// RunResult is the outcome of one RunSpec: the spec itself, its index in the
// sweep, and either a Result or an error (lookup failure, unsupported pair,
// or a simulation error). Cached reports that the Result was served from the
// Runner's cache instead of a fresh simulation; under the determinism
// contract the two are bit-identical, so Cached is observability, not a
// semantic difference.
type RunResult struct {
	Spec   RunSpec
	Index  int
	Result Result
	Err    error
	Cached bool
}

// Sink consumes a stream of RunResults. Runner.Run delivers results to every
// sink in spec order regardless of the degree of parallelism, then calls
// Close once the sweep is complete.
type Sink interface {
	Emit(RunResult) error
	Close() error
}

// Runner fans a list of RunSpecs out across a bounded worker pool. Each
// simulation is an independent single-threaded discrete-event engine, so a
// sweep parallelizes perfectly and the per-run results are bit-identical to a
// sequential run.
//
// Each worker owns one machine-part Arena: the engine, physical memory and
// message populations of a finished run are recycled into the worker's next
// machine, so a long sweep stops paying construction and GC cost per run.
// Reuse is observation-equivalent — results and sink bytes are identical to
// fresh-machine-per-run at any Parallel setting (see TestRunnerArenaReuse).
type Runner struct {
	// Parallel is the worker-pool size. Zero or negative means GOMAXPROCS.
	Parallel int
	// Sinks receive every result, in spec order. Optional.
	Sinks []Sink
	// Cache, when set, memoizes Results by RunSpec.Hash: known specs are
	// served from the cache (RunResult.Cached) and fresh successful runs are
	// stored back. Failed runs are never cached. Optional.
	Cache *Cache
}

// Run executes every spec and returns the results indexed like specs. The
// returned error joins every per-run error (and any sink error); the results
// slice is always complete, with failed runs carrying their error.
func (r *Runner) Run(specs []RunSpec) ([]RunResult, error) {
	workers := r.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	results := make([]RunResult, len(specs))
	if len(specs) == 0 {
		return results, r.closeSinks(nil)
	}

	jobs := make(chan int)
	// Buffered so a finished worker never blocks on sink emission speed.
	done := make(chan int, len(specs))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One arena per worker: machines built for consecutive jobs on
			// this goroutine reuse each other's parts; workers share nothing.
			arena := simarena.New()
			for i := range jobs {
				results[i] = r.runOne(specs[i], i, arena)
				done <- i
			}
		}()
	}
	go func() {
		for i := range specs {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		close(done)
	}()

	// Stream to sinks in spec order: hold completed results until everything
	// before them has been emitted, so parallel and sequential sweeps produce
	// byte-identical sink output.
	var errs []error
	ready := make([]bool, len(specs))
	next := 0
	for i := range done {
		ready[i] = true
		for next < len(specs) && ready[next] {
			if err := results[next].Err; err != nil {
				errs = append(errs, fmt.Errorf("%s: %w", specs[next], err))
			}
			for _, sink := range r.Sinks {
				if err := sink.Emit(results[next]); err != nil {
					errs = append(errs, fmt.Errorf("sink: %w", err))
				}
			}
			next++
		}
	}
	return results, r.closeSinks(errs)
}

func (r *Runner) closeSinks(errs []error) error {
	for _, sink := range r.Sinks {
		if err := sink.Close(); err != nil {
			errs = append(errs, fmt.Errorf("sink close: %w", err))
		}
	}
	return errors.Join(errs...)
}

// runOne resolves and executes a single spec through the registry,
// consulting the cache first when the Runner has one. The run draws its
// machine parts from the worker's arena; the spec recorded on the RunResult
// keeps the caller's Arena field (usually nil) so results do not retain the
// worker's free store.
func (r *Runner) runOne(spec RunSpec, index int, arena *simarena.Arena) RunResult {
	rr := RunResult{Spec: spec, Index: index}
	w, ok := Lookup(spec.Workload)
	if !ok {
		rr.Err = fmt.Errorf("%w %q", ErrUnknownWorkload, spec.Workload)
		return rr
	}
	var key CacheKey
	if r.Cache != nil {
		key = spec.Hash()
		if res, ok := r.Cache.Get(key); ok {
			rr.Result, rr.Cached = res, true
			return rr
		}
	}
	sys := spec.System
	if sys.Arena == nil {
		sys.Arena = arena
	}
	rr.Result, rr.Err = w.Run(sys, spec.Params)
	if r.Cache != nil && rr.Err == nil {
		// A persist failure only costs a future recomputation; it is counted
		// in the cache's store_errors, not joined into the sweep error.
		_ = r.Cache.Put(key, spec.String(), rr.Result)
	}
	return rr
}

// TextSink accumulates results into a column-aligned text table (via
// internal/stats) and renders it to the writer on Close.
type TextSink struct {
	w     io.Writer
	table *stats.Table
}

// NewTextSink builds a text sink with the given table title.
func NewTextSink(w io.Writer, title string) *TextSink {
	return &TextSink{
		w: w,
		table: stats.NewTable(title,
			"Workload", "System", "N", "Density", "Init", "Tag", "Time", "DRAM", "L1 hit%", "NoC msgs", "Checked", "Error"),
	}
}

// Emit adds one result row. The machine-metric columns (L1 hit rate, NoC
// messages) stay blank for runs whose machine did not report the metric —
// the APU has no on-chip network, and failed runs have no metrics at all.
func (s *TextSink) Emit(r RunResult) error {
	errText := ""
	if r.Err != nil {
		errText = r.Err.Error()
	}
	l1, noc := "", ""
	if rate, ok := r.Result.Metrics["l1.hit_rate"]; ok {
		l1 = fmt.Sprintf("%.1f", rate*100)
	}
	if msgs, ok := r.Result.Metrics["noc.messages"]; ok {
		noc = fmt.Sprintf("%.0f", msgs)
	}
	s.table.AddRow(r.Spec.Workload, string(r.Spec.System.Kind), r.Spec.Params.N,
		r.Spec.Params.Density, r.Spec.Params.IncludeInit, r.Spec.Tag,
		r.Result.Time.String(), r.Result.DRAMAccesses, l1, noc, r.Result.Checked, errText)
	return nil
}

// Close renders the table.
func (s *TextSink) Close() error {
	_, err := fmt.Fprintln(s.w, s.table.String())
	return err
}

// jsonRecord is the JSON-lines schema for one run.
type jsonRecord struct {
	Workload    string   `json:"workload"`
	System      string   `json:"system"`
	N           int      `json:"n"`
	Density     float64  `json:"density,omitempty"`
	Seed        int64    `json:"seed"`
	IncludeInit bool     `json:"include_init,omitempty"`
	Tag         string   `json:"tag,omitempty"`
	Preset      string   `json:"preset,omitempty"`
	Overrides   []string `json:"overrides,omitempty"`
	// Cached marks rows served from the Runner's result cache; absent for
	// fresh simulations, so uncached sweeps keep their historical byte
	// output.
	Cached       bool   `json:"cached,omitempty"`
	Label        string `json:"label,omitempty"`
	SimTimePs    int64  `json:"sim_time_ps"`
	DRAMAccesses uint64 `json:"dram_accesses"`
	Checked      bool   `json:"checked"`
	// Metrics carries the per-run machine metrics; encoding/json sorts the
	// keys, so JSONL output is byte-stable at any parallelism.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	Error   string             `json:"error,omitempty"`
}

// JSONLSink writes one JSON object per result, suitable for jq and tooling.
type JSONLSink struct {
	enc *json.Encoder
}

// NewJSONLSink builds a JSON-lines sink on the writer.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Emit writes one line.
func (s *JSONLSink) Emit(r RunResult) error {
	rec := jsonRecord{
		Workload:     r.Spec.Workload,
		System:       string(r.Spec.System.Kind),
		N:            r.Spec.Params.N,
		Density:      r.Spec.Params.Density,
		Seed:         r.Spec.Params.Seed,
		IncludeInit:  r.Spec.Params.IncludeInit,
		Tag:          r.Spec.Tag,
		Preset:       r.Spec.Preset,
		Overrides:    r.Spec.Overrides,
		Cached:       r.Cached,
		Label:        r.Result.Label,
		SimTimePs:    int64(r.Result.Time),
		DRAMAccesses: r.Result.DRAMAccesses,
		Checked:      r.Result.Checked,
		Metrics:      r.Result.Metrics,
	}
	if r.Err != nil {
		rec.Error = r.Err.Error()
	}
	return s.enc.Encode(rec)
}

// Close is a no-op; JSON lines are flushed as they are emitted.
func (s *JSONLSink) Close() error { return nil }
