// Package workloads implements the benchmarks of the paper's evaluation
// (Section 5) for every system under comparison: dense matrix multiply and
// all-pairs shortest path ("typical" benchmarks, Figures 5 and 6), Barnes-Hut
// and sparse matrix multiply ("atypical" pointer-based benchmarks, Figures 7
// and 8), and the vector-add example of Figures 3 and 4. Each benchmark has
// an xthreads version for the CCSVM machine, an OpenCL version and/or a
// pthreads version for the APU machine, and a single-threaded CPU version
// that is the common baseline the paper normalizes against, plus a plain Go
// reference used to check functional correctness of every run.
package workloads

import (
	"fmt"
	"math/rand"

	"ccsvm/internal/sim"
)

// Result is the outcome of one benchmark run on one machine.
type Result struct {
	// Label identifies the system/configuration ("CCSVM/xthreads",
	// "APU/OpenCL", ...).
	Label string
	// Time is the simulated duration of the measured region (the offload or
	// compute phase, excluding input generation).
	Time sim.Duration
	// DRAMAccesses is the number of off-chip accesses the machine performed
	// during the whole run (Figure 9's metric).
	DRAMAccesses uint64
	// Checked reports that the functional output was verified against the
	// reference implementation.
	Checked bool
	// Metrics are the per-run machine metrics derived from the machine's
	// stats registry (cache hit rates, coherence and NoC traffic, OpenCL
	// overhead breakdown; see core.Machine.Metrics and apu.Machine.Metrics).
	// The sweep sinks emit them alongside the headline numbers.
	Metrics map[string]float64
}

// String formats the result.
func (r Result) String() string {
	return fmt.Sprintf("%-18s time=%v dram=%d", r.Label, r.Time, r.DRAMAccesses)
}

// Speedup reports how much faster r is than the baseline (baseline time /
// r time).
func (r Result) Speedup(baseline Result) float64 {
	if r.Time == 0 {
		return 0
	}
	return float64(baseline.Time) / float64(r.Time)
}

// randomMatrix fills an n x n int32 matrix with small random values from a
// deterministic source.
func randomMatrix(rng *rand.Rand, n int) []int32 {
	m := make([]int32, n*n)
	for i := range m {
		m[i] = int32(rng.Intn(100))
	}
	return m
}

// matMulRef is the reference dense multiply.
func matMulRef(a, b []int32, n int) []int32 {
	c := make([]int32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var sum int32
			for k := 0; k < n; k++ {
				sum += a[i*n+k] * b[k*n+j]
			}
			c[i*n+j] = sum
		}
	}
	return c
}

// apspRef is the reference Floyd–Warshall.
func apspRef(dist []int32, n int) []int32 {
	out := make([]int32, len(dist))
	copy(out, dist)
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d := out[i*n+k] + out[k*n+j]; d < out[i*n+j] {
					out[i*n+j] = d
				}
			}
		}
	}
	return out
}

// apspInfinity is the "no edge" distance; small enough that adding two of
// them cannot overflow an int32.
const apspInfinity int32 = 1 << 28

// randomAdjacency builds a random directed graph's adjacency matrix with the
// given edge probability.
func randomAdjacency(rng *rand.Rand, n int, edgeProb float64) []int32 {
	m := make([]int32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			switch {
			case i == j:
				m[i*n+j] = 0
			case rng.Float64() < edgeProb:
				m[i*n+j] = int32(1 + rng.Intn(20))
			default:
				m[i*n+j] = apspInfinity
			}
		}
	}
	return m
}

// threadCountFor picks how many MTTOP threads to launch for a problem with
// the given number of independent work units, capped by the chip's hardware
// thread contexts so that tasks with global barriers are fully resident.
func threadCountFor(workUnits, hwContexts int) int {
	t := workUnits
	if t > hwContexts {
		t = hwContexts
	}
	if t < 1 {
		t = 1
	}
	return t
}
