package workloads

import (
	"fmt"
	"math"
	"math/rand"

	"ccsvm/internal/apu"
	"ccsvm/internal/core"
	"ccsvm/internal/exec"
	"ccsvm/internal/mem"
	"ccsvm/internal/sim"
	"ccsvm/internal/xthreads"
)

// Barnes-Hut n-body (Section 5.3.1): the benchmark is built around a
// pointer-based quadtree that is rebuilt by the CPU every timestep (the
// sequential phase) and traversed by many threads to compute forces (the
// parallel phase). The frequent toggling between the two phases is what makes
// it a poor fit for loosely-coupled chips and a showcase for CCSVM.
//
// Bodies live in structure-of-arrays form in simulated memory; tree nodes are
// 2D quadtree nodes allocated with the running program's allocator and linked
// by virtual-address pointers.
const (
	bhTheta    = 0.5
	bhSteps    = 2
	bhDT       = 0.05
	bhSoften   = 0.05
	bhNodeSize = 96
	// Node field offsets (bytes).
	bhOffCX       = 0  // center x (float64)
	bhOffCY       = 8  // center y
	bhOffHalf     = 16 // half-width of the cell
	bhOffMass     = 24 // total mass
	bhOffComX     = 32 // center of mass x
	bhOffComY     = 40 // center of mass y
	bhOffBody     = 48 // body index + 1 (0 = internal or empty)
	bhOffChildren = 56 // four uint64 child pointers
)

// bhBodies is the layout of the body arrays in simulated memory.
type bhBodies struct {
	posX, posY, mass, velX, velY, accX, accY mem.VAddr
	n                                        int
}

func bhAllocBodies(alloc func(uint64) mem.VAddr, n int) bhBodies {
	size := uint64(8 * n)
	return bhBodies{
		posX: alloc(size), posY: alloc(size), mass: alloc(size),
		velX: alloc(size), velY: alloc(size), accX: alloc(size), accY: alloc(size),
		n: n,
	}
}

// bhRef is the host-side reference: it advances a copy of the bodies with the
// exact (O(n^2)) force computation for the same number of steps and is used
// only as a sanity check that the simulated runs conserve the system roughly
// (pointer-chasing approximation vs exact differ, so the check is loose).
type bhRefBody struct{ x, y, m, vx, vy float64 }

func bhRefInit(rng *rand.Rand, n int) []bhRefBody {
	bodies := make([]bhRefBody, n)
	for i := range bodies {
		bodies[i] = bhRefBody{
			x: rng.Float64()*2 - 1,
			y: rng.Float64()*2 - 1,
			m: 0.5 + rng.Float64(),
		}
	}
	return bodies
}

// bhBuildTree builds the quadtree over all bodies; it runs on whichever
// context is the sequential CPU thread. alloc is the running program's heap
// allocator. It returns the root node pointer.
func bhBuildTree(ctx *exec.Context, alloc func(uint64) mem.VAddr, b bhBodies) mem.VAddr {
	root := bhNewNode(ctx, alloc, 0, 0, 2.0)
	for i := 0; i < b.n; i++ {
		x := ctx.LoadFloat64(b.posX + mem.VAddr(8*i))
		y := ctx.LoadFloat64(b.posY + mem.VAddr(8*i))
		m := ctx.LoadFloat64(b.mass + mem.VAddr(8*i))
		bhInsert(ctx, alloc, root, i, x, y, m)
	}
	return root
}

func bhNewNode(ctx *exec.Context, alloc func(uint64) mem.VAddr, cx, cy, half float64) mem.VAddr {
	node := alloc(bhNodeSize)
	ctx.StoreFloat64(node+bhOffCX, cx)
	ctx.StoreFloat64(node+bhOffCY, cy)
	ctx.StoreFloat64(node+bhOffHalf, half)
	ctx.StoreFloat64(node+bhOffMass, 0)
	ctx.StoreFloat64(node+bhOffComX, 0)
	ctx.StoreFloat64(node+bhOffComY, 0)
	ctx.Store64(node+bhOffBody, 0)
	for q := 0; q < 4; q++ {
		ctx.Store64(node+bhOffChildren+mem.VAddr(8*q), 0)
	}
	return node
}

// bhInsert adds body i at (x, y) with mass m into the subtree rooted at node.
func bhInsert(ctx *exec.Context, alloc func(uint64) mem.VAddr, node mem.VAddr, i int, x, y, m float64) {
	// Guard against pathological co-located bodies: once cells are this
	// small, further splitting adds no accuracy.
	if ctx.LoadFloat64(node+bhOffHalf) < 1e-9 {
		return
	}
	// Update aggregate mass and center of mass on the way down.
	oldMass := ctx.LoadFloat64(node + bhOffMass)
	comX := ctx.LoadFloat64(node + bhOffComX)
	comY := ctx.LoadFloat64(node + bhOffComY)
	newMass := oldMass + m
	ctx.StoreFloat64(node+bhOffMass, newMass)
	ctx.StoreFloat64(node+bhOffComX, (comX*oldMass+x*m)/newMass)
	ctx.StoreFloat64(node+bhOffComY, (comY*oldMass+y*m)/newMass)
	ctx.Compute(12)

	bodyTag := ctx.Load64(node + bhOffBody)
	hasChildren := false
	for q := 0; q < 4; q++ {
		if ctx.Load64(node+bhOffChildren+mem.VAddr(8*q)) != 0 {
			hasChildren = true
			break
		}
	}
	if oldMass == 0 && !hasChildren {
		// Empty leaf: the body lives here.
		ctx.Store64(node+bhOffBody, uint64(i+1))
		return
	}
	if bodyTag != 0 {
		// Occupied leaf: push the resident body down before inserting.
		ctx.Store64(node+bhOffBody, 0)
		resident := int(bodyTag - 1)
		// The resident body's position is re-read from the body arrays by the
		// caller level; to keep the helper self-contained we rely on the
		// center of mass equalling its position (it was the only body).
		rx := comX
		ry := comY
		rm := oldMass
		bhInsertChild(ctx, alloc, node, resident, rx, ry, rm)
	}
	bhInsertChild(ctx, alloc, node, i, x, y, m)
}

func bhInsertChild(ctx *exec.Context, alloc func(uint64) mem.VAddr, node mem.VAddr, i int, x, y, m float64) {
	cx := ctx.LoadFloat64(node + bhOffCX)
	cy := ctx.LoadFloat64(node + bhOffCY)
	half := ctx.LoadFloat64(node + bhOffHalf)
	q := 0
	if x >= cx {
		q |= 1
	}
	if y >= cy {
		q |= 2
	}
	ctx.Compute(6)
	childPtr := mem.VAddr(ctx.Load64(node + bhOffChildren + mem.VAddr(8*q)))
	if childPtr == 0 {
		ncx, ncy := cx-half/2, cy-half/2
		if q&1 != 0 {
			ncx = cx + half/2
		}
		if q&2 != 0 {
			ncy = cy + half/2
		}
		childPtr = bhNewNode(ctx, alloc, ncx, ncy, half/2)
		ctx.Store64(node+bhOffChildren+mem.VAddr(8*q), uint64(childPtr))
	}
	bhInsert(ctx, alloc, childPtr, i, x, y, m)
}

// bhForce computes the approximate force on body i by traversing the tree
// (the pointer-chasing inner loop that runs on MTTOP cores or CPU threads).
func bhForce(ctx *exec.Context, root mem.VAddr, b bhBodies, i int) (float64, float64) {
	xi := ctx.LoadFloat64(b.posX + mem.VAddr(8*i))
	yi := ctx.LoadFloat64(b.posY + mem.VAddr(8*i))
	var ax, ay float64
	// Explicit traversal stack held in host memory: the simulated pointer
	// chasing is in the Load64 calls below.
	stack := []mem.VAddr{root}
	for len(stack) > 0 {
		node := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		mass := ctx.LoadFloat64(node + bhOffMass)
		if mass == 0 {
			continue
		}
		comX := ctx.LoadFloat64(node + bhOffComX)
		comY := ctx.LoadFloat64(node + bhOffComY)
		half := ctx.LoadFloat64(node + bhOffHalf)
		bodyTag := ctx.Load64(node + bhOffBody)
		dx := comX - xi
		dy := comY - yi
		dist := math.Sqrt(dx*dx + dy*dy + bhSoften)
		ctx.Compute(20)
		if bodyTag == uint64(i+1) {
			continue
		}
		if bodyTag != 0 || (2*half)/dist < bhTheta {
			f := mass / (dist * dist * dist)
			ax += f * dx
			ay += f * dy
			ctx.Compute(10)
			continue
		}
		for q := 0; q < 4; q++ {
			child := mem.VAddr(ctx.Load64(node + bhOffChildren + mem.VAddr(8*q)))
			if child != 0 {
				stack = append(stack, child)
			}
		}
	}
	return ax, ay
}

// bhUpdate advances positions and velocities from the accumulated
// accelerations (the sequential CPU phase that follows the parallel phase).
func bhUpdate(ctx *exec.Context, b bhBodies) {
	for i := 0; i < b.n; i++ {
		ax := ctx.LoadFloat64(b.accX + mem.VAddr(8*i))
		ay := ctx.LoadFloat64(b.accY + mem.VAddr(8*i))
		vx := ctx.LoadFloat64(b.velX+mem.VAddr(8*i)) + ax*bhDT
		vy := ctx.LoadFloat64(b.velY+mem.VAddr(8*i)) + ay*bhDT
		ctx.StoreFloat64(b.velX+mem.VAddr(8*i), vx)
		ctx.StoreFloat64(b.velY+mem.VAddr(8*i), vy)
		ctx.StoreFloat64(b.posX+mem.VAddr(8*i), ctx.LoadFloat64(b.posX+mem.VAddr(8*i))+vx*bhDT)
		ctx.StoreFloat64(b.posY+mem.VAddr(8*i), ctx.LoadFloat64(b.posY+mem.VAddr(8*i))+vy*bhDT)
		ctx.Compute(16)
	}
}

func bhInitBodies(write func(va mem.VAddr, v float64), b bhBodies, init []bhRefBody) {
	for i, body := range init {
		write(b.posX+mem.VAddr(8*i), body.x)
		write(b.posY+mem.VAddr(8*i), body.y)
		write(b.mass+mem.VAddr(8*i), body.m)
		write(b.velX+mem.VAddr(8*i), 0)
		write(b.velY+mem.VAddr(8*i), 0)
		write(b.accX+mem.VAddr(8*i), 0)
		write(b.accY+mem.VAddr(8*i), 0)
	}
}

func bhCheck(read func(va mem.VAddr) float64, b bhBodies) error {
	for i := 0; i < b.n; i++ {
		x := read(b.posX + mem.VAddr(8*i))
		y := read(b.posY + mem.VAddr(8*i))
		if math.IsNaN(x) || math.IsNaN(y) || math.Abs(x) > 100 || math.Abs(y) > 100 {
			return fmt.Errorf("barnes-hut: body %d diverged to (%g, %g)", i, x, y)
		}
	}
	return nil
}

// BarnesHutXthreads runs the benchmark on the CCSVM machine: the CPU builds
// the tree and updates bodies, the MTTOP threads compute forces each step
// (Figure 7's CCSVM/xthreads series).
func BarnesHutXthreads(cfg core.Config, nBodies int, seed int64) (Result, error) {
	rng := rand.New(rand.NewSource(seed))
	init := bhRefInit(rng, nBodies)

	m := core.NewMachine(cfg)
	defer m.Shutdown()
	threads := threadCountFor(nBodies, cfg.TotalMTTOPThreadContexts())

	bodies := bhAllocBodies(m.Alloc, nBodies)
	bhInitBodies(m.MemWriteFloat64, bodies, init)

	kernel := m.RegisterKernel(func(ctx *xthreads.MTTOPContext) {
		args := ctx.Args()
		root := mem.VAddr(ctx.Load64(args + 0))
		done := mem.VAddr(ctx.Load64(args + 8))
		nThreads := int(ctx.Load64(args + 16))
		b := bhBodies{
			posX: mem.VAddr(ctx.Load64(args + 24)), posY: mem.VAddr(ctx.Load64(args + 32)),
			mass: mem.VAddr(ctx.Load64(args + 40)), velX: mem.VAddr(ctx.Load64(args + 48)),
			velY: mem.VAddr(ctx.Load64(args + 56)), accX: mem.VAddr(ctx.Load64(args + 64)),
			accY: mem.VAddr(ctx.Load64(args + 72)), n: int(ctx.Load64(args + 80)),
		}
		for i := ctx.TID(); i < b.n; i += nThreads {
			ax, ay := bhForce(ctx.Context, root, b, i)
			ctx.StoreFloat64(b.accX+mem.VAddr(8*i), ax)
			ctx.StoreFloat64(b.accY+mem.VAddr(8*i), ay)
		}
		ctx.SignalSlot(done, 0)
	})

	var measured sim.Duration
	_, err := m.RunProgram(func(ctx *xthreads.CPUContext) {
		done := ctx.Malloc(uint64(4 * threads))
		args := ctx.Malloc(88)
		start := ctx.Now()
		for step := 0; step < bhSteps; step++ {
			// Sequential phase: rebuild the tree.
			root := bhBuildTree(ctx.Context, ctx.Malloc, bodies)
			ctx.InitConditions(done, 0, threads-1, xthreads.CondIdle)
			ctx.Store64(args+0, uint64(root))
			ctx.Store64(args+8, uint64(done))
			ctx.Store64(args+16, uint64(threads))
			ctx.Store64(args+24, uint64(bodies.posX))
			ctx.Store64(args+32, uint64(bodies.posY))
			ctx.Store64(args+40, uint64(bodies.mass))
			ctx.Store64(args+48, uint64(bodies.velX))
			ctx.Store64(args+56, uint64(bodies.velY))
			ctx.Store64(args+64, uint64(bodies.accX))
			ctx.Store64(args+72, uint64(bodies.accY))
			ctx.Store64(args+80, uint64(bodies.n))
			// Parallel phase: offload force computation to the MTTOP cores.
			ctx.CreateMThreads(kernel, args, 0, threads-1)
			ctx.Wait(done, 0, threads-1)
			// Sequential phase: integrate.
			bhUpdate(ctx.Context, bodies)
		}
		measured = ctx.Now().Sub(start)
	})
	if err != nil {
		return Result{}, err
	}
	if err := bhCheck(m.MemReadFloat64, bodies); err != nil {
		return Result{}, err
	}
	return Result{Label: "CCSVM/xthreads", Time: measured, DRAMAccesses: m.DRAMAccesses(), Checked: true, Metrics: m.Metrics()}, nil
}

// BarnesHutCPU runs the whole benchmark single-threaded on one APU CPU core
// (Figure 7's "AMD CPU core" baseline).
func BarnesHutCPU(cfg apu.Config, nBodies int, seed int64) (Result, error) {
	return barnesHutHost(cfg, nBodies, seed, 1)
}

// BarnesHutPthreads runs the benchmark with the force phase split across the
// four APU CPU cores, the pthreads baseline of Figure 7.
func BarnesHutPthreads(cfg apu.Config, nBodies int, seed int64) (Result, error) {
	return barnesHutHost(cfg, nBodies, seed, cfg.NumCPUs)
}

func barnesHutHost(cfg apu.Config, nBodies int, seed int64, nThreads int) (Result, error) {
	rng := rand.New(rand.NewSource(seed))
	init := bhRefInit(rng, nBodies)

	m := apu.NewMachine(cfg)
	defer m.Shutdown()
	bodies := bhAllocBodies(m.Malloc, nBodies)
	write := func(va mem.VAddr, v float64) { m.MemWriteUint64(va, math.Float64bits(v)) }
	bhInitBodies(write, bodies, init)

	// Shared coordination cells for the pthreads version.
	rootCell := m.Malloc(8)
	phaseCell := m.Malloc(4)
	doneCount := m.Malloc(4)

	var measured sim.Duration
	funcs := make([]apu.HostFunc, nThreads)
	// Worker threads (IDs 1..nThreads-1) wait for each phase announcement and
	// compute forces for their stride of bodies.
	for w := 1; w < nThreads; w++ {
		w := w
		funcs[w] = func(ctx *apu.HostContext) {
			for step := 1; step <= bhSteps; step++ {
				for int(ctx.Load32(phaseCell)) < step {
					ctx.Compute(64)
				}
				root := mem.VAddr(ctx.Load64(rootCell))
				for i := w; i < bodies.n; i += nThreads {
					ax, ay := bhForce(ctx.Context, root, bodies, i)
					ctx.StoreFloat64(bodies.accX+mem.VAddr(8*i), ax)
					ctx.StoreFloat64(bodies.accY+mem.VAddr(8*i), ay)
				}
				ctx.AtomicAdd32(doneCount, 1)
			}
		}
	}
	funcs[0] = func(ctx *apu.HostContext) {
		ctx.Store32(phaseCell, 0)
		ctx.Store32(doneCount, 0)
		start := ctx.Now()
		for step := 1; step <= bhSteps; step++ {
			root := bhBuildTree(ctx.Context, ctx.Malloc, bodies)
			ctx.Store64(rootCell, uint64(root))
			ctx.Store32(phaseCell, uint32(step))
			for i := 0; i < bodies.n; i += nThreads {
				ax, ay := bhForce(ctx.Context, root, bodies, i)
				ctx.StoreFloat64(bodies.accX+mem.VAddr(8*i), ax)
				ctx.StoreFloat64(bodies.accY+mem.VAddr(8*i), ay)
			}
			for int(ctx.Load32(doneCount)) < (nThreads-1)*step {
				ctx.Compute(64)
			}
			bhUpdate(ctx.Context, bodies)
		}
		measured = ctx.Now().Sub(start)
	}

	_, err := m.RunThreads(funcs)
	if err != nil {
		return Result{}, err
	}
	read := func(va mem.VAddr) float64 { return math.Float64frombits(m.MemReadUint64(va)) }
	if err := bhCheck(read, bodies); err != nil {
		return Result{}, err
	}
	label := "APU CPU core"
	if nThreads > 1 {
		label = fmt.Sprintf("APU pthreads x%d", nThreads)
	}
	return Result{Label: label, Time: measured, DRAMAccesses: m.DRAMAccesses(), Checked: true, Metrics: m.Metrics()}, nil
}

func init() {
	Register(Workload{
		Name:        "barneshut",
		Description: "Barnes-Hut n-body, pointer-chasing quadtree (Figure 7)",
		Runners: map[SystemKind]RunFunc{
			SystemCCSVM: func(sys System, p Params) (Result, error) {
				return BarnesHutXthreads(sys.CCSVM, p.N, p.Seed)
			},
			SystemCPU: func(sys System, p Params) (Result, error) {
				return BarnesHutCPU(sys.APU, p.N, p.Seed)
			},
			SystemPthreads: func(sys System, p Params) (Result, error) {
				return BarnesHutPthreads(sys.APU, p.N, p.Seed)
			},
		},
	})
}
