package workloads

import (
	"fmt"
	"math/rand"

	"ccsvm/internal/apu"
	"ccsvm/internal/core"
	"ccsvm/internal/mem"
	"ccsvm/internal/opencl"
	"ccsvm/internal/sim"
	"ccsvm/internal/xthreads"
)

// APSPXthreads runs all-pairs shortest path (Floyd–Warshall) on the CCSVM
// machine: one task is launched once, and the barrier required between
// iterations of the outermost loop is the cheap CPU–MTTOP barrier in shared
// memory — the paper's Figure 6 attributes CCSVM's advantage on this
// benchmark to exactly this (no per-phase relaunches).
func APSPXthreads(cfg core.Config, n int, seed int64) (Result, error) {
	rng := rand.New(rand.NewSource(seed))
	adj := randomAdjacency(rng, n, 0.3)
	want := apspRef(adj, n)

	m := core.NewMachine(cfg)
	defer m.Shutdown()
	threads := threadCountFor(n, cfg.TotalMTTOPThreadContexts())

	distVA := m.Alloc(uint64(4 * n * n))
	for i := 0; i < n*n; i++ {
		m.MemWriteUint32(distVA+mem.VAddr(4*i), uint32(adj[i]))
	}

	kernel := m.RegisterKernel(func(ctx *xthreads.MTTOPContext) {
		args := ctx.Args()
		dist := mem.VAddr(ctx.Load64(args + 0))
		barrier := mem.VAddr(ctx.Load64(args + 8))
		sense := mem.VAddr(ctx.Load64(args + 16))
		done := mem.VAddr(ctx.Load64(args + 24))
		size := int(ctx.Load64(args + 32))
		nThreads := int(ctx.Load64(args + 40))
		for k := 0; k < size; k++ {
			for i := ctx.TID(); i < size; i += nThreads {
				dik := int32(ctx.Load32(dist + mem.VAddr(4*(i*size+k))))
				for j := 0; j < size; j++ {
					dkj := int32(ctx.Load32(dist + mem.VAddr(4*(k*size+j))))
					dij := int32(ctx.Load32(dist + mem.VAddr(4*(i*size+j))))
					ctx.Compute(2)
					if dik+dkj < dij {
						ctx.Store32(dist+mem.VAddr(4*(i*size+j)), uint32(dik+dkj))
					}
				}
			}
			// Every thread (and the CPU) must finish iteration k before any
			// thread starts iteration k+1.
			ctx.Barrier(barrier, 0, sense)
		}
		ctx.SignalSlot(done, 0)
	})

	var offload sim.Duration
	_, err := m.RunProgram(func(ctx *xthreads.CPUContext) {
		barrier := ctx.Malloc(uint64(4 * threads))
		sense := ctx.Malloc(4)
		done := ctx.Malloc(uint64(4 * threads))
		args := ctx.Malloc(48)
		ctx.InitConditions(barrier, 0, threads-1, 0)
		ctx.Store32(sense, 0)
		ctx.InitConditions(done, 0, threads-1, xthreads.CondIdle)
		ctx.Store64(args+0, uint64(distVA))
		ctx.Store64(args+8, uint64(barrier))
		ctx.Store64(args+16, uint64(sense))
		ctx.Store64(args+24, uint64(done))
		ctx.Store64(args+32, uint64(n))
		ctx.Store64(args+40, uint64(threads))
		start := ctx.Now()
		ctx.CreateMThreads(kernel, args, 0, threads-1)
		for k := 0; k < n; k++ {
			ctx.CPUMTTOPBarrier(barrier, 0, threads-1, sense)
		}
		ctx.Wait(done, 0, threads-1)
		offload = ctx.Now().Sub(start)
	})
	if err != nil {
		return Result{}, err
	}
	for i := 0; i < n*n; i++ {
		if got := int32(m.MemReadUint32(distVA + mem.VAddr(4*i))); got != want[i] {
			return Result{}, fmt.Errorf("apsp xthreads: element %d = %d, want %d", i, got, want[i])
		}
	}
	return Result{Label: "CCSVM/xthreads", Time: offload, DRAMAccesses: m.DRAMAccesses(), Checked: true, Metrics: m.Metrics()}, nil
}

// APSPCPU runs Floyd–Warshall single-threaded on one APU CPU core.
func APSPCPU(cfg apu.Config, n int, seed int64) (Result, error) {
	rng := rand.New(rand.NewSource(seed))
	adj := randomAdjacency(rng, n, 0.3)
	want := apspRef(adj, n)

	m := apu.NewMachine(cfg)
	defer m.Shutdown()
	distVA := m.Malloc(uint64(4 * n * n))
	for i := 0; i < n*n; i++ {
		m.MemWriteUint32(distVA+mem.VAddr(4*i), uint32(adj[i]))
	}
	var compute sim.Duration
	_, err := m.RunProgram(func(ctx *apu.HostContext) {
		start := ctx.Now()
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				dik := int32(ctx.Load32(distVA + mem.VAddr(4*(i*n+k))))
				for j := 0; j < n; j++ {
					dkj := int32(ctx.Load32(distVA + mem.VAddr(4*(k*n+j))))
					dij := int32(ctx.Load32(distVA + mem.VAddr(4*(i*n+j))))
					ctx.Compute(2)
					if dik+dkj < dij {
						ctx.Store32(distVA+mem.VAddr(4*(i*n+j)), uint32(dik+dkj))
					}
				}
			}
		}
		compute = ctx.Now().Sub(start)
	})
	if err != nil {
		return Result{}, err
	}
	for i := 0; i < n*n; i++ {
		if got := int32(m.MemReadUint32(distVA + mem.VAddr(4*i))); got != want[i] {
			return Result{}, fmt.Errorf("apsp cpu: element %d = %d, want %d", i, got, want[i])
		}
	}
	return Result{Label: "APU CPU core", Time: compute, DRAMAccesses: m.DRAMAccesses(), Checked: true, Metrics: m.Metrics()}, nil
}

// APSPOpenCL runs Floyd–Warshall on the APU with OpenCL. The outer-loop
// barrier forces one kernel launch plus one clFinish per iteration, which is
// exactly the synchronization cost that keeps the APU below the plain CPU in
// Figure 6.
func APSPOpenCL(cfg apu.Config, n int, seed int64, includeInit bool) (Result, error) {
	rng := rand.New(rand.NewSource(seed))
	adj := randomAdjacency(rng, n, 0.3)
	want := apspRef(adj, n)

	m := apu.NewMachine(cfg)
	defer m.Shutdown()
	cl := opencl.NewSession(m)

	appVA := m.Malloc(uint64(4 * n * n))
	for i := 0; i < n*n; i++ {
		m.MemWriteUint32(appVA+mem.VAddr(4*i), uint32(adj[i]))
	}

	kernel := cl.CreateKernel(func(wi *opencl.WorkItemContext) {
		dist := wi.ArgPtr(0)
		size := int(wi.Arg(1))
		k := int(wi.Arg(2))
		i := wi.GlobalID()
		if i >= size {
			return
		}
		dik := int32(wi.Load32(dist + mem.VAddr(4*(i*size+k))))
		for j := 0; j < size; j++ {
			dkj := int32(wi.Load32(dist + mem.VAddr(4*(k*size+j))))
			dij := int32(wi.Load32(dist + mem.VAddr(4*(i*size+j))))
			wi.Compute(2)
			if dik+dkj < dij {
				wi.Store32(dist+mem.VAddr(4*(i*size+j)), uint32(dik+dkj))
			}
		}
	})

	var measured sim.Duration
	_, err := m.RunProgram(func(ctx *apu.HostContext) {
		if !includeInit {
			cl.InitPlatform(ctx)
			cl.BuildProgram(ctx)
		}
		start := ctx.Now()
		cl.InitPlatform(ctx)
		cl.BuildProgram(ctx)
		buf := cl.CreateBuffer(ctx, uint64(4*n*n))
		p := cl.EnqueueMapBuffer(ctx, buf)
		for i := 0; i < n*n; i++ {
			ctx.Store32(p+mem.VAddr(4*i), ctx.Load32(appVA+mem.VAddr(4*i)))
		}
		cl.EnqueueUnmapBuffer(ctx, buf)
		for k := 0; k < n; k++ {
			cl.EnqueueNDRangeKernel(ctx, kernel, n, uint64(buf.Base), uint64(n), uint64(k))
			cl.Finish(ctx)
		}
		pOut := cl.EnqueueMapBuffer(ctx, buf)
		for i := 0; i < n*n; i++ {
			ctx.Store32(appVA+mem.VAddr(4*i), ctx.Load32(pOut+mem.VAddr(4*i)))
		}
		cl.EnqueueUnmapBuffer(ctx, buf)
		measured = ctx.Now().Sub(start)
	})
	if err != nil {
		return Result{}, err
	}
	for i := 0; i < n*n; i++ {
		if got := int32(m.MemReadUint32(appVA + mem.VAddr(4*i))); got != want[i] {
			return Result{}, fmt.Errorf("apsp opencl: element %d = %d, want %d", i, got, want[i])
		}
	}
	label := "APU/OpenCL (no init)"
	if includeInit {
		label = "APU/OpenCL (full)"
	}
	return Result{Label: label, Time: measured, DRAMAccesses: m.DRAMAccesses(), Checked: true, Metrics: m.Metrics()}, nil
}

func init() {
	Register(Workload{
		Name:            "apsp",
		Description:     "all-pairs shortest path, Floyd-Warshall (Figure 6)",
		UsesIncludeInit: true,
		Runners: map[SystemKind]RunFunc{
			SystemCCSVM: func(sys System, p Params) (Result, error) {
				return APSPXthreads(sys.CCSVM, p.N, p.Seed)
			},
			SystemCPU: func(sys System, p Params) (Result, error) {
				return APSPCPU(sys.APU, p.N, p.Seed)
			},
			SystemOpenCL: func(sys System, p Params) (Result, error) {
				return APSPOpenCL(sys.APU, p.N, p.Seed, p.IncludeInit)
			},
		},
	})
}
