package workloads

import (
	"testing"

	"ccsvm/internal/apu"
	"ccsvm/internal/core"
)

// The workload tests run every benchmark at small sizes on both machines,
// checking functional correctness (each Run* function verifies its output
// against the plain-Go reference and returns Checked=true) and the
// directional claims of the paper's evaluation that must hold at any size.

func smallCCSVM() core.Config { return core.SmallConfig() }

func smallAPU() apu.Config {
	cfg := apu.DefaultConfig()
	cfg.GPUContextsPerUnit = 64
	return cfg
}

func TestReferenceKernels(t *testing.T) {
	a := []int32{1, 2, 3, 4}
	b := []int32{5, 6, 7, 8}
	c := matMulRef(a, b, 2)
	want := []int32{19, 22, 43, 50}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("matMulRef[%d] = %d, want %d", i, c[i], want[i])
		}
	}
	dist := []int32{0, 4, apspInfinity, 0}
	out := apspRef(dist, 2)
	if out[1] != 4 || out[2] != apspInfinity {
		t.Fatalf("apspRef wrong: %v", out)
	}
	if threadCountFor(10, 4) != 4 || threadCountFor(2, 100) != 2 || threadCountFor(0, 5) != 1 {
		t.Fatal("threadCountFor wrong")
	}
}

func TestMatMulAllSystems(t *testing.T) {
	const n, seed = 12, 7
	ccsvm, err := MatMulXthreads(smallCCSVM(), n, seed)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := MatMulCPU(smallAPU(), n, seed)
	if err != nil {
		t.Fatal(err)
	}
	oclFull, err := MatMulOpenCL(smallAPU(), n, seed, true)
	if err != nil {
		t.Fatal(err)
	}
	oclNoInit, err := MatMulOpenCL(smallAPU(), n, seed, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []Result{ccsvm, cpu, oclFull, oclNoInit} {
		if !r.Checked || r.Time <= 0 {
			t.Fatalf("result not checked or zero time: %v", r)
		}
	}
	// Directional claims for a small problem (the regime Figure 5 is about):
	// CCSVM beats the CPU baseline, the OpenCL offload loses to the CPU, and
	// including JIT/initialization makes OpenCL strictly slower.
	if ccsvm.Time >= cpu.Time {
		t.Errorf("CCSVM (%v) should beat the single CPU core (%v) at n=%d", ccsvm.Time, cpu.Time, n)
	}
	if oclNoInit.Time <= cpu.Time {
		t.Errorf("OpenCL offload (%v) should lose to the CPU (%v) for a tiny matrix", oclNoInit.Time, cpu.Time)
	}
	if oclFull.Time <= oclNoInit.Time {
		t.Errorf("full OpenCL runtime (%v) must exceed the no-init runtime (%v)", oclFull.Time, oclNoInit.Time)
	}
	// Figure 9's claim: the CCSVM chip needs far fewer off-chip accesses than
	// the OpenCL offload, which stages everything through DRAM.
	if ccsvm.DRAMAccesses >= oclNoInit.DRAMAccesses {
		t.Errorf("CCSVM DRAM accesses (%d) should be below APU/OpenCL (%d)", ccsvm.DRAMAccesses, oclNoInit.DRAMAccesses)
	}
}

func TestAPSPAllSystems(t *testing.T) {
	const n, seed = 10, 11
	ccsvm, err := APSPXthreads(smallCCSVM(), n, seed)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := APSPCPU(smallAPU(), n, seed)
	if err != nil {
		t.Fatal(err)
	}
	ocl, err := APSPOpenCL(smallAPU(), n, seed, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []Result{ccsvm, cpu, ocl} {
		if !r.Checked || r.Time <= 0 {
			t.Fatalf("result not checked or zero time: %v", r)
		}
	}
	// Figure 6: the per-iteration kernel launch + clFinish keeps the APU
	// behind the plain CPU core at every size.
	if ocl.Time <= cpu.Time {
		t.Errorf("APU/OpenCL APSP (%v) should be slower than the CPU core (%v)", ocl.Time, cpu.Time)
	}
	if ccsvm.Time >= ocl.Time {
		t.Errorf("CCSVM APSP (%v) should beat APU/OpenCL (%v)", ccsvm.Time, ocl.Time)
	}
}

func TestVectorAddBothModels(t *testing.T) {
	const n, seed = 32, 3
	x, err := VectorAddXthreads(smallCCSVM(), n, seed)
	if err != nil {
		t.Fatal(err)
	}
	o, err := VectorAddOpenCL(smallAPU(), n, seed, true)
	if err != nil {
		t.Fatal(err)
	}
	if !x.Checked || !o.Checked {
		t.Fatal("results not verified")
	}
	// The Figure 3 vs Figure 4 point: offloading 32 additions through OpenCL
	// costs orders of magnitude more than through CCSVM/xthreads.
	if x.Time*100 >= o.Time {
		t.Errorf("xthreads vector add (%v) should be >=100x faster than full OpenCL (%v)", x.Time, o.Time)
	}
}

func TestBarnesHutAllSystems(t *testing.T) {
	const bodies, seed = 48, 5
	x, err := BarnesHutXthreads(smallCCSVM(), bodies, seed)
	if err != nil {
		t.Fatal(err)
	}
	cpu1, err := BarnesHutCPU(smallAPU(), bodies, seed)
	if err != nil {
		t.Fatal(err)
	}
	pth, err := BarnesHutPthreads(smallAPU(), bodies, seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []Result{x, cpu1, pth} {
		if !r.Checked || r.Time <= 0 {
			t.Fatalf("result not checked or zero time: %v", r)
		}
	}
	// Figure 7: pthreads on 4 cores beats 1 core. At this tiny body count the
	// sequential tree build on the CCSVM chip's deliberately weak CPU
	// dominates, so we only require CCSVM to be competitive here; the
	// crossover where it wins outright is measured at the larger body counts
	// of the Figure 7 sweep (see EXPERIMENTS.md).
	if pth.Time >= cpu1.Time {
		t.Errorf("pthreads x4 (%v) should beat one CPU core (%v)", pth.Time, cpu1.Time)
	}
	if x.Time >= 2*cpu1.Time {
		t.Errorf("CCSVM/xthreads (%v) should be within 2x of one CPU core (%v) even at 48 bodies", x.Time, cpu1.Time)
	}
}

func TestSparseMMBothSystems(t *testing.T) {
	const n, seed = 24, 9
	const density = 0.05
	x, err := SparseMMXthreads(smallCCSVM(), n, density, seed)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := SparseMMCPU(smallAPU(), n, density, seed)
	if err != nil {
		t.Fatal(err)
	}
	if !x.Checked || !cpu.Checked {
		t.Fatal("results not verified")
	}
	if x.Time <= 0 || cpu.Time <= 0 {
		t.Fatal("zero measured time")
	}
	// Speedup() sanity: relative ordering is reported consistently.
	if s := x.Speedup(cpu); s <= 0 {
		t.Fatalf("speedup %v must be positive", s)
	}
}

func TestResultHelpers(t *testing.T) {
	a := Result{Label: "a", Time: 100}
	b := Result{Label: "b", Time: 200}
	if a.Speedup(b) != 2.0 {
		t.Fatalf("speedup = %v, want 2", a.Speedup(b))
	}
	if (Result{}).Speedup(b) != 0 {
		t.Fatal("zero-time result should report zero speedup")
	}
	if a.String() == "" {
		t.Fatal("empty String()")
	}
}
