package workloads

import (
	"fmt"
	"math/rand"

	"ccsvm/internal/apu"
	"ccsvm/internal/core"
	"ccsvm/internal/mem"
	"ccsvm/internal/opencl"
	"ccsvm/internal/sim"
	"ccsvm/internal/xthreads"
)

// VectorAddXthreads is the paper's Figure 4 program: the xthreads version of
// vector addition, spawning one MTTOP thread per element and waiting on
// per-element done flags. It doubles as the repository's quickstart example.
func VectorAddXthreads(cfg core.Config, n int, seed int64) (Result, error) {
	rng := rand.New(rand.NewSource(seed))
	v1 := make([]int32, n)
	v2 := make([]int32, n)
	for i := range v1 {
		v1[i] = int32(rng.Intn(1000))
		v2[i] = int32(rng.Intn(1000))
	}

	m := core.NewMachine(cfg)
	defer m.Shutdown()
	if n > cfg.TotalMTTOPThreadContexts() {
		return Result{}, fmt.Errorf("vectoradd: %d elements exceed %d MTTOP thread contexts", n, cfg.TotalMTTOPThreadContexts())
	}

	kernel := m.RegisterKernel(func(ctx *xthreads.MTTOPContext) {
		args := ctx.Args()
		v1p := mem.VAddr(ctx.Load64(args + 0))
		v2p := mem.VAddr(ctx.Load64(args + 8))
		sum := mem.VAddr(ctx.Load64(args + 16))
		done := mem.VAddr(ctx.Load64(args + 24))
		tid := ctx.TID()
		a := ctx.Load32(v1p + mem.VAddr(4*tid))
		b := ctx.Load32(v2p + mem.VAddr(4*tid))
		ctx.Compute(1)
		ctx.Store32(sum+mem.VAddr(4*tid), a+b)
		ctx.SignalSlot(done, 0)
	})

	var measured sim.Duration
	var sumVA mem.VAddr
	_, err := m.RunProgram(func(ctx *xthreads.CPUContext) {
		v1p := ctx.Malloc(uint64(4 * n))
		v2p := ctx.Malloc(uint64(4 * n))
		sum := ctx.Malloc(uint64(4 * n))
		done := ctx.Malloc(uint64(4 * n))
		args := ctx.Malloc(32)
		sumVA = sum
		for i := 0; i < n; i++ {
			ctx.Store32(v1p+mem.VAddr(4*i), uint32(v1[i]))
			ctx.Store32(v2p+mem.VAddr(4*i), uint32(v2[i]))
			ctx.Store32(done+mem.VAddr(4*i), xthreads.CondIdle)
		}
		ctx.Store64(args+0, uint64(v1p))
		ctx.Store64(args+8, uint64(v2p))
		ctx.Store64(args+16, uint64(sum))
		ctx.Store64(args+24, uint64(done))
		start := ctx.Now()
		ctx.CreateMThreads(kernel, args, 0, n-1)
		ctx.Wait(done, 0, n-1)
		measured = ctx.Now().Sub(start)
	})
	if err != nil {
		return Result{}, err
	}
	for i := 0; i < n; i++ {
		if got := int32(m.MemReadUint32(sumVA + mem.VAddr(4*i))); got != v1[i]+v2[i] {
			return Result{}, fmt.Errorf("vectoradd xthreads: element %d = %d, want %d", i, got, v1[i]+v2[i])
		}
	}
	return Result{Label: "CCSVM/xthreads", Time: measured, DRAMAccesses: m.DRAMAccesses(), Checked: true, Metrics: m.Metrics()}, nil
}

// VectorAddOpenCL is the paper's Figure 3 program: the OpenCL version of
// vector addition on the APU baseline, with all the buffer and launch
// boilerplate the figure is making a point about.
func VectorAddOpenCL(cfg apu.Config, n int, seed int64, includeInit bool) (Result, error) {
	rng := rand.New(rand.NewSource(seed))
	v1 := make([]int32, n)
	v2 := make([]int32, n)
	for i := range v1 {
		v1[i] = int32(rng.Intn(1000))
		v2[i] = int32(rng.Intn(1000))
	}

	m := apu.NewMachine(cfg)
	defer m.Shutdown()
	cl := opencl.NewSession(m)

	kernel := cl.CreateKernel(func(wi *opencl.WorkItemContext) {
		v1p, v2p, sum := wi.ArgPtr(0), wi.ArgPtr(1), wi.ArgPtr(2)
		tid := wi.GlobalID()
		a := wi.Load32(v1p + mem.VAddr(4*tid))
		b := wi.Load32(v2p + mem.VAddr(4*tid))
		wi.Compute(1)
		wi.Store32(sum+mem.VAddr(4*tid), a+b)
	})

	var measured sim.Duration
	var sumResults []int32
	_, err := m.RunProgram(func(ctx *apu.HostContext) {
		if !includeInit {
			cl.InitPlatform(ctx)
			cl.BuildProgram(ctx)
		}
		start := ctx.Now()
		cl.InitPlatform(ctx)
		cl.BuildProgram(ctx)
		bufA := cl.CreateBuffer(ctx, uint64(4*n))
		bufB := cl.CreateBuffer(ctx, uint64(4*n))
		bufC := cl.CreateBuffer(ctx, uint64(4*n))
		pa := cl.EnqueueMapBuffer(ctx, bufA)
		pb := cl.EnqueueMapBuffer(ctx, bufB)
		for i := 0; i < n; i++ {
			ctx.Store32(pa+mem.VAddr(4*i), uint32(v1[i]))
			ctx.Store32(pb+mem.VAddr(4*i), uint32(v2[i]))
		}
		cl.EnqueueUnmapBuffer(ctx, bufA)
		cl.EnqueueUnmapBuffer(ctx, bufB)
		cl.EnqueueNDRangeKernel(ctx, kernel, n,
			uint64(bufA.Base), uint64(bufB.Base), uint64(bufC.Base))
		cl.Finish(ctx)
		pc := cl.EnqueueMapBuffer(ctx, bufC)
		sumResults = make([]int32, n)
		for i := 0; i < n; i++ {
			sumResults[i] = int32(ctx.Load32(pc + mem.VAddr(4*i)))
		}
		cl.EnqueueUnmapBuffer(ctx, bufC)
		measured = ctx.Now().Sub(start)
	})
	if err != nil {
		return Result{}, err
	}
	for i := 0; i < n; i++ {
		if sumResults[i] != v1[i]+v2[i] {
			return Result{}, fmt.Errorf("vectoradd opencl: element %d = %d, want %d", i, sumResults[i], v1[i]+v2[i])
		}
	}
	label := "APU/OpenCL (no init)"
	if includeInit {
		label = "APU/OpenCL (full)"
	}
	return Result{Label: label, Time: measured, DRAMAccesses: m.DRAMAccesses(), Checked: true, Metrics: m.Metrics()}, nil
}

func init() {
	Register(Workload{
		Name:            "vectoradd",
		Description:     "vector add, the Figure 3/4 offload-cost comparison",
		UsesIncludeInit: true,
		Runners: map[SystemKind]RunFunc{
			SystemCCSVM: func(sys System, p Params) (Result, error) {
				return VectorAddXthreads(sys.CCSVM, p.N, p.Seed)
			},
			SystemOpenCL: func(sys System, p Params) (Result, error) {
				return VectorAddOpenCL(sys.APU, p.N, p.Seed, p.IncludeInit)
			},
		},
	})
}
