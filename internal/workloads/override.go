package workloads

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strconv"
	"strings"

	"ccsvm/internal/apu"
	"ccsvm/internal/core"
	"ccsvm/internal/sim"
)

// The override layer makes every field of core.Config and apu.Config
// sweepable from the command line and from experiment code without
// per-field plumbing: a dotted path such as "ccsvm.MTTOPIssueWidth" or
// "apu.DRAM.Latency" is resolved against the System's configuration struct
// by a small reflection walker, the string value is parsed according to the
// field's Go type, and the resulting configuration is re-validated. All
// failure modes return typed errors so callers (and tests) can distinguish
// a typo in the path from a malformed value from a structurally invalid
// configuration.

// Sentinel errors of the override layer, matched with errors.Is.
var (
	// ErrUnknownPath reports a dotted path that does not name a
	// configuration field.
	ErrUnknownPath = errors.New("unknown configuration path")
	// ErrBadValue reports a value that does not parse as the field's type.
	ErrBadValue = errors.New("value does not parse as the field's type")
	// ErrOutOfRange reports a value that parsed but leaves the configuration
	// structurally invalid (for example a zero core count).
	ErrOutOfRange = errors.New("value leaves the configuration out of range")
	// ErrMachineMismatch reports an override whose root ("ccsvm." or "apu.")
	// names the machine the target System does not run on.
	ErrMachineMismatch = errors.New("override targets the wrong machine")
)

// OverrideError carries the failing path and value together with one of the
// sentinel errors above; errors.Is and errors.As both work on it.
type OverrideError struct {
	// Path is the dotted path as given by the caller.
	Path string
	// Value is the value the caller tried to assign ("" for path errors).
	Value string
	// Err is the sentinel classifying the failure.
	Err error
	// Detail explains the specific problem (the unknown segment, the parse
	// error, the validation message).
	Detail string
}

// Error implements error.
func (e *OverrideError) Error() string {
	msg := fmt.Sprintf("override %s", e.Path)
	if e.Value != "" {
		msg += "=" + e.Value
	}
	msg += ": " + e.Err.Error()
	if e.Detail != "" {
		msg += " (" + e.Detail + ")"
	}
	return msg
}

// Unwrap exposes the sentinel for errors.Is.
func (e *OverrideError) Unwrap() error { return e.Err }

// Set assigns one configuration field of the system, named by a dotted path
// rooted at the machine ("ccsvm.NumMTTOPs", "apu.OpenCL.KernelLaunch").
// Field names are matched case-insensitively. Durations use Go syntax
// ("72ns", "1.5us"); numbers and booleans use their usual literals. The
// modified configuration is re-validated before Set returns; an invalid
// result is rolled back and reported as ErrOutOfRange.
func Set(sys *System, path, value string) error {
	root, rest, ok := strings.Cut(path, ".")
	if !ok {
		return &OverrideError{Path: path, Value: value, Err: ErrUnknownPath,
			Detail: `a path is "ccsvm.<Field>..." or "apu.<Field>..."`}
	}
	var target reflect.Value
	switch root {
	case "ccsvm":
		if sys.Kind != SystemCCSVM {
			return &OverrideError{Path: path, Value: value, Err: ErrMachineMismatch,
				Detail: fmt.Sprintf("system %q runs on the apu machine", sys.Kind)}
		}
		target = reflect.ValueOf(&sys.CCSVM).Elem()
	case "apu":
		if sys.Kind == SystemCCSVM {
			return &OverrideError{Path: path, Value: value, Err: ErrMachineMismatch,
				Detail: `system "ccsvm" runs on the ccsvm machine`}
		}
		target = reflect.ValueOf(&sys.APU).Elem()
	default:
		return &OverrideError{Path: path, Value: value, Err: ErrUnknownPath,
			Detail: fmt.Sprintf("unknown machine %q, want ccsvm or apu", root)}
	}

	field, err := walkPath(target, path, rest, value)
	if err != nil {
		return err
	}
	// Remember the old value so a failed validation leaves the system as it
	// was (overrides must be all-or-nothing for sweep code).
	old := reflect.New(field.Type()).Elem()
	old.Set(field)
	if err := parseInto(field, path, value); err != nil {
		return err
	}
	if verr := validateSystem(sys); verr != nil {
		field.Set(old)
		return &OverrideError{Path: path, Value: value, Err: ErrOutOfRange, Detail: verr.Error()}
	}
	return nil
}

// Apply applies a list of "path=value" assignments in order, stopping at the
// first failure (the system keeps the assignments made before it).
func Apply(sys *System, assignments []string) error {
	for _, a := range assignments {
		path, value, ok := strings.Cut(a, "=")
		if !ok {
			return &OverrideError{Path: a, Err: ErrBadValue, Detail: `an assignment is "path=value"`}
		}
		if err := Set(sys, path, value); err != nil {
			return err
		}
	}
	return nil
}

// walkPath descends target through the dotted segments of rest and returns
// the addressable leaf field.
func walkPath(target reflect.Value, fullPath, rest, value string) (reflect.Value, error) {
	for _, seg := range strings.Split(rest, ".") {
		if target.Kind() != reflect.Struct {
			return reflect.Value{}, &OverrideError{Path: fullPath, Value: value, Err: ErrUnknownPath,
				Detail: fmt.Sprintf("%q is not a configuration struct", seg)}
		}
		field, ok := fieldByNameFold(target, seg)
		if !ok {
			return reflect.Value{}, &OverrideError{Path: fullPath, Value: value, Err: ErrUnknownPath,
				Detail: fmt.Sprintf("no field %q; have %s", seg, strings.Join(fieldNames(target.Type()), ", "))}
		}
		target = field
	}
	return target, nil
}

// fieldByNameFold finds an exported struct field by exact name first, then
// case-insensitively.
func fieldByNameFold(v reflect.Value, name string) (reflect.Value, bool) {
	t := v.Type()
	if f, ok := t.FieldByName(name); ok && f.IsExported() {
		return v.FieldByIndex(f.Index), true
	}
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if f.IsExported() && strings.EqualFold(f.Name, name) {
			return v.Field(i), true
		}
	}
	return reflect.Value{}, false
}

// fieldNames lists the exported field names of a struct type.
func fieldNames(t reflect.Type) []string {
	var names []string
	for i := 0; i < t.NumField(); i++ {
		if f := t.Field(i); f.IsExported() {
			names = append(names, f.Name)
		}
	}
	return names
}

// durationType is sim.Duration's reflect.Type; duration fields get Go
// duration syntax instead of a raw picosecond count.
var durationType = reflect.TypeOf(sim.Duration(0))

// parseInto parses value according to the field's type and assigns it.
func parseInto(field reflect.Value, path, value string) error {
	fail := func(detail string) error {
		return &OverrideError{Path: path, Value: value, Err: ErrBadValue, Detail: detail}
	}
	if field.Type() == durationType {
		d, err := parseSimDuration(value)
		if err != nil {
			return fail(`durations use Go syntax with a unit, e.g. "72ns", "0.5ns", or "1.5us"`)
		}
		field.SetInt(int64(d))
		return nil
	}
	switch field.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		n, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			return fail("want an integer")
		}
		field.SetInt(n)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		n, err := strconv.ParseUint(value, 10, 64)
		if err != nil {
			return fail("want a non-negative integer")
		}
		field.SetUint(n)
	case reflect.Float32, reflect.Float64:
		f, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return fail("want a number")
		}
		field.SetFloat(f)
	case reflect.Bool:
		b, err := strconv.ParseBool(value)
		if err != nil {
			return fail("want true or false")
		}
		field.SetBool(b)
	case reflect.String:
		field.SetString(value)
	default:
		return fail(fmt.Sprintf("field type %s is not settable from a string; name one of its fields", field.Type()))
	}
	return nil
}

// durationUnits maps unit suffixes to their length in picoseconds, longest
// suffix first so "ns" is not mistaken for "s".
var durationUnits = []struct {
	suffix string
	ps     float64
}{
	{"ps", 1},
	{"ns", 1e3},
	{"us", 1e6},
	{"µs", 1e6},
	{"ms", 1e9},
	{"s", 1e12},
}

// parseSimDuration parses a duration at the simulator's picosecond
// resolution. time.ParseDuration would silently truncate sub-nanosecond
// values ("0.5ns" → 0) — and the Table 2 machines have sub-nanosecond cache
// hit latencies, so those are natural sweep points.
func parseSimDuration(value string) (sim.Duration, error) {
	for _, u := range durationUnits {
		num, ok := strings.CutSuffix(value, u.suffix)
		if !ok || num == "" {
			continue
		}
		f, err := strconv.ParseFloat(num, 64)
		if err != nil {
			return 0, fmt.Errorf("bad duration %q", value)
		}
		ps := f * u.ps
		if ps < 0 {
			return sim.Duration(ps - 0.5), nil
		}
		return sim.Duration(ps + 0.5), nil
	}
	return 0, fmt.Errorf("duration %q needs a unit (ps, ns, us, ms, s)", value)
}

// validateSystem runs the machine's structural validation.
func validateSystem(sys *System) error {
	if sys.Kind == SystemCCSVM {
		return sys.CCSVM.Validate()
	}
	return sys.APU.Validate()
}

// OverridePaths enumerates every settable dotted path of the named machine
// ("ccsvm" or "apu"), each suffixed with its type — the reference the CLI's
// -list-paths flag prints. Unknown machines return nil.
func OverridePaths(machine MachineKind) []string {
	var t reflect.Type
	switch machine {
	case MachineCCSVM:
		t = reflect.TypeOf(core.Config{})
	case MachineAPU:
		t = reflect.TypeOf(apu.Config{})
	default:
		return nil
	}
	var paths []string
	collectPaths(t, string(machine), &paths)
	sort.Strings(paths)
	return paths
}

// collectPaths appends "prefix.Field <type>" for every settable leaf field.
func collectPaths(t reflect.Type, prefix string, out *[]string) {
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		path := prefix + "." + f.Name
		switch {
		case f.Type == durationType:
			*out = append(*out, path+" duration")
		case f.Type.Kind() == reflect.Struct:
			collectPaths(f.Type, path, out)
		case isScalarKind(f.Type.Kind()):
			*out = append(*out, path+" "+f.Type.Kind().String())
		}
	}
}

// isScalarKind reports whether the override layer can parse the kind.
func isScalarKind(k reflect.Kind) bool {
	switch k {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64, reflect.Bool, reflect.String:
		return true
	}
	return false
}
