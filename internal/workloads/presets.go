package workloads

import (
	"fmt"
	"sort"
	"sync"

	"ccsvm/internal/apu"
	"ccsvm/internal/core"
	"ccsvm/internal/sim"
)

// MachineKind names one of the two simulated chips a preset configures. The
// ccsvm machine runs only the ccsvm system; the apu machine runs the cpu,
// opencl, and pthreads systems.
type MachineKind string

// The two machines of the paper's comparison.
const (
	MachineCCSVM MachineKind = "ccsvm"
	MachineAPU   MachineKind = "apu"
)

// Preset is a named, documented variant of one machine's configuration —
// the unit of design-space exploration. A preset fixes the chip; the system
// kind chosen at run time fixes the programming model on that chip.
type Preset struct {
	// Name is the registry key ("ccsvm-base", "apu-fast-driver", ...).
	Name string
	// Description is a one-line summary for -list output.
	Description string
	// Machine selects which configuration field is meaningful.
	Machine MachineKind
	// CCSVM is the chip configuration when Machine is MachineCCSVM.
	CCSVM core.Config
	// APU is the chip configuration when Machine is MachineAPU.
	APU apu.Config
}

// Kinds lists the system kinds that can run on the preset's machine.
func (p Preset) Kinds() []SystemKind {
	if p.Machine == MachineCCSVM {
		return []SystemKind{SystemCCSVM}
	}
	return []SystemKind{SystemCPU, SystemOpenCL, SystemPthreads}
}

// DefaultKind is the first runnable kind — what a CLI uses when the caller
// names a preset but no system.
func (p Preset) DefaultKind() SystemKind { return p.Kinds()[0] }

// System builds a runnable System of the given kind from the preset's
// configuration. A kind that runs on the other machine returns an error
// wrapping ErrMachineMismatch.
func (p Preset) System(kind SystemKind) (System, error) {
	switch {
	case p.Machine == MachineCCSVM && kind == SystemCCSVM:
		return CCSVMSystem(p.CCSVM), nil
	case p.Machine == MachineAPU && kind == SystemCPU:
		return CPUSystem(p.APU), nil
	case p.Machine == MachineAPU && kind == SystemOpenCL:
		return OpenCLSystem(p.APU), nil
	case p.Machine == MachineAPU && kind == SystemPthreads:
		return PthreadsSystem(p.APU), nil
	}
	return System{}, fmt.Errorf("preset %s configures the %s machine, system %s runs on another: %w",
		p.Name, p.Machine, kind, ErrMachineMismatch)
}

var presetRegistry = struct {
	mu     sync.RWMutex
	byName map[string]Preset
}{byName: make(map[string]Preset)}

// RegisterPreset adds a preset to the registry. Registering an unnamed
// preset, an unknown machine, or a duplicate name panics: all are
// programming errors in an init function.
func RegisterPreset(p Preset) {
	if p.Name == "" || (p.Machine != MachineCCSVM && p.Machine != MachineAPU) {
		panic(fmt.Sprintf("workloads: invalid preset registration %+v", p))
	}
	presetRegistry.mu.Lock()
	defer presetRegistry.mu.Unlock()
	if _, dup := presetRegistry.byName[p.Name]; dup {
		panic(fmt.Sprintf("workloads: duplicate preset registration of %q", p.Name))
	}
	presetRegistry.byName[p.Name] = p
}

// LookupPreset finds a registered preset by name. Presets are returned by
// value: mutating the result never affects the registry.
func LookupPreset(name string) (Preset, bool) {
	presetRegistry.mu.RLock()
	defer presetRegistry.mu.RUnlock()
	p, ok := presetRegistry.byName[name]
	return p, ok
}

// Presets returns every registered preset sorted by name.
func Presets() []Preset {
	presetRegistry.mu.RLock()
	defer presetRegistry.mu.RUnlock()
	out := make([]Preset, 0, len(presetRegistry.byName))
	for _, p := range presetRegistry.byName {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// The built-in presets: the two Table 2 baselines plus the single-axis
// variants the paper's methodology invites (wider MTTOP, smaller caches,
// slower memory, a faster OpenCL driver, full VLIW packing).
func init() {
	RegisterPreset(Preset{
		Name:        "ccsvm-base",
		Description: "Table 2 CCSVM chip: 4 CPUs + 10 MTTOPs, 4 MB shared L2, 2D torus",
		Machine:     MachineCCSVM,
		CCSVM:       core.DefaultConfig(),
	})
	RegisterPreset(Preset{
		Name:        "ccsvm-wide",
		Description: "CCSVM with 2x MTTOP issue lanes (16-wide, 160 ops/cycle chip-wide)",
		Machine:     MachineCCSVM,
		CCSVM: func() core.Config {
			c := core.DefaultConfig()
			c.MTTOPIssueWidth *= 2
			return c
		}(),
	})
	RegisterPreset(Preset{
		Name:        "ccsvm-base-mesi",
		Description: "Table 2 CCSVM chip running MESI (no Owned state, no owner-forwarding)",
		Machine:     MachineCCSVM,
		CCSVM: func() core.Config {
			c := core.DefaultConfig()
			c.Coherence.Protocol = "mesi"
			return c
		}(),
	})
	RegisterPreset(Preset{
		Name:        "ccsvm-small-cache",
		Description: "CCSVM with half-size L1s and a 1 MB shared L2",
		Machine:     MachineCCSVM,
		CCSVM: func() core.Config {
			c := core.DefaultConfig()
			c.CPUL1.SizeBytes /= 2
			c.MTTOPL1.SizeBytes /= 2
			c.L2BankBytes /= 4
			return c
		}(),
	})
	RegisterPreset(Preset{
		Name:        "ccsvm-small",
		Description: "scaled-down CCSVM chip (2 CPUs + 4 MTTOPs) for fast runs and tests",
		Machine:     MachineCCSVM,
		CCSVM:       core.SmallConfig(),
	})
	RegisterPreset(Preset{
		Name:        "ccsvm-slow-dram",
		Description: "CCSVM with 200 ns DRAM (2x Table 2 latency)",
		Machine:     MachineCCSVM,
		CCSVM: func() core.Config {
			c := core.DefaultConfig()
			c.DRAM.Latency = 200 * sim.Nanosecond
			return c
		}(),
	})
	RegisterPreset(Preset{
		Name:        "apu-base",
		Description: "Table 2 Llano-like APU: 4 OoO CPUs + 5x16 VLIW GPU, OpenCL driver",
		Machine:     MachineAPU,
		APU:         apu.DefaultConfig(),
	})
	RegisterPreset(Preset{
		Name:        "apu-fast-driver",
		Description: "APU with 10x cheaper OpenCL driver/runtime overheads",
		Machine:     MachineAPU,
		APU: func() apu.Config {
			c := apu.DefaultConfig()
			c.OpenCL.PlatformInit /= 10
			c.OpenCL.ProgramBuild /= 10
			c.OpenCL.BufferCreate /= 10
			c.OpenCL.MapBuffer /= 10
			c.OpenCL.UnmapBuffer /= 10
			c.OpenCL.SetKernelArg /= 10
			c.OpenCL.KernelLaunch /= 10
			c.OpenCL.FinishOverhead /= 10
			return c
		}(),
	})
	RegisterPreset(Preset{
		Name:        "apu-vliw4",
		Description: "APU at peak VLIW packing (4 ops/instr, 4x the CCSVM MTTOP peak)",
		Machine:     MachineAPU,
		APU: func() apu.Config {
			c := apu.DefaultConfig()
			c.GPUVLIWOpsPerInstr = 4
			return c
		}(),
	})
}
