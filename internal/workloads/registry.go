package workloads

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"ccsvm/internal/apu"
	"ccsvm/internal/core"
	"ccsvm/internal/simarena"
)

// ErrUnsupportedPair is returned (wrapped) when a workload is asked to run on
// a system it has no implementation for — e.g. sparse matrix multiply on the
// OpenCL machine, which the paper could not express without shared virtual
// memory. Callers detect it with errors.Is.
var ErrUnsupportedPair = errors.New("workload has no implementation for system")

// SystemKind names one of the machine models under comparison.
type SystemKind string

// The four systems of the paper's evaluation.
const (
	// SystemCCSVM is the proposed chip: CPU + MTTOP tightly coupled through
	// cache-coherent shared virtual memory, programmed with xthreads.
	SystemCCSVM SystemKind = "ccsvm"
	// SystemCPU is one APU CPU core running the single-threaded baseline.
	SystemCPU SystemKind = "cpu"
	// SystemOpenCL is the loosely-coupled APU's GPU driven through the
	// OpenCL stack (buffer staging, kernel JIT, DMA).
	SystemOpenCL SystemKind = "opencl"
	// SystemPthreads is the APU's four CPU cores running a pthreads version.
	SystemPthreads SystemKind = "pthreads"
)

// SystemKinds lists every machine model, in a fixed presentation order.
func SystemKinds() []SystemKind {
	return []SystemKind{SystemCCSVM, SystemCPU, SystemOpenCL, SystemPthreads}
}

// System is a runnable machine model: a kind plus the configuration of the
// underlying simulated chip. CCSVM systems carry a core.Config; the cpu,
// opencl, and pthreads variants all run on the APU machine and carry an
// apu.Config.
type System struct {
	Kind SystemKind
	// CCSVM configures the CCSVM chip; meaningful only when Kind is
	// SystemCCSVM.
	CCSVM core.Config
	// APU configures the APU baseline; meaningful for every other kind.
	APU apu.Config
	// Arena, when set, recycles machine parts (event engine, physical
	// memory, message pools) across the runs this System value is used for.
	// It is execution plumbing, not configuration: Results are bit-identical
	// with or without it, it does not feed the spec hash, and it must not be
	// shared between concurrent runs — the sweep Runner gives each of its
	// workers one.
	Arena *simarena.Arena
}

// CCSVMSystem builds the tightly-coupled CCSVM machine from a core config.
func CCSVMSystem(cfg core.Config) System {
	return System{Kind: SystemCCSVM, CCSVM: cfg}
}

// CPUSystem builds the one-core CPU baseline from an APU config.
func CPUSystem(cfg apu.Config) System {
	return System{Kind: SystemCPU, APU: cfg}
}

// OpenCLSystem builds the loosely-coupled GPU-through-OpenCL machine from an
// APU config.
func OpenCLSystem(cfg apu.Config) System {
	return System{Kind: SystemOpenCL, APU: cfg}
}

// PthreadsSystem builds the four-core pthreads machine from an APU config.
func PthreadsSystem(cfg apu.Config) System {
	return System{Kind: SystemPthreads, APU: cfg}
}

// NewSystem builds the named system with its paper (Table 2) default
// configuration.
func NewSystem(kind SystemKind) (System, error) {
	switch kind {
	case SystemCCSVM:
		return CCSVMSystem(core.DefaultConfig()), nil
	case SystemCPU:
		return CPUSystem(apu.DefaultConfig()), nil
	case SystemOpenCL:
		return OpenCLSystem(apu.DefaultConfig()), nil
	case SystemPthreads:
		return PthreadsSystem(apu.DefaultConfig()), nil
	default:
		return System{}, fmt.Errorf("unknown system %q (have %v)", kind, SystemKinds())
	}
}

// Params is the parameter schema shared by every workload. A workload reads
// the fields that apply to it and ignores the rest.
type Params struct {
	// N is the problem size: matrix dimension, vertex count, body count, or
	// vector length.
	N int
	// Density is the non-zero fraction for the sparse workload.
	Density float64
	// Seed drives the deterministic input generator.
	Seed int64
	// IncludeInit includes OpenCL platform init and kernel JIT in the
	// measured region (the "full" series of Figures 5 and 6); it only
	// affects SystemOpenCL runs.
	IncludeInit bool
}

// DefaultParams returns a small, fast default problem.
func DefaultParams() Params { return Params{N: 32, Density: 0.01, Seed: 42} }

// RunFunc runs a workload on one system with the given parameters.
type RunFunc func(sys System, p Params) (Result, error)

// Workload is one registered benchmark: a name, documentation of which
// parameters it reads, and one RunFunc per system it supports.
type Workload struct {
	// Name is the registry key ("matmul", "apsp", ...).
	Name string
	// Description is a one-line summary for -list output.
	Description string
	// UsesDensity and UsesIncludeInit document which optional Params fields
	// the workload reads.
	UsesDensity     bool
	UsesIncludeInit bool
	// Runners maps each supported system kind to its implementation.
	Runners map[SystemKind]RunFunc
}

// Supports reports whether the workload has an implementation for the kind.
func (w *Workload) Supports(kind SystemKind) bool {
	_, ok := w.Runners[kind]
	return ok
}

// SystemKinds lists the kinds the workload supports, in the fixed
// presentation order of SystemKinds().
func (w *Workload) SystemKinds() []SystemKind {
	var out []SystemKind
	for _, k := range SystemKinds() {
		if w.Supports(k) {
			out = append(out, k)
		}
	}
	return out
}

// Run executes the workload on the system. Unsupported pairs return an error
// wrapping ErrUnsupportedPair; out-of-range parameters return a plain error
// instead of panicking inside the simulator.
func (w *Workload) Run(sys System, p Params) (Result, error) {
	fn, ok := w.Runners[sys.Kind]
	if !ok {
		return Result{}, fmt.Errorf("%s on %s: %w (supported: %v)",
			w.Name, sys.Kind, ErrUnsupportedPair, w.SystemKinds())
	}
	if p.N < 0 {
		return Result{}, fmt.Errorf("%s: problem size must be non-negative, got n=%d", w.Name, p.N)
	}
	if w.UsesDensity && (p.Density < 0 || p.Density > 1) {
		return Result{}, fmt.Errorf("%s: density must be in [0,1], got %v", w.Name, p.Density)
	}
	// Thread the System's arena into the machine configurations here, in one
	// place, so the per-workload runners and their exported functions stay
	// arena-oblivious.
	if sys.Arena != nil {
		sys.CCSVM = sys.CCSVM.InArena(sys.Arena)
		sys.APU = sys.APU.InArena(sys.Arena)
	}
	return fn(sys, p)
}

var registry = struct {
	mu     sync.RWMutex
	byName map[string]*Workload
}{byName: make(map[string]*Workload)}

// Register adds a workload to the package registry. Registering a duplicate
// name or a workload with no runners panics: both are programming errors in
// an init function.
func Register(w Workload) {
	if w.Name == "" || len(w.Runners) == 0 {
		panic(fmt.Sprintf("workloads: invalid registration %+v", w))
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.byName[w.Name]; dup {
		panic(fmt.Sprintf("workloads: duplicate registration of %q", w.Name))
	}
	registry.byName[w.Name] = &w
}

// Lookup finds a registered workload by name.
func Lookup(name string) (*Workload, bool) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	w, ok := registry.byName[name]
	return w, ok
}

// All returns every registered workload sorted by name.
func All() []*Workload {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	out := make([]*Workload, 0, len(registry.byName))
	for _, w := range registry.byName {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
