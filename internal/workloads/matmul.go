package workloads

import (
	"fmt"
	"math/rand"

	"ccsvm/internal/apu"
	"ccsvm/internal/core"
	"ccsvm/internal/mem"
	"ccsvm/internal/opencl"
	"ccsvm/internal/sim"
	"ccsvm/internal/xthreads"
)

// MatMulXthreads runs dense matrix multiply on the CCSVM machine: the CPU
// launches one task whose threads each compute a grid-strided set of output
// elements, then waits on per-thread done flags (Figure 5's CCSVM/xthreads
// series). The measured region is the offload: launch through completion.
func MatMulXthreads(cfg core.Config, n int, seed int64) (Result, error) {
	rng := rand.New(rand.NewSource(seed))
	a := randomMatrix(rng, n)
	b := randomMatrix(rng, n)
	want := matMulRef(a, b, n)

	m := core.NewMachine(cfg)
	defer m.Shutdown()
	// One thread per output row (grid-strided if the matrix is larger than
	// the chip's thread contexts): enough parallelism to fill the MTTOP cores
	// while giving each thread a row's worth of work to amortize its launch.
	threads := threadCountFor(n, cfg.TotalMTTOPThreadContexts())

	// Inputs already live in the process's shared virtual memory — that is
	// the whole point of CCSVM: no staging copies are needed.
	aVA := m.Alloc(uint64(4 * n * n))
	bVA := m.Alloc(uint64(4 * n * n))
	cVA := m.Alloc(uint64(4 * n * n))
	for i := 0; i < n*n; i++ {
		m.MemWriteUint32(aVA+mem.VAddr(4*i), uint32(a[i]))
		m.MemWriteUint32(bVA+mem.VAddr(4*i), uint32(b[i]))
	}

	kernel := m.RegisterKernel(func(ctx *xthreads.MTTOPContext) {
		args := ctx.Args()
		aPtr := mem.VAddr(ctx.Load64(args + 0))
		bPtr := mem.VAddr(ctx.Load64(args + 8))
		cPtr := mem.VAddr(ctx.Load64(args + 16))
		done := mem.VAddr(ctx.Load64(args + 24))
		size := int(ctx.Load64(args + 32))
		nThreads := int(ctx.Load64(args + 40))
		for i := ctx.TID(); i < size; i += nThreads {
			for j := 0; j < size; j++ {
				var sum uint32
				for k := 0; k < size; k++ {
					av := ctx.Load32(aPtr + mem.VAddr(4*(i*size+k)))
					bv := ctx.Load32(bPtr + mem.VAddr(4*(k*size+j)))
					sum += av * bv
				}
				ctx.Compute(int64(2 * size))
				ctx.Store32(cPtr+mem.VAddr(4*(i*size+j)), sum)
			}
		}
		ctx.SignalSlot(done, 0)
	})

	var offload sim.Duration
	_, err := m.RunProgram(func(ctx *xthreads.CPUContext) {
		done := ctx.Malloc(uint64(4 * threads))
		args := ctx.Malloc(48)
		ctx.InitConditions(done, 0, threads-1, xthreads.CondIdle)
		ctx.Store64(args+0, uint64(aVA))
		ctx.Store64(args+8, uint64(bVA))
		ctx.Store64(args+16, uint64(cVA))
		ctx.Store64(args+24, uint64(done))
		ctx.Store64(args+32, uint64(n))
		ctx.Store64(args+40, uint64(threads))
		start := ctx.Now()
		ctx.CreateMThreads(kernel, args, 0, threads-1)
		ctx.Wait(done, 0, threads-1)
		offload = ctx.Now().Sub(start)
	})
	if err != nil {
		return Result{}, err
	}
	for i := 0; i < n*n; i++ {
		if got := int32(m.MemReadUint32(cVA + mem.VAddr(4*i))); got != want[i] {
			return Result{}, fmt.Errorf("matmul xthreads: element %d = %d, want %d", i, got, want[i])
		}
	}
	return Result{Label: "CCSVM/xthreads", Time: offload, DRAMAccesses: m.DRAMAccesses(), Checked: true, Metrics: m.Metrics()}, nil
}

// MatMulCPU runs the single-threaded CPU version on one APU CPU core — the
// common baseline every figure normalizes against.
func MatMulCPU(cfg apu.Config, n int, seed int64) (Result, error) {
	rng := rand.New(rand.NewSource(seed))
	a := randomMatrix(rng, n)
	b := randomMatrix(rng, n)
	want := matMulRef(a, b, n)

	m := apu.NewMachine(cfg)
	defer m.Shutdown()
	aVA := m.Malloc(uint64(4 * n * n))
	bVA := m.Malloc(uint64(4 * n * n))
	cVA := m.Malloc(uint64(4 * n * n))
	for i := 0; i < n*n; i++ {
		m.MemWriteUint32(aVA+mem.VAddr(4*i), uint32(a[i]))
		m.MemWriteUint32(bVA+mem.VAddr(4*i), uint32(b[i]))
	}
	var compute sim.Duration
	_, err := m.RunProgram(func(ctx *apu.HostContext) {
		start := ctx.Now()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var sum uint32
				for k := 0; k < n; k++ {
					av := ctx.Load32(aVA + mem.VAddr(4*(i*n+k)))
					bv := ctx.Load32(bVA + mem.VAddr(4*(k*n+j)))
					sum += av * bv
				}
				ctx.Compute(int64(2 * n))
				ctx.Store32(cVA+mem.VAddr(4*(i*n+j)), sum)
			}
		}
		compute = ctx.Now().Sub(start)
	})
	if err != nil {
		return Result{}, err
	}
	for i := 0; i < n*n; i++ {
		if got := int32(m.MemReadUint32(cVA + mem.VAddr(4*i))); got != want[i] {
			return Result{}, fmt.Errorf("matmul cpu: element %d = %d, want %d", i, got, want[i])
		}
	}
	return Result{Label: "APU CPU core", Time: compute, DRAMAccesses: m.DRAMAccesses(), Checked: true, Metrics: m.Metrics()}, nil
}

// MatMulOpenCL runs the OpenCL version on the APU machine, following the
// structure of the paper's Figure 3 host program: create pinned buffers, map
// them, copy the application's input arrays in, unmap, launch one work-item
// per output element, wait, and map the result back. includeInit controls
// whether the one-time platform initialization and program build (JIT) are
// inside the measured region — Figure 5 plots both variants.
func MatMulOpenCL(cfg apu.Config, n int, seed int64, includeInit bool) (Result, error) {
	rng := rand.New(rand.NewSource(seed))
	a := randomMatrix(rng, n)
	b := randomMatrix(rng, n)
	want := matMulRef(a, b, n)

	m := apu.NewMachine(cfg)
	defer m.Shutdown()
	cl := opencl.NewSession(m)

	// The application's own arrays (what the CPU produced earlier).
	aVA := m.Malloc(uint64(4 * n * n))
	bVA := m.Malloc(uint64(4 * n * n))
	outVA := m.Malloc(uint64(4 * n * n))
	for i := 0; i < n*n; i++ {
		m.MemWriteUint32(aVA+mem.VAddr(4*i), uint32(a[i]))
		m.MemWriteUint32(bVA+mem.VAddr(4*i), uint32(b[i]))
	}

	kernel := cl.CreateKernel(func(wi *opencl.WorkItemContext) {
		gid := wi.GlobalID()
		size := int(wi.Arg(3))
		i, j := gid/size, gid%size
		aPtr, bPtr, cPtr := wi.ArgPtr(0), wi.ArgPtr(1), wi.ArgPtr(2)
		var sum uint32
		for k := 0; k < size; k++ {
			av := wi.Load32(aPtr + mem.VAddr(4*(i*size+k)))
			bv := wi.Load32(bPtr + mem.VAddr(4*(k*size+j)))
			sum += av * bv
		}
		wi.Compute(int64(2 * size))
		wi.Store32(cPtr+mem.VAddr(4*gid), sum)
	})

	var measured sim.Duration
	_, err := m.RunProgram(func(ctx *apu.HostContext) {
		if !includeInit {
			// Pay the one-time costs outside the measured window.
			cl.InitPlatform(ctx)
			cl.BuildProgram(ctx)
		}
		start := ctx.Now()
		cl.InitPlatform(ctx)
		cl.BuildProgram(ctx)
		bufA := cl.CreateBuffer(ctx, uint64(4*n*n))
		bufB := cl.CreateBuffer(ctx, uint64(4*n*n))
		bufC := cl.CreateBuffer(ctx, uint64(4*n*n))
		// Stage inputs: map, copy from the application arrays, unmap.
		pa := cl.EnqueueMapBuffer(ctx, bufA)
		pb := cl.EnqueueMapBuffer(ctx, bufB)
		for i := 0; i < n*n; i++ {
			ctx.Store32(pa+mem.VAddr(4*i), ctx.Load32(aVA+mem.VAddr(4*i)))
			ctx.Store32(pb+mem.VAddr(4*i), ctx.Load32(bVA+mem.VAddr(4*i)))
		}
		cl.EnqueueUnmapBuffer(ctx, bufA)
		cl.EnqueueUnmapBuffer(ctx, bufB)
		cl.EnqueueNDRangeKernel(ctx, kernel, n*n,
			uint64(bufA.Base), uint64(bufB.Base), uint64(bufC.Base), uint64(n))
		cl.Finish(ctx)
		// Read results back into the application's array.
		pc := cl.EnqueueMapBuffer(ctx, bufC)
		for i := 0; i < n*n; i++ {
			ctx.Store32(outVA+mem.VAddr(4*i), ctx.Load32(pc+mem.VAddr(4*i)))
		}
		cl.EnqueueUnmapBuffer(ctx, bufC)
		measured = ctx.Now().Sub(start)
	})
	if err != nil {
		return Result{}, err
	}
	for i := 0; i < n*n; i++ {
		if got := int32(m.MemReadUint32(outVA + mem.VAddr(4*i))); got != want[i] {
			return Result{}, fmt.Errorf("matmul opencl: element %d = %d, want %d", i, got, want[i])
		}
	}
	label := "APU/OpenCL (no init)"
	if includeInit {
		label = "APU/OpenCL (full)"
	}
	return Result{Label: label, Time: measured, DRAMAccesses: m.DRAMAccesses(), Checked: true, Metrics: m.Metrics()}, nil
}

func init() {
	Register(Workload{
		Name:            "matmul",
		Description:     "dense matrix multiply (Figures 5 and 9)",
		UsesIncludeInit: true,
		Runners: map[SystemKind]RunFunc{
			SystemCCSVM: func(sys System, p Params) (Result, error) {
				return MatMulXthreads(sys.CCSVM, p.N, p.Seed)
			},
			SystemCPU: func(sys System, p Params) (Result, error) {
				return MatMulCPU(sys.APU, p.N, p.Seed)
			},
			SystemOpenCL: func(sys System, p Params) (Result, error) {
				return MatMulOpenCL(sys.APU, p.N, p.Seed, p.IncludeInit)
			},
		},
	})
}
