package workloads

import (
	"fmt"
	"math/rand"

	"ccsvm/internal/apu"
	"ccsvm/internal/core"
	"ccsvm/internal/exec"
	"ccsvm/internal/mem"
	"ccsvm/internal/sim"
	"ccsvm/internal/xthreads"
)

// Sparse matrix multiply (Section 5.3.2): matrices are stored as per-row
// linked lists of non-zero elements — a space-efficient, pointer-based,
// dynamically allocated representation that current CPU/GPU programming
// models cannot express on the GPU side. The xthreads version builds the
// output rows with mttop_malloc, whose CPU-serviced allocations become the
// bottleneck as density rises (the effect Figure 8 shows).
//
// Node layout: {col int32, val int32, next uint64} = 16 bytes.
const (
	smNodeSize = 16
	smOffCol   = 0
	smOffVal   = 4
	smOffNext  = 8
)

// randomSparse generates an n x n matrix with roughly the given density of
// non-zeros, returned densely for the reference multiply.
func randomSparse(rng *rand.Rand, n int, density float64) []int32 {
	m := make([]int32, n*n)
	for i := range m {
		if rng.Float64() < density {
			m[i] = int32(1 + rng.Intn(9))
		}
	}
	return m
}

// smBuildLists writes the linked-list representation of a dense matrix into
// simulated memory using the given context and allocator, returning the
// per-row head-pointer array.
func smBuildLists(ctx *exec.Context, alloc func(uint64) mem.VAddr, dense []int32, n int) mem.VAddr {
	heads := alloc(uint64(8 * n))
	for i := 0; i < n; i++ {
		ctx.Store64(heads+mem.VAddr(8*i), 0)
		var tail mem.VAddr
		for j := 0; j < n; j++ {
			v := dense[i*n+j]
			if v == 0 {
				continue
			}
			node := alloc(smNodeSize)
			ctx.Store32(node+smOffCol, uint32(j))
			ctx.Store32(node+smOffVal, uint32(v))
			ctx.Store64(node+smOffNext, 0)
			if tail == 0 {
				ctx.Store64(heads+mem.VAddr(8*i), uint64(node))
			} else {
				ctx.Store64(tail+smOffNext, uint64(node))
			}
			tail = node
		}
	}
	return heads
}

// smRowToDense reads one output row's linked list back into a dense slice
// (functional, for checking).
func smRowToDense(read64 func(mem.VAddr) uint64, read32 func(mem.VAddr) uint32, head mem.VAddr, n int) []int32 {
	row := make([]int32, n)
	for p := head; p != 0; p = mem.VAddr(read64(p + smOffNext)) {
		col := int(read32(p + smOffCol))
		row[col] += int32(read32(p + smOffVal))
	}
	return row
}

// smCompute multiplies row i of A (linked list) by B (linked lists) into the
// dense accumulator, then emits the non-zero results as a fresh linked list
// using the provided allocator (mttop_malloc on the MTTOP, malloc on the
// CPU). It returns the head of the output row.
func smCompute(ctx *exec.Context, alloc func(uint64) mem.VAddr,
	aHeads, bHeads, accum mem.VAddr, i, n int) mem.VAddr {
	// Clear the accumulator.
	for j := 0; j < n; j++ {
		ctx.Store32(accum+mem.VAddr(4*j), 0)
	}
	// accum += a_ik * B[k][*] for every non-zero a_ik.
	for ap := mem.VAddr(ctx.Load64(aHeads + mem.VAddr(8*i))); ap != 0; ap = mem.VAddr(ctx.Load64(ap + smOffNext)) {
		k := int(ctx.Load32(ap + smOffCol))
		av := ctx.Load32(ap + smOffVal)
		for bp := mem.VAddr(ctx.Load64(bHeads + mem.VAddr(8*k))); bp != 0; bp = mem.VAddr(ctx.Load64(bp + smOffNext)) {
			j := int(ctx.Load32(bp + smOffCol))
			bv := ctx.Load32(bp + smOffVal)
			old := ctx.Load32(accum + mem.VAddr(4*j))
			ctx.Compute(3)
			ctx.Store32(accum+mem.VAddr(4*j), old+av*bv)
		}
	}
	// Emit the non-zeros as a linked list (dynamic allocation per element).
	var head, tail mem.VAddr
	for j := 0; j < n; j++ {
		v := ctx.Load32(accum + mem.VAddr(4*j))
		if v == 0 {
			continue
		}
		node := alloc(smNodeSize)
		ctx.Store32(node+smOffCol, uint32(j))
		ctx.Store32(node+smOffVal, v)
		ctx.Store64(node+smOffNext, 0)
		if tail == 0 {
			head = node
		} else {
			ctx.Store64(tail+smOffNext, uint64(node))
		}
		tail = node
	}
	return head
}

// SparseMMXthreads runs the benchmark on the CCSVM machine: MTTOP threads
// each produce a set of output rows, allocating output nodes through
// mttop_malloc served by the CPU thread.
func SparseMMXthreads(cfg core.Config, n int, density float64, seed int64) (Result, error) {
	rng := rand.New(rand.NewSource(seed))
	aDense := randomSparse(rng, n, density)
	bDense := randomSparse(rng, n, density)
	want := matMulRef(aDense, bDense, n)

	m := core.NewMachine(cfg)
	defer m.Shutdown()
	threads := threadCountFor(n, cfg.TotalMTTOPThreadContexts())

	kernel := m.RegisterKernel(func(ctx *xthreads.MTTOPContext) {
		args := ctx.Args()
		aHeads := mem.VAddr(ctx.Load64(args + 0))
		bHeads := mem.VAddr(ctx.Load64(args + 8))
		outHeads := mem.VAddr(ctx.Load64(args + 16))
		accumBase := mem.VAddr(ctx.Load64(args + 24))
		done := mem.VAddr(ctx.Load64(args + 32))
		size := int(ctx.Load64(args + 40))
		nThreads := int(ctx.Load64(args + 48))
		area := xthreads.MallocArea{
			Flags:    mem.VAddr(ctx.Load64(args + 56)),
			Sizes:    mem.VAddr(ctx.Load64(args + 64)),
			Results:  mem.VAddr(ctx.Load64(args + 72)),
			FirstTID: 0,
		}
		tid := ctx.TID()
		accum := accumBase + mem.VAddr(4*size*tid)
		alloc := func(bytes uint64) mem.VAddr { return ctx.MTTOPMalloc(area, bytes) }
		for i := tid; i < size; i += nThreads {
			head := smCompute(ctx.Context, alloc, aHeads, bHeads, accum, i, size)
			ctx.Store64(outHeads+mem.VAddr(8*i), uint64(head))
		}
		ctx.SignalSlot(done, 0)
	})

	var measured sim.Duration
	var outHeadsVA mem.VAddr
	_, err := m.RunProgram(func(ctx *xthreads.CPUContext) {
		// Build the pointer-based inputs on the CPU (not measured: the paper
		// measures the multiply).
		aHeads := smBuildLists(ctx.Context, ctx.Malloc, aDense, n)
		bHeads := smBuildLists(ctx.Context, ctx.Malloc, bDense, n)
		outHeads := ctx.Malloc(uint64(8 * n))
		accum := ctx.Malloc(uint64(4 * n * threads))
		done := ctx.Malloc(uint64(4 * threads))
		area := ctx.AllocMallocArea(0, threads-1)
		args := ctx.Malloc(80)
		outHeadsVA = outHeads
		ctx.InitConditions(done, 0, threads-1, xthreads.CondIdle)
		ctx.Store64(args+0, uint64(aHeads))
		ctx.Store64(args+8, uint64(bHeads))
		ctx.Store64(args+16, uint64(outHeads))
		ctx.Store64(args+24, uint64(accum))
		ctx.Store64(args+32, uint64(done))
		ctx.Store64(args+40, uint64(n))
		ctx.Store64(args+48, uint64(threads))
		ctx.Store64(args+56, uint64(area.Flags))
		ctx.Store64(args+64, uint64(area.Sizes))
		ctx.Store64(args+72, uint64(area.Results))
		start := ctx.Now()
		ctx.CreateMThreads(kernel, args, 0, threads-1)
		// The CPU thread both serves mttop_malloc requests and waits for the
		// workers to finish, exactly as Table 1 describes.
		ctx.ServeMallocs(area, 0, threads-1, func(c *xthreads.CPUContext) bool {
			for i := 0; i < threads; i++ {
				if c.Load32(done+mem.VAddr(4*i)) != xthreads.CondReady {
					return false
				}
			}
			return true
		})
		measured = ctx.Now().Sub(start)
	})
	if err != nil {
		return Result{}, err
	}
	if err := smVerify(m.MemReadUint64, m.MemReadUint32, outHeadsVA, want, n); err != nil {
		return Result{}, fmt.Errorf("sparse xthreads: %w", err)
	}
	return Result{Label: "CCSVM/xthreads", Time: measured, DRAMAccesses: m.DRAMAccesses(), Checked: true, Metrics: m.Metrics()}, nil
}

// SparseMMCPU runs the same pointer-based algorithm single-threaded on one
// APU CPU core (the baseline of Figure 8).
func SparseMMCPU(cfg apu.Config, n int, density float64, seed int64) (Result, error) {
	rng := rand.New(rand.NewSource(seed))
	aDense := randomSparse(rng, n, density)
	bDense := randomSparse(rng, n, density)
	want := matMulRef(aDense, bDense, n)

	m := apu.NewMachine(cfg)
	defer m.Shutdown()

	var measured sim.Duration
	var outHeadsVA mem.VAddr
	_, err := m.RunProgram(func(ctx *apu.HostContext) {
		aHeads := smBuildLists(ctx.Context, ctx.Malloc, aDense, n)
		bHeads := smBuildLists(ctx.Context, ctx.Malloc, bDense, n)
		outHeads := ctx.Malloc(uint64(8 * n))
		accum := ctx.Malloc(uint64(4 * n))
		outHeadsVA = outHeads
		start := ctx.Now()
		for i := 0; i < n; i++ {
			head := smCompute(ctx.Context, ctx.Malloc, aHeads, bHeads, accum, i, n)
			ctx.Store64(outHeads+mem.VAddr(8*i), uint64(head))
		}
		measured = ctx.Now().Sub(start)
	})
	if err != nil {
		return Result{}, err
	}
	if err := smVerify(m.MemReadUint64, m.MemReadUint32, outHeadsVA, want, n); err != nil {
		return Result{}, fmt.Errorf("sparse cpu: %w", err)
	}
	return Result{Label: "APU CPU core", Time: measured, DRAMAccesses: m.DRAMAccesses(), Checked: true, Metrics: m.Metrics()}, nil
}

// smVerify checks every output row's linked list against the dense reference.
func smVerify(read64 func(mem.VAddr) uint64, read32 func(mem.VAddr) uint32,
	outHeads mem.VAddr, want []int32, n int) error {
	for i := 0; i < n; i++ {
		head := mem.VAddr(read64(outHeads + mem.VAddr(8*i)))
		row := smRowToDense(read64, read32, head, n)
		for j := 0; j < n; j++ {
			if row[j] != want[i*n+j] {
				return fmt.Errorf("element (%d,%d) = %d, want %d", i, j, row[j], want[i*n+j])
			}
		}
	}
	return nil
}

func init() {
	Register(Workload{
		Name:        "sparse",
		Description: "sparse matrix multiply over linked lists, mttop_malloc (Figure 8)",
		UsesDensity: true,
		Runners: map[SystemKind]RunFunc{
			SystemCCSVM: func(sys System, p Params) (Result, error) {
				return SparseMMXthreads(sys.CCSVM, p.N, p.Density, p.Seed)
			},
			SystemCPU: func(sys System, p Params) (Result, error) {
				return SparseMMCPU(sys.APU, p.N, p.Density, p.Seed)
			},
		},
	})
}
