package workloads

import (
	"errors"
	"strings"
	"testing"

	"ccsvm/internal/sim"
)

func ccsvmSys(t *testing.T) System {
	t.Helper()
	sys, err := NewSystem(SystemCCSVM)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func openclSys(t *testing.T) System {
	t.Helper()
	sys, err := NewSystem(SystemOpenCL)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestSetAssignsTypedFields(t *testing.T) {
	sys := ccsvmSys(t)
	cases := []struct {
		path, value string
		got         func() any
		want        any
	}{
		{"ccsvm.MTTOPIssueWidth", "16", func() any { return sys.CCSVM.MTTOPIssueWidth }, 16},
		{"ccsvm.CPUClockHz", "3.2e9", func() any { return sys.CCSVM.CPUClockHz }, 3.2e9},
		{"ccsvm.DRAM.Latency", "50ns", func() any { return sys.CCSVM.DRAM.Latency }, 50 * sim.Nanosecond},
		// Durations parse at picosecond resolution: sub-nanosecond values
		// (Table 2's cache hit latencies live there) must not truncate to 0.
		{"ccsvm.CPUL1Hit", "0.5ns", func() any { return sys.CCSVM.CPUL1Hit }, 500 * sim.Picosecond},
		{"ccsvm.MTTOPL1Hit", "250ps", func() any { return sys.CCSVM.MTTOPL1Hit }, 250 * sim.Picosecond},
		{"ccsvm.L2Latency", "1.5us", func() any { return sys.CCSVM.L2Latency }, 1500 * sim.Nanosecond},
		{"ccsvm.Torus.Width", "6", func() any { return sys.CCSVM.Torus.Width }, 6},
		// Field matching is case-insensitive for CLI convenience.
		{"ccsvm.nummttops", "8", func() any { return sys.CCSVM.NumMTTOPs }, 8},
	}
	for _, c := range cases {
		if err := Set(&sys, c.path, c.value); err != nil {
			t.Fatalf("Set(%s=%s): %v", c.path, c.value, err)
		}
		if got := c.got(); got != c.want {
			t.Errorf("Set(%s=%s): field = %v, want %v", c.path, c.value, got, c.want)
		}
	}

	apuSys := openclSys(t)
	if err := Set(&apuSys, "apu.OpenCL.KernelLaunch", "5us"); err != nil {
		t.Fatal(err)
	}
	if apuSys.APU.OpenCL.KernelLaunch != 5*sim.Microsecond {
		t.Errorf("KernelLaunch = %v, want 5us", apuSys.APU.OpenCL.KernelLaunch)
	}
	if err := Set(&apuSys, "apu.GPULanes", "128"); err != nil {
		t.Fatal(err)
	}
	if apuSys.APU.GPULanes != 128 {
		t.Errorf("GPULanes = %d, want 128", apuSys.APU.GPULanes)
	}
}

func TestSetTypedErrors(t *testing.T) {
	cases := []struct {
		name, path, value string
		onAPU             bool
		want              error
	}{
		{"unknown root", "gpu.Lanes", "4", false, ErrUnknownPath},
		{"unknown field", "ccsvm.NumGPUs", "4", false, ErrUnknownPath},
		{"unknown nested field", "ccsvm.DRAM.Banks", "4", false, ErrUnknownPath},
		{"no dot", "ccsvm", "4", false, ErrUnknownPath},
		{"path into scalar", "ccsvm.NumCPUs.Sub", "4", false, ErrUnknownPath},
		{"path stops at struct", "ccsvm.DRAM", "4", false, ErrBadValue},
		{"wrong type int", "ccsvm.NumCPUs", "many", false, ErrBadValue},
		{"wrong type float", "ccsvm.CPUClockHz", "fast", false, ErrBadValue},
		{"duration without unit", "ccsvm.DRAM.Latency", "50", false, ErrBadValue},
		{"out of range zero", "ccsvm.NumCPUs", "0", false, ErrOutOfRange},
		{"out of range negative", "ccsvm.NumMTTOPs", "-3", false, ErrOutOfRange},
		{"out of range vliw", "apu.GPUVLIWOpsPerInstr", "9", true, ErrOutOfRange},
		// A negative latency would schedule engine events in the past.
		{"out of range negative latency", "ccsvm.DRAM.Latency", "-100ns", false, ErrOutOfRange},
		{"out of range negative overhead", "apu.OpenCL.KernelLaunch", "-1us", true, ErrOutOfRange},
		{"apu path on ccsvm system", "apu.GPULanes", "32", false, ErrMachineMismatch},
		{"ccsvm path on apu system", "ccsvm.NumCPUs", "2", true, ErrMachineMismatch},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sys := ccsvmSys(t)
			if c.onAPU {
				sys = openclSys(t)
			}
			before := sys
			err := Set(&sys, c.path, c.value)
			if !errors.Is(err, c.want) {
				t.Fatalf("Set(%s=%s): err = %v, want %v", c.path, c.value, err, c.want)
			}
			var oe *OverrideError
			if !errors.As(err, &oe) || oe.Path != c.path {
				t.Fatalf("Set(%s=%s): error %v does not carry the path", c.path, c.value, err)
			}
			// A failed override must not leave a half-modified system behind.
			if sys.CCSVM != before.CCSVM || sys.APU != before.APU {
				t.Errorf("Set(%s=%s) modified the system despite failing", c.path, c.value)
			}
		})
	}
}

// TestTorusDimensionOverrides covers the torus-geometry rules: one explicit
// dimension reshapes the grid (the other is derived at machine build), while
// an explicit grid too small for the chip's nodes is a typed error instead
// of a placement panic inside NewMachine.
func TestTorusDimensionOverrides(t *testing.T) {
	sys := ccsvmSys(t)
	if err := Set(&sys, "ccsvm.Torus.Height", "2"); err != nil {
		t.Fatalf("single-dimension override rejected: %v", err)
	}
	// 2x2 = 4 slots cannot hold the Table 2 chip's 18 nodes.
	if err := Set(&sys, "ccsvm.Torus.Width", "2"); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("undersized torus: err = %v, want ErrOutOfRange", err)
	}
	if sys.CCSVM.Torus.Width != 0 {
		t.Errorf("failed override left Torus.Width = %d, want rollback to 0", sys.CCSVM.Torus.Width)
	}
	// A grid that fits is accepted.
	if err := Set(&sys, "ccsvm.Torus.Width", "9"); err != nil {
		t.Errorf("9x2 torus for 18 nodes rejected: %v", err)
	}
}

func TestApplyAssignments(t *testing.T) {
	sys := ccsvmSys(t)
	err := Apply(&sys, []string{"ccsvm.NumMTTOPs=6", "ccsvm.L2BankBytes=524288"})
	if err != nil {
		t.Fatal(err)
	}
	if sys.CCSVM.NumMTTOPs != 6 || sys.CCSVM.L2BankBytes != 524288 {
		t.Errorf("Apply left NumMTTOPs=%d L2BankBytes=%d", sys.CCSVM.NumMTTOPs, sys.CCSVM.L2BankBytes)
	}
	if err := Apply(&sys, []string{"ccsvm.NumMTTOPs"}); !errors.Is(err, ErrBadValue) {
		t.Errorf("Apply without '=': err = %v, want ErrBadValue", err)
	}
	if err := Apply(&sys, []string{"ccsvm.Nope=1"}); !errors.Is(err, ErrUnknownPath) {
		t.Errorf("Apply with unknown path: err = %v, want ErrUnknownPath", err)
	}
}

func TestOverridePathsEnumeration(t *testing.T) {
	ccsvmPaths := OverridePaths(MachineCCSVM)
	apuPaths := OverridePaths(MachineAPU)
	if len(ccsvmPaths) == 0 || len(apuPaths) == 0 {
		t.Fatalf("OverridePaths returned %d ccsvm and %d apu paths", len(ccsvmPaths), len(apuPaths))
	}
	wantCCSVM := []string{"ccsvm.NumMTTOPs int", "ccsvm.DRAM.Latency duration", "ccsvm.Torus.Width int"}
	for _, w := range wantCCSVM {
		if !containsString(ccsvmPaths, w) {
			t.Errorf("OverridePaths(ccsvm) missing %q", w)
		}
	}
	wantAPU := []string{"apu.GPULanes int", "apu.OpenCL.KernelLaunch duration"}
	for _, w := range wantAPU {
		if !containsString(apuPaths, w) {
			t.Errorf("OverridePaths(apu) missing %q", w)
		}
	}
	if OverridePaths(MachineKind("riscv")) != nil {
		t.Error("OverridePaths of unknown machine should be nil")
	}
	// Every enumerated path must actually be settable (a doc that lies is
	// worse than none): probe a few by assigning a parseable value.
	sys := ccsvmSys(t)
	for _, p := range ccsvmPaths {
		name, typ, _ := strings.Cut(p, " ")
		var probe string
		switch typ {
		case "int", "uint64", "int64": // keep values structurally valid
			probe = "4"
		case "float64":
			probe = "1e9"
		case "duration":
			probe = "10ns"
		case "bool":
			probe = "true"
		default:
			continue
		}
		if err := Set(&sys, name, probe); err != nil && !errors.Is(err, ErrOutOfRange) {
			t.Errorf("enumerated path %q not settable: %v", p, err)
		}
		sys = ccsvmSys(t) // reset between probes
	}
}

func containsString(list []string, want string) bool {
	for _, s := range list {
		if s == want {
			return true
		}
	}
	return false
}
