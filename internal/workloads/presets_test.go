package workloads

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"ccsvm/internal/core"
)

func TestBuiltinPresets(t *testing.T) {
	presets := Presets()
	if len(presets) < 6 {
		t.Fatalf("Presets() = %d presets, want at least 6", len(presets))
	}
	wantNames := []string{"apu-base", "apu-fast-driver", "ccsvm-base", "ccsvm-small-cache", "ccsvm-wide"}
	var names []string
	for _, p := range presets {
		names = append(names, p.Name)
		if p.Description == "" {
			t.Errorf("preset %q has no description", p.Name)
		}
		if len(p.Kinds()) == 0 {
			t.Errorf("preset %q reports no runnable kinds", p.Name)
		}
		// Every preset must build a valid system for each kind it claims.
		for _, kind := range p.Kinds() {
			sys, err := p.System(kind)
			if err != nil {
				t.Errorf("preset %q kind %s: %v", p.Name, kind, err)
				continue
			}
			if err := func() error {
				if sys.Kind == SystemCCSVM {
					return sys.CCSVM.Validate()
				}
				return sys.APU.Validate()
			}(); err != nil {
				t.Errorf("preset %q kind %s builds an invalid config: %v", p.Name, kind, err)
			}
		}
	}
	joined := strings.Join(names, " ")
	for _, w := range wantNames {
		if !strings.Contains(joined, w) {
			t.Errorf("built-in preset %q missing from %v", w, names)
		}
	}
}

// TestPresetRoundTrip registers a preset with a hand-built configuration and
// requires the registry to hand back a byte-identical copy.
func TestPresetRoundTrip(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.NumMTTOPs = 7
	cfg.MTTOPIssueWidth = 12
	cfg.Torus.Width = 5
	in := Preset{
		Name:        "test-roundtrip",
		Description: "round-trip probe",
		Machine:     MachineCCSVM,
		CCSVM:       cfg,
	}
	RegisterPreset(in)
	out, ok := LookupPreset("test-roundtrip")
	if !ok {
		t.Fatal("registered preset not found")
	}
	// Compare the full formatted value: any drift in any field is a failure.
	if got, want := fmt.Sprintf("%#v", out), fmt.Sprintf("%#v", in); got != want {
		t.Errorf("preset did not round-trip byte-identically:\ngot  %s\nwant %s", got, want)
	}
	// Mutating the returned copy must not affect the registry.
	out.CCSVM.NumMTTOPs = 1
	again, _ := LookupPreset("test-roundtrip")
	if again.CCSVM.NumMTTOPs != 7 {
		t.Error("mutating a looked-up preset changed the registry")
	}
}

func TestPresetKindMismatch(t *testing.T) {
	p, ok := LookupPreset("ccsvm-base")
	if !ok {
		t.Fatal("ccsvm-base not registered")
	}
	if _, err := p.System(SystemOpenCL); !errors.Is(err, ErrMachineMismatch) {
		t.Errorf("ccsvm preset built an opencl system: err = %v, want ErrMachineMismatch", err)
	}
	a, ok := LookupPreset("apu-base")
	if !ok {
		t.Fatal("apu-base not registered")
	}
	if _, err := a.System(SystemCCSVM); !errors.Is(err, ErrMachineMismatch) {
		t.Errorf("apu preset built a ccsvm system: err = %v, want ErrMachineMismatch", err)
	}
	if a.DefaultKind() != SystemCPU {
		t.Errorf("apu-base default kind = %s, want cpu", a.DefaultKind())
	}
}

func TestRegisterPresetPanics(t *testing.T) {
	cases := map[string]Preset{
		"unnamed":         {Machine: MachineCCSVM},
		"unknown machine": {Name: "x", Machine: "quantum"},
		"duplicate":       {Name: "ccsvm-base", Machine: MachineCCSVM},
	}
	for name, p := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("RegisterPreset(%+v) did not panic", p)
				}
			}()
			RegisterPreset(p)
		})
	}
}
