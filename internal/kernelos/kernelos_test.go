package kernelos

import (
	"testing"

	"ccsvm/internal/mem"
	"ccsvm/internal/stats"
	"ccsvm/internal/vm"
)

func newKernel(t *testing.T) *Kernel {
	t.Helper()
	phys := mem.NewPhysical(256 << 20)
	return NewKernel(phys, 16, DefaultCosts(), stats.NewRegistry("k"))
}

func TestFrameAllocatorAllocFree(t *testing.T) {
	phys := mem.NewPhysical(16 * mem.PageSize)
	a := NewFrameAllocator(phys, 4, stats.NewRegistry("k"))
	f1 := a.Alloc()
	f2 := a.Alloc()
	if f1 == f2 {
		t.Fatal("allocator returned the same frame twice")
	}
	if f1 < 4 || f2 < 4 {
		t.Fatal("allocator handed out a reserved frame")
	}
	// A freed frame is reused and comes back zeroed.
	phys.WriteUint64(f1.Addr(), 0xdead)
	a.Free(f1)
	f3 := a.Alloc()
	if f3 != f1 {
		t.Fatalf("free list not reused: got %v want %v", f3, f1)
	}
	if phys.ReadUint64(f3.Addr()) != 0 {
		t.Fatal("reused frame not zeroed")
	}
	if a.Allocated() != 3 {
		t.Fatalf("allocated counter = %d, want 3", a.Allocated())
	}
}

func TestFrameAllocatorExhaustionPanics(t *testing.T) {
	phys := mem.NewPhysical(4 * mem.PageSize)
	a := NewFrameAllocator(phys, 2, stats.NewRegistry("k"))
	a.Alloc()
	a.Alloc()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on exhaustion")
		}
	}()
	a.Alloc()
}

func TestProcessHeapAndPageFault(t *testing.T) {
	k := newKernel(t)
	p := k.NewProcess()
	base := p.Sbrk(100)
	if base != HeapBase {
		t.Fatalf("first allocation at %#x, want heap base %#x", uint64(base), uint64(HeapBase))
	}
	second := p.Sbrk(8)
	if second <= base {
		t.Fatal("heap not growing")
	}
	if !p.InHeap(base) || p.InHeap(p.Brk()) {
		t.Fatal("InHeap bounds wrong")
	}
	// A fault inside the heap maps a fresh page.
	pteAddr := k.HandlePageFault(&vm.Fault{VA: base, Write: true, Root: p.Root()})
	if pteAddr == 0 {
		t.Fatal("fault handler returned no PTE address")
	}
	if _, ok := p.Table.Translate(base); !ok {
		t.Fatal("page not mapped after fault")
	}
	if k.PageFaults() != 1 {
		t.Fatalf("page fault counter = %d", k.PageFaults())
	}
}

func TestPageFaultOutsideHeapPanics(t *testing.T) {
	k := newKernel(t)
	p := k.NewProcess()
	defer func() {
		if recover() == nil {
			t.Fatal("expected segfault panic")
		}
	}()
	k.HandlePageFault(&vm.Fault{VA: 0x10, Write: false, Root: p.Root()})
}

func TestPageFaultUnknownRootPanics(t *testing.T) {
	k := newKernel(t)
	k.NewProcess()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown root")
		}
	}()
	k.HandlePageFault(&vm.Fault{VA: uint64ToVA(uint64(HeapBase)), Root: 0xdead000})
}

func uint64ToVA(v uint64) mem.VAddr { return mem.VAddr(v) }

func TestHeapOverflowPanics(t *testing.T) {
	k := newKernel(t)
	p := k.NewProcess()
	defer func() {
		if recover() == nil {
			t.Fatal("expected heap overflow panic")
		}
	}()
	p.Sbrk(uint64(HeapLimit - HeapBase + mem.PageSize))
}

func TestProcessByRootAndMultipleProcesses(t *testing.T) {
	k := newKernel(t)
	p1 := k.NewProcess()
	p2 := k.NewProcess()
	if p1.PID == p2.PID {
		t.Fatal("duplicate PIDs")
	}
	if p1.Root() == p2.Root() {
		t.Fatal("processes share a page table root")
	}
	got, ok := k.ProcessByRoot(p2.Root())
	if !ok || got != p2 {
		t.Fatal("ProcessByRoot lookup failed")
	}
	if _, ok := k.ProcessByRoot(0x123000); ok {
		t.Fatal("ProcessByRoot found a bogus root")
	}
}

func TestUnmapTriggersShootdown(t *testing.T) {
	k := newKernel(t)
	p := k.NewProcess()
	base := p.Sbrk(mem.PageSize)
	k.HandlePageFault(&vm.Fault{VA: base, Write: true, Root: p.Root()})
	flushed := 0
	k.SetShootdownHook(func() { flushed++ })
	if !k.UnmapPage(p, base) {
		t.Fatal("unmap failed")
	}
	if flushed != 1 {
		t.Fatalf("shootdown hook ran %d times, want 1", flushed)
	}
	if k.UnmapPage(p, base) {
		t.Fatal("second unmap of the same page reported success")
	}
}

func TestPrefaultHeapAndFunctionalTranslate(t *testing.T) {
	k := newKernel(t)
	p := k.NewProcess()
	base := p.Sbrk(3 * mem.PageSize)
	p.PrefaultHeap()
	for off := mem.VAddr(0); off < 3*mem.PageSize; off += mem.PageSize {
		if _, ok := p.Table.Translate(base + off); !ok {
			t.Fatalf("page %#x not mapped after PrefaultHeap", uint64(base+off))
		}
	}
	pa := p.TranslateFunctional(base + 100)
	if pa == 0 {
		t.Fatal("functional translate failed")
	}
	// Functional translation of a not-yet-faulted page maps it on demand.
	more := p.Sbrk(mem.PageSize)
	if pa2 := p.TranslateFunctional(more); pa2 == 0 {
		t.Fatal("functional translate of demand page failed")
	}
}

func TestDefaultCosts(t *testing.T) {
	c := DefaultCosts()
	if c.PageFaultInstrs <= 0 || c.SyscallInstrs <= 0 || c.ShootdownInstrs <= 0 {
		t.Fatal("default costs must be positive")
	}
}
