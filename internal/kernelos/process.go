package kernelos

import (
	"fmt"
	"sync"

	"ccsvm/internal/mem"
	"ccsvm/internal/vm"
)

// Virtual address space layout for simulated processes. Only the heap is
// dynamic; the workloads in this repository carry no code or stack segments
// (compute is charged abstractly), so the layout is deliberately small.
const (
	// HeapBase is the first heap virtual address.
	HeapBase mem.VAddr = 0x1000_0000
	// HeapLimit is the first address beyond the heap region.
	HeapLimit mem.VAddr = 0x3800_0000
)

// Process is one simulated process: a page table, a heap, and an ID. All
// threads of a process (CPU and MTTOP) share the page table, which is the
// essence of shared virtual memory.
type Process struct {
	// PID identifies the process.
	PID int
	// Table is the process's two-level page table.
	Table *vm.PageTable

	kernel *Kernel

	// mu guards brk. A workload goroutine extends the heap (Sbrk via
	// xthreads Malloc) in the window between two of its operations, while
	// the engine goroutine may concurrently consult InHeap servicing another
	// core's page fault; the two never touch the same heap region (a fault
	// can only target memory whose address was already published through
	// simulated memory), so the lock affects memory safety, not simulated
	// behaviour.
	//
	//ccsvm:stateok // zero-value lock; carries no state across a checkpoint
	mu  sync.Mutex
	brk mem.VAddr
}

// Root returns the CR3 value for this process (the physical address of the
// page-table root), which is what task descriptors carry to MTTOP cores.
func (p *Process) Root() mem.PAddr { return p.Table.Root() }

// Brk returns the current end of the heap.
func (p *Process) Brk() mem.VAddr {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.brk
}

// Sbrk extends the heap by size bytes (rounded up to 8-byte alignment) and
// returns the base of the new region. The pages are demand-paged: they are
// mapped by the page-fault handler on first touch, exactly as in the paper's
// Linux-based evaluation.
func (p *Process) Sbrk(size uint64) mem.VAddr {
	p.mu.Lock()
	defer p.mu.Unlock()
	base := mem.AlignUp(p.brk, 64)
	end := base + mem.VAddr(size)
	if end > HeapLimit {
		panic(fmt.Sprintf("kernelos: heap overflow: brk would reach %#x (limit %#x)", uint64(end), uint64(HeapLimit)))
	}
	p.brk = end
	return base
}

// InHeap reports whether va falls inside the currently allocated heap, which
// the page-fault handler uses to distinguish demand paging from wild
// accesses.
func (p *Process) InHeap(va mem.VAddr) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return va >= HeapBase && va < p.brk
}

// PrefaultHeap eagerly maps every currently allocated heap page. Experiments
// use it when they want to exclude cold page faults from a measurement, the
// way a warmed-up native run would behave.
func (p *Process) PrefaultHeap() {
	for va := HeapBase; va < p.Brk(); va += mem.PageSize {
		if _, ok := p.Table.Lookup(va); !ok {
			p.kernel.mapPage(p, va)
		}
	}
}

// TranslateFunctional translates a heap address without timing, mapping the
// page if needed. The machine's loader uses it to initialize workload inputs
// before simulated time starts.
func (p *Process) TranslateFunctional(va mem.VAddr) mem.PAddr {
	if pa, ok := p.Table.Translate(va); ok {
		return pa
	}
	if !p.InHeap(va) {
		panic(fmt.Sprintf("kernelos: functional access outside the heap: %#x", uint64(va)))
	}
	p.kernel.mapPage(p, va)
	pa, _ := p.Table.Translate(va)
	return pa
}
