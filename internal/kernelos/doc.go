// Package kernelos is the minimal operating-system layer of the simulated
// machines: a physical frame allocator, per-process address spaces with a
// demand-paged heap, the page-fault handler, and the TLB-shootdown hook. The
// paper's evaluation runs unmodified Linux inside gem5; here the kernel
// services the same architectural events (page faults, address-space setup,
// the MIFD driver's write syscall) with explicit, documented costs.
package kernelos
