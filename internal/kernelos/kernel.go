package kernelos

import (
	"fmt"

	"ccsvm/internal/mem"
	"ccsvm/internal/stats"
	"ccsvm/internal/vm"
)

// Costs bundles the instruction costs the kernel charges for its services.
// They are deliberately explicit so experiments can vary them; the defaults
// are in line with measured Linux fast paths on in-order cores.
type Costs struct {
	// PageFaultInstrs is the trap + handler instruction count for a minor
	// (demand-zero) page fault.
	PageFaultInstrs int64
	// ShootdownInstrs is the cost of initiating a TLB shootdown.
	ShootdownInstrs int64
	// SyscallInstrs is the entry/exit cost of a simple syscall (the MIFD
	// write syscall uses it).
	SyscallInstrs int64
}

// DefaultCosts returns the costs used by the paper-configuration machines.
func DefaultCosts() Costs {
	return Costs{
		PageFaultInstrs: 1200,
		ShootdownInstrs: 400,
		SyscallInstrs:   250,
	}
}

// Kernel is the machine-wide OS state: the frame allocator, the process
// table, and the shootdown hook the machine installs to flush MTTOP TLBs.
type Kernel struct {
	phys   *mem.Physical
	frames *FrameAllocator
	costs  Costs

	processes []*Process
	nextPID   int

	// shootdown is installed by the machine; it flushes every MTTOP TLB (the
	// paper's conservative TLB-coherence policy, Section 3.2.1).
	//
	//ccsvm:stateok // installed by the machine at boot; rebound on restore
	shootdown func()

	pageFaults *stats.Counter
	shootdowns *stats.Counter
}

// NewKernel boots a kernel over the given physical memory. Frames below
// reservedFrames are left to the "firmware" (and page-table roots are carved
// out of the managed region like any other allocation).
func NewKernel(phys *mem.Physical, reservedFrames mem.FrameNumber, costs Costs, reg *stats.Registry) *Kernel {
	k := &Kernel{
		phys:       phys,
		frames:     NewFrameAllocator(phys, reservedFrames, reg),
		costs:      costs,
		nextPID:    1,
		pageFaults: reg.Counter("kernel.page_faults"),
		shootdowns: reg.Counter("kernel.tlb_shootdowns"),
	}
	return k
}

// Costs returns the kernel's configured service costs.
func (k *Kernel) Costs() Costs { return k.costs }

// Frames exposes the frame allocator (the loader and page-table code use it).
func (k *Kernel) Frames() *FrameAllocator { return k.frames }

// SetShootdownHook installs the machine's "flush all MTTOP TLBs" action.
func (k *Kernel) SetShootdownHook(fn func()) { k.shootdown = fn }

// NewProcess creates a process with an empty page table and an empty heap.
func (k *Kernel) NewProcess() *Process {
	root := k.frames.Alloc()
	p := &Process{
		PID:    k.nextPID,
		kernel: k,
		brk:    HeapBase,
	}
	p.Table = vm.NewPageTable(k.phys, root, k.frames.Alloc)
	k.nextPID++
	k.processes = append(k.processes, p)
	return p
}

// ProcessByRoot finds the process whose page table root is the given CR3
// value; page faults arriving from MTTOP cores identify their process this
// way, exactly as the paper's MIFD interrupt carries the CR3.
func (k *Kernel) ProcessByRoot(root mem.PAddr) (*Process, bool) {
	for _, p := range k.processes {
		if p.Root() == root {
			return p, true
		}
	}
	return nil, false
}

// HandlePageFault services a demand-paging fault: it allocates a zeroed
// frame, installs the translation, and returns the physical address of the
// PTE that was written so the faulting CPU core can replay the store through
// its cache (making the update visible to the coherence protocol and to
// hardware walkers). Faults outside any valid region panic: in a simulation
// that is a workload bug, not a condition to model.
func (k *Kernel) HandlePageFault(f *vm.Fault) mem.PAddr {
	proc, ok := k.ProcessByRoot(f.Root)
	if !ok {
		panic(fmt.Sprintf("kernelos: page fault for unknown address space: %v", f))
	}
	if !proc.InHeap(f.VA) {
		panic(fmt.Sprintf("kernelos: segmentation fault: %v (heap is %#x..%#x)", f, uint64(HeapBase), uint64(proc.Brk())))
	}
	k.pageFaults.Inc()
	return k.mapPage(proc, f.VA)
}

// mapPage allocates and maps one page, returning the written PTE's address.
// Faults for the same page race freely on a heterogeneous chip (many MTTOP
// threads touch a fresh page before the first fault completes), so — like a
// real kernel re-checking under the page-table lock — an already-present
// mapping is kept rather than replaced, which would discard stores made
// through the first mapping.
func (k *Kernel) mapPage(p *Process, va mem.VAddr) mem.PAddr {
	if _, ok := p.Table.Lookup(va); ok {
		return vm.L2EntryAddrFor(k.phys, p.Table.Root(), va)
	}
	frame := k.frames.Alloc()
	return p.Table.Map(va, frame, true)
}

// UnmapPage removes a translation and performs the TLB shootdown the paper
// describes: the initiating CPU signals every MTTOP TLB to flush.
func (k *Kernel) UnmapPage(p *Process, va mem.VAddr) bool {
	_, ok := p.Table.Unmap(va)
	if !ok {
		return false
	}
	k.Shootdown()
	return true
}

// Shootdown flushes all MTTOP TLBs through the machine hook.
func (k *Kernel) Shootdown() {
	k.shootdowns.Inc()
	if k.shootdown != nil {
		k.shootdown()
	}
}

// PageFaults reports how many demand-paging faults the kernel has serviced.
func (k *Kernel) PageFaults() uint64 { return k.pageFaults.Value() }
