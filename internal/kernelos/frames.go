package kernelos

import (
	"fmt"

	"ccsvm/internal/mem"
	"ccsvm/internal/stats"
)

// FrameAllocator hands out physical page frames. It is a simple bump
// allocator with a free list, which is all the simulated workloads need.
type FrameAllocator struct {
	phys  *mem.Physical
	next  mem.FrameNumber
	limit mem.FrameNumber
	free  []mem.FrameNumber

	allocated *stats.Counter
}

// NewFrameAllocator manages the frames of phys starting at startFrame
// (earlier frames are reserved for firmware/kernel images, mirroring a real
// boot layout).
func NewFrameAllocator(phys *mem.Physical, startFrame mem.FrameNumber, reg *stats.Registry) *FrameAllocator {
	return &FrameAllocator{
		phys:      phys,
		next:      startFrame,
		limit:     mem.FrameNumber(phys.Size() / mem.PageSize),
		allocated: reg.Counter("kernel.frames_allocated"),
	}
}

// Alloc returns a zeroed frame. It panics when physical memory is exhausted,
// which in a simulation is a configuration error rather than a runtime
// condition to recover from.
func (a *FrameAllocator) Alloc() mem.FrameNumber {
	a.allocated.Inc()
	if n := len(a.free); n > 0 {
		f := a.free[n-1]
		a.free = a.free[:n-1]
		a.phys.ZeroFrame(f)
		return f
	}
	if a.next >= a.limit {
		panic(fmt.Sprintf("kernelos: out of physical memory (%d frames)", a.limit))
	}
	f := a.next
	a.next++
	a.phys.ZeroFrame(f)
	return f
}

// Free returns a frame to the allocator.
func (a *FrameAllocator) Free(f mem.FrameNumber) {
	a.free = append(a.free, f)
}

// Allocated reports how many frames have been handed out (net of frees not
// tracked; used by tests and memory-footprint stats).
func (a *FrameAllocator) Allocated() uint64 { return a.allocated.Value() }
