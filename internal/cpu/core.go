// Package cpu models the general-purpose CPU cores of both simulated
// machines. The CCSVM chip's CPU cores are in-order x86-like cores with a
// maximum IPC of 0.5 (Table 2); the APU baseline's CPU cores reuse the same
// model with an IPC of up to 4 and a private cache hierarchy. The core
// executes software threads provided by the exec package, translates their
// addresses through an optional MMU, services page faults through the kernel,
// and accepts interrupts raised on behalf of MTTOP cores by the MIFD.
//
//ccsvm:deterministic
package cpu

import (
	"fmt"

	"ccsvm/internal/exec"
	"ccsvm/internal/kernelos"
	"ccsvm/internal/mem"
	"ccsvm/internal/sim"
	"ccsvm/internal/stats"
	"ccsvm/internal/vm"
)

// SyscallHandler services an OpSyscall: it may take simulated time and must
// eventually call done with the syscall's return value.
type SyscallHandler func(core *Core, num int, args []uint64, done func(ret uint64))

// Interrupt is a unit of work raised on a core from the outside (the MIFD
// forwarding an MTTOP page fault). The service function runs on the core
// between instructions and must call done when finished.
type Interrupt struct {
	// Name describes the interrupt for traces.
	Name string
	// Service performs the work, possibly over simulated time.
	//
	//ccsvm:stateok // interrupt service routines are re-registered by the machine on restore
	Service func(done func())
}

// Config describes one CPU core.
type Config struct {
	// Clock is the core's clock domain (2.9 GHz for both machines).
	Clock sim.Clock
	// CPI is the average cycles per instruction for compute work
	// (2.0 for the CCSVM chip's deliberately weak in-order cores,
	// 0.25 for the APU's out-of-order cores).
	CPI float64
	// Name prefixes the core's statistics.
	Name string
}

// Core is one CPU core.
//
//ccsvm:state
type Core struct {
	engine *sim.Engine
	cfg    Config
	port   mem.Port
	mmu    *vm.MMU
	phys   *mem.Physical
	kernel *kernelos.Kernel

	//ccsvm:stateok // installed by the machine at boot; rebound on restore
	syscall SyscallHandler

	//ccsvm:stateok // goroutine-backed thread handle; software threads are re-launched on restore
	current *exec.Thread
	//ccsvm:stateok // goroutine-backed thread handles; software threads are re-launched on restore
	runQueue   []*exec.Thread
	interrupts []Interrupt
	busy       bool
	// nextOp buffers the current thread's next operation, fetched before
	// interrupts are serviced (see step for why the order matters).
	nextOp     exec.Op
	haveNextOp bool
	// onExit callbacks fire when a thread finishes, keyed per thread start.
	//
	//ccsvm:stateok // thread-exit continuations; re-registered when threads are re-launched on restore
	onExit map[*exec.Thread]func()

	// The core runs one operation at a time (busy), so the in-flight op's
	// state lives here and the hot-path callbacks below are bound once at
	// construction: executing a compute or memory op allocates nothing.
	op exec.Op
	pa mem.PAddr
	// computeFn completes a compute op; translateCb receives the MMU result;
	// accessCb runs when the cache access is globally performed; retryMemFn
	// reissues the op after a serviced page fault; stepFn is the resume
	// continuation handed to Thread.TryNext.
	//ccsvm:stateok // bound once at construction; rebound on restore
	computeFn func(any)
	//ccsvm:stateok // bound once at construction; rebound on restore
	stepFn func()
	//ccsvm:stateok // bound once at construction; rebound on restore
	translateCb func(mem.PAddr, *vm.Fault)
	//ccsvm:stateok // bound once at construction; rebound on restore
	accessCb func()
	//ccsvm:stateok // bound once at construction; rebound on restore
	retryMemFn func()

	instrs     *stats.Counter
	memOps     *stats.Counter
	pageFaults *stats.Counter
	intsTaken  *stats.Counter
	busyTime   *stats.Counter
	lastStart  sim.Time
}

// New builds a CPU core. The MMU may be nil, in which case virtual addresses
// are used as physical addresses directly (the APU baseline machine, whose
// address-translation behaviour is not part of the comparison, runs this
// way).
func New(engine *sim.Engine, cfg Config, port mem.Port, mmu *vm.MMU, phys *mem.Physical,
	kernel *kernelos.Kernel, reg *stats.Registry) *Core {
	c := &Core{
		engine: engine,
		cfg:    cfg,
		port:   port,
		mmu:    mmu,
		phys:   phys,
		kernel: kernel,
		onExit: make(map[*exec.Thread]func()),
	}
	c.computeFn = func(any) { c.completeOp(c.current, exec.Result{}) }
	c.stepFn = func() { c.step() }
	c.translateCb = func(pa mem.PAddr, fault *vm.Fault) {
		if fault == nil {
			c.access(pa)
			return
		}
		c.ServicePageFault(fault, c.retryMemFn)
	}
	c.accessCb = func() {
		c.completeOp(c.current, exec.Result{Value: PerformFunctional(c.phys, c.op, c.pa)})
	}
	c.retryMemFn = func() { c.memAccess() }
	c.instrs = reg.Counter(cfg.Name + ".instructions")
	c.memOps = reg.Counter(cfg.Name + ".mem_ops")
	c.pageFaults = reg.Counter(cfg.Name + ".page_faults")
	c.intsTaken = reg.Counter(cfg.Name + ".interrupts")
	c.busyTime = reg.Counter(cfg.Name + ".busy_ps")
	return c
}

// SetSyscallHandler installs the OS syscall dispatcher (the machine provides
// it, wiring the MIFD driver's write syscall among others).
func (c *Core) SetSyscallHandler(h SyscallHandler) { c.syscall = h }

// MMU returns the core's MMU (nil on machines without address translation).
func (c *Core) MMU() *vm.MMU { return c.mmu }

// Config returns the core's configuration.
func (c *Core) Config() Config { return c.cfg }

// Run starts (or queues) a software thread on this core. onExit, if non-nil,
// runs when the thread's function returns.
func (c *Core) Run(t *exec.Thread, onExit func()) {
	t.Start()
	if onExit != nil {
		c.onExit[t] = onExit
	}
	if c.current == nil {
		c.current = t
		c.lastStart = c.engine.Now()
	} else {
		c.runQueue = append(c.runQueue, t)
	}
	c.step()
}

// RaiseInterrupt queues external work (such as an MTTOP page fault forwarded
// by the MIFD) to run on this core between instructions. It must be called
// from engine context (an event callback), never from workload code: a
// workload goroutine calling it would re-enter step mid-operation and
// corrupt the core's fetch state (see step's serialization comment).
//
//ccsvm:enginectx
func (c *Core) RaiseInterrupt(i Interrupt) {
	c.interrupts = append(c.interrupts, i)
	c.step()
}

// Idle reports whether the core has no thread and no pending work.
func (c *Core) Idle() bool {
	return c.current == nil && len(c.runQueue) == 0 && len(c.interrupts) == 0 && !c.busy
}

// step advances the core: service one interrupt or execute the current
// thread's next operation. It is a no-op while an operation is in flight.
//
// The current thread's next operation is fetched (Thread.TryNext) before
// pending interrupts are considered. When the thread has not published it
// yet, the fetch registers step itself as the resume continuation and
// returns: the thread's between-ops Go code runs — fully serialized with the
// engine, under the gate's baton — when its pending activation comes up, and
// re-enters step with the operation published. Simulated timing is
// unchanged: the buffered operation still executes only after pending
// interrupts are drained.
//
//ccsvm:hotpath
func (c *Core) step() {
	for {
		if c.busy {
			return
		}
		if c.current != nil && !c.haveNextOp {
			op, st := c.current.TryNext(c.stepFn)
			if st == exec.NextWait {
				return
			}
			if st == exec.NextDone {
				c.finishThread()
				continue
			}
			c.nextOp, c.haveNextOp = op, true
		}
		if len(c.interrupts) > 0 {
			intr := c.interrupts[0]
			c.interrupts = c.interrupts[1:]
			c.intsTaken.Inc()
			c.busy = true
			//ccsvm:allocok // interrupt delivery is rare, never the steady-state dispatch path
			intr.Service(func() {
				c.busy = false
				c.step()
			})
			return
		}
		if c.current == nil {
			if len(c.runQueue) == 0 {
				return
			}
			c.current = c.runQueue[0]
			c.runQueue = c.runQueue[1:]
			c.lastStart = c.engine.Now()
			continue
		}
		c.haveNextOp = false
		c.busy = true
		c.execute(c.nextOp)
		return
	}
}

func (c *Core) finishThread() {
	t := c.current
	c.current = nil
	c.busyTime.Add(uint64(c.engine.Now().Sub(c.lastStart)))
	if err := t.Err(); err != nil {
		panic(fmt.Sprintf("%s: workload thread %q failed: %v", c.cfg.Name, t.Name(), err))
	}
	if fn := c.onExit[t]; fn != nil {
		delete(c.onExit, t)
		fn()
	}
}

// computeDuration converts an instruction count into time on this core.
func (c *Core) computeDuration(instrs int64) sim.Duration {
	cycles := float64(instrs) * c.cfg.CPI
	return sim.Duration(cycles*float64(c.cfg.Clock.Period) + 0.5)
}

func (c *Core) execute(op exec.Op) {
	// The core is busy until the op completes, so c.current is stable for
	// the op's lifetime and the prebound callbacks may use it directly.
	t := c.current
	switch op.Kind {
	case exec.OpCompute:
		c.instrs.Add(uint64(op.Instrs))
		c.engine.ScheduleArg(c.computeDuration(op.Instrs), c.computeFn, nil)
	case exec.OpLoad, exec.OpStore, exec.OpRMW:
		c.memOps.Inc()
		c.instrs.Inc()
		c.op = op
		c.memAccess()
	case exec.OpSyscall:
		if c.syscall == nil {
			panic(fmt.Sprintf("%s: syscall %d with no handler installed", c.cfg.Name, op.Syscall))
		}
		// Charge the kernel's syscall entry/exit cost, then dispatch.
		c.engine.Schedule(c.computeDuration(c.kernel.Costs().SyscallInstrs), func() {
			c.syscall(c, int(op.Syscall), op.Args, func(ret uint64) {
				c.completeOp(t, exec.Result{Value: ret})
			})
		})
	default:
		panic(fmt.Sprintf("%s: unknown op kind %v", c.cfg.Name, op.Kind))
	}
}

func (c *Core) completeOp(t *exec.Thread, r exec.Result) {
	t.Complete(r)
	c.busy = false
	c.step()
}

// memAccess translates and performs the in-flight memory operation (c.op),
// handling page faults locally (this is a CPU core: faults trap straight
// into the kernel, then retryMemFn reissues the op).
//
//ccsvm:hotpath
func (c *Core) memAccess() {
	if c.mmu == nil {
		c.access(mem.PAddr(c.op.Addr))
		return
	}
	c.mmu.Translate(c.op.Addr, c.op.Kind != exec.OpLoad, c.translateCb)
}

// ServicePageFault runs the kernel's demand-paging handler on this core:
// it charges the trap cost, installs the mapping, replays the PTE store
// through the cache hierarchy (so walkers and other cores see it coherently)
// and then resumes the faulting access.
func (c *Core) ServicePageFault(fault *vm.Fault, resume func()) {
	c.pageFaults.Inc()
	cost := c.computeDuration(c.kernel.Costs().PageFaultInstrs)
	c.engine.Schedule(cost, func() {
		pteAddr := c.kernel.HandlePageFault(fault)
		c.port.Access(mem.Request{Type: mem.Write, Addr: pteAddr, Size: 8}, func() {
			resume()
		})
	})
}

// access performs the timed cache access for c.op; the prebound accessCb
// applies the functional data movement at completion time.
//
//ccsvm:hotpath
func (c *Core) access(pa mem.PAddr) {
	var typ mem.AccessType
	switch c.op.Kind {
	case exec.OpLoad:
		typ = mem.Read
	case exec.OpStore:
		typ = mem.Write
	case exec.OpRMW:
		typ = mem.ReadModifyWrite
	}
	c.pa = pa
	c.port.Access(mem.Request{Type: typ, Addr: pa, Size: int(c.op.Size)}, c.accessCb)
}

// PerformFunctional applies the functional effect of a completed memory
// operation against physical memory and returns the value the thread should
// observe. It is shared by the CPU and MTTOP core models.
func PerformFunctional(phys *mem.Physical, op exec.Op, pa mem.PAddr) uint64 {
	switch op.Kind {
	case exec.OpLoad:
		return readSized(phys, pa, int(op.Size))
	case exec.OpStore:
		writeSized(phys, pa, int(op.Size), op.Value)
		return 0
	case exec.OpRMW:
		old := readSized(phys, pa, int(op.Size))
		writeSized(phys, pa, int(op.Size), op.ApplyRMW(old))
		return old
	default:
		panic(fmt.Sprintf("cpu: functional perform of %v", op.Kind))
	}
}

func readSized(phys *mem.Physical, pa mem.PAddr, size int) uint64 {
	switch size {
	case 1:
		return uint64(phys.ReadUint8(pa))
	case 4:
		return uint64(phys.ReadUint32(pa))
	case 8:
		return phys.ReadUint64(pa)
	default:
		panic(fmt.Sprintf("cpu: unsupported access size %d", size))
	}
}

func writeSized(phys *mem.Physical, pa mem.PAddr, size int, v uint64) {
	switch size {
	case 1:
		phys.WriteUint8(pa, uint8(v))
	case 4:
		phys.WriteUint32(pa, uint32(v))
	case 8:
		phys.WriteUint64(pa, v)
	default:
		panic(fmt.Sprintf("cpu: unsupported access size %d", size))
	}
}

// Instructions reports the number of instructions retired by this core.
func (c *Core) Instructions() uint64 { return c.instrs.Value() }
