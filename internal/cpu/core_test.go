package cpu_test

import (
	"testing"

	"ccsvm/internal/cpu"
	"ccsvm/internal/exec"
	"ccsvm/internal/kernelos"
	"ccsvm/internal/mem"
	"ccsvm/internal/sim"
	"ccsvm/internal/stats"
	"ccsvm/internal/vm"
)

// latencyPort is a flat-latency memory port: every access completes after a
// fixed delay with no coherence. It isolates the core model from the cache
// hierarchy.
type latencyPort struct {
	engine   *sim.Engine
	latency  sim.Duration
	accesses int
}

func (p *latencyPort) Access(req mem.Request, done func()) {
	p.accesses++
	p.engine.Schedule(p.latency, done)
}

// coreRig is a CPU core wired to a kernel, a process and an MMU, like the
// CCSVM machine builds it, but behind a flat-latency port.
type coreRig struct {
	engine *sim.Engine
	gate   *exec.Gate
	core   *cpu.Core
	kernel *kernelos.Kernel
	proc   *kernelos.Process
	phys   *mem.Physical
	port   *latencyPort
	reg    *stats.Registry
}

func newCoreRig(t *testing.T) *coreRig {
	t.Helper()
	engine := sim.NewEngine()
	gate := exec.NewGate()
	gate.Bind(engine)
	reg := stats.NewRegistry("test")
	phys := mem.NewPhysical(16 << 20)
	kernel := kernelos.NewKernel(phys, 16, kernelos.DefaultCosts(), reg)
	proc := kernel.NewProcess()
	port := &latencyPort{engine: engine, latency: 2 * sim.Nanosecond}
	mmu := vm.NewMMU(vm.TLBConfig{Entries: 8, Name: "test.tlb"}, port, phys, reg)
	core := cpu.New(engine, cpu.Config{
		Clock: sim.NewClock("cpu", 2.9e9),
		CPI:   2.0,
		Name:  "cpu0",
	}, port, mmu, phys, kernel, reg)
	mmu.SetRoot(proc.Root())
	return &coreRig{engine: engine, gate: gate, core: core, kernel: kernel, proc: proc, phys: phys, port: port, reg: reg}
}

func (r *coreRig) run(t *testing.T, fn func(c *exec.Context)) {
	t.Helper()
	done := false
	th := exec.NewThread(r.gate, 0, "t0", fn)
	r.core.Run(th, func() { done = true })
	r.gate.Drive(r.engine.Step)
	if !done {
		t.Fatal("thread did not finish")
	}
}

// TestCoreFaultAndSyscallPaths is the table-driven coverage of the rare
// paths PR 3's allocation-elimination rewrite left untested: demand-paging
// faults (the translate-fault-service-retry loop), syscall dispatch with a
// simulated-time handler, and mixes of both with ordinary ops.
func TestCoreFaultAndSyscallPaths(t *testing.T) {
	const sysEcho = 7
	cases := []struct {
		name       string
		program    func(t *testing.T, r *coreRig, c *exec.Context)
		wantFaults uint64
		wantSysc   bool
	}{
		{
			name: "load faults once then hits",
			program: func(t *testing.T, r *coreRig, c *exec.Context) {
				va := r.proc.Sbrk(mem.PageSize)
				if got := c.Load64(va); got != 0 {
					t.Errorf("fresh page read %#x, want 0", got)
				}
				if got := c.Load64(va + 8); got != 0 {
					t.Errorf("second read on the mapped page = %#x, want 0", got)
				}
			},
			wantFaults: 1,
		},
		{
			name: "store fault then read back",
			program: func(t *testing.T, r *coreRig, c *exec.Context) {
				va := r.proc.Sbrk(mem.PageSize)
				c.Store64(va, 0xdead)
				if got := c.Load64(va); got != 0xdead {
					t.Errorf("read back %#x, want 0xdead", got)
				}
			},
			wantFaults: 1,
		},
		{
			name: "rmw faults and chains",
			program: func(t *testing.T, r *coreRig, c *exec.Context) {
				va := r.proc.Sbrk(mem.PageSize)
				if old := c.AtomicAdd64(va, 5); old != 0 {
					t.Errorf("first fetch-add returned %#x, want 0", old)
				}
				if old := c.AtomicAdd64(va, 1); old != 5 {
					t.Errorf("second fetch-add returned %#x, want 5", old)
				}
			},
			wantFaults: 1,
		},
		{
			name: "faults on distinct pages",
			program: func(t *testing.T, r *coreRig, c *exec.Context) {
				va := r.proc.Sbrk(3 * mem.PageSize)
				c.Store8(va, 1)
				c.Store8(va+mem.PageSize, 2)
				c.Store8(va+2*mem.PageSize, 3)
			},
			wantFaults: 3,
		},
		{
			name: "syscall returns value after simulated time",
			program: func(t *testing.T, r *coreRig, c *exec.Context) {
				if ret := c.Syscall(sysEcho, 41); ret != 42 {
					t.Errorf("syscall returned %d, want 42", ret)
				}
			},
			wantSysc: true,
		},
		{
			name: "syscall between faulting accesses",
			program: func(t *testing.T, r *coreRig, c *exec.Context) {
				va := r.proc.Sbrk(mem.PageSize)
				c.Store32(va, 9)
				if ret := c.Syscall(sysEcho, uint64(c.Load32(va))); ret != 10 {
					t.Errorf("syscall returned %d, want 10", ret)
				}
				c.Compute(100)
			},
			wantFaults: 1,
			wantSysc:   true,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			r := newCoreRig(t)
			sysCalls := 0
			r.core.SetSyscallHandler(func(core *cpu.Core, num int, args []uint64, done func(uint64)) {
				if num != sysEcho {
					t.Errorf("syscall number %d, want %d", num, sysEcho)
				}
				sysCalls++
				// Service over simulated time, like the MIFD driver does.
				r.engine.Schedule(10*sim.Nanosecond, func() { done(args[0] + 1) })
			})
			r.run(t, func(c *exec.Context) { tc.program(t, r, c) })
			if got, _ := r.reg.Lookup("cpu0.page_faults"); got != tc.wantFaults {
				t.Errorf("page faults = %d, want %d", got, tc.wantFaults)
			}
			if tc.wantSysc != (sysCalls > 0) {
				t.Errorf("syscalls taken = %d, want taken=%v", sysCalls, tc.wantSysc)
			}
			if r.engine.Pending() != 0 {
				t.Errorf("%d events still pending after run", r.engine.Pending())
			}
		})
	}
}

// TestCoreSyscallWithoutHandlerPanics pins the loud failure mode.
func TestCoreSyscallWithoutHandlerPanics(t *testing.T) {
	r := newCoreRig(t)
	// Core.Run steps synchronously, so the panic can fire before engine.Run.
	defer func() {
		if recover() == nil {
			t.Fatal("syscall without a handler did not panic")
		}
	}()
	th := exec.NewThread(r.gate, 0, "t0", func(c *exec.Context) { c.Syscall(1) })
	r.core.Run(th, nil)
	r.gate.Drive(r.engine.Step)
}

// TestCoreInterruptBetweenInstructions checks that externally raised work
// (the MIFD path) runs between a thread's operations, is counted, and does
// not corrupt the in-flight op state of the interrupted thread. The
// interrupt is raised from engine context (a scheduled event), as the MIFD
// does — RaiseInterrupt must not be called from workload code.
func TestCoreInterruptBetweenInstructions(t *testing.T) {
	r := newCoreRig(t)
	serviced := false
	va := r.proc.Sbrk(mem.PageSize)
	// Lands mid-thread: the core is busy with an op, defers the interrupt,
	// and services it before issuing the next one.
	r.engine.Schedule(5*sim.Nanosecond, func() {
		r.core.RaiseInterrupt(cpu.Interrupt{
			Name: "test",
			Service: func(done func()) {
				serviced = true
				r.engine.Schedule(5*sim.Nanosecond, done)
			},
		})
	})
	r.run(t, func(c *exec.Context) {
		c.Store64(va, 1)
		c.Compute(1000) // ~690 ns: plenty of ops in flight after 5 ns
		// The interrupt must not disturb the value path of nearby ops.
		if got := c.AtomicAdd64(va, 2); got != 1 {
			t.Errorf("fetch-add around the interrupt returned %#x, want 1", got)
		}
	})
	if !serviced {
		t.Fatal("interrupt was not serviced")
	}
	if got, _ := r.reg.Lookup("cpu0.interrupts"); got != 1 {
		t.Fatalf("interrupt counter = %d, want 1", got)
	}
}

// TestCoreQueuesThreads checks run-queue scheduling: two threads on one core
// both complete, in order, with onExit called for each.
func TestCoreQueuesThreads(t *testing.T) {
	r := newCoreRig(t)
	va := r.proc.Sbrk(mem.PageSize)
	var exits []int
	t1 := exec.NewThread(r.gate, 1, "t1", func(c *exec.Context) { c.Store64(va, 10) })
	t2 := exec.NewThread(r.gate, 2, "t2", func(c *exec.Context) {
		if got := c.Load64(va); got != 10 {
			t.Errorf("queued thread read %#x, want 10 (runs after t1)", got)
		}
	})
	r.core.Run(t1, func() { exits = append(exits, 1) })
	r.core.Run(t2, func() { exits = append(exits, 2) })
	r.gate.Drive(r.engine.Step)
	if len(exits) != 2 || exits[0] != 1 || exits[1] != 2 {
		t.Fatalf("exit order %v, want [1 2]", exits)
	}
	if !r.core.Idle() {
		t.Fatal("core not idle after both threads finished")
	}
}

// TestCoreInstructionAccounting checks the instrs/mem_ops counters and the
// CPI-scaled compute timing.
func TestCoreInstructionAccounting(t *testing.T) {
	r := newCoreRig(t)
	va := r.proc.Sbrk(mem.PageSize)
	r.run(t, func(c *exec.Context) {
		c.Compute(100)
		c.Store64(va, 1)
		c.Load64(va)
	})
	if got, _ := r.reg.Lookup("cpu0.instructions"); got != 102 {
		t.Fatalf("instructions = %d, want 102", got)
	}
	if got, _ := r.reg.Lookup("cpu0.mem_ops"); got != 2 {
		t.Fatalf("mem_ops = %d, want 2", got)
	}
	if got := r.core.Instructions(); got != 102 {
		t.Fatalf("Instructions() = %d, want 102", got)
	}
	// 100 instructions at CPI 2.0 on a 2.9 GHz clock is ~69 ns of compute
	// alone; the run must have consumed at least that much simulated time.
	if r.engine.Now() < sim.Time(68*sim.Nanosecond) {
		t.Fatalf("run consumed %v, want >= ~69 ns of compute time", r.engine.Now())
	}
}
