// Package core assembles the paper's primary contribution: the CCSVM chip —
// CPU cores and MTTOP cores tightly coupled through cache-coherent shared
// virtual memory over a 2D torus, with a banked shared L2/directory, private
// TLBs and page-table walkers at every core, and the MIFD task-launch path —
// and runs xthreads programs on it.
package core

import (
	"fmt"

	"ccsvm/internal/cache"
	"ccsvm/internal/coherence"
	"ccsvm/internal/dram"
	"ccsvm/internal/kernelos"
	"ccsvm/internal/mifd"
	"ccsvm/internal/sim"
	"ccsvm/internal/simarena"
	"ccsvm/internal/vm"
)

// Config is the CCSVM system configuration. DefaultConfig reproduces the
// simulated system column of Table 2.
type Config struct {
	// NumCPUs is the number of CPU cores.
	NumCPUs int
	// NumMTTOPs is the number of MTTOP cores.
	NumMTTOPs int

	// CPUClockHz and MTTOPClockHz are the two clock domains.
	CPUClockHz   float64
	MTTOPClockHz float64
	// CPUCPI is the CPU's cycles per instruction (2.0 => max IPC 0.5).
	CPUCPI float64

	// MTTOPContexts is the number of hardware thread contexts per MTTOP core.
	MTTOPContexts int
	// MTTOPIssueWidth is the per-core issue width (simultaneous threads).
	MTTOPIssueWidth int

	// CPUL1 and MTTOPL1 are the private cache geometries.
	CPUL1   cache.Config
	MTTOPL1 cache.Config
	// CPUL1Hit and MTTOPL1Hit are the L1 hit latencies.
	CPUL1Hit   sim.Duration
	MTTOPL1Hit sim.Duration

	// L2Banks is the number of shared L2/directory banks.
	L2Banks int
	// L2BankBytes is the capacity of each bank.
	L2BankBytes int
	// L2Assoc is the L2 associativity.
	L2Assoc int
	// L2Latency is the L2/directory access latency.
	L2Latency sim.Duration

	// Coherence selects the coherence protocol variant the L1 controllers
	// and directory banks execute.
	Coherence CoherenceConfig

	// TLBEntries is the per-core TLB capacity.
	TLBEntries int

	// Torus configures the on-chip network; Width/Height of zero means "size
	// to the node count automatically".
	Torus struct {
		Width, Height int
		LinkBandwidth float64
	}

	// DRAM is the off-chip memory configuration.
	DRAM dram.Config
	// MIFD is the MTTOP interface device configuration.
	MIFD mifd.Config
	// KernelCosts are the OS service costs.
	KernelCosts kernelos.Costs
	// MaxSimulatedTime bounds a program run; exceeding it is reported as a
	// hang (a safety net for buggy workloads that spin forever).
	MaxSimulatedTime sim.Duration

	// arena, when set, supplies recycled machine parts to NewMachine and
	// receives them back at Shutdown. Unexported on purpose: it is execution
	// plumbing, not configuration — it must stay out of the canonical spec
	// encoding and the override namespace, and it never changes a Result.
	arena *simarena.Arena
}

// CoherenceConfig selects the coherence protocol the chip's memory system
// runs. The protocol is a named set of transition tables registered in
// internal/coherence; see coherence.ProtocolNames for the choices.
type CoherenceConfig struct {
	// Protocol names the directory protocol: "moesi" (the Table 2 baseline
	// with owner-forwarding) or "mesi" (no Owned state; dirty lines are
	// written back to the directory before a requestor is served). Empty
	// selects MOESI, keeping zero-value configurations at the paper's
	// baseline behavior.
	Protocol string
}

// InArena returns the configuration with machine-part recycling through the
// given arena (nil means build everything fresh). Sweep workers give each of
// their machines the same arena; see internal/simarena.
func (c Config) InArena(a *simarena.Arena) Config {
	c.arena = a
	return c
}

// DefaultConfig returns the Table 2 CCSVM system: 4 in-order x86 CPU cores at
// 2.9 GHz with max IPC 0.5, 10 MTTOP cores at 600 MHz with 128 thread
// contexts and 8-wide issue (80 ops/cycle chip-wide), 64 KB / 16 KB 4-way
// write-back L1s, a 4 MB inclusive shared L2 in 4 banks with the embedded
// MOESI directory, 64-entry TLBs, a 2D torus with 12 GB/s links, and 2 GB of
// DRAM at 100 ns.
func DefaultConfig() Config {
	cfg := Config{
		NumCPUs:         4,
		NumMTTOPs:       10,
		CPUClockHz:      2.9e9,
		MTTOPClockHz:    600e6,
		CPUCPI:          2.0,
		MTTOPContexts:   128,
		MTTOPIssueWidth: 8,
		CPUL1:           cache.Config{SizeBytes: 64 * 1024, Assoc: 4},
		MTTOPL1:         cache.Config{SizeBytes: 16 * 1024, Assoc: 4},
		L2Banks:         4,
		L2BankBytes:     1 << 20,
		L2Assoc:         16,
		Coherence:       CoherenceConfig{Protocol: "moesi"},
		TLBEntries:      64,
		DRAM:            dram.DefaultCCSVMConfig(),
		MIFD:            mifd.DefaultConfig(),
		KernelCosts:     kernelos.DefaultCosts(),
	}
	cpuClock := sim.NewClock("cpu", cfg.CPUClockHz)
	mttopClock := sim.NewClock("mttop", cfg.MTTOPClockHz)
	// Table 2: 2-cycle CPU L1 hits, 1-cycle MTTOP L1 hits, and an L2 that is
	// 10 CPU cycles / 2 MTTOP cycles away (~3.4 ns either way).
	cfg.CPUL1Hit = cpuClock.Cycles(2)
	cfg.MTTOPL1Hit = mttopClock.Cycles(1)
	cfg.L2Latency = cpuClock.Cycles(10)
	cfg.Torus.LinkBandwidth = 12e9
	cfg.MaxSimulatedTime = 20 * sim.Second
	return cfg
}

// SmallConfig returns a scaled-down chip (2 CPU cores, 4 MTTOP cores with 32
// contexts each) that unit and integration tests use to keep host runtimes
// short while exercising every mechanism.
func SmallConfig() Config {
	cfg := DefaultConfig()
	cfg.NumCPUs = 2
	cfg.NumMTTOPs = 4
	cfg.MTTOPContexts = 32
	cfg.MTTOPL1 = cache.Config{SizeBytes: 8 * 1024, Assoc: 4}
	cfg.CPUL1 = cache.Config{SizeBytes: 16 * 1024, Assoc: 4}
	cfg.L2Banks = 2
	cfg.L2BankBytes = 256 * 1024
	return cfg
}

// TotalMTTOPThreadContexts reports the chip-wide hardware thread capacity.
func (c Config) TotalMTTOPThreadContexts() int { return c.NumMTTOPs * c.MTTOPContexts }

// PeakMTTOPOpsPerCycle reports the chip-wide peak MTTOP throughput
// (80 operations per cycle for the Table 2 configuration).
func (c Config) PeakMTTOPOpsPerCycle() int { return c.NumMTTOPs * c.MTTOPIssueWidth }

// Validate checks the configuration for structural problems.
func (c Config) Validate() error {
	checks := []struct {
		ok   bool
		name string
	}{
		{c.NumCPUs > 0, "NumCPUs"},
		{c.NumMTTOPs > 0, "NumMTTOPs"},
		{c.CPUClockHz > 0, "CPUClockHz"},
		{c.MTTOPClockHz > 0, "MTTOPClockHz"},
		{c.CPUCPI > 0, "CPUCPI"},
		{c.L2Banks > 0, "L2Banks"},
		{c.L2BankBytes > 0, "L2BankBytes"},
		{c.CPUL1.SizeBytes > 0, "CPUL1.SizeBytes"},
		{c.MTTOPL1.SizeBytes > 0, "MTTOPL1.SizeBytes"},
		{c.MTTOPContexts > 0, "MTTOPContexts"},
		{c.MTTOPIssueWidth > 0, "MTTOPIssueWidth"},
		{c.TLBEntries > 0, "TLBEntries"},
		{c.DRAM.SizeBytes > 0, "DRAM.SizeBytes"},
		{c.CPUL1.Assoc > 0, "CPUL1.Assoc"},
		{c.MTTOPL1.Assoc > 0, "MTTOPL1.Assoc"},
		{c.L2Assoc > 0, "L2Assoc"},
		// Negative latencies would schedule events in the past (an engine
		// panic); zero is allowed — an idealized structure is a legitimate
		// what-if sweep point.
		{c.CPUL1Hit >= 0, "CPUL1Hit"},
		{c.MTTOPL1Hit >= 0, "MTTOPL1Hit"},
		{c.L2Latency >= 0, "L2Latency"},
		{c.DRAM.Latency >= 0, "DRAM.Latency"},
		{c.DRAM.Bandwidth >= 0, "DRAM.Bandwidth"},
		{c.Torus.Width >= 0, "Torus.Width"},
		{c.Torus.Height >= 0, "Torus.Height"},
		{c.Torus.LinkBandwidth >= 0, "Torus.LinkBandwidth"},
		{c.MIFD.DispatchLatency >= 0, "MIFD.DispatchLatency"},
		{c.MIFD.PerWarpLatency >= 0, "MIFD.PerWarpLatency"},
		{c.MIFD.WarpSize > 0, "MIFD.WarpSize"},
		{c.KernelCosts.PageFaultInstrs >= 0, "KernelCosts.PageFaultInstrs"},
		{c.KernelCosts.ShootdownInstrs >= 0, "KernelCosts.ShootdownInstrs"},
		{c.KernelCosts.SyscallInstrs >= 0, "KernelCosts.SyscallInstrs"},
		{c.MaxSimulatedTime > 0, "MaxSimulatedTime"},
	}
	for _, chk := range checks {
		if !chk.ok {
			return &ConfigError{Field: chk.name}
		}
	}
	// The protocol must be registered (empty means MOESI); an unknown name
	// would otherwise only surface as a panic deep inside NewMachine.
	if _, err := coherence.LookupProtocol(c.Coherence.Protocol); err != nil {
		return &ConfigError{Field: fmt.Sprintf("Coherence.Protocol (%v)", err)}
	}
	// When both torus dimensions are given explicitly, the grid must hold
	// every node, or placement would panic inside NewMachine. (With one or
	// both dimensions zero, NewMachine derives the rest from the node
	// count, which always fits.)
	w, h := c.Torus.Width, c.Torus.Height
	if w > 0 && h > 0 && w*h < c.NumCPUs+c.NumMTTOPs+c.L2Banks {
		return &ConfigError{Field: fmt.Sprintf("Torus.Width/Height (%dx%d grid cannot hold %d nodes)",
			w, h, c.NumCPUs+c.NumMTTOPs+c.L2Banks)}
	}
	return nil
}

// ConfigError reports an invalid configuration field.
type ConfigError struct{ Field string }

// Error implements error.
func (e *ConfigError) Error() string { return "core: invalid configuration field " + e.Field }

// tlbConfig builds the per-core TLB configuration.
func (c Config) tlbConfig(name string) vm.TLBConfig {
	return vm.TLBConfig{Entries: c.TLBEntries, Name: name}
}
