package core

import (
	"testing"

	"ccsvm/internal/mem"
	"ccsvm/internal/sim"
	"ccsvm/internal/xthreads"
)

// TestTable2Configuration pins the default configuration to the paper's
// Table 2 (experiment E1 in DESIGN.md).
func TestTable2Configuration(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.NumCPUs != 4 || cfg.NumMTTOPs != 10 {
		t.Fatalf("core counts %d/%d, want 4 CPUs and 10 MTTOPs", cfg.NumCPUs, cfg.NumMTTOPs)
	}
	if cfg.CPUCPI != 2.0 {
		t.Fatalf("CPU CPI %v, want 2.0 (max IPC 0.5)", cfg.CPUCPI)
	}
	if cfg.MTTOPContexts != 128 || cfg.MTTOPIssueWidth != 8 {
		t.Fatalf("MTTOP contexts/issue %d/%d, want 128/8", cfg.MTTOPContexts, cfg.MTTOPIssueWidth)
	}
	if got := cfg.PeakMTTOPOpsPerCycle(); got != 80 {
		t.Fatalf("peak MTTOP throughput %d ops/cycle, want 80", got)
	}
	if got := cfg.TotalMTTOPThreadContexts(); got != 1280 {
		t.Fatalf("total MTTOP contexts %d, want 1280", got)
	}
	if cfg.CPUL1.SizeBytes != 64*1024 || cfg.MTTOPL1.SizeBytes != 16*1024 {
		t.Fatal("L1 sizes do not match Table 2")
	}
	if cfg.L2Banks != 4 || cfg.L2BankBytes != 1<<20 {
		t.Fatal("L2 banking does not match Table 2 (4 x 1MB)")
	}
	if cfg.TLBEntries != 64 {
		t.Fatal("TLB size does not match Table 2")
	}
	if cfg.DRAM.Latency != 100*sim.Nanosecond {
		t.Fatal("DRAM latency does not match Table 2")
	}
	if cfg.Torus.LinkBandwidth != 12e9 {
		t.Fatal("torus link bandwidth does not match Table 2")
	}
}

func TestConfigValidateCatchesErrors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumMTTOPs = 0
	err := cfg.Validate()
	if err == nil {
		t.Fatal("expected validation error")
	}
	if err.Error() == "" {
		t.Fatal("empty error message")
	}
}

// TestVectorAddXthreads is the paper's Figure 4 program: the CPU allocates
// three vectors, spawns one MTTOP thread per element, waits on per-thread
// done flags, and the sums must be correct. It exercises the full stack: the
// MIFD launch path, MTTOP TLB misses and page faults forwarded to the CPU,
// the coherence protocol, and xthreads wait/signal.
func TestVectorAddXthreads(t *testing.T) {
	const n = 64
	m := NewMachine(SmallConfig())
	defer m.Shutdown()

	addKernel := m.RegisterKernel(func(ctx *xthreads.MTTOPContext) {
		args := ctx.Args()
		v1 := mem.VAddr(ctx.Load64(args + 0))
		v2 := mem.VAddr(ctx.Load64(args + 8))
		sum := mem.VAddr(ctx.Load64(args + 16))
		done := mem.VAddr(ctx.Load64(args + 24))
		tid := ctx.TID()
		a := ctx.Load32(v1 + mem.VAddr(4*tid))
		b := ctx.Load32(v2 + mem.VAddr(4*tid))
		ctx.Compute(1)
		ctx.Store32(sum+mem.VAddr(4*tid), a+b)
		ctx.SignalSlot(done, 0)
	})

	var sumBase mem.VAddr
	_, err := m.RunProgram(func(ctx *xthreads.CPUContext) {
		v1 := ctx.Malloc(4 * n)
		v2 := ctx.Malloc(4 * n)
		sum := ctx.Malloc(4 * n)
		done := ctx.Malloc(4 * n)
		args := ctx.Malloc(32)
		sumBase = sum
		for i := 0; i < n; i++ {
			ctx.Store32(v1+mem.VAddr(4*i), uint32(i))
			ctx.Store32(v2+mem.VAddr(4*i), uint32(10*i))
			ctx.Store32(done+mem.VAddr(4*i), xthreads.CondIdle)
		}
		ctx.Store64(args+0, uint64(v1))
		ctx.Store64(args+8, uint64(v2))
		ctx.Store64(args+16, uint64(sum))
		ctx.Store64(args+24, uint64(done))
		ctx.CreateMThreads(addKernel, args, 0, n-1)
		ctx.Wait(done, 0, n-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got := m.MemReadUint32(sumBase + mem.VAddr(4*i)); got != uint32(11*i) {
			t.Fatalf("sum[%d] = %d, want %d", i, got, 11*i)
		}
	}
	// The MTTOP cores must have participated (threads dispatched) and the
	// sum array, first touched by MTTOP threads, must have page-faulted
	// through the MIFD to a CPU core.
	if v, _ := m.Stats.Lookup("mifd.threads_dispatched"); v != n {
		t.Fatalf("dispatched %d threads, want %d", v, n)
	}
	if m.Kernel.PageFaults() == 0 {
		t.Fatal("expected demand-paging faults")
	}
	if !m.Checker.Ok() {
		t.Fatalf("coherence violations: %v", m.Checker.Violations)
	}
}

// TestMTTOPPageFaultForwarding makes MTTOP threads the first toucher of
// several pages: their faults must be forwarded through the MIFD to a CPU
// core (Section 3.2.1), serviced there, and the stores must then succeed.
func TestMTTOPPageFaultForwarding(t *testing.T) {
	const workers = 8
	m := NewMachine(SmallConfig())
	defer m.Shutdown()

	kernel := m.RegisterKernel(func(ctx *xthreads.MTTOPContext) {
		args := ctx.Args()
		buf := mem.VAddr(ctx.Load64(args + 0))
		done := mem.VAddr(ctx.Load64(args + 8))
		tid := ctx.TID()
		// Each thread touches its own fresh page.
		ctx.Store32(buf+mem.VAddr(tid*mem.PageSize), uint32(tid+1))
		ctx.SignalSlot(done, 0)
	})
	var bufBase mem.VAddr
	_, err := m.RunProgram(func(ctx *xthreads.CPUContext) {
		done := ctx.Malloc(4 * workers)
		args := ctx.Malloc(16)
		ctx.InitConditions(done, 0, workers-1, xthreads.CondIdle)
		// Skip to a page boundary so the buffer's pages are untouched by the
		// CPU; the MTTOP threads will take the faults.
		ctx.Malloc(uint64(mem.PageSize))
		buf := ctx.Malloc(uint64((workers + 1) * mem.PageSize))
		bufBase = buf
		ctx.Store64(args+0, uint64(buf))
		ctx.Store64(args+8, uint64(done))
		ctx.CreateMThreads(kernel, args, 0, workers-1)
		ctx.Wait(done, 0, workers-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Stats.Lookup("mifd.page_faults_forwarded"); v == 0 {
		t.Fatal("expected MTTOP page faults to be forwarded through the MIFD")
	}
	for i := 0; i < workers; i++ {
		if got := m.MemReadUint32(bufBase + mem.VAddr(i*mem.PageSize)); got != uint32(i+1) {
			t.Fatalf("page %d holds %d after fault handling", i, got)
		}
	}
}

// TestSequentialConsistencyMessagePassing is the classic message-passing
// litmus test run across the CPU/MTTOP boundary: the CPU writes data then
// sets a flag; every MTTOP thread that observes the flag must observe the
// data. Under SC (the architecture's model, Section 3.2.3) no stale data can
// be returned because each thread has one memory operation in flight and the
// coherence protocol enforces SWMR.
func TestSequentialConsistencyMessagePassing(t *testing.T) {
	const workers = 16
	m := NewMachine(SmallConfig())
	defer m.Shutdown()

	kernel := m.RegisterKernel(func(ctx *xthreads.MTTOPContext) {
		args := ctx.Args()
		data := mem.VAddr(ctx.Load64(args + 0))
		flag := mem.VAddr(ctx.Load64(args + 8))
		result := mem.VAddr(ctx.Load64(args + 16))
		done := mem.VAddr(ctx.Load64(args + 24))
		for ctx.Load32(flag) == 0 {
			ctx.Compute(16)
		}
		ctx.Store32(result+mem.VAddr(4*ctx.TID()), ctx.Load32(data))
		ctx.SignalSlot(done, 0)
	})

	var resultBase mem.VAddr
	_, err := m.RunProgram(func(ctx *xthreads.CPUContext) {
		data := ctx.Malloc(4)
		flag := ctx.Malloc(4)
		result := ctx.Malloc(4 * workers)
		done := ctx.Malloc(4 * workers)
		args := ctx.Malloc(32)
		resultBase = result
		ctx.Store32(data, 0)
		ctx.Store32(flag, 0)
		ctx.InitConditions(done, 0, workers-1, xthreads.CondIdle)
		ctx.Store64(args+0, uint64(data))
		ctx.Store64(args+8, uint64(flag))
		ctx.Store64(args+16, uint64(result))
		ctx.Store64(args+24, uint64(done))
		ctx.CreateMThreads(kernel, args, 0, workers-1)
		// Give the workers time to start spinning, then publish.
		ctx.Compute(5000)
		ctx.Store32(data, 777)
		ctx.Store32(flag, 1)
		ctx.Wait(done, 0, workers-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < workers; i++ {
		if got := m.MemReadUint32(resultBase + mem.VAddr(4*i)); got != 777 {
			t.Fatalf("worker %d observed %d after flag; SC violated", i, got)
		}
	}
}

// TestCPUMTTOPBarrier runs a two-phase computation separated by the global
// CPU+MTTOP barrier of Table 1: phase 2 must observe every phase-1 write.
func TestCPUMTTOPBarrier(t *testing.T) {
	const workers = 8
	m := NewMachine(SmallConfig())
	defer m.Shutdown()

	kernel := m.RegisterKernel(func(ctx *xthreads.MTTOPContext) {
		args := ctx.Args()
		arr := mem.VAddr(ctx.Load64(args + 0))
		barrier := mem.VAddr(ctx.Load64(args + 8))
		sense := mem.VAddr(ctx.Load64(args + 16))
		out := mem.VAddr(ctx.Load64(args + 24))
		done := mem.VAddr(ctx.Load64(args + 32))
		tid := ctx.TID()
		// Phase 1: each thread writes its slot.
		ctx.Store32(arr+mem.VAddr(4*tid), uint32(tid+1))
		ctx.Barrier(barrier, 0, sense)
		// Phase 2: each thread sums every slot (must see all phase-1 writes).
		total := uint32(0)
		for i := 0; i < workers; i++ {
			total += ctx.Load32(arr + mem.VAddr(4*i))
		}
		ctx.Store32(out+mem.VAddr(4*tid), total)
		ctx.SignalSlot(done, 0)
	})

	var outBase mem.VAddr
	_, err := m.RunProgram(func(ctx *xthreads.CPUContext) {
		arr := ctx.Malloc(4 * workers)
		barrier := ctx.Malloc(4 * workers)
		sense := ctx.Malloc(4)
		out := ctx.Malloc(4 * workers)
		done := ctx.Malloc(4 * workers)
		args := ctx.Malloc(40)
		outBase = out
		for i := 0; i < workers; i++ {
			ctx.Store32(arr+mem.VAddr(4*i), 0)
			ctx.Store32(barrier+mem.VAddr(4*i), 0)
			ctx.Store32(done+mem.VAddr(4*i), xthreads.CondIdle)
		}
		ctx.Store32(sense, 0)
		ctx.Store64(args+0, uint64(arr))
		ctx.Store64(args+8, uint64(barrier))
		ctx.Store64(args+16, uint64(sense))
		ctx.Store64(args+24, uint64(out))
		ctx.Store64(args+32, uint64(done))
		ctx.CreateMThreads(kernel, args, 0, workers-1)
		ctx.CPUMTTOPBarrier(barrier, 0, workers-1, sense)
		ctx.Wait(done, 0, workers-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := uint32(workers * (workers + 1) / 2)
	for i := 0; i < workers; i++ {
		if got := m.MemReadUint32(outBase + mem.VAddr(4*i)); got != want {
			t.Fatalf("thread %d saw partial phase-1 results: %d, want %d", i, got, want)
		}
	}
}

// TestMTTOPMalloc exercises the mttop_malloc protocol of Section 5.3.2: MTTOP
// threads request allocations, a CPU thread services them, and the returned
// pointers are distinct, heap-resident and usable.
func TestMTTOPMalloc(t *testing.T) {
	const workers = 6
	m := NewMachine(SmallConfig())
	defer m.Shutdown()

	kernel := m.RegisterKernel(func(ctx *xthreads.MTTOPContext) {
		args := ctx.Args()
		area := xthreads.MallocArea{
			Flags:    mem.VAddr(ctx.Load64(args + 0)),
			Sizes:    mem.VAddr(ctx.Load64(args + 8)),
			Results:  mem.VAddr(ctx.Load64(args + 16)),
			FirstTID: 0,
		}
		ptrs := mem.VAddr(ctx.Load64(args + 24))
		done := mem.VAddr(ctx.Load64(args + 32))
		tid := ctx.TID()
		p := ctx.MTTOPMalloc(area, 256)
		// Use the allocation to prove it is mapped and private.
		ctx.Store64(p, uint64(1000+tid))
		ctx.Store64(ptrs+mem.VAddr(8*tid), uint64(p))
		ctx.SignalSlot(done, 0)
	})

	var ptrsBase mem.VAddr
	_, err := m.RunProgram(func(ctx *xthreads.CPUContext) {
		area := ctx.AllocMallocArea(0, workers-1)
		ptrs := ctx.Malloc(8 * workers)
		done := ctx.Malloc(4 * workers)
		args := ctx.Malloc(40)
		ptrsBase = ptrs
		ctx.InitConditions(done, 0, workers-1, xthreads.CondIdle)
		ctx.Store64(args+0, uint64(area.Flags))
		ctx.Store64(args+8, uint64(area.Sizes))
		ctx.Store64(args+16, uint64(area.Results))
		ctx.Store64(args+24, uint64(ptrs))
		ctx.Store64(args+32, uint64(done))
		ctx.CreateMThreads(kernel, args, 0, workers-1)
		ctx.ServeMallocs(area, 0, workers-1, func(c *xthreads.CPUContext) bool {
			for i := 0; i < workers; i++ {
				if c.Load32(done+mem.VAddr(4*i)) != xthreads.CondReady {
					return false
				}
			}
			return true
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	for i := 0; i < workers; i++ {
		p := m.MemReadUint64(ptrsBase + mem.VAddr(8*i))
		if p == 0 || seen[p] {
			t.Fatalf("thread %d got pointer %#x (zero or duplicate)", i, p)
		}
		seen[p] = true
		if got := m.MemReadUint64(mem.VAddr(p)); got != uint64(1000+i) {
			t.Fatalf("allocation for thread %d holds %d", i, got)
		}
	}
}

// TestAtomicsAcrossCores has many MTTOP threads atomically incrementing one
// shared counter; the final value must equal the thread count (lost updates
// would indicate broken read-modify-write coherence).
func TestAtomicsAcrossCores(t *testing.T) {
	const workers = 64
	const incsPerThread = 4
	m := NewMachine(SmallConfig())
	defer m.Shutdown()

	kernel := m.RegisterKernel(func(ctx *xthreads.MTTOPContext) {
		args := ctx.Args()
		counter := mem.VAddr(ctx.Load64(args + 0))
		done := mem.VAddr(ctx.Load64(args + 8))
		for i := 0; i < incsPerThread; i++ {
			ctx.AtomicAdd32(counter, 1)
		}
		ctx.SignalSlot(done, 0)
	})
	var counterVA mem.VAddr
	_, err := m.RunProgram(func(ctx *xthreads.CPUContext) {
		counter := ctx.Malloc(4)
		done := ctx.Malloc(4 * workers)
		args := ctx.Malloc(16)
		counterVA = counter
		ctx.Store32(counter, 0)
		ctx.InitConditions(done, 0, workers-1, xthreads.CondIdle)
		ctx.Store64(args+0, uint64(counter))
		ctx.Store64(args+8, uint64(done))
		ctx.CreateMThreads(kernel, args, 0, workers-1)
		ctx.Wait(done, 0, workers-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.MemReadUint32(counterVA); got != workers*incsPerThread {
		t.Fatalf("counter = %d, want %d (lost atomic updates)", got, workers*incsPerThread)
	}
}

// TestDeterministicReplay runs the same program twice on fresh machines and
// requires identical simulated runtimes and DRAM access counts.
func TestDeterministicReplay(t *testing.T) {
	run := func() (sim.Duration, uint64) {
		m := NewMachine(SmallConfig())
		defer m.Shutdown()
		kernel := m.RegisterKernel(func(ctx *xthreads.MTTOPContext) {
			args := ctx.Args()
			arr := mem.VAddr(ctx.Load64(args + 0))
			done := mem.VAddr(ctx.Load64(args + 8))
			tid := ctx.TID()
			ctx.Store32(arr+mem.VAddr(4*tid), uint32(tid*tid))
			ctx.SignalSlot(done, 0)
		})
		d, err := m.RunProgram(func(ctx *xthreads.CPUContext) {
			arr := ctx.Malloc(4 * 32)
			done := ctx.Malloc(4 * 32)
			args := ctx.Malloc(16)
			ctx.InitConditions(done, 0, 31, xthreads.CondIdle)
			ctx.Store64(args+0, uint64(arr))
			ctx.Store64(args+8, uint64(done))
			ctx.CreateMThreads(kernel, args, 0, 31)
			ctx.Wait(done, 0, 31)
		})
		if err != nil {
			t.Fatal(err)
		}
		return d, m.DRAMAccesses()
	}
	d1, a1 := run()
	d2, a2 := run()
	if d1 != d2 || a1 != a2 {
		t.Fatalf("replay diverged: %v/%d vs %v/%d", d1, a1, d2, a2)
	}
}

// TestTLBShootdownFlushesMTTOPTLBs exercises the Section 3.2.1 shootdown:
// after an MTTOP core has cached translations, a CPU-initiated unmap must
// flush every MTTOP TLB through the MIFD broadcast.
func TestTLBShootdownFlushesMTTOPTLBs(t *testing.T) {
	m := NewMachine(SmallConfig())
	defer m.Shutdown()

	kernel := m.RegisterKernel(func(ctx *xthreads.MTTOPContext) {
		args := ctx.Args()
		arr := mem.VAddr(ctx.Load64(args + 0))
		done := mem.VAddr(ctx.Load64(args + 8))
		ctx.Store32(arr+mem.VAddr(4*ctx.TID()), 1)
		ctx.SignalSlot(done, 0)
	})
	_, err := m.RunProgram(func(ctx *xthreads.CPUContext) {
		arr := ctx.Malloc(4 * 8)
		done := ctx.Malloc(4 * 8)
		args := ctx.Malloc(16)
		ctx.InitConditions(done, 0, 7, xthreads.CondIdle)
		ctx.Store64(args+0, uint64(arr))
		ctx.Store64(args+8, uint64(done))
		ctx.CreateMThreads(kernel, args, 0, 7)
		ctx.Wait(done, 0, 7)
	})
	if err != nil {
		t.Fatal(err)
	}
	occupied := 0
	for _, mc := range m.MTTOPs {
		occupied += mc.MMU().TLB().Occupancy()
	}
	if occupied == 0 {
		t.Fatal("expected MTTOP TLBs to hold translations after the kernel ran")
	}
	// A CPU-initiated unmap triggers the shootdown broadcast.
	m.Kernel.UnmapPage(m.Process, mem.VAddr(0x1000_0000))
	for i, mc := range m.MTTOPs {
		if mc.MMU().TLB().Occupancy() != 0 {
			t.Fatalf("MTTOP core %d TLB not flushed by shootdown", i)
		}
	}
	if v, _ := m.Stats.Lookup("mifd.tlb_flush_broadcasts"); v != 1 {
		t.Fatalf("flush broadcasts = %d, want 1", v)
	}
}

// TestMIFDErrorRegisterOnOversubscription launches more threads than the chip
// has contexts: the error register must record the shortfall and the threads
// must still all run to completion (they queue for contexts).
func TestMIFDErrorRegisterOnOversubscription(t *testing.T) {
	cfg := SmallConfig()
	cfg.NumMTTOPs = 2
	cfg.MTTOPContexts = 4 // 8 contexts total
	m := NewMachine(cfg)
	defer m.Shutdown()
	const workers = 20

	kernel := m.RegisterKernel(func(ctx *xthreads.MTTOPContext) {
		args := ctx.Args()
		done := mem.VAddr(ctx.Load64(args + 0))
		ctx.Compute(10)
		ctx.SignalSlot(done, 0)
	})
	_, err := m.RunProgram(func(ctx *xthreads.CPUContext) {
		done := ctx.Malloc(4 * workers)
		args := ctx.Malloc(8)
		ctx.InitConditions(done, 0, workers-1, xthreads.CondIdle)
		ctx.Store64(args+0, uint64(done))
		ctx.CreateMThreads(kernel, args, 0, workers-1)
		ctx.Wait(done, 0, workers-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.MIFD.ErrorRegister() == "" {
		t.Fatal("error register should record the context shortfall")
	}
	if v, _ := m.Stats.Lookup("mifd.threads_dispatched"); v != workers {
		t.Fatalf("dispatched %d, want %d", v, workers)
	}
}

// TestHangDetection confirms the simulated-time budget catches programs that
// never terminate (a waiting CPU with no one to signal it).
func TestHangDetection(t *testing.T) {
	cfg := SmallConfig()
	cfg.MaxSimulatedTime = 2 * sim.Millisecond
	m := NewMachine(cfg)
	defer m.Shutdown()
	_, err := m.RunProgram(func(ctx *xthreads.CPUContext) {
		flag := ctx.Malloc(4)
		ctx.Store32(flag, 0)
		// Nobody will ever set this flag.
		for ctx.Load32(flag) == 0 {
			ctx.Compute(64)
		}
	})
	if err == nil {
		t.Fatal("expected a hang to be reported")
	}
}
