package core

import "ccsvm/internal/stats"

// Metrics derives the per-run machine metrics of a finished (or in-flight)
// CCSVM run from the stats registry: cache and TLB hit rates, coherence
// protocol traffic, network-on-chip load, task-launch activity, and the
// off-chip access counts of Figure 9. The keys are stable — the sweep sinks
// emit them into JSONL — and are documented in ARCHITECTURE.md.
func (m *Machine) Metrics() map[string]float64 {
	s := m.Stats
	out := map[string]float64{
		"coherence.invalidations": float64(s.SumMatch("l2.", ".invalidations_sent")),
		"coherence.forwards":      float64(s.SumMatch("l2.", ".forwards")),
		"noc.messages":            float64(s.SumMatch("noc", ".messages")),
		"noc.bytes":               float64(s.SumMatch("noc", ".bytes")),
		"dram.reads":              float64(s.SumMatch("dram", ".reads")),
		"dram.writes":             float64(s.SumMatch("dram", ".writes")),
		"kernel.page_faults":      float64(s.SumMatch("kernel", ".page_faults")),
		"kernel.tlb_shootdowns":   float64(s.SumMatch("kernel", ".tlb_shootdowns")),
		"mifd.tasks":              float64(s.SumMatch("mifd", ".tasks")),
		"mifd.threads":            float64(s.SumMatch("mifd", ".threads_dispatched")),
		"cpu.instructions":        float64(s.SumMatch("cpu", ".instructions")),
		"mttop.instructions":      float64(s.SumMatch("mttop", ".instructions")),
		"cpu.busy_us":             float64(s.SumMatch("cpu", ".busy_ps")) / 1e6,
		// sim.events is the engine's executed-event count: the denominator-free
		// measure of simulator work that the benchmark harness turns into
		// events/sec throughput.
		"sim.events": float64(m.Engine.Executed()),
		// sim.trace_hash_hi/lo carry the engine's order-sensitive event-trace
		// fingerprint, split into two 32-bit halves so each is exactly
		// representable as a float64. Equal halves across runs (and across
		// simulator versions) mean the exact same events ran in the exact same
		// order — the determinism contract, surfaced as a metric.
		"sim.trace_hash_hi": float64(m.Engine.TraceHash() >> 32),
		"sim.trace_hash_lo": float64(m.Engine.TraceHash() & 0xffffffff),
	}
	stats.AddRate(out, "l1.hit_rate",
		s.SumMatch("", ".l1.hits"), s.SumMatch("", ".l1.misses"))
	stats.AddRate(out, "l2.hit_rate",
		s.SumMatch("l2.", ".l2_hits"), s.SumMatch("l2.", ".l2_misses"))
	stats.AddRate(out, "tlb.hit_rate",
		s.SumMatch("", ".tlb.hits"), s.SumMatch("", ".tlb.misses"))
	if msgs := s.SumMatch("noc", ".messages"); msgs > 0 {
		out["noc.mean_latency_ns"] = float64(s.SumMatch("noc", ".total_latency_ps")) / float64(msgs) / 1e3
	}
	return out
}
