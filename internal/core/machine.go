package core

import (
	"fmt"
	"math"

	"ccsvm/internal/cache"
	"ccsvm/internal/coherence"
	"ccsvm/internal/cpu"
	"ccsvm/internal/dram"
	"ccsvm/internal/exec"
	"ccsvm/internal/kernelos"
	"ccsvm/internal/mem"
	"ccsvm/internal/mifd"
	"ccsvm/internal/mttop"
	"ccsvm/internal/noc"
	"ccsvm/internal/sim"
	"ccsvm/internal/simarena"
	"ccsvm/internal/stats"
	"ccsvm/internal/vm"
	"ccsvm/internal/xthreads"
)

// Machine is one instance of the CCSVM chip plus its software environment
// (kernel, process, xthreads runtime). Build it with NewMachine, register
// MTTOP kernels, then RunProgram an xthreads main function.
type Machine struct {
	Config  Config
	Engine  *sim.Engine
	Stats   *stats.Registry
	Phys    *mem.Physical
	Kernel  *kernelos.Kernel
	Process *kernelos.Process
	Runtime *xthreads.Runtime
	MIFD    *mifd.Device
	DRAM    *dram.Controller
	Checker *coherence.Checker

	CPUs   []*cpu.Core
	MTTOPs []*mttop.Core

	l1s   []*coherence.L1Controller
	banks []*coherence.DirectoryBank
	torus *noc.Torus

	// gate is the cooperative scheduler every software thread of this machine
	// runs under (see exec.Gate); RunProgram drives the engine through it.
	gate *exec.Gate

	// arena, when non-nil, receives the engine, physical memory and message
	// populations back at Shutdown so the worker's next machine reuses them.
	arena *simarena.Arena
}

// NewMachine builds and wires a CCSVM chip from the configuration. When the
// configuration carries an arena (Config.InArena), the engine, physical
// memory, and message-pool populations come from it; reuse is observation-
// equivalent to fresh construction.
func NewMachine(cfg Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Machine{
		Config: cfg,
		Engine: cfg.arena.Engine(),
		Stats:  stats.NewRegistry("ccsvm"),
		arena:  cfg.arena,
	}
	// The trace hash is always on: it costs two integer multiplies per event
	// and gives every run a fingerprint of its exact event order, surfaced
	// through Metrics as sim.trace_hash_hi/lo.
	m.Engine.EnableTraceHash()
	m.Phys = cfg.arena.Physical(cfg.DRAM.SizeBytes)
	m.Checker = coherence.NewChecker()
	m.DRAM = dram.NewController(m.Engine, cfg.DRAM, m.Stats, "dram")

	cpuClock := sim.NewClock("cpu", cfg.CPUClockHz)
	mttopClock := sim.NewClock("mttop", cfg.MTTOPClockHz)

	// Node numbering on the torus: CPUs, then MTTOPs, then L2/dir banks.
	numNodes := cfg.NumCPUs + cfg.NumMTTOPs + cfg.L2Banks
	// Derive any unset torus dimension from the node count, so overriding
	// just one dimension reshapes the network instead of being ignored.
	width, height := cfg.Torus.Width, cfg.Torus.Height
	switch {
	case width == 0 && height == 0:
		width = int(math.Ceil(math.Sqrt(float64(numNodes))))
		height = (numNodes + width - 1) / width
	case width == 0:
		width = (numNodes + height - 1) / height
	case height == 0:
		height = (numNodes + width - 1) / width
	}
	placement := make(map[noc.NodeID]noc.Coord, numNodes)
	for i := 0; i < numNodes; i++ {
		placement[noc.NodeID(i)] = noc.Coord{X: i % width, Y: i / width}
	}
	torusCfg := noc.DefaultTorusConfig(width, height)
	if cfg.Torus.LinkBandwidth > 0 {
		torusCfg.LinkBandwidth = cfg.Torus.LinkBandwidth
	}
	m.torus = noc.NewTorus(m.Engine, torusCfg, placement, m.Stats)
	m.torus.SeedFreeList(cfg.arena.TakeNocMsgs())

	// L2/directory banks.
	bankIDs := make([]noc.NodeID, cfg.L2Banks)
	for i := range bankIDs {
		bankIDs[i] = noc.NodeID(cfg.NumCPUs + cfg.NumMTTOPs + i)
	}
	mapper := coherence.InterleaveBanks(bankIDs)
	// Validate guaranteed the protocol name resolves.
	proto, err := coherence.LookupProtocol(cfg.Coherence.Protocol)
	if err != nil {
		panic(err)
	}
	for i, id := range bankIDs {
		bank := coherence.NewDirectoryBank(m.Engine, id, m.torus, coherence.BankConfig{
			L2:            cache.Config{SizeBytes: cfg.L2BankBytes, Assoc: cfg.L2Assoc, Name: fmt.Sprintf("l2.%d", i)},
			AccessLatency: cfg.L2Latency,
			Protocol:      proto,
			Name:          fmt.Sprintf("l2.%d", i),
		}, m.DRAM, m.Stats)
		m.banks = append(m.banks, bank)
	}

	// Kernel and process.
	m.Kernel = kernelos.NewKernel(m.Phys, 16, cfg.KernelCosts, m.Stats)
	m.Process = m.Kernel.NewProcess()
	m.gate = exec.NewGate()
	// Pending thread activations must schedule before anything an event
	// handler schedules after completing them (see exec.Gate.Drain): this
	// keeps the event trace identical to the historical blocking handoff.
	m.gate.Bind(m.Engine)
	m.Runtime = xthreads.NewRuntime(m.Process, m.Engine.Now, m.gate)

	// MIFD.
	m.MIFD = mifd.NewDevice(m.Engine, cfg.MIFD, m.Stats)
	m.MIFD.SetThreadFactory(m.Runtime.NewMTTOPThread)

	// CPU cores with their private L1s and MMUs.
	for i := 0; i < cfg.NumCPUs; i++ {
		name := fmt.Sprintf("cpu%d", i)
		l1cfg := cfg.CPUL1
		l1cfg.Name = name + ".l1"
		l1 := coherence.NewL1Controller(m.Engine, noc.NodeID(i), m.torus, mapper, coherence.L1Config{
			Cache:      l1cfg,
			HitLatency: cfg.CPUL1Hit,
			Protocol:   proto,
			Name:       name + ".l1",
		}, m.Checker, m.Stats)
		m.l1s = append(m.l1s, l1)
		mmu := vm.NewMMU(cfg.tlbConfig(name+".tlb"), l1, m.Phys, m.Stats)
		core := cpu.New(m.Engine, cpu.Config{Clock: cpuClock, CPI: cfg.CPUCPI, Name: name}, l1, mmu, m.Phys, m.Kernel, m.Stats)
		core.SetSyscallHandler(m.handleSyscall)
		m.CPUs = append(m.CPUs, core)
	}
	m.MIFD.SetFaultCPU(m.CPUs[0])

	// MTTOP cores with their private L1s and MMUs.
	for i := 0; i < cfg.NumMTTOPs; i++ {
		name := fmt.Sprintf("mttop%d", i)
		node := noc.NodeID(cfg.NumCPUs + i)
		l1cfg := cfg.MTTOPL1
		l1cfg.Name = name + ".l1"
		l1 := coherence.NewL1Controller(m.Engine, node, m.torus, mapper, coherence.L1Config{
			Cache:      l1cfg,
			HitLatency: cfg.MTTOPL1Hit,
			Protocol:   proto,
			Name:       name + ".l1",
		}, m.Checker, m.Stats)
		m.l1s = append(m.l1s, l1)
		mmu := vm.NewMMU(cfg.tlbConfig(name+".tlb"), l1, m.Phys, m.Stats)
		core := mttop.New(m.Engine, mttop.Config{
			Clock:       mttopClock,
			NumContexts: cfg.MTTOPContexts,
			IssueWidth:  cfg.MTTOPIssueWidth,
			Name:        name,
		}, l1, mmu, m.Phys, m.MIFD, m.Stats)
		m.MTTOPs = append(m.MTTOPs, core)
		m.MIFD.AttachUnits(core)
	}

	// Recycled protocol messages all seed the first controller's pool; they
	// migrate between pools with traffic, exactly as in-flight messages do.
	m.l1s[0].SeedFreeList(cfg.arena.TakeCohMsgs())

	// TLB shootdowns initiated by a CPU flush every MTTOP TLB via the MIFD.
	m.Kernel.SetShootdownHook(m.MIFD.FlushAllTLBs)

	// CPU cores run with the process's address space loaded.
	for _, c := range m.CPUs {
		c.MMU().SetRoot(m.Process.Root())
	}
	return m
}

// handleSyscall is the machine's OS syscall dispatcher; the MIFD driver's
// write syscall is the only service xthreads programs need beyond what the
// library does in user space.
func (m *Machine) handleSyscall(core *cpu.Core, num int, args []uint64, done func(ret uint64)) {
	switch num {
	case xthreads.SysLaunchMTTOPTask:
		if len(args) != 4 {
			panic(fmt.Sprintf("core: launch syscall expects 4 args, got %d", len(args)))
		}
		task := mifd.TaskDescriptor{
			KernelID: int(args[0]),
			Args:     mem.VAddr(args[1]),
			FirstTID: int(args[2]),
			LastTID:  int(args[3]),
			CR3:      core.MMU().Root(),
		}
		m.MIFD.Launch(task, func() { done(0) })
	default:
		panic(fmt.Sprintf("core: unknown syscall %d", num))
	}
}

// RegisterKernel registers an MTTOP kernel and returns the ID that
// CreateMThreads uses (the simulator's stand-in for the kernel's program
// counter, resolved by the compilation toolchain in the paper).
//
//ccsvm:threadentry
func (m *Machine) RegisterKernel(k xthreads.KernelFunc) int {
	return m.Runtime.RegisterKernel(k)
}

// RunProgram executes an xthreads program: main runs as a software thread on
// CPU core 0; the simulation advances until main has returned and the machine
// has quiesced. It returns the simulated time consumed.
//
//ccsvm:threadentry
func (m *Machine) RunProgram(main xthreads.MainFunc) (sim.Duration, error) {
	start := m.Engine.Now()
	deadline := start.Add(m.Config.MaxSimulatedTime)
	mainDone := false
	t := m.Runtime.NewCPUThread("main", main)
	m.CPUs[0].Run(t, func() { mainDone = true })
	// Drive the engine through the gate: thread activations and event
	// dispatch interleave in completion order (see exec.Gate), and the run
	// continues past main's return to drain remaining activity (MTTOP threads
	// main did not wait for, in-flight writebacks, etc.).
	overBudget := false
	m.gate.Drive(func() bool {
		if m.Engine.Now() > deadline {
			overBudget = true
			return false
		}
		return m.Engine.Step()
	})
	if overBudget {
		m.Runtime.KillAll()
		if !mainDone {
			return 0, fmt.Errorf("core: program exceeded the %v simulated-time budget (likely a synchronization hang)", m.Config.MaxSimulatedTime)
		}
		return 0, fmt.Errorf("core: post-main activity exceeded the simulated-time budget")
	}
	if !mainDone {
		m.Runtime.KillAll()
		return 0, fmt.Errorf("core: simulation ran out of events before main returned")
	}
	if !m.Checker.Ok() {
		return 0, fmt.Errorf("core: coherence invariant violated: %v", m.Checker.Violations[0])
	}
	return m.Engine.Now().Sub(start), nil
}

// L1Controllers exposes the chip's private L1 coherence controllers in node
// order (CPU cores first, then MTTOP cores). The memtest subsystem samples
// their cache states and pool accounting at quiesce points.
func (m *Machine) L1Controllers() []*coherence.L1Controller { return m.l1s }

// DirectoryBanks exposes the L2/directory banks in bank order, for the same
// verification uses as L1Controllers.
func (m *Machine) DirectoryBanks() []*coherence.DirectoryBank { return m.banks }

// Shutdown tears down any software threads that are still running (used by
// tests and by callers that abandon a machine mid-run). A machine built in an
// arena also hands its recyclable parts back here, after which the machine
// must not be used again; arena-less machines are unaffected and remain
// readable.
func (m *Machine) Shutdown() {
	m.Runtime.KillAll()
	a := m.arena
	if a == nil {
		return
	}
	m.arena = nil
	a.RecycleCohMsgs(coherence.DrainFreeLists(m.l1s, m.banks))
	a.RecycleNocMsgs(m.torus.DrainFreeList())
	a.RecycleEngine(m.Engine)
	a.RecyclePhysical(m.Phys)
}

// Now reports the machine's current simulated time.
func (m *Machine) Now() sim.Time { return m.Engine.Now() }

// DRAMAccesses reports the machine's off-chip access count (Figure 9's
// metric).
func (m *Machine) DRAMAccesses() uint64 { return m.DRAM.Accesses() }

// MemWriteUint32 functionally initializes process memory before (or between)
// simulated regions; the loader uses it to place workload inputs, standing in
// for data that a real run would have produced earlier.
func (m *Machine) MemWriteUint32(va mem.VAddr, v uint32) {
	m.Phys.WriteUint32(m.Process.TranslateFunctional(va), v)
}

// MemReadUint32 functionally reads process memory (used to check results).
func (m *Machine) MemReadUint32(va mem.VAddr) uint32 {
	return m.Phys.ReadUint32(m.Process.TranslateFunctional(va))
}

// MemWriteUint64 functionally writes a 64-bit value to process memory.
func (m *Machine) MemWriteUint64(va mem.VAddr, v uint64) {
	m.Phys.WriteUint64(m.Process.TranslateFunctional(va), v)
}

// MemReadUint64 functionally reads a 64-bit value from process memory.
func (m *Machine) MemReadUint64(va mem.VAddr) uint64 {
	return m.Phys.ReadUint64(m.Process.TranslateFunctional(va))
}

// MemWriteFloat64 functionally writes a float64 to process memory.
func (m *Machine) MemWriteFloat64(va mem.VAddr, v float64) {
	m.MemWriteUint64(va, math.Float64bits(v))
}

// MemReadFloat64 functionally reads a float64 from process memory.
func (m *Machine) MemReadFloat64(va mem.VAddr) float64 {
	return math.Float64frombits(m.MemReadUint64(va))
}

// Alloc reserves heap space functionally (before simulation) and returns its
// base; experiments use it to lay out inputs that the measured region then
// consumes.
func (m *Machine) Alloc(size uint64) mem.VAddr {
	return m.Process.Sbrk(size)
}
