package apu

import (
	"fmt"

	"ccsvm/internal/cpu"
	"ccsvm/internal/dram"
	"ccsvm/internal/exec"
	"ccsvm/internal/kernelos"
	"ccsvm/internal/mem"
	"ccsvm/internal/mttop"
	"ccsvm/internal/sim"
	"ccsvm/internal/simarena"
	"ccsvm/internal/stats"
)

// Config describes the APU baseline machine (Table 2, right column).
type Config struct {
	// NumCPUs is the number of out-of-order x86 cores (4).
	NumCPUs int
	// CPUClockHz is the CPU frequency (2.9 GHz).
	CPUClockHz float64
	// CPUCPI is the cycles per instruction (0.25 => max IPC 4).
	CPUCPI float64
	// CPUCaches is each core's private hierarchy.
	CPUCaches HierarchyConfig

	// GPUSIMDUnits is the number of SIMD processing units (5).
	GPUSIMDUnits int
	// GPULanes is the number of VLIW Radeon cores per SIMD unit (16).
	GPULanes int
	// GPUVLIWOpsPerInstr is the average number of useful operations packed
	// into each VLIW instruction (1..4). The paper notes the APU's peak is
	// 4x the CCSVM MTTOP at full VLIW utilization and equal at minimum; the
	// default of 2 sits in the middle.
	GPUVLIWOpsPerInstr int
	// GPUClockHz is the GPU frequency (600 MHz).
	GPUClockHz float64
	// GPUContextsPerUnit is the number of in-flight work-items per SIMD unit.
	GPUContextsPerUnit int
	// GPUMem is the GPU-side memory path.
	GPUMem GPUMemConfig

	// DRAM is the off-chip memory (8 GB DDR3, 72 ns).
	DRAM dram.Config
	// OpenCL holds the driver/runtime overheads.
	OpenCL OpenCLOverheads
	// MaxSimulatedTime bounds a run.
	MaxSimulatedTime sim.Duration

	// arena, when set, supplies recycled machine parts to NewMachine and
	// receives them back at Shutdown. Unexported on purpose: execution
	// plumbing, not configuration — out of the canonical spec encoding and
	// the override namespace, and never a Result input.
	arena *simarena.Arena
}

// InArena returns the configuration with machine-part recycling through the
// given arena (nil means build everything fresh). See internal/simarena.
func (c Config) InArena(a *simarena.Arena) Config {
	c.arena = a
	return c
}

// OpenCLOverheads are the driver and runtime constants of the baseline's
// software stack. They model what the paper's Figure 5 separates into "full
// runtime" vs "runtime without compilation and OpenCL initialization":
// one-time platform/context setup and program JIT compilation, plus per-call
// costs for buffer mapping and kernel launch that are paid on every offload.
type OpenCLOverheads struct {
	PlatformInit   sim.Duration
	ProgramBuild   sim.Duration
	BufferCreate   sim.Duration
	MapBuffer      sim.Duration
	UnmapBuffer    sim.Duration
	SetKernelArg   sim.Duration
	KernelLaunch   sim.Duration
	FinishOverhead sim.Duration
}

// DefaultOpenCLOverheads returns driver constants in line with published
// measurements of OpenCL 1.x stacks on Llano-class parts.
func DefaultOpenCLOverheads() OpenCLOverheads {
	return OpenCLOverheads{
		PlatformInit:   80 * sim.Millisecond,
		ProgramBuild:   150 * sim.Millisecond,
		BufferCreate:   4 * sim.Microsecond,
		MapBuffer:      8 * sim.Microsecond,
		UnmapBuffer:    8 * sim.Microsecond,
		SetKernelArg:   200 * sim.Nanosecond,
		KernelLaunch:   30 * sim.Microsecond,
		FinishOverhead: 10 * sim.Microsecond,
	}
}

// Validate checks the configuration for structural problems, including the
// VLIW packing factor the machine model only defines for 1..4 ops per
// instruction.
func (c Config) Validate() error {
	checks := []struct {
		ok   bool
		name string
	}{
		{c.NumCPUs > 0, "NumCPUs"},
		{c.CPUClockHz > 0, "CPUClockHz"},
		{c.CPUCPI > 0, "CPUCPI"},
		{c.GPUSIMDUnits > 0, "GPUSIMDUnits"},
		{c.GPULanes > 0, "GPULanes"},
		{c.GPUVLIWOpsPerInstr >= 1 && c.GPUVLIWOpsPerInstr <= 4, "GPUVLIWOpsPerInstr"},
		{c.GPUClockHz > 0, "GPUClockHz"},
		{c.GPUContextsPerUnit > 0, "GPUContextsPerUnit"},
		{c.DRAM.SizeBytes > 0, "DRAM.SizeBytes"},
		{c.CPUCaches.L1.SizeBytes > 0, "CPUCaches.L1.SizeBytes"},
		{c.CPUCaches.L1.Assoc > 0, "CPUCaches.L1.Assoc"},
		{c.CPUCaches.L2.SizeBytes > 0, "CPUCaches.L2.SizeBytes"},
		{c.CPUCaches.L2.Assoc > 0, "CPUCaches.L2.Assoc"},
		{c.GPUMem.ReadCacheBytes > 0, "GPUMem.ReadCacheBytes"},
		{c.GPUMem.ReadCacheAssoc > 0, "GPUMem.ReadCacheAssoc"},
		{c.GPUMem.WriteBufferLines > 0, "GPUMem.WriteBufferLines"},
		// Negative latencies would schedule events in the past (an engine
		// panic); zero is allowed — a free driver call or an idealized cache
		// is a legitimate what-if sweep point.
		{c.CPUCaches.L1Hit >= 0, "CPUCaches.L1Hit"},
		{c.CPUCaches.L2Hit >= 0, "CPUCaches.L2Hit"},
		{c.GPUMem.ReadHit >= 0, "GPUMem.ReadHit"},
		{c.DRAM.Latency >= 0, "DRAM.Latency"},
		{c.DRAM.Bandwidth >= 0, "DRAM.Bandwidth"},
		{c.OpenCL.PlatformInit >= 0, "OpenCL.PlatformInit"},
		{c.OpenCL.ProgramBuild >= 0, "OpenCL.ProgramBuild"},
		{c.OpenCL.BufferCreate >= 0, "OpenCL.BufferCreate"},
		{c.OpenCL.MapBuffer >= 0, "OpenCL.MapBuffer"},
		{c.OpenCL.UnmapBuffer >= 0, "OpenCL.UnmapBuffer"},
		{c.OpenCL.SetKernelArg >= 0, "OpenCL.SetKernelArg"},
		{c.OpenCL.KernelLaunch >= 0, "OpenCL.KernelLaunch"},
		{c.OpenCL.FinishOverhead >= 0, "OpenCL.FinishOverhead"},
		{c.MaxSimulatedTime > 0, "MaxSimulatedTime"},
	}
	for _, chk := range checks {
		if !chk.ok {
			return &ConfigError{Field: chk.name}
		}
	}
	return nil
}

// ConfigError reports an invalid configuration field.
type ConfigError struct{ Field string }

// Error implements error.
func (e *ConfigError) Error() string { return "apu: invalid configuration field " + e.Field }

// DefaultConfig returns the Table 2 APU configuration.
func DefaultConfig() Config {
	return Config{
		NumCPUs:            4,
		CPUClockHz:         2.9e9,
		CPUCPI:             0.25,
		CPUCaches:          DefaultHierarchyConfig("apu.cpu"),
		GPUSIMDUnits:       5,
		GPULanes:           16,
		GPUVLIWOpsPerInstr: 2,
		GPUClockHz:         600e6,
		GPUContextsPerUnit: 256,
		GPUMem:             DefaultGPUMemConfig(),
		DRAM:               dram.DefaultAPUConfig(),
		OpenCL:             DefaultOpenCLOverheads(),
		MaxSimulatedTime:   30 * sim.Second,
	}
}

// Machine is one APU instance: CPU cores with private caches, a VLIW GPU
// behind a non-coherent DRAM path, and a flat (physically addressed) heap for
// the host program and its pinned buffers.
type Machine struct {
	Config Config
	Engine *sim.Engine
	Stats  *stats.Registry
	Phys   *mem.Physical
	DRAM   *dram.Controller

	CPUs     []*cpu.Core
	CPUMem   []*PrivateHierarchy
	GPUUnits []*mttop.Core
	GPUMem   *GPUMemory

	kernel  *kernelos.Kernel
	heapPtr mem.VAddr
	threads []*exec.Thread
	// gate is the cooperative scheduler every software thread of this machine
	// runs under (see exec.Gate); RunThreads drives the engine through it.
	gate *exec.Gate

	// arena, when non-nil, receives the engine and physical memory back at
	// Shutdown so the worker's next machine reuses them.
	arena *simarena.Arena
}

// NewMachine builds an APU. When the configuration carries an arena
// (Config.InArena), the engine and physical memory come from it; reuse is
// observation-equivalent to fresh construction.
func NewMachine(cfg Config) *Machine {
	m := &Machine{
		Config: cfg,
		Engine: cfg.arena.Engine(),
		Stats:  stats.NewRegistry("apu"),
		arena:  cfg.arena,
	}
	// Always-on event-trace fingerprint, surfaced as sim.trace_hash_hi/lo
	// (see core.NewMachine).
	m.Engine.EnableTraceHash()
	m.Phys = cfg.arena.Physical(cfg.DRAM.SizeBytes)
	m.DRAM = dram.NewController(m.Engine, cfg.DRAM, m.Stats, "dram")
	m.kernel = kernelos.NewKernel(m.Phys, 16, kernelos.DefaultCosts(), m.Stats)
	m.gate = exec.NewGate()
	// See core.NewMachine: thread activations pending at a schedule point
	// must schedule first to keep the event trace order.
	m.gate.Bind(m.Engine)
	m.heapPtr = 0x4000_0000 // identity-mapped flat heap, clear of page tables

	cpuClock := sim.NewClock("apu.cpu", cfg.CPUClockHz)
	gpuClock := sim.NewClock("apu.gpu", cfg.GPUClockHz)
	filter := newSnoopFilter()
	for i := 0; i < cfg.NumCPUs; i++ {
		name := fmt.Sprintf("apu.cpu%d", i)
		hcfg := cfg.CPUCaches
		hcfg.L1.Name = name + ".l1"
		hcfg.L2.Name = name + ".l2"
		hier := NewPrivateHierarchy(m.Engine, hcfg, m.DRAM, filter, m.Stats, name)
		m.CPUMem = append(m.CPUMem, hier)
		core := cpu.New(m.Engine, cpu.Config{Clock: cpuClock, CPI: cfg.CPUCPI, Name: name}, hier, nil, m.Phys, m.kernel, m.Stats)
		m.CPUs = append(m.CPUs, core)
	}

	m.GPUMem = NewGPUMemory(m.Engine, cfg.GPUMem, m.DRAM, m.Stats)
	issueWidth := cfg.GPULanes * cfg.GPUVLIWOpsPerInstr
	for i := 0; i < cfg.GPUSIMDUnits; i++ {
		unit := mttop.New(m.Engine, mttop.Config{
			Clock:       gpuClock,
			NumContexts: cfg.GPUContextsPerUnit,
			IssueWidth:  issueWidth,
			Name:        fmt.Sprintf("apu.gpu%d", i),
		}, m.GPUMem, nil, m.Phys, nil, m.Stats)
		m.GPUUnits = append(m.GPUUnits, unit)
	}
	return m
}

// Malloc reserves heap space in the flat, identity-mapped address space.
func (m *Machine) Malloc(size uint64) mem.VAddr {
	base := mem.AlignUp(m.heapPtr, 64)
	m.heapPtr = base + mem.VAddr(size)
	if uint64(m.heapPtr) >= m.Phys.Size() {
		panic("apu: heap exhausted")
	}
	return base
}

// Now reports the current simulated time.
func (m *Machine) Now() sim.Time { return m.Engine.Now() }

// DRAMAccesses reports the off-chip access count (Figure 9's metric).
func (m *Machine) DRAMAccesses() uint64 { return m.DRAM.Accesses() }

// MemWriteUint32 functionally initializes memory (loading inputs).
func (m *Machine) MemWriteUint32(va mem.VAddr, v uint32) { m.Phys.WriteUint32(mem.PAddr(va), v) }

// MemReadUint32 functionally reads memory (checking outputs).
func (m *Machine) MemReadUint32(va mem.VAddr) uint32 { return m.Phys.ReadUint32(mem.PAddr(va)) }

// MemWriteUint64 functionally writes a 64-bit value.
func (m *Machine) MemWriteUint64(va mem.VAddr, v uint64) { m.Phys.WriteUint64(mem.PAddr(va), v) }

// MemReadUint64 functionally reads a 64-bit value.
func (m *Machine) MemReadUint64(va mem.VAddr) uint64 { return m.Phys.ReadUint64(mem.PAddr(va)) }

// HostContext is the API available to host (CPU-side) code on the APU: the
// low-level operation set plus heap allocation and the machine clock.
type HostContext struct {
	*exec.Context
	m *Machine
}

// Machine returns the machine the context runs on.
func (c *HostContext) Machine() *Machine { return c.m }

// Now reports simulated time (for measurement windows).
func (c *HostContext) Now() sim.Time { return c.m.Now() }

// Malloc allocates from the flat heap, charging a libc-like cost.
func (c *HostContext) Malloc(size uint64) mem.VAddr {
	c.Compute(80)
	return c.m.Malloc(size)
}

// Free charges the cost of freeing (the flat heap never reuses memory).
func (c *HostContext) Free(mem.VAddr) { c.Compute(20) }

// Delay burns host CPU time equivalent to the given duration; the OpenCL
// runtime uses it to charge driver overheads that are measured in wall-clock
// time rather than instructions.
func (c *HostContext) Delay(d sim.Duration) {
	if d <= 0 {
		return
	}
	perInstr := float64(c.m.Config.CPUCPI) * float64(sim.NewClock("cpu", c.m.Config.CPUClockHz).Period)
	instrs := int64(float64(d)/perInstr + 0.5)
	if instrs < 1 {
		instrs = 1
	}
	c.Compute(instrs)
}

// FlushCPUCaches writes back and invalidates the address range in every CPU
// core's private hierarchy (the driver does this when pinned buffers are
// unmapped so the GPU sees the data in DRAM).
func (m *Machine) FlushCPUCaches(base mem.VAddr, size uint64) {
	for _, h := range m.CPUMem {
		h.FlushRange(base, size, nil)
	}
}

// InvalidateCPUCaches drops the address range from every CPU hierarchy (the
// driver does this before the CPU reads results the GPU wrote to DRAM).
func (m *Machine) InvalidateCPUCaches(base mem.VAddr, size uint64) {
	for _, h := range m.CPUMem {
		h.InvalidateRange(base, size)
	}
}

// HostFunc is a CPU-side program on the APU.
type HostFunc func(ctx *HostContext)

// newHostThread wraps a host function as a software thread.
//
//ccsvm:threadentry
func (m *Machine) newHostThread(name string, fn HostFunc) *exec.Thread {
	t := exec.NewThread(m.gate, len(m.threads), name, func(ec *exec.Context) {
		fn(&HostContext{Context: ec, m: m})
	})
	m.threads = append(m.threads, t)
	return t
}

// TrackThread registers an externally created thread (GPU work-items) for
// teardown.
func (m *Machine) TrackThread(t *exec.Thread) { m.threads = append(m.threads, t) }

// ExecGate exposes the machine's thread scheduler so runtimes layered on the
// machine (the OpenCL session) can create threads that run under it.
func (m *Machine) ExecGate() *exec.Gate { return m.gate }

// RunProgram runs a single host program on CPU core 0 to completion and
// returns the simulated time consumed.
//
//ccsvm:threadentry
func (m *Machine) RunProgram(fn HostFunc) (sim.Duration, error) {
	return m.RunThreads([]HostFunc{fn})
}

// RunThreads runs one host function per CPU core (pthreads-style), starting
// them together, and returns the simulated time until all have finished and
// the machine has quiesced.
//
//ccsvm:threadentry
func (m *Machine) RunThreads(fns []HostFunc) (sim.Duration, error) {
	if len(fns) > len(m.CPUs) {
		return 0, fmt.Errorf("apu: %d threads exceed %d CPU cores", len(fns), len(m.CPUs))
	}
	start := m.Engine.Now()
	deadline := start.Add(m.Config.MaxSimulatedTime)
	remaining := len(fns)
	for i, fn := range fns {
		t := m.newHostThread(fmt.Sprintf("host%d", i), fn)
		m.CPUs[i].Run(t, func() { remaining-- })
	}
	// Drive the engine through the gate: thread activations and event
	// dispatch interleave in completion order (see exec.Gate), and the run
	// continues past the last host thread's return to drain remaining
	// activity.
	overBudget := false
	m.gate.Drive(func() bool {
		if m.Engine.Now() > deadline {
			overBudget = true
			return false
		}
		return m.Engine.Step()
	})
	if overBudget {
		m.Shutdown()
		if remaining > 0 {
			return 0, fmt.Errorf("apu: program exceeded the %v simulated-time budget", m.Config.MaxSimulatedTime)
		}
		return 0, fmt.Errorf("apu: post-main activity exceeded the simulated-time budget")
	}
	if remaining > 0 {
		m.Shutdown()
		return 0, fmt.Errorf("apu: simulation ran out of events with %d host threads unfinished", remaining)
	}
	return m.Engine.Now().Sub(start), nil
}

// Shutdown tears down any unfinished software threads. A machine built in an
// arena also hands its recyclable parts back here, after which the machine
// must not be used again; arena-less machines remain readable.
func (m *Machine) Shutdown() {
	for _, t := range m.threads {
		if !t.Finished() {
			t.Kill()
		}
	}
	a := m.arena
	if a == nil {
		return
	}
	m.arena = nil
	a.RecycleEngine(m.Engine)
	a.RecyclePhysical(m.Phys)
}
