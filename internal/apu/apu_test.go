package apu

// The tests live inside the package so they can build PrivateHierarchy rigs
// around the unexported snoop filter directly, without a whole Machine.

import (
	"testing"

	"ccsvm/internal/cache"
	"ccsvm/internal/dram"
	"ccsvm/internal/mem"
	"ccsvm/internal/sim"
	"ccsvm/internal/stats"
)

// hierRig is a pair of private hierarchies sharing a snoop filter and a DRAM
// controller, like the APU machine wires its CPU cores.
type hierRig struct {
	engine *sim.Engine
	dram   *dram.Controller
	reg    *stats.Registry
	hiers  []*PrivateHierarchy
}

// newHierRig builds n hierarchies with deliberately tiny caches (2-set
// direct-mapped L1, 4-line L2) so a handful of lines already evicts.
func newHierRig(t *testing.T, n int) *hierRig {
	t.Helper()
	r := &hierRig{
		engine: sim.NewEngine(),
		reg:    stats.NewRegistry("test"),
	}
	r.dram = dram.NewController(r.engine, dram.DefaultAPUConfig(), r.reg, "dram")
	filter := newSnoopFilter()
	for i := 0; i < n; i++ {
		name := "cpu" + string(rune('0'+i))
		cfg := HierarchyConfig{
			L1:    cache.Config{SizeBytes: 2 * mem.LineSize, Assoc: 1, Name: name + ".l1"},
			L2:    cache.Config{SizeBytes: 4 * mem.LineSize, Assoc: 2, Name: name + ".l2"},
			L1Hit: 1 * sim.Nanosecond,
			L2Hit: 3 * sim.Nanosecond,
		}
		r.hiers = append(r.hiers, NewPrivateHierarchy(r.engine, cfg, r.dram, filter, r.reg, name))
	}
	return r
}

// access performs one access on hierarchy h and runs the engine to
// completion, returning the simulated latency the access observed.
func (r *hierRig) access(t *testing.T, h int, typ mem.AccessType, addr mem.PAddr) sim.Duration {
	t.Helper()
	start := r.engine.Now()
	done := false
	var end sim.Time
	r.hiers[h].Access(mem.Request{Type: typ, Addr: addr, Size: 8}, func() {
		done = true
		end = r.engine.Now()
	})
	r.engine.Run()
	if !done {
		t.Fatal("access never completed")
	}
	return end.Sub(start)
}

func (r *hierRig) counter(t *testing.T, name string) uint64 {
	t.Helper()
	v, ok := r.reg.Lookup(name)
	if !ok {
		t.Fatalf("no counter %q", name)
	}
	return v
}

// line returns an address on the i-th cache line of a convenient region.
func line(i int) mem.PAddr { return mem.PAddr(0x1_0000 + i*mem.LineSize) }

func TestPrivateHierarchyHitMissLatencies(t *testing.T) {
	r := newHierRig(t, 1)
	dramLat := r.dram.Config().Latency

	// Cold access: DRAM miss, latency at least the DRAM access time.
	if lat := r.access(t, 0, mem.Read, line(0)); lat < dramLat {
		t.Fatalf("cold miss took %v, want >= DRAM latency %v", lat, dramLat)
	}
	if got := r.counter(t, "cpu0.misses"); got != 1 {
		t.Fatalf("misses = %d, want 1", got)
	}

	// Same line again: L1 hit at L1 latency, no new miss.
	if lat := r.access(t, 0, mem.Read, line(0)+8); lat != 1*sim.Nanosecond {
		t.Fatalf("L1 hit took %v, want 1ns", lat)
	}
	if got := r.counter(t, "cpu0.l1_hits"); got != 1 {
		t.Fatalf("l1_hits = %d, want 1", got)
	}

	// line(2) maps to the same L1 set (2-line direct-mapped L1) and evicts
	// line(0) from the L1; both stay resident in the 4-line L2.
	r.access(t, 0, mem.Read, line(2))
	if lat := r.access(t, 0, mem.Read, line(0)); lat != 4*sim.Nanosecond {
		t.Fatalf("L2 hit took %v, want L1+L2 = 4ns", lat)
	}
	if got := r.counter(t, "cpu0.l2_hits"); got != 1 {
		t.Fatalf("l2_hits = %d, want 1", got)
	}
	if got := r.counter(t, "cpu0.misses"); got != 2 {
		t.Fatalf("misses = %d after L2 hit, want 2 (no new DRAM access)", got)
	}
}

// TestPrivateHierarchyWritebackOnL2Eviction: dirty lines evicted from the L2
// are written back to DRAM and counted.
func TestPrivateHierarchyWritebackOnL2Eviction(t *testing.T) {
	r := newHierRig(t, 1)
	// Dirty one line, then stream enough same-set lines through the 2-way L2
	// to evict it. L2 has 2 sets; lines 0,2,4,... share set 0.
	r.access(t, 0, mem.Write, line(0))
	for i := 2; i <= 6; i += 2 {
		r.access(t, 0, mem.Read, line(i))
	}
	if got := r.counter(t, "cpu0.writebacks"); got == 0 {
		t.Fatal("evicting a dirty L2 line recorded no writeback")
	}
	if got := r.counter(t, "dram.writes"); got == 0 {
		t.Fatal("writeback did not reach DRAM")
	}
}

// TestSnoopFilterInvalidatesOtherHierarchies: a write by one core removes the
// line from the other cores' private caches, so their next access misses.
func TestSnoopFilterInvalidatesOtherHierarchies(t *testing.T) {
	r := newHierRig(t, 2)
	r.access(t, 0, mem.Read, line(0)) // cpu0 caches the line
	r.access(t, 0, mem.Read, line(0))
	if got := r.counter(t, "cpu0.l1_hits"); got != 1 {
		t.Fatalf("cpu0 l1_hits = %d, want 1", got)
	}

	r.access(t, 1, mem.Write, line(0)) // cpu1 writes: snoop invalidates cpu0

	missesBefore := r.counter(t, "cpu0.misses")
	r.access(t, 0, mem.Read, line(0))
	if got := r.counter(t, "cpu0.misses"); got != missesBefore+1 {
		t.Fatalf("cpu0 read after remote write hit a stale copy (misses %d, want %d)",
			got, missesBefore+1)
	}
}

// TestFlushAndInvalidateRange: FlushRange writes dirty lines back (counting
// them) and drops the range; InvalidateRange drops without writing back.
func TestFlushAndInvalidateRange(t *testing.T) {
	r := newHierRig(t, 1)
	r.access(t, 0, mem.Write, line(0))
	r.access(t, 0, mem.Read, line(1))

	base := mem.VAddr(line(0))
	size := uint64(2 * mem.LineSize)
	wbBefore := r.counter(t, "dram.writes")
	written := r.hiers[0].FlushRange(base, size, nil)
	r.engine.Run()
	if written != 1 {
		t.Fatalf("FlushRange wrote back %d lines, want 1 (only line 0 is dirty)", written)
	}
	if got := r.counter(t, "dram.writes"); got != wbBefore+1 {
		t.Fatalf("dram.writes = %d, want %d", got, wbBefore+1)
	}
	// Both lines are gone from the hierarchy now.
	missesBefore := r.counter(t, "cpu0.misses")
	r.access(t, 0, mem.Read, line(0))
	r.access(t, 0, mem.Read, line(1))
	if got := r.counter(t, "cpu0.misses"); got != missesBefore+2 {
		t.Fatalf("flushed lines still cached (misses %d, want %d)", got, missesBefore+2)
	}

	// InvalidateRange: dirty data is dropped, not written back.
	r.access(t, 0, mem.Write, line(3))
	wbBefore = r.counter(t, "dram.writes")
	r.hiers[0].InvalidateRange(mem.VAddr(line(3)), mem.LineSize)
	if got := r.counter(t, "dram.writes"); got != wbBefore {
		t.Fatalf("InvalidateRange wrote back (dram.writes %d -> %d)", wbBefore, got)
	}
}

// gpuRig builds a GPUMemory with a tiny write buffer for FIFO tests.
func gpuRig(t *testing.T, bufLines int) (*sim.Engine, *GPUMemory, *stats.Registry) {
	t.Helper()
	engine := sim.NewEngine()
	reg := stats.NewRegistry("test")
	d := dram.NewController(engine, dram.DefaultAPUConfig(), reg, "dram")
	g := NewGPUMemory(engine, GPUMemConfig{
		ReadCacheBytes:   4 * mem.LineSize,
		ReadCacheAssoc:   2,
		ReadHit:          2 * sim.Nanosecond,
		WriteBufferLines: bufLines,
	}, d, reg)
	return engine, g, reg
}

func gpuAccess(t *testing.T, engine *sim.Engine, g *GPUMemory, typ mem.AccessType, addr mem.PAddr) {
	t.Helper()
	done := false
	g.Access(mem.Request{Type: typ, Addr: addr, Size: 8}, func() { done = true })
	engine.Run()
	if !done {
		t.Fatal("GPU access never completed")
	}
}

// TestGPUWriteBufferCombinesAndEvictsFIFO pins the write-combining buffer's
// semantics: repeat writes to a buffered line merge for free, and when the
// buffer overflows the OLDEST line leaves first (FIFO by insertion sequence,
// which keeps runs deterministic), so rewriting it costs a fresh slot while
// a younger line still combines.
func TestGPUWriteBufferCombinesAndEvictsFIFO(t *testing.T) {
	engine, g, reg := gpuRig(t, 2)
	count := func(name string) uint64 {
		v, _ := reg.Lookup(name)
		return v
	}

	gpuAccess(t, engine, g, mem.Write, line(0)) // buffer: {0}
	gpuAccess(t, engine, g, mem.Write, line(1)) // buffer: {0, 1}
	if got := count("gpu.mem.write_lines"); got != 2 {
		t.Fatalf("write_lines = %d, want 2", got)
	}

	gpuAccess(t, engine, g, mem.Write, line(0)) // combines with buffered line 0
	if got := count("gpu.mem.combined_writes"); got != 1 {
		t.Fatalf("combined_writes = %d, want 1", got)
	}

	gpuAccess(t, engine, g, mem.Write, line(2)) // full: evicts oldest (line 0)
	if got := count("gpu.mem.write_lines"); got != 3 {
		t.Fatalf("write_lines = %d after overflow, want 3", got)
	}

	// Line 0 was the FIFO victim: rewriting it is a fresh line, not a combine.
	gpuAccess(t, engine, g, mem.Write, line(0))
	if got := count("gpu.mem.write_lines"); got != 4 {
		t.Fatalf("write_lines = %d, want 4 (line 0 must have been evicted first)", got)
	}
	if got := count("gpu.mem.combined_writes"); got != 1 {
		t.Fatalf("combined_writes = %d, want still 1", got)
	}
	// Line 1 is younger and must still be buffered... until line 0's re-insert
	// evicted it (buffer held {1, 2}). Now the buffer holds {2, 0}: line 2
	// still combines.
	gpuAccess(t, engine, g, mem.Write, line(2))
	if got := count("gpu.mem.combined_writes"); got != 2 {
		t.Fatalf("combined_writes = %d, want 2 (line 2 still buffered)", got)
	}
}

// TestGPUReadCacheHitMiss pins the small GPU read cache and InvalidateAll.
func TestGPUReadCacheHitMiss(t *testing.T) {
	engine, g, reg := gpuRig(t, 2)
	count := func(name string) uint64 {
		v, _ := reg.Lookup(name)
		return v
	}

	gpuAccess(t, engine, g, mem.Read, line(0))
	if got := count("gpu.mem.read_misses"); got != 1 {
		t.Fatalf("read_misses = %d, want 1", got)
	}
	gpuAccess(t, engine, g, mem.Read, line(0))
	if got := count("gpu.mem.read_hits"); got != 1 {
		t.Fatalf("read_hits = %d, want 1", got)
	}

	// Between kernels the read cache and write buffer are dropped.
	gpuAccess(t, engine, g, mem.Write, line(1))
	g.InvalidateAll()
	gpuAccess(t, engine, g, mem.Read, line(0))
	if got := count("gpu.mem.read_misses"); got != 2 {
		t.Fatalf("read_misses = %d after InvalidateAll, want 2", got)
	}
	gpuAccess(t, engine, g, mem.Write, line(1))
	if got := count("gpu.mem.write_lines"); got != 2 {
		t.Fatalf("write_lines = %d, want 2 (buffer dropped by InvalidateAll)", got)
	}
}
