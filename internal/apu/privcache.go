// Package apu models the comparison system of the paper's evaluation: a
// loosely-coupled heterogeneous chip in the style of AMD's Llano Fusion APU
// (Table 2, right column). Its CPU cores have private L1+L2 hierarchies and
// communicate with a VLIW GPU only through pinned host memory in DRAM; there
// is no shared virtual address space and no hardware coherence between CPU
// caches and the GPU. The OpenCL-style runtime in package opencl drives it.
//
// The model is a documented substitution for the real A8-3850 hardware (see
// DESIGN.md §5): it reproduces the structural costs that the paper's
// measurements expose — off-chip staging of all CPU↔GPU communication,
// expensive kernel launches and synchronization, large driver/JIT constants —
// and the APU's structural advantages (higher CPU IPC, wider VLIW GPU,
// coalesced GPU memory accesses).
//
//ccsvm:deterministic
package apu

import (
	"sort"

	"ccsvm/internal/cache"
	"ccsvm/internal/dram"
	"ccsvm/internal/mem"
	"ccsvm/internal/sim"
	"ccsvm/internal/stats"
)

// snoopFilter approximates coherence among the APU's CPU cores: it tracks
// which hierarchies hold each line so a write by one core invalidates the
// copies cached by the others. Timing-wise this favours the APU (invalidation
// is free), which is the direction the paper's methodology deliberately errs
// in.
type snoopFilter struct {
	holders map[mem.LineAddr]map[*PrivateHierarchy]struct{}
	nextID  int
}

func newSnoopFilter() *snoopFilter {
	return &snoopFilter{holders: make(map[mem.LineAddr]map[*PrivateHierarchy]struct{})}
}

// register hands the hierarchy the stable ID that orders snoop
// invalidations.
func (s *snoopFilter) register(h *PrivateHierarchy) {
	h.id = s.nextID
	s.nextID++
}

func (s *snoopFilter) touch(h *PrivateHierarchy, line mem.LineAddr) {
	set := s.holders[line]
	if set == nil {
		set = make(map[*PrivateHierarchy]struct{})
		s.holders[line] = set
	}
	set[h] = struct{}{}
}

// invalidateOthers drops every other hierarchy's copy of line. Holders are
// visited in registration order: each invalidation only touches that
// hierarchy's own arrays, so the effects commute, but a fixed order keeps
// same-seed runs bit-identical (iterating the pointer-keyed map directly
// varies with allocation addresses).
func (s *snoopFilter) invalidateOthers(h *PrivateHierarchy, line mem.LineAddr) {
	set := s.holders[line]
	if len(set) == 0 {
		return
	}
	others := make([]*PrivateHierarchy, 0, len(set))
	//ccsvm:orderinvariant
	for other := range set {
		if other != h {
			others = append(others, other)
		}
	}
	sort.Slice(others, func(i, j int) bool { return others[i].id < others[j].id })
	for _, other := range others {
		other.invalidateLine(line)
		delete(set, other)
	}
}

// PrivateHierarchy is one CPU core's private L1+L2 cache hierarchy backed by
// DRAM. It implements mem.Port.
type PrivateHierarchy struct {
	engine *sim.Engine
	name   string
	id     int
	l1     *cache.Array
	l2     *cache.Array
	l1Hit  sim.Duration
	l2Hit  sim.Duration
	dram   *dram.Controller
	filter *snoopFilter

	l1Hits   *stats.Counter
	l2Hits   *stats.Counter
	misses   *stats.Counter
	writebks *stats.Counter
}

// HierarchyConfig describes one private hierarchy (Table 2 APU column: 64 KB
// 4-way L1 with a 1 ns hit, 1 MB L2 with a 3.6 ns hit).
type HierarchyConfig struct {
	L1         cache.Config
	L2         cache.Config
	L1Hit      sim.Duration
	L2Hit      sim.Duration
	WriteAlloc bool
}

// DefaultHierarchyConfig returns the Table 2 APU CPU cache parameters.
func DefaultHierarchyConfig(name string) HierarchyConfig {
	return HierarchyConfig{
		L1:         cache.Config{SizeBytes: 64 * 1024, Assoc: 4, Name: name + ".l1"},
		L2:         cache.Config{SizeBytes: 1 << 20, Assoc: 16, Name: name + ".l2"},
		L1Hit:      1 * sim.Nanosecond,
		L2Hit:      3600 * sim.Picosecond,
		WriteAlloc: true,
	}
}

// NewPrivateHierarchy builds a hierarchy.
func NewPrivateHierarchy(engine *sim.Engine, cfg HierarchyConfig, d *dram.Controller,
	filter *snoopFilter, reg *stats.Registry, name string) *PrivateHierarchy {
	h := &PrivateHierarchy{
		engine: engine,
		name:   name,
		l1:     cache.NewArray(cfg.L1),
		l2:     cache.NewArray(cfg.L2),
		l1Hit:  cfg.L1Hit,
		l2Hit:  cfg.L2Hit,
		dram:   d,
		filter: filter,
	}
	if filter != nil {
		filter.register(h)
	}
	h.l1Hits = reg.Counter(name + ".l1_hits")
	h.l2Hits = reg.Counter(name + ".l2_hits")
	h.misses = reg.Counter(name + ".misses")
	h.writebks = reg.Counter(name + ".writebacks")
	return h
}

// Access implements mem.Port.
func (h *PrivateHierarchy) Access(req mem.Request, done func()) {
	line := req.Line()
	write := req.Type.NeedsExclusive()
	if write {
		h.filter.invalidateOthers(h, line)
	}
	if l := h.l1.Touch(line); l != nil {
		h.l1Hits.Inc()
		if write {
			l.Dirty = true
		}
		h.filter.touch(h, line)
		h.engine.Schedule(h.l1Hit, done)
		return
	}
	if l := h.l2.Touch(line); l != nil {
		h.l2Hits.Inc()
		h.fillL1(line, write)
		h.filter.touch(h, line)
		h.engine.Schedule(h.l1Hit+h.l2Hit, done)
		return
	}
	// Miss to DRAM.
	h.misses.Inc()
	h.dram.Read(line, func() {
		h.fillL2(line)
		h.fillL1(line, write)
		h.filter.touch(h, line)
		h.engine.Schedule(h.l1Hit+h.l2Hit, done)
	})
}

func (h *PrivateHierarchy) fillL1(line mem.LineAddr, dirty bool) {
	l, victim, evicted, ok := h.l1.Allocate(line)
	if !ok {
		return
	}
	l.State = cache.Shared
	l.Dirty = dirty
	if evicted && victim.Dirty {
		// Write back into the L2 (keep it dirty there).
		if v := h.l2.Touch(victim.Addr); v != nil {
			v.Dirty = true
		}
	}
	_ = victim
}

func (h *PrivateHierarchy) fillL2(line mem.LineAddr) {
	l, victim, evicted, ok := h.l2.Allocate(line)
	if !ok {
		return
	}
	l.State = cache.Shared
	if evicted && victim.Dirty {
		h.writebks.Inc()
		h.dram.Write(victim.Addr, nil)
	}
}

func (h *PrivateHierarchy) invalidateLine(line mem.LineAddr) {
	h.l1.Invalidate(line)
	h.l2.Invalidate(line)
}

// FlushRange writes back and invalidates every cached line in [base,
// base+size): the OpenCL runtime uses it when a mapped buffer is unmapped so
// the GPU (which bypasses the CPU caches) sees the data in DRAM. It returns
// the number of lines written back, and charges their DRAM bandwidth.
func (h *PrivateHierarchy) FlushRange(base mem.VAddr, size uint64, done func()) int {
	first := mem.LineOf(mem.PAddr(base))
	last := mem.LineOf(mem.PAddr(base + mem.VAddr(size) - 1))
	written := 0
	for line := first; line <= last; line++ {
		dirty := false
		if l := h.l1.Lookup(line); l != nil && l.Dirty {
			dirty = true
		}
		if l := h.l2.Lookup(line); l != nil && l.Dirty {
			dirty = true
		}
		if dirty {
			written++
			h.dram.Write(line, nil)
		}
		h.l1.Invalidate(line)
		h.l2.Invalidate(line)
	}
	if done != nil {
		h.engine.Schedule(0, done)
	}
	return written
}

// InvalidateRange drops (without writing back) every cached line in the
// range; the runtime uses it before the CPU reads results the GPU produced in
// DRAM.
func (h *PrivateHierarchy) InvalidateRange(base mem.VAddr, size uint64) {
	first := mem.LineOf(mem.PAddr(base))
	last := mem.LineOf(mem.PAddr(base + mem.VAddr(size) - 1))
	for line := first; line <= last; line++ {
		h.l1.Invalidate(line)
		h.l2.Invalidate(line)
	}
}

var _ mem.Port = (*PrivateHierarchy)(nil)
