package apu

import "ccsvm/internal/stats"

// Metrics derives the per-run machine metrics of an APU run from the stats
// registry: CPU private-cache hit rates, GPU memory-path coalescing, the
// OpenCL driver overhead breakdown (accumulated by package opencl), and the
// off-chip access counts of Figure 9. The keys are stable — the sweep sinks
// emit them into JSONL — and are documented in ARCHITECTURE.md.
func (m *Machine) Metrics() map[string]float64 {
	s := m.Stats
	out := map[string]float64{
		"gpu.combined_writes":    float64(s.SumMatch("gpu.mem", ".combined_writes")),
		"gpu.write_lines":        float64(s.SumMatch("gpu.mem", ".write_lines")),
		"dram.reads":             float64(s.SumMatch("dram", ".reads")),
		"dram.writes":            float64(s.SumMatch("dram", ".writes")),
		"cpu.instructions":       float64(s.SumMatch("apu.cpu", ".instructions")),
		"gpu.instructions":       float64(s.SumMatch("apu.gpu", ".instructions")),
		"cpu.busy_us":            float64(s.SumMatch("apu.cpu", ".busy_ps")) / 1e6,
		"opencl.kernel_launches": float64(s.SumMatch("opencl", ".kernel_launches")),
		"opencl.work_items":      float64(s.SumMatch("opencl", ".work_items")),
		"opencl.buffer_maps":     float64(s.SumMatch("opencl", ".buffer_maps")),
		"opencl.init_us":         float64(s.SumMatch("opencl", ".init_ps")) / 1e6,
		"opencl.staging_us":      float64(s.SumMatch("opencl", ".staging_ps")) / 1e6,
		"opencl.launch_us":       float64(s.SumMatch("opencl", ".launch_ps")) / 1e6,
		// sim.events is the engine's executed-event count, the basis of the
		// benchmark harness's events/sec throughput metric.
		"sim.events": float64(m.Engine.Executed()),
		// sim.trace_hash_hi/lo are the engine's event-trace fingerprint halves
		// (see core.Machine.Metrics): equal values mean an identical event
		// order, the determinism contract as a metric.
		"sim.trace_hash_hi": float64(m.Engine.TraceHash() >> 32),
		"sim.trace_hash_lo": float64(m.Engine.TraceHash() & 0xffffffff),
	}
	l1Hits := s.SumMatch("apu.cpu", ".l1_hits")
	l2Hits := s.SumMatch("apu.cpu", ".l2_hits")
	misses := s.SumMatch("apu.cpu", ".misses")
	stats.AddRate(out, "l1.hit_rate", l1Hits, l2Hits+misses)
	stats.AddRate(out, "l2.hit_rate", l2Hits, misses)
	stats.AddRate(out, "gpu.read_hit_rate",
		s.SumMatch("gpu.mem", ".read_hits"), s.SumMatch("gpu.mem", ".read_misses"))
	return out
}
