package apu

import (
	"ccsvm/internal/cache"
	"ccsvm/internal/dram"
	"ccsvm/internal/mem"
	"ccsvm/internal/sim"
	"ccsvm/internal/stats"
)

// GPUMemory is the GPU side of the APU's memory system: accesses bypass the
// CPU caches and go to DRAM over the high-bandwidth "garlic" path, with a
// small read cache and a write-combining buffer that model the coalescing a
// real GPU performs across the lanes of a wavefront. It implements mem.Port
// and is shared by all SIMD units.
type GPUMemory struct {
	engine *sim.Engine
	dram   *dram.Controller

	readCache *cache.Array
	readHit   sim.Duration

	// writeBuf holds lines with pending partial writes, mapped to their
	// insertion sequence so eviction is FIFO (and deterministic); a full or
	// evicted line costs one DRAM write.
	writeBuf     map[mem.LineAddr]int
	writeSeq     int
	writeBufMax  int
	combinedWr   *stats.Counter
	readHits     *stats.Counter
	readMisses   *stats.Counter
	uncombinedWr *stats.Counter
}

// GPUMemConfig describes the GPU memory path.
type GPUMemConfig struct {
	// ReadCacheBytes is the small on-GPU read cache (per-chip aggregate).
	ReadCacheBytes int
	// ReadCacheAssoc is its associativity.
	ReadCacheAssoc int
	// ReadHit is the read-cache hit latency.
	ReadHit sim.Duration
	// WriteBufferLines is the capacity of the write-combining buffer.
	WriteBufferLines int
}

// DefaultGPUMemConfig returns the GPU memory-path parameters used for the
// Llano-like baseline.
func DefaultGPUMemConfig() GPUMemConfig {
	return GPUMemConfig{
		ReadCacheBytes:   32 * 1024,
		ReadCacheAssoc:   8,
		ReadHit:          2 * sim.Nanosecond,
		WriteBufferLines: 32,
	}
}

// NewGPUMemory builds the GPU memory path.
func NewGPUMemory(engine *sim.Engine, cfg GPUMemConfig, d *dram.Controller, reg *stats.Registry) *GPUMemory {
	g := &GPUMemory{
		engine:      engine,
		dram:        d,
		readCache:   cache.NewArray(cache.Config{SizeBytes: cfg.ReadCacheBytes, Assoc: cfg.ReadCacheAssoc, Name: "gpu.rdcache"}),
		readHit:     cfg.ReadHit,
		writeBuf:    make(map[mem.LineAddr]int),
		writeBufMax: cfg.WriteBufferLines,
	}
	g.readHits = reg.Counter("gpu.mem.read_hits")
	g.readMisses = reg.Counter("gpu.mem.read_misses")
	g.combinedWr = reg.Counter("gpu.mem.combined_writes")
	g.uncombinedWr = reg.Counter("gpu.mem.write_lines")
	return g
}

// Access implements mem.Port.
func (g *GPUMemory) Access(req mem.Request, done func()) {
	line := req.Line()
	if req.Type.NeedsExclusive() {
		// Write-combining: the first write to a line reserves a buffer slot;
		// subsequent writes to the same line merge for free. When the buffer
		// fills, the oldest line is written to DRAM.
		if _, ok := g.writeBuf[line]; ok {
			g.combinedWr.Inc()
			g.engine.Schedule(g.readHit, done)
			return
		}
		if len(g.writeBuf) >= g.writeBufMax {
			g.flushOneLine()
		}
		g.writeSeq++
		g.writeBuf[line] = g.writeSeq
		g.uncombinedWr.Inc()
		g.dram.Write(line, nil)
		g.engine.Schedule(g.readHit, done)
		return
	}
	if g.readCache.Touch(line) != nil {
		g.readHits.Inc()
		g.engine.Schedule(g.readHit, done)
		return
	}
	g.readMisses.Inc()
	g.dram.Read(line, func() {
		// Another in-flight miss to the same line may already have filled it.
		if g.readCache.Lookup(line) == nil {
			if l, _, _, ok := g.readCache.Allocate(line); ok {
				l.State = cache.Shared
			}
		}
		g.engine.Schedule(g.readHit, done)
	})
}

func (g *GPUMemory) flushOneLine() {
	oldest := mem.LineAddr(0)
	oldestSeq := g.writeSeq + 1
	//ccsvm:orderinvariant
	for line, seq := range g.writeBuf {
		if seq < oldestSeq {
			oldestSeq = seq
			oldest = line
		}
	}
	if oldestSeq <= g.writeSeq {
		delete(g.writeBuf, oldest)
	}
}

// InvalidateAll drops the read cache and write buffer (between kernels).
func (g *GPUMemory) InvalidateAll() {
	g.readCache.ForEach(func(l *cache.Line) { l.Valid = false })
	g.writeBuf = make(map[mem.LineAddr]int)
}

var _ mem.Port = (*GPUMemory)(nil)
