// Package cache provides the set-associative cache arrays used by the L1
// caches, the shared banked L2, and other structures (TLBs reuse the
// replacement machinery). The arrays track tags, MOESI coherence state and
// LRU replacement order; all data is functional and lives in mem.Physical.
package cache

import "fmt"

// State is a MOESI coherence state, including the transient states the L1
// controllers move through while a transaction is outstanding. The stable
// states follow Sweazey & Smith's MOESI class; the transient states follow
// the naming convention of Sorin, Hill & Wood's primer (the paper's reference
// [35]): the letters after the underscore say what the controller is waiting
// for (D = data, A = acks or an ack message).
type State uint8

const (
	// Invalid: the line is not present.
	Invalid State = iota
	// Shared: read-only copy; other caches may also hold it.
	Shared
	// Exclusive: read-only copy, guaranteed to be the only cached copy; may
	// be upgraded to Modified silently.
	Exclusive
	// Owned: read-only copy that is dirty with respect to memory; this cache
	// must supply data to requestors and write it back on eviction.
	Owned
	// Modified: writable copy, dirty, the only cached copy.
	Modified

	// ISD: was Invalid, issued GetS, waiting for data.
	ISD
	// IMAD: was Invalid, issued GetM, waiting for data and invalidation acks.
	IMAD
	// IMA: received data for a GetM, still waiting for invalidation acks.
	IMA
	// SMAD: was Shared, issued GetM (upgrade), waiting for data/ack-count and
	// invalidation acks.
	SMAD
	// SMA: upgrade acknowledged, still waiting for invalidation acks.
	SMA
	// MIA: was Modified, issued PutM, waiting for the put ack.
	MIA
	// OIA: was Owned, issued PutO (or degraded from MIA), waiting for the put
	// ack.
	OIA
	// EIA: was Exclusive, issued PutE, waiting for the put ack.
	EIA
	// IIA: lost the line while a Put was in flight; waiting for the (stale)
	// put ack before returning to Invalid.
	IIA
	// ISDI: was ISD but an invalidation arrived before the data; the data
	// will satisfy exactly one load and then the line becomes Invalid.
	ISDI
)

// String names the state.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Owned:
		return "O"
	case Modified:
		return "M"
	case ISD:
		return "IS_D"
	case IMAD:
		return "IM_AD"
	case IMA:
		return "IM_A"
	case SMAD:
		return "SM_AD"
	case SMA:
		return "SM_A"
	case MIA:
		return "MI_A"
	case OIA:
		return "OI_A"
	case EIA:
		return "EI_A"
	case IIA:
		return "II_A"
	case ISDI:
		return "IS_D_I"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Stable reports whether the state is one of the five stable MOESI states.
func (s State) Stable() bool {
	switch s {
	case Invalid, Shared, Exclusive, Owned, Modified:
		return true
	}
	return false
}

// Transient reports whether the state is a transient (in-flight) state.
func (s State) Transient() bool { return !s.Stable() }

// CanRead reports whether a load can be satisfied locally in this state.
func (s State) CanRead() bool {
	switch s {
	case Shared, Exclusive, Owned, Modified:
		return true
	}
	return false
}

// CanWrite reports whether a store can be performed locally in this state.
func (s State) CanWrite() bool {
	switch s {
	case Exclusive, Modified:
		return true
	}
	return false
}

// IsOwnerState reports whether a cache in this state is responsible for
// supplying data (and eventually writing it back).
func (s State) IsOwnerState() bool {
	switch s {
	case Exclusive, Owned, Modified:
		return true
	}
	return false
}

// Dirty reports whether the cached copy differs from memory.
func (s State) Dirty() bool {
	return s == Modified || s == Owned
}
