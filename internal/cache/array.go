package cache

import (
	"fmt"

	"ccsvm/internal/mem"
)

// Line is one cache line's bookkeeping in a set-associative array.
type Line struct {
	// Valid marks an allocated way (any state other than an empty slot).
	Valid bool
	// Addr is the line address of the block held in this way.
	Addr mem.LineAddr
	// State is the coherence state (used by the L1s and, with a narrower
	// set of states, the L2 data array where Dirty matters).
	State State
	// Dirty marks an L2 block newer than DRAM.
	Dirty bool
	// lru is the logical timestamp of the last touch.
	lru uint64
}

// Config describes a set-associative array.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// Assoc is the number of ways per set.
	Assoc int
	// Name is used in error messages and stats.
	Name string
}

// NumSets returns the number of sets implied by the configuration.
func (c Config) NumSets() int {
	lines := c.SizeBytes / mem.LineSize
	if c.Assoc <= 0 || lines <= 0 || lines%c.Assoc != 0 {
		panic(fmt.Sprintf("cache: invalid geometry for %s: %d bytes, %d-way", c.Name, c.SizeBytes, c.Assoc))
	}
	return lines / c.Assoc
}

// Array is a set-associative structure with LRU replacement. It stores no
// data, only tags and state; functional data lives in mem.Physical.
//
//ccsvm:state
type Array struct {
	cfg     Config
	sets    [][]Line
	numSets int
	tick    uint64
}

// NewArray builds an array from the configuration. The per-set slices share
// one flat backing array: a machine builds dozens of these, and one large
// allocation per array beats thousands of tiny per-set ones.
func NewArray(cfg Config) *Array {
	numSets := cfg.NumSets()
	flat := make([]Line, numSets*cfg.Assoc)
	sets := make([][]Line, numSets)
	for i := range sets {
		sets[i] = flat[i*cfg.Assoc : (i+1)*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	return &Array{cfg: cfg, sets: sets, numSets: numSets}
}

// Config returns the array configuration.
func (a *Array) Config() Config { return a.cfg }

// SetIndex returns the set an address maps to.
func (a *Array) SetIndex(addr mem.LineAddr) int {
	return int(uint64(addr) % uint64(a.numSets))
}

// Lookup returns the line holding addr, or nil if it is not present.
// Lookup does not update LRU state; use Touch for accesses.
func (a *Array) Lookup(addr mem.LineAddr) *Line {
	set := a.sets[a.SetIndex(addr)]
	for i := range set {
		if set[i].Valid && set[i].Addr == addr {
			return &set[i]
		}
	}
	return nil
}

// Touch marks the line as most recently used and returns it, or nil if the
// address is not present.
func (a *Array) Touch(addr mem.LineAddr) *Line {
	l := a.Lookup(addr)
	if l != nil {
		a.tick++
		l.lru = a.tick
	}
	return l
}

// Allocate installs addr into its set and returns the line, plus the victim
// line's previous contents if an occupied way had to be evicted. Only ways in
// a stable state are considered victims; if every way is transient (an
// outstanding transaction holds it), Allocate returns ok=false and the caller
// must retry later.
//
// The returned line is in state Invalid / not dirty; the caller sets its
// state.
func (a *Array) Allocate(addr mem.LineAddr) (line *Line, victim Line, evicted bool, ok bool) {
	if l := a.Lookup(addr); l != nil {
		panic(fmt.Sprintf("cache: %s allocate of already-present %v", a.cfg.Name, addr))
	}
	set := a.sets[a.SetIndex(addr)]
	// Prefer an empty way.
	var candidate *Line
	for i := range set {
		if !set[i].Valid {
			candidate = &set[i]
			break
		}
	}
	if candidate == nil {
		// Pick the least recently used stable way.
		for i := range set {
			if !set[i].State.Stable() {
				continue
			}
			if candidate == nil || set[i].lru < candidate.lru {
				candidate = &set[i]
			}
		}
		if candidate == nil {
			return nil, Line{}, false, false
		}
		victim = *candidate
		evicted = true
	}
	a.tick++
	*candidate = Line{Valid: true, Addr: addr, State: Invalid, lru: a.tick}
	return candidate, victim, evicted, true
}

// Invalidate removes addr from the array if present.
func (a *Array) Invalidate(addr mem.LineAddr) {
	if l := a.Lookup(addr); l != nil {
		*l = Line{}
	}
}

// Occupancy reports how many valid lines the array currently holds.
func (a *Array) Occupancy() int {
	n := 0
	for _, set := range a.sets {
		for i := range set {
			if set[i].Valid {
				n++
			}
		}
	}
	return n
}

// ForEach calls fn on every valid line. Mutating the line through the pointer
// is allowed.
func (a *Array) ForEach(fn func(l *Line)) {
	for _, set := range a.sets {
		for i := range set {
			if set[i].Valid {
				fn(&set[i])
			}
		}
	}
}
