package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ccsvm/internal/mem"
)

func testConfig() Config {
	return Config{SizeBytes: 4096, Assoc: 4, Name: "test"} // 16 sets of 4
}

func TestStateHelpers(t *testing.T) {
	stable := []State{Invalid, Shared, Exclusive, Owned, Modified}
	for _, s := range stable {
		if !s.Stable() || s.Transient() {
			t.Fatalf("%v should be stable", s)
		}
	}
	transient := []State{ISD, IMAD, IMA, SMAD, SMA, MIA, OIA, EIA, IIA, ISDI}
	for _, s := range transient {
		if s.Stable() || !s.Transient() {
			t.Fatalf("%v should be transient", s)
		}
		if s.String() == "" {
			t.Fatalf("%v has no name", s)
		}
	}
	if Invalid.CanRead() || !Shared.CanRead() || !Modified.CanRead() {
		t.Fatal("CanRead wrong")
	}
	if Shared.CanWrite() || Owned.CanWrite() || !Exclusive.CanWrite() || !Modified.CanWrite() {
		t.Fatal("CanWrite wrong")
	}
	if !Modified.Dirty() || !Owned.Dirty() || Exclusive.Dirty() || Shared.Dirty() {
		t.Fatal("Dirty wrong")
	}
	if !Modified.IsOwnerState() || !Owned.IsOwnerState() || !Exclusive.IsOwnerState() || Shared.IsOwnerState() {
		t.Fatal("IsOwnerState wrong")
	}
}

func TestConfigGeometry(t *testing.T) {
	cfg := Config{SizeBytes: 64 * 1024, Assoc: 4, Name: "l1"}
	if got := cfg.NumSets(); got != 256 {
		t.Fatalf("64KB 4-way has %d sets, want 256", got)
	}
	bad := Config{SizeBytes: 1000, Assoc: 4, Name: "bad"} // 15 lines do not divide into 4 ways
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid geometry")
		}
	}()
	bad.NumSets()
}

func TestArrayLookupTouchAllocate(t *testing.T) {
	a := NewArray(testConfig())
	addr := mem.LineAddr(0x40)
	if a.Lookup(addr) != nil {
		t.Fatal("empty array lookup should be nil")
	}
	line, _, evicted, ok := a.Allocate(addr)
	if !ok || evicted {
		t.Fatal("first allocation should succeed without eviction")
	}
	line.State = Shared
	if got := a.Touch(addr); got == nil || got.State != Shared {
		t.Fatal("touch after allocate failed")
	}
	if a.Occupancy() != 1 {
		t.Fatalf("occupancy = %d, want 1", a.Occupancy())
	}
	a.Invalidate(addr)
	if a.Lookup(addr) != nil {
		t.Fatal("lookup after invalidate should be nil")
	}
}

func TestArrayDoubleAllocatePanics(t *testing.T) {
	a := NewArray(testConfig())
	l, _, _, _ := a.Allocate(0x40)
	l.State = Shared
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double allocate")
		}
	}()
	a.Allocate(0x40)
}

func TestArrayLRUEviction(t *testing.T) {
	cfg := testConfig()
	a := NewArray(cfg)
	sets := cfg.NumSets()
	// Fill one set (addresses that map to set 0): line addresses 0, sets, 2*sets, ...
	addrs := make([]mem.LineAddr, cfg.Assoc+1)
	for i := range addrs {
		addrs[i] = mem.LineAddr(i * sets)
	}
	for i := 0; i < cfg.Assoc; i++ {
		l, _, evicted, ok := a.Allocate(addrs[i])
		if !ok || evicted {
			t.Fatalf("allocation %d should not evict", i)
		}
		l.State = Shared
	}
	// Touch all but addrs[1], making it LRU.
	for i := 0; i < cfg.Assoc; i++ {
		if i != 1 {
			a.Touch(addrs[i])
		}
	}
	_, victim, evicted, ok := a.Allocate(addrs[cfg.Assoc])
	if !ok || !evicted {
		t.Fatal("allocation into a full set must evict")
	}
	if victim.Addr != addrs[1] {
		t.Fatalf("victim = %v, want LRU line %v", victim.Addr, addrs[1])
	}
}

func TestArrayAllocateSkipsTransientLines(t *testing.T) {
	cfg := testConfig()
	a := NewArray(cfg)
	sets := cfg.NumSets()
	for i := 0; i < cfg.Assoc; i++ {
		l, _, _, _ := a.Allocate(mem.LineAddr(i * sets))
		l.State = IMAD // every way has an outstanding transaction
	}
	_, _, _, ok := a.Allocate(mem.LineAddr(cfg.Assoc * sets))
	if ok {
		t.Fatal("allocation should fail when every way is transient")
	}
	// Make one line stable again; allocation must now succeed and pick it.
	stable := a.Lookup(mem.LineAddr(2 * sets))
	stable.State = Shared
	_, victim, evicted, ok := a.Allocate(mem.LineAddr(cfg.Assoc * sets))
	if !ok || !evicted || victim.Addr != mem.LineAddr(2*sets) {
		t.Fatalf("allocation should evict the only stable line, got victim %v ok=%v", victim.Addr, ok)
	}
}

// Property: the array never holds more lines than its capacity and never
// holds the same address twice, under any access pattern.
func TestArrayCapacityProperty(t *testing.T) {
	cfg := testConfig()
	capacity := cfg.SizeBytes / mem.LineSize
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewArray(cfg)
		for i := 0; i < 500; i++ {
			addr := mem.LineAddr(rng.Intn(256))
			if a.Touch(addr) == nil {
				l, _, _, ok := a.Allocate(addr)
				if !ok {
					return false
				}
				l.State = Shared
			}
		}
		if a.Occupancy() > capacity {
			return false
		}
		seen := make(map[mem.LineAddr]int)
		a.ForEach(func(l *Line) { seen[l.Addr]++ })
		for _, n := range seen {
			if n > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: a just-touched line is never the LRU victim.
func TestArrayLRUProperty(t *testing.T) {
	cfg := testConfig()
	sets := cfg.NumSets()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewArray(cfg)
		for i := 0; i < cfg.Assoc; i++ {
			l, _, _, _ := a.Allocate(mem.LineAddr(i * sets))
			l.State = Shared
		}
		protect := mem.LineAddr(rng.Intn(cfg.Assoc) * sets)
		a.Touch(protect)
		_, victim, evicted, ok := a.Allocate(mem.LineAddr(cfg.Assoc * sets))
		return ok && evicted && victim.Addr != protect
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
