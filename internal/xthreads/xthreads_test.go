package xthreads_test

// The xthreads library calls only have meaning on a machine whose cores run
// them — spawn goes through the MIFD syscall, join and barrier through
// coherent shared memory — so these tests drive the scaled-down CCSVM machine
// end to end, as the paper's Figure 4 programs do.

import (
	"testing"

	"ccsvm/internal/core"
	"ccsvm/internal/mem"
	"ccsvm/internal/xthreads"
)

// TestCreateMThreadsSpawnAndJoin is the spawn/join round trip of Table 1:
// create_mthread launches a range of MTTOP threads, each signals its
// condition slot when done, and the CPU's Wait observes every signal through
// coherent shared memory.
func TestCreateMThreadsSpawnAndJoin(t *testing.T) {
	m := core.NewMachine(core.SmallConfig())
	defer m.Shutdown()

	const first, last = 0, 7
	n := last - first + 1
	ran := make([]bool, n)
	kid := m.RegisterKernel(func(c *xthreads.MTTOPContext) {
		ran[c.TID()] = true
		// Each thread contributes to a shared sum, then signals its slot.
		c.AtomicAdd64(c.Args(), uint64(c.TID())+1)
		c.SignalSlot(c.Args()+8, first)
	})

	_, err := m.RunProgram(func(c *xthreads.CPUContext) {
		area := c.Malloc(8 + uint64(4*n)) // sum + condition array
		c.Store64(area, 0)
		c.InitConditions(area+8, first, last, xthreads.CondIdle)
		c.CreateMThreads(kid, area, first, last)
		c.Wait(area+8, first, last)
		if got := c.Load64(area); got != uint64(n*(n+1)/2) {
			t.Errorf("joined sum = %d, want %d", got, n*(n+1)/2)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for tid, ok := range ran {
		if !ok {
			t.Fatalf("MTTOP thread %d never ran", tid)
		}
	}
}

// TestCPUMTTOPBarrier runs two barrier phases: every MTTOP thread writes a
// phase value, meets the CPU at the global barrier, and must not observe the
// next phase before the CPU flips the sense — the CPU half resets the slots
// and releases the workers.
func TestCPUMTTOPBarrier(t *testing.T) {
	m := core.NewMachine(core.SmallConfig())
	defer m.Shutdown()

	const first, last = 0, 5
	n := last - first + 1
	kid := m.RegisterKernel(func(c *xthreads.MTTOPContext) {
		barrier, sense := c.Args(), c.Args()+mem.VAddr(4*n)
		phase1 := c.Args() + mem.VAddr(4*n) + 4
		// Phase 1: contribute, then meet everyone at the barrier.
		c.AtomicAdd64(phase1, 1)
		c.Barrier(barrier, first, sense)
		// Phase 2: every thread must see the complete phase-1 total.
		if got := c.Load64(phase1); got != uint64(n) {
			// Report through memory: a second counter of mismatches.
			c.AtomicAdd64(phase1+8, 1)
		}
		c.SignalSlot(phase1+16, first)
	})

	_, err := m.RunProgram(func(c *xthreads.CPUContext) {
		layout := c.Malloc(uint64(4*n) + 4 + 24 + uint64(4*n))
		barrier, sense := layout, layout+mem.VAddr(4*n)
		phase1 := layout + mem.VAddr(4*n) + 4
		mismatches := phase1 + 8
		cond := phase1 + 16
		c.InitConditions(barrier, first, last, 0)
		c.Store32(sense, 0)
		c.Store64(phase1, 0)
		c.Store64(mismatches, 0)
		c.InitConditions(cond, first, last, xthreads.CondIdle)

		c.CreateMThreads(kid, layout, first, last)
		c.CPUMTTOPBarrier(barrier, first, last, sense)
		c.Wait(cond, first, last)
		if got := c.Load64(mismatches); got != 0 {
			t.Errorf("%d threads crossed the barrier before phase 1 completed", got)
		}
		// The CPU half must have reset every barrier slot for reuse.
		for tid := first; tid <= last; tid++ {
			if got := c.Load32(barrier + mem.VAddr(4*(tid-first))); got != 0 {
				t.Errorf("barrier slot %d = %d after barrier, want 0", tid, got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMTTOPMallocThroughServingCPU is the paper's mttop_malloc (§5.3.2): an
// MTTOP thread requests heap memory through the shared MallocArea, a CPU
// thread serves it, and the returned pointer is usable shared memory.
func TestMTTOPMallocThroughServingCPU(t *testing.T) {
	m := core.NewMachine(core.SmallConfig())
	defer m.Shutdown()

	const first, last = 0, 3
	n := last - first + 1
	var area xthreads.MallocArea
	kid := m.RegisterKernel(func(c *xthreads.MTTOPContext) {
		ptr := c.MTTOPMalloc(area, 64)
		c.Store64(ptr, uint64(c.TID())+100) // the allocation is writable
		c.Store64(c.Args()+mem.VAddr(8*c.TID()), uint64(ptr))
		c.SignalSlot(c.Args()+mem.VAddr(8*n), first)
	})

	_, err := m.RunProgram(func(c *xthreads.CPUContext) {
		ptrs := c.Malloc(uint64(8*n) + uint64(4*n))
		cond := ptrs + mem.VAddr(8*n)
		c.InitConditions(cond, first, last, xthreads.CondIdle)
		area = c.AllocMallocArea(first, last)
		c.CreateMThreads(kid, ptrs, first, last)
		c.ServeMallocs(area, first, last, func(c *xthreads.CPUContext) bool {
			for tid := first; tid <= last; tid++ {
				if c.Load32(cond+mem.VAddr(4*(tid-first))) != xthreads.CondReady {
					return false
				}
			}
			return true
		})
		seen := map[uint64]bool{}
		for tid := first; tid <= last; tid++ {
			ptr := c.Load64(ptrs + mem.VAddr(8*tid))
			if ptr == 0 {
				t.Errorf("thread %d got a nil allocation", tid)
				continue
			}
			if seen[ptr] {
				t.Errorf("allocation %#x handed to two threads", ptr)
			}
			seen[ptr] = true
			if got := c.Load64(mem.VAddr(ptr)); got != uint64(tid)+100 {
				t.Errorf("thread %d's allocation holds %d, want %d", tid, got, tid+100)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRuntimeKernelTableAndThreads pins the runtime bookkeeping: kernel IDs
// are dense, unknown IDs panic, and every created thread is tracked for
// teardown.
func TestRuntimeKernelTableAndThreads(t *testing.T) {
	m := core.NewMachine(core.SmallConfig())
	defer m.Shutdown()
	rt := m.Runtime

	k0 := rt.RegisterKernel(func(*xthreads.MTTOPContext) {})
	k1 := rt.RegisterKernel(func(*xthreads.MTTOPContext) {})
	if k0 != 0 || k1 != 1 {
		t.Fatalf("kernel IDs = %d, %d, want 0, 1", k0, k1)
	}
	if rt.Kernel(k1) == nil {
		t.Fatal("registered kernel not retrievable")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unknown kernel ID did not panic")
			}
		}()
		rt.Kernel(99)
	}()

	before := len(rt.Threads())
	tt := rt.NewMTTOPThread(k0, 7, 0)
	if tt == nil || len(rt.Threads()) != before+1 {
		t.Fatal("NewMTTOPThread did not track the thread")
	}
	// KillAll (via Shutdown in the deferred call) must not hang on the
	// never-started thread; exercise it explicitly here.
	rt.KillAll()
	if !tt.Finished() {
		t.Fatal("KillAll left a thread unfinished")
	}
}
