package xthreads

import (
	"fmt"

	"ccsvm/internal/exec"
	"ccsvm/internal/kernelos"
	"ccsvm/internal/mem"
	"ccsvm/internal/sim"
)

// Syscall numbers understood by the CCSVM machine's kernel.
const (
	// SysLaunchMTTOPTask is the write syscall to the MIFD driver:
	// args = {kernelID, argsPtr, firstTID, lastTID}.
	SysLaunchMTTOPTask = 1
)

// Condition variable states, as in Table 1 of the paper.
const (
	CondIdle            uint32 = 0
	CondReady           uint32 = 1
	CondWaitingOnCPU    uint32 = 2
	CondWaitingOnMTTOP  uint32 = 3
	mallocFlagIdle      uint32 = 0
	mallocFlagRequested uint32 = 1
	mallocFlagServed    uint32 = 2
)

// Instruction charges for the library's own work. They model the handful of
// user-level instructions each call executes beyond its memory accesses.
const (
	mallocInstrs    = 80
	freeInstrs      = 20
	launchInstrs    = 40
	pollPauseInstrs = 64
)

// KernelFunc is an MTTOP kernel: the function executed by every thread of a
// task, analogous to the _MTTOP_ functions in the paper's Figure 4.
type KernelFunc func(ctx *MTTOPContext)

// MainFunc is the CPU-side entry point of an xthreads program.
type MainFunc func(ctx *CPUContext)

// Runtime is the per-machine xthreads library state: the process whose
// address space all threads share, the kernel table (our stand-in for task
// program counters), and the bookkeeping of every software thread created, so
// machines can tear them down.
type Runtime struct {
	proc    *kernelos.Process
	clockFn func() sim.Time
	gate    *exec.Gate
	kernels []KernelFunc
	threads []*exec.Thread
	nextID  int
}

// NewRuntime creates the runtime for one process. now exposes the machine's
// simulated clock to workloads (for measurement windows); gate is the
// machine's cooperative thread scheduler, which every thread the runtime
// creates runs under.
func NewRuntime(proc *kernelos.Process, now func() sim.Time, gate *exec.Gate) *Runtime {
	return &Runtime{proc: proc, clockFn: now, gate: gate}
}

// Process returns the process whose address space the program uses.
func (r *Runtime) Process() *kernelos.Process { return r.proc }

// RegisterKernel adds a kernel to the table and returns its ID, the value the
// task descriptor carries in place of a program counter.
//
//ccsvm:threadentry
func (r *Runtime) RegisterKernel(k KernelFunc) int {
	r.kernels = append(r.kernels, k)
	return len(r.kernels) - 1
}

// Kernel returns a registered kernel.
func (r *Runtime) Kernel(id int) KernelFunc {
	if id < 0 || id >= len(r.kernels) {
		panic(fmt.Sprintf("xthreads: unknown kernel id %d", id))
	}
	return r.kernels[id]
}

// NewMTTOPThread materializes the software thread for one (kernel, tid) pair;
// the machine installs this as the MIFD's thread factory.
func (r *Runtime) NewMTTOPThread(kernelID, tid int, args mem.VAddr) *exec.Thread {
	k := r.Kernel(kernelID)
	t := exec.NewThread(r.gate, tid, fmt.Sprintf("mttop-k%d-t%d", kernelID, tid), func(ec *exec.Context) {
		k(&MTTOPContext{Context: ec, rt: r, tid: tid, args: args})
	})
	r.threads = append(r.threads, t)
	return t
}

// NewCPUThread wraps a CPU-side function (the program's main, or an
// additional pthread-style CPU thread) as a software thread.
//
//ccsvm:threadentry
func (r *Runtime) NewCPUThread(name string, fn MainFunc) *exec.Thread {
	id := r.nextID
	r.nextID++
	t := exec.NewThread(r.gate, id, name, func(ec *exec.Context) {
		fn(&CPUContext{Context: ec, rt: r})
	})
	r.threads = append(r.threads, t)
	return t
}

// Threads returns every software thread the runtime has created.
func (r *Runtime) Threads() []*exec.Thread { return r.threads }

// KillAll tears down any thread that has not finished (used by machine
// shutdown and tests).
func (r *Runtime) KillAll() {
	for _, t := range r.threads {
		if !t.Finished() {
			t.Kill()
		}
	}
}

// Now reports the current simulated time.
func (r *Runtime) Now() sim.Time { return r.clockFn() }

// MallocArea is the shared-memory region through which MTTOP threads request
// dynamic allocation from a serving CPU thread (the paper's mttop_malloc).
// Flags is an array of uint32 (one per thread), Sizes and Results are arrays
// of uint64.
type MallocArea struct {
	Flags   mem.VAddr
	Sizes   mem.VAddr
	Results mem.VAddr
	// FirstTID is the thread ID corresponding to index 0 of the arrays.
	FirstTID int
}

// flagAddr returns the address of a thread's request flag.
func (a MallocArea) flagAddr(tid int) mem.VAddr {
	return a.Flags + mem.VAddr(4*(tid-a.FirstTID))
}

func (a MallocArea) sizeAddr(tid int) mem.VAddr {
	return a.Sizes + mem.VAddr(8*(tid-a.FirstTID))
}

func (a MallocArea) resultAddr(tid int) mem.VAddr {
	return a.Results + mem.VAddr(8*(tid-a.FirstTID))
}
