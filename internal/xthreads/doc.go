// Package xthreads implements the paper's xthreads programming model
// (Section 4): a pthreads-like API with which a CPU thread spawns sets of
// threads on the MTTOP cores, synchronizes with them through condition
// variables, barriers and signals in cache-coherent shared virtual memory,
// and services dynamic memory allocation on their behalf (mttop_malloc).
//
// Workload code is written against CPUContext and MTTOPContext; every load,
// store and atomic issued through them is played out in the machine's timing
// models, so an xthreads program in this repository behaves like the paper's
// xthreads binaries running on the simulated CCSVM chip.
package xthreads
