package xthreads

import (
	"ccsvm/internal/exec"
	"ccsvm/internal/mem"
	"ccsvm/internal/sim"
)

// CPUContext is the API available to CPU-side xthreads code. It embeds the
// low-level exec.Context (loads, stores, atomics, compute) and adds the
// xthreads library calls of Table 1 plus libc-style allocation.
type CPUContext struct {
	*exec.Context
	rt *Runtime
}

// Runtime exposes the runtime, mainly for tests.
func (c *CPUContext) Runtime() *Runtime { return c.rt }

// Now reports the current simulated time; workloads bracket their measured
// regions with it.
func (c *CPUContext) Now() sim.Time { return c.rt.Now() }

// Malloc allocates size bytes on the process heap and returns its virtual
// address. The allocation is demand-paged: pages fault in on first touch.
func (c *CPUContext) Malloc(size uint64) mem.VAddr {
	c.Compute(mallocInstrs)
	return c.rt.proc.Sbrk(size)
}

// Free releases an allocation. The simple heap never reuses memory; the call
// charges the instructions a real allocator's fast path would.
func (c *CPUContext) Free(mem.VAddr) {
	c.Compute(freeInstrs)
}

// CreateMThreads spawns MTTOP threads firstTID..lastTID, each running the
// registered kernel with the given argument pointer — the xthreads
// create_mthread call. It returns once the write syscall to the MIFD driver
// has been performed; completion of the threads is observed through memory
// (Wait, Signal, CPUMTTOPBarrier), as in the paper.
func (c *CPUContext) CreateMThreads(kernelID int, args mem.VAddr, firstTID, lastTID int) {
	c.Compute(launchInstrs)
	c.Syscall(SysLaunchMTTOPTask, uint64(kernelID), uint64(args), uint64(firstTID), uint64(lastTID))
}

// Wait spins until every condition variable in cond[firstTID..lastTID]
// reaches Ready (the CPU-side wait of Table 1). Polling is separated by a
// short pause, like the PAUSE instruction in an x86 spin loop.
func (c *CPUContext) Wait(cond mem.VAddr, firstTID, lastTID int) {
	for tid := firstTID; tid <= lastTID; tid++ {
		addr := cond + mem.VAddr(4*(tid-firstTID))
		for c.Load32(addr) != CondReady {
			c.Compute(pollPauseInstrs)
		}
	}
}

// Signal sets every condition variable in cond[firstTID..lastTID] to Ready so
// waiting MTTOP threads can proceed.
func (c *CPUContext) Signal(cond mem.VAddr, firstTID, lastTID int) {
	for tid := firstTID; tid <= lastTID; tid++ {
		c.Store32(cond+mem.VAddr(4*(tid-firstTID)), CondReady)
	}
}

// InitConditions resets a condition array to a known state before launching a
// task.
func (c *CPUContext) InitConditions(cond mem.VAddr, firstTID, lastTID int, value uint32) {
	for tid := firstTID; tid <= lastTID; tid++ {
		c.Store32(cond+mem.VAddr(4*(tid-firstTID)), value)
	}
}

// CPUMTTOPBarrier is the CPU half of the global barrier of Table 1: the CPU
// waits for every MTTOP thread to write its barrier slot, resets the slots,
// and flips the sense so the MTTOP threads can leave the barrier.
func (c *CPUContext) CPUMTTOPBarrier(barrier mem.VAddr, firstTID, lastTID int, sense mem.VAddr) {
	for tid := firstTID; tid <= lastTID; tid++ {
		addr := barrier + mem.VAddr(4*(tid-firstTID))
		for c.Load32(addr) == 0 {
			c.Compute(pollPauseInstrs)
		}
	}
	for tid := firstTID; tid <= lastTID; tid++ {
		c.Store32(barrier+mem.VAddr(4*(tid-firstTID)), 0)
	}
	c.Store32(sense, 1-c.Load32(sense))
}

// ServeMallocs runs the CPU side of mttop_malloc: it scans the request flags
// of threads firstTID..lastTID, services any pending allocation, and returns
// when stop reports true (typically "all worker threads have signalled
// completion"). This is the wait-for-malloc-requests use of the CPU wait call
// described in Table 1.
func (c *CPUContext) ServeMallocs(area MallocArea, firstTID, lastTID int, stop func(c *CPUContext) bool) {
	for {
		served := 0
		for tid := firstTID; tid <= lastTID; tid++ {
			if c.Load32(area.flagAddr(tid)) != mallocFlagRequested {
				continue
			}
			size := c.Load64(area.sizeAddr(tid))
			ptr := c.Malloc(size)
			c.Store64(area.resultAddr(tid), uint64(ptr))
			c.Store32(area.flagAddr(tid), mallocFlagServed)
			served++
		}
		if stop(c) {
			return
		}
		if served == 0 {
			c.Compute(pollPauseInstrs)
		}
	}
}

// AllocMallocArea carves a MallocArea for threads firstTID..lastTID out of
// the heap and initializes its flags.
func (c *CPUContext) AllocMallocArea(firstTID, lastTID int) MallocArea {
	n := uint64(lastTID - firstTID + 1)
	area := MallocArea{
		Flags:    c.Malloc(4 * n),
		Sizes:    c.Malloc(8 * n),
		Results:  c.Malloc(8 * n),
		FirstTID: firstTID,
	}
	for tid := firstTID; tid <= lastTID; tid++ {
		c.Store32(area.flagAddr(tid), mallocFlagIdle)
	}
	return area
}
