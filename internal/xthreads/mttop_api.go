package xthreads

import (
	"ccsvm/internal/exec"
	"ccsvm/internal/mem"
)

// MTTOPContext is the API available to MTTOP kernel code: the low-level
// loads/stores/atomics plus the MTTOP half of the xthreads synchronization
// calls of Table 1.
type MTTOPContext struct {
	*exec.Context
	rt   *Runtime
	tid  int
	args mem.VAddr
}

// TID reports the thread's xthreads thread ID (global across the task).
func (c *MTTOPContext) TID() int { return c.tid }

// Args returns the argument pointer the CPU passed to CreateMThreads.
func (c *MTTOPContext) Args() mem.VAddr { return c.args }

// SignalSlot sets this thread's element of a condition array (indexed from
// firstTID) to Ready — the MTTOP-side signal of Table 1.
func (c *MTTOPContext) SignalSlot(cond mem.VAddr, firstTID int) {
	c.Store32(cond+mem.VAddr(4*(c.tid-firstTID)), CondReady)
}

// Signal sets an arbitrary condition variable to Ready.
func (c *MTTOPContext) Signal(cond mem.VAddr) {
	c.Store32(cond, CondReady)
}

// Wait marks the condition as WaitingOnCPU and spins until the CPU sets it to
// Ready — the MTTOP-side wait of Table 1.
func (c *MTTOPContext) Wait(cond mem.VAddr) {
	c.Store32(cond, CondWaitingOnCPU)
	for c.Load32(cond) != CondReady {
		c.Compute(pollPauseInstrs)
	}
}

// Barrier is the MTTOP half of the CPU–MTTOP global barrier: write our
// barrier slot, then wait for the CPU to flip the sense.
func (c *MTTOPContext) Barrier(barrier mem.VAddr, firstTID int, sense mem.VAddr) {
	old := c.Load32(sense)
	c.Store32(barrier+mem.VAddr(4*(c.tid-firstTID)), 1)
	for c.Load32(sense) == old {
		c.Compute(pollPauseInstrs)
	}
}

// MTTOPMalloc requests a dynamic allocation from the serving CPU thread
// through the shared MallocArea and blocks until the pointer is returned —
// the paper's mttop_malloc (Section 5.3.2).
func (c *MTTOPContext) MTTOPMalloc(area MallocArea, size uint64) mem.VAddr {
	c.Store64(area.sizeAddr(c.tid), size)
	c.Store32(area.flagAddr(c.tid), mallocFlagRequested)
	for c.Load32(area.flagAddr(c.tid)) != mallocFlagServed {
		c.Compute(pollPauseInstrs)
	}
	ptr := mem.VAddr(c.Load64(area.resultAddr(c.tid)))
	c.Store32(area.flagAddr(c.tid), mallocFlagIdle)
	return ptr
}
