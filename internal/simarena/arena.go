// Package simarena pools the expensive, resettable building blocks of a
// simulated machine across runs: the discrete-event engine (whose event free
// list and calendar backing arrays are the hottest allocations in a sweep),
// the physical memory (whose lazily materialized frames dominate resident
// bytes), and the harvested free lists of the coherence and network message
// pools.
//
// An Arena belongs to exactly one sweep worker at a time — it is
// deliberately not synchronized, matching the simulator's one-goroutine-per-
// machine execution model. A worker that runs many simulations back to back
// builds its first machine from scratch, and every later machine draws the
// recycled parts, so steady-state sweep throughput stops paying construction
// and garbage-collection cost per run.
//
// Reuse is observation-equivalent to fresh construction: every recycled part
// is reset to fresh-machine semantics (engine at time zero with an empty
// queue, memory all-zero at the requested capacity, messages indistinguishable
// from pool-miss allocations), so a sweep over a reused arena produces
// bit-identical Results — the runner's byte-identity test enforces this.
package simarena

import (
	"ccsvm/internal/coherence"
	"ccsvm/internal/mem"
	"ccsvm/internal/noc"
	"ccsvm/internal/sim"
)

// Stats counts the arena's traffic: how many component requests were served
// from the free lists versus built fresh. Purely observability; not part of
// any Result.
type Stats struct {
	// EngineReuses/EngineBuilds count Engine() calls served from the arena
	// versus constructed.
	EngineReuses, EngineBuilds uint64
	// PhysicalReuses/PhysicalBuilds count Physical() calls likewise.
	PhysicalReuses, PhysicalBuilds uint64
	// CohMsgs/NocMsgs count protocol and network messages currently parked on
	// the arena between machines.
	CohMsgs, NocMsgs int
}

// Arena is a per-worker free store of machine parts. The zero value is ready
// to use; a nil *Arena is also valid and makes every method fall through to
// fresh construction, so machine constructors call it unconditionally.
type Arena struct {
	engines []*sim.Engine
	phys    []*mem.Physical
	cohMsgs []*coherence.Msg
	nocMsgs []*noc.Message
	stats   Stats
}

// New returns an empty arena.
func New() *Arena { return &Arena{} }

// Engine returns an engine with fresh semantics: a recycled one when the
// arena has one parked (already Reset), otherwise a new one.
//
//ccsvm:pooled get
func (a *Arena) Engine() *sim.Engine {
	if a != nil {
		if n := len(a.engines); n > 0 {
			e := a.engines[n-1]
			a.engines[n-1] = nil
			a.engines = a.engines[:n-1]
			a.stats.EngineReuses++
			return e
		}
		a.stats.EngineBuilds++
	}
	return sim.NewEngine()
}

// RecycleEngine resets the engine (releasing any still-queued events into its
// free list) and parks it for the next machine. No-op on a nil arena or
// engine.
//
//ccsvm:pooled put
func (a *Arena) RecycleEngine(e *sim.Engine) {
	if a == nil || e == nil {
		return
	}
	e.Reset()
	a.engines = append(a.engines, e)
}

// Physical returns a physical memory of the given capacity with every byte
// zero: a recycled one when available (Reset to the requested size, keeping
// its materialized frames), otherwise a new one.
//
//ccsvm:pooled get
func (a *Arena) Physical(size uint64) *mem.Physical {
	if a != nil {
		if n := len(a.phys); n > 0 {
			p := a.phys[n-1]
			a.phys[n-1] = nil
			a.phys = a.phys[:n-1]
			p.Reset(size)
			a.stats.PhysicalReuses++
			return p
		}
		a.stats.PhysicalBuilds++
	}
	return mem.NewPhysical(size)
}

// RecyclePhysical parks a memory for reuse. The expensive zeroing happens at
// the next Physical() call, which also knows the capacity the next machine
// wants. No-op on a nil arena or memory.
//
//ccsvm:pooled put
func (a *Arena) RecyclePhysical(p *mem.Physical) {
	if a == nil || p == nil {
		return
	}
	a.phys = append(a.phys, p)
}

// TakeCohMsgs hands the parked coherence-protocol messages to the caller
// (typically to seed a new machine's first controller pool) and empties the
// arena's list. Returns nil when the arena is nil or empty.
//
//ccsvm:pooled get
func (a *Arena) TakeCohMsgs() []*coherence.Msg {
	if a == nil || len(a.cohMsgs) == 0 {
		return nil
	}
	ms := a.cohMsgs
	a.cohMsgs = nil
	a.stats.CohMsgs = 0
	return ms
}

// RecycleCohMsgs parks drained coherence messages for the next machine.
//
//ccsvm:pooled put
func (a *Arena) RecycleCohMsgs(ms []*coherence.Msg) {
	if a == nil || len(ms) == 0 {
		return
	}
	if a.cohMsgs == nil {
		a.cohMsgs = ms
	} else {
		a.cohMsgs = append(a.cohMsgs, ms...)
	}
	a.stats.CohMsgs = len(a.cohMsgs)
}

// TakeNocMsgs hands the parked network-message envelopes to the caller and
// empties the arena's list. Returns nil when the arena is nil or empty.
//
//ccsvm:pooled get
func (a *Arena) TakeNocMsgs() []*noc.Message {
	if a == nil || len(a.nocMsgs) == 0 {
		return nil
	}
	ms := a.nocMsgs
	a.nocMsgs = nil
	a.stats.NocMsgs = 0
	return ms
}

// RecycleNocMsgs parks drained network envelopes for the next machine.
//
//ccsvm:pooled put
func (a *Arena) RecycleNocMsgs(ms []*noc.Message) {
	if a == nil || len(ms) == 0 {
		return
	}
	if a.nocMsgs == nil {
		a.nocMsgs = ms
	} else {
		a.nocMsgs = append(a.nocMsgs, ms...)
	}
	a.stats.NocMsgs = len(a.nocMsgs)
}

// Stats reports the arena's reuse accounting. Nil arenas report zeroes.
func (a *Arena) Stats() Stats {
	if a == nil {
		return Stats{}
	}
	return a.stats
}
