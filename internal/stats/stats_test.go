package stats

import (
	"strings"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry("test")
	c := r.Counter("hits")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("hits"); again != c {
		t.Fatal("Counter should return the same instance for the same name")
	}
	g := r.Gauge("occupancy")
	g.Set(3)
	g.Add(2)
	g.Add(-4)
	if g.Value() != 1 {
		t.Fatalf("gauge = %d, want 1", g.Value())
	}
	if g.Max() != 5 {
		t.Fatalf("gauge max = %d, want 5", g.Max())
	}
}

// TestGaugeNegativeOnlyMax is the regression test for the implicit-zero max:
// a gauge that only ever holds negative values must report its true
// (negative) maximum, not a spurious 0 it never reached.
func TestGaugeNegativeOnlyMax(t *testing.T) {
	r := NewRegistry("test")
	g := r.Gauge("depth")
	g.Set(-7)
	g.Add(-3)
	if g.Max() != -7 {
		t.Fatalf("negative-only gauge max = %d, want -7", g.Max())
	}
	if g.Value() != -10 {
		t.Fatalf("negative-only gauge value = %d, want -10", g.Value())
	}

	// An untouched gauge still reports zero.
	if got := r.Gauge("untouched").Max(); got != 0 {
		t.Fatalf("untouched gauge max = %d, want 0", got)
	}

	// Reset restores the never-assigned state, so the max re-latches from
	// the first post-reset assignment.
	r.Reset()
	g.Set(-2)
	if g.Max() != -2 {
		t.Fatalf("post-reset negative gauge max = %d, want -2", g.Max())
	}
}

func TestRegistryLookupSumSnapshotReset(t *testing.T) {
	r := NewRegistry("chip")
	r.Counter("l1.0.hits").Add(10)
	r.Counter("l1.1.hits").Add(20)
	r.Counter("dram.reads").Add(7)
	if got := r.Sum("l1."); got != 30 {
		t.Fatalf("Sum(l1.) = %d, want 30", got)
	}
	if v, ok := r.Lookup("dram.reads"); !ok || v != 7 {
		t.Fatalf("Lookup = %d,%v", v, ok)
	}
	if _, ok := r.Lookup("missing"); ok {
		t.Fatal("Lookup of missing counter succeeded")
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d entries, want 3", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name >= snap[i].Name {
			t.Fatal("snapshot not sorted by name")
		}
	}
	r.Reset()
	if got := r.Sum(""); got != 0 {
		t.Fatalf("after Reset sum = %d, want 0", got)
	}
}

func TestFormat(t *testing.T) {
	out := Format([]NamedValue{{Name: "a", Value: 1}, {Name: "long.counter.name", Value: 2.5}})
	if !strings.Contains(out, "long.counter.name") || !strings.Contains(out, "2.5") {
		t.Fatalf("Format output missing content:\n%s", out)
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("Figure 5", "N", "APU", "CCSVM")
	tb.AddRow(16, 1.5, 0.001)
	tb.AddRow(1024, 0.25, 0.3)
	s := tb.String()
	if !strings.Contains(s, "Figure 5") || !strings.Contains(s, "CCSVM") {
		t.Fatalf("table missing header:\n%s", s)
	}
	if !strings.Contains(s, "1024") || !strings.Contains(s, "0.001") {
		t.Fatalf("table missing data:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 {
		t.Fatalf("table has %d lines, want 5:\n%s", len(lines), s)
	}
}
