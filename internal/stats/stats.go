// Package stats provides the counters and report formatting used by every
// component model. Components register named counters in a Registry; the
// experiment harness snapshots registries to build the tables reported in
// EXPERIMENTS.md.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	name  string
	value uint64
}

// Name reports the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Value reports the current count.
func (c *Counter) Value() uint64 { return c.value }

// Inc adds one to the counter.
func (c *Counter) Inc() { c.value++ }

// Add adds n to the counter.
func (c *Counter) Add(n uint64) { c.value += n }

// Gauge is a value that can move in both directions (e.g. occupancy).
type Gauge struct {
	name  string
	value int64
	max   int64
	// set records that the gauge was ever assigned: the max is tracked only
	// from the first Set/Add, so a gauge that only ever goes negative
	// reports its true (negative) max instead of a spurious zero.
	set bool
}

// Name reports the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// Value reports the current value.
func (g *Gauge) Value() int64 { return g.value }

// Max reports the largest value observed since the first Set/Add, or zero
// for a gauge that was never assigned.
func (g *Gauge) Max() int64 { return g.max }

// Set assigns the gauge.
func (g *Gauge) Set(v int64) {
	g.value = v
	if !g.set || v > g.max {
		g.max = v
		g.set = true
	}
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.Set(g.value + delta) }

// Registry is a named collection of counters and gauges. Registries nest by
// name prefix convention ("l1.0.hits", "dram.reads", ...).
type Registry struct {
	name     string
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// NewRegistry creates an empty registry with the given name.
func NewRegistry(name string) *Registry {
	return &Registry{
		name:     name,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
	}
}

// Name reports the registry name.
func (r *Registry) Name() string { return r.name }

// Counter returns the counter with the given name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge with the given name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// Lookup returns the value of a counter if it exists.
func (r *Registry) Lookup(name string) (uint64, bool) {
	c, ok := r.counters[name]
	if !ok {
		return 0, false
	}
	return c.value, true
}

// Sum returns the total of all counters whose names begin with prefix.
func (r *Registry) Sum(prefix string) uint64 {
	var total uint64
	for name, c := range r.counters {
		if strings.HasPrefix(name, prefix) {
			total += c.value
		}
	}
	return total
}

// SumMatch returns the total of all counters whose names begin with prefix
// AND end with suffix — the shape of per-component counters ("cpu0.l1.hits",
// "mttop3.l1.hits"), which a machine-level metric sums across components.
// Either string may be empty to match everything on that side.
func (r *Registry) SumMatch(prefix, suffix string) uint64 {
	var total uint64
	for name, c := range r.counters {
		if strings.HasPrefix(name, prefix) && strings.HasSuffix(name, suffix) {
			total += c.value
		}
	}
	return total
}

// AddRate records hits/(hits+misses) under key when there was any traffic
// at all; untouched structures report no rate rather than a misleading
// zero. The machines' Metrics() reductions use it to derive hit rates from
// counter pairs.
func AddRate(out map[string]float64, key string, hits, misses uint64) {
	if total := hits + misses; total > 0 {
		out[key] = float64(hits) / float64(total)
	}
}

// Snapshot returns all counter values, sorted by name.
func (r *Registry) Snapshot() []NamedValue {
	out := make([]NamedValue, 0, len(r.counters)+len(r.gauges))
	for name, c := range r.counters {
		out = append(out, NamedValue{Name: name, Value: float64(c.value)})
	}
	for name, g := range r.gauges {
		out = append(out, NamedValue{Name: name + ".max", Value: float64(g.max)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Reset zeroes every counter and gauge, keeping registrations.
func (r *Registry) Reset() {
	for _, c := range r.counters {
		c.value = 0
	}
	for _, g := range r.gauges {
		g.value = 0
		g.max = 0
		g.set = false
	}
}

// NamedValue is one row of a registry snapshot.
type NamedValue struct {
	Name  string
	Value float64
}

// Format renders a snapshot as an aligned text block.
func Format(values []NamedValue) string {
	var b strings.Builder
	width := 0
	for _, v := range values {
		if len(v.Name) > width {
			width = len(v.Name)
		}
	}
	for _, v := range values {
		fmt.Fprintf(&b, "%-*s %v\n", width+2, v.Name, formatNumber(v.Value))
	}
	return b.String()
}

func formatNumber(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}
