package stats

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table used by the experiment harness
// to print the data series behind each figure of the paper.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; values are formatted with %v, floats with 4
// significant digits.
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = formatNumber(x)
		case float32:
			row[i] = formatNumber(float64(x))
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
	}
	b.WriteString("\n")
	for i := range t.Columns {
		fmt.Fprintf(&b, "%-*s", widths[i]+2, strings.Repeat("-", widths[i]))
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		for i, cell := range row {
			w := 8
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s", w+2, cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}
