package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestEngineRunUntilStopRegression is the regression test for the time-travel
// bug: RunUntil used to fast-forward now to the deadline even when Stop ended
// the run early, so events still queued before the deadline later executed
// with when < now and Step moved simulated time backwards.
func TestEngineRunUntilStopRegression(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.Schedule(10, func() { fired = append(fired, e.Now()) })
	e.Schedule(20, func() {
		fired = append(fired, e.Now())
		e.Stop()
	})
	e.Schedule(30, func() { fired = append(fired, e.Now()) })

	n := e.RunUntil(100)
	if n != 2 {
		t.Fatalf("RunUntil executed %d events before Stop, want 2", n)
	}
	if e.Now() != 20 {
		t.Fatalf("after Stop mid-run Now() = %v, want 20 (not fast-forwarded to the deadline)", e.Now())
	}

	// The remaining event must run at its own time with time moving forward.
	e.Run()
	if len(fired) != 3 || fired[2] != 30 {
		t.Fatalf("fired = %v, want final event at 30", fired)
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("simulated time moved backwards: %v", fired)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("final Now() = %v, want 30", e.Now())
	}
}

// TestEngineRunUntilStopThenResume checks that a second RunUntil after an
// early Stop picks up the events the first call left behind.
func TestEngineRunUntilStopThenResume(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Schedule(5, func() {
		count++
		e.Stop()
	})
	e.Schedule(15, func() { count++ })
	if n := e.RunUntil(50); n != 1 {
		t.Fatalf("first RunUntil executed %d, want 1", n)
	}
	if n := e.RunUntil(50); n != 1 {
		t.Fatalf("second RunUntil executed %d, want 1", n)
	}
	if count != 2 || e.Now() != 50 {
		t.Fatalf("count = %d, Now() = %v; want 2 events and fast-forward to 50", count, e.Now())
	}
}

// refEngine is a deliberately naive event queue — a flat slice scanned for
// the (time, seq) minimum on every step — used as the specification the
// calendar-queue/pooled engine must match, including RunUntil/Stop semantics
// and the (time, seq) trace hash.
type refEngine struct {
	now     Time
	seq     uint64
	evs     []*refEvent
	stopped bool
	hash    uint64
}

type refEvent struct {
	when     Time
	seq      uint64
	fn       func()
	canceled bool
}

func (r *refEngine) schedule(d Duration, fn func()) *refEvent {
	ev := &refEvent{when: r.now.Add(d), seq: r.seq, fn: fn}
	r.seq++
	r.evs = append(r.evs, ev)
	return ev
}

func (r *refEngine) step() bool {
	best := -1
	for i, ev := range r.evs {
		if ev.canceled {
			continue
		}
		if best < 0 || ev.when < r.evs[best].when ||
			(ev.when == r.evs[best].when && ev.seq < r.evs[best].seq) {
			best = i
		}
	}
	if best < 0 {
		return false
	}
	ev := r.evs[best]
	r.evs = append(r.evs[:best], r.evs[best+1:]...)
	r.now = ev.when
	r.hash = fnvMix(fnvMix(r.hash, uint64(ev.when)), ev.seq)
	ev.fn()
	return true
}

// peek returns the earliest live event without firing it, or nil.
func (r *refEngine) peek() *refEvent {
	var best *refEvent
	for _, ev := range r.evs {
		if ev.canceled {
			continue
		}
		if best == nil || ev.when < best.when || (ev.when == best.when && ev.seq < best.seq) {
			best = ev
		}
	}
	return best
}

// runUntil mirrors Engine.RunUntil: execute events with times <= deadline,
// fast-forward to the deadline on a normal drain, and stay put when a Stop
// ends the run early.
func (r *refEngine) runUntil(deadline Time) int {
	r.stopped = false
	n := 0
	for !r.stopped {
		next := r.peek()
		if next == nil || next.when > deadline {
			break
		}
		r.step()
		n++
	}
	if !r.stopped && r.now < deadline {
		r.now = deadline
	}
	return n
}

// TestEngineMatchesReferenceModel drives the production engine and the naive
// reference through the same randomized workload — a mix of near-future
// (calendar) and far-future (overflow heap) delays, nested scheduling from
// callbacks, and cancellations — and requires the exact same execution order.
func TestEngineMatchesReferenceModel(t *testing.T) {
	// Both runs draw identical schedule/cancel decisions from the same rng
	// as long as execution order matches; any divergence desynchronizes the
	// streams and fails the comparison, which is exactly what we want.
	type driver struct {
		rng    *rand.Rand
		order  []int
		nextID int
	}
	// randomDelay mixes delays inside the ~65 ns calendar window with delays
	// far beyond it, so both queue levels are exercised.
	randomDelay := func(rng *rand.Rand) Duration {
		if rng.Intn(4) == 0 {
			return Duration(rng.Intn(500_000)) // far future: overflow heap
		}
		return Duration(rng.Intn(3_000)) // near future: calendar buckets
	}

	// Handles are dropped (nilled) when their event fires or is canceled, per
	// the pooled-handle contract documented on sim.Event: a retained stale
	// handle may alias a recycled event.
	runReal := func(seed int64) []int {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		d := &driver{rng: rng}
		var handles []*Event
		var fire func(id int) func()
		fire = func(id int) func() {
			return func() {
				handles[id] = nil
				d.order = append(d.order, id)
				for k := rng.Intn(3); k > 0 && d.nextID < 400; k-- {
					id := d.nextID
					d.nextID++
					handles = append(handles, e.Schedule(randomDelay(rng), fire(id)))
				}
				if len(handles) > 0 && rng.Intn(4) == 0 {
					i := rng.Intn(len(handles))
					if handles[i] != nil {
						e.Cancel(handles[i])
						handles[i] = nil
					}
				}
			}
		}
		for i := 0; i < 50; i++ {
			id := d.nextID
			d.nextID++
			handles = append(handles, e.Schedule(randomDelay(rng), fire(id)))
		}
		e.Run()
		return d.order
	}
	runRef := func(seed int64) []int {
		rng := rand.New(rand.NewSource(seed))
		r := &refEngine{}
		d := &driver{rng: rng}
		var handles []*refEvent
		var fire func(id int) func()
		fire = func(id int) func() {
			return func() {
				handles[id] = nil
				d.order = append(d.order, id)
				for k := rng.Intn(3); k > 0 && d.nextID < 400; k-- {
					id := d.nextID
					d.nextID++
					handles = append(handles, r.schedule(randomDelay(rng), fire(id)))
				}
				if len(handles) > 0 && rng.Intn(4) == 0 {
					i := rng.Intn(len(handles))
					if handles[i] != nil {
						handles[i].canceled = true
						handles[i] = nil
					}
				}
			}
		}
		for i := 0; i < 50; i++ {
			id := d.nextID
			d.nextID++
			handles = append(handles, r.schedule(randomDelay(rng), fire(id)))
		}
		for r.step() {
		}
		return d.order
	}

	f := func(seed int64) bool {
		a := runReal(seed)
		b := runRef(seed)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return len(a) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func nopArg(any) {}

// TestEngineAtArg checks that the allocation-free scheduling variant passes
// its argument through and interleaves with closure events in (time, seq)
// order.
func TestEngineAtArg(t *testing.T) {
	e := NewEngine()
	var got []any
	record := func(a any) { got = append(got, a) }
	e.AtArg(20, record, "b")
	e.At(10, func() { got = append(got, "a") })
	e.ScheduleArg(20, record, "c") // same time as "b": later seq, runs after
	e.Run()
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("got = %v, want [a b c]", got)
	}
}

// TestEngineSteadyStateAllocationFree proves the pool works: once warmed up,
// a schedule/fire cycle performs no heap allocation.
func TestEngineSteadyStateAllocationFree(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 1000; i++ {
		e.ScheduleArg(Duration(i%100), nopArg, nil)
	}
	e.Run()
	allocs := testing.AllocsPerRun(200, func() {
		e.ScheduleArg(50, nopArg, nil)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule+fire allocated %v objects/op, want 0", allocs)
	}
}

// TestEventPoolRecyclesObjects checks fired events are reused rather than
// reallocated, and that a stale handle to a fired (pooled, not yet reused)
// event cannot cancel anything.
func TestEventPoolRecyclesObjects(t *testing.T) {
	e := NewEngine()
	first := e.Schedule(10, func() {})
	e.Run()
	// first has fired and sits on the free list; canceling it is a no-op.
	e.Cancel(first)
	second := e.Schedule(5, func() {})
	if first != second {
		t.Fatal("fired event was not recycled from the free list")
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1 (stale Cancel must not affect the recycled event)", e.Pending())
	}
	e.Run()
	if e.Executed() != 2 {
		t.Fatalf("Executed() = %d, want 2", e.Executed())
	}
}
