package sim

// Ticker invokes a callback on every edge of a clock while it is armed. It is
// used by components that need periodic evaluation (e.g. core issue logic)
// but avoids wasting host time while the component is idle: a ticker can be
// paused and re-armed.
type Ticker struct {
	engine *Engine
	clock  Clock
	fn     func(now Time)
	armed  bool
	ev     *Event
	// tick is the edge callback bound once at construction, so arming and
	// periodic rescheduling never allocate a closure (see Engine.AtArg).
	tick func(any)
}

// NewTicker creates a paused ticker on the given clock. fn runs once per
// clock edge while the ticker is armed.
func NewTicker(engine *Engine, clock Clock, fn func(now Time)) *Ticker {
	t := &Ticker{engine: engine, clock: clock, fn: fn}
	t.tick = func(any) {
		// The event is firing: drop the handle so Pause never cancels a
		// recycled event object (events are pooled, see sim.Event).
		t.ev = nil
		if !t.armed {
			return
		}
		t.fn(t.engine.Now())
		if t.armed {
			t.scheduleNext(t.engine.Now().Add(t.clock.Period))
		}
	}
	return t
}

// Arm starts (or restarts) periodic callbacks beginning at the next clock
// edge at or after the current time. Arming an armed ticker is a no-op.
func (t *Ticker) Arm() {
	if t.armed {
		return
	}
	t.armed = true
	t.scheduleNext(t.clock.NextEdge(t.engine.Now()))
}

// Pause stops future callbacks. The ticker can be re-armed later.
func (t *Ticker) Pause() {
	t.armed = false
	if t.ev != nil {
		t.engine.Cancel(t.ev)
		t.ev = nil
	}
}

// Armed reports whether the ticker is currently scheduled.
func (t *Ticker) Armed() bool { return t.armed }

func (t *Ticker) scheduleNext(at Time) {
	t.ev = t.engine.AtArg(at, t.tick, nil)
}
