package sim

import (
	"testing"
	"testing/quick"
)

// queueUnderTest abstracts the production engine and the naive reference
// model so one script interpreter can drive both and demand bit-identical
// behaviour: same firing order, same per-RunUntil event counts, same final
// time, same trace hash.
type queueUnderTest interface {
	schedule(d Duration, fn func()) (cancel func())
	scheduleArg(d Duration, fn func(int), id int) (cancel func())
	runUntil(deadline Time) int
	stop()
	drain()
	now() Time
	hash() uint64
}

type realQueue struct{ e *Engine }

func (q realQueue) schedule(d Duration, fn func()) func() {
	ev := q.e.Schedule(d, fn)
	return func() { q.e.Cancel(ev) }
}

func (q realQueue) scheduleArg(d Duration, fn func(int), id int) func() {
	ev := q.e.ScheduleArg(d, func(a any) { fn(a.(int)) }, id)
	return func() { q.e.Cancel(ev) }
}

func (q realQueue) runUntil(deadline Time) int { return q.e.RunUntil(deadline) }
func (q realQueue) stop()                      { q.e.Stop() }
func (q realQueue) drain() {
	for q.e.Step() {
	}
}
func (q realQueue) now() Time    { return q.e.Now() }
func (q realQueue) hash() uint64 { return q.e.TraceHash() }

type refQueue struct{ r *refEngine }

func (q refQueue) schedule(d Duration, fn func()) func() {
	ev := q.r.schedule(d, fn)
	return func() { ev.canceled = true }
}

func (q refQueue) scheduleArg(d Duration, fn func(int), id int) func() {
	ev := q.r.schedule(d, func() { fn(id) })
	return func() { ev.canceled = true }
}

func (q refQueue) runUntil(deadline Time) int { return q.r.runUntil(deadline) }
func (q refQueue) stop()                      { q.r.stopped = true }
func (q refQueue) drain() {
	for q.r.step() {
	}
}
func (q refQueue) now() Time    { return q.r.now }
func (q refQueue) hash() uint64 { return q.r.hash }

// scriptResult is everything a script execution observes; both queue
// implementations must produce equal results for the same script.
type scriptResult struct {
	order []int
	runs  []int
	now   Time
	hash  uint64
}

// runQueueScript interprets a byte script against q. Each script byte is one
// action — schedule a closure or an arg-carrying event, cancel a previous
// handle, RunUntil a near deadline, or schedule an event that calls Stop
// mid-run — so fuzzing interleaves every public queue entry point with the
// fused dispatch path. Every fired event additionally consumes the next
// unconsumed script byte (if any) to decide whether to schedule a nested
// event, so nested scheduling replays identically on both engines as long as
// the firing order matches — which is the property under test.
func runQueueScript(t *testing.T, script []byte, q queueUnderTest) scriptResult {
	t.Helper()
	res := scriptResult{}
	nextID := 0
	pos := 0
	nextByte := func() (byte, bool) {
		if pos >= len(script) {
			return 0, false
		}
		b := script[pos]
		pos++
		return b, true
	}

	// cancels is indexed by event id and nilled when the event fires, per the
	// pooled-handle contract documented on sim.Event: a retained stale handle
	// may alias a recycled event.
	var cancels []func()
	var scheduleClosure func(d Duration)
	rec := func(id int) {
		cancels[id] = nil
		res.order = append(res.order, id)
		if b, ok := nextByte(); ok && b&3 == 3 {
			scheduleClosure(scriptDelay(b))
		}
	}
	scheduleClosure = func(d Duration) {
		id := nextID
		nextID++
		cancels = append(cancels, q.schedule(d, func() { rec(id) }))
	}
	scheduleArg := func(d Duration) {
		id := nextID
		nextID++
		cancels = append(cancels, q.scheduleArg(d, rec, id))
	}
	scheduleStop := func(d Duration) {
		id := nextID
		nextID++
		cancels = append(cancels, q.schedule(d, func() {
			cancels[id] = nil
			res.order = append(res.order, id)
			q.stop()
		}))
	}

	for pos < len(script) {
		b, _ := nextByte()
		switch b & 7 {
		case 0, 3, 7:
			scheduleClosure(scriptDelay(b))
		case 1:
			scheduleArg(scriptDelay(b))
		case 2:
			if len(cancels) > 0 {
				if c := cancels[int(b>>3)%len(cancels)]; c != nil {
					c()
					cancels[int(b>>3)%len(cancels)] = nil
				}
			}
		case 4:
			res.runs = append(res.runs, q.runUntil(q.now().Add(scriptDelay(b))))
		case 5:
			scheduleStop(scriptDelay(b))
		case 6:
			scheduleClosure(scriptDelay(b | 0x80)) // force the overflow heap
		}
	}
	q.drain()
	res.now = q.now()
	res.hash = q.hash()
	return res
}

// diffScriptResults fails the test when two executions of the same script
// observed different behaviour.
func diffScriptResults(t *testing.T, real, ref scriptResult) {
	t.Helper()
	if len(real.order) != len(ref.order) {
		t.Fatalf("engine fired %d events, reference fired %d", len(real.order), len(ref.order))
	}
	for i := range real.order {
		if real.order[i] != ref.order[i] {
			t.Fatalf("firing order diverges at %d: engine %v, reference %v", i, real.order, ref.order)
		}
	}
	if len(real.runs) != len(ref.runs) {
		t.Fatalf("RunUntil call counts differ: %v vs %v", real.runs, ref.runs)
	}
	for i := range real.runs {
		if real.runs[i] != ref.runs[i] {
			t.Fatalf("RunUntil #%d executed %d events on the engine, %d on the reference", i, real.runs[i], ref.runs[i])
		}
	}
	if real.now != ref.now {
		t.Fatalf("final time diverges: engine %v, reference %v", real.now, ref.now)
	}
	if real.hash != ref.hash {
		t.Fatalf("trace hash diverges: engine %#x, reference %#x", real.hash, ref.hash)
	}
}

func runScriptBothWays(t *testing.T, script []byte) {
	t.Helper()
	e := NewEngine()
	e.EnableTraceHash()
	real := runQueueScript(t, script, realQueue{e})
	if e.LiveEvents() != 0 {
		t.Fatalf("drained engine has %d live events, want 0", e.LiveEvents())
	}
	ref := runQueueScript(t, script, refQueue{&refEngine{hash: fnvOffset}})
	diffScriptResults(t, real, ref)
}

// FuzzEngineQueue feeds a byte-encoded script — interleaved schedule (At),
// AtArg, Cancel, RunUntil and Stop actions plus nested scheduling from
// callbacks — to the production engine (calendar ring + overflow heap + event
// pool + cached next candidate) and to the naive refEngine specification, and
// requires bit-identical execution: the same (time, seq) firing order, the
// same per-RunUntil event counts, the same final simulated time, and the same
// trace hash. It also asserts the event pool's live-object count returns to
// zero once the queue drains.
func FuzzEngineQueue(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0x01, 0x42, 0x81, 0xc3, 0x07, 0xff, 0x10})
	f.Add([]byte{0x03, 0x03, 0x03, 0x80, 0x80, 0x41, 0x02, 0x9f, 0x60, 0x33})
	// RunUntil slicing a schedule into segments, with a Stop landing mid-run.
	f.Add([]byte{0x00, 0x09, 0x85, 0x0c, 0x11, 0x04, 0x30, 0x2c, 0x06, 0x84})
	// Cancel racing the cached candidate: schedule, cancel, reschedule, run.
	f.Add([]byte{0x08, 0x02, 0x10, 0x0a, 0x04, 0x12, 0x86, 0x05, 0x44})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 512 {
			script = script[:512]
		}
		runScriptBothWays(t, script)
	})
}

// TestEngineQueueScriptProperty is the deterministic (go test) face of the
// fuzz harness: randomized scripts through testing/quick must hold the same
// engine-equals-reference property, so the interleaved At/AtArg/Cancel/
// RunUntil/Stop coverage runs on every CI test pass, not just fuzz runs.
func TestEngineQueueScriptProperty(t *testing.T) {
	prop := func(script []byte) bool {
		if len(script) > 512 {
			script = script[:512]
		}
		runScriptBothWays(t, script) // fails the test directly on divergence
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// scriptDelay maps an action byte to a delay that lands in the calendar
// window (low bytes) or the overflow heap (high bytes), so both queue levels
// are exercised by most scripts.
func scriptDelay(b byte) Duration {
	if b&0x80 != 0 {
		return Duration(int(b&0x7f))*2048 + 70_000 // beyond the ~65 ns window
	}
	return Duration(int(b) * 40) // inside the calendar ring
}

// TestEngineLiveEventsAccounting pins the live-event pool accounting: queued
// and canceled-but-undrained events count as live, and a fully drained queue
// returns to zero.
func TestEngineLiveEventsAccounting(t *testing.T) {
	e := NewEngine()
	if e.LiveEvents() != 0 {
		t.Fatalf("fresh engine has %d live events", e.LiveEvents())
	}
	a := e.Schedule(10, func() {})
	e.Schedule(20, func() {})
	if e.LiveEvents() != 2 {
		t.Fatalf("live = %d after two schedules, want 2", e.LiveEvents())
	}
	// A canceled event stays checked out until the queue drains past it.
	e.Cancel(a)
	if e.LiveEvents() != 2 {
		t.Fatalf("live = %d after cancel (undrained), want 2", e.LiveEvents())
	}
	e.Run()
	if e.LiveEvents() != 0 {
		t.Fatalf("live = %d after drain, want 0", e.LiveEvents())
	}
}

// TestEngineTraceHash pins the trace-hash fingerprint: identical schedules
// hash identically, and a schedule that executes different events (or the
// same events in a different order) hashes differently.
func TestEngineTraceHash(t *testing.T) {
	run := func(delays []Duration) uint64 {
		e := NewEngine()
		e.EnableTraceHash()
		for _, d := range delays {
			e.Schedule(d, func() {})
		}
		e.Run()
		return e.TraceHash()
	}
	a := run([]Duration{5, 10, 15})
	b := run([]Duration{5, 10, 15})
	c := run([]Duration{5, 10, 16})
	if a != b {
		t.Fatalf("identical runs hash differently: %#x vs %#x", a, b)
	}
	if a == c {
		t.Fatalf("different runs hash identically: %#x", a)
	}
	if (&Engine{}).TraceHash() != 0 {
		t.Fatal("trace hash should be zero before EnableTraceHash")
	}
}
