package sim

import (
	"testing"
)

// FuzzEngineQueue feeds a byte-encoded schedule/cancel/nested-schedule script
// to the production engine (calendar ring + overflow heap + event pool) and to
// the naive refEngine specification, and requires bit-identical execution
// order. Each input byte is one action; the same script drives both engines,
// so any divergence in ordering, cancellation, or pool recycling shows up as a
// mismatched firing log. It also asserts the event pool's live-object count
// returns to zero once the queue drains.
func FuzzEngineQueue(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0x01, 0x42, 0x81, 0xc3, 0x07, 0xff, 0x10})
	f.Add([]byte{0x03, 0x03, 0x03, 0x80, 0x80, 0x41, 0x02, 0x9f, 0x60, 0x33})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 512 {
			script = script[:512]
		}
		real := runQueueScript(t, script, true)
		ref := runQueueScript(t, script, false)
		if len(real) != len(ref) {
			t.Fatalf("engine fired %d events, reference fired %d", len(real), len(ref))
		}
		for i := range real {
			if real[i] != ref[i] {
				t.Fatalf("firing order diverges at %d: engine %v, reference %v", i, real, ref)
			}
		}
	})
}

// scriptDelay maps an action byte to a delay that lands in the calendar
// window (low bytes) or the overflow heap (high bytes), so both queue levels
// are exercised by most scripts.
func scriptDelay(b byte) Duration {
	if b&0x80 != 0 {
		return Duration(int(b&0x7f))*2048 + 70_000 // beyond the ~65 ns window
	}
	return Duration(int(b) * 40) // inside the calendar ring
}

// runQueueScript interprets the script against the production engine (real)
// or the reference model, returning the ids in firing order. Every fired
// event consumes the next unconsumed script byte (if any) to decide whether
// to schedule a nested event, so nested scheduling replays identically on
// both engines as long as the firing order matches — which is the property
// under test.
func runQueueScript(t *testing.T, script []byte, real bool) []int {
	t.Helper()
	var order []int
	nextID := 0
	pos := 0
	nextByte := func() (byte, bool) {
		if pos >= len(script) {
			return 0, false
		}
		b := script[pos]
		pos++
		return b, true
	}

	if real {
		e := NewEngine()
		var handles []*Event
		var schedule func(delay Duration)
		schedule = func(delay Duration) {
			id := nextID
			nextID++
			handles = append(handles, e.Schedule(delay, func() {
				handles[id] = nil
				order = append(order, id)
				if b, ok := nextByte(); ok && b&3 == 3 {
					schedule(scriptDelay(b))
				}
			}))
		}
		for pos < len(script) {
			b, _ := nextByte()
			switch b & 3 {
			case 0, 1, 3:
				schedule(scriptDelay(b))
			case 2:
				if len(handles) > 0 {
					i := int(b>>2) % len(handles)
					if handles[i] != nil {
						e.Cancel(handles[i])
						handles[i] = nil
					}
				}
			}
		}
		e.Run()
		if e.LiveEvents() != 0 {
			t.Fatalf("drained engine has %d live events, want 0", e.LiveEvents())
		}
		return order
	}

	r := &refEngine{}
	var handles []*refEvent
	var schedule func(delay Duration)
	schedule = func(delay Duration) {
		id := nextID
		nextID++
		handles = append(handles, r.schedule(delay, func() {
			handles[id] = nil
			order = append(order, id)
			if b, ok := nextByte(); ok && b&3 == 3 {
				schedule(scriptDelay(b))
			}
		}))
	}
	for pos < len(script) {
		b, _ := nextByte()
		switch b & 3 {
		case 0, 1, 3:
			schedule(scriptDelay(b))
		case 2:
			if len(handles) > 0 {
				i := int(b>>2) % len(handles)
				if handles[i] != nil {
					handles[i].canceled = true
					handles[i] = nil
				}
			}
		}
	}
	for r.step() {
	}
	return order
}

// TestEngineLiveEventsAccounting pins the live-event pool accounting: queued
// and canceled-but-undrained events count as live, and a fully drained queue
// returns to zero.
func TestEngineLiveEventsAccounting(t *testing.T) {
	e := NewEngine()
	if e.LiveEvents() != 0 {
		t.Fatalf("fresh engine has %d live events", e.LiveEvents())
	}
	a := e.Schedule(10, func() {})
	e.Schedule(20, func() {})
	if e.LiveEvents() != 2 {
		t.Fatalf("live = %d after two schedules, want 2", e.LiveEvents())
	}
	// A canceled event stays checked out until the queue drains past it.
	e.Cancel(a)
	if e.LiveEvents() != 2 {
		t.Fatalf("live = %d after cancel (undrained), want 2", e.LiveEvents())
	}
	e.Run()
	if e.LiveEvents() != 0 {
		t.Fatalf("live = %d after drain, want 0", e.LiveEvents())
	}
}

// TestEngineTraceHash pins the trace-hash fingerprint: identical schedules
// hash identically, and a schedule that executes different events (or the
// same events in a different order) hashes differently.
func TestEngineTraceHash(t *testing.T) {
	run := func(delays []Duration) uint64 {
		e := NewEngine()
		e.EnableTraceHash()
		for _, d := range delays {
			e.Schedule(d, func() {})
		}
		e.Run()
		return e.TraceHash()
	}
	a := run([]Duration{5, 10, 15})
	b := run([]Duration{5, 10, 15})
	c := run([]Duration{5, 10, 16})
	if a != b {
		t.Fatalf("identical runs hash differently: %#x vs %#x", a, b)
	}
	if a == c {
		t.Fatalf("different runs hash identically: %#x", a)
	}
	if (&Engine{}).TraceHash() != 0 {
		t.Fatal("trace hash should be zero before EnableTraceHash")
	}
}
