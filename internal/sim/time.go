// Package sim provides the discrete-event simulation engine used by every
// timing model in this repository: a deterministic event queue, a picosecond
// time base, and clock-domain helpers for the CPU (2.9 GHz) and MTTOP
// (600 MHz) domains described in Table 2 of the paper.
//
//ccsvm:deterministic
package sim

import "fmt"

// Time is an absolute simulated time in picoseconds.
//
// A picosecond base lets the 2.9 GHz CPU domain and the 600 MHz MTTOP domain
// coexist on one integer timeline with no rounding surprises: one CPU cycle is
// 345 ps and one MTTOP cycle is 1667 ps.
type Time int64

// Duration is a span of simulated time in picoseconds.
type Duration int64

// Common duration units.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns t shifted forward by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from earlier to t.
func (t Time) Sub(earlier Time) Duration { return Duration(t - earlier) }

// Nanoseconds reports the time as a float64 number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Seconds reports the time as a float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit.
func (t Time) String() string { return Duration(t).String() }

// Nanoseconds reports the duration as a float64 number of nanoseconds.
func (d Duration) Nanoseconds() float64 { return float64(d) / float64(Nanosecond) }

// Seconds reports the duration as a float64 number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// String formats the duration with an adaptive unit.
func (d Duration) String() string {
	switch {
	case d < Nanosecond:
		return fmt.Sprintf("%dps", int64(d))
	case d < Microsecond:
		return fmt.Sprintf("%.3fns", float64(d)/float64(Nanosecond))
	case d < Millisecond:
		return fmt.Sprintf("%.3fus", float64(d)/float64(Microsecond))
	case d < Second:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6fs", float64(d)/float64(Second))
	}
}

// Clock describes one clock domain by its period.
type Clock struct {
	// Period is the duration of one cycle in this domain.
	Period Duration
	// Name identifies the domain in stats and traces.
	Name string
}

// NewClock builds a clock from a frequency in hertz. The period is rounded to
// the nearest picosecond.
func NewClock(name string, hz float64) Clock {
	if hz <= 0 {
		panic(fmt.Sprintf("sim: non-positive clock frequency %v for %q", hz, name))
	}
	period := Duration(float64(Second)/hz + 0.5)
	if period < 1 {
		period = 1
	}
	return Clock{Period: period, Name: name}
}

// Cycles converts a cycle count in this domain into a duration.
func (c Clock) Cycles(n int64) Duration { return Duration(n) * c.Period }

// CyclesAt reports how many full cycles of this clock have elapsed at time t.
func (c Clock) CyclesAt(t Time) int64 {
	if c.Period == 0 {
		return 0
	}
	return int64(t) / int64(c.Period)
}

// NextEdge returns the first clock edge at or after t.
func (c Clock) NextEdge(t Time) Time {
	p := Time(c.Period)
	if p == 0 {
		return t
	}
	rem := t % p
	if rem == 0 {
		return t
	}
	return t + p - rem
}

// Hz reports the clock frequency in hertz.
func (c Clock) Hz() float64 { return float64(Second) / float64(c.Period) }
