package sim

import (
	"container/heap"
	"fmt"
)

// Event is a unit of scheduled work. Events are ordered by time and, for
// equal times, by the order in which they were scheduled, which makes every
// simulation fully deterministic.
type Event struct {
	when Time
	seq  uint64
	fn   func()
	// canceled marks events removed with Cancel; they stay in the heap and
	// are skipped when popped.
	canceled bool
	index    int
}

// When reports the simulated time at which the event fires.
func (e *Event) When() Time { return e.when }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	ev.index = -1
	return ev
}

// Engine is a single-threaded discrete-event simulation engine.
//
// All component models (caches, directories, network links, cores, devices)
// schedule closures on one shared Engine; the closures run in strict
// (time, insertion-order) order, so a simulation with the same inputs always
// produces bit-identical results.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool

	// pending counts non-canceled events still in the heap, so Pending() —
	// called from hot monitoring paths — is O(1) instead of a heap scan.
	pending int

	// executed counts events that have run, for debugging and stats.
	executed uint64
}

// NewEngine returns an engine positioned at time zero with an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending reports how many scheduled (non-canceled) events remain.
func (e *Engine) Pending() int { return e.pending }

// Executed reports how many events have run so far.
func (e *Engine) Executed() uint64 { return e.executed }

// At schedules fn to run at absolute time t. Scheduling in the past is an
// error in a component model, so it panics loudly rather than silently
// reordering time.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{when: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	e.pending++
	return ev
}

// Schedule schedules fn to run after delay relative to the current time.
func (e *Engine) Schedule(delay Duration, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.At(e.now.Add(delay), fn)
}

// Cancel removes a previously scheduled event. Canceling an already-fired or
// already-canceled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled || ev.index < 0 {
		return
	}
	ev.canceled = true
	ev.fn = nil
	e.pending--
}

// Step runs the single next event. It returns false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.when
		fn := ev.fn
		ev.fn = nil
		e.pending--
		e.executed++
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with times <= deadline. Events scheduled beyond the
// deadline remain queued. It returns the number of events executed.
func (e *Engine) RunUntil(deadline Time) int {
	e.stopped = false
	n := 0
	for !e.stopped {
		if len(e.events) == 0 {
			break
		}
		// Peek.
		next := e.events[0]
		if next.canceled {
			heap.Pop(&e.events)
			continue
		}
		if next.when > deadline {
			break
		}
		e.Step()
		n++
	}
	if e.now < deadline {
		e.now = deadline
	}
	return n
}

// RunFor executes events for the given duration from the current time.
func (e *Engine) RunFor(d Duration) int { return e.RunUntil(e.now.Add(d)) }

// Stop makes Run/RunUntil return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }
