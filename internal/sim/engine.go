package sim

import "fmt"

// Event is a unit of scheduled work. Events are ordered by time and, for
// equal times, by the order in which they were scheduled, which makes every
// simulation fully deterministic.
//
// Events are pooled: when an event fires (or a canceled event is drained from
// the queue) its object goes back on the engine's free list and is reused by
// a later At/Schedule call. A handle returned by At/Schedule is therefore
// valid only until the event fires; callers that retain handles must drop
// them when the callback runs (as Ticker does). Cancel on a handle whose
// event already fired is a no-op as long as the object has not been reused.
type Event struct {
	when Time
	seq  uint64
	// fn is the event's single callback, invoked as fn(arg). AtArg stores the
	// caller's bound callback and argument directly; At routes plain closures
	// through the callClosure trampoline with the closure in arg (func values
	// are pointer-shaped, so neither form boxes on the heap). One callback
	// word instead of the historical fn/afn pair keeps the Event at 48 bytes —
	// under one cache line — with the ordering keys (when, seq) leading the
	// struct where the sort and heap comparisons touch them.
	//
	//ccsvm:stateok // callbacks are re-registered by their owning components on restore
	fn  func(any)
	arg any
	// canceled marks events removed with Cancel; they stay queued and are
	// recycled when drained.
	canceled bool
	// index is the position in the overflow heap, or one of the sentinel
	// states below. int32 packs it beside canceled in the struct's last word;
	// an overflow heap of 2^31 events would be hundreds of gigabytes.
	index int32
}

// Sentinel index values for events that are not in the overflow heap.
const (
	// indexFiring marks an event popped from the heap but not yet released.
	indexFiring = -1
	// indexPooled marks an event sitting on the free list.
	indexPooled = -2
	// indexBucketed marks an event stored in a calendar bucket.
	indexBucketed = -3
)

// When reports the simulated time at which the event fires.
func (e *Event) When() Time { return e.when }

// callClosure is the trampoline behind At/Schedule: the scheduled closure
// rides in the event's arg slot, so every event dispatches through one
// uniform fn(arg) call.
func callClosure(a any) { a.(func())() }

// eventLess is the engine's total order: (time, seq).
func eventLess(a, b *Event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// Calendar-queue geometry: calBuckets buckets of 2^calShift picoseconds each
// form a ring covering the near future (64 buckets x 1024 ps = ~65 ns, enough
// for every per-cycle, per-hop, and DRAM-latency event of the modeled chips).
// Events beyond the window go to the binary heap instead and are popped from
// there; because simulated time only moves forward, a bucket slot never holds
// events from two different laps of the ring (see the invariant note on
// insert).
const (
	calShift      = 10
	calBuckets    = 64
	calBucketMask = calBuckets - 1
)

// calBucket holds the events of one bucket-width time slice, consumed from
// head. The slice is kept unsorted on insert and lazily sorted by (time, seq)
// the first time the bucket is drained; the backing array is reused once the
// bucket empties.
type calBucket struct {
	events []*Event
	head   int
	sorted bool
}

//ccsvm:hotpath
func (b *calBucket) push(ev *Event) {
	if b.head == len(b.events) {
		b.events = b.events[:0]
		b.head = 0
		b.sorted = true
	}
	if n := len(b.events); b.sorted && n > b.head && eventLess(ev, b.events[n-1]) {
		b.sorted = false
	}
	b.events = append(b.events, ev) //ccsvm:allocok // recycled backing array, grows to bucket high-water mark
}

// Engine is a single-threaded discrete-event simulation engine.
//
// All component models (caches, directories, network links, cores, devices)
// schedule closures on one shared Engine; the closures run in strict
// (time, insertion-order) order, so a simulation with the same inputs always
// produces bit-identical results.
//
// The queue is two-level: near-future events go into a bucketed calendar ring
// (O(1) insert, cheap pop), far-future events into a binary heap. Both
// structures drain in the same (time, seq) total order, so the split is
// invisible to component models. Event objects are free-listed (see Event).
//
// Dispatch is fused: the engine caches the next-event candidate (next) so the
// common Step — pop the head of the already-sorted current bucket, run it,
// promote its successor — never rescans the calendar ring or the heap top.
// The cache is invalidated by the only operations that can change the front
// of the queue: scheduling an event earlier than the candidate, and canceling
// the candidate itself.
//
//ccsvm:state
type Engine struct {
	now Time
	seq uint64

	// next is the cached next-event candidate: nil means unknown (recompute
	// via refill), non-nil means it is the earliest live event and sits at
	// the front of its container — the head of the sorted bucket at calScan,
	// or the top of the overflow heap.
	next *Event

	// overflow is a concrete binary min-heap ordered by eventLess; push/pop
	// are open-coded (heapPush/heapPopTop) so they inline without the
	// interface dispatch and any-boxing of container/heap.
	overflow []*Event
	stopped  bool

	// cal is the near-future bucket ring; calCount counts the entries that
	// still sit in buckets (including canceled ones awaiting drain); calScan
	// is a monotone lower bound on the smallest live bucket index, used to
	// resume the bucket scan without rescanning known-empty slots.
	cal      [calBuckets]calBucket
	calCount int
	calScan  int64

	// free is the event free list; fresh events are allocated in chunks.
	free []*Event

	// pending counts non-canceled events still queued, so Pending() — called
	// from hot monitoring paths — is O(1) instead of a queue scan.
	pending int

	// executed counts events that have run, for debugging and stats.
	executed uint64

	// live counts events checked out of the free list (scheduled or firing
	// but not yet released). The memtest subsystem asserts it returns to
	// zero at quiesce, which catches leaked or double-released events.
	live int

	// traceHash accumulates an order-sensitive hash of every executed event's
	// (time, seq) pair — a cheap fingerprint of the full event trace that the
	// determinism checks compare across same-seed runs. The mix runs
	// unconditionally (two multiplies per event, cheaper than a predicted
	// branch in the dispatch loop); traceOn only gates whether TraceHash
	// reports it.
	traceOn   bool
	traceHash uint64

	// preSchedule, when installed and armed, runs at the top of At/AtArg
	// before a sequence number is assigned (see SetScheduleHook). The armed
	// flag keeps the common schedule path at one predicted-false branch: the
	// exec layer arms it only while thread activations are pending.
	//ccsvm:stateok // bound by exec.Gate.Bind at construction; rebound on restore
	preSchedule func()
	hookArmed   bool
}

// NewEngine returns an engine positioned at time zero with an empty queue.
func NewEngine() *Engine {
	return &Engine{traceHash: fnvOffset}
}

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending reports how many scheduled (non-canceled) events remain.
func (e *Engine) Pending() int { return e.pending }

// Executed reports how many events have run so far.
func (e *Engine) Executed() uint64 { return e.executed }

// LiveEvents reports how many pooled event objects are currently checked out
// (queued — including canceled-but-undrained — or firing). A drained engine
// must report zero; anything else is a leak in the event pool.
func (e *Engine) LiveEvents() int { return e.live }

// EnableTraceHash starts accumulating an order-sensitive hash of every
// executed event's (time, seq) pair. Two runs of the same simulation are
// bit-identical iff they execute the same events in the same order, so equal
// trace hashes are the determinism contract's fingerprint.
func (e *Engine) EnableTraceHash() {
	e.traceOn = true
	e.traceHash = fnvOffset
}

// TraceHash returns the accumulated event-trace hash (zero until
// EnableTraceHash is called).
func (e *Engine) TraceHash() uint64 {
	if !e.traceOn {
		return 0
	}
	return e.traceHash
}

// FNV-1a parameters, used for the trace hash (folding whole 64-bit words
// instead of bytes: the mix only needs to be order-sensitive, not standard).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvMix(h, v uint64) uint64 {
	return (h ^ v) * fnvPrime
}

// eventChunk is how many Event objects one free-list refill allocates.
const eventChunk = 64

// alloc takes an event from the free list, refilling it a chunk at a time.
//
//ccsvm:pooled get
//ccsvm:hotpath
func (e *Engine) alloc() *Event {
	e.live++
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	chunk := make([]Event, eventChunk) //ccsvm:allocok // amortized chunk refill, 1/64 gets
	for i := range chunk {
		chunk[i].index = indexPooled
	}
	for i := 1; i < len(chunk); i++ {
		e.free = append(e.free, &chunk[i]) //ccsvm:allocok // free list grows with the chunk
	}
	return &chunk[0]
}

// release returns a drained event to the free list.
//
//ccsvm:pooled put
//ccsvm:hotpath
func (e *Engine) release(ev *Event) {
	if ev.index == indexPooled {
		panic("sim: double release of a pooled event")
	}
	e.live--
	ev.fn = nil
	ev.arg = nil
	ev.canceled = false
	ev.index = indexPooled
	e.free = append(e.free, ev) //ccsvm:allocok // free list returns to its high-water mark
}

// heapPush adds ev to the overflow heap and sifts it up. Open-coded
// container/heap.Push without the interface dispatch.
//
//ccsvm:hotpath
func (e *Engine) heapPush(ev *Event) {
	h := append(e.overflow, ev) //ccsvm:allocok // overflow heap grows to its high-water mark
	j := len(h) - 1
	ev.index = int32(j)
	for j > 0 {
		parent := (j - 1) / 2
		if !eventLess(h[j], h[parent]) {
			break
		}
		h[j], h[parent] = h[parent], h[j]
		h[j].index = int32(j)
		h[parent].index = int32(parent)
		j = parent
	}
	e.overflow = h
}

// heapPopTop removes the heap's minimum (h[0]) and sifts the displaced tail
// element down. Open-coded container/heap.Pop without the interface dispatch
// or any-boxing of the removed event.
//
//ccsvm:hotpath
func (e *Engine) heapPopTop() *Event {
	h := e.overflow
	top := h[0]
	top.index = indexFiring
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	h = h[:n]
	e.overflow = h
	if n > 1 {
		i := 0
		h[0].index = 0
		for {
			l := 2*i + 1
			if l >= n {
				break
			}
			m := l
			if r := l + 1; r < n && eventLess(h[r], h[l]) {
				m = r
			}
			if !eventLess(h[m], h[i]) {
				break
			}
			h[i], h[m] = h[m], h[i]
			h[i].index = int32(i)
			h[m].index = int32(m)
			i = m
		}
	} else if n == 1 {
		h[0].index = 0
	}
	return top
}

// insert places a scheduled event into the calendar window or the overflow
// heap, invalidating the cached next candidate when the new event precedes
// it. Invariant: every bucketed event's bucket index lies in
// [now>>calShift, now>>calShift + calBuckets), so a ring slot never mixes
// events from different laps — time only moves forward, and events further
// out go to the heap.
//
//ccsvm:hotpath
func (e *Engine) insert(ev *Event) {
	b := int64(ev.when) >> calShift
	if b-(int64(e.now)>>calShift) < calBuckets {
		ev.index = indexBucketed
		e.cal[b&calBucketMask].push(ev)
		if e.calCount == 0 || b < e.calScan {
			e.calScan = b
		}
		e.calCount++
	} else {
		e.heapPush(ev)
	}
	if e.next != nil && eventLess(ev, e.next) {
		e.next = nil
	}
}

// SetScheduleHook installs fn to run at the top of every At/AtArg, before
// the new event's sequence number is assigned. The exec layer uses it to
// activate threads whose operations completed earlier in the current event
// handler: their own scheduling must receive sequence numbers before anything
// the handler schedules afterwards, which keeps the event trace (and its
// hash) identical to a design that activated them synchronously at the
// completion point. The hook must not dispatch events; it may schedule
// (reentrant At/AtArg calls skip the hook via the caller's own guard).
func (e *Engine) SetScheduleHook(fn func()) { e.preSchedule = fn }

// ArmScheduleHook turns the installed schedule hook on or off. The caller
// arms it when there is pending work for the hook (the exec layer: parked
// threads with delivered completions) and disarms it when the work is gone,
// so the hot schedule path pays a branch, not an indirect call.
func (e *Engine) ArmScheduleHook(on bool) { e.hookArmed = on }

// At schedules fn to run at absolute time t. Scheduling in the past is an
// error in a component model, so it panics loudly rather than silently
// reordering time.
//
//ccsvm:hotpath
func (e *Engine) At(t Time, fn func()) *Event {
	if e.hookArmed {
		e.preSchedule()
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := e.alloc()
	ev.when, ev.seq, ev.fn, ev.arg = t, e.seq, callClosure, fn
	e.seq++
	e.insert(ev)
	e.pending++
	return ev
}

// AtArg schedules fn(arg) to run at absolute time t. It is the
// allocation-free variant of At for hot paths: fn is typically a callback
// bound once at component construction and arg a pooled message, so
// scheduling builds no closure. Pointer-shaped args do not escape to a fresh
// allocation when stored in the event.
//
//ccsvm:hotpath
func (e *Engine) AtArg(t Time, fn func(any), arg any) *Event {
	if e.hookArmed {
		e.preSchedule()
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := e.alloc()
	ev.when, ev.seq, ev.fn, ev.arg = t, e.seq, fn, arg
	e.seq++
	e.insert(ev)
	e.pending++
	return ev
}

// Schedule schedules fn to run after delay relative to the current time.
//
//ccsvm:hotpath
func (e *Engine) Schedule(delay Duration, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.At(e.now.Add(delay), fn)
}

// ScheduleArg schedules fn(arg) after delay relative to the current time; it
// is the allocation-free variant of Schedule (see AtArg).
//
//ccsvm:hotpath
func (e *Engine) ScheduleArg(delay Duration, fn func(any), arg any) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.AtArg(e.now.Add(delay), fn, arg)
}

// Cancel removes a previously scheduled event. Canceling an already-fired or
// already-canceled event is a no-op (but see Event: a handle kept after its
// event fired may be reused by a later schedule, so long-lived holders must
// drop handles when their callback runs).
//
//ccsvm:hotpath
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled || ev.index == indexPooled || ev.index == indexFiring {
		return
	}
	if ev == e.next {
		e.next = nil
	}
	ev.canceled = true
	ev.fn = nil
	ev.arg = nil
	e.pending--
}

// sortEvents orders a bucket tail by (time, seq) with an allocation-free
// insertion sort; buckets hold at most a bucket-width of events, so they stay
// small enough that insertion sort beats the reflective sort.Slice.
//
//ccsvm:hotpath
func sortEvents(evs []*Event) {
	for i := 1; i < len(evs); i++ {
		ev := evs[i]
		j := i - 1
		for j >= 0 && eventLess(ev, evs[j]) {
			evs[j+1] = evs[j]
			j--
		}
		evs[j+1] = ev
	}
}

// peekCal returns the earliest live bucketed event, draining canceled ones,
// or nil when the calendar is empty. It leaves calScan at the returned
// event's bucket index so the fused pop can remove it without rescanning.
//
//ccsvm:hotpath
func (e *Engine) peekCal() *Event {
	if e.calCount == 0 {
		return nil
	}
	if nowB := int64(e.now) >> calShift; e.calScan < nowB {
		e.calScan = nowB
	}
	for i := 0; i < calBuckets; i++ {
		b := e.calScan + int64(i)
		bk := &e.cal[b&calBucketMask]
		for bk.head < len(bk.events) {
			if !bk.sorted {
				sortEvents(bk.events[bk.head:])
				bk.sorted = true
			}
			ev := bk.events[bk.head]
			if ev.canceled {
				bk.events[bk.head] = nil
				bk.head++
				e.calCount--
				e.release(ev)
				continue
			}
			e.calScan = b
			return ev
		}
		if e.calCount == 0 {
			return nil
		}
	}
	panic("sim: calendar count positive but no event within the window")
}

// peekOverflow returns the earliest live heap event, draining canceled ones,
// or nil when the heap is empty.
//
//ccsvm:hotpath
func (e *Engine) peekOverflow() *Event {
	for len(e.overflow) > 0 {
		ev := e.overflow[0]
		if !ev.canceled {
			return ev
		}
		e.heapPopTop()
		e.release(ev)
	}
	return nil
}

// refill recomputes the cached next candidate from the two queue levels. It
// runs only when the cache is cold: at the start of a drain, after an
// insert-before-next or a Cancel of the candidate, and when a bucket empties
// or goes unsorted under the fused pop.
//
//ccsvm:hotpath
func (e *Engine) refill() *Event {
	cev := e.peekCal()
	hev := e.peekOverflow()
	switch {
	case cev == nil:
		e.next = hev
	case hev == nil || eventLess(cev, hev):
		e.next = cev
	default:
		e.next = hev
	}
	return e.next
}

// pop removes the cached candidate ev from its container and eagerly promotes
// its bucket successor when that is provably the global next: the bucket is
// still sorted from head and its new head precedes the heap minimum (heap[0]
// lower-bounds every heap event, canceled or not). Anything scheduled or
// canceled by the subsequent callback that could displace the promoted
// candidate invalidates the cache through insert/Cancel.
//
//ccsvm:hotpath
func (e *Engine) pop(ev *Event) {
	e.next = nil
	if ev.index == indexBucketed {
		// refill/promotion left calScan at this event's bucket, with the
		// event at the bucket head.
		bk := &e.cal[e.calScan&calBucketMask]
		bk.events[bk.head] = nil
		bk.head++
		e.calCount--
		ev.index = indexFiring
		if bk.sorted && bk.head < len(bk.events) {
			if c := bk.events[bk.head]; !c.canceled &&
				(len(e.overflow) == 0 || eventLess(c, e.overflow[0])) {
				e.next = c
			}
		}
	} else {
		e.heapPopTop()
	}
}

// Step runs the single next event. It returns false when the queue is empty.
//
// This is the fused dispatch path: one cached-candidate load (or one refill
// when cold), one pop with successor promotion, one unconditional trace mix,
// one callback.
//
//ccsvm:hotpath
func (e *Engine) Step() bool {
	ev := e.next
	if ev == nil {
		if ev = e.refill(); ev == nil {
			return false
		}
	}
	e.pop(ev)
	e.now = ev.when
	e.traceHash = fnvMix(fnvMix(e.traceHash, uint64(ev.when)), ev.seq)
	fn, arg := ev.fn, ev.arg
	// Recycle before dispatch so the callback's own scheduling reuses the
	// object immediately; the handle contract (see Event) makes this safe.
	e.release(ev)
	e.pending--
	e.executed++
	fn(arg)
	return true
}

// Run executes events until the queue is empty or Stop is called.
//
// The loop batch-drains through the cached candidate: while the current
// bucket stays sorted, each iteration is a pointer load, a pop, and the
// callback. The executed counter is hoisted out of the per-event path and
// flushed when the loop exits, so Executed() observed from inside a callback
// during Run may lag; it is exact whenever Run (or Step, which machines
// drive directly) returns.
func (e *Engine) Run() {
	e.stopped = false
	fired := uint64(0)
	for !e.stopped {
		ev := e.next
		if ev == nil {
			if ev = e.refill(); ev == nil {
				break
			}
		}
		e.pop(ev)
		e.now = ev.when
		e.traceHash = fnvMix(fnvMix(e.traceHash, uint64(ev.when)), ev.seq)
		fn, arg := ev.fn, ev.arg
		e.release(ev)
		e.pending--
		fired++
		fn(arg)
	}
	e.executed += fired
}

// RunUntil executes events with times <= deadline. Events scheduled beyond
// the deadline remain queued. It returns the number of events executed.
//
// The deadline check reads the cached next candidate — maintained across the
// contained Steps — instead of re-deriving the queue front with a full peek
// per iteration.
//
// When the loop drains normally (queue empty or next event past the
// deadline), simulated time fast-forwards to the deadline. When Stop ends the
// run early, time stays where the last event left it: events at or before the
// deadline may still be queued, and jumping past them would make a later
// Step move simulated time backwards.
func (e *Engine) RunUntil(deadline Time) int {
	e.stopped = false
	n := 0
	for !e.stopped {
		next := e.next
		if next == nil {
			if next = e.refill(); next == nil {
				break
			}
		}
		if next.when > deadline {
			break
		}
		e.Step()
		n++
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
	return n
}

// RunFor executes events for the given duration from the current time.
func (e *Engine) RunFor(d Duration) int { return e.RunUntil(e.now.Add(d)) }

// Stop makes Run/RunUntil return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Reset returns the engine to its construction state — time zero, empty
// queue, zero counters, fresh trace fingerprint — while keeping the event
// free list and the calendar/heap backing arrays at their high-water
// capacity. Queued events (canceled or not) are recycled onto the free list.
// It is the engine half of cross-run arena reuse: a Reset engine schedules
// its first warmup-sized burst of events without allocating, yet is
// observationally identical to a NewEngine. Reset panics if an event is
// still checked out and firing, which would mean it is being called from
// inside a callback.
func (e *Engine) Reset() {
	for i := range e.cal {
		bk := &e.cal[i]
		for j := bk.head; j < len(bk.events); j++ {
			ev := bk.events[j]
			bk.events[j] = nil
			e.release(ev)
		}
		bk.events = bk.events[:0]
		bk.head = 0
		bk.sorted = true
	}
	for i := range e.overflow {
		ev := e.overflow[i]
		e.overflow[i] = nil
		e.release(ev)
	}
	e.overflow = e.overflow[:0]
	if e.live != 0 {
		panic(fmt.Sprintf("sim: Reset with %d events still checked out", e.live))
	}
	e.now, e.seq = 0, 0
	e.next = nil
	e.stopped = false
	e.calCount, e.calScan = 0, 0
	e.pending = 0
	e.executed = 0
	e.traceHash = fnvOffset
	e.preSchedule = nil
	e.hookArmed = false
}
