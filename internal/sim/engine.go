package sim

import (
	"container/heap"
	"fmt"
)

// Event is a unit of scheduled work. Events are ordered by time and, for
// equal times, by the order in which they were scheduled, which makes every
// simulation fully deterministic.
//
// Events are pooled: when an event fires (or a canceled event is drained from
// the queue) its object goes back on the engine's free list and is reused by
// a later At/Schedule call. A handle returned by At/Schedule is therefore
// valid only until the event fires; callers that retain handles must drop
// them when the callback runs (as Ticker does). Cancel on a handle whose
// event already fired is a no-op as long as the object has not been reused.
type Event struct {
	when Time
	seq  uint64
	// Exactly one of fn and afn is set. afn carries its argument in arg so
	// hot paths can schedule without allocating a closure (see AtArg).
	//
	//ccsvm:stateok // callbacks are re-registered by their owning components on restore
	fn func()
	//ccsvm:stateok // callbacks are re-registered by their owning components on restore
	afn func(any)
	arg any
	// canceled marks events removed with Cancel; they stay queued and are
	// recycled when drained.
	canceled bool
	// index is the position in the overflow heap, or one of the sentinel
	// states below.
	index int
}

// Sentinel index values for events that are not in the overflow heap.
const (
	// indexFiring marks an event popped from the heap but not yet released.
	indexFiring = -1
	// indexPooled marks an event sitting on the free list.
	indexPooled = -2
	// indexBucketed marks an event stored in a calendar bucket.
	indexBucketed = -3
)

// When reports the simulated time at which the event fires.
func (e *Event) When() Time { return e.when }

// eventLess is the engine's total order: (time, seq).
func eventLess(a, b *Event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

type eventHeap []*Event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return eventLess(h[i], h[j]) }
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

//ccsvm:hotpath
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev) //ccsvm:allocok // overflow heap grows to its high-water mark
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	ev.index = indexFiring
	return ev
}

// Calendar-queue geometry: calBuckets buckets of 2^calShift picoseconds each
// form a ring covering the near future (64 buckets x 1024 ps = ~65 ns, enough
// for every per-cycle, per-hop, and DRAM-latency event of the modeled chips).
// Events beyond the window go to the binary heap instead and are popped from
// there; because simulated time only moves forward, a bucket slot never holds
// events from two different laps of the ring (see the invariant note on
// insert).
const (
	calShift      = 10
	calBuckets    = 64
	calBucketMask = calBuckets - 1
)

// calBucket holds the events of one bucket-width time slice, consumed from
// head. The slice is kept unsorted on insert and lazily sorted by (time, seq)
// the first time the bucket is drained; the backing array is reused once the
// bucket empties.
type calBucket struct {
	events []*Event
	head   int
	sorted bool
}

//ccsvm:hotpath
func (b *calBucket) push(ev *Event) {
	if b.head == len(b.events) {
		b.events = b.events[:0]
		b.head = 0
		b.sorted = true
	}
	if n := len(b.events); b.sorted && n > b.head && eventLess(ev, b.events[n-1]) {
		b.sorted = false
	}
	b.events = append(b.events, ev) //ccsvm:allocok // recycled backing array, grows to bucket high-water mark
}

// Engine is a single-threaded discrete-event simulation engine.
//
// All component models (caches, directories, network links, cores, devices)
// schedule closures on one shared Engine; the closures run in strict
// (time, insertion-order) order, so a simulation with the same inputs always
// produces bit-identical results.
//
// The queue is two-level: near-future events go into a bucketed calendar ring
// (O(1) insert, cheap pop), far-future events into a binary heap. Both
// structures drain in the same (time, seq) total order, so the split is
// invisible to component models. Event objects are free-listed (see Event).
//
//ccsvm:state
type Engine struct {
	now      Time
	seq      uint64
	overflow eventHeap
	stopped  bool

	// cal is the near-future bucket ring; calCount counts the entries that
	// still sit in buckets (including canceled ones awaiting drain); calScan
	// is a monotone lower bound on the smallest live bucket index, used to
	// resume the bucket scan without rescanning known-empty slots.
	cal      [calBuckets]calBucket
	calCount int
	calScan  int64

	// free is the event free list; fresh events are allocated in chunks.
	free []*Event

	// pending counts non-canceled events still queued, so Pending() — called
	// from hot monitoring paths — is O(1) instead of a queue scan.
	pending int

	// executed counts events that have run, for debugging and stats.
	executed uint64

	// live counts events checked out of the free list (scheduled or firing
	// but not yet released). The memtest subsystem asserts it returns to
	// zero at quiesce, which catches leaked or double-released events.
	live int

	// traceOn/traceHash accumulate an order-sensitive hash of every executed
	// event's (time, seq) pair — a cheap fingerprint of the full event trace
	// that the determinism checks compare across same-seed runs.
	traceOn   bool
	traceHash uint64
}

// NewEngine returns an engine positioned at time zero with an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending reports how many scheduled (non-canceled) events remain.
func (e *Engine) Pending() int { return e.pending }

// Executed reports how many events have run so far.
func (e *Engine) Executed() uint64 { return e.executed }

// LiveEvents reports how many pooled event objects are currently checked out
// (queued — including canceled-but-undrained — or firing). A drained engine
// must report zero; anything else is a leak in the event pool.
func (e *Engine) LiveEvents() int { return e.live }

// EnableTraceHash starts accumulating an order-sensitive hash of every
// executed event's (time, seq) pair. Two runs of the same simulation are
// bit-identical iff they execute the same events in the same order, so equal
// trace hashes are the determinism contract's fingerprint.
func (e *Engine) EnableTraceHash() {
	e.traceOn = true
	e.traceHash = fnvOffset
}

// TraceHash returns the accumulated event-trace hash (zero until
// EnableTraceHash is called).
func (e *Engine) TraceHash() uint64 { return e.traceHash }

// FNV-1a parameters, used for the trace hash (folding whole 64-bit words
// instead of bytes: the mix only needs to be order-sensitive, not standard).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvMix(h, v uint64) uint64 {
	return (h ^ v) * fnvPrime
}

// eventChunk is how many Event objects one free-list refill allocates.
const eventChunk = 64

// alloc takes an event from the free list, refilling it a chunk at a time.
//
//ccsvm:pooled get
//ccsvm:hotpath
func (e *Engine) alloc() *Event {
	e.live++
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	chunk := make([]Event, eventChunk) //ccsvm:allocok // amortized chunk refill, 1/64 gets
	for i := range chunk {
		chunk[i].index = indexPooled
	}
	for i := 1; i < len(chunk); i++ {
		e.free = append(e.free, &chunk[i]) //ccsvm:allocok // free list grows with the chunk
	}
	return &chunk[0]
}

// release returns a drained event to the free list.
//
//ccsvm:pooled put
//ccsvm:hotpath
func (e *Engine) release(ev *Event) {
	if ev.index == indexPooled {
		panic("sim: double release of a pooled event")
	}
	e.live--
	ev.fn = nil
	ev.afn = nil
	ev.arg = nil
	ev.canceled = false
	ev.index = indexPooled
	e.free = append(e.free, ev) //ccsvm:allocok // free list returns to its high-water mark
}

// insert places a scheduled event into the calendar window or the overflow
// heap. Invariant: every bucketed event's bucket index lies in
// [now>>calShift, now>>calShift + calBuckets), so a ring slot never mixes
// events from different laps — time only moves forward, and events further
// out go to the heap.
//
//ccsvm:hotpath
func (e *Engine) insert(ev *Event) {
	b := int64(ev.when) >> calShift
	if b-(int64(e.now)>>calShift) < calBuckets {
		ev.index = indexBucketed
		e.cal[b&calBucketMask].push(ev)
		if e.calCount == 0 || b < e.calScan {
			e.calScan = b
		}
		e.calCount++
	} else {
		heap.Push(&e.overflow, ev)
	}
}

// At schedules fn to run at absolute time t. Scheduling in the past is an
// error in a component model, so it panics loudly rather than silently
// reordering time.
//
//ccsvm:hotpath
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := e.alloc()
	ev.when, ev.seq, ev.fn = t, e.seq, fn
	e.seq++
	e.insert(ev)
	e.pending++
	return ev
}

// AtArg schedules fn(arg) to run at absolute time t. It is the
// allocation-free variant of At for hot paths: fn is typically a callback
// bound once at component construction and arg a pooled message, so
// scheduling builds no closure. Pointer-shaped args do not escape to a fresh
// allocation when stored in the event.
//
//ccsvm:hotpath
func (e *Engine) AtArg(t Time, fn func(any), arg any) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := e.alloc()
	ev.when, ev.seq, ev.afn, ev.arg = t, e.seq, fn, arg
	e.seq++
	e.insert(ev)
	e.pending++
	return ev
}

// Schedule schedules fn to run after delay relative to the current time.
//
//ccsvm:hotpath
func (e *Engine) Schedule(delay Duration, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.At(e.now.Add(delay), fn)
}

// ScheduleArg schedules fn(arg) after delay relative to the current time; it
// is the allocation-free variant of Schedule (see AtArg).
//
//ccsvm:hotpath
func (e *Engine) ScheduleArg(delay Duration, fn func(any), arg any) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.AtArg(e.now.Add(delay), fn, arg)
}

// Cancel removes a previously scheduled event. Canceling an already-fired or
// already-canceled event is a no-op (but see Event: a handle kept after its
// event fired may be reused by a later schedule, so long-lived holders must
// drop handles when their callback runs).
//
//ccsvm:hotpath
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled || ev.index == indexPooled || ev.index == indexFiring {
		return
	}
	ev.canceled = true
	ev.fn = nil
	ev.afn = nil
	ev.arg = nil
	e.pending--
}

// sortEvents orders a bucket tail by (time, seq) with an allocation-free
// insertion sort; buckets hold at most a bucket-width of events, so they stay
// small enough that insertion sort beats the reflective sort.Slice.
//
//ccsvm:hotpath
func sortEvents(evs []*Event) {
	for i := 1; i < len(evs); i++ {
		ev := evs[i]
		j := i - 1
		for j >= 0 && eventLess(ev, evs[j]) {
			evs[j+1] = evs[j]
			j--
		}
		evs[j+1] = ev
	}
}

// peekCal returns the earliest live bucketed event, draining canceled ones,
// or nil when the calendar is empty. It leaves calScan at the returned
// event's bucket index so popNext can remove it without rescanning.
//
//ccsvm:hotpath
func (e *Engine) peekCal() *Event {
	if e.calCount == 0 {
		return nil
	}
	if nowB := int64(e.now) >> calShift; e.calScan < nowB {
		e.calScan = nowB
	}
	for i := 0; i < calBuckets; i++ {
		b := e.calScan + int64(i)
		bk := &e.cal[b&calBucketMask]
		for bk.head < len(bk.events) {
			if !bk.sorted {
				sortEvents(bk.events[bk.head:])
				bk.sorted = true
			}
			ev := bk.events[bk.head]
			if ev.canceled {
				bk.events[bk.head] = nil
				bk.head++
				e.calCount--
				e.release(ev)
				continue
			}
			e.calScan = b
			return ev
		}
		if e.calCount == 0 {
			return nil
		}
	}
	panic("sim: calendar count positive but no event within the window")
}

// peekOverflow returns the earliest live heap event, draining canceled ones,
// or nil when the heap is empty.
//
//ccsvm:hotpath
func (e *Engine) peekOverflow() *Event {
	for len(e.overflow) > 0 {
		ev := e.overflow[0]
		if !ev.canceled {
			return ev
		}
		heap.Pop(&e.overflow)
		e.release(ev)
	}
	return nil
}

// peek returns the next event in (time, seq) order without removing it, or
// nil when the queue is empty.
//
//ccsvm:hotpath
func (e *Engine) peek() *Event {
	cev := e.peekCal()
	hev := e.peekOverflow()
	switch {
	case cev == nil:
		return hev
	case hev == nil || eventLess(cev, hev):
		return cev
	default:
		return hev
	}
}

// popNext removes and returns the next event, or nil when the queue is empty.
//
//ccsvm:hotpath
func (e *Engine) popNext() *Event {
	ev := e.peek()
	if ev == nil {
		return nil
	}
	if ev.index == indexBucketed {
		// peek left calScan at this event's bucket.
		bk := &e.cal[e.calScan&calBucketMask]
		bk.events[bk.head] = nil
		bk.head++
		e.calCount--
		ev.index = indexFiring
	} else {
		heap.Pop(&e.overflow)
	}
	return ev
}

// Step runs the single next event. It returns false when the queue is empty.
//
//ccsvm:hotpath
func (e *Engine) Step() bool {
	ev := e.popNext()
	if ev == nil {
		return false
	}
	e.now = ev.when
	if e.traceOn {
		e.traceHash = fnvMix(fnvMix(e.traceHash, uint64(ev.when)), ev.seq)
	}
	fn, afn, arg := ev.fn, ev.afn, ev.arg
	// Recycle before dispatch so the callback's own scheduling reuses the
	// object immediately; the handle contract (see Event) makes this safe.
	e.release(ev)
	e.pending--
	e.executed++
	if afn != nil {
		afn(arg)
	} else {
		fn()
	}
	return true
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with times <= deadline. Events scheduled beyond
// the deadline remain queued. It returns the number of events executed.
//
// When the loop drains normally (queue empty or next event past the
// deadline), simulated time fast-forwards to the deadline. When Stop ends the
// run early, time stays where the last event left it: events at or before the
// deadline may still be queued, and jumping past them would make a later
// Step move simulated time backwards.
func (e *Engine) RunUntil(deadline Time) int {
	e.stopped = false
	n := 0
	for !e.stopped {
		next := e.peek()
		if next == nil || next.when > deadline {
			break
		}
		e.Step()
		n++
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
	return n
}

// RunFor executes events for the given duration from the current time.
func (e *Engine) RunFor(d Duration) int { return e.RunUntil(e.now.Add(d)) }

// Stop makes Run/RunUntil return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }
