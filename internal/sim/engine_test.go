package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClockBasics(t *testing.T) {
	cpu := NewClock("cpu", 2.9e9)
	if cpu.Period != 345 {
		t.Fatalf("cpu period = %d ps, want 345", cpu.Period)
	}
	mttop := NewClock("mttop", 600e6)
	if mttop.Period != 1667 {
		t.Fatalf("mttop period = %d ps, want 1667", mttop.Period)
	}
	if got := cpu.Cycles(10); got != 3450 {
		t.Fatalf("cpu.Cycles(10) = %v, want 3450", got)
	}
	if got := cpu.NextEdge(Time(346)); got != 690 {
		t.Fatalf("NextEdge(346) = %v, want 690", got)
	}
	if got := cpu.NextEdge(Time(690)); got != 690 {
		t.Fatalf("NextEdge(690) = %v, want 690 (already an edge)", got)
	}
	if hz := cpu.Hz(); hz < 2.85e9 || hz > 2.95e9 {
		t.Fatalf("cpu.Hz() = %v, want roughly 2.9e9", hz)
	}
}

func TestNewClockPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero frequency")
		}
	}()
	NewClock("bad", 0)
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500 * Picosecond, "500ps"},
		{2 * Nanosecond, "2.000ns"},
		{3 * Microsecond, "3.000us"},
		{4 * Millisecond, "4.000ms"},
		{2 * Second, "2.000000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	// Same-time events run in scheduling order.
	e.Schedule(20, func() { order = append(order, 4) })
	e.Run()
	want := []int{1, 2, 4, 3}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now() = %v, want 30", e.Now())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.Schedule(10, func() {
		times = append(times, e.Now())
		e.Schedule(5, func() {
			times = append(times, e.Now())
		})
	})
	e.Run()
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Fatalf("times = %v, want [10 15]", times)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.Schedule(10, func() { ran = true })
	e.Cancel(ev)
	e.Run()
	if ran {
		t.Fatal("canceled event ran")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, d := range []Duration{5, 15, 25} {
		d := d
		e.Schedule(d, func() { fired = append(fired, e.Now()) })
	}
	n := e.RunUntil(20)
	if n != 2 {
		t.Fatalf("RunUntil executed %d events, want 2", n)
	}
	if e.Now() != 20 {
		t.Fatalf("Now() = %v, want 20", e.Now())
	}
	e.Run()
	if len(fired) != 3 || fired[2] != 25 {
		t.Fatalf("fired = %v, want final event at 25", fired)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic when scheduling in the past")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(Duration(i+1), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3 after Stop", count)
	}
}

// TestEngineDeterminism is a property test: any batch of scheduled events
// executes in the same order regardless of how the random delays were drawn,
// when replayed with the same seed.
func TestEngineDeterminism(t *testing.T) {
	run := func(seed int64) []int {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var order []int
		for i := 0; i < 200; i++ {
			i := i
			e.Schedule(Duration(rng.Intn(50)), func() { order = append(order, i) })
		}
		e.Run()
		return order
	}
	f := func(seed int64) bool {
		a := run(seed)
		b := run(seed)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	clk := Clock{Period: 10, Name: "test"}
	var ticks []Time
	tk := NewTicker(e, clk, func(now Time) {
		ticks = append(ticks, now)
		if len(ticks) == 5 {
			e.Stop()
		}
	})
	tk.Arm()
	// A sentinel event far in the future keeps the queue non-empty.
	e.Schedule(1000000, func() {})
	e.Run()
	if len(ticks) != 5 {
		t.Fatalf("got %d ticks, want 5", len(ticks))
	}
	for i, tm := range ticks {
		if tm != Time(i*10) {
			t.Fatalf("tick %d at %v, want %v", i, tm, Time(i*10))
		}
	}
	tk.Pause()
	if tk.Armed() {
		t.Fatal("ticker still armed after Pause")
	}
}

func TestTickerPauseStopsCallbacks(t *testing.T) {
	e := NewEngine()
	clk := Clock{Period: 10, Name: "test"}
	count := 0
	var tk *Ticker
	tk = NewTicker(e, clk, func(now Time) {
		count++
		if count == 3 {
			tk.Pause()
		}
	})
	tk.Arm()
	e.Schedule(1000, func() {})
	e.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

// TestPendingCounter exercises the O(1) pending counter against schedule,
// cancel, double-cancel, cancel-after-fire, and partial-run sequences.
func TestPendingCounter(t *testing.T) {
	e := NewEngine()
	if e.Pending() != 0 {
		t.Fatalf("fresh engine Pending() = %d", e.Pending())
	}
	a := e.At(10, func() {})
	b := e.At(20, func() {})
	c := e.At(30, func() {})
	if e.Pending() != 3 {
		t.Fatalf("Pending() = %d, want 3", e.Pending())
	}
	e.Cancel(b)
	if e.Pending() != 2 {
		t.Fatalf("after cancel Pending() = %d, want 2", e.Pending())
	}
	e.Cancel(b) // double cancel is a no-op
	if e.Pending() != 2 {
		t.Fatalf("after double cancel Pending() = %d, want 2", e.Pending())
	}
	if !e.Step() {
		t.Fatal("Step found no event")
	}
	if e.Pending() != 1 {
		t.Fatalf("after step Pending() = %d, want 1", e.Pending())
	}
	e.Cancel(a) // already fired: no-op
	if e.Pending() != 1 {
		t.Fatalf("cancel of fired event changed Pending() to %d", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("after Run Pending() = %d, want 0", e.Pending())
	}
	e.Cancel(c)
	if e.Pending() != 0 {
		t.Fatalf("cancel after run changed Pending() to %d", e.Pending())
	}
	// RunUntil leaves later events pending.
	e.Schedule(5, func() {})
	e.Schedule(500, func() {})
	e.RunFor(10)
	if e.Pending() != 1 {
		t.Fatalf("after RunFor Pending() = %d, want 1", e.Pending())
	}
}
