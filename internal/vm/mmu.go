package vm

import (
	"fmt"

	"ccsvm/internal/mem"
	"ccsvm/internal/stats"
)

// Fault describes a translation failure that must be handled by the OS (on a
// CPU core) or forwarded through the MIFD (from an MTTOP core).
type Fault struct {
	// VA is the faulting virtual address.
	VA mem.VAddr
	// Write reports whether the faulting access was a store.
	Write bool
	// Root is the CR3 value of the faulting process.
	Root mem.PAddr
}

// Error implements error so a Fault can flow through error paths in tests.
func (f *Fault) Error() string {
	kind := "read"
	if f.Write {
		kind = "write"
	}
	return fmt.Sprintf("page fault: %s of %#x (cr3 %#x)", kind, uint64(f.VA), uint64(f.Root))
}

// MMU is one core's address-translation unit: a TLB backed by a hardware
// page-table walker that reads PTEs through the core's own L1 cache port, as
// the paper's x86-faithful design requires.
type MMU struct {
	tlb    *TLB
	port   mem.Port
	phys   *mem.Physical
	root   mem.PAddr
	hasCR3 bool

	walks  *stats.Counter
	faults *stats.Counter
}

// NewMMU builds an MMU that performs page walks through the given cache port,
// reading PTE values from the machine's functional physical memory.
func NewMMU(tlbCfg TLBConfig, port mem.Port, phys *mem.Physical, reg *stats.Registry) *MMU {
	return &MMU{
		tlb:    NewTLB(tlbCfg, reg),
		port:   port,
		phys:   phys,
		walks:  reg.Counter(tlbCfg.Name + ".walks"),
		faults: reg.Counter(tlbCfg.Name + ".faults"),
	}
}

// SetRoot loads the CR3 equivalent: the physical address of the current
// process's page-table root. Changing the root flushes the TLB.
func (m *MMU) SetRoot(root mem.PAddr) {
	if m.hasCR3 && m.root == root {
		return
	}
	m.root = root
	m.hasCR3 = true
	m.tlb.Flush()
}

// Root returns the current translation root.
func (m *MMU) Root() mem.PAddr { return m.root }

// TLB exposes the MMU's TLB (the MIFD flushes MTTOP TLBs on shootdown).
func (m *MMU) TLB() *TLB { return m.tlb }

// Translate resolves va. On success done(pa, nil) runs at the time the
// translation is available (immediately for a TLB hit, after the walk's
// memory accesses for a miss). On a translation failure done(0, fault) runs
// and the TLB is left unchanged; the caller is responsible for retrying after
// the fault is serviced.
func (m *MMU) Translate(va mem.VAddr, write bool, done func(pa mem.PAddr, fault *Fault)) {
	if !m.hasCR3 {
		panic("vm: translate before SetRoot")
	}
	if frame, _, ok := m.tlb.Lookup(va); ok {
		done(mem.Translate(frame, va), nil)
		return
	}
	m.walk(va, write, done)
}

// walk performs the two dependent PTE reads of the hardware walker through
// the cache hierarchy.
func (m *MMU) walk(va mem.VAddr, write bool, done func(pa mem.PAddr, fault *Fault)) {
	m.walks.Inc()
	l1Addr := L1EntryAddr(m.root, va)
	m.readPTE(l1Addr, func(l1 PTE) {
		if !l1.Present() {
			m.faults.Inc()
			done(0, &Fault{VA: va, Write: write, Root: m.root})
			return
		}
		l2Addr := L2EntryAddr(l1.Frame().Addr(), va)
		m.readPTE(l2Addr, func(pte PTE) {
			if !pte.Present() {
				m.faults.Inc()
				done(0, &Fault{VA: va, Write: write, Root: m.root})
				return
			}
			m.tlb.Insert(va, pte.Frame(), pte.Writable())
			done(mem.Translate(pte.Frame(), va), nil)
		})
	})
}

// readPTE issues a timed read of one PTE through the cache port; the value is
// read functionally when the access completes.
func (m *MMU) readPTE(addr mem.PAddr, use func(PTE)) {
	m.port.Access(mem.Request{Type: mem.Read, Addr: addr, Size: 8}, func() {
		use(PTE(m.phys.ReadUint64(addr)))
	})
}

// Walks reports how many page walks this MMU performed.
func (m *MMU) Walks() uint64 { return m.walks.Value() }

// Faults reports how many page faults this MMU raised.
func (m *MMU) Faults() uint64 { return m.faults.Value() }
