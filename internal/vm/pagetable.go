// Package vm implements the shared-virtual-memory hardware of the CCSVM
// chip: per-process two-level page tables, per-core TLBs, hardware page-table
// walkers that fetch translations through the cache hierarchy, and the page
// fault / TLB shootdown machinery described in Section 3.2.1 of the paper.
package vm

import (
	"fmt"

	"ccsvm/internal/mem"
)

// Two-level page table geometry: the root (level 1) and each level-2 table
// occupy exactly one 4 KB frame of 512 eight-byte entries, covering a 1 GB
// virtual address space per process. This is a compressed version of x86-64's
// four-level tree that preserves what the evaluation measures: a TLB miss
// costs dependent memory reads through the cache hierarchy.
const (
	// EntriesPerTable is the number of PTEs in one table page.
	EntriesPerTable = mem.PageSize / 8
	// level2Shift is the bit position of the level-2 index.
	level2Shift = mem.PageShift
	// level1Shift is the bit position of the root index.
	level1Shift = mem.PageShift + 9
	// VASpaceBits is the number of virtual address bits translated.
	VASpaceBits = level1Shift + 9
	// MaxVAddr is the first virtual address beyond the translatable range.
	MaxVAddr = mem.VAddr(1) << VASpaceBits
)

// PTE is a page-table entry: bit 0 is the present bit, bit 1 the writable
// bit, and bits 12+ hold the frame number.
type PTE uint64

// NewPTE builds a present entry pointing at the given frame.
func NewPTE(frame mem.FrameNumber, writable bool) PTE {
	e := PTE(frame.Addr()) | 1
	if writable {
		e |= 2
	}
	return e
}

// Present reports whether the entry maps a page.
func (e PTE) Present() bool { return e&1 != 0 }

// Writable reports whether the mapping allows stores.
func (e PTE) Writable() bool { return e&2 != 0 }

// Frame returns the mapped physical frame.
func (e PTE) Frame() mem.FrameNumber { return mem.FrameOf(mem.PAddr(e) &^ (mem.PageSize - 1)) }

// indexes splits a virtual address into its level-1 and level-2 indexes.
func indexes(va mem.VAddr) (l1, l2 uint64) {
	return (uint64(va) >> level1Shift) % EntriesPerTable, (uint64(va) >> level2Shift) % EntriesPerTable
}

// L1EntryAddr returns the physical address of the root entry for va.
func L1EntryAddr(root mem.PAddr, va mem.VAddr) mem.PAddr {
	l1, _ := indexes(va)
	return root + mem.PAddr(l1*8)
}

// L2EntryAddr returns the physical address of the level-2 entry for va, given
// the level-2 table's base.
func L2EntryAddr(table mem.PAddr, va mem.VAddr) mem.PAddr {
	_, l2 := indexes(va)
	return table + mem.PAddr(l2*8)
}

// PageTable manipulates a two-level page table stored in physical memory.
// The OS uses it functionally (the timed PTE stores are issued separately by
// the fault handler); the hardware walkers read the same bytes through the
// cache hierarchy.
//
//ccsvm:state
type PageTable struct {
	phys *mem.Physical
	root mem.PAddr
	// allocFrame hands out a zeroed frame for a new level-2 table.
	//
	//ccsvm:stateok // rebound to the kernel frame allocator on restore
	allocFrame func() mem.FrameNumber
}

// NewPageTable creates an empty page table whose root occupies the given
// frame. allocFrame is called when a new level-2 table page is needed.
func NewPageTable(phys *mem.Physical, rootFrame mem.FrameNumber, allocFrame func() mem.FrameNumber) *PageTable {
	phys.ZeroFrame(rootFrame)
	return &PageTable{phys: phys, root: rootFrame.Addr(), allocFrame: allocFrame}
}

// Root returns the physical address of the root table (the CR3 value).
func (pt *PageTable) Root() mem.PAddr { return pt.root }

// Map installs a translation from the page containing va to the given frame.
// It creates the level-2 table if necessary and returns the physical address
// of the PTE it wrote, so a timed store can be replayed through the caches.
func (pt *PageTable) Map(va mem.VAddr, frame mem.FrameNumber, writable bool) mem.PAddr {
	if va >= MaxVAddr {
		panic(fmt.Sprintf("vm: virtual address %#x beyond the %d-bit space", uint64(va), VASpaceBits))
	}
	l1Addr := L1EntryAddr(pt.root, va)
	l1 := PTE(pt.phys.ReadUint64(l1Addr))
	var tableBase mem.PAddr
	if !l1.Present() {
		f := pt.allocFrame()
		pt.phys.ZeroFrame(f)
		pt.phys.WriteUint64(l1Addr, uint64(NewPTE(f, true)))
		tableBase = f.Addr()
	} else {
		tableBase = l1.Frame().Addr()
	}
	l2Addr := L2EntryAddr(tableBase, va)
	pt.phys.WriteUint64(l2Addr, uint64(NewPTE(frame, writable)))
	return l2Addr
}

// Unmap removes the translation for the page containing va, returning the
// address of the cleared PTE and whether a mapping existed.
func (pt *PageTable) Unmap(va mem.VAddr) (mem.PAddr, bool) {
	l1 := PTE(pt.phys.ReadUint64(L1EntryAddr(pt.root, va)))
	if !l1.Present() {
		return 0, false
	}
	l2Addr := L2EntryAddr(l1.Frame().Addr(), va)
	pte := PTE(pt.phys.ReadUint64(l2Addr))
	if !pte.Present() {
		return 0, false
	}
	pt.phys.WriteUint64(l2Addr, 0)
	return l2Addr, true
}

// Lookup translates va functionally, returning the PTE and whether it is
// present. The hardware walkers do the same reads with timing.
func (pt *PageTable) Lookup(va mem.VAddr) (PTE, bool) {
	return LookupIn(pt.phys, pt.root, va)
}

// L2EntryAddrFor returns the physical address of the level-2 PTE that maps va
// in the page table rooted at root. It requires the level-2 table to exist
// (i.e. the page is mapped or its region has been walked before); the kernel
// uses it to re-issue the PTE's address for a fault that lost a mapping race.
func L2EntryAddrFor(phys *mem.Physical, root mem.PAddr, va mem.VAddr) mem.PAddr {
	l1 := PTE(phys.ReadUint64(L1EntryAddr(root, va)))
	if !l1.Present() {
		panic(fmt.Sprintf("vm: L2EntryAddrFor on unmapped region %#x", uint64(va)))
	}
	return L2EntryAddr(l1.Frame().Addr(), va)
}

// LookupIn walks an arbitrary page table rooted at root.
func LookupIn(phys *mem.Physical, root mem.PAddr, va mem.VAddr) (PTE, bool) {
	l1 := PTE(phys.ReadUint64(L1EntryAddr(root, va)))
	if !l1.Present() {
		return 0, false
	}
	pte := PTE(phys.ReadUint64(L2EntryAddr(l1.Frame().Addr(), va)))
	if !pte.Present() {
		return 0, false
	}
	return pte, true
}

// Translate translates a full virtual address to a physical address,
// reporting failure if the page is unmapped.
func (pt *PageTable) Translate(va mem.VAddr) (mem.PAddr, bool) {
	pte, ok := pt.Lookup(va)
	if !ok {
		return 0, false
	}
	return mem.Translate(pte.Frame(), va), true
}
