package vm

import (
	"testing"
	"testing/quick"

	"ccsvm/internal/mem"
	"ccsvm/internal/stats"
)

// fakePort completes accesses immediately (zero latency) and counts them.
type fakePort struct {
	accesses int
}

func (p *fakePort) Access(req mem.Request, done func()) {
	p.accesses++
	done()
}

func newTestTable(t *testing.T) (*mem.Physical, *PageTable, *FrameAllocatorStub) {
	t.Helper()
	phys := mem.NewPhysical(64 << 20)
	alloc := &FrameAllocatorStub{next: 16}
	pt := NewPageTable(phys, alloc.Alloc(), alloc.Alloc)
	return phys, pt, alloc
}

// FrameAllocatorStub is a minimal bump allocator for tests.
type FrameAllocatorStub struct{ next mem.FrameNumber }

// Alloc hands out the next frame.
func (a *FrameAllocatorStub) Alloc() mem.FrameNumber {
	f := a.next
	a.next++
	return f
}

func TestPTE(t *testing.T) {
	e := NewPTE(42, true)
	if !e.Present() || !e.Writable() || e.Frame() != 42 {
		t.Fatalf("PTE fields wrong: %v %v %v", e.Present(), e.Writable(), e.Frame())
	}
	ro := NewPTE(7, false)
	if ro.Writable() {
		t.Fatal("read-only PTE claims writable")
	}
	if PTE(0).Present() {
		t.Fatal("zero PTE claims present")
	}
}

func TestPageTableMapLookupUnmap(t *testing.T) {
	_, pt, _ := newTestTable(t)
	va := mem.VAddr(0x1000_0000)
	if _, ok := pt.Lookup(va); ok {
		t.Fatal("unmapped address should not translate")
	}
	pt.Map(va, 100, true)
	pte, ok := pt.Lookup(va)
	if !ok || pte.Frame() != 100 {
		t.Fatalf("lookup after map: ok=%v frame=%v", ok, pte.Frame())
	}
	pa, ok := pt.Translate(va + 0x123)
	if !ok || pa != mem.PAddr(100*mem.PageSize+0x123) {
		t.Fatalf("translate = %#x, ok=%v", uint64(pa), ok)
	}
	if _, ok := pt.Unmap(va); !ok {
		t.Fatal("unmap of mapped page failed")
	}
	if _, ok := pt.Lookup(va); ok {
		t.Fatal("address still translates after unmap")
	}
	if _, ok := pt.Unmap(va); ok {
		t.Fatal("double unmap reported success")
	}
}

func TestPageTableSharesLevel2Tables(t *testing.T) {
	_, pt, alloc := newTestTable(t)
	before := alloc.next
	// Two pages in the same 2 MB region share one level-2 table.
	pt.Map(0x1000_0000, 200, true)
	pt.Map(0x1000_1000, 201, true)
	if got := alloc.next - before; got != 1 {
		t.Fatalf("allocated %d level-2 tables, want 1", got)
	}
	// A page in a different region needs a new table.
	pt.Map(0x1020_0000, 202, true)
	if got := alloc.next - before; got != 2 {
		t.Fatalf("allocated %d level-2 tables, want 2", got)
	}
}

// Property: map/translate round-trips for arbitrary heap addresses and
// frames.
func TestPageTableRoundTripProperty(t *testing.T) {
	_, pt, _ := newTestTable(t)
	f := func(pageRaw uint16, frameRaw uint16) bool {
		va := mem.VAddr(pageRaw) * mem.PageSize
		frame := mem.FrameNumber(frameRaw) + 1000
		pt.Map(va, frame, true)
		pa, ok := pt.Translate(va + 17)
		return ok && pa == frame.Addr()+17
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTLBHitMissLRUAndFlush(t *testing.T) {
	reg := stats.NewRegistry("t")
	tlb := NewTLB(TLBConfig{Entries: 4, Name: "tlb"}, reg)
	if _, _, ok := tlb.Lookup(0x1000); ok {
		t.Fatal("empty TLB hit")
	}
	tlb.Insert(0x1000, 1, true)
	if f, w, ok := tlb.Lookup(0x1000); !ok || f != 1 || !w {
		t.Fatal("TLB lookup after insert failed")
	}
	// Fill beyond capacity; the LRU entry (page 2) should be evicted.
	tlb.Insert(0x2000, 2, true)
	tlb.Insert(0x3000, 3, true)
	tlb.Insert(0x4000, 4, true)
	tlb.Lookup(0x1000)
	tlb.Lookup(0x3000)
	tlb.Lookup(0x4000)
	tlb.Insert(0x5000, 5, true)
	if _, _, ok := tlb.Lookup(0x2000); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, _, ok := tlb.Lookup(0x1000); !ok {
		t.Fatal("recently used entry was evicted")
	}
	tlb.Flush()
	if tlb.Occupancy() != 0 {
		t.Fatal("flush left entries behind")
	}
	if tlb.Hits() == 0 || tlb.Misses() == 0 {
		t.Fatal("hit/miss counters not advancing")
	}
}

func TestMMUTranslateHitMissAndFault(t *testing.T) {
	phys, pt, _ := newTestTable(t)
	port := &fakePort{}
	reg := stats.NewRegistry("t")
	mmu := NewMMU(TLBConfig{Entries: 8, Name: "mmu"}, port, phys, reg)
	mmu.SetRoot(pt.Root())

	va := mem.VAddr(0x1000_0000)
	pt.Map(va, 300, true)

	var gotPA mem.PAddr
	var gotFault *Fault
	mmu.Translate(va+8, false, func(pa mem.PAddr, f *Fault) { gotPA, gotFault = pa, f })
	if gotFault != nil {
		t.Fatalf("unexpected fault: %v", gotFault)
	}
	if gotPA != mem.PAddr(300*mem.PageSize+8) {
		t.Fatalf("translated to %#x", uint64(gotPA))
	}
	if port.accesses != 2 {
		t.Fatalf("page walk used %d memory accesses, want 2", port.accesses)
	}
	// Second access to the same page hits the TLB: no more walks.
	mmu.Translate(va+16, false, func(pa mem.PAddr, f *Fault) { gotPA, gotFault = pa, f })
	if port.accesses != 2 {
		t.Fatalf("TLB hit still walked (%d accesses)", port.accesses)
	}
	// Unmapped address faults and reports the faulting VA and root.
	mmu.Translate(0x2000_0000, true, func(pa mem.PAddr, f *Fault) { gotFault = f })
	if gotFault == nil || gotFault.VA != 0x2000_0000 || !gotFault.Write || gotFault.Root != pt.Root() {
		t.Fatalf("fault not reported correctly: %+v", gotFault)
	}
	if gotFault.Error() == "" {
		t.Fatal("fault has no message")
	}
	if mmu.Walks() != 2 || mmu.Faults() != 1 {
		t.Fatalf("walks=%d faults=%d", mmu.Walks(), mmu.Faults())
	}
}

func TestMMUSetRootFlushesTLB(t *testing.T) {
	phys, pt, alloc := newTestTable(t)
	port := &fakePort{}
	mmu := NewMMU(TLBConfig{Entries: 8, Name: "mmu"}, port, phys, stats.NewRegistry("t"))
	mmu.SetRoot(pt.Root())
	pt.Map(0x1000_0000, 400, true)
	mmu.Translate(0x1000_0000, false, func(mem.PAddr, *Fault) {})
	if mmu.TLB().Occupancy() != 1 {
		t.Fatal("translation not cached")
	}
	// Loading a different process's root flushes; reloading the same one
	// does not.
	other := NewPageTable(phys, alloc.Alloc(), alloc.Alloc)
	mmu.SetRoot(other.Root())
	if mmu.TLB().Occupancy() != 0 {
		t.Fatal("SetRoot with new root did not flush the TLB")
	}
	// Reloading the same root must not flush again.
	mmu.TLB().Insert(0x9000, 9, true)
	mmu.SetRoot(other.Root())
	if mmu.TLB().Occupancy() != 1 {
		t.Fatal("SetRoot with unchanged root flushed the TLB")
	}
}

func TestMMUTranslateBeforeRootPanics(t *testing.T) {
	phys := mem.NewPhysical(1 << 20)
	mmu := NewMMU(TLBConfig{Entries: 4, Name: "m"}, &fakePort{}, phys, stats.NewRegistry("t"))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	mmu.Translate(0x1000, false, func(mem.PAddr, *Fault) {})
}
