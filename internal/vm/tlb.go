package vm

import (
	"ccsvm/internal/mem"
	"ccsvm/internal/stats"
)

// TLBConfig describes a translation lookaside buffer.
type TLBConfig struct {
	// Entries is the capacity (64, fully associative, in Table 2).
	Entries int
	// Name prefixes the TLB's statistics.
	Name string
}

// tlbEntry caches one translation.
type tlbEntry struct {
	page     mem.PageNumber
	frame    mem.FrameNumber
	writable bool
	lru      uint64
}

// TLB is a fully associative, LRU-replaced translation cache. It is indexed
// by virtual page only; a context switch or shootdown flushes it, which is
// the conservative policy the paper adopts for MTTOP TLB coherence.
//
//ccsvm:state
type TLB struct {
	cfg     TLBConfig
	entries map[mem.PageNumber]*tlbEntry
	// last is the entry of the most recent hit or insert: translations are
	// heavily page-local, so most lookups resolve here without hashing.
	last *tlbEntry
	tick uint64

	hits    *stats.Counter
	misses  *stats.Counter
	flushes *stats.Counter
}

// NewTLB builds a TLB.
func NewTLB(cfg TLBConfig, reg *stats.Registry) *TLB {
	if cfg.Entries <= 0 {
		panic("vm: TLB needs at least one entry")
	}
	return &TLB{
		cfg:     cfg,
		entries: make(map[mem.PageNumber]*tlbEntry, cfg.Entries),
		hits:    reg.Counter(cfg.Name + ".hits"),
		misses:  reg.Counter(cfg.Name + ".misses"),
		flushes: reg.Counter(cfg.Name + ".flushes"),
	}
}

// Lookup returns the cached translation for the page containing va.
//
//ccsvm:hotpath
func (t *TLB) Lookup(va mem.VAddr) (mem.FrameNumber, bool, bool) {
	page := mem.PageOf(va)
	if e := t.last; e != nil && e.page == page {
		t.tick++
		e.lru = t.tick
		t.hits.Inc()
		return e.frame, e.writable, true
	}
	e, ok := t.entries[page]
	if !ok {
		t.misses.Inc()
		return 0, false, false
	}
	t.last = e
	t.tick++
	e.lru = t.tick
	t.hits.Inc()
	return e.frame, e.writable, true
}

// Insert caches a translation, evicting the LRU entry if the TLB is full.
func (t *TLB) Insert(va mem.VAddr, frame mem.FrameNumber, writable bool) {
	page := mem.PageOf(va)
	if e, ok := t.entries[page]; ok {
		t.tick++
		e.frame, e.writable, e.lru = frame, writable, t.tick
		t.last = e
		return
	}
	if len(t.entries) >= t.cfg.Entries {
		var victim mem.PageNumber
		var oldest uint64 = ^uint64(0)
		for p, e := range t.entries {
			if e.lru < oldest {
				oldest = e.lru
				victim = p
			}
		}
		delete(t.entries, victim)
		if t.last != nil && t.last.page == victim {
			t.last = nil
		}
	}
	t.tick++
	e := &tlbEntry{page: page, frame: frame, writable: writable, lru: t.tick}
	t.entries[page] = e
	t.last = e
}

// InvalidatePage removes one translation (selective shootdown).
func (t *TLB) InvalidatePage(va mem.VAddr) {
	page := mem.PageOf(va)
	delete(t.entries, page)
	if t.last != nil && t.last.page == page {
		t.last = nil
	}
}

// Flush empties the TLB (the conservative shootdown used for MTTOP cores).
func (t *TLB) Flush() {
	t.flushes.Inc()
	t.entries = make(map[mem.PageNumber]*tlbEntry, t.cfg.Entries)
	t.last = nil
}

// Occupancy reports how many translations are cached.
func (t *TLB) Occupancy() int { return len(t.entries) }

// Hits reports the number of TLB hits.
func (t *TLB) Hits() uint64 { return t.hits.Value() }

// Misses reports the number of TLB misses.
func (t *TLB) Misses() uint64 { return t.misses.Value() }
