package sweepd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"

	"ccsvm"
	"ccsvm/internal/resultcache"
)

// Config sizes a Server.
type Config struct {
	// Cache memoizes Results across requests and restarts. Optional: a nil
	// cache still coalesces in-flight duplicates but re-simulates completed
	// specs.
	Cache *ccsvm.Cache
	// Parallel bounds concurrent simulations. Zero or negative means
	// GOMAXPROCS.
	Parallel int
	// QueueDepth bounds admitted requests (running + waiting); past it,
	// requests get 503. Zero means DefaultQueueDepth.
	QueueDepth int
}

// DefaultQueueDepth is the admission bound when Config.QueueDepth is zero.
const DefaultQueueDepth = 64

// Server is the coalescing, memoizing sweep service. Create one with New,
// serve it with net/http, and drain it with Shutdown.
type Server struct {
	cache *ccsvm.Cache
	sem   chan struct{} // bounds concurrent simulations
	slots chan struct{} // bounds admitted requests
	mux   *http.ServeMux

	mu       sync.Mutex
	closed   bool
	inflight map[resultcache.Key]*call
	jobs     sync.WaitGroup
	runs     uint64
	coal     uint64
	hits     uint64
	rejected uint64
	errs     uint64
}

// call is one leader computation that any number of followers may attach to.
// done is closed once res/body/apiErr are final; every field is read-only
// afterwards, so all callers observe identical bytes.
type call struct {
	done   chan struct{}
	res    ccsvm.Result
	body   []byte
	apiErr *apiError
}

// New builds a Server.
func New(cfg Config) *Server {
	parallel := cfg.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	s := &Server{
		cache:    cfg.Cache,
		sem:      make(chan struct{}, parallel),
		slots:    make(chan struct{}, depth),
		inflight: make(map[resultcache.Key]*call),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /run", s.handleRun)
	s.mux.HandleFunc("POST /sweep", s.handleSweep)
	s.mux.HandleFunc("GET /cache/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Shutdown stops admitting requests (new ones get 503 "draining") and waits
// for every in-flight job to finish or the context to expire.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.jobs.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Stats snapshots the serving counters.
func (s *Server) Stats() ServeStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ServeStats{
		Runs:      s.runs,
		Coalesced: s.coal,
		CacheHits: s.hits,
		Rejected:  s.rejected,
		Errors:    s.errs,
		Draining:  s.closed,
	}
}

// admit claims one queue slot, failing fast with a 503 when the server is
// draining or the queue is full. The returned release function must be
// called exactly once.
func (s *Server) admit() (func(), *apiError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.rejected++
		return nil, errDraining
	}
	select {
	case s.slots <- struct{}{}:
	default:
		s.rejected++
		return nil, errBusy
	}
	s.jobs.Add(1)
	return func() {
		<-s.slots
		s.jobs.Done()
	}, nil
}

// do produces the Result for a spec — from the cache, by attaching to an
// in-flight computation of the same content address, or by simulating as the
// leader — and reports which ("hit", "coalesced", "miss"). The caller must
// hold an admission slot.
func (s *Server) do(spec ccsvm.RunSpec) (*call, string) {
	key := spec.Hash()
	if s.cache != nil {
		if res, ok := s.cache.Get(key); ok {
			s.mu.Lock()
			s.hits++
			s.mu.Unlock()
			return &call{res: res, body: marshalRunResponse(key, spec, res)}, "hit"
		}
	}

	s.mu.Lock()
	if c, ok := s.inflight[key]; ok {
		s.coal++
		s.mu.Unlock()
		<-c.done
		return c, "coalesced"
	}
	c := &call{done: make(chan struct{})}
	s.inflight[key] = c
	s.mu.Unlock()

	s.sem <- struct{}{}
	res, err := s.simulate(spec)
	<-s.sem

	if err != nil {
		s.mu.Lock()
		s.errs++
		s.mu.Unlock()
		c.apiErr = &apiError{status: http.StatusInternalServerError, kind: "simulation", msg: err.Error()}
	} else {
		c.res = res
		c.body = marshalRunResponse(key, spec, res)
		if s.cache != nil {
			// A persist failure is counted in the cache's own store_errors;
			// the result is still served.
			_ = s.cache.Put(key, spec.String(), res)
		}
	}
	s.mu.Lock()
	delete(s.inflight, key)
	s.mu.Unlock()
	close(c.done)
	return c, "miss"
}

// simulate runs one spec through the registry, counting it.
func (s *Server) simulate(spec ccsvm.RunSpec) (ccsvm.Result, error) {
	w, ok := ccsvm.Lookup(spec.Workload)
	if !ok {
		// resolve() validated the workload; losing it mid-flight is a
		// programming error, reported rather than panicking in a handler.
		return ccsvm.Result{}, fmt.Errorf("%w %q", ccsvm.ErrUnknownWorkload, spec.Workload)
	}
	s.mu.Lock()
	s.runs++
	s.mu.Unlock()
	return w.Run(spec.System, spec.Params)
}

// marshalRunResponse renders the response document for one content address.
// It is built from the normalized spec, so every route to an address — any
// equivalent raw params, coalesced or cached — yields identical bytes.
func marshalRunResponse(key resultcache.Key, spec ccsvm.RunSpec, res ccsvm.Result) []byte {
	norm := spec.Normalized()
	body, err := json.Marshal(RunResponse{
		SpecHash:     key.Hex(),
		Workload:     norm.Workload,
		System:       string(norm.System.Kind),
		N:            norm.Params.N,
		Density:      norm.Params.Density,
		Seed:         norm.Params.Seed,
		IncludeInit:  norm.Params.IncludeInit,
		Label:        res.Label,
		SimTimePs:    int64(res.Time),
		DRAMAccesses: res.DRAMAccesses,
		Checked:      res.Checked,
		Metrics:      res.Metrics,
	})
	if err != nil {
		// Results are plain scalars and a string-keyed float map; marshaling
		// cannot fail without a schema bug.
		panic(fmt.Sprintf("sweepd: marshal run response: %v", err))
	}
	return append(body, '\n')
}

// handleRun serves POST /run: one spec, one JSON document.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req SpecRequest
	if aerr := decodeJSON(r, &req); aerr != nil {
		writeError(w, aerr)
		return
	}
	spec, aerr := resolve(req)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	release, aerr := s.admit()
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	defer release()
	c, status := s.do(spec)
	if c.apiErr != nil {
		writeError(w, c.apiErr)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Ccsvm-Cache", status)
	w.Write(c.body)
}

// handleSweep serves POST /sweep: every spec is validated up front (any
// resolution failure rejects the whole request before the stream starts),
// then results stream as JSON lines in spec order — the Runner sink schema —
// while execution proceeds in parallel with coalescing and caching.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if aerr := decodeJSON(r, &req); aerr != nil {
		writeError(w, aerr)
		return
	}
	specs := make([]ccsvm.RunSpec, len(req.Specs))
	for i, sr := range req.Specs {
		spec, aerr := resolve(sr)
		if aerr != nil {
			aerr.msg = fmt.Sprintf("spec %d: %s", i, aerr.msg)
			writeError(w, aerr)
			return
		}
		specs[i] = spec
	}
	release, aerr := s.admit()
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	defer release()

	w.Header().Set("Content-Type", "application/x-ndjson")
	sink := ccsvm.NewJSONLSink(newFlushWriter(w))
	results := make([]ccsvm.RunResult, len(specs))
	done := make(chan int, len(specs))
	for i := range specs {
		go func(i int) {
			c, status := s.do(specs[i])
			rr := ccsvm.RunResult{Spec: specs[i], Index: i, Result: c.res, Cached: status == "hit"}
			if c.apiErr != nil {
				rr.Err = errors.New(c.apiErr.msg)
				rr.Result = ccsvm.Result{}
			}
			results[i] = rr
			done <- i
		}(i)
	}
	// Emit in spec order regardless of completion order, exactly like
	// Runner.Run, so sweep output is byte-stable at any parallelism.
	ready := make([]bool, len(specs))
	next, clientGone := 0, false
	for range specs {
		i := <-done
		ready[i] = true
		for next < len(specs) && ready[next] {
			if !clientGone && sink.Emit(results[next]) != nil {
				// The client went away; keep draining completions so no
				// goroutine leaks, but stop writing.
				clientGone = true
			}
			next++
		}
	}
}

// handleStats serves GET /cache/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{Serve: s.Stats()}
	if s.cache != nil {
		cs := s.cache.Stats()
		resp.Cache = &cs
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// handleHealthz serves GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	io.WriteString(w, "ok\n")
}

// decodeJSON strictly decodes a request body: malformed JSON and unknown
// fields are 400s so schema typos fail loudly instead of running a default
// spec.
func decodeJSON(r *http.Request, into any) *apiError {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return &apiError{status: http.StatusBadRequest, kind: "bad_request", msg: "bad request body: " + err.Error()}
	}
	return nil
}

// writeError renders a typed error as its status and JSON body.
func writeError(w http.ResponseWriter, aerr *apiError) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(aerr.status)
	json.NewEncoder(w).Encode(ErrorResponse{Error: aerr.msg, Kind: aerr.kind})
}

// flushWriter flushes after every write so JSONL rows reach sweep clients as
// they complete, not when the response buffer fills.
type flushWriter struct {
	w io.Writer
	f http.Flusher
}

// newFlushWriter wraps a response writer, degrading gracefully when the
// writer cannot flush (httptest recorders, middleware).
func newFlushWriter(w http.ResponseWriter) flushWriter {
	f, _ := w.(http.Flusher)
	return flushWriter{w: w, f: f}
}

// Write implements io.Writer.
func (fw flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	if fw.f != nil {
		fw.f.Flush()
	}
	return n, err
}
