package sweepd_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ccsvm"
	"ccsvm/internal/sweepd"
)

// blockCtl lets a test hold simulations of the registered blocking workload
// open: each entry into Run signals started and then parks on release. Tests
// run sequentially, so one package-global control is enough.
type blockCtl struct {
	started chan struct{}
	release chan struct{}
	runs    atomic.Int64
}

var ctl atomic.Pointer[blockCtl]

// init registers the instrumented workload the coalescing and drain tests
// drive: with no control installed it returns immediately, so it behaves
// like any cheap deterministic workload.
func init() {
	ccsvm.Register(ccsvm.Workload{
		Name:        "blocktest",
		Description: "sweepd test workload: parks until released, counts executions",
		Runners: map[ccsvm.SystemKind]ccsvm.RunFunc{
			ccsvm.SystemCCSVM: func(sys ccsvm.System, p ccsvm.Params) (ccsvm.Result, error) {
				if c := ctl.Load(); c != nil {
					c.runs.Add(1)
					c.started <- struct{}{}
					<-c.release
				}
				return ccsvm.Result{
					Label:        "blocktest",
					Time:         42,
					DRAMAccesses: 7,
					Checked:      true,
					Metrics:      map[string]float64{"sim.events": 1},
				}, nil
			},
		},
	})
}

// newTestServer builds a served sweepd instance with a fresh in-memory
// cache.
func newTestServer(t *testing.T, cfg sweepd.Config) (*sweepd.Server, *httptest.Server) {
	t.Helper()
	if cfg.Cache == nil {
		cache, err := ccsvm.NewCache(ccsvm.CacheOptions{})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Cache = cache
	}
	s := sweepd.New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends a JSON body and returns status, headers, and body.
func post(t *testing.T, url, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, resp.Header, raw
}

// errKind decodes the machine-matchable kind of an error response.
func errKind(t *testing.T, raw []byte) string {
	t.Helper()
	var e struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatalf("error body is not JSON: %v (%q)", err, raw)
	}
	return e.Kind
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", msg)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCoalescingSingleExecution is the coalescing race test: N clients
// request the same spec while its simulation is parked; exactly one
// simulation executes, and every caller receives identical bytes.
func TestCoalescingSingleExecution(t *testing.T) {
	s, ts := newTestServer(t, sweepd.Config{Parallel: 4, QueueDepth: 128})
	c := &blockCtl{started: make(chan struct{}, 64), release: make(chan struct{})}
	ctl.Store(c)
	defer ctl.Store(nil)

	const clients = 24
	var wg sync.WaitGroup
	bodies := make([][]byte, clients)
	statuses := make([]int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], _, bodies[i] = post(t, ts.URL+"/run", `{"workload":"blocktest","system":"ccsvm"}`)
		}(i)
	}

	<-c.started // the leader is inside the simulation
	// Every other client must attach to the in-flight computation: none of
	// them can be a cache hit (nothing is stored yet) or a new run (the
	// address is occupied).
	waitFor(t, func() bool { return s.Stats().Coalesced == clients-1 }, "all followers to coalesce")
	close(c.release)
	wg.Wait()

	if got := c.runs.Load(); got != 1 {
		t.Fatalf("%d simulations executed, want exactly 1", got)
	}
	if st := s.Stats(); st.Runs != 1 || st.Coalesced != clients-1 {
		t.Fatalf("serve stats = %+v, want runs=1 coalesced=%d", st, clients-1)
	}
	for i := 0; i < clients; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("client %d: status %d, body %s", i, statuses[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("client %d received different bytes:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
}

// TestProtocolVariantsNeverCoalesce: two in-flight requests that differ only
// in the coherence protocol are different content addresses, so neither may
// attach to the other's computation — both simulations must execute. This is
// the serving-layer face of the cache-poisoning fix (v1 spec addresses did
// not encode the protocol).
func TestProtocolVariantsNeverCoalesce(t *testing.T) {
	s, ts := newTestServer(t, sweepd.Config{Parallel: 4, QueueDepth: 128})
	c := &blockCtl{started: make(chan struct{}, 64), release: make(chan struct{})}
	ctl.Store(c)
	defer ctl.Store(nil)

	reqs := []string{
		`{"workload":"blocktest","system":"ccsvm"}`,
		`{"workload":"blocktest","system":"ccsvm","overrides":["ccsvm.coherence.protocol=mesi"]}`,
	}
	var wg sync.WaitGroup
	statuses := make([]int, len(reqs))
	bodies := make([][]byte, len(reqs))
	for i, body := range reqs {
		wg.Add(1)
		go func(i int, body string) {
			defer wg.Done()
			statuses[i], _, bodies[i] = post(t, ts.URL+"/run", body)
		}(i, body)
	}
	// Both simulations must start: if the MESI request had coalesced onto the
	// MOESI one, the second started-signal would never arrive.
	<-c.started
	<-c.started
	close(c.release)
	wg.Wait()

	if got := c.runs.Load(); got != 2 {
		t.Fatalf("%d simulations executed, want 2 (one per protocol)", got)
	}
	if st := s.Stats(); st.Coalesced != 0 {
		t.Fatalf("%d requests coalesced across protocol variants", st.Coalesced)
	}
	for i := range reqs {
		if statuses[i] != http.StatusOK {
			t.Fatalf("client %d: status %d, body %s", i, statuses[i], bodies[i])
		}
	}
	var a, b struct {
		SpecHash string `json:"spec_hash"`
	}
	if err := json.Unmarshal(bodies[0], &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(bodies[1], &b); err != nil {
		t.Fatal(err)
	}
	if a.SpecHash == b.SpecHash {
		t.Fatalf("protocol variants served under one spec hash %s", a.SpecHash)
	}
}

// TestRunCacheHit is the acceptance flow: repeated identical POST /run
// requests hit the cache, visible in /cache/stats, and the cached document
// is byte-identical to the fresh one.
func TestRunCacheHit(t *testing.T) {
	s, ts := newTestServer(t, sweepd.Config{})
	body := `{"workload":"vectoradd","system":"ccsvm","params":{"n":16,"seed":7}}`

	st1, h1, raw1 := post(t, ts.URL+"/run", body)
	if st1 != http.StatusOK {
		t.Fatalf("first run: %d %s", st1, raw1)
	}
	if got := h1.Get("X-Ccsvm-Cache"); got != "miss" {
		t.Fatalf("first run cache status = %q, want miss", got)
	}

	st2, h2, raw2 := post(t, ts.URL+"/run", body)
	if st2 != http.StatusOK {
		t.Fatalf("second run: %d %s", st2, raw2)
	}
	if got := h2.Get("X-Ccsvm-Cache"); got != "hit" {
		t.Fatalf("second run cache status = %q, want hit", got)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Fatalf("cached response differs from fresh:\n%s\nvs\n%s", raw2, raw1)
	}

	var stats struct {
		Cache *ccsvm.CacheStats `json:"cache"`
		Serve sweepd.ServeStats `json:"serve"`
	}
	resp, err := http.Get(ts.URL + "/cache/stats")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &stats); err != nil {
		t.Fatalf("stats body: %v (%s)", err, raw)
	}
	if stats.Cache == nil || stats.Cache.MemHits < 1 || stats.Cache.Stores != 1 {
		t.Fatalf("cache stats do not show the hit: %s", raw)
	}
	if stats.Serve.Runs != 1 || stats.Serve.CacheHits != 1 {
		t.Fatalf("serve stats = %+v, want runs=1 cache_hits=1", stats.Serve)
	}
	if s.Stats().Runs != 1 {
		t.Fatalf("server executed %d simulations for 2 identical requests", s.Stats().Runs)
	}
}

// TestHandlerErrors pins the error taxonomy: malformed bodies are 400s,
// unknown names are 404s, structurally impossible requests are 422s, and
// wrong methods are 405s.
func TestHandlerErrors(t *testing.T) {
	_, ts := newTestServer(t, sweepd.Config{})
	cases := []struct {
		name   string
		path   string
		body   string
		status int
		kind   string
	}{
		{"malformed json", "/run", `{"workload":`, http.StatusBadRequest, "bad_request"},
		{"unknown field", "/run", `{"wrkld":"matmul"}`, http.StatusBadRequest, "bad_request"},
		{"unknown workload", "/run", `{"workload":"nope","system":"ccsvm"}`, http.StatusNotFound, "unknown_workload"},
		{"unknown preset", "/run", `{"workload":"matmul","preset":"nope"}`, http.StatusNotFound, "unknown_preset"},
		{"unknown system", "/run", `{"workload":"matmul","system":"vax"}`, http.StatusNotFound, "unknown_system"},
		{"missing system", "/run", `{"workload":"matmul"}`, http.StatusNotFound, "unknown_system"},
		{"unsupported pair", "/run", `{"workload":"sparse","system":"opencl"}`, http.StatusUnprocessableEntity, "unsupported_pair"},
		{"unknown override path", "/run", `{"workload":"matmul","system":"ccsvm","overrides":["ccsvm.Nope=1"]}`, http.StatusUnprocessableEntity, "unknown_path"},
		{"bad override value", "/run", `{"workload":"matmul","system":"ccsvm","overrides":["ccsvm.NumMTTOPs=many"]}`, http.StatusUnprocessableEntity, "bad_value"},
		{"out of range override", "/run", `{"workload":"matmul","system":"ccsvm","overrides":["ccsvm.NumMTTOPs=-3"]}`, http.StatusUnprocessableEntity, "out_of_range"},
		{"wrong machine override", "/run", `{"workload":"matmul","system":"ccsvm","overrides":["apu.NumCPUs=2"]}`, http.StatusUnprocessableEntity, "machine_mismatch"},
		{"sweep bad spec", "/sweep", `{"specs":[{"workload":"matmul","system":"ccsvm"},{"workload":"nope","system":"ccsvm"}]}`, http.StatusNotFound, "unknown_workload"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _, raw := post(t, ts.URL+tc.path, tc.body)
			if status != tc.status {
				t.Fatalf("status = %d, want %d (body %s)", status, tc.status, raw)
			}
			if kind := errKind(t, raw); kind != tc.kind {
				t.Fatalf("kind = %q, want %q", kind, tc.kind)
			}
		})
	}

	t.Run("method not allowed", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/run")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /run = %d, want 405", resp.StatusCode)
		}
	})
	t.Run("healthz", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || string(raw) != "ok\n" {
			t.Fatalf("healthz = %d %q", resp.StatusCode, raw)
		}
	})
}

// TestSweepStreamOrdering: a sweep at Parallel > 1 streams JSONL rows in
// spec order with tags intact, duplicate specs coalesce or hit the cache
// (one simulation per address), and row contents match the request order.
func TestSweepStreamOrdering(t *testing.T) {
	s, ts := newTestServer(t, sweepd.Config{Parallel: 4})
	var specs []string
	var wantTags []string
	for i := 0; i < 8; i++ {
		// Four distinct addresses, each requested twice.
		tag := fmt.Sprintf("row-%d", i)
		specs = append(specs, fmt.Sprintf(
			`{"workload":"vectoradd","system":"ccsvm","params":{"n":16,"seed":%d},"tag":%q}`, i%4, tag))
		wantTags = append(wantTags, tag)
	}
	body := `{"specs":[` + strings.Join(specs, ",") + `]}`

	status, header, raw := post(t, ts.URL+"/sweep", body)
	if status != http.StatusOK {
		t.Fatalf("sweep: %d %s", status, raw)
	}
	if ct := header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}

	type row struct {
		Seed      int64  `json:"seed"`
		Tag       string `json:"tag"`
		SimTimePs int64  `json:"sim_time_ps"`
		Error     string `json:"error"`
		Checked   bool   `json:"checked"`
	}
	var rows []row
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		var r row
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad JSONL row %q: %v", sc.Text(), err)
		}
		rows = append(rows, r)
	}
	if len(rows) != len(wantTags) {
		t.Fatalf("got %d rows, want %d:\n%s", len(rows), len(wantTags), raw)
	}
	for i, r := range rows {
		if r.Tag != wantTags[i] {
			t.Fatalf("row %d tag = %q, want %q (stream out of spec order)", i, r.Tag, wantTags[i])
		}
		if r.Error != "" || !r.Checked {
			t.Fatalf("row %d failed: %+v", i, r)
		}
		if r.Seed != int64(i%4) {
			t.Fatalf("row %d seed = %d, want %d", i, r.Seed, i%4)
		}
		// Duplicate addresses must carry identical results.
		if i >= 4 && rows[i-4].SimTimePs != r.SimTimePs {
			t.Fatalf("rows %d and %d share an address but disagree: %d vs %d",
				i-4, i, rows[i-4].SimTimePs, r.SimTimePs)
		}
	}
	if st := s.Stats(); st.Runs != 4 {
		t.Fatalf("sweep executed %d simulations for 4 distinct addresses, want 4 (stats %+v)", st.Runs, st)
	}
}

// TestQueueFull: past QueueDepth admitted requests, the server sheds load
// with 503 "busy" instead of queueing without bound.
func TestQueueFull(t *testing.T) {
	s, ts := newTestServer(t, sweepd.Config{Parallel: 1, QueueDepth: 1})
	c := &blockCtl{started: make(chan struct{}, 8), release: make(chan struct{})}
	ctl.Store(c)
	defer ctl.Store(nil)

	done := make(chan []byte, 1)
	go func() {
		_, _, raw := post(t, ts.URL+"/run", `{"workload":"blocktest","system":"ccsvm"}`)
		done <- raw
	}()
	<-c.started

	status, _, raw := post(t, ts.URL+"/run", `{"workload":"blocktest","system":"ccsvm","params":{"seed":99}}`)
	if status != http.StatusServiceUnavailable || errKind(t, raw) != "busy" {
		t.Fatalf("overload response = %d %s, want 503 busy", status, raw)
	}
	if s.Stats().Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", s.Stats().Rejected)
	}
	close(c.release)
	<-done
}

// TestGracefulShutdown: Shutdown lets the parked in-flight job finish (the
// client gets its 200) while new work is refused with 503 "draining".
func TestGracefulShutdown(t *testing.T) {
	s, ts := newTestServer(t, sweepd.Config{Parallel: 2, QueueDepth: 8})
	c := &blockCtl{started: make(chan struct{}, 8), release: make(chan struct{})}
	ctl.Store(c)
	defer ctl.Store(nil)

	inflight := make(chan struct {
		status int
		body   []byte
	}, 1)
	go func() {
		status, _, raw := post(t, ts.URL+"/run", `{"workload":"blocktest","system":"ccsvm"}`)
		inflight <- struct {
			status int
			body   []byte
		}{status, raw}
	}()
	<-c.started

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()
	waitFor(t, func() bool { return s.Stats().Draining }, "server to start draining")

	status, _, raw := post(t, ts.URL+"/run", `{"workload":"vectoradd","system":"ccsvm"}`)
	if status != http.StatusServiceUnavailable || errKind(t, raw) != "draining" {
		t.Fatalf("request during drain = %d %s, want 503 draining", status, raw)
	}

	close(c.release)
	got := <-inflight
	if got.status != http.StatusOK {
		t.Fatalf("in-flight job was not drained cleanly: %d %s", got.status, got.body)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}
