package sweepd

import (
	"errors"
	"net/http"

	"ccsvm"
)

// SpecRequest is the wire form of one RunSpec: a workload name, a system
// kind and/or preset, optional dotted-path overrides, and parameters.
// Omitting params entirely means ccsvm.DefaultParams; omitting the system
// with a preset means the preset's default system.
type SpecRequest struct {
	Workload  string         `json:"workload"`
	System    string         `json:"system,omitempty"`
	Preset    string         `json:"preset,omitempty"`
	Overrides []string       `json:"overrides,omitempty"`
	Params    *ParamsRequest `json:"params,omitempty"`
	// Tag is echoed on sweep rows; it never affects the content address.
	Tag string `json:"tag,omitempty"`
}

// ParamsRequest mirrors ccsvm.Params with wire names.
type ParamsRequest struct {
	N           int     `json:"n"`
	Density     float64 `json:"density,omitempty"`
	Seed        int64   `json:"seed"`
	IncludeInit bool    `json:"include_init,omitempty"`
}

// SweepRequest is the body of POST /sweep: specs to run, streamed back in
// this order.
type SweepRequest struct {
	Specs []SpecRequest `json:"specs"`
}

// RunResponse is the body of POST /run. It is a pure function of the spec's
// content address — no tag, no cache provenance — so every caller of an
// address receives identical bytes whether it simulated, coalesced onto an
// in-flight run, or hit the cache. Cache provenance travels in the
// X-Ccsvm-Cache header ("miss", "coalesced", "hit") instead.
type RunResponse struct {
	SpecHash     string             `json:"spec_hash"`
	Workload     string             `json:"workload"`
	System       string             `json:"system"`
	N            int                `json:"n"`
	Density      float64            `json:"density,omitempty"`
	Seed         int64              `json:"seed"`
	IncludeInit  bool               `json:"include_init,omitempty"`
	Label        string             `json:"label,omitempty"`
	SimTimePs    int64              `json:"sim_time_ps"`
	DRAMAccesses uint64             `json:"dram_accesses"`
	Checked      bool               `json:"checked"`
	Metrics      map[string]float64 `json:"metrics,omitempty"`
}

// ErrorResponse is the JSON body of every non-2xx response: a human-readable
// message and a machine-matchable kind.
type ErrorResponse struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// StatsResponse is the body of GET /cache/stats.
type StatsResponse struct {
	// Cache is the resultcache counter snapshot; null when the server runs
	// uncached.
	Cache *ccsvm.CacheStats `json:"cache"`
	// Serve are the serving-layer counters.
	Serve ServeStats `json:"serve"`
}

// ServeStats counts what the serving layer did with requests.
type ServeStats struct {
	// Runs counts simulations actually executed (each coalesced group and
	// each cache hit contributes at most one).
	Runs uint64 `json:"runs"`
	// Coalesced counts requests that attached to an in-flight computation.
	Coalesced uint64 `json:"coalesced"`
	// CacheHits counts requests served straight from the cache.
	CacheHits uint64 `json:"cache_hits"`
	// Rejected counts requests turned away with 503 (queue full or
	// draining).
	Rejected uint64 `json:"rejected"`
	// Errors counts simulations that failed.
	Errors uint64 `json:"errors"`
	// Draining reports that Shutdown has begun.
	Draining bool `json:"draining"`
}

// apiError is a typed handler failure: an HTTP status, a stable kind string
// for clients and tests, and the message.
type apiError struct {
	status int
	kind   string
	msg    string
}

// Error implements error.
func (e *apiError) Error() string { return e.msg }

// errBusy and errDraining are the 503 admission failures.
var (
	errBusy     = &apiError{status: http.StatusServiceUnavailable, kind: "busy", msg: "job queue full, retry later"}
	errDraining = &apiError{status: http.StatusServiceUnavailable, kind: "draining", msg: "server is shutting down"}
)

// specError maps spec-resolution failures onto typed API errors: unknown
// names are 404s, structurally invalid requests (unsupported pair, bad
// override) are 422s, anything else is a 400.
func specError(err error) *apiError {
	kind, status := "bad_request", http.StatusBadRequest
	switch {
	case errors.Is(err, ccsvm.ErrUnknownWorkload):
		kind, status = "unknown_workload", http.StatusNotFound
	case errors.Is(err, ccsvm.ErrUnknownPreset):
		kind, status = "unknown_preset", http.StatusNotFound
	case errors.Is(err, ccsvm.ErrUnknownSystem):
		kind, status = "unknown_system", http.StatusNotFound
	case errors.Is(err, ccsvm.ErrUnsupportedPair):
		kind, status = "unsupported_pair", http.StatusUnprocessableEntity
	case errors.Is(err, ccsvm.ErrMachineMismatch):
		kind, status = "machine_mismatch", http.StatusUnprocessableEntity
	case errors.Is(err, ccsvm.ErrUnknownPath):
		kind, status = "unknown_path", http.StatusUnprocessableEntity
	case errors.Is(err, ccsvm.ErrBadValue):
		kind, status = "bad_value", http.StatusUnprocessableEntity
	case errors.Is(err, ccsvm.ErrOutOfRange):
		kind, status = "out_of_range", http.StatusUnprocessableEntity
	}
	return &apiError{status: status, kind: kind, msg: err.Error()}
}

// resolve turns a wire request into a runnable RunSpec.
func resolve(req SpecRequest) (ccsvm.RunSpec, *apiError) {
	p := ccsvm.DefaultParams()
	if req.Params != nil {
		p = ccsvm.Params{
			N:           req.Params.N,
			Density:     req.Params.Density,
			Seed:        req.Params.Seed,
			IncludeInit: req.Params.IncludeInit,
		}
	}
	spec, err := ccsvm.BuildSpec(req.Workload, ccsvm.SystemKind(req.System), req.Preset, req.Overrides, p)
	if err != nil {
		return ccsvm.RunSpec{}, specError(err)
	}
	spec.Tag = req.Tag
	return spec, nil
}
