// Package sweepd is the long-running sweep service in front of the
// simulator: an HTTP front end (stdlib only) that resolves spec requests
// through the ccsvm facade, memoizes Results in a content-addressed
// resultcache, and coalesces duplicate in-flight requests so a spec is never
// simulated twice concurrently no matter how many callers ask for it.
//
// Endpoints:
//
//	POST /run         one spec; JSON result document, identical bytes for
//	                  every caller of the same content address
//	POST /sweep       a list of specs; streams JSON-lines results in spec
//	                  order (the Runner sink schema) at any parallelism
//	GET  /cache/stats cache tier counters plus serving counters
//	GET  /healthz     liveness
//
// Admission is a bounded slot pool (one slot per admitted request — a sweep
// holds one slot for its whole stream); past the bound, requests are
// rejected with 503 rather than queued without limit. Within admission,
// simulations share a semaphore sized to the configured parallelism, and
// identical in-flight content addresses attach to one leader computation
// (the coalescing map) instead of re-simulating.
//
// Unlike the simulated-machine packages, sweepd is deliberately NOT
// annotated //ccsvm:deterministic: it is the concurrent, wall-clock-facing
// serving shell around the deterministic core, and the lint suite's
// determinism analyzer does not apply to it. Every simulation it launches
// still runs inside the deterministic contract, which is exactly what makes
// caching and coalescing sound.
package sweepd
