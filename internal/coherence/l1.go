package coherence

import (
	"fmt"

	"ccsvm/internal/cache"
	"ccsvm/internal/mem"
	"ccsvm/internal/noc"
	"ccsvm/internal/sim"
	"ccsvm/internal/stats"
)

// L1Config describes one private L1 data cache and its controller.
type L1Config struct {
	// Cache is the array geometry (64 KB 4-way for CPU cores, 16 KB 4-way
	// for MTTOP cores in Table 2).
	Cache cache.Config
	// HitLatency is the load-to-use latency of a hit (2 CPU cycles for CPU
	// cores, 1 MTTOP cycle for MTTOP cores).
	HitLatency sim.Duration
	// Protocol selects the coherence protocol tables this controller
	// executes; nil selects MOESI, the paper's baseline. Every controller in
	// a machine must run the same protocol.
	Protocol *Protocol
	// Name prefixes this controller's statistics.
	Name string
}

// pendingAccess is a core request waiting inside the controller.
type pendingAccess struct {
	req mem.Request
	//ccsvm:stateok // core completion callback; cores re-issue quiesced accesses on restore
	done func()
}

// mshr tracks one outstanding transaction for one line.
type mshr struct {
	addr      mem.LineAddr
	wantWrite bool
	// fromOwned marks an upgrade issued while this cache held the line in
	// Owned state: until the directory processes the upgrade this cache is
	// still the owner and must answer forwards immediately (deferring them
	// would deadlock the blocked directory).
	fromOwned bool
	primary   pendingAccess
	secondary []pendingAccess
	// acksNeeded is -1 until the data/ack-count response announces it.
	acksNeeded   int
	acksReceived int
	haveData     bool
	deferred     []*Msg
}

// evictEntry is a line that has been evicted from the array but whose
// writeback (Put) has not been acknowledged yet; it can still supply data to
// forwarded requests.
type evictEntry struct {
	state cache.State
}

// L1Controller is the coherence controller of one private L1 data cache. It
// accepts requests from its core through the mem.Port interface and executes
// its configured protocol's transition tables (MOESI by default) against the
// directory banks on the on-chip network.
//
//ccsvm:state
type L1Controller struct {
	engine *sim.Engine
	id     noc.NodeID
	net    noc.Network
	//ccsvm:stateok // pure address-interleaving function; rebuilt from the bank list on restore
	banks   BankMapper
	cfg     L1Config
	proto   *Protocol
	array   *cache.Array
	checker *Checker

	mshrs     map[mem.LineAddr]*mshr
	evictions map[mem.LineAddr]*evictEntry
	stalled   []pendingAccess

	// pool recycles protocol messages (see msgPool for the ownership rules).
	pool msgPool
	// paFree recycles the carriers that ride core requests through the
	// tag-latency delay, and handleFn is that continuation bound once, so
	// Access schedules without allocating (see Engine.ScheduleArg).
	paFree []*pendingAccess
	//ccsvm:stateok // bound once at construction; rebound on restore
	handleFn func(any)

	hits        *stats.Counter
	misses      *stats.Counter
	evictsClean *stats.Counter
	evictsDirty *stats.Counter
	invsRecv    *stats.Counter
	fwdsRecv    *stats.Counter
	dataFwds    *stats.Counter
}

// NewL1Controller builds an L1 controller and attaches it to the network at
// the given node ID.
func NewL1Controller(engine *sim.Engine, id noc.NodeID, net noc.Network, banks BankMapper,
	cfg L1Config, checker *Checker, reg *stats.Registry) *L1Controller {
	proto := cfg.Protocol
	if proto == nil {
		proto = ProtocolMOESI
	}
	c := &L1Controller{
		engine:    engine,
		id:        id,
		net:       net,
		banks:     banks,
		cfg:       cfg,
		proto:     proto,
		array:     cache.NewArray(cfg.Cache),
		checker:   checker,
		mshrs:     make(map[mem.LineAddr]*mshr),
		evictions: make(map[mem.LineAddr]*evictEntry),
	}
	c.handleFn = func(a any) {
		pa := a.(*pendingAccess)
		p := *pa
		*pa = pendingAccess{}
		c.paFree = append(c.paFree, pa)
		c.handle(p)
	}
	c.hits = reg.Counter(cfg.Name + ".hits")
	c.misses = reg.Counter(cfg.Name + ".misses")
	c.evictsClean = reg.Counter(cfg.Name + ".evictions_clean")
	c.evictsDirty = reg.Counter(cfg.Name + ".evictions_dirty")
	c.invsRecv = reg.Counter(cfg.Name + ".invalidations")
	c.fwdsRecv = reg.Counter(cfg.Name + ".forwards")
	c.dataFwds = reg.Counter(cfg.Name + ".data_forwards")
	net.Attach(id, c)
	return c
}

// NodeID reports the controller's network node.
func (c *L1Controller) NodeID() noc.NodeID { return c.id }

// Array exposes the cache array for tests.
func (c *L1Controller) Array() *cache.Array { return c.array }

// Access implements mem.Port: the core issues a request; done runs when the
// access has coherence permission and is globally performed.
func (c *L1Controller) Access(req mem.Request, done func()) {
	if err := req.Validate(); err != nil {
		panic(fmt.Sprintf("%s: %v", c.cfg.Name, err))
	}
	req.Requestor = int(c.id)
	var pa *pendingAccess
	if n := len(c.paFree); n > 0 {
		pa = c.paFree[n-1]
		c.paFree[n-1] = nil
		c.paFree = c.paFree[:n-1]
	} else {
		pa = new(pendingAccess)
	}
	pa.req, pa.done = req, done
	c.engine.ScheduleArg(c.cfg.HitLatency, c.handleFn, pa)
}

// handle processes a request after the tag-access latency has been charged.
func (c *L1Controller) handle(p pendingAccess) {
	addr := p.req.Line()

	// A line whose eviction is still in flight cannot be re-requested until
	// the directory acknowledges the writeback.
	if _, evicting := c.evictions[addr]; evicting {
		c.stalled = append(c.stalled, p)
		return
	}
	// Coalesce with an outstanding transaction for the same line.
	if m := c.mshrs[addr]; m != nil {
		m.secondary = append(m.secondary, p)
		return
	}

	line := c.array.Touch(addr)
	needWrite := p.req.Type.NeedsExclusive()
	if line != nil && line.State.Stable() {
		if !needWrite && line.State.CanRead() {
			c.hits.Inc()
			p.done()
			return
		}
		if needWrite && line.State.CanWrite() {
			if line.State == cache.Exclusive {
				line.State = cache.Modified
				c.checker.Record(c.id, addr, cache.Modified)
			}
			c.hits.Inc()
			p.done()
			return
		}
	}
	c.misses.Inc()
	c.startTransaction(p, line, needWrite)
}

// startTransaction allocates a way if needed and sends GetS or GetM.
func (c *L1Controller) startTransaction(p pendingAccess, line *cache.Line, needWrite bool) {
	addr := p.req.Line()
	var initial cache.State
	if line == nil {
		var victim cache.Line
		var evicted, ok bool
		line, victim, evicted, ok = c.array.Allocate(addr)
		if !ok {
			// Every way in the set has an outstanding transaction; retry when
			// one completes.
			c.stalled = append(c.stalled, p)
			return
		}
		if evicted {
			c.evictLine(victim)
		}
		if needWrite {
			initial = cache.IMAD
		} else {
			initial = cache.ISD
		}
	} else {
		// Upgrade in place: a Shared or Owned copy needs write permission.
		// Both wait for an ack count (and possibly data) from the directory,
		// which the SM_AD state handles.
		if (line.State != cache.Shared && line.State != cache.Owned) || !needWrite {
			panic(fmt.Sprintf("%s: unexpected transaction start from %v", c.cfg.Name, line.State))
		}
		initial = cache.SMAD
	}
	fromOwned := initial == cache.SMAD && line.State == cache.Owned
	line.State = initial
	m := &mshr{addr: addr, wantWrite: needWrite, fromOwned: fromOwned, primary: p, acksNeeded: -1}
	c.mshrs[addr] = m
	typ := MsgGetS
	if needWrite {
		typ = MsgGetM
	}
	send(c.net, c.id, c.banks(addr), c.pool.get(typ, addr, c.id))
}

// evictLine handles a victim chosen by the replacement policy, following the
// protocol's eviction table. A silent row (clean sharers) drops the line with
// no directory traffic — the sharer list becomes conservative, which is
// harmless because we still ack any future invalidation.
func (c *L1Controller) evictLine(victim cache.Line) {
	act, ok := c.proto.evict[victim.State]
	if !ok {
		panic(fmt.Sprintf("%s: evicting line in state %v under %s", c.cfg.Name, victim.State, c.proto.Name))
	}
	if act.dirty {
		c.evictsDirty.Inc()
	} else {
		c.evictsClean.Inc()
	}
	c.checker.Record(c.id, victim.Addr, cache.Invalid)
	if act.silent {
		return
	}
	c.evictions[victim.Addr] = &evictEntry{state: act.next}
	put := c.pool.get(act.put, victim.Addr, c.id)
	put.Dirty = act.dirty
	send(c.net, c.id, c.banks(victim.Addr), put)
}

// Receive implements noc.Receiver. Responses, invalidations and put-acks are
// fully consumed here and released; forwards are released by handleFwd, which
// may retain them in an MSHR's deferred list first.
//
//ccsvm:hotpath
func (c *L1Controller) Receive(nm *noc.Message) {
	m := nm.Payload.(*Msg)
	switch m.Type {
	case MsgData, MsgDataExcl, MsgAckCount:
		c.handleResponse(m)
		c.pool.put(m)
	case MsgInvAck:
		c.handleInvAck(m)
		c.pool.put(m)
	case MsgFwdGetS, MsgFwdGetM:
		c.handleFwd(m)
	case MsgInv:
		c.handleInv(m)
		c.pool.put(m)
	case MsgPutAck, MsgPutAckStale:
		c.handlePutAck(m)
		c.pool.put(m)
	default:
		panic(fmt.Sprintf("%s: unexpected message %v", c.cfg.Name, m))
	}
}

func (c *L1Controller) handleResponse(m *Msg) {
	ms := c.mshrs[m.Addr]
	if ms == nil {
		panic(fmt.Sprintf("%s: response %v with no outstanding transaction", c.cfg.Name, m))
	}
	line := c.array.Lookup(m.Addr)
	if line == nil {
		panic(fmt.Sprintf("%s: response %v with no allocated line", c.cfg.Name, m))
	}
	switch line.State {
	case cache.ISD:
		final, ok := c.proto.fill[m.Type]
		if !ok {
			panic(fmt.Sprintf("%s: %v in IS_D", c.cfg.Name, m))
		}
		c.complete(ms, line, final)
	case cache.ISDI:
		// The line was invalidated while the fill was in flight: the data
		// satisfies the pending loads exactly once and the line is dropped.
		c.completeAndInvalidate(ms, line)
	case cache.IMAD, cache.SMAD:
		switch m.Type {
		case MsgDataExcl, MsgAckCount:
			ms.haveData = true
			ms.acksNeeded = m.AckCount
			if ms.acksReceived >= ms.acksNeeded {
				c.complete(ms, line, cache.Modified)
			} else if line.State == cache.IMAD {
				line.State = cache.IMA
			} else {
				line.State = cache.SMA
			}
		default:
			panic(fmt.Sprintf("%s: %v in %v", c.cfg.Name, m, line.State))
		}
	default:
		panic(fmt.Sprintf("%s: response %v in state %v", c.cfg.Name, m, line.State))
	}
}

func (c *L1Controller) handleInvAck(m *Msg) {
	ms := c.mshrs[m.Addr]
	if ms == nil {
		panic(fmt.Sprintf("%s: InvAck with no outstanding transaction for %v", c.cfg.Name, m.Addr))
	}
	ms.acksReceived++
	line := c.array.Lookup(m.Addr)
	if ms.haveData && ms.acksReceived >= ms.acksNeeded {
		c.complete(ms, line, cache.Modified)
	}
}

// complete finishes a transaction: the line reaches final, the waiting core
// requests run, deferred forwards are serviced, and stalled requests retry.
func (c *L1Controller) complete(ms *mshr, line *cache.Line, final cache.State) {
	line.State = final
	c.checker.Record(c.id, ms.addr, final)
	delete(c.mshrs, ms.addr)

	var unsatisfied []pendingAccess
	ms.primary.done()
	for _, s := range ms.secondary {
		if s.req.Type.NeedsExclusive() && !final.CanWrite() {
			unsatisfied = append(unsatisfied, s)
			continue
		}
		s.done()
	}
	// An Exclusive line written by a coalesced store upgrades silently.
	if final == cache.Exclusive {
		for _, s := range ms.secondary {
			if s.req.Type.NeedsExclusive() {
				// Handled above only when CanWrite, which E satisfies; make
				// the upgrade to M visible to the invariant checker.
				line.State = cache.Modified
				c.checker.Record(c.id, ms.addr, cache.Modified)
				break
			}
		}
	}
	deferred := ms.deferred
	ms.deferred = nil
	for _, f := range deferred {
		c.handleFwd(f)
	}
	for _, u := range unsatisfied {
		c.handle(u)
	}
	c.retryStalled()
}

// completeAndInvalidate finishes an IS_D_I transaction: loads are satisfied
// with the in-flight data, then the line is dropped.
func (c *L1Controller) completeAndInvalidate(ms *mshr, line *cache.Line) {
	delete(c.mshrs, ms.addr)
	ms.primary.done()
	var reissue []pendingAccess
	for _, s := range ms.secondary {
		if s.req.Type.NeedsExclusive() {
			reissue = append(reissue, s)
		} else {
			s.done()
		}
	}
	c.array.Invalidate(ms.addr)
	deferred := ms.deferred
	for _, f := range deferred {
		c.handleFwd(f)
	}
	for _, r := range reissue {
		c.handle(r)
	}
	c.retryStalled()
}

// handleFwd owns the incoming forward: every path releases it except the
// deferred append, which hands ownership to the MSHR until complete /
// completeAndInvalidate re-submit it here.
func (c *L1Controller) handleFwd(m *Msg) {
	c.fwdsRecv.Inc()
	if ms := c.mshrs[m.Addr]; ms != nil {
		line := c.array.Lookup(m.Addr)
		// An upgrade from Owned that has not been granted yet: this cache is
		// still the owner the directory forwarded to, and the directory is
		// blocked on our answer, so respond now from the data we still hold.
		if ms.fromOwned && line != nil && line.State == cache.SMAD {
			c.fwdWhileUpgrading(m, ms, line)
			c.pool.put(m)
			return
		}
		// Otherwise the directory has already granted our transaction; the
		// forward concerns a later request and can wait for our data/acks,
		// which are already in flight and cannot be blocked by the directory.
		ms.deferred = append(ms.deferred, m)
		return
	}
	if ev := c.evictions[m.Addr]; ev != nil {
		c.fwdFromEviction(m, ev)
		c.pool.put(m)
		return
	}
	line := c.array.Lookup(m.Addr)
	if line == nil || !line.State.IsOwnerState() {
		st := cache.Invalid
		if line != nil {
			st = line.State
		}
		panic(fmt.Sprintf("%s: forward %v but line state is %v", c.cfg.Name, m, st))
	}
	act := c.fwdAction(line.State, m)
	c.answerFwd(m, act)
	if act.next == cache.Invalid {
		c.array.Invalidate(m.Addr)
		c.checker.Record(c.id, m.Addr, cache.Invalid)
	} else if act.next != line.State {
		line.State = act.next
		c.checker.Record(c.id, m.Addr, act.next)
	}
	c.sendFwdDone(m.Addr, act.kept, act.dirty)
	c.pool.put(m)
}

// fwdAction looks up the protocol's forward table for an owner-side state; a
// missing row is a protocol violation.
func (c *L1Controller) fwdAction(st cache.State, m *Msg) fwdAction {
	act, ok := c.proto.fwd[fwdKey{st, m.Type}]
	if !ok {
		panic(fmt.Sprintf("%s: %v in state %v under %s", c.cfg.Name, m, st, c.proto.Name))
	}
	return act
}

// answerFwd sends the data an owner forwards directly to the requestor; it is
// a no-op under protocols without owner-forwarding, whose directory answers
// the requestor itself after the FwdDone writeback.
func (c *L1Controller) answerFwd(m *Msg, act fwdAction) {
	if !act.forward {
		return
	}
	c.dataFwds.Inc()
	out := c.pool.get(act.data, m.Addr, m.Requestor)
	if act.data == MsgDataExcl {
		out.AckCount = m.AckCount
	}
	send(c.net, c.id, m.Requestor, out)
}

// fwdWhileUpgrading answers a forward received while an upgrade from Owned is
// waiting to be processed by the directory: supplying data for a read leaves
// this cache the registered owner (its GetM will be processed later, owner
// intact); a write ordered first takes the line and the upgrade falls back to
// a full IM_AD fill.
func (c *L1Controller) fwdWhileUpgrading(m *Msg, ms *mshr, line *cache.Line) {
	act := c.fwdAction(cache.SMAD, m)
	c.answerFwd(m, act)
	if act.next != cache.SMAD {
		line.State = act.next
		ms.fromOwned = false
		c.checker.Record(c.id, m.Addr, cache.Invalid)
	}
	c.sendFwdDone(m.Addr, act.kept, act.dirty)
}

// fwdFromEviction services a forward for a line that sits in the eviction
// buffer (its Put has not been acknowledged yet, so this cache is still the
// owner from the directory's point of view).
func (c *L1Controller) fwdFromEviction(m *Msg, ev *evictEntry) {
	act := c.fwdAction(ev.state, m)
	c.answerFwd(m, act)
	ev.state = act.next
	c.sendFwdDone(m.Addr, act.kept, act.dirty)
}

func (c *L1Controller) sendFwdDone(addr mem.LineAddr, kept cache.State, dirty bool) {
	done := c.pool.get(MsgFwdDone, addr, c.id)
	done.OwnerKept = kept
	done.Dirty = dirty
	send(c.net, c.id, c.banks(addr), done)
}

func (c *L1Controller) handleInv(m *Msg) {
	c.invsRecv.Inc()
	ack := func() {
		send(c.net, c.id, m.Requestor, c.pool.get(MsgInvAck, m.Addr, m.Requestor))
	}
	if ms := c.mshrs[m.Addr]; ms != nil {
		line := c.array.Lookup(m.Addr)
		act, ok := c.proto.inv[line.State]
		if !ok {
			panic(fmt.Sprintf("%s: Inv in transient state %v under %s", c.cfg.Name, line.State, c.proto.Name))
		}
		line.State = act.next
		if act.record {
			c.checker.Record(c.id, m.Addr, cache.Invalid)
		}
		ack()
		return
	}
	if _, ok := c.evictions[m.Addr]; ok {
		// Conservative: acknowledge; the eviction continues independently.
		ack()
		return
	}
	line := c.array.Lookup(m.Addr)
	if line == nil {
		// Silently evicted sharer: the directory's list was stale.
		ack()
		return
	}
	act, ok := c.proto.inv[line.State]
	if !ok {
		panic(fmt.Sprintf("%s: Inv in state %v under %s", c.cfg.Name, line.State, c.proto.Name))
	}
	if act.next == cache.Invalid {
		c.array.Invalidate(m.Addr)
	}
	if act.record {
		c.checker.Record(c.id, m.Addr, cache.Invalid)
	}
	ack()
}

func (c *L1Controller) handlePutAck(m *Msg) {
	if _, ok := c.evictions[m.Addr]; !ok {
		panic(fmt.Sprintf("%s: PutAck for %v with no eviction in flight", c.cfg.Name, m.Addr))
	}
	delete(c.evictions, m.Addr)
	c.retryStalled()
}

func (c *L1Controller) retryStalled() {
	if len(c.stalled) == 0 {
		return
	}
	pending := c.stalled
	c.stalled = nil
	for _, p := range pending {
		c.handle(p)
	}
}

// Flush invalidates the entire cache, writing back dirty lines. It is used by
// tests and by machine teardown; it must only be called when no transactions
// are outstanding.
func (c *L1Controller) Flush() {
	if len(c.mshrs) != 0 {
		panic(fmt.Sprintf("%s: flush with outstanding transactions", c.cfg.Name))
	}
	var victims []cache.Line
	c.array.ForEach(func(l *cache.Line) {
		victims = append(victims, *l)
	})
	for _, v := range victims {
		c.array.Invalidate(v.Addr)
		c.evictLine(v)
	}
}

// DataForwards reports how many times this cache answered a forward with data
// sent directly to the requestor. Structurally zero under protocols without
// owner-forwarding — the memtest harness asserts exactly that.
func (c *L1Controller) DataForwards() uint64 { return c.dataFwds.Value() }

// OutstandingTransactions reports the number of in-flight MSHRs (tests use
// this to confirm quiescence).
func (c *L1Controller) OutstandingTransactions() int { return len(c.mshrs) + len(c.evictions) }

var _ mem.Port = (*L1Controller)(nil)
var _ noc.Receiver = (*L1Controller)(nil)
