package coherence

import (
	"fmt"

	"ccsvm/internal/cache"
	"ccsvm/internal/mem"
	"ccsvm/internal/noc"
)

// Checker verifies the single-writer/multiple-reader (SWMR) invariant on
// every stable-state transition reported by the L1 controllers. It is cheap
// enough to stay enabled in normal runs and is the backbone of the protocol's
// property-based stress tests.
type Checker struct {
	// lines maps each line to the stable state held by each cache.
	lines map[mem.LineAddr]map[noc.NodeID]cache.State
	// Violations collects human-readable descriptions of invariant
	// violations; tests assert this stays empty.
	Violations []string
	// enabled gates checking; a disabled checker records nothing.
	enabled bool
}

// NewChecker returns an enabled checker.
func NewChecker() *Checker {
	return &Checker{lines: make(map[mem.LineAddr]map[noc.NodeID]cache.State), enabled: true}
}

// SetEnabled turns checking on or off.
func (c *Checker) SetEnabled(on bool) { c.enabled = on }

// Record notes that the cache at node now holds addr in the given stable
// state (Invalid removes the entry) and re-checks the invariant for that
// line.
func (c *Checker) Record(node noc.NodeID, addr mem.LineAddr, st cache.State) {
	if c == nil || !c.enabled {
		return
	}
	if !st.Stable() {
		return
	}
	holders := c.lines[addr]
	if holders == nil {
		if st == cache.Invalid {
			return
		}
		holders = make(map[noc.NodeID]cache.State)
		c.lines[addr] = holders
	}
	if st == cache.Invalid {
		delete(holders, node)
		if len(holders) == 0 {
			delete(c.lines, addr)
		}
	} else {
		holders[node] = st
	}
	c.check(addr, holders)
}

func (c *Checker) check(addr mem.LineAddr, holders map[noc.NodeID]cache.State) {
	writers := 0
	readers := 0
	owners := 0
	//ccsvm:orderinvariant
	for _, st := range holders {
		if st.CanWrite() {
			writers++
		}
		if st.CanRead() {
			readers++
		}
		if st == cache.Owned || st == cache.Modified || st == cache.Exclusive {
			owners++
		}
	}
	if writers > 1 {
		c.Violations = append(c.Violations,
			fmt.Sprintf("SWMR: %v has %d writers: %v", addr, writers, holders))
	}
	if writers == 1 && readers > 1 {
		c.Violations = append(c.Violations,
			fmt.Sprintf("SWMR: %v has a writer and %d readers: %v", addr, readers, holders))
	}
	if owners > 1 {
		c.Violations = append(c.Violations,
			fmt.Sprintf("ownership: %v has %d owner-state holders: %v", addr, owners, holders))
	}
}

// Holders returns a copy of the stable holders of a line, for tests.
func (c *Checker) Holders(addr mem.LineAddr) map[noc.NodeID]cache.State {
	out := make(map[noc.NodeID]cache.State)
	//ccsvm:orderinvariant
	for n, s := range c.lines[addr] {
		out[n] = s
	}
	return out
}

// Ok reports whether no violation has been observed.
func (c *Checker) Ok() bool { return len(c.Violations) == 0 }
