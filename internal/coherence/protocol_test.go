package coherence

import (
	"fmt"
	"math/rand"
	"testing"

	"ccsvm/internal/cache"
	"ccsvm/internal/dram"
	"ccsvm/internal/mem"
	"ccsvm/internal/noc"
	"ccsvm/internal/sim"
	"ccsvm/internal/stats"
)

// testSystem is a small CCSVM memory system: a torus, some L1 controllers,
// some directory banks and a DRAM channel, with the SWMR checker enabled.
type testSystem struct {
	engine  *sim.Engine
	torus   *noc.Torus
	l1s     []*L1Controller
	banks   []*DirectoryBank
	memory  *dram.Controller
	checker *Checker
	reg     *stats.Registry
}

func newTestSystem(t testing.TB, numL1, numBanks int) *testSystem {
	return newTestSystemProto(t, numL1, numBanks, ProtocolMOESI)
}

// newTestSystemProto builds the system running an explicit protocol table.
func newTestSystemProto(t testing.TB, numL1, numBanks int, proto *Protocol) *testSystem {
	t.Helper()
	engine := sim.NewEngine()
	reg := stats.NewRegistry("test")
	checker := NewChecker()

	// Node IDs: L1s are 0..numL1-1, banks follow.
	placement := make(map[noc.NodeID]noc.Coord)
	total := numL1 + numBanks
	width := 4
	height := (total + width - 1) / width
	if height < 1 {
		height = 1
	}
	for i := 0; i < total; i++ {
		placement[noc.NodeID(i)] = noc.Coord{X: i % width, Y: i / width}
	}
	torus := noc.NewTorus(engine, noc.DefaultTorusConfig(width, height), placement, reg)
	memory := dram.NewController(engine, dram.DefaultCCSVMConfig(), reg, "dram")

	bankIDs := make([]noc.NodeID, numBanks)
	for i := range bankIDs {
		bankIDs[i] = noc.NodeID(numL1 + i)
	}
	mapper := InterleaveBanks(bankIDs)

	s := &testSystem{engine: engine, torus: torus, memory: memory, checker: checker, reg: reg}
	for i := 0; i < numL1; i++ {
		cfg := L1Config{
			Cache:      cache.Config{SizeBytes: 4096, Assoc: 4, Name: fmt.Sprintf("l1.%d", i)},
			HitLatency: 690 * sim.Picosecond,
			Name:       fmt.Sprintf("l1.%d", i),
			Protocol:   proto,
		}
		s.l1s = append(s.l1s, NewL1Controller(engine, noc.NodeID(i), torus, mapper, cfg, checker, reg))
	}
	for i := 0; i < numBanks; i++ {
		cfg := BankConfig{
			L2:            cache.Config{SizeBytes: 64 * 1024, Assoc: 16, Name: fmt.Sprintf("l2.%d", i)},
			AccessLatency: 3400 * sim.Picosecond,
			Name:          fmt.Sprintf("l2.%d", i),
			Protocol:      proto,
		}
		s.banks = append(s.banks, NewDirectoryBank(engine, bankIDs[i], torus, cfg, memory, reg))
	}
	// Every pooled protocol message allocated during the test must have been
	// released by the time it ends: a message parked in a queue (a directory's
	// pending request, an L1's deferred forward) and never released is a leak,
	// and a double release corrupts the free list. Both fail the test loudly.
	t.Cleanup(func() {
		ps := SumPoolStats(s.l1s, s.banks)
		if ps.DoubleReleases != 0 {
			t.Errorf("%d double-released protocol messages", ps.DoubleReleases)
		}
		if n := ps.InFlight(); n != 0 {
			t.Errorf("%d protocol messages leaked (allocated %d, released %d)", n, ps.Gets, ps.Puts)
		}
	})
	return s
}

// access issues a request on an L1 and returns a pointer to a completion flag.
func (s *testSystem) access(l1 int, typ mem.AccessType, addr mem.PAddr) *bool {
	done := new(bool)
	s.l1s[l1].Access(mem.Request{Type: typ, Addr: addr, Size: 8}, func() { *done = true })
	return done
}

// quiesce runs the engine dry and asserts that every transaction finished and
// the invariant checker saw no violation.
func (s *testSystem) quiesce(t testing.TB) {
	t.Helper()
	s.engine.Run()
	for i, l1 := range s.l1s {
		if n := l1.OutstandingTransactions(); n != 0 {
			t.Fatalf("l1.%d still has %d outstanding transactions", i, n)
		}
	}
	for i, b := range s.banks {
		if b.Busy() {
			t.Fatalf("bank %d still busy", i)
		}
	}
	if !s.checker.Ok() {
		t.Fatalf("SWMR violations: %v", s.checker.Violations)
	}
}

func (s *testSystem) l1State(l1 int, addr mem.PAddr) cache.State {
	line := s.l1s[l1].Array().Lookup(mem.LineOf(addr))
	if line == nil {
		return cache.Invalid
	}
	return line.State
}

func (s *testSystem) dirState(addr mem.PAddr) (DirState, noc.NodeID, []noc.NodeID) {
	line := mem.LineOf(addr)
	for _, b := range s.banks {
		st, owner, sharers := b.Entry(line)
		if st != DirInvalid || len(sharers) > 0 {
			return st, owner, sharers
		}
	}
	return DirInvalid, 0, nil
}

func TestFirstReaderGetsExclusive(t *testing.T) {
	s := newTestSystem(t, 2, 1)
	done := s.access(0, mem.Read, 0x1000)
	s.quiesce(t)
	if !*done {
		t.Fatal("read did not complete")
	}
	if st := s.l1State(0, 0x1000); st != cache.Exclusive {
		t.Fatalf("first reader in %v, want E", st)
	}
	st, owner, _ := s.dirState(0x1000)
	if st != DirExclusive || owner != 0 {
		t.Fatalf("directory %v owner %d, want Dir-EM owner 0", st, owner)
	}
	if s.memory.Reads() != 1 {
		t.Fatalf("DRAM reads = %d, want 1 (cold miss)", s.memory.Reads())
	}
}

func TestSecondReaderDowngradesToShared(t *testing.T) {
	s := newTestSystem(t, 2, 1)
	s.access(0, mem.Read, 0x1000)
	s.quiesce(t)
	s.access(1, mem.Read, 0x1000)
	s.quiesce(t)
	if st := s.l1State(0, 0x1000); st != cache.Shared {
		t.Fatalf("first reader in %v after second read, want S", st)
	}
	if st := s.l1State(1, 0x1000); st != cache.Shared {
		t.Fatalf("second reader in %v, want S", st)
	}
	st, _, sharers := s.dirState(0x1000)
	if st != DirShared || len(sharers) != 2 {
		t.Fatalf("directory %v with %d sharers, want Dir-S with 2", st, len(sharers))
	}
	// The second reader must not have gone off-chip: the data was on chip.
	if s.memory.Reads() != 1 {
		t.Fatalf("DRAM reads = %d, want 1 (second read served on-chip)", s.memory.Reads())
	}
}

func TestWriterThenReaderMakesOwned(t *testing.T) {
	s := newTestSystem(t, 2, 1)
	s.access(0, mem.Write, 0x2000)
	s.quiesce(t)
	if st := s.l1State(0, 0x2000); st != cache.Modified {
		t.Fatalf("writer in %v, want M", st)
	}
	s.access(1, mem.Read, 0x2000)
	s.quiesce(t)
	if st := s.l1State(0, 0x2000); st != cache.Owned {
		t.Fatalf("previous writer in %v, want O", st)
	}
	if st := s.l1State(1, 0x2000); st != cache.Shared {
		t.Fatalf("reader in %v, want S", st)
	}
	st, owner, sharers := s.dirState(0x2000)
	if st != DirOwned || owner != 0 || len(sharers) != 1 {
		t.Fatalf("directory %v owner %d sharers %v", st, owner, sharers)
	}
}

func TestWriterInvalidatesSharers(t *testing.T) {
	s := newTestSystem(t, 3, 2)
	s.access(0, mem.Read, 0x3000)
	s.quiesce(t)
	s.access(1, mem.Read, 0x3000)
	s.quiesce(t)
	s.access(2, mem.Write, 0x3000)
	s.quiesce(t)
	if st := s.l1State(0, 0x3000); st != cache.Invalid {
		t.Fatalf("sharer 0 in %v, want I", st)
	}
	if st := s.l1State(1, 0x3000); st != cache.Invalid {
		t.Fatalf("sharer 1 in %v, want I", st)
	}
	if st := s.l1State(2, 0x3000); st != cache.Modified {
		t.Fatalf("writer in %v, want M", st)
	}
	st, owner, _ := s.dirState(0x3000)
	if st != DirExclusive || owner != 2 {
		t.Fatalf("directory %v owner %d, want Dir-EM owner 2", st, owner)
	}
}

func TestUpgradeFromShared(t *testing.T) {
	s := newTestSystem(t, 2, 1)
	s.access(0, mem.Read, 0x4000)
	s.quiesce(t)
	s.access(1, mem.Read, 0x4000)
	s.quiesce(t)
	// Core 1 upgrades its shared copy.
	s.access(1, mem.Write, 0x4000)
	s.quiesce(t)
	if st := s.l1State(1, 0x4000); st != cache.Modified {
		t.Fatalf("upgrader in %v, want M", st)
	}
	if st := s.l1State(0, 0x4000); st != cache.Invalid {
		t.Fatalf("other sharer in %v, want I", st)
	}
}

func TestWriteAfterExclusiveReadIsSilentUpgrade(t *testing.T) {
	s := newTestSystem(t, 2, 1)
	s.access(0, mem.Read, 0x5000)
	s.quiesce(t)
	before := s.reg.Sum("l1.0.misses")
	s.access(0, mem.Write, 0x5000)
	s.quiesce(t)
	if st := s.l1State(0, 0x5000); st != cache.Modified {
		t.Fatalf("state %v, want M after silent upgrade", st)
	}
	if after := s.reg.Sum("l1.0.misses"); after != before {
		t.Fatalf("silent E->M upgrade should not miss (misses %d -> %d)", before, after)
	}
}

func TestAtomicRMWBehavesAsWrite(t *testing.T) {
	s := newTestSystem(t, 2, 1)
	s.access(0, mem.Read, 0x6000)
	s.quiesce(t)
	s.access(1, mem.ReadModifyWrite, 0x6000)
	s.quiesce(t)
	if st := s.l1State(1, 0x6000); st != cache.Modified {
		t.Fatalf("atomic requester in %v, want M", st)
	}
	if st := s.l1State(0, 0x6000); st != cache.Invalid {
		t.Fatalf("previous holder in %v, want I", st)
	}
}

func TestMigratorySharing(t *testing.T) {
	// A line written by core 0, then 1, then 2 migrates; exactly one writer
	// at any time and the final directory owner is core 2.
	s := newTestSystem(t, 3, 2)
	for core := 0; core < 3; core++ {
		s.access(core, mem.Write, 0x7000)
		s.quiesce(t)
	}
	for core := 0; core < 2; core++ {
		if st := s.l1State(core, 0x7000); st != cache.Invalid {
			t.Fatalf("core %d in %v, want I", core, st)
		}
	}
	if st := s.l1State(2, 0x7000); st != cache.Modified {
		t.Fatalf("core 2 in %v, want M", st)
	}
}

func TestDirtyEvictionWritesBackToL2NotDRAM(t *testing.T) {
	s := newTestSystem(t, 1, 1)
	// The test L1 is 4 KB, 4-way, 16 sets: lines 0, 16, 32, ... map to set 0.
	setStride := mem.PAddr(16 * mem.LineSize)
	base := mem.PAddr(0x10000)
	for i := 0; i < 5; i++ {
		s.access(0, mem.Write, base+mem.PAddr(i)*setStride)
		s.quiesce(t)
	}
	// One line was evicted dirty; it must have been written back into the L2
	// (PutM) without a DRAM write (the L2 absorbs it).
	if got := s.reg.Sum("l1.0.evictions_dirty"); got != 1 {
		t.Fatalf("dirty evictions = %d, want 1", got)
	}
	if w := s.memory.Writes(); w != 0 {
		t.Fatalf("DRAM writes = %d, want 0 (L2 absorbs the writeback)", w)
	}
	// Re-reading the evicted line must return it from the L2, not DRAM.
	reads := s.memory.Reads()
	s.access(0, mem.Read, base)
	s.quiesce(t)
	if s.memory.Reads() != reads {
		t.Fatalf("re-read of written-back line went to DRAM")
	}
}

func TestReadAfterRemoteEvictionStillWorks(t *testing.T) {
	s := newTestSystem(t, 2, 1)
	setStride := mem.PAddr(16 * mem.LineSize)
	base := mem.PAddr(0x20000)
	// Core 0 dirties a line, then evicts it by filling the set.
	s.access(0, mem.Write, base)
	s.quiesce(t)
	for i := 1; i <= 4; i++ {
		s.access(0, mem.Write, base+mem.PAddr(i)*setStride)
		s.quiesce(t)
	}
	// Core 1 reads the original line; it must complete and become readable.
	done := s.access(1, mem.Read, base)
	s.quiesce(t)
	if !*done {
		t.Fatal("read after remote eviction did not complete")
	}
	if st := s.l1State(1, base); !st.CanRead() {
		t.Fatalf("reader in %v, want a readable state", st)
	}
}

func TestFlushWritesEverythingBack(t *testing.T) {
	s := newTestSystem(t, 1, 1)
	for i := 0; i < 8; i++ {
		s.access(0, mem.Write, mem.PAddr(0x30000+i*mem.LineSize))
	}
	s.quiesce(t)
	s.l1s[0].Flush()
	s.quiesce(t)
	if occ := s.l1s[0].Array().Occupancy(); occ != 0 {
		t.Fatalf("occupancy after flush = %d, want 0", occ)
	}
	st, _, _ := s.dirState(0x30000)
	if st != DirInvalid {
		t.Fatalf("directory state after flush = %v, want Dir-I", st)
	}
}

func TestMSHRCoalescingSameLine(t *testing.T) {
	s := newTestSystem(t, 1, 1)
	// Two reads to the same line issued back to back: one miss, both complete.
	d1 := s.access(0, mem.Read, 0x9000)
	d2 := s.access(0, mem.Read, 0x9008)
	s.quiesce(t)
	if !*d1 || !*d2 {
		t.Fatal("coalesced reads did not both complete")
	}
	if m := s.reg.Sum("l1.0.misses"); m != 1 {
		t.Fatalf("misses = %d, want 1 (coalesced)", m)
	}
}

func TestWriteCoalescedBehindReadUpgrades(t *testing.T) {
	s := newTestSystem(t, 2, 1)
	// Another core holds the line S so that our read is granted S (not E),
	// forcing the coalesced write to upgrade afterwards.
	s.access(1, mem.Read, 0xa000)
	s.quiesce(t)
	s.access(1, mem.Read, 0xa000) // keep it S at core 1
	d1 := s.access(0, mem.Read, 0xa000)
	d2 := s.access(0, mem.Write, 0xa008)
	s.quiesce(t)
	if !*d1 || !*d2 {
		t.Fatal("read+write to same line did not complete")
	}
	if st := s.l1State(0, 0xa000); st != cache.Modified {
		t.Fatalf("final state %v, want M", st)
	}
}

// TestRandomStress drives several cores with random traffic over a small set
// of lines (maximizing conflicts) and checks that every access completes,
// every controller quiesces, and SWMR is never violated.
func TestRandomStress(t *testing.T) {
	seeds := []int64{1, 2, 3, 7, 42}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, proto := range protocolList {
		for _, seed := range seeds {
			proto, seed := proto, seed
			t.Run(fmt.Sprintf("%s/seed%d", proto.Name, seed), func(t *testing.T) {
				runRandomStress(t, proto, seed, 6, 4, 2000)
			})
		}
	}
}

func runRandomStress(t *testing.T, proto *Protocol, seed int64, cores, banks, ops int) {
	rng := rand.New(rand.NewSource(seed))
	s := newTestSystemProto(t, cores, banks, proto)

	// 24 distinct lines, several of which collide in the same L1 set.
	lines := make([]mem.PAddr, 24)
	for i := range lines {
		lines[i] = mem.PAddr(0x100000 + i*mem.LineSize*3)
	}

	completed := 0
	var issue func(core int, remaining int)
	issue = func(core int, remaining int) {
		if remaining == 0 {
			return
		}
		addr := lines[rng.Intn(len(lines))] + mem.PAddr(rng.Intn(7)*8)
		var typ mem.AccessType
		switch rng.Intn(3) {
		case 0:
			typ = mem.Read
		case 1:
			typ = mem.Write
		default:
			typ = mem.ReadModifyWrite
		}
		delay := sim.Duration(rng.Intn(2000)) * sim.Picosecond
		s.engine.Schedule(delay, func() {
			s.l1s[core].Access(mem.Request{Type: typ, Addr: addr, Size: 8}, func() {
				completed++
				issue(core, remaining-1)
			})
		})
	}
	perCore := ops / cores
	for c := 0; c < cores; c++ {
		issue(c, perCore)
	}
	s.quiesce(t)
	if completed != perCore*cores {
		t.Fatalf("completed %d accesses, want %d", completed, perCore*cores)
	}
}

// TestRandomStressManyBanksFewLines pushes harder on directory blocking and
// forwarding by using very few lines.
func TestRandomStressFewLines(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	s := newTestSystem(t, 8, 4)
	lines := []mem.PAddr{0x100000, 0x100040, 0x100080}
	completed := 0
	total := 0
	var issue func(core, remaining int)
	issue = func(core, remaining int) {
		if remaining == 0 {
			return
		}
		addr := lines[rng.Intn(len(lines))]
		typ := mem.Read
		if rng.Intn(2) == 0 {
			typ = mem.Write
		}
		s.engine.Schedule(sim.Duration(rng.Intn(500)), func() {
			s.l1s[core].Access(mem.Request{Type: typ, Addr: addr, Size: 8}, func() {
				completed++
				issue(core, remaining-1)
			})
		})
	}
	for c := 0; c < 8; c++ {
		issue(c, 150)
		total += 150
	}
	s.quiesce(t)
	if completed != total {
		t.Fatalf("completed %d, want %d", completed, total)
	}
}

func TestCheckerDetectsViolations(t *testing.T) {
	c := NewChecker()
	c.Record(0, 0x40, cache.Modified)
	c.Record(1, 0x40, cache.Modified)
	if c.Ok() {
		t.Fatal("checker should flag two simultaneous writers")
	}
	c2 := NewChecker()
	c2.Record(0, 0x40, cache.Modified)
	c2.Record(1, 0x40, cache.Shared)
	if c2.Ok() {
		t.Fatal("checker should flag writer+reader")
	}
	c3 := NewChecker()
	c3.Record(0, 0x40, cache.Shared)
	c3.Record(1, 0x40, cache.Shared)
	c3.Record(0, 0x40, cache.Invalid)
	if !c3.Ok() {
		t.Fatalf("legal sharing flagged: %v", c3.Violations)
	}
	if len(c3.Holders(0x40)) != 1 {
		t.Fatal("holder bookkeeping wrong")
	}
}

func TestInterleaveBanks(t *testing.T) {
	banks := []noc.NodeID{10, 11, 12, 13}
	mapper := InterleaveBanks(banks)
	counts := make(map[noc.NodeID]int)
	for i := 0; i < 400; i++ {
		counts[mapper(mem.LineAddr(i))]++
	}
	for _, b := range banks {
		if counts[b] != 100 {
			t.Fatalf("bank %d got %d lines, want 100", b, counts[b])
		}
	}
	if mapper(0) != mapper(4) || mapper(0) == mapper(1) {
		t.Fatal("interleaving pattern wrong")
	}
}
