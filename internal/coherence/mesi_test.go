package coherence

import (
	"testing"

	"ccsvm/internal/cache"
	"ccsvm/internal/mem"
)

// The directed MESI suite pins the semantics that distinguish the MESI table
// from MOESI: no Owned state ever, no owner-forwarding ever (the directory
// answers every requestor itself), and dirty data always flowing through the
// L2 on a downgrade.

// TestMESIWriterThenReaderSharesWithoutOwned is the MESI counterpart of
// TestWriterThenReaderMakesOwned: the previous writer downgrades to plain S
// (not O), the directory to Dir-S tracking both, and the dirty line lands in
// the L2 — not DRAM — on the way.
func TestMESIWriterThenReaderSharesWithoutOwned(t *testing.T) {
	s := newTestSystemProto(t, 2, 1, ProtocolMESI)
	s.access(0, mem.Write, 0x2000)
	s.quiesce(t)
	if st := s.l1State(0, 0x2000); st != cache.Modified {
		t.Fatalf("writer in %v, want M", st)
	}
	done := s.access(1, mem.Read, 0x2000)
	s.quiesce(t)
	if !*done {
		t.Fatal("read did not complete")
	}
	if st := s.l1State(0, 0x2000); st != cache.Shared {
		t.Fatalf("previous writer in %v, want S (MESI has no O)", st)
	}
	if st := s.l1State(1, 0x2000); st != cache.Shared {
		t.Fatalf("reader in %v, want S", st)
	}
	st, _, sharers := s.dirState(0x2000)
	if st != DirShared || len(sharers) != 2 {
		t.Fatalf("directory %v with sharers %v, want Dir-S tracking both", st, sharers)
	}
	// The dirty data was written back into the L2, never to DRAM, and the
	// reader was answered by the directory — not by the previous owner.
	if w := s.memory.Writes(); w != 0 {
		t.Fatalf("DRAM writes = %d, want 0 (L2 absorbs the downgrade writeback)", w)
	}
	if fwds := s.reg.Sum("l1.0.data_forwards"); fwds != 0 {
		t.Fatalf("owner forwarded data %d time(s) under MESI, want 0", fwds)
	}
	if got := s.reg.Sum("l1.0.forwards"); got != 1 {
		t.Fatalf("owner saw %d forward(s), want 1 (the FwdGetS it answered with FwdDone only)", got)
	}
}

// TestMESIWriteMigrationForwardsNoData: on a write to a modified remote line
// the old owner invalidates and writes its dirty line back through the
// directory; the requestor's data comes from the directory.
func TestMESIWriteMigrationForwardsNoData(t *testing.T) {
	s := newTestSystemProto(t, 3, 2, ProtocolMESI)
	for core := 0; core < 3; core++ {
		done := s.access(core, mem.Write, 0x7000)
		s.quiesce(t)
		if !*done {
			t.Fatalf("core %d write did not complete", core)
		}
	}
	for core := 0; core < 2; core++ {
		if st := s.l1State(core, 0x7000); st != cache.Invalid {
			t.Fatalf("core %d in %v, want I", core, st)
		}
	}
	if st := s.l1State(2, 0x7000); st != cache.Modified {
		t.Fatalf("core 2 in %v, want M", st)
	}
	for core := 0; core < 3; core++ {
		if fwds := s.reg.Sum("l1." + string(rune('0'+core)) + ".data_forwards"); fwds != 0 {
			t.Fatalf("core %d forwarded data %d time(s) under MESI, want 0", core, fwds)
		}
	}
}

// TestMESIDirtyDataSurvivesDowngradeAndEviction: after an M->S downgrade via
// the directory, both sharers evict silently; a later reader must still see
// the line on-chip (the L2 holds the only copy of the dirty data).
func TestMESIDirtyDataSurvivesDowngradeAndEviction(t *testing.T) {
	s := newTestSystemProto(t, 2, 1, ProtocolMESI)
	base := mem.PAddr(0x30000)
	setStride := mem.PAddr(16 * mem.LineSize)
	s.access(0, mem.Write, base)
	s.quiesce(t)
	s.access(1, mem.Read, base)
	s.quiesce(t)
	// Fill core 0's set so its S copy evicts silently; core 1 keeps S.
	for i := 1; i <= 4; i++ {
		s.access(0, mem.Read, base+mem.PAddr(i)*setStride)
		s.quiesce(t)
	}
	if st := s.l1State(0, base); st != cache.Invalid {
		t.Fatalf("core 0 in %v after set fill, want I (silent S eviction)", st)
	}
	reads := s.memory.Reads()
	done := s.access(0, mem.Read, base)
	s.quiesce(t)
	if !*done {
		t.Fatal("re-read did not complete")
	}
	if s.memory.Reads() != reads {
		t.Fatal("re-read of downgraded dirty line went to DRAM; the L2 lost the writeback")
	}
}

// TestMESIReadAfterDirtyEviction: the eviction path (PutM) also lands dirty
// data in the L2 under MESI, and a remote reader is served on-chip.
func TestMESIReadAfterDirtyEviction(t *testing.T) {
	s := newTestSystemProto(t, 2, 1, ProtocolMESI)
	setStride := mem.PAddr(16 * mem.LineSize)
	base := mem.PAddr(0x20000)
	s.access(0, mem.Write, base)
	s.quiesce(t)
	for i := 1; i <= 4; i++ {
		s.access(0, mem.Write, base+mem.PAddr(i)*setStride)
		s.quiesce(t)
	}
	reads := s.memory.Reads()
	done := s.access(1, mem.Read, base)
	s.quiesce(t)
	if !*done {
		t.Fatal("read after remote eviction did not complete")
	}
	if st := s.l1State(1, base); !st.CanRead() {
		t.Fatalf("reader in %v, want a readable state", st)
	}
	if s.memory.Reads() != reads {
		t.Fatal("read of evicted dirty line went to DRAM")
	}
}

// TestMESINeverReachesOwned sweeps every L1 line and the directory under a
// contended interleaving and requires that the Owned state never appears in a
// stable snapshot.
func TestMESINeverReachesOwned(t *testing.T) {
	s := newTestSystemProto(t, 4, 2, ProtocolMESI)
	addrs := []mem.PAddr{0x1000, 0x1040, 0x9000}
	for round := 0; round < 4; round++ {
		for c := 0; c < 4; c++ {
			typ := mem.Read
			if (round+c)%2 == 0 {
				typ = mem.Write
			}
			s.access(c, typ, addrs[(round+c)%len(addrs)])
		}
		s.quiesce(t)
		for _, a := range addrs {
			for c := 0; c < 4; c++ {
				if st := s.l1State(c, a); st == cache.Owned {
					t.Fatalf("round %d: core %d reached O under MESI", round, c)
				}
			}
			if st, _, _ := s.dirState(a); st == DirOwned {
				t.Fatalf("round %d: directory reached Dir-O under MESI", round)
			}
		}
	}
}

// TestInvDuringWriteMissIsAcked is the litmus regression for the latent
// stale-sharer race the table extraction exposed: a cache silently evicts its
// S copy, refetches the line as a write (IM_AD), and — because the directory's
// sharer vector is conservative — receives the Inv of a concurrent writer
// ordered ahead of it. The Inv must be acked in place (the in-flight GetM owes
// the concurrent writer an ack; there is no copy to invalidate), not treated
// as a protocol violation. Before the fix this panicked the L1 controller.
func TestInvDuringWriteMissIsAcked(t *testing.T) {
	for _, proto := range protocolList {
		proto := proto
		t.Run(proto.Name, func(t *testing.T) {
			s := newTestSystemProto(t, 2, 1, proto)
			base := mem.PAddr(0x40000)
			setStride := mem.PAddr(16 * mem.LineSize)
			// Both cores share the line.
			s.access(0, mem.Read, base)
			s.quiesce(t)
			s.access(1, mem.Read, base)
			s.quiesce(t)
			// Core 0 silently evicts its S copy; the directory still lists it.
			for i := 1; i <= 4; i++ {
				s.access(0, mem.Read, base+mem.PAddr(i)*setStride)
				s.quiesce(t)
			}
			if st := s.l1State(0, base); st != cache.Invalid {
				t.Fatalf("core 0 in %v after set fill, want I (silent eviction)", st)
			}
			// Concurrent writes: core 1 (a real sharer, ordered first) draws an
			// Inv round that hits core 0's in-flight IM_AD write miss.
			d1 := s.access(1, mem.Write, base)
			d0 := s.access(0, mem.Write, base)
			s.quiesce(t)
			if !*d0 || !*d1 {
				t.Fatalf("writes did not complete (core0 %v, core1 %v)", *d0, *d1)
			}
			// The line migrated to the writer ordered last.
			if st := s.l1State(0, base); st != cache.Modified {
				t.Fatalf("core 0 in %v, want M (its write was ordered after core 1's)", st)
			}
			if st := s.l1State(1, base); st != cache.Invalid {
				t.Fatalf("core 1 in %v, want I", st)
			}
		})
	}
}
