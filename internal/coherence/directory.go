package coherence

import (
	"fmt"
	"sort"

	"ccsvm/internal/cache"
	"ccsvm/internal/dram"
	"ccsvm/internal/mem"
	"ccsvm/internal/noc"
	"ccsvm/internal/sim"
	"ccsvm/internal/stats"
)

// DirState is the directory's view of a line.
type DirState uint8

const (
	// DirInvalid: no L1 holds the line.
	DirInvalid DirState = iota
	// DirShared: one or more L1s hold the line in Shared state.
	DirShared
	// DirExclusive: exactly one L1 holds the line in Exclusive or Modified
	// state (the directory cannot distinguish the two because E upgrades to
	// M silently).
	DirExclusive
	// DirOwned: one L1 holds the line in Owned state; others may share it.
	DirOwned
)

// String names the directory state.
func (s DirState) String() string {
	switch s {
	case DirInvalid:
		return "Dir-I"
	case DirShared:
		return "Dir-S"
	case DirExclusive:
		return "Dir-EM"
	case DirOwned:
		return "Dir-O"
	default:
		return fmt.Sprintf("DirState(%d)", uint8(s))
	}
}

// dirEntry is the directory's bookkeeping for one line.
type dirEntry struct {
	state   DirState
	owner   noc.NodeID
	sharers map[noc.NodeID]struct{}
	// busy blocks the entry while an owner forward or a DRAM fill is in
	// flight; queued requests are serviced in order afterwards.
	busy    bool
	pending *Msg
	queue   []*Msg
}

func (e *dirEntry) sharerList(except noc.NodeID) []noc.NodeID {
	out := make([]noc.NodeID, 0, len(e.sharers))
	//ccsvm:orderinvariant
	for s := range e.sharers {
		if s != except {
			out = append(out, s)
		}
	}
	// Map iteration order is random; invalidations must go out in a fixed
	// order or simulated timing wobbles between runs.
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// BankConfig describes one L2/directory bank.
type BankConfig struct {
	// L2 is this bank's slice of the shared, inclusive L2 (1 MB 16-way per
	// bank for the Table 2 chip).
	L2 cache.Config
	// AccessLatency is the L2/directory access latency charged per request.
	AccessLatency sim.Duration
	// Protocol selects the coherence protocol tables this bank executes; nil
	// selects MOESI. It must match the L1 controllers' protocol.
	Protocol *Protocol
	// Name prefixes this bank's statistics.
	Name string
}

// DirectoryBank is one bank of the shared L2 cache with its embedded
// directory. It owns an interleaved slice of the physical address space and a
// DRAM channel for misses and writebacks.
//
//ccsvm:state
type DirectoryBank struct {
	engine *sim.Engine
	id     noc.NodeID
	net    noc.Network
	cfg    BankConfig
	proto  *Protocol
	l2     *cache.Array
	memory *dram.Controller

	entries map[mem.LineAddr]*dirEntry

	// pool recycles protocol messages (see msgPool for the ownership rules);
	// processFn is the post-access-latency continuation bound once so the
	// per-message Receive path schedules without allocating a closure.
	pool msgPool
	//ccsvm:stateok // bound once at construction; rebound on restore
	processFn func(any)

	// skipInvs is the fault-injection budget armed by
	// InjectSkipInvalidations; zero in normal operation.
	skipInvs int

	requests   *stats.Counter
	l2Hits     *stats.Counter
	l2Misses   *stats.Counter
	writebacks *stats.Counter
	forwards   *stats.Counter
	invsSent   *stats.Counter
}

// NewDirectoryBank builds a bank, attaches it to the network and wires it to
// a DRAM channel.
func NewDirectoryBank(engine *sim.Engine, id noc.NodeID, net noc.Network, cfg BankConfig,
	memory *dram.Controller, reg *stats.Registry) *DirectoryBank {
	proto := cfg.Protocol
	if proto == nil {
		proto = ProtocolMOESI
	}
	b := &DirectoryBank{
		engine:  engine,
		id:      id,
		net:     net,
		cfg:     cfg,
		proto:   proto,
		l2:      cache.NewArray(cfg.L2),
		memory:  memory,
		entries: make(map[mem.LineAddr]*dirEntry),
	}
	b.processFn = func(a any) { b.process(a.(*Msg)) }
	b.requests = reg.Counter(cfg.Name + ".requests")
	b.l2Hits = reg.Counter(cfg.Name + ".l2_hits")
	b.l2Misses = reg.Counter(cfg.Name + ".l2_misses")
	b.writebacks = reg.Counter(cfg.Name + ".writebacks_to_dram")
	b.forwards = reg.Counter(cfg.Name + ".forwards")
	b.invsSent = reg.Counter(cfg.Name + ".invalidations_sent")
	net.Attach(id, b)
	return b
}

// NodeID reports the bank's network node.
func (b *DirectoryBank) NodeID() noc.NodeID { return b.id }

// Entry exposes a line's directory state for tests.
func (b *DirectoryBank) Entry(addr mem.LineAddr) (DirState, noc.NodeID, []noc.NodeID) {
	e, ok := b.entries[addr]
	if !ok {
		return DirInvalid, 0, nil
	}
	return e.state, e.owner, e.sharerList(-1)
}

// InjectSkipInvalidations arms a deliberate protocol bug for the memtest
// subsystem's self-check: each of the next n invalidation rounds triggered by
// a GetM silently drops one sharer — the directory grants write permission
// without invalidating (or counting an ack from) that sharer, leaving it with
// a stale Shared copy. The SWMR checker and the quiesce-time directory/L1
// cross-check must both catch the violation; the stress tests prove they do.
func (b *DirectoryBank) InjectSkipInvalidations(n int) { b.skipInvs = n }

// maybeDropSharer applies the armed fault injection to one invalidation
// round's sharer list.
func (b *DirectoryBank) maybeDropSharer(sharers []noc.NodeID) []noc.NodeID {
	if b.skipInvs > 0 && len(sharers) > 0 {
		b.skipInvs--
		return sharers[:len(sharers)-1]
	}
	return sharers
}

// Busy reports whether any entry is mid-transaction (tests use this to
// confirm quiescence).
func (b *DirectoryBank) Busy() bool {
	//ccsvm:orderinvariant
	for _, e := range b.entries {
		if e.busy || len(e.queue) > 0 {
			return true
		}
	}
	return false
}

func (b *DirectoryBank) entryOf(addr mem.LineAddr) *dirEntry {
	e, ok := b.entries[addr]
	if !ok {
		e = &dirEntry{state: DirInvalid, sharers: make(map[noc.NodeID]struct{})}
		b.entries[addr] = e
	}
	return e
}

// Receive implements noc.Receiver.
//
//ccsvm:hotpath
func (b *DirectoryBank) Receive(nm *noc.Message) {
	// Every message pays the L2/directory access latency. The protocol
	// payload outlives the network envelope (which is recycled when this
	// returns), so it rides to process as the event argument.
	b.engine.ScheduleArg(b.cfg.AccessLatency, b.processFn, nm.Payload)
}

func (b *DirectoryBank) process(m *Msg) {
	switch m.Type {
	case MsgFwdDone:
		b.handleFwdDone(m)
		b.pool.put(m)
	case MsgGetS, MsgGetM, MsgPutM, MsgPutO, MsgPutE:
		e := b.entryOf(m.Addr)
		if e.busy {
			e.queue = append(e.queue, m)
			return
		}
		b.dispatchRequest(e, m)
	default:
		panic(fmt.Sprintf("%s: unexpected message %v", b.cfg.Name, m))
	}
}

// dispatchRequest runs a request the bank owns and releases it afterwards
// unless handling parked it as the entry's pending transaction (waiting on an
// owner's FwdDone, which releases it).
func (b *DirectoryBank) dispatchRequest(e *dirEntry, m *Msg) {
	b.handleRequest(e, m)
	if e.pending != m {
		b.pool.put(m)
	}
}

func (b *DirectoryBank) handleRequest(e *dirEntry, m *Msg) {
	b.requests.Inc()
	if !b.proto.HasOwned && (e.state == DirOwned || m.Type == MsgPutO) {
		panic(fmt.Sprintf("%s: %v with entry %v under %s", b.cfg.Name, m, e.state, b.proto.Name))
	}
	switch m.Type {
	case MsgGetS:
		b.handleGetS(e, m)
	case MsgGetM:
		b.handleGetM(e, m)
	case MsgPutM, MsgPutO, MsgPutE:
		b.handlePut(e, m)
	}
}

func (b *DirectoryBank) handleGetS(e *dirEntry, m *Msg) {
	// The L2-fill continuations capture the request's fields, not the
	// request: m is released when dispatchRequest returns, which can be
	// before a DRAM fill completes.
	addr, req := m.Addr, m.Requestor
	switch e.state {
	case DirInvalid:
		// No cache holds the line: grant Exclusive, as x86-style protocols do
		// for the first reader.
		b.withL2Data(e, addr, func() {
			send(b.net, b.id, req, b.pool.get(MsgDataExcl, addr, req))
			e.state = DirExclusive
			e.owner = req
		})
	case DirShared:
		b.withL2Data(e, addr, func() {
			send(b.net, b.id, req, b.pool.get(MsgData, addr, req))
			e.sharers[req] = struct{}{}
		})
	case DirExclusive, DirOwned:
		e.busy = true
		e.pending = m
		b.forwards.Inc()
		send(b.net, b.id, e.owner, b.pool.get(MsgFwdGetS, addr, req))
	}
}

func (b *DirectoryBank) handleGetM(e *dirEntry, m *Msg) {
	// As in handleGetS, the L2-fill continuation captures fields, not m.
	addr, req := m.Addr, m.Requestor
	switch e.state {
	case DirInvalid:
		b.withL2Data(e, addr, func() {
			send(b.net, b.id, req, b.pool.get(MsgDataExcl, addr, req))
			e.state = DirExclusive
			e.owner = req
		})
	case DirShared:
		others := b.maybeDropSharer(e.sharerList(req))
		_, wasSharer := e.sharers[req]
		for _, s := range others {
			b.invsSent.Inc()
			send(b.net, b.id, s, b.pool.get(MsgInv, addr, req))
		}
		if wasSharer {
			ackc := b.pool.get(MsgAckCount, addr, req)
			ackc.AckCount = len(others)
			send(b.net, b.id, req, ackc)
			e.state = DirExclusive
			e.owner = req
			e.sharers = make(map[noc.NodeID]struct{})
		} else {
			acks := len(others)
			b.withL2Data(e, addr, func() {
				excl := b.pool.get(MsgDataExcl, addr, req)
				excl.AckCount = acks
				send(b.net, b.id, req, excl)
				e.state = DirExclusive
				e.owner = req
				e.sharers = make(map[noc.NodeID]struct{})
			})
		}
	case DirExclusive:
		if e.owner == req {
			panic(fmt.Sprintf("%s: GetM from current exclusive owner %d for %v", b.cfg.Name, req, addr))
		}
		e.busy = true
		e.pending = m
		b.forwards.Inc()
		send(b.net, b.id, e.owner, b.pool.get(MsgFwdGetM, addr, req))
	case DirOwned:
		others := b.maybeDropSharer(e.sharerList(req))
		for _, s := range others {
			b.invsSent.Inc()
			send(b.net, b.id, s, b.pool.get(MsgInv, addr, req))
		}
		if e.owner == req {
			ackc := b.pool.get(MsgAckCount, addr, req)
			ackc.AckCount = len(others)
			send(b.net, b.id, req, ackc)
			e.state = DirExclusive
			e.sharers = make(map[noc.NodeID]struct{})
			return
		}
		e.busy = true
		e.pending = m
		b.forwards.Inc()
		fwd := b.pool.get(MsgFwdGetM, addr, req)
		fwd.AckCount = len(others)
		send(b.net, b.id, e.owner, fwd)
	}
}

func (b *DirectoryBank) handlePut(e *dirEntry, m *Msg) {
	isOwner := (e.state == DirExclusive || e.state == DirOwned) && e.owner == m.Requestor
	if !isOwner {
		send(b.net, b.id, m.Requestor, b.pool.get(MsgPutAckStale, m.Addr, m.Requestor))
		return
	}
	if m.Dirty {
		b.installL2(m.Addr, true)
	}
	switch e.state {
	case DirExclusive:
		e.state = DirInvalid
		e.owner = 0
	case DirOwned:
		e.owner = 0
		if len(e.sharers) == 0 {
			e.state = DirInvalid
		} else {
			e.state = DirShared
		}
	}
	send(b.net, b.id, m.Requestor, b.pool.get(MsgPutAck, m.Addr, m.Requestor))
}

// handleFwdDone resolves a completed forward through the protocol's dirDone
// table: the pending request type crossed with the state the former owner
// kept decides the next directory state, the owner/sharer bookkeeping, and —
// for protocols without owner-forwarding — the data response the directory
// itself owes the requestor.
func (b *DirectoryBank) handleFwdDone(m *Msg) {
	e := b.entryOf(m.Addr)
	if !e.busy || e.pending == nil {
		panic(fmt.Sprintf("%s: FwdDone for %v with no pending transaction", b.cfg.Name, m.Addr))
	}
	if m.Dirty {
		b.installL2(m.Addr, true)
	}
	p := e.pending
	act, ok := b.proto.dirDone[dirDoneKey{p.Type, m.OwnerKept}]
	if !ok {
		panic(fmt.Sprintf("%s: FwdDone kept %v for pending %v under %s", b.cfg.Name, m.OwnerKept, p.Type, b.proto.Name))
	}
	addr, req := p.Addr, p.Requestor
	oldOwner := e.owner
	e.state = act.next
	switch {
	case act.ownerToRequestor:
		e.owner = req
	case act.clearOwner:
		e.owner = 0
	}
	if act.clearSharers {
		e.sharers = make(map[noc.NodeID]struct{})
	}
	if act.addOldOwner {
		e.sharers[oldOwner] = struct{}{}
	}
	if act.addRequestor {
		e.sharers[req] = struct{}{}
	}
	e.busy = false
	e.pending = nil
	b.pool.put(p)
	if act.respond {
		// No owner-forwarding: the line is home (installed above when dirty,
		// refetched from DRAM below if the clean copy was evicted), and the
		// directory answers the requestor itself. The forward only came from
		// a single-owner entry, so a write collects no invalidation acks.
		b.withL2Data(e, addr, func() {
			send(b.net, b.id, req, b.pool.get(act.data, addr, req))
		})
	}
	b.drainQueue(e)
}

func (b *DirectoryBank) drainQueue(e *dirEntry) {
	for !e.busy && len(e.queue) > 0 {
		next := e.queue[0]
		e.queue = e.queue[1:]
		b.dispatchRequest(e, next)
	}
}

// withL2Data runs fn once the bank has the line's data available in the L2
// (fetching it from DRAM on a miss, evicting an L2 victim if necessary).
func (b *DirectoryBank) withL2Data(e *dirEntry, addr mem.LineAddr, fn func()) {
	if b.l2.Touch(addr) != nil {
		b.l2Hits.Inc()
		fn()
		return
	}
	b.l2Misses.Inc()
	e.busy = true
	b.memory.Read(addr, func() {
		b.installL2(addr, false)
		e.busy = false
		fn()
		b.drainQueue(e)
	})
}

// installL2 places (or refreshes) a line in the L2 data array, writing back
// the victim to DRAM if it was dirty.
func (b *DirectoryBank) installL2(addr mem.LineAddr, dirty bool) {
	if l := b.l2.Touch(addr); l != nil {
		l.Dirty = l.Dirty || dirty
		return
	}
	line, victim, evicted, ok := b.l2.Allocate(addr)
	if !ok {
		panic(fmt.Sprintf("%s: L2 allocation failed for %v", b.cfg.Name, addr))
	}
	if evicted && victim.Dirty {
		b.writebacks.Inc()
		b.memory.Write(victim.Addr, nil)
	}
	line.State = cache.Shared
	line.Dirty = dirty
}

var _ noc.Receiver = (*DirectoryBank)(nil)
