// Package coherence implements the MOESI directory cache-coherence protocol
// of the CCSVM chip: the per-core L1 cache controllers and the banked
// L2/directory controller, communicating over the on-chip network. The
// protocol follows Section 3.2.2 of the paper: an unoptimized full-map MOESI
// directory embedded with the shared, inclusive L2, treating CPU and MTTOP
// cores identically, and maintaining the single-writer/multiple-reader (SWMR)
// invariant.
//
//ccsvm:deterministic
package coherence

import (
	"fmt"

	"ccsvm/internal/cache"
	"ccsvm/internal/mem"
	"ccsvm/internal/noc"
)

// MsgType enumerates the protocol messages.
type MsgType uint8

const (
	// Requests from an L1 to a directory bank.

	// MsgGetS requests read permission.
	MsgGetS MsgType = iota
	// MsgGetM requests write permission.
	MsgGetM
	// MsgPutM writes back a Modified line being evicted.
	MsgPutM
	// MsgPutO writes back an Owned line being evicted.
	MsgPutO
	// MsgPutE notifies the directory that a clean Exclusive line was evicted.
	MsgPutE

	// Forwards from a directory bank to an L1.

	// MsgFwdGetS asks the owner to supply data to a reading requestor.
	MsgFwdGetS
	// MsgFwdGetM asks the owner to supply data and ownership to a writing
	// requestor.
	MsgFwdGetM
	// MsgInv asks a sharer to invalidate and acknowledge to the requestor.
	MsgInv

	// Responses.

	// MsgData carries a line with read permission (to the requestor).
	MsgData
	// MsgDataExcl carries a line with write (or exclusive-clean) permission
	// and the number of invalidation acks the requestor must collect.
	MsgDataExcl
	// MsgAckCount tells an upgrading requestor (already holding data in S)
	// how many invalidation acks to collect; it carries no data.
	MsgAckCount
	// MsgInvAck acknowledges an invalidation, sent by the sharer directly to
	// the requestor.
	MsgInvAck
	// MsgFwdDone tells the directory that the owner has handled a forward;
	// it reports the state the former owner kept so the directory can update
	// its sharer/owner bookkeeping, and carries a data copy when the line was
	// dirty so the inclusive L2 stays up to date.
	MsgFwdDone
	// MsgPutAck acknowledges an eviction writeback.
	MsgPutAck
	// MsgPutAckStale acknowledges an eviction writeback that raced with a
	// forward and no longer corresponds to ownership.
	MsgPutAckStale
)

// String names the message type.
func (t MsgType) String() string {
	names := [...]string{
		"GetS", "GetM", "PutM", "PutO", "PutE",
		"FwdGetS", "FwdGetM", "Inv",
		"Data", "DataExcl", "AckCount", "InvAck", "FwdDone", "PutAck", "PutAckStale",
	}
	if int(t) < len(names) {
		return names[t]
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// Message sizes in bytes for link serialization: a small header for control
// messages, header plus a 64-byte line for data-carrying messages.
const (
	CtrlMsgBytes = 16
	DataMsgBytes = 16 + mem.LineSize
)

// Msg is the protocol-level payload carried inside a noc.Message.
type Msg struct {
	// Type is the protocol message type.
	Type MsgType
	// Addr is the cache line the message concerns.
	Addr mem.LineAddr
	// Requestor is the node that started the transaction. For forwards and
	// invalidations it tells the receiver where to send data or acks.
	Requestor noc.NodeID
	// AckCount is the number of invalidation acks the requestor must collect
	// (MsgDataExcl, MsgAckCount, MsgFwdGetM).
	AckCount int
	// OwnerKept reports, on MsgFwdDone, the stable state the previous owner
	// retained: cache.Owned, cache.Shared or cache.Invalid.
	OwnerKept cache.State
	// Dirty reports, on MsgFwdDone and Put messages, whether the line carried
	// is newer than the L2/memory copy.
	Dirty bool
	// pooled marks a message currently sitting on a free list; put uses it to
	// detect double releases (the flag travels with the object even when it
	// migrates between controllers' pools).
	pooled bool
}

// carriesData reports whether the message includes a full cache line.
func (m *Msg) carriesData() bool {
	switch m.Type {
	case MsgData, MsgDataExcl, MsgPutM, MsgPutO:
		return true
	case MsgFwdDone:
		return m.Dirty
	}
	return false
}

// sizeBytes returns the network size of the message.
func (m *Msg) sizeBytes() int {
	if m.carriesData() {
		return DataMsgBytes
	}
	return CtrlMsgBytes
}

// msgPool is a free list of protocol messages. Every controller owns one:
// senders allocate from their own pool and the receiving controller releases
// into its own, so objects migrate between pools but the total stays bounded
// and parallel runs share no mutable state.
//
// Ownership: a *Msg handed to send belongs to the receiver from delivery on.
// The receiver releases it once the message is fully handled; messages it
// retains (a directory's pending/queued requests, an L1's deferred forwards)
// are released when that later processing completes. Code that runs after the
// handler returns (DRAM-fill continuations) must copy the fields it needs
// rather than capture the message.
type msgPool struct {
	free  []*Msg
	stats PoolStats
}

// PoolStats is one controller's message-pool accounting: Gets counts
// allocations from the pool, Puts releases into it, and DoubleReleases
// releases of a message already sitting on a free list. Messages migrate
// between pools (a requestor allocates, the receiver releases), so the
// numbers are only meaningful summed across a whole system: see SumPoolStats.
type PoolStats struct {
	Gets, Puts, DoubleReleases uint64
}

// InFlight reports allocated-minus-released. For a single controller it can
// be negative (it released messages others allocated); summed across a
// system at quiesce it must be zero, or a handler leaked a message.
func (s PoolStats) InFlight() int64 { return int64(s.Gets) - int64(s.Puts) }

// add accumulates another controller's stats.
func (s PoolStats) add(o PoolStats) PoolStats {
	return PoolStats{s.Gets + o.Gets, s.Puts + o.Puts, s.DoubleReleases + o.DoubleReleases}
}

// SumPoolStats aggregates message-pool accounting across the controllers of
// one memory system. At quiesce the sum must satisfy InFlight() == 0 and
// DoubleReleases == 0; the memtest subsystem and the coherence tests assert
// both.
func SumPoolStats(l1s []*L1Controller, banks []*DirectoryBank) PoolStats {
	var total PoolStats
	for _, c := range l1s {
		total = total.add(c.pool.stats)
	}
	for _, b := range banks {
		total = total.add(b.pool.stats)
	}
	return total
}

// get returns a message with the given header fields and all others zeroed.
//
//ccsvm:pooled get
//ccsvm:hotpath
func (p *msgPool) get(t MsgType, addr mem.LineAddr, req noc.NodeID) *Msg {
	p.stats.Gets++
	var m *Msg
	if n := len(p.free); n > 0 {
		m = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
	} else {
		m = new(Msg) //ccsvm:allocok // pool miss; steady state reuses the free list
	}
	m.Type, m.Addr, m.Requestor = t, addr, req
	m.AckCount = 0
	m.OwnerKept = cache.Invalid
	m.Dirty = false
	m.pooled = false
	return m
}

// put releases a fully-handled message back to the free list. Releasing a
// message that is already pooled is recorded (and the message left alone)
// rather than corrupting the free list; the accounting checks fail loudly on
// any such release.
//
//ccsvm:pooled put
//ccsvm:hotpath
func (p *msgPool) put(m *Msg) {
	if m.pooled {
		p.stats.DoubleReleases++
		return
	}
	m.pooled = true
	p.stats.Puts++
	p.free = append(p.free, m) //ccsvm:allocok // free list returns to its high-water mark
}

// drain moves every free message into out and empties the free list, keeping
// its backing array for reuse. The messages stay flagged pooled, exactly as
// they sat on the free list.
func (p *msgPool) drain(out []*Msg) []*Msg {
	out = append(out, p.free...)
	for i := range p.free {
		p.free[i] = nil
	}
	p.free = p.free[:0]
	return out
}

// seed appends previously drained messages to the free list. Seeding is not a
// release: the pool's Puts accounting is untouched, so the system-wide
// InFlight()==0 quiesce invariant holds regardless of how many messages a
// pool starts with.
func (p *msgPool) seed(ms []*Msg) {
	p.free = append(p.free, ms...)
}

// DrainFreeLists removes and returns every message parked on the free lists
// of the given controllers. A sweep worker calls it on a machine being torn
// down and seeds the next machine with the result (see SeedFreeList), so the
// steady-state message population survives across runs instead of being
// reallocated.
//
//ccsvm:pooled get
func DrainFreeLists(l1s []*L1Controller, banks []*DirectoryBank) []*Msg {
	var out []*Msg
	for _, c := range l1s {
		out = c.pool.drain(out)
	}
	for _, b := range banks {
		out = b.pool.drain(out)
	}
	return out
}

// SeedFreeList hands previously drained messages to this controller's pool.
// Messages migrate between pools during a run (a requestor allocates, the
// receiver releases), so seeding a single controller is enough: the
// population redistributes with traffic.
//
//ccsvm:pooled put
func (c *L1Controller) SeedFreeList(ms []*Msg) { c.pool.seed(ms) }

// send wraps the protocol message in a pooled network message and sends it;
// the network recycles its envelope after delivery.
func send(net noc.Network, src, dst noc.NodeID, m *Msg) {
	nm := net.NewMessage()
	nm.Src, nm.Dst, nm.SizeBytes, nm.Payload = src, dst, m.sizeBytes(), m
	net.Send(nm)
}

// String formats the message for traces.
func (m *Msg) String() string {
	return fmt.Sprintf("%s %v req=%d acks=%d", m.Type, m.Addr, m.Requestor, m.AckCount)
}

// BankMapper maps a line address to the directory/L2 bank responsible for it.
type BankMapper func(mem.LineAddr) noc.NodeID

// InterleaveBanks returns a BankMapper that interleaves consecutive lines
// across the given bank node IDs, the standard address-interleaved banking of
// a shared L2.
func InterleaveBanks(banks []noc.NodeID) BankMapper {
	if len(banks) == 0 {
		panic("coherence: no banks")
	}
	n := uint64(len(banks))
	return func(addr mem.LineAddr) noc.NodeID {
		return banks[uint64(addr)%n]
	}
}
