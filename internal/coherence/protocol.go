package coherence

import (
	"fmt"

	"ccsvm/internal/cache"
)

// This file defines the protocol tables the L1 and directory controllers
// execute. A Protocol is pure data: every (state × event) cell names the
// message to emit, the next state, and the bookkeeping the directory needs —
// the controllers supply the structural machinery (MSHRs, queues, pools, L2
// fills) and look transitions up here instead of open-coding them. Adding a
// protocol means writing a new set of tables, not new controller logic; see
// ARCHITECTURE.md "Coherence protocols".

// fwdKey indexes the owner-side forward table: the owner's current state
// (stable M/O/E, an eviction-buffer MI_A/OI_A/EI_A, or SM_AD for an upgrade
// issued from Owned) crossed with the forward type.
type fwdKey struct {
	state cache.State
	fwd   MsgType
}

// fwdAction says how an owner answers a forward: whether it supplies the data
// directly to the requestor (owner-forwarding), what state it keeps, and what
// it reports to the directory on FwdDone.
type fwdAction struct {
	// forward, when set, has the owner send data (MsgData or MsgDataExcl)
	// straight to the requestor — the 3-hop owner-forwarding path. When
	// clear, the owner only reports FwdDone and the directory answers the
	// requestor itself from the L2 — the 4-hop writeback-first path.
	forward bool
	// data is the message type carried to the requestor when forward is set.
	data MsgType
	// next is the owner's next state: a stable state or Invalid for a cached
	// line, an eviction-buffer state for a line mid-writeback, or a transient
	// state for an upgrade that lost the race.
	next cache.State
	// kept and dirty populate the FwdDone message: the stable state the
	// directory should record for the former owner, and whether the line
	// rides along to refresh the inclusive L2.
	kept  cache.State
	dirty bool
}

// evictAction says how a victim in a stable state leaves the cache.
type evictAction struct {
	// silent drops the line with no directory traffic (clean sharers).
	silent bool
	// put is the writeback request type when not silent.
	put MsgType
	// next is the eviction-buffer state held until the put is acknowledged.
	next cache.State
	// dirty marks the put as carrying a line newer than the L2/memory copy.
	dirty bool
}

// invAction says how a cache holding the line in the keyed state answers an
// invalidation (always acknowledged to the requestor; the table only decides
// the state change).
type invAction struct {
	// next is the line's next state; Invalid on a stable sharer drops the
	// line from the array.
	next cache.State
	// record notes the transition with the SWMR checker (transitions that
	// never granted read permission have nothing to record).
	record bool
}

// dirDoneKey indexes the directory's FwdDone resolution table: the request
// type the directory is blocked on crossed with the state the former owner
// reports having kept.
type dirDoneKey struct {
	pending MsgType
	kept    cache.State
}

// dirDoneAction says how the directory resolves a completed forward.
type dirDoneAction struct {
	// next is the directory's next state for the line.
	next DirState
	// ownerToRequestor transfers registered ownership to the requestor;
	// clearOwner drops it. (Neither set: the former owner stays registered.)
	ownerToRequestor bool
	clearOwner       bool
	// addOldOwner / addRequestor grow the sharer list.
	addOldOwner  bool
	addRequestor bool
	// clearSharers empties the sharer list (a new exclusive owner).
	clearSharers bool
	// respond, when set, has the directory answer the requestor itself with
	// a message of type data out of the L2 — the protocols that forbid
	// owner-forwarding use it; owner-forwarding protocols leave it clear
	// because the data is already on its way from the former owner.
	respond bool
	data    MsgType
}

// Protocol is one directory coherence protocol expressed as transition
// tables. The zero value is unusable; use LookupProtocol or the exported
// instances.
type Protocol struct {
	// Name is the registry key ("moesi", "mesi") used by configuration.
	Name string
	// HasOwned reports whether the protocol uses the Owned state (and the
	// Dir-O directory state, and PutO writebacks). Protocols without it must
	// never see those states; the controllers enforce that loudly.
	HasOwned bool

	// fwd is the owner-side forward table (see fwdKey/fwdAction).
	fwd map[fwdKey]fwdAction
	// evict maps a victim's stable state to its writeback behavior.
	evict map[cache.State]evictAction
	// inv maps a cache's state to its invalidation behavior; states absent
	// from the table cannot legally receive an invalidation.
	inv map[cache.State]invAction
	// fill maps the response type arriving in IS_D to the granted stable
	// state (Data grants Shared, DataExcl grants Exclusive).
	fill map[MsgType]cache.State
	// dirDone is the directory's FwdDone resolution table (see dirDoneKey).
	dirDone map[dirDoneKey]dirDoneAction
}

// ProtocolMOESI is the paper's baseline (Section 3.2.2): a full-map MOESI
// directory with owner-forwarding. A Modified owner answering a read keeps
// the dirty line in Owned and supplies data cache-to-cache; the directory
// learns the outcome from FwdDone.
var ProtocolMOESI = &Protocol{
	Name:     "moesi",
	HasOwned: true,
	fwd: map[fwdKey]fwdAction{
		// Stable owners. A read leaves the dirty owner in Owned (M degrades,
		// O stays) or degrades a clean Exclusive to Shared; a write always
		// hands the line over.
		{cache.Modified, MsgFwdGetS}:  {forward: true, data: MsgData, next: cache.Owned, kept: cache.Owned, dirty: true},
		{cache.Owned, MsgFwdGetS}:     {forward: true, data: MsgData, next: cache.Owned, kept: cache.Owned, dirty: true},
		{cache.Exclusive, MsgFwdGetS}: {forward: true, data: MsgData, next: cache.Shared, kept: cache.Shared, dirty: false},
		{cache.Modified, MsgFwdGetM}:  {forward: true, data: MsgDataExcl, next: cache.Invalid, kept: cache.Invalid, dirty: true},
		{cache.Owned, MsgFwdGetM}:     {forward: true, data: MsgDataExcl, next: cache.Invalid, kept: cache.Invalid, dirty: true},
		{cache.Exclusive, MsgFwdGetM}: {forward: true, data: MsgDataExcl, next: cache.Invalid, kept: cache.Invalid, dirty: false},
		// Eviction buffers: the put is in flight but unacknowledged, so this
		// cache is still the owner the directory forwarded to.
		{cache.MIA, MsgFwdGetS}: {forward: true, data: MsgData, next: cache.OIA, kept: cache.Owned, dirty: true},
		{cache.OIA, MsgFwdGetS}: {forward: true, data: MsgData, next: cache.OIA, kept: cache.Owned, dirty: true},
		{cache.EIA, MsgFwdGetS}: {forward: true, data: MsgData, next: cache.IIA, kept: cache.Invalid, dirty: false},
		{cache.MIA, MsgFwdGetM}: {forward: true, data: MsgDataExcl, next: cache.IIA, kept: cache.Invalid, dirty: true},
		{cache.OIA, MsgFwdGetM}: {forward: true, data: MsgDataExcl, next: cache.IIA, kept: cache.Invalid, dirty: true},
		{cache.EIA, MsgFwdGetM}: {forward: true, data: MsgDataExcl, next: cache.IIA, kept: cache.Invalid, dirty: false},
		// An upgrade from Owned not yet processed by the directory: this
		// cache is still the registered owner and the directory is blocked on
		// its answer. A read is served while remaining the owner (the upgrade
		// will be processed later, owner intact); a write ordered first takes
		// the line — the upgrade falls back to a full IM_AD fill.
		{cache.SMAD, MsgFwdGetS}: {forward: true, data: MsgData, next: cache.SMAD, kept: cache.Owned, dirty: true},
		{cache.SMAD, MsgFwdGetM}: {forward: true, data: MsgDataExcl, next: cache.IMAD, kept: cache.Invalid, dirty: true},
	},
	evict: map[cache.State]evictAction{
		cache.Shared:    {silent: true},
		cache.Exclusive: {put: MsgPutE, next: cache.EIA},
		cache.Modified:  {put: MsgPutM, next: cache.MIA, dirty: true},
		cache.Owned:     {put: MsgPutO, next: cache.OIA, dirty: true},
	},
	inv: map[cache.State]invAction{
		// A stable sharer drops its copy.
		cache.Shared: {next: cache.Invalid, record: true},
		// An upgrade lost the race: the writer ordered first invalidates us
		// and our GetM will be answered with full data later.
		cache.SMAD: {next: cache.IMAD, record: true},
		// A fill lost the race: the in-flight data satisfies exactly one
		// load, then the line drops.
		cache.ISD:  {next: cache.ISDI},
		cache.ISDI: {next: cache.ISDI},
		// A stale sharer mid-refetch: this cache was silently evicted, the
		// directory's list still names it, and a writer's invalidation can
		// reach it after it has already issued a fresh GetM. Acknowledge and
		// keep waiting — there is no data to drop, and our own request will
		// be ordered (and answered in full) after the writer's.
		cache.IMAD: {next: cache.IMAD},
	},
	fill: map[MsgType]cache.State{
		MsgData:     cache.Shared,
		MsgDataExcl: cache.Exclusive,
	},
	dirDone: map[dirDoneKey]dirDoneAction{
		{MsgGetS, cache.Owned}:   {next: DirOwned, addRequestor: true},
		{MsgGetS, cache.Shared}:  {next: DirShared, clearOwner: true, addOldOwner: true, addRequestor: true},
		{MsgGetS, cache.Invalid}: {next: DirShared, clearOwner: true, addRequestor: true},
		{MsgGetM, cache.Invalid}: {next: DirExclusive, ownerToRequestor: true, clearSharers: true},
	},
}

// ProtocolMESI is the no-owner-forwarding variant: there is no Owned state,
// and a dirty line is always written back to the directory before the
// requestor is served. The owner of a forwarded line answers only with
// FwdDone (carrying the line when dirty); the directory refreshes its
// inclusive L2 and supplies the data itself. Reads of dirty lines therefore
// take four hops (requestor → directory → owner → directory → requestor)
// instead of MOESI's three.
var ProtocolMESI = &Protocol{
	Name:     "mesi",
	HasOwned: false,
	fwd: map[fwdKey]fwdAction{
		// Stable owners: a read downgrades the owner to Shared and pushes
		// dirty data home; a write hands the line over. The requestor is
		// answered by the directory (forward is clear on every row).
		{cache.Modified, MsgFwdGetS}:  {next: cache.Shared, kept: cache.Shared, dirty: true},
		{cache.Exclusive, MsgFwdGetS}: {next: cache.Shared, kept: cache.Shared, dirty: false},
		{cache.Modified, MsgFwdGetM}:  {next: cache.Invalid, kept: cache.Invalid, dirty: true},
		{cache.Exclusive, MsgFwdGetM}: {next: cache.Invalid, kept: cache.Invalid, dirty: false},
		// Eviction buffers: with no Owned state to linger in, any forward
		// ends the eviction's ownership — the line goes home on the FwdDone
		// (when dirty) and the in-flight put will draw a stale ack.
		{cache.MIA, MsgFwdGetS}: {next: cache.IIA, kept: cache.Invalid, dirty: true},
		{cache.EIA, MsgFwdGetS}: {next: cache.IIA, kept: cache.Invalid, dirty: false},
		{cache.MIA, MsgFwdGetM}: {next: cache.IIA, kept: cache.Invalid, dirty: true},
		{cache.EIA, MsgFwdGetM}: {next: cache.IIA, kept: cache.Invalid, dirty: false},
		// No SM_AD rows: upgrades from Owned cannot exist without Owned.
	},
	evict: map[cache.State]evictAction{
		cache.Shared:    {silent: true},
		cache.Exclusive: {put: MsgPutE, next: cache.EIA},
		cache.Modified:  {put: MsgPutM, next: cache.MIA, dirty: true},
	},
	inv: map[cache.State]invAction{
		cache.Shared: {next: cache.Invalid, record: true},
		cache.SMAD:   {next: cache.IMAD, record: true},
		cache.ISD:    {next: cache.ISDI},
		cache.ISDI:   {next: cache.ISDI},
		cache.IMAD:   {next: cache.IMAD},
	},
	fill: map[MsgType]cache.State{
		MsgData:     cache.Shared,
		MsgDataExcl: cache.Exclusive,
	},
	dirDone: map[dirDoneKey]dirDoneAction{
		// kept=Owned rows are absent on purpose: an owner claiming to keep a
		// dirty copy under MESI is a protocol violation and panics.
		{MsgGetS, cache.Shared}:  {next: DirShared, clearOwner: true, addOldOwner: true, addRequestor: true, respond: true, data: MsgData},
		{MsgGetS, cache.Invalid}: {next: DirShared, clearOwner: true, addRequestor: true, respond: true, data: MsgData},
		{MsgGetM, cache.Invalid}: {next: DirExclusive, ownerToRequestor: true, clearSharers: true, respond: true, data: MsgDataExcl},
	},
}

// protocolList is the fixed registry order (also the -list display order).
var protocolList = []*Protocol{ProtocolMOESI, ProtocolMESI}

// LookupProtocol resolves a protocol by its registry name. The empty string
// resolves to MOESI, the paper's baseline, so zero-value configurations keep
// their historical behavior.
func LookupProtocol(name string) (*Protocol, error) {
	if name == "" {
		return ProtocolMOESI, nil
	}
	for _, p := range protocolList {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("coherence: unknown protocol %q (have %v)", name, ProtocolNames())
}

// ProtocolNames lists the registered protocol names in registry order.
func ProtocolNames() []string {
	out := make([]string, len(protocolList))
	for i, p := range protocolList {
		out[i] = p.Name
	}
	return out
}
