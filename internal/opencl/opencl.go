// Package opencl is the OpenCL-style runtime of the APU baseline machine. It
// mirrors the host API the paper's Figure 3 program uses — platform/context
// initialization, program building, pinned zero-copy buffers with map/unmap,
// kernel-argument setup, NDRange kernel launches and Finish — and charges the
// driver overheads that make small offloads expensive on a loosely-coupled
// chip: every CPU↔GPU hand-off stages data through DRAM and pays launch and
// synchronization costs, because the APU has no cache-coherent shared virtual
// memory.
package opencl

import (
	"fmt"

	"ccsvm/internal/apu"
	"ccsvm/internal/exec"
	"ccsvm/internal/mem"
	"ccsvm/internal/sim"
	"ccsvm/internal/stats"
)

// WorkItemFunc is an OpenCL kernel body: it runs once per work-item on the
// simulated GPU.
type WorkItemFunc func(ctx *WorkItemContext)

// WorkItemContext is the device-side API of a kernel: loads/stores/atomics on
// the APU's physical address space (the GPU bypasses the CPU caches), the
// work-item's global ID, and its kernel arguments.
type WorkItemContext struct {
	*exec.Context
	globalID int
	args     []uint64
}

// GlobalID is get_global_id(0).
func (c *WorkItemContext) GlobalID() int { return c.globalID }

// Arg returns the i-th kernel argument as set at enqueue time.
func (c *WorkItemContext) Arg(i int) uint64 { return c.args[i] }

// ArgPtr returns the i-th kernel argument interpreted as a buffer address.
func (c *WorkItemContext) ArgPtr(i int) mem.VAddr { return mem.VAddr(c.args[i]) }

// Buffer is a pinned, zero-copy cl_mem allocation in host DRAM
// (CL_MEM_ALLOC_HOST_PTR, as in the paper's host code).
type Buffer struct {
	Base mem.VAddr
	Size uint64
}

// Session is one OpenCL platform+context+queue on an APU machine.
type Session struct {
	m         *apu.Machine
	over      apu.OpenCLOverheads
	kernels   []WorkItemFunc
	inited    bool
	built     bool
	pendingWI []pendingItem
	running   int
	rr        int

	launches  *stats.Counter
	workItems *stats.Counter
	mapped    *stats.Counter
	// Driver-overhead time by category, in simulated picoseconds: one-time
	// init+JIT, buffer staging (create/map/unmap), and launch+sync. Together
	// they are the OpenCL overhead breakdown the apu machine's Metrics()
	// reports (the decomposition behind the paper's Figure 5 series).
	initPs    *stats.Counter
	stagingPs *stats.Counter
	launchPs  *stats.Counter
}

type pendingItem struct {
	kernel int
	gid    int
	args   []uint64
}

// NewSession creates a session bound to an APU machine.
func NewSession(m *apu.Machine) *Session {
	return &Session{
		m:         m,
		over:      m.Config.OpenCL,
		launches:  m.Stats.Counter("opencl.kernel_launches"),
		workItems: m.Stats.Counter("opencl.work_items"),
		mapped:    m.Stats.Counter("opencl.buffer_maps"),
		initPs:    m.Stats.Counter("opencl.init_ps"),
		stagingPs: m.Stats.Counter("opencl.staging_ps"),
		launchPs:  m.Stats.Counter("opencl.launch_ps"),
	}
}

// charge burns host time for a driver overhead and books it to a category
// counter so per-run metrics can break the total down.
func (s *Session) charge(ctx *apu.HostContext, d sim.Duration, category *stats.Counter) {
	if d <= 0 {
		return
	}
	category.Add(uint64(d))
	ctx.Delay(d)
}

// InitPlatform performs clGetPlatformIDs / clGetDeviceIDs / clCreateContext /
// clCreateCommandQueue: the one-time runtime initialization whose cost the
// paper's "without OpenCL initialization" series excludes.
func (s *Session) InitPlatform(ctx *apu.HostContext) {
	if s.inited {
		return
	}
	s.inited = true
	s.charge(ctx, s.over.PlatformInit, s.initPs)
}

// BuildProgram performs clCreateProgramWithSource + clBuildProgram (the JIT
// compilation the paper's "without compilation" series excludes).
func (s *Session) BuildProgram(ctx *apu.HostContext) {
	if s.built {
		return
	}
	s.built = true
	s.charge(ctx, s.over.ProgramBuild, s.initPs)
}

// CreateKernel registers a kernel body and returns its handle
// (clCreateKernel).
//
//ccsvm:threadentry
func (s *Session) CreateKernel(fn WorkItemFunc) int {
	s.kernels = append(s.kernels, fn)
	return len(s.kernels) - 1
}

// CreateBuffer allocates a pinned zero-copy buffer (clCreateBuffer with
// CL_MEM_ALLOC_HOST_PTR).
func (s *Session) CreateBuffer(ctx *apu.HostContext, size uint64) Buffer {
	s.charge(ctx, s.over.BufferCreate, s.stagingPs)
	return Buffer{Base: s.m.Malloc(size), Size: size}
}

// EnqueueMapBuffer maps a buffer for host access (clEnqueueMapBuffer). When
// the host maps a buffer the GPU may have written, its stale cached copies
// are dropped so the CPU reads what is in DRAM.
func (s *Session) EnqueueMapBuffer(ctx *apu.HostContext, b Buffer) mem.VAddr {
	s.mapped.Inc()
	s.charge(ctx, s.over.MapBuffer, s.stagingPs)
	s.m.InvalidateCPUCaches(b.Base, b.Size)
	return b.Base
}

// EnqueueUnmapBuffer unmaps a buffer (clEnqueueUnmapMemObject): dirty lines
// the CPU wrote are flushed to DRAM so the GPU, which bypasses the CPU
// caches, observes them.
func (s *Session) EnqueueUnmapBuffer(ctx *apu.HostContext, b Buffer) {
	s.charge(ctx, s.over.UnmapBuffer, s.stagingPs)
	s.m.FlushCPUCaches(b.Base, b.Size)
}

// EnqueueNDRangeKernel launches globalSize work-items of the kernel with the
// given arguments (clSetKernelArg × args + clEnqueueNDRangeKernel). The call
// returns once the launch has been queued to the device; Finish waits for
// completion.
func (s *Session) EnqueueNDRangeKernel(ctx *apu.HostContext, kernel int, globalSize int, args ...uint64) {
	if kernel < 0 || kernel >= len(s.kernels) {
		panic(fmt.Sprintf("opencl: unknown kernel %d", kernel))
	}
	if !s.inited {
		panic("opencl: EnqueueNDRangeKernel before InitPlatform")
	}
	s.launches.Inc()
	for range args {
		s.charge(ctx, s.over.SetKernelArg, s.launchPs)
	}
	s.charge(ctx, s.over.KernelLaunch, s.launchPs)
	for gid := 0; gid < globalSize; gid++ {
		s.pendingWI = append(s.pendingWI, pendingItem{kernel: kernel, gid: gid, args: args})
	}
	s.dispatch()
}

// dispatch hands pending work-items to GPU SIMD units with free contexts.
func (s *Session) dispatch() {
	units := s.m.GPUUnits
	for len(s.pendingWI) > 0 {
		var unit int = -1
		for i := 0; i < len(units); i++ {
			u := (s.rr + i) % len(units)
			if units[u].FreeContexts() > 0 {
				unit = u
				s.rr = (u + 1) % len(units)
				break
			}
		}
		if unit == -1 {
			return
		}
		item := s.pendingWI[0]
		s.pendingWI = s.pendingWI[1:]
		s.workItems.Inc()
		s.running++
		fn := s.kernels[item.kernel]
		gid := item.gid
		args := item.args
		t := exec.NewThread(s.m.ExecGate(), gid, fmt.Sprintf("cl-k%d-wi%d", item.kernel, gid), func(ec *exec.Context) {
			fn(&WorkItemContext{Context: ec, globalID: gid, args: args})
		})
		s.m.TrackThread(t)
		units[unit].StartThread(t, 0, func() {
			s.running--
			s.dispatch()
		})
	}
}

// Finish blocks the host thread until every enqueued work-item has completed
// (clFinish). The host polls the driver with microsecond-scale granularity,
// which is how the real runtime's synchronization cost appears to an
// application.
func (s *Session) Finish(ctx *apu.HostContext) {
	s.charge(ctx, s.over.FinishOverhead, s.launchPs)
	// The poll interval must stay positive even when a design-space sweep
	// sets FinishOverhead to zero: a free poll would never advance simulated
	// time and the loop would spin forever.
	poll := s.over.FinishOverhead / 4
	if poll <= 0 {
		poll = sim.Nanosecond
	}
	for s.running > 0 || len(s.pendingWI) > 0 {
		s.charge(ctx, poll, s.launchPs)
	}
}

// Outstanding reports queued plus running work-items (for tests).
func (s *Session) Outstanding() int { return s.running + len(s.pendingWI) }
