package opencl_test

import (
	"testing"

	"ccsvm/internal/apu"
	"ccsvm/internal/mem"
	"ccsvm/internal/opencl"
	"ccsvm/internal/sim"
)

// testOverheads returns small, distinct driver constants so each overhead
// category's contribution is recognizable in the breakdown counters.
func testOverheads() apu.OpenCLOverheads {
	return apu.OpenCLOverheads{
		PlatformInit:   10 * sim.Microsecond,
		ProgramBuild:   20 * sim.Microsecond,
		BufferCreate:   1 * sim.Microsecond,
		MapBuffer:      2 * sim.Microsecond,
		UnmapBuffer:    3 * sim.Microsecond,
		SetKernelArg:   100 * sim.Nanosecond,
		KernelLaunch:   5 * sim.Microsecond,
		FinishOverhead: 4 * sim.Microsecond,
	}
}

func newAPU(t *testing.T) *apu.Machine {
	t.Helper()
	cfg := apu.DefaultConfig()
	cfg.OpenCL = testOverheads()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return apu.NewMachine(cfg)
}

// TestSessionRunsKernelAndBreaksDownOverheads runs the paper's Figure 3
// program shape — init, build, buffer, map/write/unmap, launch, finish — and
// checks (a) the kernel's functional effect, and (b) that the ps-counter
// overhead breakdown attributes exactly the charged driver constants to the
// right categories, with the machine's Metrics() agreeing via stats.SumMatch.
func TestSessionRunsKernelAndBreaksDownOverheads(t *testing.T) {
	m := newAPU(t)
	defer m.Shutdown()
	s := opencl.NewSession(m)
	over := m.Config.OpenCL
	const n = 64

	kid := s.CreateKernel(func(c *opencl.WorkItemContext) {
		i := c.GlobalID()
		buf := c.ArgPtr(0)
		v := c.Load32(buf + mem.VAddr(4*i))
		c.Store32(buf+mem.VAddr(4*i), v*2)
	})

	var buf opencl.Buffer
	_, err := m.RunProgram(func(ctx *apu.HostContext) {
		s.InitPlatform(ctx)
		s.BuildProgram(ctx)
		// Re-initializing is free: the one-time costs are charged once.
		s.InitPlatform(ctx)
		s.BuildProgram(ctx)

		buf = s.CreateBuffer(ctx, 4*n)
		p := s.EnqueueMapBuffer(ctx, buf)
		for i := 0; i < n; i++ {
			ctx.Store32(p+mem.VAddr(4*i), uint32(i))
		}
		s.EnqueueUnmapBuffer(ctx, buf)

		s.EnqueueNDRangeKernel(ctx, kid, n, uint64(buf.Base))
		s.Finish(ctx)

		res := s.EnqueueMapBuffer(ctx, buf)
		for i := 0; i < n; i++ {
			if got := ctx.Load32(res + mem.VAddr(4*i)); got != uint32(2*i) {
				t.Errorf("element %d = %d, want %d", i, got, 2*i)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Outstanding() != 0 {
		t.Fatalf("%d work-items outstanding after Finish", s.Outstanding())
	}

	lookup := func(name string) uint64 {
		v, ok := m.Stats.Lookup(name)
		if !ok {
			t.Fatalf("no counter %q", name)
		}
		return v
	}

	// One-time init: platform + JIT, charged exactly once despite the
	// repeated calls.
	if got, want := lookup("opencl.init_ps"), uint64(over.PlatformInit+over.ProgramBuild); got != want {
		t.Errorf("init_ps = %d, want %d", got, want)
	}
	// Staging: one create + two maps + one unmap.
	wantStaging := uint64(over.BufferCreate + 2*over.MapBuffer + over.UnmapBuffer)
	if got := lookup("opencl.staging_ps"); got != wantStaging {
		t.Errorf("staging_ps = %d, want %d", got, wantStaging)
	}
	// Launch+sync: one arg, one launch, Finish overhead plus its polling.
	minLaunch := uint64(over.SetKernelArg + over.KernelLaunch + over.FinishOverhead)
	if got := lookup("opencl.launch_ps"); got < minLaunch {
		t.Errorf("launch_ps = %d, want >= %d", got, minLaunch)
	}

	// The per-run metrics must be exactly the SumMatch aggregation of those
	// counters (the contract ARCHITECTURE.md documents for sweep sinks).
	metrics := m.Metrics()
	for key, counter := range map[string]string{
		"opencl.init_us":    ".init_ps",
		"opencl.staging_us": ".staging_ps",
		"opencl.launch_us":  ".launch_ps",
	} {
		want := float64(m.Stats.SumMatch("opencl", counter)) / 1e6
		if got := metrics[key]; got != want {
			t.Errorf("metrics[%q] = %v, want SumMatch/1e6 = %v", key, got, want)
		}
	}
	if got := metrics["opencl.kernel_launches"]; got != 1 {
		t.Errorf("kernel_launches metric = %v, want 1", got)
	}
	if got := metrics["opencl.work_items"]; got != n {
		t.Errorf("work_items metric = %v, want %d", got, n)
	}
	if got := metrics["opencl.buffer_maps"]; got != 2 {
		t.Errorf("buffer_maps metric = %v, want 2", got)
	}
}

// TestWorkItemsSpreadAcrossUnits launches more work-items than one SIMD
// unit's contexts so the round-robin dispatcher must use several units, and
// every work-item still runs exactly once (each increments its own slot).
func TestWorkItemsSpreadAcrossUnits(t *testing.T) {
	cfg := apu.DefaultConfig()
	cfg.OpenCL = testOverheads()
	cfg.GPUContextsPerUnit = 4 // tiny: forces spreading + queueing
	m := apu.NewMachine(cfg)
	defer m.Shutdown()
	s := opencl.NewSession(m)
	const n = 40

	kid := s.CreateKernel(func(c *opencl.WorkItemContext) {
		c.AtomicAdd32(c.ArgPtr(0)+mem.VAddr(4*c.GlobalID()), 1)
	})
	var buf opencl.Buffer
	_, err := m.RunProgram(func(ctx *apu.HostContext) {
		s.InitPlatform(ctx)
		s.BuildProgram(ctx)
		buf = s.CreateBuffer(ctx, 4*n)
		s.EnqueueNDRangeKernel(ctx, kid, n, uint64(buf.Base))
		s.Finish(ctx)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got := m.MemReadUint32(buf.Base + mem.VAddr(4*i)); got != 1 {
			t.Fatalf("work-item %d ran %d times, want exactly once", i, got)
		}
	}
	// More than one SIMD unit must have executed instructions.
	unitsUsed := 0
	for i := range m.GPUUnits {
		name := m.GPUUnits[i].Config().Name
		if v, _ := m.Stats.Lookup(name + ".instructions"); v > 0 {
			unitsUsed++
		}
	}
	if unitsUsed < 2 {
		t.Fatalf("only %d SIMD unit(s) used for %d work-items with 4 contexts/unit", unitsUsed, n)
	}
}

// TestLaunchBeforeInitPanics pins the API misuse failure mode.
func TestLaunchBeforeInitPanics(t *testing.T) {
	m := newAPU(t)
	defer m.Shutdown()
	s := opencl.NewSession(m)
	kid := s.CreateKernel(func(*opencl.WorkItemContext) {})
	_, err := m.RunProgram(func(ctx *apu.HostContext) {
		defer func() {
			if recover() == nil {
				t.Error("EnqueueNDRangeKernel before InitPlatform did not panic")
			}
		}()
		s.EnqueueNDRangeKernel(ctx, kid, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
}
