package mifd

import (
	"fmt"

	"ccsvm/internal/cpu"
	"ccsvm/internal/exec"
	"ccsvm/internal/mem"
	"ccsvm/internal/sim"
	"ccsvm/internal/stats"
	"ccsvm/internal/vm"
)

// ComputeUnit is the MIFD's view of one MTTOP core. The mttop package's Core
// satisfies it; the indirection keeps the device independent of the core
// model.
type ComputeUnit interface {
	FreeContexts() int
	StartThread(t *exec.Thread, cr3 mem.PAddr, onDone func())
	FlushTLB()
}

// ThreadFactory materializes the software thread for one (kernel, tid) pair
// of a task. The xthreads runtime provides it: the kernel ID is this
// simulator's stand-in for the program counter carried by the paper's task
// descriptor.
type ThreadFactory func(kernelID, tid int, args mem.VAddr) *exec.Thread

// TaskDescriptor is what the write syscall delivers to the device:
// {program counter, arguments, first thread ID, last thread ID, CR3}.
type TaskDescriptor struct {
	KernelID int
	Args     mem.VAddr
	FirstTID int
	LastTID  int
	CR3      mem.PAddr
}

// Threads reports how many threads the task spawns.
func (t TaskDescriptor) Threads() int { return t.LastTID - t.FirstTID + 1 }

// Config describes the device's timing.
type Config struct {
	// DispatchLatency is the device-side latency from receiving a task
	// descriptor to beginning thread assignment.
	DispatchLatency sim.Duration
	// PerWarpLatency is the assignment cost per SIMD-width chunk of threads.
	PerWarpLatency sim.Duration
	// WarpSize is the SIMD-width chunk in which threads are handed to cores
	// (a warp/wavefront).
	WarpSize int
	// Name prefixes the device's statistics.
	Name string
}

// DefaultConfig returns the dispatch costs used by the CCSVM machine: a small
// microcontroller-style latency, orders of magnitude below an OpenCL kernel
// launch.
func DefaultConfig() Config {
	return Config{
		DispatchLatency: 500 * sim.Nanosecond,
		PerWarpLatency:  20 * sim.Nanosecond,
		WarpSize:        8,
		Name:            "mifd",
	}
}

// Device is the MTTOP interface device.
type Device struct {
	engine  *sim.Engine
	cfg     Config
	units   []ComputeUnit
	factory ThreadFactory
	// faultCPU is the CPU core that services MTTOP page faults (core 0, as
	// in the paper's design where the MIFD may interrupt a CPU core).
	faultCPU *cpu.Core

	// pending holds threads waiting for a free context.
	pending []pendingThread
	// rr is the round-robin cursor over compute units.
	rr int
	// errorRegister latches a description of the last resource shortfall.
	errorRegister string

	tasks      *stats.Counter
	threads    *stats.Counter
	faultsFwd  *stats.Counter
	tlbFlushes *stats.Counter
	queued     *stats.Counter
}

type pendingThread struct {
	task TaskDescriptor
	tid  int
}

// NewDevice builds the MIFD.
func NewDevice(engine *sim.Engine, cfg Config, reg *stats.Registry) *Device {
	if cfg.WarpSize <= 0 {
		cfg.WarpSize = 8
	}
	d := &Device{
		engine:     engine,
		cfg:        cfg,
		tasks:      reg.Counter(cfg.Name + ".tasks"),
		threads:    reg.Counter(cfg.Name + ".threads_dispatched"),
		faultsFwd:  reg.Counter(cfg.Name + ".page_faults_forwarded"),
		tlbFlushes: reg.Counter(cfg.Name + ".tlb_flush_broadcasts"),
		queued:     reg.Counter(cfg.Name + ".threads_queued"),
	}
	return d
}

// AttachUnits registers the MTTOP cores the device schedules onto.
func (d *Device) AttachUnits(units ...ComputeUnit) { d.units = append(d.units, units...) }

// SetThreadFactory installs the xthreads runtime's kernel-launch hook.
func (d *Device) SetThreadFactory(f ThreadFactory) { d.factory = f }

// SetFaultCPU selects the CPU core the device interrupts for page faults.
func (d *Device) SetFaultCPU(c *cpu.Core) { d.faultCPU = c }

// ErrorRegister returns the device's error register: empty when no resource
// shortfall has occurred, otherwise a description of the last one. The paper
// specifies the MIFD writes this register instead of guaranteeing that a task
// needing global synchronization is fully scheduled.
func (d *Device) ErrorRegister() string { return d.errorRegister }

// TotalFreeContexts reports the free thread contexts across all MTTOP cores.
func (d *Device) TotalFreeContexts() int {
	n := 0
	for _, u := range d.units {
		n += u.FreeContexts()
	}
	return n
}

// Launch accepts a task descriptor (the payload of the write syscall) and
// schedules its threads onto MTTOP cores. done, if non-nil, runs once the
// device has finished dispatching (not when the threads finish — completion
// is observed through memory, as in the xthreads programming model).
func (d *Device) Launch(task TaskDescriptor, done func()) {
	if d.factory == nil {
		panic("mifd: Launch before SetThreadFactory")
	}
	if task.LastTID < task.FirstTID {
		panic(fmt.Sprintf("mifd: invalid thread range %d..%d", task.FirstTID, task.LastTID))
	}
	d.tasks.Inc()
	if task.Threads() > d.TotalFreeContexts() {
		d.errorRegister = fmt.Sprintf("task with %d threads exceeds %d free MTTOP contexts",
			task.Threads(), d.TotalFreeContexts())
	}
	warps := (task.Threads() + d.cfg.WarpSize - 1) / d.cfg.WarpSize
	delay := d.cfg.DispatchLatency + sim.Duration(warps)*d.cfg.PerWarpLatency
	d.engine.Schedule(delay, func() {
		for tid := task.FirstTID; tid <= task.LastTID; tid++ {
			d.pending = append(d.pending, pendingThread{task: task, tid: tid})
		}
		d.dispatch()
		if done != nil {
			done()
		}
	})
}

// dispatch assigns as many pending threads as free contexts allow, in
// round-robin order over the MTTOP cores.
func (d *Device) dispatch() {
	if len(d.units) == 0 {
		panic("mifd: no compute units attached")
	}
	for len(d.pending) > 0 {
		unit := d.nextFreeUnit()
		if unit == nil {
			d.queued.Add(uint64(len(d.pending)))
			return
		}
		p := d.pending[0]
		d.pending = d.pending[1:]
		t := d.factory(p.task.KernelID, p.tid, p.task.Args)
		d.threads.Inc()
		unit.StartThread(t, p.task.CR3, func() {
			// A context freed up; try to place queued threads.
			d.dispatch()
		})
	}
}

// nextFreeUnit returns the next compute unit with a free context, advancing
// the round-robin cursor, or nil if none has capacity.
func (d *Device) nextFreeUnit() ComputeUnit {
	for i := 0; i < len(d.units); i++ {
		u := d.units[(d.rr+i)%len(d.units)]
		if u.FreeContexts() > 0 {
			d.rr = (d.rr + i + 1) % len(d.units)
			return u
		}
	}
	return nil
}

// RaiseMTTOPPageFault implements the mttop package's FaultHandler: the device
// interrupts the designated CPU core, which runs the kernel's fault handler
// and replays the PTE store through its cache; the faulting MTTOP access then
// resumes.
func (d *Device) RaiseMTTOPPageFault(fault *vm.Fault, resume func()) {
	if d.faultCPU == nil {
		panic("mifd: page fault raised before SetFaultCPU")
	}
	d.faultsFwd.Inc()
	d.faultCPU.RaiseInterrupt(cpu.Interrupt{
		Name: "mttop-page-fault",
		Service: func(serviced func()) {
			d.faultCPU.ServicePageFault(fault, func() {
				serviced()
				resume()
			})
		},
	})
}

// FlushAllTLBs broadcasts a TLB flush to every MTTOP core (the conservative
// shootdown of Section 3.2.1).
func (d *Device) FlushAllTLBs() {
	d.tlbFlushes.Inc()
	for _, u := range d.units {
		u.FlushTLB()
	}
}

// PendingThreads reports how many threads are waiting for a free context.
func (d *Device) PendingThreads() int { return len(d.pending) }
