// Package mifd implements the MTTOP InterFace Device of Section 3.1: the
// small controller that abstracts the collection of MTTOP cores away from the
// CPUs. A CPU launches a task (a set of threads) by writing a task descriptor
// to the device (a write syscall handled by the ~30-line driver in
// kernelos/xthreads); the MIFD assigns threads to free MTTOP contexts in
// round-robin order, records an error if the chip runs out of contexts,
// forwards MTTOP page faults to a CPU core as interrupts, and broadcasts TLB
// flushes for shootdowns.
package mifd
