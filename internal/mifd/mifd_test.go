package mifd

import (
	"fmt"
	"testing"

	"ccsvm/internal/exec"
	"ccsvm/internal/mem"
	"ccsvm/internal/sim"
	"ccsvm/internal/stats"
)

// fakeUnit is a ComputeUnit that runs threads to completion instantly.
type fakeUnit struct {
	id       int
	capacity int
	busy     int
	started  []int
	flushes  int
}

func (u *fakeUnit) FreeContexts() int { return u.capacity - u.busy }
func (u *fakeUnit) FlushTLB()         { u.flushes++ }
func (u *fakeUnit) StartThread(t *exec.Thread, cr3 mem.PAddr, onDone func()) {
	u.busy++
	u.started = append(u.started, t.ID())
	t.Start()
	// Kernels in these tests issue no ops, so the first fetch observes the
	// thread function return at the launch rendezvous.
	if _, st := t.TryNext(nil); st != exec.NextDone {
		panic("fakeUnit: test kernel issued an operation")
	}
	// Completion is reported immediately for these tests.
	u.busy--
	onDone()
}

func newTestDevice(t *testing.T, units ...*fakeUnit) (*Device, *sim.Engine) {
	t.Helper()
	engine := sim.NewEngine()
	gate := exec.NewGate()
	gate.Bind(engine)
	d := NewDevice(engine, DefaultConfig(), stats.NewRegistry("t"))
	for _, u := range units {
		d.AttachUnits(u)
	}
	d.SetThreadFactory(func(kernelID, tid int, args mem.VAddr) *exec.Thread {
		return exec.NewThread(gate, tid, fmt.Sprintf("k%d-t%d", kernelID, tid), func(ctx *exec.Context) {})
	})
	return d, engine
}

func TestLaunchDispatchesRoundRobin(t *testing.T) {
	u1 := &fakeUnit{id: 1, capacity: 100}
	u2 := &fakeUnit{id: 2, capacity: 100}
	d, engine := newTestDevice(t, u1, u2)
	d.Launch(TaskDescriptor{KernelID: 0, FirstTID: 0, LastTID: 9, CR3: 0x1000}, nil)
	engine.Run()
	if len(u1.started)+len(u2.started) != 10 {
		t.Fatalf("dispatched %d threads, want 10", len(u1.started)+len(u2.started))
	}
	if len(u1.started) == 0 || len(u2.started) == 0 {
		t.Fatalf("round robin did not use both units: %d/%d", len(u1.started), len(u2.started))
	}
	if d.ErrorRegister() != "" {
		t.Fatalf("unexpected error register: %q", d.ErrorRegister())
	}
}

func TestLaunchSetsErrorRegisterWhenOversubscribed(t *testing.T) {
	u := &fakeUnit{id: 1, capacity: 4}
	d, engine := newTestDevice(t, u)
	d.Launch(TaskDescriptor{KernelID: 0, FirstTID: 0, LastTID: 9, CR3: 0x1000}, nil)
	engine.Run()
	if d.ErrorRegister() == "" {
		t.Fatal("error register should record the shortfall")
	}
	// The fake unit frees contexts immediately, so all threads still ran.
	if len(u.started) != 10 {
		t.Fatalf("started %d, want 10", len(u.started))
	}
}

func TestLaunchTakesDispatchLatency(t *testing.T) {
	u := &fakeUnit{id: 1, capacity: 100}
	d, engine := newTestDevice(t, u)
	dispatched := sim.Time(0)
	d.Launch(TaskDescriptor{KernelID: 0, FirstTID: 0, LastTID: 7, CR3: 0}, func() {
		dispatched = engine.Now()
	})
	engine.Run()
	if dispatched < sim.Time(DefaultConfig().DispatchLatency) {
		t.Fatalf("dispatch completed at %v, want at least the dispatch latency", dispatched)
	}
}

func TestFlushAllTLBs(t *testing.T) {
	u1 := &fakeUnit{id: 1, capacity: 1}
	u2 := &fakeUnit{id: 2, capacity: 1}
	d, _ := newTestDevice(t, u1, u2)
	d.FlushAllTLBs()
	d.FlushAllTLBs()
	if u1.flushes != 2 || u2.flushes != 2 {
		t.Fatalf("flush broadcasts not delivered: %d/%d", u1.flushes, u2.flushes)
	}
}

func TestTaskDescriptorThreads(t *testing.T) {
	if (TaskDescriptor{FirstTID: 3, LastTID: 7}).Threads() != 5 {
		t.Fatal("Threads() wrong")
	}
}

func TestLaunchInvalidRangePanics(t *testing.T) {
	u := &fakeUnit{id: 1, capacity: 1}
	d, _ := newTestDevice(t, u)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for inverted thread range")
		}
	}()
	d.Launch(TaskDescriptor{FirstTID: 5, LastTID: 2}, nil)
}
