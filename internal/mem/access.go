package mem

import "fmt"

// AccessType classifies a memory operation issued by a core or device.
type AccessType uint8

const (
	// Read is an ordinary load.
	Read AccessType = iota
	// Write is an ordinary store.
	Write
	// ReadModifyWrite is an atomic operation (fetch-and-op / compare-and-swap)
	// performed at the L1 after obtaining exclusive coherence permission, as
	// specified in Section 3.2.4 of the paper.
	ReadModifyWrite
	// InstFetch is an instruction fetch (used for accounting only; the
	// workloads in this repository charge fetches as compute cycles).
	InstFetch
)

// String names the access type.
func (t AccessType) String() string {
	switch t {
	case Read:
		return "Read"
	case Write:
		return "Write"
	case ReadModifyWrite:
		return "RMW"
	case InstFetch:
		return "IFetch"
	default:
		return fmt.Sprintf("AccessType(%d)", uint8(t))
	}
}

// NeedsExclusive reports whether the access requires write permission
// (M state) in the cache.
func (t AccessType) NeedsExclusive() bool {
	return t == Write || t == ReadModifyWrite
}

// Request is a single memory access presented to a cache port. A request is
// entirely contained within one cache line; larger accesses are split by the
// issuing core.
type Request struct {
	// Type is the kind of access.
	Type AccessType
	// Addr is the physical byte address of the first byte accessed.
	Addr PAddr
	// Size is the number of bytes accessed (1..LineSize, not crossing a line).
	Size int
	// Requestor identifies the issuing port for stats and coherence
	// bookkeeping (the node ID of the L1's core).
	Requestor int
}

// Validate checks structural validity of the request.
func (r *Request) Validate() error {
	if r.Size <= 0 || r.Size > LineSize {
		return fmt.Errorf("mem: request size %d out of range", r.Size)
	}
	if LineOf(r.Addr) != LineOf(r.Addr+PAddr(r.Size-1)) {
		return fmt.Errorf("mem: request at %#x size %d crosses a cache line", uint64(r.Addr), r.Size)
	}
	return nil
}

// Line returns the cache line the request touches.
func (r *Request) Line() LineAddr { return LineOf(r.Addr) }

// String formats the request for traces.
func (r *Request) String() string {
	return fmt.Sprintf("%s@%#x+%d(req %d)", r.Type, uint64(r.Addr), r.Size, r.Requestor)
}

// Port is implemented by anything a core can issue memory requests to
// (an L1 cache controller, or a simple latency pipe in the baseline models).
// Access begins a request; done runs when the request completes, at the
// completion time on the simulation clock.
type Port interface {
	Access(req Request, done func())
}
