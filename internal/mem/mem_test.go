package mem

import (
	"testing"
	"testing/quick"
)

func TestLineAndPageGeometry(t *testing.T) {
	if LineSize != 1<<LineShift {
		t.Fatalf("LineSize %d != 1<<LineShift %d", LineSize, 1<<LineShift)
	}
	if PageSize != 1<<PageShift {
		t.Fatalf("PageSize %d != 1<<PageShift %d", PageSize, 1<<PageShift)
	}
	if LineOf(0x1000) != LineOf(0x103f) {
		t.Fatal("addresses 0x1000 and 0x103f should share a line")
	}
	if LineOf(0x1000) == LineOf(0x1040) {
		t.Fatal("addresses 0x1000 and 0x1040 should not share a line")
	}
	if got := LineOf(0x1234).Addr(); got != 0x1200 {
		t.Fatalf("line base of 0x1234 = %#x, want 0x1200", uint64(got))
	}
	if PageOf(0x2000) != 2 {
		t.Fatalf("PageOf(0x2000) = %d, want 2", PageOf(0x2000))
	}
	if got := Translate(3, VAddr(0x2abc)); got != PAddr(3*PageSize+0xabc) {
		t.Fatalf("Translate = %#x", uint64(got))
	}
}

func TestAlignHelpers(t *testing.T) {
	if AlignDown(0x1234, 16) != 0x1230 {
		t.Fatal("AlignDown")
	}
	if AlignUp(0x1234, 16) != 0x1240 {
		t.Fatal("AlignUp")
	}
	if AlignUp(0x1240, 16) != 0x1240 {
		t.Fatal("AlignUp of aligned value should be identity")
	}
}

// Property: for any virtual address, translating through a frame preserves
// the page offset and lands in that frame.
func TestTranslateProperty(t *testing.T) {
	f := func(frame uint32, va uint64) bool {
		fr := FrameNumber(frame)
		v := VAddr(va)
		p := Translate(fr, v)
		return PageOffset(v) == uint64(p)&(PageSize-1) && FrameOf(p) == fr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRequestValidate(t *testing.T) {
	ok := Request{Type: Read, Addr: 0x100, Size: 8}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	crossing := Request{Type: Read, Addr: 0x13c, Size: 8}
	if err := crossing.Validate(); err == nil {
		t.Fatal("line-crossing request accepted")
	}
	empty := Request{Type: Read, Addr: 0x100, Size: 0}
	if err := empty.Validate(); err == nil {
		t.Fatal("zero-size request accepted")
	}
	huge := Request{Type: Read, Addr: 0x100, Size: LineSize + 1}
	if err := huge.Validate(); err == nil {
		t.Fatal("oversized request accepted")
	}
}

func TestAccessTypeHelpers(t *testing.T) {
	if Read.NeedsExclusive() || InstFetch.NeedsExclusive() {
		t.Fatal("reads should not need exclusive permission")
	}
	if !Write.NeedsExclusive() || !ReadModifyWrite.NeedsExclusive() {
		t.Fatal("writes and RMWs need exclusive permission")
	}
	for _, tt := range []AccessType{Read, Write, ReadModifyWrite, InstFetch} {
		if tt.String() == "" {
			t.Fatal("empty access type name")
		}
	}
}

func TestPhysicalReadWrite(t *testing.T) {
	p := NewPhysical(1 << 20)
	p.WriteUint64(0x100, 0xdeadbeefcafef00d)
	if got := p.ReadUint64(0x100); got != 0xdeadbeefcafef00d {
		t.Fatalf("ReadUint64 = %#x", got)
	}
	p.WriteUint32(0x200, 0x12345678)
	if got := p.ReadUint32(0x200); got != 0x12345678 {
		t.Fatalf("ReadUint32 = %#x", got)
	}
	p.WriteUint8(0x300, 0xab)
	if got := p.ReadUint8(0x300); got != 0xab {
		t.Fatalf("ReadUint8 = %#x", got)
	}
	// Cross-page write/read round trip.
	buf := make([]byte, 100)
	for i := range buf {
		buf[i] = byte(i)
	}
	p.WriteBytes(PAddr(PageSize-50), buf)
	out := make([]byte, 100)
	p.ReadBytes(PAddr(PageSize-50), out)
	for i := range buf {
		if out[i] != buf[i] {
			t.Fatalf("cross-page byte %d = %d, want %d", i, out[i], buf[i])
		}
	}
}

func TestPhysicalLazyAllocationAndZero(t *testing.T) {
	p := NewPhysical(1 << 30)
	if p.TouchedFrames() != 0 {
		t.Fatal("fresh memory should have no frames")
	}
	if got := p.ReadUint64(0x5000); got != 0 {
		t.Fatalf("untouched memory reads %#x, want 0", got)
	}
	p.WriteUint64(0x5000, 7)
	if p.TouchedFrames() == 0 {
		t.Fatal("write did not materialize a frame")
	}
	p.ZeroFrame(FrameOf(0x5000))
	if got := p.ReadUint64(0x5000); got != 0 {
		t.Fatalf("after ZeroFrame read %#x, want 0", got)
	}
}

func TestPhysicalOutOfRangePanics(t *testing.T) {
	p := NewPhysical(1 << 12)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range access")
		}
	}()
	p.WriteUint8(PAddr(1<<13), 1)
}

// Property: independent 64-bit writes to distinct aligned addresses are all
// readable back.
func TestPhysicalRoundTripProperty(t *testing.T) {
	p := NewPhysical(1 << 24)
	f := func(slots map[uint16]uint64) bool {
		for slot, val := range slots {
			p.WriteUint64(PAddr(slot)*8, val)
		}
		for slot, val := range slots {
			if p.ReadUint64(PAddr(slot)*8) != val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
