// Package mem defines the memory primitives shared by every model in the
// repository: physical and virtual addresses, cache-line geometry, access
// types, and a functional backing store for physical memory.
//
// The timing models (caches, directory, DRAM, TLBs) only track state and
// latency; all data lives in a single functional Physical store per machine.
// This is the same functional/timing split used by gem5's Ruby memory system,
// which the paper's own evaluation is built on.
package mem

import "fmt"

// PAddr is a physical byte address.
type PAddr uint64

// VAddr is a virtual byte address.
type VAddr uint64

// Standard geometry used throughout the simulated machines.
const (
	// LineSize is the cache line size in bytes for every cache level.
	LineSize = 64
	// LineShift is log2(LineSize).
	LineShift = 6
	// PageSize is the virtual-memory page size in bytes.
	PageSize = 4096
	// PageShift is log2(PageSize).
	PageShift = 12
)

// LineAddr identifies a cache line (a line-aligned physical address).
type LineAddr uint64

// LineOf returns the cache line containing the physical address.
func LineOf(a PAddr) LineAddr { return LineAddr(a >> LineShift) }

// Addr returns the first physical byte address of the line.
func (l LineAddr) Addr() PAddr { return PAddr(l) << LineShift }

// String formats the line address as the hex byte address of its first byte.
func (l LineAddr) String() string { return fmt.Sprintf("line(%#x)", uint64(l.Addr())) }

// PageNumber identifies a virtual page.
type PageNumber uint64

// FrameNumber identifies a physical page frame.
type FrameNumber uint64

// PageOf returns the virtual page containing the virtual address.
func PageOf(v VAddr) PageNumber { return PageNumber(v >> PageShift) }

// FrameOf returns the physical frame containing the physical address.
func FrameOf(p PAddr) FrameNumber { return FrameNumber(p >> PageShift) }

// Addr returns the first virtual byte address of the page.
func (p PageNumber) Addr() VAddr { return VAddr(p) << PageShift }

// Addr returns the first physical byte address of the frame.
func (f FrameNumber) Addr() PAddr { return PAddr(f) << PageShift }

// PageOffset returns the offset of the virtual address within its page.
func PageOffset(v VAddr) uint64 { return uint64(v) & (PageSize - 1) }

// LineOffset returns the offset of the physical address within its line.
func LineOffset(a PAddr) uint64 { return uint64(a) & (LineSize - 1) }

// Translate combines a frame with the page offset of a virtual address.
func Translate(f FrameNumber, v VAddr) PAddr {
	return f.Addr() + PAddr(PageOffset(v))
}

// AlignDown rounds a virtual address down to the given power-of-two alignment.
func AlignDown(v VAddr, align uint64) VAddr {
	return VAddr(uint64(v) &^ (align - 1))
}

// AlignUp rounds a virtual address up to the given power-of-two alignment.
func AlignUp(v VAddr, align uint64) VAddr {
	return VAddr((uint64(v) + align - 1) &^ (align - 1))
}

// SameLine reports whether two physical addresses fall in the same cache line.
func SameLine(a, b PAddr) bool { return LineOf(a) == LineOf(b) }

// SamePage reports whether two virtual addresses fall in the same page.
func SamePage(a, b VAddr) bool { return PageOf(a) == PageOf(b) }
