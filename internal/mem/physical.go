package mem

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Physical is the functional backing store for a machine's physical memory.
// Frames are allocated lazily, so sparse physical address spaces cost only
// what they touch. All values are little-endian, matching x86.
//
// Physical is safe for concurrent use; the execution-driven workload
// coroutines and the single-threaded event engine hand off cleanly, but the
// lock keeps the store safe even under `go test -race` with misbehaving
// tests.
//
// The sized accessors (ReadUint64 and friends) are the memory hot path of
// every functional op the cores perform: they go straight at the frame's
// bytes under a one-entry frame cache, skipping the byte-slice staging and
// the per-access map lookup of the general ReadBytes/WriteBytes path.
type Physical struct {
	//ccsvm:stateok // zero-value lock; carries no state across a checkpoint
	mu     sync.Mutex
	frames map[FrameNumber][]byte
	// lastFrame/lastData cache the most recently touched frame: functional
	// accesses are heavily page-local (array sweeps, stacks, spin flags), so
	// most lookups hit without hashing the frame number.
	lastFrame FrameNumber
	lastData  []byte
	// size is the total bytes of installed DRAM; accesses beyond it panic,
	// catching allocator bugs early.
	size uint64
}

// NewPhysical creates a physical memory of the given size in bytes.
func NewPhysical(size uint64) *Physical {
	return &Physical{frames: make(map[FrameNumber][]byte), size: size}
}

// Size reports the installed capacity in bytes.
func (p *Physical) Size() uint64 { return p.size }

func (p *Physical) frame(f FrameNumber) []byte {
	if uint64(f.Addr()) >= p.size {
		panic(fmt.Sprintf("mem: physical access beyond installed DRAM: frame %#x, size %#x", uint64(f), p.size))
	}
	fr, ok := p.frames[f]
	if !ok {
		fr = make([]byte, PageSize)
		p.frames[f] = fr
	}
	return fr
}

// page resolves the frame containing addr through the one-entry cache.
// Callers must hold mu.
//
//ccsvm:hotpath
func (p *Physical) page(addr PAddr) []byte {
	f := FrameOf(addr)
	if p.lastData != nil && f == p.lastFrame {
		return p.lastData
	}
	fr := p.frame(f)
	p.lastFrame, p.lastData = f, fr
	return fr
}

// ReadBytes copies len(dst) bytes starting at addr into dst.
func (p *Physical) ReadBytes(addr PAddr, dst []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(dst) > 0 {
		f := FrameOf(addr)
		off := uint64(addr) & (PageSize - 1)
		n := copy(dst, p.frame(f)[off:])
		dst = dst[n:]
		addr += PAddr(n)
	}
}

// WriteBytes copies src into memory starting at addr.
func (p *Physical) WriteBytes(addr PAddr, src []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(src) > 0 {
		f := FrameOf(addr)
		off := uint64(addr) & (PageSize - 1)
		n := copy(p.frame(f)[off:], src)
		src = src[n:]
		addr += PAddr(n)
	}
}

// ReadUint64 reads a little-endian 64-bit value.
//
//ccsvm:hotpath
func (p *Physical) ReadUint64(addr PAddr) uint64 {
	if off := uint64(addr) & (PageSize - 1); off+8 <= PageSize {
		p.mu.Lock()
		v := binary.LittleEndian.Uint64(p.page(addr)[off:])
		p.mu.Unlock()
		return v
	}
	var buf [8]byte
	p.ReadBytes(addr, buf[:])
	return binary.LittleEndian.Uint64(buf[:])
}

// WriteUint64 writes a little-endian 64-bit value.
//
//ccsvm:hotpath
func (p *Physical) WriteUint64(addr PAddr, v uint64) {
	if off := uint64(addr) & (PageSize - 1); off+8 <= PageSize {
		p.mu.Lock()
		binary.LittleEndian.PutUint64(p.page(addr)[off:], v)
		p.mu.Unlock()
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	p.WriteBytes(addr, buf[:])
}

// ReadUint32 reads a little-endian 32-bit value.
//
//ccsvm:hotpath
func (p *Physical) ReadUint32(addr PAddr) uint32 {
	if off := uint64(addr) & (PageSize - 1); off+4 <= PageSize {
		p.mu.Lock()
		v := binary.LittleEndian.Uint32(p.page(addr)[off:])
		p.mu.Unlock()
		return v
	}
	var buf [4]byte
	p.ReadBytes(addr, buf[:])
	return binary.LittleEndian.Uint32(buf[:])
}

// WriteUint32 writes a little-endian 32-bit value.
//
//ccsvm:hotpath
func (p *Physical) WriteUint32(addr PAddr, v uint32) {
	if off := uint64(addr) & (PageSize - 1); off+4 <= PageSize {
		p.mu.Lock()
		binary.LittleEndian.PutUint32(p.page(addr)[off:], v)
		p.mu.Unlock()
		return
	}
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	p.WriteBytes(addr, buf[:])
}

// ReadUint8 reads a single byte.
//
//ccsvm:hotpath
func (p *Physical) ReadUint8(addr PAddr) uint8 {
	p.mu.Lock()
	v := p.page(addr)[uint64(addr)&(PageSize-1)]
	p.mu.Unlock()
	return v
}

// WriteUint8 writes a single byte.
//
//ccsvm:hotpath
func (p *Physical) WriteUint8(addr PAddr, v uint8) {
	p.mu.Lock()
	p.page(addr)[uint64(addr)&(PageSize-1)] = v
	p.mu.Unlock()
}

// ZeroFrame clears an entire physical frame (used when the kernel hands out a
// fresh page).
func (p *Physical) ZeroFrame(f FrameNumber) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fr := p.frame(f)
	clear(fr)
}

// TouchedFrames reports how many frames have been materialized, which tests
// use to confirm lazy allocation.
func (p *Physical) TouchedFrames() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.frames)
}

// Reset restores fresh-machine semantics — every byte zero, installed
// capacity set to size — while keeping materialized frames (and the frame
// map) allocated, so a reused memory re-runs its workload without re-paying
// lazy frame allocation. Frames beyond the new size are dropped; they would
// panic on access anyway.
func (p *Physical) Reset(size uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.size = size
	for f, fr := range p.frames {
		if uint64(f.Addr()) >= size {
			delete(p.frames, f)
			continue
		}
		clear(fr)
	}
	p.lastFrame, p.lastData = 0, nil
}
