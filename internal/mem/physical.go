package mem

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Physical is the functional backing store for a machine's physical memory.
// Frames are allocated lazily, so sparse physical address spaces cost only
// what they touch. All values are little-endian, matching x86.
//
// Physical is safe for concurrent use; the execution-driven workload
// coroutines and the single-threaded event engine hand off cleanly, but the
// lock keeps the store safe even under `go test -race` with misbehaving
// tests.
type Physical struct {
	//ccsvm:stateok // zero-value lock; carries no state across a checkpoint
	mu     sync.Mutex
	frames map[FrameNumber][]byte
	// size is the total bytes of installed DRAM; accesses beyond it panic,
	// catching allocator bugs early.
	size uint64
}

// NewPhysical creates a physical memory of the given size in bytes.
func NewPhysical(size uint64) *Physical {
	return &Physical{frames: make(map[FrameNumber][]byte), size: size}
}

// Size reports the installed capacity in bytes.
func (p *Physical) Size() uint64 { return p.size }

func (p *Physical) frame(f FrameNumber) []byte {
	if uint64(f.Addr()) >= p.size {
		panic(fmt.Sprintf("mem: physical access beyond installed DRAM: frame %#x, size %#x", uint64(f), p.size))
	}
	fr, ok := p.frames[f]
	if !ok {
		fr = make([]byte, PageSize)
		p.frames[f] = fr
	}
	return fr
}

// ReadBytes copies len(dst) bytes starting at addr into dst.
func (p *Physical) ReadBytes(addr PAddr, dst []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(dst) > 0 {
		f := FrameOf(addr)
		off := uint64(addr) & (PageSize - 1)
		n := copy(dst, p.frame(f)[off:])
		dst = dst[n:]
		addr += PAddr(n)
	}
}

// WriteBytes copies src into memory starting at addr.
func (p *Physical) WriteBytes(addr PAddr, src []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(src) > 0 {
		f := FrameOf(addr)
		off := uint64(addr) & (PageSize - 1)
		n := copy(p.frame(f)[off:], src)
		src = src[n:]
		addr += PAddr(n)
	}
}

// ReadUint64 reads a little-endian 64-bit value.
func (p *Physical) ReadUint64(addr PAddr) uint64 {
	var buf [8]byte
	p.ReadBytes(addr, buf[:])
	return binary.LittleEndian.Uint64(buf[:])
}

// WriteUint64 writes a little-endian 64-bit value.
func (p *Physical) WriteUint64(addr PAddr, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	p.WriteBytes(addr, buf[:])
}

// ReadUint32 reads a little-endian 32-bit value.
func (p *Physical) ReadUint32(addr PAddr) uint32 {
	var buf [4]byte
	p.ReadBytes(addr, buf[:])
	return binary.LittleEndian.Uint32(buf[:])
}

// WriteUint32 writes a little-endian 32-bit value.
func (p *Physical) WriteUint32(addr PAddr, v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	p.WriteBytes(addr, buf[:])
}

// ReadUint8 reads a single byte.
func (p *Physical) ReadUint8(addr PAddr) uint8 {
	var buf [1]byte
	p.ReadBytes(addr, buf[:])
	return buf[0]
}

// WriteUint8 writes a single byte.
func (p *Physical) WriteUint8(addr PAddr, v uint8) {
	p.WriteBytes(addr, []byte{v})
}

// ZeroFrame clears an entire physical frame (used when the kernel hands out a
// fresh page).
func (p *Physical) ZeroFrame(f FrameNumber) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fr := p.frame(f)
	for i := range fr {
		fr[i] = 0
	}
}

// TouchedFrames reports how many frames have been materialized, which tests
// use to confirm lazy allocation.
func (p *Physical) TouchedFrames() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.frames)
}
