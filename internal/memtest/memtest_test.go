package memtest_test

import (
	"strings"
	"testing"

	"ccsvm/internal/memtest"
)

func TestGenerateIsDeterministic(t *testing.T) {
	cfg := memtest.DefaultConfig(7)
	a := memtest.Generate(cfg)
	b := memtest.Generate(cfg)
	if len(a.CPU) != len(b.CPU) || len(a.MTTOP) != len(b.MTTOP) {
		t.Fatal("same config generated different program shapes")
	}
	for i := range a.CPU {
		for j := range a.CPU[i] {
			if a.CPU[i][j] != b.CPU[i][j] {
				t.Fatalf("CPU[%d][%d] differs: %v vs %v", i, j, a.CPU[i][j], b.CPU[i][j])
			}
		}
	}
	if memtest.Generate(memtest.DefaultConfig(8)).CPU[0][0] == a.CPU[0][0] &&
		memtest.Generate(memtest.DefaultConfig(8)).CPU[0][1] == a.CPU[0][1] &&
		memtest.Generate(memtest.DefaultConfig(8)).CPU[0][2] == a.CPU[0][2] {
		t.Fatal("different seeds generated identical program prefixes")
	}
}

// protocols enumerates the coherence protocol legs the stress suite runs:
// every test below must hold under both tables.
var protocols = []string{"moesi", "mesi"}

// TestStressCleanRun is the core conformance check: a contended
// multi-round random program over the tiny chip completes with every oracle,
// invariant, accounting and completion check green — under each protocol.
func TestStressCleanRun(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, proto := range protocols {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			for _, seed := range seeds {
				cfg := memtest.DefaultConfig(seed)
				cfg.Protocol = proto
				rep := memtest.RunSeed(cfg)
				if !rep.OK() {
					t.Fatalf("seed %d: %s", seed, rep.FailureSummary())
				}
				if rep.Ops == 0 || rep.Events == 0 {
					t.Fatalf("seed %d: empty run (ops %d, events %d)", seed, rep.Ops, rep.Events)
				}
				if rep.Pool.Gets == 0 {
					t.Fatalf("seed %d: no protocol messages exchanged — the stress did not reach the protocol", seed)
				}
			}
		})
	}
}

// TestStressDeterminism runs the same seed twice per protocol and requires a
// bit-identical event trace and final memory image — the determinism leg of
// the subsystem. It also requires the two protocols to actually diverge in
// scheduling: if MESI traced identically to MOESI, the table swap would be
// wired to nothing.
func TestStressDeterminism(t *testing.T) {
	traces := make(map[string]uint64)
	for _, proto := range protocols {
		cfg := memtest.DefaultConfig(42)
		cfg.Protocol = proto
		a := memtest.RunSeed(cfg)
		b := memtest.RunSeed(cfg)
		if !a.OK() || !b.OK() {
			t.Fatalf("%s runs failed: %s %s", proto, a.FailureSummary(), b.FailureSummary())
		}
		if a.TraceHash != b.TraceHash {
			t.Fatalf("%s event traces diverge: %#x vs %#x", proto, a.TraceHash, b.TraceHash)
		}
		if a.MemHash != b.MemHash {
			t.Fatalf("%s final memory images diverge: %#x vs %#x", proto, a.MemHash, b.MemHash)
		}
		if a.Events != b.Events || a.SimTime != b.SimTime || a.Ops != b.Ops {
			t.Fatalf("%s run shapes diverge: %+v vs %+v", proto, a, b)
		}
		traces[proto] = a.TraceHash
	}
	if traces["moesi"] == traces["mesi"] {
		t.Fatal("MOESI and MESI produced identical event traces on a contended run — the protocol switch is not reaching the controllers")
	}
}

// TestStressOnPresets runs a short stress on the paper presets the acceptance
// criteria name — including the eviction-pressure small-cache variant and the
// MESI preset — under each protocol leg. The ccsvm-base-mesi preset runs with
// no Protocol override, proving the preset's own configuration selects the
// table.
func TestStressOnPresets(t *testing.T) {
	for _, preset := range []string{"ccsvm-base", "ccsvm-small-cache"} {
		for _, proto := range protocols {
			preset, proto := preset, proto
			t.Run(preset+"/"+proto, func(t *testing.T) {
				t.Parallel()
				cfg := memtest.DefaultConfig(1)
				cfg.MachineName = preset
				cfg.Protocol = proto
				cfg.OpsPerThread = 150
				rep := memtest.RunSeed(cfg)
				if !rep.OK() {
					t.Fatalf("%s", rep.FailureSummary())
				}
			})
		}
	}
	t.Run("ccsvm-base-mesi/preset-default", func(t *testing.T) {
		t.Parallel()
		cfg := memtest.DefaultConfig(1)
		cfg.MachineName = "ccsvm-base-mesi"
		cfg.OpsPerThread = 150
		rep := memtest.RunSeed(cfg)
		if !rep.OK() {
			t.Fatalf("%s", rep.FailureSummary())
		}
	})
}

// TestInjectedBugIsCaughtAndShrinks arms the directory's skip-invalidation
// fault injection under each protocol and requires (a) the stress checks to
// catch the planted protocol bug and (b) the shrinker to minimize it to a
// directed litmus case of at most 20 ops that still reproduces, emitted as Go
// source carrying the protocol so the reproducer pins the table it broke.
func TestInjectedBugIsCaughtAndShrinks(t *testing.T) {
	for _, proto := range protocols {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			t.Parallel()
			cfg := memtest.DefaultConfig(1)
			cfg.Protocol = proto
			cfg.InjectSkipInvalidations = 1
			rep := memtest.RunSeed(cfg)
			if rep.OK() {
				t.Fatal("planted skip-invalidation bug was not caught")
			}
			found := false
			for _, f := range rep.Failures {
				if strings.Contains(f, "checker:") || strings.Contains(f, "quiesce") {
					found = true
				}
			}
			if !found {
				t.Fatalf("bug caught, but not by an invariant check: %s", rep.FailureSummary())
			}

			prog := memtest.Generate(cfg)
			small, runs := memtest.Shrink(cfg, prog, 300)
			t.Logf("shrunk %d ops -> %d ops in %d runs", prog.Ops(), small.Ops(), runs)
			if small.Ops() > 20 {
				t.Fatalf("shrunk reproducer has %d ops, want <= 20", small.Ops())
			}
			srep := memtest.RunProgram(cfg, small)
			if srep.OK() {
				t.Fatal("shrunk program no longer reproduces the failure")
			}

			src := memtest.GoSource(cfg, small, "LitmusSkipInvalidation")
			for _, want := range []string{
				"func TestLitmusSkipInvalidation(t *testing.T)",
				"memtest.RunProgram(cfg, prog)",
				"InjectSkipInvalidations: 1",
				`Protocol: "` + proto + `"`,
			} {
				if !strings.Contains(src, want) {
					t.Fatalf("emitted source missing %q:\n%s", want, src)
				}
			}
		})
	}
}

// TestCleanShrinkBudget: shrinking a passing program must return it unchanged
// after exactly one run.
func TestCleanShrinkBudget(t *testing.T) {
	cfg := memtest.DefaultConfig(3)
	cfg.OpsPerThread = 20
	prog := memtest.Generate(cfg)
	small, runs := memtest.Shrink(cfg, prog, 50)
	if runs != 1 {
		t.Fatalf("shrinking a passing program used %d runs, want 1", runs)
	}
	if small.Ops() != prog.Ops() {
		t.Fatal("shrinking a passing program changed it")
	}
}

// TestProgramFromBytes checks the fuzz decoder: any byte string becomes a
// structurally valid program, and the empty string a runnable empty one.
func TestProgramFromBytes(t *testing.T) {
	cfg := memtest.DefaultConfig(1)
	prog := memtest.ProgramFromBytes(cfg, []byte{0, 1, 2, 3, 0xff, 0x80, 0x41})
	if prog.Ops() != 7 {
		t.Fatalf("decoded %d ops from 7 bytes", prog.Ops())
	}
	slots := int32(cfg.Lines * cfg.SlotsPerLine)
	check := func(threads [][]memtest.Op) {
		for _, ops := range threads {
			for _, op := range ops {
				if op.Slot < 0 || op.Slot >= slots {
					t.Fatalf("op %v slot out of range [0,%d)", op, slots)
				}
			}
		}
	}
	check(prog.CPU)
	check(prog.MTTOP)

	rep := memtest.RunProgram(cfg, memtest.ProgramFromBytes(cfg, nil))
	if !rep.OK() {
		t.Fatalf("empty program failed: %s", rep.FailureSummary())
	}
}

// TestUnknownMachineFailsCleanly: a bad machine name is a reported failure,
// not a panic.
func TestUnknownMachineFailsCleanly(t *testing.T) {
	cfg := memtest.DefaultConfig(1)
	cfg.MachineName = "no-such-chip"
	rep := memtest.RunSeed(cfg)
	if rep.OK() {
		t.Fatal("unknown machine accepted")
	}
	if !strings.Contains(rep.FailureSummary(), "unknown machine") {
		t.Fatalf("unexpected failure: %s", rep.FailureSummary())
	}
}

// TestUnknownProtocolFailsCleanly: a bad protocol name is a reported failure,
// not a panic — the fuzz targets and CLIs rely on this.
func TestUnknownProtocolFailsCleanly(t *testing.T) {
	cfg := memtest.DefaultConfig(1)
	cfg.Protocol = "mosi"
	rep := memtest.RunSeed(cfg)
	if rep.OK() {
		t.Fatal("unknown protocol accepted")
	}
	if !strings.Contains(rep.FailureSummary(), "unknown protocol") {
		t.Fatalf("unexpected failure: %s", rep.FailureSummary())
	}
}
