package memtest

// Shrink minimizes a failing program to a directed litmus case: it repeatedly
// deletes whole threads and op chunks (delta-debugging style, halving chunk
// sizes down to single ops) while the program still fails, and returns the
// smallest failing program found plus the number of runs spent. maxRuns
// bounds the work (0 means a sensible default); the input program is not
// mutated.
//
// Shrinking re-runs RunProgram with the same Config, so an armed fault
// injection (InjectSkipInvalidations) stays armed in every candidate — the
// reproducer keeps failing when replayed.
func Shrink(cfg Config, prog Program, maxRuns int) (Program, int) {
	if maxRuns <= 0 {
		maxRuns = 300
	}
	runs := 0
	fails := func(p Program) bool {
		if runs >= maxRuns {
			return false
		}
		runs++
		return !RunProgram(cfg, p).OK()
	}
	best := prog.clone()
	if !fails(best) {
		// Not reproducible (flaky caller, or budget exhausted immediately).
		return best, runs
	}

	for changed := true; changed && runs < maxRuns; {
		changed = false

		// Pass 1: drop entire threads, last to first (later threads are
		// usually the least essential — earlier ones establish sharing).
		threadLists := []*[][]Op{&best.MTTOP, &best.CPU}
		for _, lists := range threadLists {
			for i := len(*lists) - 1; i >= 0; i-- {
				if len((*lists)[i]) == 0 {
					continue
				}
				cand := best.clone()
				if lists == &best.MTTOP {
					cand.MTTOP[i] = nil
				} else {
					cand.CPU[i] = nil
				}
				if fails(cand) {
					best = cand
					changed = true
				}
			}
		}

		// Pass 2: per-thread delta debugging — delete chunks, halving the
		// chunk size until single ops.
		shrinkOps := func(get func(p *Program) *[]Op) {
			for chunk := len(*get(&best)); chunk >= 1; chunk /= 2 {
				for lo := 0; lo < len(*get(&best)); {
					ops := *get(&best)
					hi := lo + chunk
					if hi > len(ops) {
						hi = len(ops)
					}
					cand := best.clone()
					c := get(&cand)
					*c = append(append([]Op(nil), ops[:lo]...), ops[hi:]...)
					if fails(cand) {
						best = cand
						changed = true
						// Same lo now addresses the next chunk.
					} else {
						lo = hi
					}
					if runs >= maxRuns {
						return
					}
				}
			}
		}
		for i := range best.CPU {
			i := i
			shrinkOps(func(p *Program) *[]Op { return &p.CPU[i] })
		}
		for i := range best.MTTOP {
			i := i
			shrinkOps(func(p *Program) *[]Op { return &p.MTTOP[i] })
		}
	}

	// Trim empty trailing threads so the reproducer reads minimally. The
	// trim changes the thread/launch count, which can perturb timing, so it
	// is validated like any other candidate.
	trimmed := best.clone()
	for len(trimmed.MTTOP) > 0 && len(trimmed.MTTOP[len(trimmed.MTTOP)-1]) == 0 {
		trimmed.MTTOP = trimmed.MTTOP[:len(trimmed.MTTOP)-1]
	}
	for len(trimmed.CPU) > 1 && len(trimmed.CPU[len(trimmed.CPU)-1]) == 0 {
		trimmed.CPU = trimmed.CPU[:len(trimmed.CPU)-1]
	}
	if len(trimmed.CPU) != len(best.CPU) || len(trimmed.MTTOP) != len(best.MTTOP) {
		runs++
		if !RunProgram(cfg, trimmed).OK() {
			best = trimmed
		}
	}
	return best, runs
}
