// Package memtest is the coherence-conformance and memory-consistency stress
// subsystem: it drives the full CCSVM stack (CPU and MTTOP cores, private
// L1s, the banked L2/directory, the torus and DRAM) with generated concurrent
// load/store/atomic sequences over a small shared address set and validates
// three properties:
//
//  1. Data-value correctness — a per-address last-writer oracle checks every
//     load against shadow memory mirroring the simulator's functional store,
//     and every atomic RMW's returned old value must extend the address's
//     linearization chain exactly.
//  2. Protocol invariants — sampled at quiesce points: at most one owner per
//     line, no writer coexisting with readers, the directory's state and
//     sharer vector consistent with the actual L1 states, every controller
//     drained, and no pooled Msg/Event leaked or double-released.
//  3. Determinism — the same seed must produce a bit-identical event trace
//     (sim.Engine's trace hash) and final memory image.
//
// The op sequences are pure data (Program), so a failing run can be
// minimized by Shrink into a directed litmus case and emitted as reproducible
// Go source. cmd/ccsvm-stress is the CLI front end; FuzzProtocol feeds
// arbitrary byte-decoded programs through the same harness.
package memtest
