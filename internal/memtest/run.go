package memtest

import (
	"fmt"
	"strings"

	"ccsvm/internal/cache"
	"ccsvm/internal/coherence"
	"ccsvm/internal/core"
	"ccsvm/internal/exec"
	"ccsvm/internal/mem"
	"ccsvm/internal/noc"
	"ccsvm/internal/sim"
	"ccsvm/internal/xthreads"
)

// lineStride spaces the working set's lines 3 lines apart, so consecutive
// table lines land in different L2 banks and different L1 sets while still
// colliding in the tiny machines' few sets.
const lineStride = 3 * mem.LineSize

// maxFailures bounds how many failure descriptions one run records.
const maxFailures = 50

// Report is the outcome of one stress run.
type Report struct {
	// Seed echoes the configuration's seed.
	Seed int64
	// Ops is the number of operations that completed.
	Ops int
	// SimTime is the simulated time the run consumed.
	SimTime sim.Duration
	// Events is the engine's executed-event count.
	Events uint64
	// TraceHash fingerprints the full event trace (see sim.Engine.TraceHash)
	// and MemHash the final values of every slot in the shared working set;
	// together they are the determinism contract's observables.
	TraceHash uint64
	MemHash   uint64
	// Pool is the system-wide protocol-message accounting.
	Pool coherence.PoolStats
	// Failures lists every check that failed, empty on a clean run.
	Failures []string
}

// OK reports whether the run passed every check.
func (r Report) OK() bool { return len(r.Failures) == 0 }

// FailureSummary formats the failures for logs (empty string when OK).
func (r Report) FailureSummary() string {
	if r.OK() {
		return ""
	}
	return fmt.Sprintf("%d failure(s):\n  %s", len(r.Failures), strings.Join(r.Failures, "\n  "))
}

// RunSeed generates and runs the program for the configuration.
func RunSeed(cfg Config) Report {
	return RunProgram(cfg, Generate(cfg))
}

// harness carries one run's oracle state. Workload goroutines update it
// between their operations; the exec handoff protocol keeps exactly one
// workload goroutine runnable at a time (the engine blocks in Thread.Next
// until the goroutine issues its next op), so the updates are serialized in
// global-performance order without locks and the shadow mirrors the
// functional memory exactly.
type harness struct {
	addrs     []mem.VAddr // slot -> virtual address
	shadow    []uint64    // slot -> last value written (the oracle)
	nextVal   uint64
	completed int
	failures  []string
}

func (h *harness) fail(format string, args ...any) {
	if len(h.failures) < maxFailures {
		h.failures = append(h.failures, fmt.Sprintf(format, args...))
	}
}

// exec interprets one thread's op segment against the machine. Both CPU and
// MTTOP contexts embed *exec.Context, so one interpreter serves both.
func (h *harness) exec(c *exec.Context, tid int, ops []Op) {
	for i, op := range ops {
		switch op.Kind {
		case OpCompute:
			c.Compute(int64(op.Arg%64) + 1)
		case OpRead:
			got := c.Load64(h.addrs[op.Slot])
			if want := h.shadow[op.Slot]; got != want {
				h.fail("oracle: thread %d op %d read slot %d = %#x, last writer stored %#x", tid, i, op.Slot, got, want)
			}
		case OpWrite:
			h.nextVal++
			v := h.nextVal
			c.Store64(h.addrs[op.Slot], v)
			h.shadow[op.Slot] = v
		case OpAtomic:
			old := c.AtomicAdd64(h.addrs[op.Slot], 1)
			if want := h.shadow[op.Slot]; old != want {
				h.fail("linearizability: thread %d op %d fetch-add on slot %d returned %#x, chain expects %#x", tid, i, op.Slot, old, want)
			}
			h.shadow[op.Slot]++
		}
		h.completed++
	}
}

// segment returns round r of rounds of a thread's op list.
func segment(ops []Op, r, rounds int) []Op {
	lo := r * len(ops) / rounds
	hi := (r + 1) * len(ops) / rounds
	return ops[lo:hi]
}

// RunProgram executes a stress program on a freshly built machine and runs
// every check. It never panics: machine-model panics (the protocol asserts
// its own state aggressively) are captured as failures, which is what lets
// the fuzz targets and the shrinker treat any misbehavior uniformly.
func RunProgram(cfg Config, prog Program) (rep Report) {
	cfg = cfg.normalized()
	rep.Seed = cfg.Seed
	h := &harness{
		addrs:  make([]mem.VAddr, cfg.slots()),
		shadow: make([]uint64, cfg.slots()),
	}
	defer func() {
		rep.Ops = h.completed
		rep.Failures = append(rep.Failures, h.failures...)
		h.failures = nil
		if r := recover(); r != nil {
			rep.Failures = append(rep.Failures, fmt.Sprintf("panic: %v", r))
		}
	}()

	mc, err := cfg.machineConfig()
	if err != nil {
		h.fail("%v", err)
		return rep
	}
	proto, err := coherence.LookupProtocol(mc.Coherence.Protocol)
	if err != nil {
		h.fail("%v", err)
		return rep
	}
	m := core.NewMachine(mc)
	defer m.Shutdown()
	m.Engine.EnableTraceHash()
	if cfg.InjectSkipInvalidations > 0 {
		for _, b := range m.DirectoryBanks() {
			b.InjectSkipInvalidations(cfg.InjectSkipInvalidations)
		}
	}

	base := m.Alloc(uint64(cfg.Lines * lineStride))
	for line := 0; line < cfg.Lines; line++ {
		for s := 0; s < cfg.SlotsPerLine; s++ {
			h.addrs[line*cfg.SlotsPerLine+s] = base + mem.VAddr(line*lineStride+8*s)
		}
	}

	for r := 0; r < cfg.Rounds; r++ {
		// Side CPU threads round-robin over the cores other than 0 (which
		// runs main); with a single core they queue behind main.
		for i := 1; i < len(prog.CPU); i++ {
			tid, seg := i, segment(prog.CPU[i], r, cfg.Rounds)
			if len(seg) == 0 {
				continue
			}
			t := m.Runtime.NewCPUThread(fmt.Sprintf("stress-cpu%d-r%d", i, r),
				func(c *xthreads.CPUContext) { h.exec(c.Context, tid, seg) })
			coreIdx := 0
			if len(m.CPUs) > 1 {
				coreIdx = 1 + (i-1)%(len(m.CPUs)-1)
			}
			m.CPUs[coreIdx].Run(t, nil)
		}
		round := r
		kid := -1
		if len(prog.MTTOP) > 0 {
			kid = m.RegisterKernel(func(mc *xthreads.MTTOPContext) {
				tid := mc.TID()
				h.exec(mc.Context, len(prog.CPU)+tid, segment(prog.MTTOP[tid], round, cfg.Rounds))
			})
		}
		_, err := m.RunProgram(func(c *xthreads.CPUContext) {
			if kid >= 0 {
				c.CreateMThreads(kid, 0, 0, len(prog.MTTOP)-1)
			}
			var seg []Op
			if len(prog.CPU) > 0 {
				seg = segment(prog.CPU[0], round, cfg.Rounds)
			}
			h.exec(c.Context, 0, seg)
		})
		if err != nil {
			h.fail("round %d: %v", r, err)
			break
		}
		sampleQuiesce(m, h, proto, r)
	}

	if !proto.HasOwned {
		var fwds uint64
		for _, c := range m.L1Controllers() {
			fwds += c.DataForwards()
		}
		if fwds != 0 {
			h.fail("protocol %s: %d cache-to-cache data forwards under a no-owner-forwarding protocol", proto.Name, fwds)
		}
	}

	for i, v := range m.Checker.Violations {
		if i >= maxFailures {
			break
		}
		h.fail("checker: %s", v)
	}
	rep.Pool = coherence.SumPoolStats(m.L1Controllers(), m.DirectoryBanks())
	if rep.Pool.DoubleReleases != 0 {
		h.fail("pool: %d double-released protocol messages", rep.Pool.DoubleReleases)
	}
	if n := rep.Pool.InFlight(); n != 0 {
		h.fail("pool: %d protocol messages leaked (allocated %d, released %d)", n, rep.Pool.Gets, rep.Pool.Puts)
	}
	if n := m.Engine.LiveEvents(); n != 0 {
		h.fail("events: %d pooled events still live after drain", n)
	}
	if want := prog.Ops(); len(h.failures) == 0 && h.completed != want {
		h.fail("completion: %d of %d operations completed", h.completed, want)
	}

	rep.SimTime = m.Engine.Now().Sub(0)
	rep.Events = m.Engine.Executed()
	rep.TraceHash = m.Engine.TraceHash()
	hash := uint64(14695981039346656037)
	for _, va := range h.addrs {
		hash = (hash ^ m.MemReadUint64(va)) * 1099511628211
	}
	rep.MemHash = hash
	return rep
}

// sampleQuiesce cross-checks the directory's view of every working-set line
// against the actual L1 states at a quiesce point: all controllers drained,
// at most one owner per line, no writer coexisting with a reader, and the
// directory state/owner/sharer-vector consistent with (conservatively, a
// superset of) the true holders. The checks are parameterized by protocol:
// under one without the Owned state, neither an L1 in O nor a Dir-O entry may
// ever exist, not even transiently between rounds.
func sampleQuiesce(m *core.Machine, h *harness, proto *coherence.Protocol, round int) {
	l1s := m.L1Controllers()
	for i, c := range l1s {
		if n := c.OutstandingTransactions(); n != 0 {
			h.fail("quiesce round %d: l1 %d has %d outstanding transactions", round, i, n)
		}
	}
	for i, b := range m.DirectoryBanks() {
		if b.Busy() {
			h.fail("quiesce round %d: directory bank %d still busy", round, i)
		}
	}

	seen := make(map[mem.LineAddr]bool)
	for _, va := range h.addrs {
		pa, ok := m.Process.Table.Translate(va)
		if !ok {
			continue // never touched (possible after shrinking)
		}
		la := mem.LineOf(pa)
		if seen[la] {
			continue
		}
		seen[la] = true
		checkLine(m, h, proto, round, la)
	}
}

// checkLine verifies one line's invariants at quiesce.
func checkLine(m *core.Machine, h *harness, proto *coherence.Protocol, round int, la mem.LineAddr) {
	fail := func(format string, args ...any) {
		h.fail("quiesce round %d line %v: "+format, append([]any{round, la}, args...)...)
	}

	// Gather the actual stable L1 states.
	holders := make(map[noc.NodeID]cache.State)
	owners := 0
	writers := 0
	readers := 0
	for i, c := range m.L1Controllers() {
		l := c.Array().Lookup(la)
		if l == nil {
			continue
		}
		if !l.State.Stable() {
			fail("l1 %d holds transient state %v at quiesce", i, l.State)
			continue
		}
		if l.State == cache.Invalid {
			continue
		}
		if !proto.HasOwned && l.State == cache.Owned {
			fail("l1 %d holds Owned under protocol %s, which has no O state", i, proto.Name)
		}
		holders[c.NodeID()] = l.State
		if l.State.IsOwnerState() {
			owners++
		}
		if l.State.CanWrite() {
			writers++
		}
		if l.State.CanRead() {
			readers++
		}
	}
	if owners > 1 {
		fail("%d owner-state holders: %v", owners, holders)
	}
	if writers > 0 && readers > writers {
		fail("a writable copy coexists with readers: %v", holders)
	}

	// Find the directory entry; exactly one bank may track the line.
	tracked := 0
	var dirState coherence.DirState
	var dirOwner noc.NodeID
	var dirSharers []noc.NodeID
	for _, b := range m.DirectoryBanks() {
		st, owner, sharers := b.Entry(la)
		if st == coherence.DirInvalid && len(sharers) == 0 {
			continue
		}
		tracked++
		dirState, dirOwner, dirSharers = st, owner, sharers
	}
	if tracked > 1 {
		fail("tracked by %d directory banks", tracked)
		return
	}
	sharerSet := make(map[noc.NodeID]bool, len(dirSharers))
	for _, s := range dirSharers {
		sharerSet[s] = true
	}

	switch {
	case tracked == 0 || dirState == coherence.DirInvalid:
		if len(holders) != 0 {
			fail("directory says Dir-I but L1s hold %v", holders)
		}
	case dirState == coherence.DirShared:
		// Silent S evictions make the sharer vector conservative: actual
		// holders must be a subset, all in S.
		for n, st := range holders {
			if st != cache.Shared {
				fail("Dir-S but l1 node %d holds %v", n, st)
			}
			if !sharerSet[n] {
				fail("Dir-S sharer vector %v misses actual holder %d", dirSharers, n)
			}
		}
	case dirState == coherence.DirExclusive:
		st, ok := holders[dirOwner]
		if !ok || (st != cache.Exclusive && st != cache.Modified) {
			fail("Dir-EM owner %d actually holds %v (holders %v)", dirOwner, st, holders)
		}
		if len(holders) > 1 {
			fail("Dir-EM with extra holders: %v", holders)
		}
	case dirState == coherence.DirOwned:
		if !proto.HasOwned {
			fail("directory tracks Dir-O under protocol %s, which has no O state", proto.Name)
			return
		}
		st, ok := holders[dirOwner]
		if !ok || st != cache.Owned {
			fail("Dir-O owner %d actually holds %v", dirOwner, st)
		}
		for n, hst := range holders {
			if n == dirOwner {
				continue
			}
			if hst != cache.Shared {
				fail("Dir-O but non-owner node %d holds %v", n, hst)
			}
			if !sharerSet[n] {
				fail("Dir-O sharer vector %v misses actual holder %d", dirSharers, n)
			}
		}
	}
}
