package memtest

import (
	"fmt"
	"math/rand"

	"ccsvm/internal/cache"
	"ccsvm/internal/coherence"
	"ccsvm/internal/core"
	"ccsvm/internal/workloads"
)

// Config parameterizes one stress run: which chip to build, how much traffic
// to generate, and the shape of the sharing pattern.
type Config struct {
	// MachineName selects the chip: a registered ccsvm preset name
	// ("ccsvm-base", "ccsvm-small-cache", ...), "small" for core.SmallConfig,
	// or "tiny" for the memtest-internal scaled-down chip whose very small
	// caches maximize eviction pressure. Used by machineConfig and by
	// GoSource so reproducers stay one line.
	MachineName string

	// Protocol overrides the chip's coherence protocol ("moesi", "mesi");
	// empty keeps whatever the machine configures. The invariant checks
	// adapt: a protocol without the Owned state must never exhibit it, and
	// must never forward data cache-to-cache.
	Protocol string

	// Seed drives the generator; the same Config must reproduce the same
	// Program and (by the determinism contract) the same run, bit for bit.
	Seed int64

	// CPUThreads and MTTOPThreads are the concurrency of the generated
	// program. CPUThreads includes the main thread; at least one CPU thread
	// always exists. Threads beyond the core count queue round-robin.
	CPUThreads   int
	MTTOPThreads int

	// OpsPerThread is how many operations each thread performs in total
	// (split across Rounds).
	OpsPerThread int

	// Rounds splits every thread's op sequence into this many program
	// launches with a full quiesce — and an invariant sample — between them.
	Rounds int

	// Lines is the number of distinct cache lines in the shared working set;
	// SlotsPerLine is how many independent 8-byte slots each line carries
	// (>1 creates false sharing: disjoint data, same coherence unit).
	Lines        int
	SlotsPerLine int

	// PctRead, PctWrite and PctAtomic set the op mix in percent; the
	// remainder are small compute bursts that stagger the cores.
	PctRead, PctWrite, PctAtomic int

	// InjectSkipInvalidations arms the directory fault injection on every
	// bank (see coherence.DirectoryBank.InjectSkipInvalidations). Zero for
	// real stress runs; nonzero only to prove the checks catch a planted bug.
	InjectSkipInvalidations int
}

// DefaultConfig returns a stress configuration with bite: a scaled-down chip
// with tiny caches, heavy line contention and false sharing, and a
// read/write/atomic mix.
func DefaultConfig(seed int64) Config {
	return Config{
		MachineName:  "tiny",
		Seed:         seed,
		CPUThreads:   3,
		MTTOPThreads: 6,
		OpsPerThread: 400,
		Rounds:       2,
		Lines:        16,
		SlotsPerLine: 4,
		PctRead:      35,
		PctWrite:     30,
		PctAtomic:    20,
	}
}

// normalized fills zero fields with usable defaults and clamps the rest, so
// fuzzers and CLIs can hand in partial configs.
func (c Config) normalized() Config {
	if c.MachineName == "" {
		c.MachineName = "tiny"
	}
	if c.CPUThreads < 1 {
		c.CPUThreads = 1
	}
	if c.MTTOPThreads < 0 {
		c.MTTOPThreads = 0
	}
	if c.Rounds < 1 {
		c.Rounds = 1
	}
	if c.Lines < 1 {
		c.Lines = 1
	}
	if c.SlotsPerLine < 1 {
		c.SlotsPerLine = 1
	}
	if c.SlotsPerLine > 8 {
		c.SlotsPerLine = 8 // 8 slots of 8 bytes fill a 64-byte line
	}
	return c
}

// slots reports the size of the shared address table.
func (c Config) slots() int { return c.Lines * c.SlotsPerLine }

// machineConfig resolves MachineName to a chip configuration, with Protocol
// applied on top when set.
func (c Config) machineConfig() (core.Config, error) {
	var mc core.Config
	switch c.MachineName {
	case "small":
		mc = core.SmallConfig()
	case "tiny":
		mc = tinyMachine()
	default:
		p, ok := workloads.LookupPreset(c.MachineName)
		if !ok {
			return core.Config{}, fmt.Errorf("memtest: unknown machine %q (want a ccsvm preset, \"small\" or \"tiny\")", c.MachineName)
		}
		if p.Machine != workloads.MachineCCSVM {
			return core.Config{}, fmt.Errorf("memtest: preset %q configures the %s machine; the stress harness drives the ccsvm machine only", c.MachineName, p.Machine)
		}
		mc = p.CCSVM
	}
	if c.Protocol != "" {
		if _, err := coherence.LookupProtocol(c.Protocol); err != nil {
			return core.Config{}, fmt.Errorf("memtest: %v", err)
		}
		mc.Coherence.Protocol = c.Protocol
	}
	return mc, nil
}

// tinyMachine is the memtest workhorse chip: the scaled-down test machine
// with caches shrunk until a handful of contended lines already evicts —
// every protocol path (forwards, upgrades, writebacks, races with evictions)
// fires within a few hundred ops.
func tinyMachine() core.Config {
	cfg := core.SmallConfig()
	cfg.CPUL1 = cache.Config{SizeBytes: 2 * 1024, Assoc: 4}
	cfg.MTTOPL1 = cache.Config{SizeBytes: 1024, Assoc: 4}
	cfg.L2Banks = 2
	cfg.L2BankBytes = 16 * 1024
	cfg.MTTOPContexts = 16
	return cfg
}

// Generate builds the seed-driven random program for the configuration. The
// same Config always yields the same Program.
func Generate(cfg Config) Program {
	cfg = cfg.normalized()
	rng := rand.New(rand.NewSource(cfg.Seed))
	slots := cfg.slots()
	genOps := func() []Op {
		ops := make([]Op, 0, cfg.OpsPerThread)
		for i := 0; i < cfg.OpsPerThread; i++ {
			p := rng.Intn(100)
			var op Op
			switch {
			case p < cfg.PctRead:
				op = Op{Kind: OpRead, Slot: int32(rng.Intn(slots))}
			case p < cfg.PctRead+cfg.PctWrite:
				op = Op{Kind: OpWrite, Slot: int32(rng.Intn(slots))}
			case p < cfg.PctRead+cfg.PctWrite+cfg.PctAtomic:
				op = Op{Kind: OpAtomic, Slot: int32(rng.Intn(slots))}
			default:
				op = Op{Kind: OpCompute, Arg: uint32(rng.Intn(64) + 1)}
			}
			ops = append(ops, op)
		}
		return ops
	}
	prog := Program{}
	for i := 0; i < cfg.CPUThreads; i++ {
		prog.CPU = append(prog.CPU, genOps())
	}
	for i := 0; i < cfg.MTTOPThreads; i++ {
		prog.MTTOP = append(prog.MTTOP, genOps())
	}
	return prog
}

// ProgramFromBytes decodes an arbitrary byte string into a valid Program for
// the configuration — the FuzzProtocol entry point. Bytes are dealt
// round-robin across the configured threads; each byte becomes one op (two
// bits of kind, the rest selecting the slot or compute size), so any fuzzer
// mutation is a structurally valid program.
func ProgramFromBytes(cfg Config, data []byte) Program {
	cfg = cfg.normalized()
	slots := cfg.slots()
	threads := cfg.CPUThreads + cfg.MTTOPThreads
	prog := Program{
		CPU:   make([][]Op, cfg.CPUThreads),
		MTTOP: make([][]Op, cfg.MTTOPThreads),
	}
	for i, b := range data {
		var op Op
		switch b & 3 {
		case 0:
			op = Op{Kind: OpRead, Slot: int32(int(b>>2) % slots)}
		case 1:
			op = Op{Kind: OpWrite, Slot: int32(int(b>>2) % slots)}
		case 2:
			op = Op{Kind: OpAtomic, Slot: int32(int(b>>2) % slots)}
		default:
			op = Op{Kind: OpCompute, Arg: uint32(b>>2) + 1}
		}
		t := i % threads
		if t < cfg.CPUThreads {
			prog.CPU[t] = append(prog.CPU[t], op)
		} else {
			prog.MTTOP[t-cfg.CPUThreads] = append(prog.MTTOP[t-cfg.CPUThreads], op)
		}
	}
	return prog
}
