package memtest_test

import (
	"testing"

	"ccsvm/internal/memtest"
)

// fuzzConfig is the chip and sharing pattern every FuzzProtocol input runs
// on: the tiny machine (maximum eviction pressure) with a working set small
// enough that arbitrary byte programs collide constantly.
func fuzzConfig() memtest.Config {
	return memtest.Config{
		MachineName:  "tiny",
		CPUThreads:   2,
		MTTOPThreads: 2,
		Rounds:       1,
		Lines:        6,
		SlotsPerLine: 2,
	}
}

// FuzzProtocol decodes arbitrary bytes into a stress program (every byte
// string is structurally valid — see ProgramFromBytes) and runs it through
// the full harness under BOTH protocol tables: any oracle mismatch, invariant
// violation, pool leak, or model panic under either table is a finding. The
// seed corpus covers read/write/atomic single-slot contention and a mixed
// burst.
func FuzzProtocol(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x02, 0x00, 0x01, 0x02})
	f.Add([]byte{0x01, 0x01, 0x01, 0x01, 0x05, 0x05, 0x09, 0x09})
	f.Add([]byte{0x02, 0x06, 0x0a, 0x0e, 0x12, 0x16, 0x1a, 0x1e, 0x22, 0x26})
	f.Add([]byte{0x00, 0x41, 0x82, 0xc3, 0x04, 0x45, 0x86, 0xc7, 0x08, 0x49,
		0x8a, 0xcb, 0x0c, 0x4d, 0x8e, 0xcf})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1024 {
			data = data[:1024]
		}
		for _, proto := range []string{"moesi", "mesi"} {
			cfg := fuzzConfig()
			cfg.Protocol = proto
			prog := memtest.ProgramFromBytes(cfg, data)
			rep := memtest.RunProgram(cfg, prog)
			if !rep.OK() {
				t.Fatalf("decoded program failed under %s: %s", proto, rep.FailureSummary())
			}
		}
	})
}
