package dram

import (
	"testing"

	"ccsvm/internal/sim"
	"ccsvm/internal/stats"
)

func TestControllerCountsAndLatency(t *testing.T) {
	engine := sim.NewEngine()
	c := NewController(engine, Config{Latency: 100 * sim.Nanosecond, Bandwidth: 0, SizeBytes: 1 << 30},
		stats.NewRegistry("t"), "dram")
	var readAt, writeAt sim.Time
	c.Read(0x40, func() { readAt = engine.Now() })
	c.Write(0x80, func() { writeAt = engine.Now() })
	engine.Run()
	if readAt != sim.Time(100*sim.Nanosecond) {
		t.Fatalf("read completed at %v, want 100ns", readAt)
	}
	if writeAt != sim.Time(100*sim.Nanosecond) {
		t.Fatalf("write completed at %v (no bandwidth limit => same latency)", writeAt)
	}
	if c.Reads() != 1 || c.Writes() != 1 || c.Accesses() != 2 {
		t.Fatalf("counters wrong: %d reads, %d writes", c.Reads(), c.Writes())
	}
}

func TestControllerBandwidthSerializes(t *testing.T) {
	engine := sim.NewEngine()
	// 64 bytes at 1 GB/s = 64 ns serialization per line.
	c := NewController(engine, Config{Latency: 10 * sim.Nanosecond, Bandwidth: 1e9, SizeBytes: 1 << 30},
		stats.NewRegistry("t"), "dram")
	var first, second sim.Time
	c.Read(0x40, func() { first = engine.Now() })
	c.Read(0x80, func() { second = engine.Now() })
	engine.Run()
	if second-first < sim.Time(60*sim.Nanosecond) {
		t.Fatalf("second access should be delayed by serialization: %v vs %v", first, second)
	}
}

func TestBulkTransfersCountLines(t *testing.T) {
	engine := sim.NewEngine()
	c := NewController(engine, DefaultAPUConfig(), stats.NewRegistry("t"), "dram")
	c.ReadBulk(1000, nil) // 16 lines
	c.WriteBulk(100, nil) // 2 lines
	if c.Reads() != 16 || c.Writes() != 2 {
		t.Fatalf("bulk accounting wrong: %d reads, %d writes", c.Reads(), c.Writes())
	}
	engine.Run()
}

func TestDefaultConfigs(t *testing.T) {
	ccsvm := DefaultCCSVMConfig()
	apu := DefaultAPUConfig()
	if ccsvm.Latency != 100*sim.Nanosecond || apu.Latency != 72*sim.Nanosecond {
		t.Fatal("Table 2 DRAM latencies wrong")
	}
	if ccsvm.SizeBytes != 2<<30 || apu.SizeBytes != 8<<30 {
		t.Fatal("Table 2 DRAM sizes wrong")
	}
}
