// Package dram models off-chip DRAM: a fixed access latency, a bandwidth
// limit, and — most importantly for the paper's Figure 9 — counters of every
// off-chip access. Both the CCSVM chip and the APU baseline use this model,
// so "number of DRAM accesses" is measured at the same boundary on both
// machines.
package dram

import (
	"ccsvm/internal/mem"
	"ccsvm/internal/sim"
	"ccsvm/internal/stats"
)

// Config describes one DRAM channel.
type Config struct {
	// Latency is the access latency (100 ns for the CCSVM system and 72 ns
	// for the APU in Table 2).
	Latency sim.Duration
	// Bandwidth is the channel bandwidth in bytes per second; zero disables
	// bandwidth modelling.
	Bandwidth float64
	// SizeBytes is the installed capacity (accounting only).
	SizeBytes uint64
}

// DefaultCCSVMConfig is the Table 2 CCSVM configuration: 2 GB, 100 ns.
func DefaultCCSVMConfig() Config {
	return Config{Latency: 100 * sim.Nanosecond, Bandwidth: 25.6e9, SizeBytes: 2 << 30}
}

// DefaultAPUConfig is the Table 2 APU configuration: 8 GB DDR3, 72 ns.
func DefaultAPUConfig() Config {
	return Config{Latency: 72 * sim.Nanosecond, Bandwidth: 29.8e9, SizeBytes: 8 << 30}
}

// Controller is a DRAM channel. Accesses are line-granular (the unit at which
// caches and DMA engines fetch).
type Controller struct {
	cfg    Config
	engine *sim.Engine
	freeAt sim.Time

	reads      *stats.Counter
	writes     *stats.Counter
	readBytes  *stats.Counter
	writeBytes *stats.Counter
}

// NewController creates a DRAM channel and registers its counters under the
// given name prefix (e.g. "dram").
func NewController(engine *sim.Engine, cfg Config, reg *stats.Registry, name string) *Controller {
	return &Controller{
		cfg:        cfg,
		engine:     engine,
		reads:      reg.Counter(name + ".reads"),
		writes:     reg.Counter(name + ".writes"),
		readBytes:  reg.Counter(name + ".read_bytes"),
		writeBytes: reg.Counter(name + ".write_bytes"),
	}
}

// Config returns the channel configuration.
func (c *Controller) Config() Config { return c.cfg }

// Accesses reports the total number of off-chip accesses (reads + writes),
// the metric plotted in Figure 9.
func (c *Controller) Accesses() uint64 { return c.reads.Value() + c.writes.Value() }

// Reads reports the number of read accesses.
func (c *Controller) Reads() uint64 { return c.reads.Value() }

// Writes reports the number of write accesses.
func (c *Controller) Writes() uint64 { return c.writes.Value() }

// Read fetches one cache line; done runs when the data is available.
func (c *Controller) Read(addr mem.LineAddr, done func()) {
	c.reads.Inc()
	c.readBytes.Add(mem.LineSize)
	c.access(mem.LineSize, done)
}

// Write writes back one cache line; done runs when the write has been
// accepted (writes are posted, but still occupy bandwidth).
func (c *Controller) Write(addr mem.LineAddr, done func()) {
	c.writes.Inc()
	c.writeBytes.Add(mem.LineSize)
	c.access(mem.LineSize, done)
}

// ReadBulk models a large sequential transfer (used by the APU DMA engine):
// it charges one latency plus the serialization of the whole transfer and
// counts the transfer as line-granular accesses, matching how a real DMA
// engine appears to the memory controller's performance counters.
func (c *Controller) ReadBulk(bytes int, done func()) {
	lines := (bytes + mem.LineSize - 1) / mem.LineSize
	c.reads.Add(uint64(lines))
	c.readBytes.Add(uint64(bytes))
	c.access(bytes, done)
}

// WriteBulk is the write analogue of ReadBulk.
func (c *Controller) WriteBulk(bytes int, done func()) {
	lines := (bytes + mem.LineSize - 1) / mem.LineSize
	c.writes.Add(uint64(lines))
	c.writeBytes.Add(uint64(bytes))
	c.access(bytes, done)
}

func (c *Controller) access(bytes int, done func()) {
	now := c.engine.Now()
	start := now
	if c.cfg.Bandwidth > 0 {
		if c.freeAt > start {
			start = c.freeAt
		}
		ser := sim.Duration(float64(bytes)/c.cfg.Bandwidth*float64(sim.Second) + 0.5)
		c.freeAt = start.Add(ser)
	}
	finish := start.Add(c.cfg.Latency)
	if done != nil {
		c.engine.At(finish, done)
	}
}
