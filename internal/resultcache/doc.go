// Package resultcache is the content-addressed store behind memoized
// simulation: Results keyed by the SHA-256 of their RunSpec's canonical
// encoding (ccsvm.RunSpec.CanonicalBytes). Because every run is
// bit-deterministic (ARCHITECTURE.md, "The determinism contract"), a cache
// hit is indistinguishable from re-simulating — the cache turns repeated
// design-space queries from O(simulation) into O(lookup).
//
// The cache is two tiers. The in-memory tier is a bounded LRU over the
// encoded record bytes; the optional on-disk tier persists records as
// hash-sharded JSON files (dir/ab/abcdef….json) written with
// write-temp-then-rename so concurrent writers never expose a partial file.
// Reads are corruption-tolerant: a truncated, garbled, or wrong-version
// record is a miss (counted, and the file removed), never an error — the
// simulator is always available to recompute.
//
// Get decodes a fresh Result on every hit, so callers can never alias or
// mutate a cached entry, and a cached Result is byte-identical (under the
// record encoding) to the freshly simulated Result that produced it — the
// property the service-level tests pin down.
//
// Hit/miss/byte traffic is counted in an internal/stats Registry; Stats
// returns a typed snapshot and Snapshot the raw rows, both safe to call
// concurrently.
package resultcache
