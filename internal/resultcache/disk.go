package resultcache

import (
	"fmt"
	"os"
	"path/filepath"
)

// The persistent tier stores one JSON record per key, sharded by the first
// byte of the hash (dir/ab/abcdef….json) so no directory grows past a few
// thousand entries. Writes go to a same-directory temp file and rename into
// place: rename is atomic on POSIX, so a reader (or a second writer in
// another process) either sees a complete previous record or a complete new
// one, never a partial file. Two writers racing the same key both hold full
// records for the same content address, so last-rename-wins is harmless.

// ensureDir creates the cache root.
func ensureDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("create cache dir: %w", err)
	}
	return nil
}

// path returns the sharded record path for a key.
func (c *Cache) path(key Key) string {
	hexKey := key.Hex()
	return filepath.Join(c.dir, hexKey[:2], hexKey+".json")
}

// readFile loads a record's bytes, counting the read traffic. A missing or
// unreadable file is an error for the caller to treat as a miss.
func (c *Cache) readFile(key Key) ([]byte, error) {
	raw, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.bytesRead.Add(uint64(len(raw)))
	c.mu.Unlock()
	return raw, nil
}

// writeFile persists a record atomically: temp file in the shard directory,
// fsync-free write (the cache is a recomputable store, not a journal), then
// rename over the final name.
func (c *Cache) writeFile(key Key, raw []byte) error {
	final := c.path(key)
	shard := filepath.Dir(final)
	if err := os.MkdirAll(shard, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(shard, "put-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	c.mu.Lock()
	c.bytesWritten.Add(uint64(len(raw)))
	c.mu.Unlock()
	return nil
}

// removeFile deletes a record file, ignoring failures — the worst case is
// re-reading a corrupt record and counting it again.
func (c *Cache) removeFile(key Key) { os.Remove(c.path(key)) }
