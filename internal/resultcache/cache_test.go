package resultcache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"ccsvm/internal/sim"
	"ccsvm/internal/workloads"
)

// testKey builds a deterministic key.
func testKey(b byte) Key {
	var k Key
	for i := range k {
		k[i] = b
	}
	return k
}

// testResult builds a Result with every field populated, including awkward
// metric values (integral floats, tiny fractions) that must survive the
// round trip bit-for-bit.
func testResult(i int) workloads.Result {
	return workloads.Result{
		Label:        fmt.Sprintf("CCSVM/xthreads-%d", i),
		Time:         sim.Duration(123456789 + i),
		DRAMAccesses: uint64(1<<40 + i),
		Checked:      true,
		Metrics: map[string]float64{
			"l1.hit_rate":  0.9999999999999,
			"noc.messages": 123456,
			"sim.events":   float64(i) + 0.125,
		},
	}
}

// mustJSON is the byte-identity probe: two Results are byte-identical iff
// their canonical JSON forms are equal (encoding/json sorts map keys).
func mustJSON(t *testing.T, v any) string {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(raw)
}

// TestMemoryRoundTrip: a stored Result comes back bit-identical, and the
// returned copy is owned by the caller (mutating it cannot poison the
// cache).
func TestMemoryRoundTrip(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	key, want := testKey(1), testResult(1)
	if err := c.Put(key, "spec", want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("fresh Put not found")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip not bit-identical:\n got %+v\nwant %+v", got, want)
	}
	if mustJSON(t, got) != mustJSON(t, want) {
		t.Fatal("round trip not byte-identical under JSON")
	}
	// Mutate the returned copy; the cache must be unaffected.
	got.Metrics["l1.hit_rate"] = -1
	again, _ := c.Get(key)
	if again.Metrics["l1.hit_rate"] != want.Metrics["l1.hit_rate"] {
		t.Fatal("Get returned an aliased Result: caller mutation reached the cache")
	}

	if _, ok := c.Get(testKey(9)); ok {
		t.Fatal("absent key reported as hit")
	}
	s := c.Stats()
	if s.MemHits != 2 || s.Misses != 1 || s.Stores != 1 {
		t.Fatalf("stats = %+v, want 2 mem hits / 1 miss / 1 store", s)
	}
}

// TestDiskRoundTrip: a second cache instance over the same directory (a
// restart, or another process) serves the persisted record, and the bytes
// counters see the traffic.
func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	key, want := testKey(2), testResult(2)

	c1, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Put(key, "spec", want); err != nil {
		t.Fatal(err)
	}
	if c1.Stats().BytesWritten == 0 {
		t.Fatal("persistent Put wrote no bytes")
	}

	c2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(key)
	if !ok {
		t.Fatal("persisted record not found by a fresh cache")
	}
	if !reflect.DeepEqual(got, want) || mustJSON(t, got) != mustJSON(t, want) {
		t.Fatalf("disk round trip not bit-identical:\n got %+v\nwant %+v", got, want)
	}
	s := c2.Stats()
	if s.DiskHits != 1 || s.BytesRead == 0 {
		t.Fatalf("stats = %+v, want 1 disk hit with bytes read", s)
	}
	// The disk hit was promoted: the next Get is a memory hit.
	if _, ok := c2.Get(key); !ok || c2.Stats().MemHits != 1 {
		t.Fatalf("disk hit was not promoted to the memory tier: %+v", c2.Stats())
	}
}

// recordPath locates the sharded file for a key.
func recordPath(dir string, key Key) string {
	return filepath.Join(dir, key.Hex()[:2], key.Hex()+".json")
}

// TestCorruptRecordsAreMisses: garbled, truncated, and wrong-version records
// are misses — counted, cleaned up, and recoverable by the next Put — never
// errors.
func TestCorruptRecordsAreMisses(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, path string, valid []byte)
	}{
		{"garbage", func(t *testing.T, path string, _ []byte) {
			if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated", func(t *testing.T, path string, valid []byte) {
			if err := os.WriteFile(path, valid[:len(valid)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"empty", func(t *testing.T, path string, _ []byte) {
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"wrong version", func(t *testing.T, path string, _ []byte) {
			raw, err := json.Marshal(record{Format: FormatVersion + 1})
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			key, want := testKey(3), testResult(3)
			writer, err := New(Options{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if err := writer.Put(key, "spec", want); err != nil {
				t.Fatal(err)
			}
			path := recordPath(dir, key)
			valid, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			tc.corrupt(t, path, valid)

			// A fresh cache (no memory tier copy) must treat it as a miss.
			reader, err := New(Options{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := reader.Get(key); ok {
				t.Fatal("corrupt record served as a hit")
			}
			s := reader.Stats()
			if s.Corrupt != 1 || s.Misses != 1 {
				t.Fatalf("stats = %+v, want 1 corrupt + 1 miss", s)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatal("corrupt record file was not removed")
			}
			// The tier self-heals: re-Put, then the record reads back.
			if err := reader.Put(key, "spec", want); err != nil {
				t.Fatal(err)
			}
			fresh, err := New(Options{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if got, ok := fresh.Get(key); !ok || !reflect.DeepEqual(got, want) {
				t.Fatal("re-Put after corruption did not restore the record")
			}
		})
	}
}

// TestLRUEviction: the memory tier is bounded and evicts least-recently-used
// first; touched entries survive.
func TestLRUEviction(t *testing.T) {
	c, err := New(Options{MaxEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := byte(1); i <= 2; i++ {
		if err := c.Put(testKey(i), "spec", testResult(int(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Touch key 1 so key 2 is the LRU victim.
	if _, ok := c.Get(testKey(1)); !ok {
		t.Fatal("key 1 missing before eviction")
	}
	if err := c.Put(testKey(3), "spec", testResult(3)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(testKey(2)); ok {
		t.Fatal("LRU victim survived eviction")
	}
	if _, ok := c.Get(testKey(1)); !ok {
		t.Fatal("recently-used entry was evicted")
	}
	if _, ok := c.Get(testKey(3)); !ok {
		t.Fatal("newest entry was evicted")
	}
	if s := c.Stats(); s.Evictions != 1 || c.Len() != 2 {
		t.Fatalf("evictions=%d len=%d, want 1 and 2", s.Evictions, c.Len())
	}
}

// TestConcurrentSharedDir: many goroutines across two Cache instances
// hammering one directory (the multi-Runner / multi-process shape) never
// interleave partial writes: every Get that hits decodes to exactly the
// Result stored for that key. Run under -race in CI.
func TestConcurrentSharedDir(t *testing.T) {
	dir := t.TempDir()
	c1, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := New(Options{Dir: dir, MaxEntries: -1}) // disk-only: every Get re-reads the file
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 16
	const keys = 4
	const rounds = 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			caches := []*Cache{c1, c2}
			for r := 0; r < rounds; r++ {
				kb := byte(1 + (g+r)%keys)
				key, want := testKey(kb), testResult(int(kb))
				c := caches[(g+r)%2]
				if (g+r)%3 == 0 {
					if err := c.Put(key, "spec", want); err != nil {
						errs <- err
						return
					}
					continue
				}
				got, ok := c.Get(key)
				if !ok {
					continue // not written yet: a miss, never an error
				}
				if !reflect.DeepEqual(got, want) {
					errs <- fmt.Errorf("key %v decoded to a torn/foreign record:\n got %+v\nwant %+v", key, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// No temp droppings left behind.
	matches, err := filepath.Glob(filepath.Join(dir, "*", "put-*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("leftover temp files after concurrent writes: %v", matches)
	}
}
