package resultcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"ccsvm/internal/sim"
	"ccsvm/internal/stats"
	"ccsvm/internal/workloads"
)

// FormatVersion is the version of the on-disk/in-memory record encoding.
// Records carrying any other version are treated as misses, so bumping it
// invalidates every persisted entry without touching the files.
const FormatVersion = 1

// Key is a content address: the SHA-256 of a RunSpec's canonical encoding.
type Key [sha256.Size]byte

// Hex returns the key as lowercase hex, the form used in filenames, HTTP
// responses, and logs.
func (k Key) Hex() string { return hex.EncodeToString(k[:]) }

// String implements fmt.Stringer as a short prefix of the hex form.
func (k Key) String() string { return k.Hex()[:12] }

// Options configures a Cache.
type Options struct {
	// MaxEntries bounds the in-memory LRU tier. Zero means DefaultMaxEntries;
	// negative disables the memory tier entirely (disk-only).
	MaxEntries int
	// Dir is the root of the persistent tier. Empty means memory-only.
	Dir string
}

// DefaultMaxEntries is the in-memory LRU capacity when Options.MaxEntries is
// zero.
const DefaultMaxEntries = 4096

// record is the stored form of one Result, versioned so schema evolution
// invalidates instead of corrupting. Spec is the human-readable RunSpec
// string, carried for debugging only — the key is the identity.
type record struct {
	Format int       `json:"format"`
	Spec   string    `json:"spec,omitempty"`
	Result recResult `json:"result"`
}

// recResult mirrors workloads.Result field-for-field with explicit JSON
// names. Metrics has no omitempty: an empty-but-present map must round-trip
// as-is so decoded Results stay bit-identical to fresh ones.
type recResult struct {
	Label        string             `json:"label"`
	SimTimePs    int64              `json:"sim_time_ps"`
	DRAMAccesses uint64             `json:"dram_accesses"`
	Checked      bool               `json:"checked"`
	Metrics      map[string]float64 `json:"metrics"`
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// MemHits and DiskHits count Gets served by each tier.
	MemHits  uint64 `json:"mem_hits"`
	DiskHits uint64 `json:"disk_hits"`
	// Misses counts Gets served by neither tier.
	Misses uint64 `json:"misses"`
	// Stores counts successful Puts.
	Stores uint64 `json:"stores"`
	// Corrupt counts disk records rejected as unreadable (truncated,
	// garbled, or wrong format version); each was reported as a miss.
	Corrupt uint64 `json:"corrupt"`
	// Evictions counts LRU evictions from the memory tier.
	Evictions uint64 `json:"evictions"`
	// StoreErrors counts Puts that failed to persist (the memory tier may
	// still have accepted the entry).
	StoreErrors uint64 `json:"store_errors"`
	// BytesWritten and BytesRead count record bytes moved to and from disk.
	BytesWritten uint64 `json:"bytes_written"`
	BytesRead    uint64 `json:"bytes_read"`
}

// Cache is the two-tier content-addressed Result store. All methods are safe
// for concurrent use; multiple Caches (in multiple processes) may share one
// Dir.
type Cache struct {
	dir        string
	maxEntries int

	mu      sync.Mutex
	entries map[Key]*list.Element
	lru     *list.List // front = most recent; values are *memEntry
	reg     *stats.Registry

	memHits, diskHits, misses, stores, corrupt, evictions, storeErrors, bytesWritten, bytesRead *stats.Counter
}

// memEntry is one LRU slot: the key (for eviction) and the encoded record.
type memEntry struct {
	key   Key
	bytes []byte
}

// New builds a cache, creating the persistent directory when one is named.
func New(opts Options) (*Cache, error) {
	max := opts.MaxEntries
	if max == 0 {
		max = DefaultMaxEntries
	}
	c := &Cache{
		dir:        opts.Dir,
		maxEntries: max,
		entries:    make(map[Key]*list.Element),
		lru:        list.New(),
		reg:        stats.NewRegistry("resultcache"),
	}
	c.memHits = c.reg.Counter("cache.mem.hits")
	c.diskHits = c.reg.Counter("cache.disk.hits")
	c.misses = c.reg.Counter("cache.misses")
	c.stores = c.reg.Counter("cache.stores")
	c.corrupt = c.reg.Counter("cache.disk.corrupt")
	c.evictions = c.reg.Counter("cache.mem.evictions")
	c.storeErrors = c.reg.Counter("cache.store_errors")
	c.bytesWritten = c.reg.Counter("cache.disk.bytes_written")
	c.bytesRead = c.reg.Counter("cache.disk.bytes_read")
	if c.dir != "" {
		if err := ensureDir(c.dir); err != nil {
			return nil, fmt.Errorf("resultcache: %w", err)
		}
	}
	return c, nil
}

// Get looks the key up in the memory tier, then the disk tier, promoting
// disk hits into memory. The returned Result is decoded fresh on every hit,
// so the caller owns it outright.
func (c *Cache) Get(key Key) (workloads.Result, bool) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		raw := el.Value.(*memEntry).bytes
		c.memHits.Inc()
		c.mu.Unlock()
		if res, ok := decodeRecord(raw); ok {
			return res, true
		}
		// An undecodable memory entry means Put accepted bytes Get cannot
		// read — a programming error, but degrade to a miss, not a panic.
		c.drop(key)
		c.count(c.misses)
		return workloads.Result{}, false
	}
	c.mu.Unlock()

	if c.dir != "" {
		raw, readErr := c.readFile(key)
		if readErr == nil {
			if res, ok := decodeRecord(raw); ok {
				c.insert(key, raw, c.diskHits)
				return res, true
			}
			// Unreadable record: count, remove so the next Put rewrites it
			// cleanly, and report a miss.
			c.count(c.corrupt)
			c.removeFile(key)
		}
	}
	c.count(c.misses)
	return workloads.Result{}, false
}

// Put stores the Result under key in both tiers. Encoding is done once; the
// memory tier holds the encoded bytes and the disk tier persists the same
// bytes atomically. A disk failure is reported (and counted) but the memory
// tier keeps the entry — the cache is an optimization, not a dependency.
func (c *Cache) Put(key Key, spec string, res workloads.Result) error {
	raw, err := encodeRecord(spec, res)
	if err != nil {
		c.count(c.storeErrors)
		return fmt.Errorf("resultcache: encode %s: %w", key, err)
	}
	c.insert(key, raw, c.stores)
	if c.dir == "" {
		return nil
	}
	if err := c.writeFile(key, raw); err != nil {
		c.count(c.storeErrors)
		return fmt.Errorf("resultcache: persist %s: %w", key, err)
	}
	return nil
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		MemHits:      c.memHits.Value(),
		DiskHits:     c.diskHits.Value(),
		Misses:       c.misses.Value(),
		Stores:       c.stores.Value(),
		Corrupt:      c.corrupt.Value(),
		Evictions:    c.evictions.Value(),
		StoreErrors:  c.storeErrors.Value(),
		BytesWritten: c.bytesWritten.Value(),
		BytesRead:    c.bytesRead.Value(),
	}
}

// Snapshot returns the raw stats rows, for generic rendering alongside the
// machines' metric registries.
func (c *Cache) Snapshot() []stats.NamedValue {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reg.Snapshot()
}

// Len reports the number of entries in the memory tier.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// insert adds or refreshes the memory-tier entry and bumps the given
// counter, evicting from the LRU tail past capacity.
func (c *Cache) insert(key Key, raw []byte, counter *stats.Counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	counter.Inc()
	if c.maxEntries < 0 {
		return
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*memEntry).bytes = raw
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&memEntry{key: key, bytes: raw})
	for c.lru.Len() > c.maxEntries {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*memEntry).key)
		c.evictions.Inc()
	}
}

// drop removes a memory-tier entry.
func (c *Cache) drop(key Key) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.Remove(el)
		delete(c.entries, key)
	}
}

// count increments a stats counter under the cache lock (stats.Counter is
// not itself synchronized).
func (c *Cache) count(counter *stats.Counter) {
	c.mu.Lock()
	counter.Inc()
	c.mu.Unlock()
}

// encodeRecord serializes one Result as a versioned record.
func encodeRecord(spec string, res workloads.Result) ([]byte, error) {
	return json.Marshal(record{
		Format: FormatVersion,
		Spec:   spec,
		Result: recResult{
			Label:        res.Label,
			SimTimePs:    int64(res.Time),
			DRAMAccesses: res.DRAMAccesses,
			Checked:      res.Checked,
			Metrics:      res.Metrics,
		},
	})
}

// decodeRecord parses a record, rejecting any malformed or wrong-version
// payload. The boolean is false for anything that should be treated as a
// cache miss.
func decodeRecord(raw []byte) (workloads.Result, bool) {
	var rec record
	if err := json.Unmarshal(raw, &rec); err != nil || rec.Format != FormatVersion {
		return workloads.Result{}, false
	}
	return workloads.Result{
		Label:        rec.Result.Label,
		Time:         sim.Duration(rec.Result.SimTimePs),
		DRAMAccesses: rec.Result.DRAMAccesses,
		Checked:      rec.Result.Checked,
		Metrics:      rec.Result.Metrics,
	}, true
}
