package noc

import (
	"fmt"

	"ccsvm/internal/sim"
)

// NodeID identifies an endpoint attached to the network (a core's L1
// controller, an L2/directory bank, a memory controller, or the MIFD).
type NodeID int

// Message is the unit of transfer on the network. The coherence protocol
// stores its own payload in Payload; the network only needs source,
// destination and size.
//
// Messages obtained from Network.NewMessage are recycled by the network after
// delivery: they are valid inside Receiver.Receive but must not be retained
// afterwards. Messages constructed directly (&Message{...}) are never
// recycled, so tests may hold on to them.
type Message struct {
	// Src and Dst are the endpoints.
	Src, Dst NodeID
	// SizeBytes is the total message size used for link serialization.
	// Control messages are typically 8-16 bytes, data messages carry a
	// 64-byte cache line plus a header.
	SizeBytes int
	// Payload is the protocol-level content, opaque to the network.
	Payload any
	// Enqueued is stamped by the network when the message is accepted, for
	// latency accounting.
	Enqueued sim.Time

	// fromPool marks messages owned by a network free list; only those are
	// recycled after delivery.
	fromPool bool
	// cur and dst are the torus routing state: the router the message sits
	// at and its destination coordinate. Keeping the walk state on the
	// message (the "flit buffer") avoids allocating a path slice per send.
	cur, dst Coord
}

// String formats the message for traces.
func (m *Message) String() string {
	return fmt.Sprintf("msg %d->%d (%dB)", m.Src, m.Dst, m.SizeBytes)
}

// msgPool is a network-owned free list of messages. Each network instance
// has its own pool, so parallel runs share no mutable state.
type msgPool struct {
	free []*Message
}

// get returns a zeroed pooled message.
//
//ccsvm:pooled get
//ccsvm:hotpath
func (p *msgPool) get() *Message {
	if n := len(p.free); n > 0 {
		m := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return m
	}
	return &Message{fromPool: true} //ccsvm:allocok // pool miss; steady state reuses the free list
}

// put recycles a delivered pooled message; caller-constructed messages are
// left alone.
//
//ccsvm:pooled put
//ccsvm:hotpath
func (p *msgPool) put(m *Message) {
	if !m.fromPool {
		return
	}
	*m = Message{fromPool: true}
	p.free = append(p.free, m) //ccsvm:allocok // free list returns to its high-water mark
}

// drain moves every free message into out and empties the free list, keeping
// its backing array.
func (p *msgPool) drain(out []*Message) []*Message {
	out = append(out, p.free...)
	for i := range p.free {
		p.free[i] = nil
	}
	p.free = p.free[:0]
	return out
}

// seed appends previously drained messages to the free list.
func (p *msgPool) seed(ms []*Message) {
	p.free = append(p.free, ms...)
}

// Receiver is implemented by every endpoint attached to a network; the
// network calls Receive when a message arrives, at the arrival time on the
// simulation clock.
type Receiver interface {
	Receive(msg *Message)
}

// Network is the interface shared by the torus and the crossbar: endpoints
// send messages and register to receive them.
type Network interface {
	// Attach registers the receiver for a node ID. It panics if the node is
	// already attached, which catches wiring bugs at machine-build time.
	Attach(id NodeID, r Receiver)
	// Send accepts a message for delivery. Delivery order between a given
	// source and destination pair is preserved (the torus uses deterministic
	// dimension-order routing with FIFO links).
	Send(msg *Message)
	// NewMessage returns a message from the network's free list for the hot
	// send path. The network recycles it after delivery (see Message), so
	// senders fill it, Send it, and never touch it again.
	//
	//ccsvm:pooled get
	NewMessage() *Message
}
