package noc

import (
	"fmt"

	"ccsvm/internal/sim"
)

// NodeID identifies an endpoint attached to the network (a core's L1
// controller, an L2/directory bank, a memory controller, or the MIFD).
type NodeID int

// Message is the unit of transfer on the network. The coherence protocol
// stores its own payload in Payload; the network only needs source,
// destination and size.
type Message struct {
	// Src and Dst are the endpoints.
	Src, Dst NodeID
	// SizeBytes is the total message size used for link serialization.
	// Control messages are typically 8-16 bytes, data messages carry a
	// 64-byte cache line plus a header.
	SizeBytes int
	// Payload is the protocol-level content, opaque to the network.
	Payload any
	// Enqueued is stamped by the network when the message is accepted, for
	// latency accounting.
	Enqueued sim.Time
}

// String formats the message for traces.
func (m *Message) String() string {
	return fmt.Sprintf("msg %d->%d (%dB)", m.Src, m.Dst, m.SizeBytes)
}

// Receiver is implemented by every endpoint attached to a network; the
// network calls Receive when a message arrives, at the arrival time on the
// simulation clock.
type Receiver interface {
	Receive(msg *Message)
}

// Network is the interface shared by the torus and the crossbar: endpoints
// send messages and register to receive them.
type Network interface {
	// Attach registers the receiver for a node ID. It panics if the node is
	// already attached, which catches wiring bugs at machine-build time.
	Attach(id NodeID, r Receiver)
	// Send accepts a message for delivery. Delivery order between a given
	// source and destination pair is preserved (the torus uses deterministic
	// dimension-order routing with FIFO links).
	Send(msg *Message)
}
