package noc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ccsvm/internal/sim"
	"ccsvm/internal/stats"
)

// sink records delivered messages with their arrival times.
type sink struct {
	engine   *sim.Engine
	arrivals []arrival
}

type arrival struct {
	msg *Message
	at  sim.Time
}

func (s *sink) Receive(m *Message) {
	s.arrivals = append(s.arrivals, arrival{msg: m, at: s.engine.Now()})
}

func buildTorus(t *testing.T, w, h int) (*sim.Engine, *Torus, map[NodeID]*sink) {
	t.Helper()
	engine := sim.NewEngine()
	placement := make(map[NodeID]Coord)
	id := NodeID(0)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			placement[id] = Coord{X: x, Y: y}
			id++
		}
	}
	torus := NewTorus(engine, DefaultTorusConfig(w, h), placement, stats.NewRegistry("noc"))
	sinks := make(map[NodeID]*sink)
	for n := range placement {
		s := &sink{engine: engine}
		sinks[n] = s
		torus.Attach(n, s)
	}
	return engine, torus, sinks
}

func TestTorusRouteEndpoints(t *testing.T) {
	_, torus, _ := buildTorus(t, 4, 4)
	path := torus.Route(0, 15) // (0,0) -> (3,3)
	if path[0] != (Coord{0, 0}) || path[len(path)-1] != (Coord{3, 3}) {
		t.Fatalf("route endpoints wrong: %v", path)
	}
	// Wraparound makes (0,0)->(3,3) a 2-hop trip in each dimension at most;
	// the shortest path here is 1 hop -X and 1 hop -Y.
	if got := torus.HopCount(0, 15); got != 2 {
		t.Fatalf("hop count = %d, want 2 (wraparound)", got)
	}
	if got := torus.HopCount(0, 0); got != 0 {
		t.Fatalf("self hop count = %d, want 0", got)
	}
}

// Property: routes are minimal — the hop count equals the torus Manhattan
// distance with wraparound, for random node pairs.
func TestTorusMinimalRoutingProperty(t *testing.T) {
	const w, h = 5, 3
	_, torus, _ := buildTorus(t, w, h)
	ringDist := func(a, b, size int) int {
		d := (a - b + size) % size
		if size-d < d {
			d = size - d
		}
		return d
	}
	f := func(sRaw, dRaw uint8) bool {
		src := NodeID(int(sRaw) % (w * h))
		dst := NodeID(int(dRaw) % (w * h))
		sc, _ := torus.Placement(src)
		dc, _ := torus.Placement(dst)
		want := ringDist(sc.X, dc.X, w) + ringDist(sc.Y, dc.Y, h)
		got := torus.HopCount(src, dst)
		path := torus.Route(src, dst)
		// Every step in the path must be a single-hop neighbour move.
		for i := 1; i < len(path); i++ {
			dx := ringDist(path[i-1].X, path[i].X, w)
			dy := ringDist(path[i-1].Y, path[i].Y, h)
			if dx+dy != 1 {
				return false
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTorusDelivery(t *testing.T) {
	engine, torus, sinks := buildTorus(t, 4, 4)
	torus.Send(&Message{Src: 0, Dst: 5, SizeBytes: 16, Payload: "hello"})
	engine.Run()
	got := sinks[5].arrivals
	if len(got) != 1 {
		t.Fatalf("destination received %d messages, want 1", len(got))
	}
	if got[0].msg.Payload != "hello" {
		t.Fatal("payload corrupted")
	}
	if got[0].at <= 0 {
		t.Fatal("delivery should take non-zero time")
	}
	for id, s := range sinks {
		if id != 5 && len(s.arrivals) != 0 {
			t.Fatalf("node %d received a stray message", id)
		}
	}
}

func TestTorusFIFOPerSourceDestination(t *testing.T) {
	engine, torus, sinks := buildTorus(t, 4, 4)
	const n = 50
	for i := 0; i < n; i++ {
		torus.Send(&Message{Src: 0, Dst: 10, SizeBytes: 16, Payload: i})
	}
	engine.Run()
	got := sinks[10].arrivals
	if len(got) != n {
		t.Fatalf("received %d, want %d", len(got), n)
	}
	for i, a := range got {
		if a.msg.Payload.(int) != i {
			t.Fatalf("message %d arrived out of order (payload %v)", i, a.msg.Payload)
		}
	}
}

func TestTorusFartherDestinationsTakeLonger(t *testing.T) {
	engine, torus, sinks := buildTorus(t, 8, 1)
	torus.Send(&Message{Src: 0, Dst: 1, SizeBytes: 16})
	torus.Send(&Message{Src: 0, Dst: 4, SizeBytes: 16})
	engine.Run()
	near := sinks[1].arrivals[0].at
	far := sinks[4].arrivals[0].at
	if far <= near {
		t.Fatalf("4-hop delivery (%v) should be slower than 1-hop (%v)", far, near)
	}
}

func TestTorusLinkContention(t *testing.T) {
	// Two messages that share the same outgoing link serialize; the second
	// arrives later than it would alone.
	engineA, torusA, sinksA := buildTorus(t, 8, 1)
	torusA.Send(&Message{Src: 0, Dst: 2, SizeBytes: 1024})
	engineA.Run()
	alone := sinksA[2].arrivals[0].at

	engineB, torusB, sinksB := buildTorus(t, 8, 1)
	torusB.Send(&Message{Src: 0, Dst: 1, SizeBytes: 1024})
	torusB.Send(&Message{Src: 0, Dst: 2, SizeBytes: 1024})
	engineB.Run()
	contended := sinksB[2].arrivals[0].at
	if contended <= alone {
		t.Fatalf("contended delivery (%v) should be slower than uncontended (%v)", contended, alone)
	}
}

func TestTorusAttachAndPlacementErrors(t *testing.T) {
	engine := sim.NewEngine()
	placement := map[NodeID]Coord{0: {0, 0}, 1: {1, 0}}
	torus := NewTorus(engine, DefaultTorusConfig(2, 1), placement, stats.NewRegistry("noc"))
	s := &sink{engine: engine}
	torus.Attach(0, s)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double attach should panic")
			}
		}()
		torus.Attach(0, s)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("attach without placement should panic")
			}
		}()
		torus.Attach(99, s)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero-size message should panic")
			}
		}()
		torus.Send(&Message{Src: 0, Dst: 1, SizeBytes: 0})
	}()
}

func TestCrossbarDeliveryAndSerialization(t *testing.T) {
	engine := sim.NewEngine()
	reg := stats.NewRegistry("apu")
	xbar := NewCrossbar(engine, CrossbarConfig{Latency: 10 * sim.Nanosecond, Bandwidth: 1e9}, reg, "xbar")
	s0 := &sink{engine: engine}
	s1 := &sink{engine: engine}
	xbar.Attach(0, s0)
	xbar.Attach(1, s1)
	// 1000 bytes at 1 GB/s = 1 us serialization each; second message waits.
	xbar.Send(&Message{Src: 0, Dst: 1, SizeBytes: 1000, Payload: "a"})
	xbar.Send(&Message{Src: 0, Dst: 1, SizeBytes: 1000, Payload: "b"})
	engine.Run()
	if len(s1.arrivals) != 2 {
		t.Fatalf("crossbar delivered %d, want 2", len(s1.arrivals))
	}
	first, second := s1.arrivals[0].at, s1.arrivals[1].at
	if second-first < sim.Time(900*sim.Nanosecond) {
		t.Fatalf("second message should be delayed ~1us by serialization, gap = %v", second-first)
	}
}

func TestCrossbarUnlimitedBandwidth(t *testing.T) {
	engine := sim.NewEngine()
	xbar := NewCrossbar(engine, CrossbarConfig{Latency: 5 * sim.Nanosecond}, stats.NewRegistry("x"), "xbar")
	s := &sink{engine: engine}
	xbar.Attach(1, s)
	xbar.Send(&Message{Src: 0, Dst: 1, SizeBytes: 1 << 20})
	engine.Run()
	if got := s.arrivals[0].at; got != sim.Time(5*sim.Nanosecond) {
		t.Fatalf("unlimited-bandwidth delivery at %v, want 5ns", got)
	}
}

// TestTorusMessageRecycling checks the pool contract: messages from
// NewMessage are recycled after delivery and reused, while caller-constructed
// messages are left alone so tests may retain them.
func TestTorusMessageRecycling(t *testing.T) {
	engine, torus, sinks := buildTorus(t, 2, 2)
	m := torus.NewMessage()
	m.Src, m.Dst, m.SizeBytes, m.Payload = 0, 1, 16, "pooled"
	torus.Send(m)
	engine.Run()
	if len(sinks[1].arrivals) != 1 {
		t.Fatalf("pooled message not delivered")
	}
	if got := torus.NewMessage(); got != m {
		t.Fatal("delivered pooled message was not recycled by NewMessage")
	} else if got.Payload != nil || got.SizeBytes != 0 {
		t.Fatalf("recycled message not zeroed: %+v", got)
	}

	direct := &Message{Src: 0, Dst: 1, SizeBytes: 16, Payload: "direct"}
	torus.Send(direct)
	engine.Run()
	if direct.Payload != "direct" {
		t.Fatal("caller-constructed message was clobbered by the pool")
	}
	if torus.NewMessage() == direct {
		t.Fatal("caller-constructed message must not enter the pool")
	}
}

// TestTorusSteadyStateSendAllocationFree proves the hot send path allocates
// nothing once the message pool and the engine's event pool are warm.
func TestTorusSteadyStateSendAllocationFree(t *testing.T) {
	engine, torus, _ := buildTorus(t, 4, 4)
	for i := 0; i < 100; i++ {
		m := torus.NewMessage()
		m.Src, m.Dst, m.SizeBytes = 0, 10, 80
		torus.Send(m)
	}
	engine.Run()
	allocs := testing.AllocsPerRun(100, func() {
		m := torus.NewMessage()
		m.Src, m.Dst, m.SizeBytes = 0, 10, 80
		torus.Send(m)
		engine.Run()
	})
	if allocs != 0 {
		t.Fatalf("steady-state send+deliver allocated %v objects/op, want 0", allocs)
	}
}

// Property: random traffic on the torus is always fully delivered, to the
// right destinations, regardless of pattern.
func TestTorusRandomTrafficDelivered(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		engine, torus, sinks := buildTorus(t, 4, 3)
		want := make(map[NodeID]int)
		for i := 0; i < 200; i++ {
			src := NodeID(rng.Intn(12))
			dst := NodeID(rng.Intn(12))
			size := 16 + rng.Intn(64)
			torus.Send(&Message{Src: src, Dst: dst, SizeBytes: size})
			want[dst]++
		}
		engine.Run()
		for id, s := range sinks {
			if len(s.arrivals) != want[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
