package noc

import (
	"fmt"

	"ccsvm/internal/sim"
	"ccsvm/internal/stats"
)

// CrossbarConfig describes a fully connected interconnect with a fixed
// latency and an aggregate bandwidth. The APU baseline machine uses one
// crossbar between its CPU cores and another full connection between cores,
// GPU and the memory controllers, matching the Table 2 description of the
// Llano part.
type CrossbarConfig struct {
	// Latency is the fixed transfer latency for any message.
	Latency sim.Duration
	// Bandwidth is the aggregate bandwidth in bytes per second; zero means
	// unlimited.
	Bandwidth float64
}

// Crossbar is a contention-light interconnect: every message pays the fixed
// latency plus serialization against one shared bandwidth pool.
//
//ccsvm:state
type Crossbar struct {
	cfg       CrossbarConfig
	engine    *sim.Engine
	receivers map[NodeID]Receiver
	freeAt    sim.Time

	// pool recycles delivered messages; deliverFn is bound once so delivery
	// scheduling allocates no closure.
	pool msgPool
	//ccsvm:stateok // bound once at construction; rebound on restore
	deliverFn func(any)

	msgs  *stats.Counter
	bytes *stats.Counter
}

// NewCrossbar builds a crossbar.
func NewCrossbar(engine *sim.Engine, cfg CrossbarConfig, reg *stats.Registry, name string) *Crossbar {
	x := &Crossbar{
		cfg:       cfg,
		engine:    engine,
		receivers: make(map[NodeID]Receiver),
		msgs:      reg.Counter(name + ".messages"),
		bytes:     reg.Counter(name + ".bytes"),
	}
	x.deliverFn = func(a any) { x.deliver(a.(*Message)) }
	return x
}

// NewMessage implements Network.
//
//ccsvm:pooled get
func (x *Crossbar) NewMessage() *Message { return x.pool.get() }

// Attach implements Network.
func (x *Crossbar) Attach(id NodeID, r Receiver) {
	if _, ok := x.receivers[id]; ok {
		panic(fmt.Sprintf("noc: crossbar node %d attached twice", id))
	}
	x.receivers[id] = r
}

// Send implements Network.
//
//ccsvm:hotpath
func (x *Crossbar) Send(msg *Message) {
	x.msgs.Inc()
	x.bytes.Add(uint64(msg.SizeBytes))
	now := x.engine.Now()
	start := now
	if x.cfg.Bandwidth > 0 {
		if x.freeAt > start {
			start = x.freeAt
		}
		ser := sim.Duration(float64(msg.SizeBytes)/x.cfg.Bandwidth*float64(sim.Second) + 0.5)
		x.freeAt = start.Add(ser)
		start = x.freeAt
	}
	arrive := start.Add(x.cfg.Latency)
	x.engine.AtArg(arrive, x.deliverFn, msg)
}

//
//ccsvm:hotpath
func (x *Crossbar) deliver(msg *Message) {
	r, ok := x.receivers[msg.Dst]
	if !ok {
		panic(fmt.Sprintf("noc: crossbar message to unattached node %d", msg.Dst))
	}
	r.Receive(msg)
	x.pool.put(msg)
}

var _ Network = (*Crossbar)(nil)
