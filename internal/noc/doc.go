// Package noc models the on-chip interconnection network of the CCSVM chip:
// a 2D torus with dimension-order routing, per-hop router latency, and
// per-link serialization at the configured link bandwidth (12 GB/s in the
// paper's Table 2). The same package also provides a simple crossbar used by
// the APU baseline model.
//
//ccsvm:deterministic
package noc
