package noc

import (
	"fmt"

	"ccsvm/internal/sim"
	"ccsvm/internal/stats"
)

// Coord is a router coordinate in the 2D torus.
type Coord struct {
	X, Y int
}

// TorusConfig describes the 2D torus of Figure 1 / Table 2.
type TorusConfig struct {
	// Width and Height are the router grid dimensions.
	Width, Height int
	// LinkBandwidth is the per-link bandwidth in bytes per second
	// (12 GB/s in Table 2).
	LinkBandwidth float64
	// LinkLatency is the wire traversal latency per hop.
	LinkLatency sim.Duration
	// RouterLatency is the per-router processing latency per hop.
	RouterLatency sim.Duration
	// EjectLatency is the latency from the final router into the endpoint.
	EjectLatency sim.Duration
}

// DefaultTorusConfig returns the parameters used for the CCSVM chip: a torus
// sized by the caller with 12 GB/s links and one-cycle-ish router and link
// latencies.
func DefaultTorusConfig(width, height int) TorusConfig {
	return TorusConfig{
		Width:         width,
		Height:        height,
		LinkBandwidth: 12e9,
		LinkLatency:   500 * sim.Picosecond,
		RouterLatency: 500 * sim.Picosecond,
		EjectLatency:  200 * sim.Picosecond,
	}
}

// link is a directed link between adjacent routers with FIFO serialization.
type link struct {
	// freeAt is the earliest time the link can begin transmitting the next
	// message.
	freeAt sim.Time
	// busyTime accumulates occupancy for utilization stats.
	busyTime sim.Duration
}

// Torus is a 2D torus network with dimension-order (X then Y) routing and
// shortest-direction wraparound. Messages experience per-hop router and link
// latency plus serialization and FIFO contention on every link they cross.
//
//ccsvm:state
type Torus struct {
	cfg    TorusConfig
	engine *sim.Engine
	reg    *stats.Registry

	placement map[NodeID]Coord
	receivers map[NodeID]Receiver

	// links[from][dir] where dir indexes +X, -X, +Y, -Y.
	links map[Coord]*[4]link

	// pool recycles delivered messages; advanceFn/deliverFn are the hop and
	// ejection callbacks bound once so per-hop scheduling allocates nothing
	// (the walk state lives on the message itself).
	pool msgPool
	//ccsvm:stateok // bound once at construction; rebound on restore
	advanceFn func(any)
	//ccsvm:stateok // bound once at construction; rebound on restore
	deliverFn func(any)

	msgs      *stats.Counter
	bytes     *stats.Counter
	hops      *stats.Counter
	totalLatP *stats.Counter
}

const (
	dirPlusX = iota
	dirMinusX
	dirPlusY
	dirMinusY
)

// NewTorus builds a torus. placement maps every attachable node to its router
// coordinate; several nodes may share one router (e.g. an L2 bank and its
// directory bank).
func NewTorus(engine *sim.Engine, cfg TorusConfig, placement map[NodeID]Coord, reg *stats.Registry) *Torus {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		panic("noc: torus dimensions must be positive")
	}
	t := &Torus{
		cfg:       cfg,
		engine:    engine,
		reg:       reg,
		placement: make(map[NodeID]Coord, len(placement)),
		receivers: make(map[NodeID]Receiver),
		links:     make(map[Coord]*[4]link),
	}
	//ccsvm:orderinvariant
	for id, c := range placement {
		if c.X < 0 || c.X >= cfg.Width || c.Y < 0 || c.Y >= cfg.Height {
			panic(fmt.Sprintf("noc: node %d placed at %v outside %dx%d torus", id, c, cfg.Width, cfg.Height))
		}
		t.placement[id] = c
	}
	for x := 0; x < cfg.Width; x++ {
		for y := 0; y < cfg.Height; y++ {
			t.links[Coord{x, y}] = &[4]link{}
		}
	}
	t.msgs = reg.Counter("noc.messages")
	t.bytes = reg.Counter("noc.bytes")
	t.hops = reg.Counter("noc.hops")
	t.totalLatP = reg.Counter("noc.total_latency_ps")
	t.advanceFn = func(a any) { t.advance(a.(*Message)) }
	t.deliverFn = func(a any) { t.deliver(a.(*Message)) }
	return t
}

// NewMessage implements Network.
//
//ccsvm:pooled get
func (t *Torus) NewMessage() *Message { return t.pool.get() }

// DrainFreeList removes and returns the network's parked message envelopes,
// for recycling into the next machine's torus (see SeedFreeList).
//
//ccsvm:pooled get
func (t *Torus) DrainFreeList() []*Message { return t.pool.drain(nil) }

// SeedFreeList hands previously drained envelopes to this network's pool.
//
//ccsvm:pooled put
func (t *Torus) SeedFreeList(ms []*Message) { t.pool.seed(ms) }

// Attach implements Network.
func (t *Torus) Attach(id NodeID, r Receiver) {
	if _, ok := t.receivers[id]; ok {
		panic(fmt.Sprintf("noc: node %d attached twice", id))
	}
	if _, ok := t.placement[id]; !ok {
		panic(fmt.Sprintf("noc: node %d has no placement on the torus", id))
	}
	t.receivers[id] = r
}

// Placement reports the coordinate of a node.
func (t *Torus) Placement(id NodeID) (Coord, bool) {
	c, ok := t.placement[id]
	return c, ok
}

// Route returns the sequence of coordinates a message visits from src to dst
// (inclusive of both), using X-then-Y dimension-order routing with
// shortest-direction wraparound.
func (t *Torus) Route(src, dst NodeID) []Coord {
	s, ok := t.placement[src]
	if !ok {
		panic(fmt.Sprintf("noc: unknown source node %d", src))
	}
	d, ok := t.placement[dst]
	if !ok {
		panic(fmt.Sprintf("noc: unknown destination node %d", dst))
	}
	path := []Coord{s}
	cur := s
	for cur.X != d.X {
		cur.X = t.stepToward(cur.X, d.X, t.cfg.Width)
		path = append(path, cur)
	}
	for cur.Y != d.Y {
		cur.Y = t.stepToward(cur.Y, d.Y, t.cfg.Height)
		path = append(path, cur)
	}
	return path
}

// HopCount reports the number of link traversals between two nodes.
func (t *Torus) HopCount(src, dst NodeID) int { return len(t.Route(src, dst)) - 1 }

// ringDist is the shortest distance between two positions on a ring.
func ringDist(a, b, size int) int {
	d := (a - b + size) % size
	if size-d < d {
		d = size - d
	}
	return d
}

// distance is the hop count between two coordinates without materializing the
// route (dimension-order routes are minimal).
func (t *Torus) distance(a, b Coord) int {
	return ringDist(a.X, b.X, t.cfg.Width) + ringDist(a.Y, b.Y, t.cfg.Height)
}

// stepToward moves one position from cur toward dst around a ring of the
// given size, taking the shorter direction (ties go in the + direction).
func (t *Torus) stepToward(cur, dst, size int) int {
	forward := (dst - cur + size) % size
	backward := (cur - dst + size) % size
	if forward <= backward {
		return (cur + 1) % size
	}
	return (cur - 1 + size) % size
}

func dirOf(from, to Coord, width, height int) int {
	switch {
	case to.X == (from.X+1)%width && to.Y == from.Y:
		return dirPlusX
	case to.X == (from.X-1+width)%width && to.Y == from.Y:
		return dirMinusX
	case to.Y == (from.Y+1)%height && to.X == from.X:
		return dirPlusY
	case to.Y == (from.Y-1+height)%height && to.X == from.X:
		return dirMinusY
	default:
		panic(fmt.Sprintf("noc: %v -> %v is not a single hop", from, to))
	}
}

// serialization returns how long a message of the given size occupies a link.
func (t *Torus) serialization(sizeBytes int) sim.Duration {
	if t.cfg.LinkBandwidth <= 0 {
		return 0
	}
	ps := float64(sizeBytes) / t.cfg.LinkBandwidth * float64(sim.Second)
	return sim.Duration(ps + 0.5)
}

// Send implements Network. The message is walked hop by hop; each hop charges
// router latency, waits for the outgoing link to be free, occupies it for the
// serialization time, and traverses it in the link latency. The walk state
// lives on the message, so sending allocates no path slice and each hop
// schedules without a closure.
//
//ccsvm:hotpath
func (t *Torus) Send(msg *Message) {
	if msg.SizeBytes <= 0 {
		panic("noc: message with non-positive size")
	}
	src, ok := t.placement[msg.Src]
	if !ok {
		panic(fmt.Sprintf("noc: unknown source node %d", msg.Src))
	}
	dst, ok := t.placement[msg.Dst]
	if !ok {
		panic(fmt.Sprintf("noc: unknown destination node %d", msg.Dst))
	}
	msg.Enqueued = t.engine.Now()
	msg.cur, msg.dst = src, dst
	t.msgs.Inc()
	t.bytes.Add(uint64(msg.SizeBytes))
	t.hops.Add(uint64(t.distance(src, dst)))
	t.advance(msg)
}

// advance moves the message one hop toward its destination (X dimension
// first, then Y); at the destination router the message is ejected into the
// endpoint.
//
//ccsvm:hotpath
func (t *Torus) advance(msg *Message) {
	now := t.engine.Now()
	if msg.cur == msg.dst {
		t.engine.AtArg(now.Add(t.cfg.EjectLatency), t.deliverFn, msg)
		return
	}
	next := msg.cur
	if next.X != msg.dst.X {
		next.X = t.stepToward(next.X, msg.dst.X, t.cfg.Width)
	} else {
		next.Y = t.stepToward(next.Y, msg.dst.Y, t.cfg.Height)
	}
	dir := dirOf(msg.cur, next, t.cfg.Width, t.cfg.Height)
	lnk := &t.links[msg.cur][dir]

	// Router processing before the link.
	readyAt := now.Add(t.cfg.RouterLatency)
	start := readyAt
	if lnk.freeAt > start {
		start = lnk.freeAt
	}
	ser := t.serialization(msg.SizeBytes)
	lnk.freeAt = start.Add(ser)
	lnk.busyTime += ser
	arrive := start.Add(ser).Add(t.cfg.LinkLatency)
	msg.cur = next
	t.engine.AtArg(arrive, t.advanceFn, msg)
}

//
//ccsvm:hotpath
func (t *Torus) deliver(msg *Message) {
	r, ok := t.receivers[msg.Dst]
	if !ok {
		panic(fmt.Sprintf("noc: message to unattached node %d", msg.Dst))
	}
	t.totalLatP.Add(uint64(t.engine.Now().Sub(msg.Enqueued)))
	r.Receive(msg)
	t.pool.put(msg)
}

var _ Network = (*Torus)(nil)
