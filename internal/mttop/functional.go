package mttop

import (
	"fmt"

	"ccsvm/internal/exec"
	"ccsvm/internal/mem"
)

// performFunctional applies the functional effect of a completed memory
// operation. It mirrors cpu.PerformFunctional; the duplication keeps the two
// core packages independent of each other.
func performFunctional(phys *mem.Physical, op exec.Op, pa mem.PAddr) uint64 {
	switch op.Kind {
	case exec.OpLoad:
		return readSized(phys, pa, int(op.Size))
	case exec.OpStore:
		writeSized(phys, pa, int(op.Size), op.Value)
		return 0
	case exec.OpRMW:
		old := readSized(phys, pa, int(op.Size))
		writeSized(phys, pa, int(op.Size), op.ApplyRMW(old))
		return old
	default:
		panic(fmt.Sprintf("mttop: functional perform of %v", op.Kind))
	}
}

func readSized(phys *mem.Physical, pa mem.PAddr, size int) uint64 {
	switch size {
	case 1:
		return uint64(phys.ReadUint8(pa))
	case 4:
		return uint64(phys.ReadUint32(pa))
	case 8:
		return phys.ReadUint64(pa)
	default:
		panic(fmt.Sprintf("mttop: unsupported access size %d", size))
	}
}

func writeSized(phys *mem.Physical, pa mem.PAddr, size int, v uint64) {
	switch size {
	case 1:
		phys.WriteUint8(pa, uint8(v))
	case 4:
		phys.WriteUint32(pa, uint32(v))
	case 8:
		phys.WriteUint64(pa, v)
	default:
		panic(fmt.Sprintf("mttop: unsupported access size %d", size))
	}
}
