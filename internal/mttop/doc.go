// Package mttop models the massively-threaded throughput-oriented (MTTOP)
// cores of the CCSVM chip: GPU-like cores with many hardware thread contexts
// (128 per core in Table 2), an 8-wide issue limit, small private L1 caches,
// private TLBs and page-table walkers, and no ability to run the OS — page
// faults are raised to a CPU core through the MIFD.
//
// The paper's SIMT warps are modelled as fine-grained multithreading under a
// shared issue-bandwidth limit (see DESIGN.md); this preserves the peak
// throughput of 8 operations per cycle per core and the memory-system
// behaviour the evaluation measures.
//
//ccsvm:deterministic
package mttop
