package mttop_test

import (
	"testing"

	"ccsvm/internal/exec"
	"ccsvm/internal/kernelos"
	"ccsvm/internal/mem"
	"ccsvm/internal/mttop"
	"ccsvm/internal/sim"
	"ccsvm/internal/stats"
	"ccsvm/internal/vm"
)

// stepPort is a flat-latency memory port whose per-access latency can be
// changed between accesses, so completions can be forced out of issue order.
type stepPort struct {
	engine  *sim.Engine
	latency sim.Duration
}

func (p *stepPort) Access(req mem.Request, done func()) {
	p.engine.Schedule(p.latency, done)
}

// mttopRig is one MTTOP core with a flat port and (optionally) no MMU — the
// configuration the APU machine reuses for its GPU SIMD units.
type mttopRig struct {
	engine *sim.Engine
	gate   *exec.Gate
	core   *mttop.Core
	phys   *mem.Physical
	port   *stepPort
	reg    *stats.Registry
}

func newMTTOPRig(t *testing.T, contexts, issueWidth int) *mttopRig {
	t.Helper()
	engine := sim.NewEngine()
	gate := exec.NewGate()
	gate.Bind(engine)
	reg := stats.NewRegistry("test")
	phys := mem.NewPhysical(16 << 20)
	port := &stepPort{engine: engine, latency: 2 * sim.Nanosecond}
	core := mttop.New(engine, mttop.Config{
		Clock:       sim.NewClock("mttop", 1e9), // 1 ns period: cycles read as ns
		NumContexts: contexts,
		IssueWidth:  issueWidth,
		Name:        "mt0",
	}, port, nil, phys, nil, reg)
	return &mttopRig{engine: engine, gate: gate, core: core, phys: phys, port: port, reg: reg}
}

// TestContextAllocationAndReuse pins the hardware-context lifecycle: starting
// threads consumes free contexts, finishing threads returns them, and the
// freed contexts are immediately reusable for new threads.
func TestContextAllocationAndReuse(t *testing.T) {
	r := newMTTOPRig(t, 2, 8)
	if got := r.core.FreeContexts(); got != 2 {
		t.Fatalf("fresh core has %d free contexts, want 2", got)
	}
	finished := 0
	run := func() *exec.Thread {
		return exec.NewThread(r.gate, finished, "t", func(c *exec.Context) { c.Compute(10) })
	}
	r.core.StartThread(run(), 0, func() { finished++ })
	r.core.StartThread(run(), 0, func() { finished++ })
	if got := r.core.FreeContexts(); got != 0 {
		t.Fatalf("free contexts = %d with two threads running, want 0", got)
	}
	if got := r.core.BusyContexts(); got != 2 {
		t.Fatalf("busy contexts = %d, want 2", got)
	}
	r.gate.Drive(r.engine.Step)
	if finished != 2 {
		t.Fatalf("%d threads finished, want 2", finished)
	}
	if got := r.core.FreeContexts(); got != 2 {
		t.Fatalf("free contexts = %d after drain, want 2", got)
	}
	// The freed contexts take a third thread without complaint.
	r.core.StartThread(run(), 0, func() { finished++ })
	r.gate.Drive(r.engine.Step)
	if finished != 3 {
		t.Fatalf("%d threads finished, want 3", finished)
	}
	if got, _ := r.reg.Lookup("mt0.threads_run"); got != 3 {
		t.Fatalf("threads_run = %d, want 3", got)
	}
}

// TestStartThreadWithoutFreeContextPanics pins the loud failure mode the MIFD
// relies on checking FreeContexts to avoid.
func TestStartThreadWithoutFreeContextPanics(t *testing.T) {
	r := newMTTOPRig(t, 1, 8)
	r.core.StartThread(exec.NewThread(r.gate, 0, "t0", func(c *exec.Context) { c.Compute(1000) }), 0, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("StartThread with no free contexts did not panic")
		}
	}()
	r.core.StartThread(exec.NewThread(r.gate, 1, "t1", func(c *exec.Context) {}), 0, nil)
}

// TestInFlightOpStatePerContext forces memory-op completions out of issue
// order (the second context's access completes long before the first's) and
// requires each context's in-flight op state — the op, its address, its
// result — to stay with its own thread.
func TestInFlightOpStatePerContext(t *testing.T) {
	r := newMTTOPRig(t, 2, 8)
	const a0, a1 = mem.VAddr(0x1000), mem.VAddr(0x2000)
	r.phys.WriteUint64(mem.PAddr(a0), 111)
	r.phys.WriteUint64(mem.PAddr(a1), 222)

	var got0, got1 uint64
	// Thread 0 issues first through a slow port; thread 1 issues second
	// through a fast one, so completions arrive 1-then-0.
	r.port.latency = 100 * sim.Nanosecond
	r.core.StartThread(exec.NewThread(r.gate, 0, "slow", func(c *exec.Context) {
		got0 = c.Load64(a0)
		c.Store64(a0, got0+1)
	}), 0, nil)
	r.port.latency = 1 * sim.Nanosecond
	r.core.StartThread(exec.NewThread(r.gate, 1, "fast", func(c *exec.Context) {
		got1 = c.Load64(a1)
		if old := c.AtomicAdd64(a1, 10); old != 222 {
			t.Errorf("fetch-add returned %d, want 222", old)
		}
	}), 0, nil)
	r.gate.Drive(r.engine.Step)

	if got0 != 111 || got1 != 222 {
		t.Fatalf("loads crossed contexts: got0=%d (want 111), got1=%d (want 222)", got0, got1)
	}
	if v := r.phys.ReadUint64(mem.PAddr(a0)); v != 112 {
		t.Fatalf("store through context 0 wrote %d to a0, want 112", v)
	}
	if v := r.phys.ReadUint64(mem.PAddr(a1)); v != 232 {
		t.Fatalf("RMW through context 1 left a1 = %d, want 232", v)
	}
	if got, _ := r.reg.Lookup("mt0.mem_ops"); got != 4 {
		t.Fatalf("mem_ops = %d, want 4", got)
	}
}

// TestIssueWidthSharesBandwidth pins the shared issue bucket: two 100-instr
// threads on an IssueWidth-1 core serialize (~200 cycles), while a wide core
// overlaps them (~100 cycles, each thread bounded by its dependent chain).
func TestIssueWidthSharesBandwidth(t *testing.T) {
	run := func(issueWidth int) sim.Time {
		r := newMTTOPRig(t, 2, issueWidth)
		for i := 0; i < 2; i++ {
			r.core.StartThread(exec.NewThread(r.gate, i, "t", func(c *exec.Context) { c.Compute(100) }), 0, nil)
		}
		r.gate.Drive(r.engine.Step)
		return r.engine.Now()
	}
	narrow := run(1)
	wide := run(100)
	if narrow < sim.Time(200*sim.Nanosecond) {
		t.Fatalf("IssueWidth 1 finished two 100-instr threads in %v, want >= 200ns", narrow)
	}
	if wide >= narrow {
		t.Fatalf("IssueWidth 100 (%v) not faster than IssueWidth 1 (%v)", wide, narrow)
	}
	if wide < sim.Time(100*sim.Nanosecond) {
		t.Fatalf("a 100-instr dependent chain finished in %v, faster than 1 instr/cycle", wide)
	}
}

// TestSyscallOnMTTOPPanics: MTTOP cores do not run the OS (paper §3.2.1).
func TestSyscallOnMTTOPPanics(t *testing.T) {
	r := newMTTOPRig(t, 1, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("syscall on an MTTOP core did not panic")
		}
	}()
	r.core.StartThread(exec.NewThread(r.gate, 0, "t0", func(c *exec.Context) { c.Syscall(1) }), 0, nil)
	r.gate.Drive(r.engine.Step)
}

// faultRecorder implements mttop.FaultHandler the way the MIFD does: service
// the fault on the "CPU" (here: directly in the kernel) and resume the MTTOP
// access after a delay.
type faultRecorder struct {
	engine *sim.Engine
	kernel *kernelos.Kernel
	faults int
}

func (f *faultRecorder) RaiseMTTOPPageFault(fault *vm.Fault, resume func()) {
	f.faults++
	f.kernel.HandlePageFault(fault)
	f.engine.Schedule(50*sim.Nanosecond, resume)
}

// TestPageFaultEscalatesToHandler gives the core a real MMU and an unmapped
// heap page: the first touch must escalate to the FaultHandler, retry after
// resume, and complete with the right data.
func TestPageFaultEscalatesToHandler(t *testing.T) {
	engine := sim.NewEngine()
	gate := exec.NewGate()
	gate.Bind(engine)
	reg := stats.NewRegistry("test")
	phys := mem.NewPhysical(16 << 20)
	kernel := kernelos.NewKernel(phys, 16, kernelos.DefaultCosts(), reg)
	proc := kernel.NewProcess()
	port := &stepPort{engine: engine, latency: 2 * sim.Nanosecond}
	mmu := vm.NewMMU(vm.TLBConfig{Entries: 8, Name: "mt0.tlb"}, port, phys, reg)
	handler := &faultRecorder{engine: engine, kernel: kernel}
	core := mttop.New(engine, mttop.Config{
		Clock:       sim.NewClock("mttop", 1e9),
		NumContexts: 4,
		IssueWidth:  8,
		Name:        "mt0",
	}, port, mmu, phys, handler, reg)
	mmu.SetRoot(proc.Root())

	va := proc.Sbrk(mem.PageSize)
	var readBack uint64
	done := false
	core.StartThread(exec.NewThread(gate, 0, "t0", func(c *exec.Context) {
		c.Store64(va, 0xbeef)
		readBack = c.Load64(va)
	}), proc.Root(), func() { done = true })
	gate.Drive(engine.Step)

	if !done {
		t.Fatal("thread did not finish")
	}
	if handler.faults != 1 {
		t.Fatalf("handler saw %d faults, want 1 (second access hits the mapped page)", handler.faults)
	}
	if got, _ := reg.Lookup("mt0.page_faults"); got != 1 {
		t.Fatalf("page_faults = %d, want 1", got)
	}
	if readBack != 0xbeef {
		t.Fatalf("read back %#x, want 0xbeef", readBack)
	}
}
