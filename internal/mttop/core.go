package mttop

import (
	"fmt"

	"ccsvm/internal/exec"
	"ccsvm/internal/mem"
	"ccsvm/internal/sim"
	"ccsvm/internal/stats"
	"ccsvm/internal/vm"
)

// FaultHandler receives page faults that MTTOP cores cannot service locally.
// The MIFD implements it by interrupting a CPU core, exactly as in Section
// 3.2.1 of the paper.
type FaultHandler interface {
	RaiseMTTOPPageFault(fault *vm.Fault, resume func())
}

// Config describes one MTTOP core.
type Config struct {
	// Clock is the MTTOP clock domain (600 MHz).
	Clock sim.Clock
	// NumContexts is the number of hardware thread contexts (128).
	NumContexts int
	// IssueWidth is the number of operations the core can issue per cycle
	// across all contexts (8).
	IssueWidth int
	// Name prefixes the core's statistics.
	Name string
}

// hwContext is one hardware thread context. A context runs one operation at
// a time, so the in-flight op's state lives here and the per-op callbacks
// (translateCb, accessCb) are bound once at core construction — the hot
// issue/translate/access path allocates nothing per operation.
type hwContext struct {
	idx int
	//ccsvm:stateok // goroutine-backed thread handle; software threads are re-launched on restore
	thread *exec.Thread
	//ccsvm:stateok // task completion callback; re-registered when tasks are re-issued on restore
	onDone func()
	busy   bool

	op exec.Op
	pa mem.PAddr
	// translateCb receives the MMU translation of op.Addr; accessCb runs
	// when the cache access for the op is globally performed; stepFn is the
	// resume continuation handed to Thread.TryNext.
	//
	//ccsvm:stateok // bound once at core construction; rebound on restore
	translateCb func(mem.PAddr, *vm.Fault)
	//ccsvm:stateok // bound once at core construction; rebound on restore
	accessCb func()
	//ccsvm:stateok // bound once at core construction; rebound on restore
	stepFn func()
}

// Core is one MTTOP core.
//
//ccsvm:state
type Core struct {
	engine *sim.Engine
	cfg    Config
	port   mem.Port
	mmu    *vm.MMU
	phys   *mem.Physical
	faults FaultHandler

	contexts []hwContext
	free     []int
	// issueFree is the shared issue-bandwidth bucket: each operation reserves
	// 1/IssueWidth of a cycle.
	issueFree sim.Time

	// completeFn and memIssueFn are the engine callbacks for compute-op
	// completion and memory-op issue, bound once so scheduling them never
	// allocates a closure (the context rides as the event argument).
	//
	//ccsvm:stateok // bound once at construction; rebound on restore
	completeFn func(any)
	//ccsvm:stateok // bound once at construction; rebound on restore
	memIssueFn func(any)

	instrs     *stats.Counter
	memOps     *stats.Counter
	pageFaults *stats.Counter
	tasksRun   *stats.Counter
}

// New builds an MTTOP core.
func New(engine *sim.Engine, cfg Config, port mem.Port, mmu *vm.MMU, phys *mem.Physical,
	faults FaultHandler, reg *stats.Registry) *Core {
	if cfg.NumContexts <= 0 || cfg.IssueWidth <= 0 {
		panic(fmt.Sprintf("mttop: invalid config for %s", cfg.Name))
	}
	c := &Core{
		engine:   engine,
		cfg:      cfg,
		port:     port,
		mmu:      mmu,
		phys:     phys,
		faults:   faults,
		contexts: make([]hwContext, cfg.NumContexts),
	}
	for i := range c.contexts {
		h := &c.contexts[i]
		h.idx = i
		h.translateCb = func(pa mem.PAddr, fault *vm.Fault) { c.translated(h, pa, fault) }
		h.accessCb = func() { c.accessDone(h) }
		h.stepFn = func() { c.stepContext(h) }
		c.free = append(c.free, i)
	}
	c.completeFn = func(a any) { c.completeOp(a.(*hwContext), exec.Result{}) }
	c.memIssueFn = func(a any) { c.memAccess(a.(*hwContext)) }
	c.instrs = reg.Counter(cfg.Name + ".instructions")
	c.memOps = reg.Counter(cfg.Name + ".mem_ops")
	c.pageFaults = reg.Counter(cfg.Name + ".page_faults")
	c.tasksRun = reg.Counter(cfg.Name + ".threads_run")
	return c
}

// Config returns the core's configuration.
func (c *Core) Config() Config { return c.cfg }

// MMU returns the core's MMU.
func (c *Core) MMU() *vm.MMU { return c.mmu }

// FreeContexts reports how many hardware thread contexts are available.
func (c *Core) FreeContexts() int { return len(c.free) }

// FlushTLB flushes the core's TLB (the MIFD broadcasts this on shootdown).
func (c *Core) FlushTLB() {
	if c.mmu != nil {
		c.mmu.TLB().Flush()
	}
}

// StartThread binds a software thread to a free hardware context, loads the
// CR3 it received in the task descriptor, and begins execution. onDone runs
// when the thread's kernel function returns (the context is freed first).
// It panics if no context is free; the MIFD checks FreeContexts before
// dispatching.
func (c *Core) StartThread(t *exec.Thread, cr3 mem.PAddr, onDone func()) {
	if len(c.free) == 0 {
		panic(fmt.Sprintf("%s: StartThread with no free contexts", c.cfg.Name))
	}
	idx := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	h := &c.contexts[idx]
	h.thread = t
	h.onDone = onDone
	h.busy = false
	c.tasksRun.Inc()
	// The task descriptor carries the process's CR3; loading it makes the
	// MTTOP core a full participant in the process's virtual address space.
	// (The APU baseline reuses this core model for its GPU SIMD units with no
	// MMU at all: addresses are physical and cr3 is ignored.)
	if c.mmu != nil {
		c.mmu.SetRoot(cr3)
	}
	t.Start()
	c.stepContext(h)
}

// BusyContexts reports how many contexts are currently running threads.
func (c *Core) BusyContexts() int { return c.cfg.NumContexts - len(c.free) }

// stepContext pulls and executes the next operation of one context's thread.
// When the thread has not published it yet (NextWait), the fetch registers
// stepContext itself as the resume continuation: the thread's between-ops
// code runs under the gate's baton and re-enters here with the operation
// published.
//
//ccsvm:hotpath
func (c *Core) stepContext(h *hwContext) {
	if h.busy || h.thread == nil {
		return
	}
	op, st := h.thread.TryNext(h.stepFn)
	if st == exec.NextWait {
		return
	}
	if st == exec.NextDone {
		c.finishContext(h)
		return
	}
	h.busy = true
	c.execute(h, op)
}

func (c *Core) finishContext(h *hwContext) {
	t := h.thread
	onDone := h.onDone
	h.thread = nil
	h.onDone = nil
	h.busy = false
	c.free = append(c.free, h.idx)
	if err := t.Err(); err != nil {
		panic(fmt.Sprintf("%s: MTTOP thread %q failed: %v", c.cfg.Name, t.Name(), err))
	}
	if onDone != nil {
		onDone()
	}
}

// reserveIssueSlots charges n operations against the core's shared issue
// bandwidth and returns the time the last of them issues.
func (c *Core) reserveIssueSlots(n int64) sim.Time {
	now := c.engine.Now()
	start := now
	if c.issueFree > start {
		start = c.issueFree
	}
	perOp := sim.Duration(int64(c.cfg.Clock.Period) / int64(c.cfg.IssueWidth))
	if perOp < 1 {
		perOp = 1
	}
	c.issueFree = start.Add(sim.Duration(n) * perOp)
	return c.issueFree
}

func (c *Core) execute(h *hwContext, op exec.Op) {
	switch op.Kind {
	case exec.OpCompute:
		c.instrs.Add(uint64(op.Instrs))
		// A single thread issues dependent instructions at one per cycle;
		// across threads the core sustains at most IssueWidth per cycle.
		slotEnd := c.reserveIssueSlots(op.Instrs)
		chainEnd := c.engine.Now().Add(c.cfg.Clock.Cycles(op.Instrs))
		end := chainEnd
		if slotEnd > end {
			end = slotEnd
		}
		c.engine.AtArg(end, c.completeFn, h)
	case exec.OpLoad, exec.OpStore, exec.OpRMW:
		c.instrs.Inc()
		c.memOps.Inc()
		h.op = op
		issueAt := c.reserveIssueSlots(1)
		c.engine.AtArg(issueAt, c.memIssueFn, h)
	case exec.OpSyscall:
		// MTTOP cores do not run the OS (Section 3.2.1); OS services are
		// obtained by signalling a CPU thread through shared memory instead.
		panic(fmt.Sprintf("%s: MTTOP thread attempted syscall %d", c.cfg.Name, op.Syscall))
	default:
		panic(fmt.Sprintf("%s: unknown op kind %v", c.cfg.Name, op.Kind))
	}
}

func (c *Core) completeOp(h *hwContext, r exec.Result) {
	h.thread.Complete(r)
	h.busy = false
	c.stepContext(h)
}

func (c *Core) memAccess(h *hwContext) {
	write := h.op.Kind != exec.OpLoad
	if c.mmu == nil {
		c.issueToPort(h, mem.PAddr(h.op.Addr))
		return
	}
	c.mmu.Translate(h.op.Addr, write, h.translateCb)
}

// translated continues a memory op once the MMU has resolved its address.
func (c *Core) translated(h *hwContext, pa mem.PAddr, fault *vm.Fault) {
	if fault != nil {
		// The MTTOP core cannot run the fault handler; the MIFD interrupts a
		// CPU core on our behalf and resumes us afterwards. Faults are rare,
		// so the resume closure is off the hot path.
		c.pageFaults.Inc()
		c.faults.RaiseMTTOPPageFault(fault, func() { c.memAccess(h) })
		return
	}
	c.issueToPort(h, pa)
}

// issueToPort performs the timed cache access and the functional data
// movement at completion time.
//
//ccsvm:hotpath
func (c *Core) issueToPort(h *hwContext, pa mem.PAddr) {
	var typ mem.AccessType
	switch h.op.Kind {
	case exec.OpLoad:
		typ = mem.Read
	case exec.OpStore:
		typ = mem.Write
	case exec.OpRMW:
		typ = mem.ReadModifyWrite
	}
	h.pa = pa
	c.port.Access(mem.Request{Type: typ, Addr: pa, Size: int(h.op.Size)}, h.accessCb)
}

// accessDone completes a memory op: the functional effect happens at the time
// the access is globally performed, exactly as the closure-based path did.
func (c *Core) accessDone(h *hwContext) {
	c.completeOp(h, exec.Result{Value: performFunctional(c.phys, h.op, h.pa)})
}
