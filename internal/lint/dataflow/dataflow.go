// Package dataflow implements a generic iterative dataflow solver over the
// control-flow graphs built by internal/lint/cfg. Analyses describe a
// lattice (bottom, join, equality) and a per-node transfer function; Solve
// runs a deterministic worklist to the fixed point and returns the state at
// every block boundary. Analyzers then re-apply the transfer function inside
// a block to recover per-node states when reporting.
package dataflow

import (
	"go/ast"

	"ccsvm/internal/lint/cfg"
)

// Direction selects whether states propagate along or against control flow.
type Direction int

const (
	// Forward propagates states from Entry toward Exit.
	Forward Direction = iota
	// Backward propagates states from Exit and Panic toward Entry.
	Backward
)

// Problem describes one dataflow analysis over lattice states of type S.
// S must be treated as immutable by Join and Transfer: they return new
// states and never mutate their arguments, since states are shared between
// blocks.
type Problem[S any] struct {
	// Dir is the propagation direction.
	Dir Direction
	// Boundary is the state at the graph boundary: Entry for forward
	// problems, Exit and Panic for backward ones.
	Boundary S
	// Bottom is the lattice bottom, the initial state of every other block
	// edge. Join(Bottom, x) must equal x.
	Bottom S
	// Join merges the states of converging paths.
	Join func(a, b S) S
	// Equal reports whether two states are equal; the solver iterates until
	// no block's result changes under Equal.
	Equal func(a, b S) bool
	// Transfer applies one CFG node's effect to a state. For backward
	// problems it is applied to the nodes of a block in reverse order.
	Transfer func(n ast.Node, s S) S
}

// Result holds the fixed-point states at every block boundary, indexed by
// cfg.Block.Index. In is the state before the block's first node and Out the
// state after its last, in execution order regardless of direction.
type Result[S any] struct {
	In  []S
	Out []S
}

// Solve runs the worklist algorithm to the fixed point. It visits blocks in
// a deterministic order (index-ordered seeding, FIFO re-queueing), so results
// are reproducible run to run.
func Solve[S any](g *cfg.CFG, p Problem[S]) *Result[S] {
	n := len(g.Blocks)
	res := &Result[S]{In: make([]S, n), Out: make([]S, n)}
	for i := 0; i < n; i++ {
		res.In[i] = p.Bottom
		res.Out[i] = p.Bottom
	}

	queue := make([]int, 0, n)
	queued := make([]bool, n)
	push := func(i int) {
		if !queued[i] {
			queued[i] = true
			queue = append(queue, i)
		}
	}
	for i := 0; i < n; i++ {
		push(i)
	}

	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		queued[i] = false
		blk := g.Blocks[i]

		if p.Dir == Forward {
			in := p.Bottom
			if blk == g.Entry {
				in = p.Join(in, p.Boundary)
			}
			for _, pred := range blk.Preds {
				in = p.Join(in, res.Out[pred.Index])
			}
			out := in
			for _, node := range blk.Nodes {
				out = p.Transfer(node, out)
			}
			changed := !p.Equal(in, res.In[i]) || !p.Equal(out, res.Out[i])
			res.In[i], res.Out[i] = in, out
			if changed {
				for _, s := range blk.Succs {
					push(s.Index)
				}
			}
		} else {
			out := p.Bottom
			if blk == g.Exit || blk == g.Panic {
				out = p.Join(out, p.Boundary)
			}
			for _, succ := range blk.Succs {
				out = p.Join(out, res.In[succ.Index])
			}
			in := out
			for k := len(blk.Nodes) - 1; k >= 0; k-- {
				in = p.Transfer(blk.Nodes[k], in)
			}
			changed := !p.Equal(in, res.In[i]) || !p.Equal(out, res.Out[i])
			res.In[i], res.Out[i] = in, out
			if changed {
				for _, pr := range blk.Preds {
					push(pr.Index)
				}
			}
		}
	}
	return res
}
