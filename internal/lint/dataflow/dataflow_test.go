package dataflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"

	"ccsvm/internal/lint/cfg"
)

func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return file.Decls[0].(*ast.FuncDecl).Body
}

// set is a string-set lattice joined by union.
type set map[string]bool

func join(a, b set) set {
	out := set{}
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func equal(a, b set) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func names(s set) string {
	var out []string
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return strings.Join(out, ",")
}

// assignedVars returns a forward may-assign problem: the state at a point is
// the set of variable names assigned on some path reaching it.
func assignedVars() Problem[set] {
	return Problem[set]{
		Dir:      Forward,
		Boundary: set{},
		Bottom:   set{},
		Join:     join,
		Equal:    equal,
		Transfer: func(n ast.Node, s set) set {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return s
			}
			out := join(s, nil)
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
					out[id.Name] = true
				}
			}
			return out
		},
	}
}

func solveAssigned(t *testing.T, body string) (*cfg.CFG, *Result[set]) {
	t.Helper()
	g := cfg.New(parseBody(t, body), cfg.Options{})
	return g, Solve(g, assignedVars())
}

func TestForwardStraightLine(t *testing.T) {
	g, res := solveAssigned(t, "x := 1\ny := x")
	if got := names(res.In[g.Exit.Index]); got != "x,y" {
		t.Fatalf("exit in = %q, want x,y", got)
	}
}

func TestForwardBranchJoin(t *testing.T) {
	// y is assigned on only one path; both x and y are may-assigned at exit.
	g, res := solveAssigned(t, "x := 1\nif x > 0 {\n\ty := 2\n\t_ = y\n}")
	if got := names(res.In[g.Exit.Index]); got != "x,y" {
		t.Fatalf("exit in = %q, want x,y", got)
	}
}

func TestForwardLoopFixpoint(t *testing.T) {
	// z is assigned only inside the loop; the fixed point must carry it
	// around the back edge and out to the exit.
	g, res := solveAssigned(t, "x := 1\nfor x < 10 {\n\tz := x\n\tx = z + 1\n}")
	if got := names(res.In[g.Exit.Index]); got != "x,z" {
		t.Fatalf("exit in = %q, want x,z", got)
	}
}

// liveIdents returns a backward may-use problem: the state at a point is the
// set of identifier names read on some path from it.
func liveIdents() Problem[set] {
	return Problem[set]{
		Dir:      Backward,
		Boundary: set{},
		Bottom:   set{},
		Join:     join,
		Equal:    equal,
		Transfer: func(n ast.Node, s set) set {
			out := join(s, nil)
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						delete(out, id.Name)
					}
				}
				for _, rhs := range n.Rhs {
					ast.Inspect(rhs, func(m ast.Node) bool {
						if id, ok := m.(*ast.Ident); ok {
							out[id.Name] = true
						}
						return true
					})
				}
			case *ast.ExprStmt:
				ast.Inspect(n, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						out[id.Name] = true
					}
					return true
				})
			}
			return out
		},
	}
}

func TestBackwardLiveness(t *testing.T) {
	g := cfg.New(parseBody(t, "x := 1\ny := 2\nprintln(y)"), cfg.Options{})
	res := Solve(g, liveIdents())
	// Before the first statement nothing is live (x and y are killed by
	// their defs); after the first def, y's use keeps it live going in.
	entryIn := res.In[g.Entry.Index]
	if entryIn["x"] || entryIn["y"] {
		t.Fatalf("entry in = %q, want no locals live", names(entryIn))
	}
}

func TestBackwardBranch(t *testing.T) {
	g := cfg.New(parseBody(t, "x := 1\ny := 2\nif x > 0 {\n\tprintln(y)\n}"), cfg.Options{})
	res := Solve(g, liveIdents())
	// y is live out of its own def block because one path uses it.
	out := res.Out[g.Entry.Index]
	if !out["y"] {
		t.Fatalf("y should be live out of entry, got %q", names(out))
	}
}

func TestDeterministicResults(t *testing.T) {
	const body = "x := 1\nfor x < 4 {\n\ty := x\n\tx = y + 1\n}\nz := x\n_ = z"
	g1, r1 := solveAssigned(t, body)
	for i := 0; i < 5; i++ {
		g2, r2 := solveAssigned(t, body)
		if len(g1.Blocks) != len(g2.Blocks) {
			t.Fatalf("block counts differ")
		}
		for b := range g1.Blocks {
			if names(r1.In[b]) != names(r2.In[b]) || names(r1.Out[b]) != names(r2.Out[b]) {
				t.Fatalf("nondeterministic result at block %d", b)
			}
		}
	}
}
