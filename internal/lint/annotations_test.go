package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// parseSrc typechecks one source file and parses its annotations.
func parseSrc(t *testing.T, src string) (*types.Package, *Annotations) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("x", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return pkg, ParseAnnotations(fset, []*ast.File{f}, info)
}

// errorsContaining returns the annotation errors whose message contains want.
func errorsContaining(ann *Annotations, want string) []AnnotationError {
	var out []AnnotationError
	for _, e := range ann.Errors {
		if strings.Contains(e.Msg, want) {
			out = append(out, e)
		}
	}
	return out
}

func TestParseAnnotationsHappyPath(t *testing.T) {
	pkg, ann := parseSrc(t, `
// Package x is deterministic.
//
//ccsvm:deterministic
package x

type P struct{}

// Get hands out a pooled object.
//
//ccsvm:pooled get
func (p *P) Get() *P { return p }

// Raise is engine-context only.
//
//ccsvm:enginectx
func Raise() {}

// Src is an allocator.
type Src interface {
	// Acquire hands out a pooled object.
	//
	//ccsvm:pooled put
	Acquire(p *P)
}

// Sum is order-invariant.
func Sum(m map[int]int) int {
	n := 0
	//ccsvm:orderinvariant
	for _, v := range m {
		n += v
	}
	return n
}
`)
	if len(ann.Errors) != 0 {
		t.Fatalf("unexpected errors: %v", ann.Errors)
	}
	if !ann.PkgHas(DirDeterministic) {
		t.Errorf("package deterministic directive not recorded")
	}
	raise := pkg.Scope().Lookup("Raise")
	if !ann.Has(raise, DirEngineCtx) {
		t.Errorf("Raise missing enginectx directive")
	}
	get, _, _ := types.LookupFieldOrMethod(pkg.Scope().Lookup("P").Type(), true, pkg, "Get")
	if ann.PooledArg(get) != "get" {
		t.Errorf("P.Get pooled arg = %q, want get", ann.PooledArg(get))
	}
	acquire, _, _ := types.LookupFieldOrMethod(pkg.Scope().Lookup("Src").Type(), true, pkg, "Acquire")
	if ann.PooledArg(acquire) != "put" {
		t.Errorf("Src.Acquire pooled arg = %q, want put", ann.PooledArg(acquire))
	}
}

func TestParseAnnotationsTrailingComment(t *testing.T) {
	pkg, ann := parseSrc(t, `
package x

// Get hands out a pooled object.
//
//ccsvm:pooled get // the caller owns the result
func Get() int { return 0 }
`)
	if len(ann.Errors) != 0 {
		t.Fatalf("unexpected errors: %v", ann.Errors)
	}
	if ann.PooledArg(pkg.Scope().Lookup("Get")) != "get" {
		t.Errorf("trailing comment broke the directive")
	}
}

func TestParseAnnotationsUnknownDirective(t *testing.T) {
	_, ann := parseSrc(t, `
package x

//ccsvm:frobnicate
func F() {}
`)
	if got := errorsContaining(ann, "unknown directive ccsvm:frobnicate"); len(got) != 1 {
		t.Errorf("unknown directive: got errors %v", ann.Errors)
	}
}

func TestParseAnnotationsOnNonFunction(t *testing.T) {
	_, ann := parseSrc(t, `
package x

//ccsvm:enginectx
type T int

//ccsvm:hotpath
var V int

// S is a struct.
type S struct {
	//ccsvm:pooled get
	F func() int
}
`)
	if got := errorsContaining(ann, "not allowed"); len(got) != 3 {
		t.Errorf("misplaced directives: want 3 errors, got %v", ann.Errors)
	}
}

func TestParseAnnotationsArgErrors(t *testing.T) {
	_, ann := parseSrc(t, `
package x

//ccsvm:pooled
func A() {}

//ccsvm:pooled recycle
func B() {}

//ccsvm:hotpath always
func C() {}
`)
	if got := errorsContaining(ann, "exactly one argument"); len(got) != 2 {
		t.Errorf("pooled arg errors: want 2, got %v", ann.Errors)
	}
	if got := errorsContaining(ann, "takes no argument"); len(got) != 1 {
		t.Errorf("extra arg errors: want 1, got %v", ann.Errors)
	}
}

func TestParseAnnotationsSpacedDirective(t *testing.T) {
	_, ann := parseSrc(t, `
package x

// ccsvm:hotpath
func F() {}
`)
	if got := errorsContaining(ann, "space between"); len(got) != 1 {
		t.Errorf("spaced directive: got errors %v", ann.Errors)
	}
}

func TestParseAnnotationsMisplacedPackageDirective(t *testing.T) {
	_, ann := parseSrc(t, `
package x

//ccsvm:deterministic
func F() {}
`)
	if got := errorsContaining(ann, "not allowed on a function"); len(got) != 1 {
		t.Errorf("misplaced package directive: got errors %v", ann.Errors)
	}
	if ann.PkgHas(DirDeterministic) {
		t.Errorf("misplaced deterministic directive must not mark the package")
	}
}

func TestParseAnnotationsFloatingEngineCtx(t *testing.T) {
	_, ann := parseSrc(t, `
package x

func F() {
	//ccsvm:enginectx
	_ = 1
}
`)
	if got := errorsContaining(ann, "floating comment"); len(got) != 1 {
		t.Errorf("floating enginectx: got errors %v", ann.Errors)
	}
}
