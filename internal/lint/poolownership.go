package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"ccsvm/internal/lint/analysis"
	"ccsvm/internal/lint/cfg"
	"ccsvm/internal/lint/dataflow"
)

// PoolOwnership enforces the explicit receiver-release ownership contract of
// the pooled hot-path objects (coherence.Msg, sim.Event, noc.Message): a
// value obtained from a //ccsvm:pooled get source must, on every control-flow
// path through the function that obtained it, either be released through a
// //ccsvm:pooled put function or transferred away (passed to a call,
// returned, stored, sent, or captured) — and must never be released twice,
// including on converging paths. The analysis is flow-sensitive: each
// function body is lowered to a control-flow graph (internal/lint/cfg) and a
// forward dataflow problem (internal/lint/dataflow) tracks the ownership
// lattice {pending, released, transferred} across branches, loops, and
// defers. A deferred release is modeled at its registration point, which is
// sound for both checks: a registered release runs exactly once per
// registration, on every exit. Leaked and double-released messages are
// exactly the bug class the runtime pool accounting (coherence.SumPoolStats,
// Engine.LiveEvents) catches only after a stress soak; this analyzer catches
// them at compile time.
var PoolOwnership = &analysis.Analyzer{
	Name: "poolownership",
	Doc: "require pooled objects from //ccsvm:pooled get sources to be released or\n" +
		"transferred on every path, and flag double releases on any path",
	Run: runPoolOwnership,
}

// pooledFact marks a function as a pool endpoint for importing packages.
type pooledFact struct {
	// Arg is "get" or "put".
	Arg string
}

// AFact implements analysis.Fact.
func (*pooledFact) AFact() {}

func runPoolOwnership(pass *analysis.Pass) (any, error) {
	ann := ParseAnnotations(pass.Fset, pass.Files, pass.TypesInfo)
	for obj, dirs := range ann.ByObj {
		for _, d := range dirs {
			if d.Kind == DirPooled && obj != nil {
				pass.ExportObjectFact(obj, &pooledFact{Arg: d.Arg})
			}
		}
	}
	po := &poolChecker{pass: pass, ann: ann}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				po.checkFunc(fn.Body)
			}
		}
		// Function literals are independent functions: a pooled object
		// obtained inside a closure must be handled inside that closure, and
		// the enclosing function sees the capture as a transfer.
		ast.Inspect(file, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				po.checkFunc(lit.Body)
			}
			return true
		})
	}
	return nil, nil
}

type poolChecker struct {
	pass *analysis.Pass
	ann  *Annotations
}

// Ownership lattice bits. The per-path state of one tracked object is a set
// of these; the join over converging paths is the union.
const (
	// ownPending: the object is owned here and not yet released or
	// transferred on this path.
	ownPending uint8 = 1 << iota
	// ownReleased: the object was released (//ccsvm:pooled put) on this path.
	ownReleased
	// ownTransferred: ownership moved away (call arg, return, store, send,
	// capture) on this path.
	ownTransferred
)

// ownState is the dataflow lattice state for one tracked object: the union
// of per-path ownership bits plus the positions of the releases that may
// have happened on some path (for double-release messages). States are
// immutable; transfer and join return new values.
type ownState struct {
	bits uint8
	rel  []token.Pos // sorted ascending, deduplicated
}

func joinOwn(a, b ownState) ownState {
	out := ownState{bits: a.bits | b.bits}
	out.rel = mergePos(a.rel, b.rel)
	return out
}

func equalOwn(a, b ownState) bool {
	if a.bits != b.bits || len(a.rel) != len(b.rel) {
		return false
	}
	for i := range a.rel {
		if a.rel[i] != b.rel[i] {
			return false
		}
	}
	return true
}

// mergePos unions two sorted position slices.
func mergePos(a, b []token.Pos) []token.Pos {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]token.Pos, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	dedup := out[:1]
	for _, p := range out[1:] {
		if p != dedup[len(dedup)-1] {
			dedup = append(dedup, p)
		}
	}
	return dedup
}

// tracked is one object under ownership analysis in a function body.
type tracked struct {
	obj types.Object
	// binds are the assignments binding obj to a pooled get result, in
	// source order. Empty for objects tracked only for double release (for
	// example parameters that the body releases).
	binds []*ast.AssignStmt
}

// checkFunc analyzes one function (or function literal) body: it collects
// the pooled objects the body gets or releases, builds the body's CFG, and
// solves a forward ownership problem per object. Nested function literals
// are skipped throughout (they are separate functions).
func (po *poolChecker) checkFunc(body *ast.BlockStmt) {
	objs := po.collectTracked(body)
	if len(objs) == 0 {
		return
	}
	g := cfg.New(body, cfg.Options{
		IsPanic: func(c *ast.CallExpr) bool { return isPanicCall(po.pass, c) },
	})
	for _, tr := range objs {
		po.checkObject(g, tr)
	}
}

// collectTracked scans a body (not descending into function literals) for
// pooled-get bindings and pooled-put releases, reporting dropped get results
// along the way. It returns the objects to analyze, in source order.
func (po *poolChecker) collectTracked(body *ast.BlockStmt) []*tracked {
	byObj := make(map[types.Object]*tracked)
	var order []types.Object
	track := func(obj types.Object) *tracked {
		tr := byObj[obj]
		if tr == nil {
			tr = &tracked{obj: obj}
			byObj[obj] = tr
			order = append(order, obj)
		}
		return tr
	}
	walkNoFuncLit(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && po.pooledArgOf(call) == "get" {
				po.pass.Reportf(call.Pos(), "result of pooled get %s is dropped; the object leaks",
					exprString(call.Fun))
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return // pools hand out single values; multi-assign is out of scope
			}
			call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
			if !ok || po.pooledArgOf(call) != "get" {
				return
			}
			id, ok := n.Lhs[0].(*ast.Ident)
			if !ok {
				return // stored straight into a field or element: a transfer
			}
			if id.Name == "_" {
				po.pass.Reportf(call.Pos(), "result of pooled get %s is dropped; the object leaks",
					exprString(call.Fun))
				return
			}
			if obj := po.defOrUse(id); obj != nil {
				tr := track(obj)
				tr.binds = append(tr.binds, n)
			}
		case *ast.CallExpr:
			if po.pooledArgOf(n) == "put" {
				if obj := po.releasedObj(n); obj != nil {
					track(obj) // double-release tracking even without a get
				}
			}
		}
	})
	out := make([]*tracked, 0, len(order))
	for _, obj := range order {
		out = append(out, byObj[obj])
	}
	return out
}

// checkObject solves the forward ownership problem for one object over the
// function's CFG and reports double releases (at the offending release) and
// leaks (at the get binding).
func (po *poolChecker) checkObject(g *cfg.CFG, tr *tracked) {
	bindSet := make(map[ast.Node]bool, len(tr.binds))
	for _, b := range tr.binds {
		bindSet[b] = true
	}
	transfer := func(n ast.Node, s ownState) ownState {
		if bindSet[n] {
			// A fresh pooled value: prior state is overwritten.
			return ownState{bits: ownPending}
		}
		if po.assignsTo(n, tr.obj) {
			// Reassigned to something else: the variable no longer names the
			// tracked value.
			return ownState{}
		}
		if put := po.putCallIn(n, tr.obj); put != nil {
			return ownState{
				bits: (s.bits &^ ownPending) | ownReleased,
				rel:  mergePos(s.rel, []token.Pos{put.Pos()}),
			}
		}
		if po.consumes(n, tr.obj) {
			return ownState{bits: (s.bits &^ ownPending) | ownTransferred, rel: s.rel}
		}
		return s
	}
	res := dataflow.Solve(g, dataflow.Problem[ownState]{
		Dir:      dataflow.Forward,
		Boundary: ownState{},
		Bottom:   ownState{},
		Join:     joinOwn,
		Equal:    equalOwn,
		Transfer: transfer,
	})

	// Double releases: re-walk each block applying the transfer function,
	// checking the in-state at every release site.
	for _, blk := range g.Blocks {
		s := res.In[blk.Index]
		for _, n := range blk.Nodes {
			if put := po.putCallIn(n, tr.obj); put != nil && s.bits&ownReleased != 0 && len(s.rel) > 0 {
				po.pass.Reportf(put.Pos(), "double release of %s (already released at %s)",
					tr.obj.Name(), po.pass.Fset.Position(s.rel[0]))
			}
			s = transfer(n, s)
		}
	}

	// Leaks: a get-bound object still pending at the normal exit was not
	// consumed on some path. (Leaking on a panic path is acceptable.)
	if len(tr.binds) == 0 {
		return
	}
	exit := res.In[g.Exit.Index]
	if exit.bits&ownPending == 0 {
		return
	}
	pos := tr.binds[0].Pos()
	if exit.bits == ownPending {
		po.pass.Reportf(pos, "pooled object %s is never released or transferred "+
			"after this get; it leaks", tr.obj.Name())
	} else {
		po.pass.Reportf(pos, "pooled object %s may leak: it is not released or "+
			"transferred on every path to function exit", tr.obj.Name())
	}
}

// assignsTo reports whether the node reassigns obj to something other than a
// tracked get binding (which the caller checks first).
func (po *poolChecker) assignsTo(n ast.Node, obj types.Object) bool {
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && po.defOrUse(id) == obj {
			return true
		}
	}
	return false
}

// putCallIn returns the pooled put call inside the node that releases obj,
// or nil. Function literal bodies are skipped (the closure runs later), and
// `go` statements are skipped (the release is asynchronous: that is a
// transfer, handled by the consuming-context walk).
func (po *poolChecker) putCallIn(n ast.Node, obj types.Object) *ast.CallExpr {
	var found *ast.CallExpr
	var visit func(n ast.Node)
	visit = func(n ast.Node) {
		if n == nil || found != nil {
			return
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return
		case *ast.CallExpr:
			if po.pooledArgOf(n) == "put" && po.releasedObj(n) == obj {
				found = n
				return
			}
		}
		for _, c := range childrenOf(n) {
			visit(c)
		}
	}
	visit(n)
	return found
}

// walkNoFuncLit walks every node under root in source order, without
// descending into function literals.
func walkNoFuncLit(root ast.Node, f func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			f(n)
		}
		return true
	})
}

// pooledArgOf resolves a call's static callee and returns its pooled
// directive argument ("get", "put", or "" for unannotated callees).
func (po *poolChecker) pooledArgOf(call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	obj, ok := po.pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return ""
	}
	if arg := po.ann.PooledArg(obj); arg != "" {
		return arg
	}
	var fact pooledFact
	if po.pass.ImportObjectFact(obj, &fact) {
		return fact.Arg
	}
	return ""
}

// releasedObj returns the object being released by a put call: the single
// identifier argument, or the receiver of a put method called on the object
// itself.
func (po *poolChecker) releasedObj(call *ast.CallExpr) types.Object {
	if len(call.Args) == 1 {
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			return po.pass.TypesInfo.Uses[id]
		}
	}
	if len(call.Args) == 0 {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				return po.pass.TypesInfo.Uses[id]
			}
		}
	}
	return nil
}

func (po *poolChecker) defOrUse(id *ast.Ident) types.Object {
	if obj := po.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return po.pass.TypesInfo.Uses[id]
}

func isPanicCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// consumes reports whether the node (without descending into function
// literal bodies beyond the capture itself) contains a consuming use of obj.
func (po *poolChecker) consumes(n ast.Node, obj types.Object) bool {
	found := false
	var visit func(n ast.Node, parents []ast.Node)
	visit = func(n ast.Node, parents []ast.Node) {
		if n == nil || found {
			return
		}
		if id, ok := n.(*ast.Ident); ok {
			if po.pass.TypesInfo.Uses[id] == obj && po.isConsumingContext(parents, id) {
				found = true
			}
			return
		}
		parents = append(parents, n)
		for _, c := range childrenOf(n) {
			visit(c, parents)
		}
	}
	visit(n, nil)
	return found
}

// isConsumingContext classifies one use of the tracked object by its
// enclosing syntax: transfers of ownership (call arguments, returns, stores,
// channel sends, address-taking, closure capture) count; pure reads
// (conditions, field reads on the left of a field write) do not.
func (po *poolChecker) isConsumingContext(parents []ast.Node, id *ast.Ident) bool {
	var child ast.Node = id
	for i := len(parents) - 1; i >= 0; i-- {
		switch p := parents[i].(type) {
		case *ast.CallExpr:
			for _, arg := range p.Args {
				if containsNode(arg, child) {
					return true
				}
			}
			// Receiver of a put method (msg.Release() style).
			if sel, ok := ast.Unparen(p.Fun).(*ast.SelectorExpr); ok &&
				containsNode(sel.X, child) && po.pooledArgOf(p) == "put" {
				return true
			}
			return false
		case *ast.ReturnStmt:
			return true
		case *ast.CompositeLit:
			return true
		case *ast.SendStmt:
			return true
		case *ast.GoStmt, *ast.DeferStmt:
			return true
		case *ast.FuncLit:
			return true // captured; the closure owns it now
		case *ast.UnaryExpr:
			if p.Op.String() == "&" {
				return true
			}
		case *ast.AssignStmt:
			for _, rhs := range p.Rhs {
				if containsNode(rhs, child) {
					return true // aliased into another variable or location
				}
			}
			return false
		case *ast.KeyValueExpr, *ast.IndexExpr, *ast.SelectorExpr, *ast.ParenExpr,
			*ast.StarExpr, *ast.BinaryExpr, *ast.TypeAssertExpr, *ast.SliceExpr:
			// Keep walking up through expression wrappers.
		default:
			return false
		}
		child = parents[i]
	}
	return false
}

// containsNode reports whether root's subtree contains target (by identity).
func containsNode(root, target ast.Node) bool {
	if root == nil {
		return false
	}
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// childrenOf returns the direct child nodes of n, used by the context-aware
// walkers to maintain accurate parent stacks.
func childrenOf(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}
