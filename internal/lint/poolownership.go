package lint

import (
	"go/ast"
	"go/types"

	"ccsvm/internal/lint/analysis"
)

// PoolOwnership enforces the explicit receiver-release ownership contract of
// the pooled hot-path objects (coherence.Msg, sim.Event, noc.Message): a
// value obtained from a //ccsvm:pooled get source must, on every path through
// the function that obtained it, either be released through a //ccsvm:pooled
// put function or transferred away (passed to a call, returned, stored, or
// captured) — and must never be released twice in straight-line code. Leaked
// and double-released messages are exactly the bug class the runtime pool
// accounting (coherence.SumPoolStats, Engine.LiveEvents) catches only after a
// stress soak; this analyzer catches the obvious cases at compile time.
var PoolOwnership = &analysis.Analyzer{
	Name: "poolownership",
	Doc: "require pooled objects from //ccsvm:pooled get sources to be released or\n" +
		"transferred on every path, and flag syntactic double releases",
	Run: runPoolOwnership,
}

// pooledFact marks a function as a pool endpoint for importing packages.
type pooledFact struct {
	// Arg is "get" or "put".
	Arg string
}

// AFact implements analysis.Fact.
func (*pooledFact) AFact() {}

func runPoolOwnership(pass *analysis.Pass) (any, error) {
	ann := ParseAnnotations(pass.Fset, pass.Files, pass.TypesInfo)
	for obj, dirs := range ann.ByObj {
		for _, d := range dirs {
			if d.Kind == DirPooled && obj != nil {
				pass.ExportObjectFact(obj, &pooledFact{Arg: d.Arg})
			}
		}
	}
	po := &poolChecker{pass: pass, ann: ann}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				po.checkBody(fn.Body)
			}
		}
	}
	return nil, nil
}

type poolChecker struct {
	pass *analysis.Pass
	ann  *Annotations
}

// pooledArgOf resolves a call's static callee and returns its pooled
// directive argument ("get", "put", or "" for unannotated callees).
func (po *poolChecker) pooledArgOf(call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	obj, ok := po.pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return ""
	}
	if arg := po.ann.PooledArg(obj); arg != "" {
		return arg
	}
	var fact pooledFact
	if po.pass.ImportObjectFact(obj, &fact) {
		return fact.Arg
	}
	return ""
}

// checkBody analyzes one function (or function literal) body. Nested literals
// are checked independently: a pooled object obtained inside a closure must be
// handled inside that closure.
func (po *poolChecker) checkBody(body *ast.BlockStmt) {
	po.checkList(body.List)
	// Recurse into nested function literals as independent bodies.
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			po.checkBody(lit.Body)
			return false
		}
		return true
	})
}

// checkList scans one statement list: it finds get-call bindings and runs the
// every-path consumption analysis from the binding point, flags dropped get
// results, tracks straight-line double releases, and recurses into nested
// statement lists.
func (po *poolChecker) checkList(stmts []ast.Stmt) {
	released := make(map[types.Object]ast.Node) // straight-line release state
	for i, s := range stmts {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				switch po.pooledArgOf(call) {
				case "get":
					po.pass.Reportf(call.Pos(), "result of pooled get %s is dropped; the object leaks",
						exprString(call.Fun))
				case "put":
					if obj := po.releasedObj(call); obj != nil {
						if prev, ok := released[obj]; ok {
							po.pass.Reportf(call.Pos(),
								"double release of %s (already released at %s)",
								obj.Name(), po.pass.Fset.Position(prev.Pos()))
						} else {
							released[obj] = call
						}
						continue
					}
				}
			}
		case *ast.AssignStmt:
			// A fresh binding or reassignment resets the release state and, for
			// get calls, starts the ownership analysis.
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := po.defOrUse(id); obj != nil {
						delete(released, obj)
					}
				}
			}
			if len(s.Rhs) == 1 {
				if call, ok := s.Rhs[0].(*ast.CallExpr); ok && po.pooledArgOf(call) == "get" {
					po.checkBinding(s, call, stmts[i+1:])
				}
			}
		}
		// Any other mention of a released object is ignored for double-release
		// purposes (the dynamic pool accounting still covers those paths).
		po.checkNested(s)
	}
}

// checkNested recurses into the statement lists contained in one statement,
// without crossing into function literals (handled by checkBody).
func (po *poolChecker) checkNested(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		po.checkList(s.List)
	case *ast.IfStmt:
		po.checkList(s.Body.List)
		if s.Else != nil {
			po.checkNested(s.Else)
		}
	case *ast.ForStmt:
		po.checkList(s.Body.List)
	case *ast.RangeStmt:
		po.checkList(s.Body.List)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				po.checkList(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				po.checkList(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				po.checkList(cc.Body)
			}
		}
	case *ast.LabeledStmt:
		po.checkNested(s.Stmt)
	}
}

// releasedObj returns the object being released by a put call: the single
// identifier argument, or the receiver of a put method called on the object
// itself.
func (po *poolChecker) releasedObj(call *ast.CallExpr) types.Object {
	if len(call.Args) == 1 {
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			return po.pass.TypesInfo.Uses[id]
		}
	}
	if len(call.Args) == 0 {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				return po.pass.TypesInfo.Uses[id]
			}
		}
	}
	return nil
}

func (po *poolChecker) defOrUse(id *ast.Ident) types.Object {
	if obj := po.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return po.pass.TypesInfo.Uses[id]
}

// checkBinding analyzes one `x := pool.Get(...)` binding: x must be consumed
// (released or transferred) on every path from here to function exit.
func (po *poolChecker) checkBinding(assign *ast.AssignStmt, call *ast.CallExpr, rest []ast.Stmt) {
	if len(assign.Lhs) != 1 {
		return // pools hand out single values; multi-assign is out of scope
	}
	id, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	if id.Name == "_" {
		po.pass.Reportf(call.Pos(), "result of pooled get %s is dropped; the object leaks",
			exprString(call.Fun))
		return
	}
	obj := po.defOrUse(id)
	if obj == nil {
		return
	}
	if !po.mentioned(rest, obj) {
		po.pass.Reportf(assign.Pos(), "pooled object %s is never released or transferred "+
			"after this get; it leaks", obj.Name())
		return
	}
	if !po.allPathsConsume(rest, obj, false) {
		po.pass.Reportf(assign.Pos(), "pooled object %s may leak: it is not released or "+
			"transferred on every path to function exit", obj.Name())
	}
}

// mentioned reports whether obj appears anywhere in the statements.
func (po *poolChecker) mentioned(stmts []ast.Stmt, obj types.Object) bool {
	for _, s := range stmts {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && po.pass.TypesInfo.Uses[id] == obj {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// allPathsConsume reports whether every path from the start of stmts to
// function exit consumes obj. after is the verdict for falling off the end of
// the list (the continuation's verdict).
func (po *poolChecker) allPathsConsume(stmts []ast.Stmt, obj types.Object, after bool) bool {
	if len(stmts) == 0 {
		return after
	}
	s, rest := stmts[0], stmts[1:]
	restOK := func() bool { return po.allPathsConsume(rest, obj, after) }
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return po.consumes(s, obj)
	case *ast.IfStmt:
		if s.Init != nil && po.consumes(s.Init, obj) {
			return true
		}
		if po.consumesExpr(s.Cond, obj) {
			return true
		}
		r := restOK()
		thenOK := po.allPathsConsume(s.Body.List, obj, r)
		elseOK := r
		if s.Else != nil {
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				elseOK = po.allPathsConsume(e.List, obj, r)
			case *ast.IfStmt:
				elseOK = po.allPathsConsume([]ast.Stmt{e}, obj, r)
			}
		}
		return thenOK && elseOK
	case *ast.BlockStmt:
		return po.allPathsConsume(s.List, obj, restOK())
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var clauses [][]ast.Stmt
		hasDefault := false
		body := switchBody(s)
		for _, c := range body {
			switch cc := c.(type) {
			case *ast.CaseClause:
				clauses = append(clauses, cc.Body)
				if cc.List == nil {
					hasDefault = true
				}
			case *ast.CommClause:
				clauses = append(clauses, cc.Body)
				if cc.Comm == nil {
					hasDefault = true
				}
			}
		}
		r := restOK()
		all := true
		for _, body := range clauses {
			if !po.allPathsConsume(body, obj, r) {
				all = false
			}
		}
		if _, isSelect := s.(*ast.SelectStmt); isSelect {
			hasDefault = true // a select blocks until some clause runs
		}
		if !hasDefault {
			return all && r
		}
		return all
	case *ast.ForStmt, *ast.RangeStmt:
		// Loops may run zero times, so a guarantee cannot come from the body
		// alone; but in practice a loop that mentions the object consumingly is
		// a retry/flush loop that runs at least once. Treat it as consuming to
		// keep false positives out of real code.
		if po.consumes(s, obj) {
			return true
		}
		return restOK()
	case *ast.LabeledStmt:
		return po.allPathsConsume(append([]ast.Stmt{s.Stmt}, rest...), obj, after)
	case *ast.ExprStmt:
		if isPanicCall(po.pass, s.X) {
			return true // panic exits; leaking on a crash path is acceptable
		}
		if po.consumes(s, obj) {
			return true
		}
		return restOK()
	case *ast.BranchStmt:
		// break/continue/goto leave this list; be conservative and require the
		// surrounding continuation to consume.
		return after
	default:
		if po.consumes(s, obj) {
			return true
		}
		return restOK()
	}
}

func switchBody(s ast.Stmt) []ast.Stmt {
	switch s := s.(type) {
	case *ast.SwitchStmt:
		return s.Body.List
	case *ast.TypeSwitchStmt:
		return s.Body.List
	case *ast.SelectStmt:
		return s.Body.List
	}
	return nil
}

func isPanicCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// consumes reports whether the statement (without descending into nested
// statement bodies, which the path analysis handles structurally) contains a
// consuming use of obj.
func (po *poolChecker) consumes(n ast.Node, obj types.Object) bool {
	found := false
	var visit func(n ast.Node, parents []ast.Node)
	visit = func(n ast.Node, parents []ast.Node) {
		if n == nil || found {
			return
		}
		if id, ok := n.(*ast.Ident); ok {
			if po.pass.TypesInfo.Uses[id] == obj && po.isConsumingContext(parents, id) {
				found = true
			}
			return
		}
		parents = append(parents, n)
		for _, c := range childrenOf(n) {
			visit(c, parents)
		}
	}
	visit(n, nil)
	return found
}

func (po *poolChecker) consumesExpr(e ast.Expr, obj types.Object) bool {
	if e == nil {
		return false
	}
	return po.consumes(e, obj)
}

// isConsumingContext classifies one use of the tracked object by its
// enclosing syntax: transfers of ownership (call arguments, returns, stores,
// channel sends, address-taking, closure capture) count; pure reads
// (conditions, field reads on the left of a field write) do not.
func (po *poolChecker) isConsumingContext(parents []ast.Node, id *ast.Ident) bool {
	var child ast.Node = id
	for i := len(parents) - 1; i >= 0; i-- {
		switch p := parents[i].(type) {
		case *ast.CallExpr:
			for _, arg := range p.Args {
				if containsNode(arg, child) {
					return true
				}
			}
			// Receiver of a put method (msg.Release() style).
			if sel, ok := ast.Unparen(p.Fun).(*ast.SelectorExpr); ok &&
				containsNode(sel.X, child) && po.pooledArgOf(p) == "put" {
				return true
			}
			return false
		case *ast.ReturnStmt:
			return true
		case *ast.CompositeLit:
			return true
		case *ast.SendStmt:
			return true
		case *ast.GoStmt, *ast.DeferStmt:
			return true
		case *ast.FuncLit:
			return true // captured; the closure owns it now
		case *ast.UnaryExpr:
			if p.Op.String() == "&" {
				return true
			}
		case *ast.AssignStmt:
			for _, rhs := range p.Rhs {
				if containsNode(rhs, child) {
					return true // aliased into another variable or location
				}
			}
			return false
		case *ast.KeyValueExpr, *ast.IndexExpr, *ast.SelectorExpr, *ast.ParenExpr,
			*ast.StarExpr, *ast.BinaryExpr, *ast.TypeAssertExpr, *ast.SliceExpr:
			// Keep walking up through expression wrappers.
		default:
			return false
		}
		child = parents[i]
	}
	return false
}

// containsNode reports whether root's subtree contains target (by identity).
func containsNode(root, target ast.Node) bool {
	if root == nil {
		return false
	}
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// childrenOf returns the direct child nodes of n, used by the context-aware
// walker to maintain an accurate parent stack.
func childrenOf(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}
