package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"ccsvm/internal/lint/analysis"
)

// EngineCtx enforces the engine-context contract: functions annotated
// //ccsvm:enginectx (cpu.Core.RaiseInterrupt, the engine's scheduling API)
// may only run in engine context — an event callback or machine-build code —
// because they re-enter the core's step loop or mutate the event queue, and
// doing either from a workload goroutine deadlocks against the engine's own
// blocked Thread.Next (the PR 4 interrupt-interleaving bug, promoted from a
// postmortem note to a compile-time check). The analyzer builds a static call
// graph and reports any chain from a workload-goroutine entry point — a
// function value passed to a //ccsvm:threadentry API such as exec.NewThread —
// to an enginectx function.
var EngineCtx = &analysis.Analyzer{
	Name: "enginectx",
	Doc: "forbid calls to //ccsvm:enginectx functions from workload-goroutine bodies\n" +
		"(function values passed to //ccsvm:threadentry APIs)",
	Run: runEngineCtx,
}

// engineCtxFact marks an enginectx-annotated function for importers.
type engineCtxFact struct{}

// AFact implements analysis.Fact.
func (*engineCtxFact) AFact() {}

// threadEntryFact marks a threadentry-annotated API for importers.
type threadEntryFact struct{}

// AFact implements analysis.Fact.
func (*threadEntryFact) AFact() {}

// calleeEdge is one static call: the resolved callee and the call position.
type calleeEdge struct {
	Callee *types.Func
	Pos    token.Pos
}

// calleesFact records a declared function's outgoing static calls, so the
// reachability walk can cross package boundaries through the fact store.
type calleesFact struct {
	// Edges are the function's resolved outgoing calls.
	Edges []calleeEdge
}

// AFact implements analysis.Fact.
func (*calleesFact) AFact() {}

func runEngineCtx(pass *analysis.Pass) (any, error) {
	ann := ParseAnnotations(pass.Fset, pass.Files, pass.TypesInfo)
	ec := &engineCtxChecker{pass: pass, ann: ann, local: make(map[*types.Func][]calleeEdge)}

	// Export annotation facts so importing packages see them.
	for obj, dirs := range ann.ByObj {
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		for _, d := range dirs {
			switch d.Kind {
			case DirEngineCtx:
				pass.ExportObjectFact(fn, &engineCtxFact{})
			case DirThreadEntry:
				pass.ExportObjectFact(fn, &threadEntryFact{})
			}
		}
	}

	// Build this package's call graph. Function literals fold into their
	// enclosing declared function: if the function can run, the literal may
	// run in the same context.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			ec.local[fn] = ec.collectEdges(fd.Body)
		}
	}
	for fn, edges := range ec.local {
		pass.ExportObjectFact(fn, &calleesFact{Edges: edges})
	}

	// Find workload entry roots in this package and walk from each.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := ec.staticCallee(call)
			if callee == nil || !ec.isThreadEntry(callee) {
				return true
			}
			for _, arg := range call.Args {
				ec.checkEntryArg(arg)
			}
			return true
		})
	}
	return nil, nil
}

type engineCtxChecker struct {
	pass  *analysis.Pass
	ann   *Annotations
	local map[*types.Func][]calleeEdge
}

// staticCallee resolves a call to its statically-known *types.Func, or nil
// for dynamic calls (function values, builtins, conversions).
func (ec *engineCtxChecker) staticCallee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := ec.pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

func (ec *engineCtxChecker) isThreadEntry(fn *types.Func) bool {
	if ec.ann.Has(fn, DirThreadEntry) {
		return true
	}
	var fact threadEntryFact
	return ec.pass.ImportObjectFact(fn, &fact)
}

func (ec *engineCtxChecker) isEngineCtx(fn *types.Func) bool {
	if ec.ann.Has(fn, DirEngineCtx) {
		return true
	}
	var fact engineCtxFact
	return ec.pass.ImportObjectFact(fn, &fact)
}

// collectEdges gathers the resolved static calls of one body, descending into
// nested function literals.
func (ec *engineCtxChecker) collectEdges(body ast.Node) []calleeEdge {
	var edges []calleeEdge
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := ec.staticCallee(call); fn != nil {
				edges = append(edges, calleeEdge{Callee: fn, Pos: call.Pos()})
			}
		}
		return true
	})
	return edges
}

// edgesOf returns a function's outgoing calls: from this package's graph, or
// from the facts of an already-analyzed dependency.
func (ec *engineCtxChecker) edgesOf(fn *types.Func) []calleeEdge {
	if edges, ok := ec.local[fn]; ok {
		return edges
	}
	var fact calleesFact
	if ec.pass.ImportObjectFact(fn, &fact) {
		return fact.Edges
	}
	return nil
}

// checkEntryArg treats every function value inside one argument of a
// threadentry call as a workload-goroutine body and walks the call graph from
// it: function literals (including ones nested in composite literals) and
// references to declared functions.
func (ec *engineCtxChecker) checkEntryArg(arg ast.Expr) {
	ast.Inspect(arg, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			ec.walkFrom(n.Pos(), "workload thread body", ec.collectEdges(n.Body))
			return false
		case *ast.Ident:
			if fn, ok := ec.pass.TypesInfo.Uses[n].(*types.Func); ok {
				ec.walkFrom(n.Pos(), fn.Name(), ec.edgesOf(fn))
			}
		}
		return true
	})
}

// walkFrom runs a breadth-first reachability walk from a workload entry's
// edges, reporting the first chain to each distinct enginectx function.
func (ec *engineCtxChecker) walkFrom(root token.Pos, rootName string, edges []calleeEdge) {
	type item struct {
		fn    *types.Func
		chain []string
	}
	visited := make(map[*types.Func]bool)
	queue := make([]item, 0, len(edges))
	for _, e := range edges {
		queue = append(queue, item{e.Callee, []string{funcName(e.Callee)}})
	}
	reported := make(map[*types.Func]bool)
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if visited[it.fn] {
			continue
		}
		visited[it.fn] = true
		if ec.isEngineCtx(it.fn) && !reported[it.fn] {
			reported[it.fn] = true
			ec.pass.Reportf(root,
				"%s reaches engine-context-only function %s (ccsvm:enginectx) via %s; "+
					"calling it from a workload goroutine deadlocks against the engine",
				rootName, funcName(it.fn), strings.Join(it.chain, " -> "))
			continue
		}
		for _, e := range ec.edgesOf(it.fn) {
			if !visited[e.Callee] {
				chain := append(append([]string{}, it.chain...), funcName(e.Callee))
				queue = append(queue, item{e.Callee, chain})
			}
		}
	}
}

// funcName renders a function for diagnostics, with its receiver type when it
// is a method.
func funcName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return fmt.Sprintf("%s.%s", named.Obj().Name(), fn.Name())
		}
	}
	return fn.Name()
}
