package lint

import (
	"ccsvm/internal/lint/analysis"
)

// Directives validates the //ccsvm: annotation vocabulary itself: unknown
// directive names, malformed arguments, and directives attached to the wrong
// kind of declaration (a type, a value, a struct field) are errors. The other
// analyzers ignore malformed directives entirely, so without this check a
// typo like //ccsvm:pooled-get would silently disable enforcement; with it,
// the typo fails the build.
var Directives = &analysis.Analyzer{
	Name: "ccsvmdirective",
	Doc:  "report unknown, malformed or misplaced //ccsvm: directives",
	Run:  runDirectives,
}

func runDirectives(pass *analysis.Pass) (any, error) {
	ann := ParseAnnotations(pass.Fset, pass.Files, pass.TypesInfo)
	for _, e := range ann.Errors {
		pass.Reportf(e.Pos, "%s", e.Msg)
	}
	return nil, nil
}
