// Package load parses and typechecks the packages of one Go module for the
// ccsvm lint suite, using only the standard library (go/parser, go/types and
// the compiler's export-data importer). It is a small stand-in for
// golang.org/x/tools/go/packages: it understands exactly the two layouts the
// lint drivers need — this repository (a module with internal packages) and
// the linttest testdata tree (bare directory-named packages) — and returns
// packages in dependency order so analyzer facts flow from imported to
// importing packages.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and typechecked package.
type Package struct {
	// ImportPath is the package's import path ("ccsvm/internal/sim", or the
	// bare directory name in testdata mode).
	ImportPath string
	// Dir is the directory the package was loaded from.
	Dir string
	// Files is the parsed syntax of the package's non-test Go files.
	Files []*ast.File
	// Types is the typechecked package object.
	Types *types.Package
	// Info is the package's type and object resolution.
	Info *types.Info
}

// Config controls a load.
type Config struct {
	// Root is the directory resolved against; with "./..." patterns it is the
	// tree that is walked.
	Root string
	// ModulePath is the import-path prefix of packages under Root. Empty
	// means testdata mode: an import path is a directory under Root.
	ModulePath string
}

// Loader loads packages and owns the shared FileSet.
type Loader struct {
	cfg  Config
	fset *token.FileSet

	pkgs    map[string]*Package // by import path, fully loaded
	loading map[string]bool     // cycle detection
	std     types.Importer
	stdSrc  types.Importer
	order   []*Package
}

// New returns a loader for the given configuration.
func New(cfg Config) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		cfg:     cfg,
		fset:    fset,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
		std:     importer.Default(),
		stdSrc:  importer.ForCompiler(fset, "source", nil),
	}
}

// Fset returns the FileSet shared by every loaded package.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// ModuleRoot locates the enclosing module: it walks up from dir to the first
// directory containing go.mod and returns that directory and the module path
// declared in it.
func ModuleRoot(dir string) (root, modulePath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if path, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(path), nil
				}
			}
			return "", "", fmt.Errorf("load: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("load: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Load resolves the given patterns ("./...", or directory paths relative to
// the root) and returns the matched packages and all their intra-module
// dependencies in dependency order (imported packages before importers).
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			walked, err := l.walk(l.cfg.Root)
			if err != nil {
				return nil, err
			}
			dirs = append(dirs, walked...)
		default:
			dirs = append(dirs, filepath.Join(l.cfg.Root, filepath.FromSlash(strings.TrimPrefix(pat, "./"))))
		}
	}
	for _, dir := range dirs {
		if _, err := l.loadDir(dir); err != nil {
			return nil, err
		}
	}
	return l.order, nil
}

// walk returns every package directory under root, skipping testdata, vendor
// and hidden trees.
func (l *Loader) walk(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	sort.Strings(dirs)
	return dirs, err
}

func hasGoFiles(dir string) bool {
	bp, err := build.ImportDir(dir, 0)
	return err == nil && len(bp.GoFiles) > 0
}

// importPathOf maps a package directory to its import path under the config.
func (l *Loader) importPathOf(dir string) (string, error) {
	rel, err := filepath.Rel(l.cfg.Root, dir)
	if err != nil {
		return "", err
	}
	rel = filepath.ToSlash(rel)
	if l.cfg.ModulePath == "" {
		return rel, nil
	}
	if rel == "." {
		return l.cfg.ModulePath, nil
	}
	return l.cfg.ModulePath + "/" + rel, nil
}

// dirOf maps an intra-module import path to its directory, or "" when the
// path does not belong to the module.
func (l *Loader) dirOf(path string) string {
	if l.cfg.ModulePath == "" {
		dir := filepath.Join(l.cfg.Root, filepath.FromSlash(path))
		if hasGoFiles(dir) {
			return dir
		}
		return ""
	}
	if path == l.cfg.ModulePath {
		return l.cfg.Root
	}
	if rest, ok := strings.CutPrefix(path, l.cfg.ModulePath+"/"); ok {
		return filepath.Join(l.cfg.Root, filepath.FromSlash(rest))
	}
	return ""
}

// loadDir loads (or returns the already-loaded) package in dir.
func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPathOf(dir)
	if err != nil {
		return nil, err
	}
	return l.load(path, dir)
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("load: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("load: %s: %v", dir, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	// Load intra-module dependencies first so their types and facts exist.
	for _, imp := range bp.Imports {
		if depDir := l.dirOf(imp); depDir != "" {
			if _, err := l.load(imp, depDir); err != nil {
				return nil, err
			}
		}
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importerFunc(func(p string) (*types.Package, error) { return l.resolveImport(p) }),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("load: typechecking %s: %v", path, typeErrs[0])
	}

	pkg := &Package{ImportPath: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	l.order = append(l.order, pkg)
	return pkg, nil
}

// resolveImport serves go/types import requests: intra-module packages come
// from the loader itself, everything else from the compiler's export data
// (falling back to typechecking the standard library from source, which keeps
// the loader working in environments without export data).
func (l *Loader) resolveImport(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir := l.dirOf(path); dir != "" {
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	pkg, err := l.std.Import(path)
	if err == nil {
		return pkg, nil
	}
	return l.stdSrc.Import(path)
}

type importerFunc func(string) (*types.Package, error)

// Import implements types.Importer.
func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
