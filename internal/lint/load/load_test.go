package load_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ccsvm/internal/lint/load"
)

// writeTree materializes files (path → contents) under a fresh temp root.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for path, contents := range files {
		full := filepath.Join(root, filepath.FromSlash(path))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(contents), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// assertDepOrder fails unless every package appears after all of its
// intra-module dependencies — the property analyzer facts rely on.
func assertDepOrder(t *testing.T, pkgs []*load.Package) {
	t.Helper()
	seen := make(map[string]bool)
	byPath := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = true
	}
	for _, p := range pkgs {
		for _, imp := range p.Types.Imports() {
			if byPath[imp.Path()] && !seen[imp.Path()] {
				t.Errorf("package %s precedes its dependency %s", p.ImportPath, imp.Path())
			}
		}
		seen[p.ImportPath] = true
	}
}

func TestModuleRoot(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":        "module example.com/mod\n\ngo 1.24\n",
		"sub/deep/x.go": "package deep\n",
	})
	dir, modPath, err := load.ModuleRoot(filepath.Join(root, "sub", "deep"))
	if err != nil {
		t.Fatal(err)
	}
	// The temp root may itself sit under a symlinked path; compare the
	// discovered root by its go.mod identity rather than string equality.
	if _, err := os.Stat(filepath.Join(dir, "go.mod")); err != nil {
		t.Errorf("returned root %s has no go.mod", dir)
	}
	if modPath != "example.com/mod" {
		t.Errorf("module path = %q, want example.com/mod", modPath)
	}
}

func TestModuleRootMissing(t *testing.T) {
	// An isolated temp dir has no go.mod — unless the temp tree itself sits
	// under a module, which it never does on the platforms CI runs.
	if _, _, err := load.ModuleRoot(t.TempDir()); err == nil {
		t.Skip("a go.mod exists above the temp dir; cannot test the failure path")
	}
}

func TestLoadTestdataMode(t *testing.T) {
	// Testdata mode: ModulePath is empty and bare directory names are import
	// paths — the layout linttest fixtures use.
	root := writeTree(t, map[string]string{
		"base/base.go": "package base\n\n// V is exported data.\nvar V int\n",
		"mid/mid.go":   "package mid\n\nimport \"base\"\n\n// W re-exports base.V.\nvar W = base.V\n",
		"top/top.go":   "package top\n\nimport \"mid\"\n\n// X re-exports mid.W.\nvar X = mid.W\n",
	})
	l := load.New(load.Config{Root: root})
	pkgs, err := l.Load("top")
	if err != nil {
		t.Fatal(err)
	}
	// Loading only "top" must pull in its transitive intra-module
	// dependencies, in dependency order.
	var got []string
	for _, p := range pkgs {
		got = append(got, p.ImportPath)
	}
	want := []string{"base", "mid", "top"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("load order = %v, want %v", got, want)
	}
	assertDepOrder(t, pkgs)
	for _, p := range pkgs {
		if p.Types == nil || p.Info == nil || len(p.Files) == 0 {
			t.Errorf("package %s is missing types, info or syntax", p.ImportPath)
		}
	}
}

func TestLoadModuleMode(t *testing.T) {
	// Module mode: import paths carry the module prefix, and "./..." walks
	// the tree. Package "aa" importing "zz" makes alphabetical walk order
	// disagree with dependency order, so the order property is actually
	// exercised.
	root := writeTree(t, map[string]string{
		"go.mod":   "module example.com/mod\n\ngo 1.24\n",
		"aa/aa.go": "package aa\n\nimport \"example.com/mod/zz\"\n\n// A re-exports zz.Z.\nvar A = zz.Z\n",
		"zz/zz.go": "package zz\n\n// Z is exported data.\nvar Z int\n",
	})
	l := load.New(load.Config{Root: root, ModulePath: "example.com/mod"})
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, p := range pkgs {
		got = append(got, p.ImportPath)
	}
	want := []string{"example.com/mod/zz", "example.com/mod/aa"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("load order = %v, want %v", got, want)
	}
	assertDepOrder(t, pkgs)
}

func TestLoadStdlibImports(t *testing.T) {
	// Standard-library imports resolve through the export-data importer with
	// a source-typechecking fallback; either way the load must succeed and
	// the imported names must typecheck.
	root := writeTree(t, map[string]string{
		"p/p.go": "package p\n\nimport \"fmt\"\n\n// S uses a stdlib symbol so the import chain is exercised.\nvar S = fmt.Sprint(1)\n",
	})
	l := load.New(load.Config{Root: root})
	pkgs, err := l.Load("p")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].ImportPath != "p" {
		t.Fatalf("pkgs = %v", pkgs)
	}
	if pkgs[0].Types.Scope().Lookup("S") == nil {
		t.Error("p.S did not typecheck")
	}
}

func TestLoadImportCycle(t *testing.T) {
	root := writeTree(t, map[string]string{
		"a/a.go": "package a\n\nimport \"b\"\n\n// A depends on b.\nvar A = b.B\n",
		"b/b.go": "package b\n\nimport \"a\"\n\n// B depends on a.\nvar B = a.A\n",
	})
	l := load.New(load.Config{Root: root})
	_, err := l.Load("a")
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v, want import cycle", err)
	}
}

func TestLoadTypeError(t *testing.T) {
	root := writeTree(t, map[string]string{
		"p/p.go": "package p\n\n// V has a type error.\nvar V int = \"not an int\"\n",
	})
	l := load.New(load.Config{Root: root})
	if _, err := l.Load("p"); err == nil || !strings.Contains(err.Error(), "typechecking") {
		t.Fatalf("err = %v, want typechecking error", err)
	}
}

func TestLoadSkipsTestdataAndHidden(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":             "module example.com/mod\n\ngo 1.24\n",
		"p/p.go":             "package p\n\n// P marks the real package.\nvar P int\n",
		"p/testdata/t/t.go":  "package t\n\nthis is not Go\n",
		"p/.hidden/h/h.go":   "package h\n\nnor this\n",
		"p/_underscore/u.go": "package u\n\nnor this\n",
		"p/vendor/v/v.go":    "package v\n\nnor this\n",
		"p/sub/notgo/x.txt":  "no go files here\n",
		"p/sub/real/real.go": "package real\n\n// R marks a nested package.\nvar R int\n",
	})
	l := load.New(load.Config{Root: root, ModulePath: "example.com/mod"})
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, p := range pkgs {
		got = append(got, p.ImportPath)
	}
	want := []string{"example.com/mod/p", "example.com/mod/p/sub/real"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("walked packages = %v, want %v", got, want)
	}
}

func TestLoadSameLoaderIsIdempotent(t *testing.T) {
	// Loading a package twice through one loader returns the same *Package,
	// so facts exported during an earlier pattern remain attached.
	root := writeTree(t, map[string]string{
		"p/p.go": "package p\n\n// P is exported data.\nvar P int\n",
	})
	l := load.New(load.Config{Root: root})
	first, err := l.Load("p")
	if err != nil {
		t.Fatal(err)
	}
	second, err := l.Load("p")
	if err != nil {
		t.Fatal(err)
	}
	if first[0] != second[0] {
		t.Error("reloading returned a different *Package for the same path")
	}
}
