package lint

import (
	"go/token"
	"sort"

	"ccsvm/internal/lint/analysis"
	"ccsvm/internal/lint/load"
)

// Finding is one diagnostic produced by a suite run, resolved to a source
// position and tagged with the analyzer that produced it.
type Finding struct {
	// Analyzer names the originating analyzer.
	Analyzer string
	// Pos is the resolved source position.
	Pos token.Position
	// Message is the diagnostic text.
	Message string
}

// Run executes the given analyzers over packages that must be in dependency
// order (as returned by load.Load), so that facts exported on an imported
// package are visible when its importers are analyzed. Findings are returned
// sorted by file, line and column.
func Run(fset *token.FileSet, pkgs []*load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	facts := analysis.NewFactStore()
	var findings []Finding
	for _, a := range analyzers {
		for _, pkg := range pkgs {
			report := func(d analysis.Diagnostic) {
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Pos:      fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			pass := analysis.NewPass(a, fset, pkg.Files, pkg.Types, pkg.Info, facts, report)
			if _, err := a.Run(pass); err != nil {
				return nil, err
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return findings, nil
}
