package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"ccsvm/internal/lint/analysis"
)

// HotPath enforces the closure-free scheduling contract on functions
// annotated //ccsvm:hotpath: they must not pass capturing closures to the
// engine's At/Schedule family. A capturing closure allocates on every call,
// which is exactly the per-event garbage the PR 3 pooling work removed from
// the dispatch path (96-97% fewer allocs/op); the contract is to bind a
// callback once at construction time and schedule it with AtArg/ScheduleArg,
// carrying the per-event state in the argument.
var HotPath = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "forbid capturing closures passed to the engine's At/Schedule family inside\n" +
		"functions annotated //ccsvm:hotpath",
	Run: runHotPath,
}

// scheduleMethods are the event-scheduling entry points of sim.Engine.
var scheduleMethods = map[string]bool{
	"At": true, "AtArg": true, "Schedule": true, "ScheduleArg": true,
}

func runHotPath(pass *analysis.Pass) (any, error) {
	ann := ParseAnnotations(pass.Fset, pass.Files, pass.TypesInfo)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !ann.Has(pass.TypesInfo.Defs[fd.Name], DirHotPath) {
				continue
			}
			checkHotBody(pass, fd)
		}
	}
	return nil, nil
}

func checkHotBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isEngineSchedule(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			lit, ok := ast.Unparen(arg).(*ast.FuncLit)
			if !ok {
				continue
			}
			captured := capturedVars(pass, lit)
			if len(captured) == 0 {
				continue
			}
			method := ast.Unparen(call.Fun).(*ast.SelectorExpr).Sel.Name
			pass.Reportf(lit.Pos(), "hot path %s passes a capturing closure to %s "+
				"(captures %s); bind the callback once and carry state through %sArg",
				fd.Name.Name, method, strings.Join(captured, ", "),
				strings.TrimSuffix(method, "Arg"))
		}
		return true
	})
}

// engineImportPaths are the import paths the simulation engine may live at:
// the real package, and the bare directory-name path the linttest loader
// assigns to the fixture engine.
var engineImportPaths = map[string]bool{
	"ccsvm/internal/sim": true,
	"sim":                true,
}

// isEngineSchedule reports whether the call is sim.Engine.At/AtArg/Schedule/
// ScheduleArg. The receiver type is resolved via go/types object identity —
// the named type's object must be the package-scope Engine of an engine
// import path — so a same-named type in an unrelated package can neither
// trigger nor mask findings.
func isEngineSchedule(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !scheduleMethods[sel.Sel.Name] {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	pkg := obj.Pkg()
	if pkg == nil || !engineImportPaths[pkg.Path()] {
		return false
	}
	return pkg.Scope().Lookup("Engine") == obj
}

// capturedVars returns the names of local variables of the enclosing function
// that the literal captures (references to objects declared outside the
// literal but below package scope). A literal that captures nothing compiles
// to a static function value and is allowed on hot paths.
func capturedVars(pass *analysis.Pass, lit *ast.FuncLit) []string {
	seen := make(map[string]bool)
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // the literal's own parameters and locals
		}
		if v.Parent() == pass.Pkg.Scope() || v.Parent() == types.Universe {
			return true // package-level variables are not captures
		}
		if v.Pkg() != pass.Pkg {
			return true
		}
		if !seen[v.Name()] {
			seen[v.Name()] = true
			names = append(names, v.Name())
		}
		return true
	})
	sort.Strings(names)
	return names
}
