package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The //ccsvm: directive vocabulary. Directives are machine-readable comments
// (in the style of //go:build) that declare which invariant a declaration
// participates in; the analyzers in this package enforce them. The vocabulary
// is documented for contributors in ARCHITECTURE.md ("Static enforcement").
const (
	// DirDeterministic marks a package (in its package doc comment) as part
	// of the simulated machine: the determinism analyzer forbids wall-clock
	// reads, global math/rand, goroutine launches and order-sensitive map
	// iteration inside it.
	DirDeterministic = "deterministic"
	// DirEngineCtx marks a function that must only run in engine context (an
	// event callback or machine-build code); the enginectx analyzer reports
	// any call chain reaching it from a workload-goroutine entry point.
	DirEngineCtx = "enginectx"
	// DirHotPath marks a function on the allocation-free hot path: the
	// hotpath analyzer forbids capturing closures passed to the engine's
	// At/Schedule family inside it.
	DirHotPath = "hotpath"
	// DirLaunchPath marks the blessed goroutine launch point (the exec
	// package's workload-thread launch); go statements anywhere else in a
	// deterministic package are reported.
	DirLaunchPath = "launchpath"
	// DirThreadEntry marks an API whose function-valued arguments become
	// workload-goroutine bodies (exec.NewThread and its wrappers); the
	// enginectx analyzer treats such arguments as reachability roots.
	DirThreadEntry = "threadentry"
	// DirPooled marks a pool endpoint: "//ccsvm:pooled get" on functions that
	// hand out a pooled object the caller must release or transfer,
	// "//ccsvm:pooled put" on the matching release functions.
	DirPooled = "pooled"
	// DirOrderInvariant suppresses the map-iteration determinism check for
	// the range statement on the same or next line; it is a reviewed claim
	// that the loop body's effects commute (or are sorted afterwards).
	DirOrderInvariant = "orderinvariant"
	// DirAllocOk suppresses the allocfree analyzer for the statement on the
	// same or next line inside a //ccsvm:hotpath function; it is a reviewed
	// claim that the allocation is amortized (pool chunk refill, slice
	// growth to a high-water mark) or otherwise off the steady-state path.
	DirAllocOk = "allocok"
	// DirState marks a machine-state root type: the statesafe analyzer
	// requires its reachable field closure to be checkpointable — free of
	// func values, channels, unsafe.Pointer and sync primitives.
	DirState = "state"
	// DirStateOk waives one struct field from the statesafe closure walk; it
	// is a reviewed claim that the field is rebuilt (not serialized) on
	// checkpoint restore.
	DirStateOk = "stateok"
)

// directivePrefix introduces every ccsvm directive comment.
const directivePrefix = "//ccsvm:"

// Directive is one parsed //ccsvm: annotation.
type Directive struct {
	// Kind is one of the Dir* constants.
	Kind string
	// Arg is the directive argument ("get" or "put" for pooled; empty
	// otherwise).
	Arg string
	// Pos locates the directive comment.
	Pos token.Pos
}

// AnnotationError is a malformed or misplaced directive.
type AnnotationError struct {
	// Pos locates the offending comment.
	Pos token.Pos
	// Msg describes the problem.
	Msg string
}

// Annotations is the parsed directive set of one package.
type Annotations struct {
	// Pkg holds package-level directives (currently only deterministic).
	Pkg []Directive
	// ByObj maps annotated functions, methods, interface methods, types and
	// struct fields to their directives.
	ByObj map[types.Object][]Directive
	// floatingLines records the file lines carrying each floating directive
	// kind, keyed by kind, then filename, then line.
	floatingLines map[string]map[string]map[int]bool
	// Errors collects malformed and misplaced directives; the ccsvmdirective
	// analyzer reports them.
	Errors []AnnotationError
}

// Has reports whether obj carries a directive of the given kind.
func (a *Annotations) Has(obj types.Object, kind string) bool {
	for _, d := range a.ByObj[obj] {
		if d.Kind == kind {
			return true
		}
	}
	return false
}

// PooledArg returns "get" or "put" when obj carries a pooled directive, else
// the empty string.
func (a *Annotations) PooledArg(obj types.Object) string {
	for _, d := range a.ByObj[obj] {
		if d.Kind == DirPooled {
			return d.Arg
		}
	}
	return ""
}

// PkgHas reports whether the package carries a package-level directive.
func (a *Annotations) PkgHas(kind string) bool {
	for _, d := range a.Pkg {
		if d.Kind == kind {
			return true
		}
	}
	return false
}

// FloatingAt reports whether a floating directive of the given kind is
// attached to the statement at pos: on the same line (trailing comment) or
// the line directly above it.
func (a *Annotations) FloatingAt(kind string, fset *token.FileSet, pos token.Pos) bool {
	p := fset.Position(pos)
	lines := a.floatingLines[kind][p.Filename]
	return lines[p.Line] || lines[p.Line-1]
}

// OrderInvariantAt reports whether an orderinvariant directive is attached to
// the statement at pos.
func (a *Annotations) OrderInvariantAt(fset *token.FileSet, pos token.Pos) bool {
	return a.FloatingAt(DirOrderInvariant, fset, pos)
}

// AllocOkAt reports whether an allocok directive is attached to the
// statement or expression at pos.
func (a *Annotations) AllocOkAt(fset *token.FileSet, pos token.Pos) bool {
	return a.FloatingAt(DirAllocOk, fset, pos)
}

// directiveSpec describes where each directive kind may appear and whether it
// takes an argument.
var directiveSpec = map[string]struct {
	onPackage, onFunc, onType, onField, floating bool
	args                                         []string // allowed argument values; nil means no argument
}{
	DirDeterministic:  {onPackage: true},
	DirEngineCtx:      {onFunc: true},
	DirHotPath:        {onFunc: true},
	DirLaunchPath:     {onFunc: true},
	DirThreadEntry:    {onFunc: true},
	DirPooled:         {onFunc: true, args: []string{"get", "put"}},
	DirOrderInvariant: {floating: true},
	DirAllocOk:        {floating: true},
	DirState:          {onType: true},
	DirStateOk:        {onField: true},
}

// ParseAnnotations extracts every //ccsvm: directive of the package, resolving
// function-level directives to their types.Object. Malformed directives are
// collected in Errors, never silently applied.
func ParseAnnotations(fset *token.FileSet, files []*ast.File, info *types.Info) *Annotations {
	a := &Annotations{
		ByObj:         make(map[types.Object][]Directive),
		floatingLines: make(map[string]map[string]map[int]bool),
	}
	for _, file := range files {
		a.parseFile(fset, file, info)
	}
	return a
}

func (a *Annotations) parseFile(fset *token.FileSet, file *ast.File, info *types.Info) {
	// Doc comment groups attached to declarations, handled structurally; any
	// other //ccsvm: comment is "floating" and may only carry floating
	// directives such as orderinvariant.
	attached := make(map[*ast.CommentGroup]bool)

	if file.Doc != nil {
		attached[file.Doc] = true
		for _, d := range a.parseGroup(file.Doc) {
			a.place(d, "package", func() { a.Pkg = append(a.Pkg, d) })
		}
	}

	ast.Inspect(file, func(n ast.Node) bool {
		switch decl := n.(type) {
		case *ast.FuncDecl:
			if decl.Doc != nil {
				attached[decl.Doc] = true
				obj := info.Defs[decl.Name]
				for _, d := range a.parseGroup(decl.Doc) {
					a.place(d, "function", func() { a.ByObj[obj] = append(a.ByObj[obj], d) })
				}
			}
		case *ast.GenDecl:
			if decl.Doc != nil {
				attached[decl.Doc] = true
				// The doc comment of a non-parenthesized `type T ...`
				// declaration attaches to the GenDecl, not the TypeSpec.
				if ts, ok := singleTypeSpec(decl); ok {
					obj := info.Defs[ts.Name]
					for _, d := range a.parseGroup(decl.Doc) {
						a.place(d, "type", func() { a.ByObj[obj] = append(a.ByObj[obj], d) })
					}
				} else {
					for _, d := range a.parseGroup(decl.Doc) {
						a.misplaced(d, "declaration")
					}
				}
			}
		case *ast.TypeSpec:
			if decl.Doc != nil {
				attached[decl.Doc] = true
				obj := info.Defs[decl.Name]
				for _, d := range a.parseGroup(decl.Doc) {
					a.place(d, "type", func() { a.ByObj[obj] = append(a.ByObj[obj], d) })
				}
			}
			if decl.Comment != nil {
				attached[decl.Comment] = true
			}
		case *ast.ValueSpec:
			if decl.Doc != nil {
				attached[decl.Doc] = true
				for _, d := range a.parseGroup(decl.Doc) {
					a.misplaced(d, "value")
				}
			}
			if decl.Comment != nil {
				attached[decl.Comment] = true
			}
		case *ast.Field:
			for _, group := range []*ast.CommentGroup{decl.Doc, decl.Comment} {
				if group == nil {
					continue
				}
				attached[group] = true
				if obj := interfaceMethodObj(decl, info); obj != nil {
					for _, d := range a.parseGroup(group) {
						a.place(d, "function", func() { a.ByObj[obj] = append(a.ByObj[obj], d) })
					}
					continue
				}
				for _, d := range a.parseGroup(group) {
					if len(decl.Names) == 0 {
						a.misplaced(d, "field") // embedded fields cannot be annotated
						continue
					}
					a.place(d, "field", func() {
						for _, name := range decl.Names {
							obj := info.Defs[name]
							a.ByObj[obj] = append(a.ByObj[obj], d)
						}
					})
				}
			}
		}
		return true
	})

	for _, group := range file.Comments {
		if attached[group] {
			continue
		}
		for _, d := range a.parseGroup(group) {
			a.place(d, "floating", func() {
				p := fset.Position(d.Pos)
				byFile := a.floatingLines[d.Kind]
				if byFile == nil {
					byFile = make(map[string]map[int]bool)
					a.floatingLines[d.Kind] = byFile
				}
				lines := byFile[p.Filename]
				if lines == nil {
					lines = make(map[int]bool)
					byFile[p.Filename] = lines
				}
				lines[p.Line] = true
			})
		}
	}
}

// interfaceMethodObj returns the *types.Func of an interface method field, or
// nil when the field is not one.
func interfaceMethodObj(f *ast.Field, info *types.Info) types.Object {
	if len(f.Names) != 1 {
		return nil
	}
	if _, ok := f.Type.(*ast.FuncType); !ok {
		return nil
	}
	obj := info.Defs[f.Names[0]]
	if _, ok := obj.(*types.Func); ok {
		return obj
	}
	return nil
}

// singleTypeSpec returns the lone TypeSpec of a non-parenthesized type
// declaration, whose doc comment attaches to the GenDecl.
func singleTypeSpec(decl *ast.GenDecl) (*ast.TypeSpec, bool) {
	if decl.Tok != token.TYPE || len(decl.Specs) != 1 || decl.Lparen.IsValid() {
		return nil, false
	}
	ts, ok := decl.Specs[0].(*ast.TypeSpec)
	return ts, ok
}

// place validates a directive's placement ("package", "function", "type",
// "field" or "floating") and either applies it via apply or records an
// error.
func (a *Annotations) place(d Directive, where string, apply func()) {
	spec := directiveSpec[d.Kind]
	ok := (where == "package" && spec.onPackage) ||
		(where == "function" && spec.onFunc) ||
		(where == "type" && spec.onType) ||
		(where == "field" && spec.onField) ||
		(where == "floating" && spec.floating)
	if !ok {
		a.misplaced(d, where)
		return
	}
	apply()
}

func (a *Annotations) misplaced(d Directive, where string) {
	spec := directiveSpec[d.Kind]
	var allowed []string
	if spec.onPackage {
		allowed = append(allowed, "a package doc comment")
	}
	if spec.onFunc {
		allowed = append(allowed, "a function, method or interface-method doc comment")
	}
	if spec.onType {
		allowed = append(allowed, "a type declaration doc comment")
	}
	if spec.onField {
		allowed = append(allowed, "a named struct field")
	}
	if spec.floating {
		allowed = append(allowed, "a statement inside a function body")
	}
	wherePhrase := map[string]string{
		"package":     "a package doc comment",
		"function":    "a function",
		"declaration": "a type, const or var declaration",
		"type":        "a type",
		"value":       "a const or var",
		"field":       "a struct field",
		"floating":    "a floating comment",
	}[where]
	a.Errors = append(a.Errors, AnnotationError{
		Pos: d.Pos,
		Msg: fmt.Sprintf("directive ccsvm:%s is not allowed on %s; it belongs on %s",
			d.Kind, wherePhrase, strings.Join(allowed, " or ")),
	})
}

// parseGroup extracts the well-formed directives of one comment group,
// recording malformed ones as errors.
func (a *Annotations) parseGroup(group *ast.CommentGroup) []Directive {
	var out []Directive
	for _, c := range group.List {
		text := c.Text
		// Allow a trailing comment after the directive, matching gofmt's
		// inline-comment style: "//ccsvm:pooled get // explanation".
		if i := strings.Index(text, " //"); i > 0 {
			text = strings.TrimRight(text[:i], " \t")
		}
		if strings.HasPrefix(text, "// ccsvm:") {
			a.Errors = append(a.Errors, AnnotationError{
				Pos: c.Pos(),
				Msg: "malformed directive: remove the space between // and ccsvm: (directives follow the //go: convention)",
			})
			continue
		}
		rest, ok := strings.CutPrefix(text, directivePrefix)
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			a.Errors = append(a.Errors, AnnotationError{Pos: c.Pos(), Msg: "empty ccsvm: directive"})
			continue
		}
		kind := fields[0]
		spec, known := directiveSpec[kind]
		if !known {
			a.Errors = append(a.Errors, AnnotationError{
				Pos: c.Pos(),
				Msg: fmt.Sprintf("unknown directive ccsvm:%s (known: %s)", kind, knownDirectives()),
			})
			continue
		}
		d := Directive{Kind: kind, Pos: c.Pos()}
		switch {
		case spec.args == nil && len(fields) > 1:
			a.Errors = append(a.Errors, AnnotationError{
				Pos: c.Pos(),
				Msg: fmt.Sprintf("directive ccsvm:%s takes no argument", kind),
			})
			continue
		case spec.args != nil:
			if len(fields) != 2 || !contains(spec.args, fields[1]) {
				a.Errors = append(a.Errors, AnnotationError{
					Pos: c.Pos(),
					Msg: fmt.Sprintf("directive ccsvm:%s requires exactly one argument out of: %s",
						kind, strings.Join(spec.args, ", ")),
				})
				continue
			}
			d.Arg = fields[1]
		}
		out = append(out, d)
	}
	return out
}

func knownDirectives() string {
	names := make([]string, 0, len(directiveSpec))
	for k := range directiveSpec {
		names = append(names, k)
	}
	// Map iteration order is irrelevant for an error message, but sort for
	// stable output anyway.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return strings.Join(names, ", ")
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
