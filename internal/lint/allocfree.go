package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"ccsvm/internal/lint/analysis"
)

// AllocFree extends the hot-path contract from "no capturing closures at
// schedule sites" to "no heap allocation at all": inside functions annotated
// //ccsvm:hotpath it flags every construct that allocates (or may allocate)
// on the steady-state path — make/new, append growth, slice, map and escaping
// composite literals, capturing closures, interface boxing of non-pointer
// values, non-constant string concatenation, string<->[]byte conversions and
// any call into package fmt. Reviewed exceptions (amortized pool-chunk
// refills, slices that grow to a high-water mark and are reused) are
// annotated //ccsvm:allocok on the same or previous line. Arguments being
// marshaled for a panic are exempt: the crash path is not the hot path.
var AllocFree = &analysis.Analyzer{
	Name: "allocfree",
	Doc: "forbid heap-allocating constructs inside //ccsvm:hotpath functions unless\n" +
		"annotated //ccsvm:allocok",
	Run: runAllocFree,
}

func runAllocFree(pass *analysis.Pass) (any, error) {
	ann := ParseAnnotations(pass.Fset, pass.Files, pass.TypesInfo)
	af := &allocChecker{pass: pass, ann: ann}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil || !ann.Has(obj, DirHotPath) {
				continue
			}
			af.results = obj.Type().(*types.Signature).Results()
			af.check(fd.Body)
		}
	}
	return nil, nil
}

type allocChecker struct {
	pass    *analysis.Pass
	ann     *Annotations
	results *types.Tuple // result types of the function being checked
}

// report emits one finding unless an //ccsvm:allocok directive covers the
// node's line.
func (af *allocChecker) report(n ast.Node, format string, args ...any) {
	if af.ann.AllocOkAt(af.pass.Fset, n.Pos()) {
		return
	}
	af.pass.Reportf(n.Pos(), format, args...)
}

// check walks one hot function body. Function literal bodies are not
// descended into (creating a non-capturing literal is free, and a capturing
// one is flagged at the creation site); panic call arguments are skipped
// because the crash path is not the hot path.
func (af *allocChecker) check(body *ast.BlockStmt) {
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if captured := capturedVars(af.pass, n); len(captured) > 0 {
				af.report(n, "capturing closure allocates on the hot path (captures %s); "+
					"bind the callback once and pass state through its argument",
					strings.Join(captured, ", "))
			}
			return false

		case *ast.CallExpr:
			return af.call(n)

		case *ast.CompositeLit:
			af.compositeLit(n, false)
			return true

		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					af.compositeLit(lit, true)
					// Descend into the literal's elements but not the
					// literal itself (already reported).
					for _, el := range lit.Elts {
						ast.Inspect(el, visit)
					}
					return false
				}
			}
			return true

		case *ast.BinaryExpr:
			if n.Op.String() == "+" && !af.isConstant(n) {
				if t := af.typeOf(n); t != nil && isString(t) {
					af.report(n, "string concatenation allocates on the hot path")
				}
			}
			return true

		case *ast.AssignStmt:
			af.assign(n)
			return true

		case *ast.ValueSpec:
			if n.Type != nil {
				target := af.pass.TypesInfo.TypeOf(n.Type)
				for _, v := range n.Values {
					af.boxCheck(v, target)
				}
			}
			return true

		case *ast.SendStmt:
			if ch := af.typeOf(n.Chan); ch != nil {
				if c, ok := types.Unalias(ch).Underlying().(*types.Chan); ok {
					af.boxCheck(n.Value, c.Elem())
				}
			}
			return true

		case *ast.ReturnStmt:
			if af.results != nil && len(n.Results) == af.results.Len() {
				for i, r := range n.Results {
					af.boxCheck(r, af.results.At(i).Type())
				}
			}
			return true
		}
		return true
	}
	ast.Inspect(body, visit)
}

// call handles one call expression: builtin allocators, fmt calls,
// allocating conversions, and interface boxing of arguments. It returns
// whether the walker should descend into the call's children.
func (af *allocChecker) call(call *ast.CallExpr) bool {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := af.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				af.report(call, "make allocates on the hot path; reuse preallocated storage")
			case "new":
				af.report(call, "new allocates on the hot path; reuse a pooled object")
			case "append":
				af.report(call, "append may grow its backing array on the hot path; "+
					"preallocate capacity or annotate //ccsvm:allocok if amortized")
			case "panic":
				return false // crash path: arguments may allocate freely
			}
			return true
		}
	}

	// Conversions: T(x) where T is a type.
	if tv, ok := af.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		from := af.typeOf(call.Args[0])
		if from != nil && allocatingConversion(from, to) {
			af.report(call, "conversion between string and byte/rune slice copies and "+
				"allocates on the hot path")
		}
		af.boxCheck(call.Args[0], to)
		return true
	}

	// Calls into package fmt reflect and allocate.
	if fn := calleeFunc(af.pass, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		af.report(call, "fmt.%s reflects and allocates on the hot path", fn.Name())
	}

	// Interface boxing of arguments.
	var sig *types.Signature
	if ft := af.typeOf(call.Fun); ft != nil {
		sig, _ = ft.Underlying().(*types.Signature)
	}
	if sig != nil {
		params := sig.Params()
		for i, arg := range call.Args {
			var pt types.Type
			switch {
			case sig.Variadic() && i >= params.Len()-1:
				if call.Ellipsis.IsValid() {
					pt = params.At(params.Len() - 1).Type() // []T passed whole
				} else if s, ok := types.Unalias(params.At(params.Len() - 1).Type()).Underlying().(*types.Slice); ok {
					pt = s.Elem()
				}
			case i < params.Len():
				pt = params.At(i).Type()
			}
			af.boxCheck(arg, pt)
		}
	}
	return true
}

// assign flags interface boxing through assignments to interface-typed
// locations.
func (af *allocChecker) assign(n *ast.AssignStmt) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, lhs := range n.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if af.pass.TypesInfo.Defs[id] != nil {
				continue // new variable: its type is the RHS type, no boxing
			}
		}
		af.boxCheck(n.Rhs[i], af.typeOf(lhs))
	}
}

// compositeLit flags slice and map literals (which allocate their backing
// store) and address-taken literals (which escape to the heap).
func (af *allocChecker) compositeLit(lit *ast.CompositeLit, addressTaken bool) {
	t := af.typeOf(lit)
	if t == nil {
		return
	}
	switch types.Unalias(t).Underlying().(type) {
	case *types.Slice:
		af.report(lit, "slice literal allocates its backing array on the hot path")
	case *types.Map:
		af.report(lit, "map literal allocates on the hot path")
	default:
		if addressTaken {
			af.report(lit, "address-taken composite literal escapes to the heap on the hot path")
		}
	}
}

// boxCheck reports when expr, of concrete non-pointer-shaped type, is placed
// into an interface-typed location: the conversion boxes the value on the
// heap.
func (af *allocChecker) boxCheck(expr ast.Expr, target types.Type) {
	if expr == nil || target == nil {
		return
	}
	if !types.IsInterface(types.Unalias(target).Underlying()) {
		return
	}
	tv, ok := af.pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil || tv.IsNil() || tv.Value != nil {
		return // untyped nil and constants are out of scope
	}
	src := tv.Type
	if types.IsInterface(types.Unalias(src).Underlying()) {
		return // interface to interface: no new box
	}
	if pointerShaped(src) {
		return
	}
	af.report(expr, "interface boxing of %s allocates on the hot path; "+
		"pass a pointer-shaped value instead", exprString(expr))
}

func (af *allocChecker) typeOf(e ast.Expr) types.Type {
	if e == nil {
		return nil
	}
	return af.pass.TypesInfo.TypeOf(e)
}

func (af *allocChecker) isConstant(e ast.Expr) bool {
	tv, ok := af.pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// calleeFunc resolves a call's static callee, or nil.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// pointerShaped reports whether values of the type fit in a pointer word and
// convert to an interface without a heap allocation.
func pointerShaped(t types.Type) bool {
	switch u := types.Unalias(t).Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func isString(t types.Type) bool {
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// allocatingConversion reports string<->[]byte and string<->[]rune
// conversions, which copy their contents into fresh storage.
func allocatingConversion(from, to types.Type) bool {
	return (isString(from) && isByteOrRuneSlice(to)) ||
		(isByteOrRuneSlice(from) && isString(to))
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := types.Unalias(t).Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := types.Unalias(s.Elem()).Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
