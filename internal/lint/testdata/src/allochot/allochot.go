// Package allochot exercises the allocfree analyzer: every heap-allocating
// construct inside a //ccsvm:hotpath function is flagged.
package allochot

import "fmt"

// Point is a plain value type.
type Point struct {
	X, Y int
}

// box is an interface-typed package variable; storing a non-pointer value
// into it boxes the value.
var box any

// Consume keeps results alive so the fixtures compile.
func Consume(args ...any) {}

// Hot is the annotated hot path with one of each allocating construct.
//
//ccsvm:hotpath
func Hot(n int, name string, buf []byte, ch chan any) {
	s := make([]int, n)                  // want "make allocates"
	p := new(int)                        // want "new allocates"
	buf = append(buf, 1)                 // want "append may grow its backing array"
	f := func() int { return n }         // want "capturing closure allocates on the hot path \\(captures n\\)"
	xs := []int{1, 2, 3}                 // want "slice literal allocates its backing array"
	m := map[int]int{1: 2}               // want "map literal allocates"
	pt := &Point{X: 1, Y: 2}             // want "address-taken composite literal escapes"
	msg := name + "!"                    // want "string concatenation allocates"
	bs := []byte(name)                   // want "conversion between string and byte/rune slice"
	box = n                              // want "interface boxing of n allocates"
	ch <- n                              // want "interface boxing of n allocates"
	Consume(s, p, f, xs, m, pt, msg, bs) // want "interface boxing of s allocates" "interface boxing of xs allocates" "interface boxing of msg allocates" "interface boxing of bs allocates"
	_ = fmt.Sprintf("%d", 1)             // want "fmt.Sprintf reflects and allocates"
}

// HotReturn boxes its concrete result into an interface return value.
//
//ccsvm:hotpath
func HotReturn(p Point) any {
	return p // want "interface boxing of p allocates"
}

// HotVar boxes through an explicitly typed var declaration.
//
//ccsvm:hotpath
func HotVar(n int) {
	var v any = n // want "interface boxing of n allocates"
	_ = v
}

// Cold performs the same allocations without the annotation; nothing is
// flagged.
func Cold(n int, name string) ([]int, string) {
	s := make([]int, n)
	return append(s, 1), name + "!"
}
