// Package stateclean holds //ccsvm:state roots that pass the statesafe
// walk: plain data closures, waived callback fields (locally and through a
// cross-package fact), and interface fields where the walk stops.
package stateclean

import "statedep"

// Cache is a pure-data machine-state root.
//
//ccsvm:state
type Cache struct {
	Sets   [][]statedep.Line
	ByAddr map[uint64]*statedep.Line
	Tick   uint64
	Name   string
}

// Engine holds callbacks that are re-bound on restore, each explicitly
// waived, plus an interface-typed payload where the static walk stops.
//
//ccsvm:state
type Engine struct {
	Now  uint64
	Pool statedep.Pool // its alloc hook is waived in statedep

	//ccsvm:stateok // bound once at construction, rebuilt on restore
	dispatch func(any)

	payload any // interface: the checkpoint layer handles dynamic contents
}
