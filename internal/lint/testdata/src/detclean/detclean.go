// Package detclean is a deterministic package with no violations: seeded
// randomness, sorted map iteration, and goroutines confined to the annotated
// launch path.
//
//ccsvm:deterministic
package detclean

import (
	"math/rand"
	"sort"
)

// Shuffle permutes xs with an explicitly seeded source.
func Shuffle(xs []int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Drain visits map entries in sorted-key order.
func Drain(m map[string]int, visit func(string, int)) {
	keys := make([]string, 0, len(m))
	//ccsvm:orderinvariant
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		visit(k, m[k])
	}
}

// Launch is the package's blessed goroutine spawn point.
//
//ccsvm:launchpath
func Launch(fn func()) chan struct{} {
	done := make(chan struct{})
	go func() {
		fn()
		close(done)
	}()
	return done
}
