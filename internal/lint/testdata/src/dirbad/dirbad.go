// Package dirbad exercises the ccsvmdirective hygiene analyzer: unknown,
// malformed and misplaced directives are all errors, never silently ignored.
package dirbad

//ccsvm:frobnicate // want "unknown directive"
func Unknown() {}

//ccsvm:pooled // want "exactly one argument"
func MissingArg() {}

//ccsvm:pooled recycle // want "exactly one argument"
func BadArg() {}

//ccsvm:hotpath always // want "takes no argument"
func ExtraArg() {}

//ccsvm:enginectx // want "not allowed on a type"
type T int

//ccsvm:deterministic // want "not allowed on a function"
func Misplaced() {}

//ccsvm:state // want "not allowed on a function; it belongs on a type declaration doc comment"
func StateOnFunc() {}

//ccsvm:stateok // want "not allowed on a type; it belongs on a named struct field"
type W int

// ccsvm:hotpath // want "space between"
func Spaced() {}

// S has an annotated struct field, which is invalid even for a func-typed
// field.
type S struct {
	//ccsvm:hotpath // want "not allowed on a struct field"
	F func()
}

// Floating directives may only be floating kinds.
func Body() {
	//ccsvm:enginectx // want "not allowed on a floating comment"
	_ = 1
}
