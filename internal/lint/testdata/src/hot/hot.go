// Package hot exercises the hotpath analyzer against the fixture sim.Engine:
// capturing closures passed to the At/Schedule family are flagged only inside
// //ccsvm:hotpath functions.
package hot

import (
	"sim"
)

// Ctrl is a controller with a prebound callback, the pattern the contract
// asks for.
type Ctrl struct {
	eng  *sim.Engine
	n    int
	step func(any)
}

// Hot is annotated hot-path and passes a capturing closure.
//
//ccsvm:hotpath
func Hot(e *sim.Engine, n int) {
	e.Schedule(1, func() { // want "capturing closure"
		use(n)
	})
}

// Recv captures its receiver in an At callback.
//
//ccsvm:hotpath
func (c *Ctrl) Recv() {
	c.eng.At(0, func() { // want "captures c"
		c.n++
	})
}

// HotClean schedules a named function, a prebound callback, and a
// non-capturing literal: all allowed on the hot path.
//
//ccsvm:hotpath
func (c *Ctrl) HotClean() {
	c.eng.Schedule(1, tick)
	c.eng.ScheduleArg(2, c.step, c)
	c.eng.At(3, func() {
		use(0)
	})
}

// Cold is not annotated; capturing closures are allowed off the hot path.
func Cold(e *sim.Engine, n int) {
	e.Schedule(1, func() {
		use(n)
	})
}

func use(int) {}

func tick() {}
