// Package ectx exercises the enginectx analyzer: workload bodies passed to
// the threadentry API must not reach the engine-context-only call, directly
// or transitively.
package ectx

import (
	"ectxapi"
)

// helper reaches the engine-context-only API through one hop.
func helper() {
	ectxapi.RaiseInterrupt()
}

// compute is engine-free.
func compute() int {
	return 42
}

// body calls the forbidden API directly.
func body() {
	ectxapi.RaiseInterrupt()
}

// Bad passes a closure that transitively reaches RaiseInterrupt.
func Bad() {
	ectxapi.NewThread(func() { // want "reaches engine-context-only function RaiseInterrupt"
		helper()
	})
}

// BadNamed passes a named function that reaches it directly.
func BadNamed() {
	ectxapi.NewThread(body) // want "body reaches engine-context-only function RaiseInterrupt"
}

// Good passes an engine-free body, and hands an interrupt-raising callback to
// Defer, which is not a thread entry: engine-context callbacks may raise.
func Good() {
	ectxapi.NewThread(func() {
		_ = compute()
	})
	ectxapi.Defer(func() {
		helper()
	})
}
