// Package notdet is not annotated deterministic; the determinism analyzer
// must skip it entirely even though it does everything wrong.
package notdet

import (
	"math/rand"
	"time"
)

// Wallclock would be flagged in a deterministic package.
func Wallclock() (time.Time, int) {
	go func() {}()
	return time.Now(), rand.Int()
}
