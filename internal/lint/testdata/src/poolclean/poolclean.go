// Package poolclean uses the pooled API correctly in every function, and its
// pooled sources live behind an interface to exercise interface-method
// annotations.
package poolclean

// Buf is the pooled object.
type Buf struct {
	n int
}

// Source is any allocator of pooled Bufs.
type Source interface {
	// Acquire hands out a pooled Buf; the caller owns it.
	//
	//ccsvm:pooled get
	Acquire() *Buf

	// Release returns a Buf to the pool.
	//
	//ccsvm:pooled put
	Release(b *Buf)
}

// Use acquires, works, and releases on the single path.
func Use(s Source) int {
	b := s.Acquire()
	b.n++
	n := b.n
	s.Release(b)
	return n
}

// Forward transfers ownership to the callee on every path.
func Forward(s Source, sink func(*Buf)) {
	b := s.Acquire()
	if b.n > 0 {
		sink(b)
		return
	}
	sink(b)
}

// Loop releases inside the loop body that consumed it.
func Loop(s Source, rounds int) {
	for i := 0; i < rounds; i++ {
		b := s.Acquire()
		b.n = i
		s.Release(b)
	}
}
