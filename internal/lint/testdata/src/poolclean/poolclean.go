// Package poolclean uses the pooled API correctly in every function, and its
// pooled sources live behind an interface to exercise interface-method
// annotations.
package poolclean

// Buf is the pooled object.
type Buf struct {
	n int
}

// Source is any allocator of pooled Bufs.
type Source interface {
	// Acquire hands out a pooled Buf; the caller owns it.
	//
	//ccsvm:pooled get
	Acquire() *Buf

	// Release returns a Buf to the pool.
	//
	//ccsvm:pooled put
	Release(b *Buf)
}

// Use acquires, works, and releases on the single path.
func Use(s Source) int {
	b := s.Acquire()
	b.n++
	n := b.n
	s.Release(b)
	return n
}

// Forward transfers ownership to the callee on every path.
func Forward(s Source, sink func(*Buf)) {
	b := s.Acquire()
	if b.n > 0 {
		sink(b)
		return
	}
	sink(b)
}

// Loop releases inside the loop body that consumed it.
func Loop(s Source, rounds int) {
	for i := 0; i < rounds; i++ {
		b := s.Acquire()
		b.n = i
		s.Release(b)
	}
}

// DeferredRelease registers the release once up front and uses the Buf
// afterwards; the deferred put runs exactly once on every exit.
func DeferredRelease(s Source) int {
	b := s.Acquire()
	defer s.Release(b)
	b.n++
	return b.n
}

// BranchTransfer consumes on every arm of a switch with a default.
func BranchTransfer(s Source, ch chan *Buf, k int) {
	b := s.Acquire()
	switch k {
	case 0:
		ch <- b
	case 1:
		s.Release(b)
	default:
		s.Release(b)
	}
}

// EarlyPanic releases on the normal path; leaking on the crash path is
// acceptable.
func EarlyPanic(s Source, ok bool) {
	b := s.Acquire()
	if !ok {
		panic("bad source state")
	}
	s.Release(b)
}

// GotoRelease reaches a common release label on every path.
func GotoRelease(s Source, c bool) {
	b := s.Acquire()
	if c {
		b.n = 1
		goto done
	}
	b.n = 2
done:
	s.Release(b)
}

// Reassign rebinds the variable after releasing; each pooled value is
// released exactly once.
func Reassign(s Source) {
	b := s.Acquire()
	s.Release(b)
	b = s.Acquire()
	s.Release(b)
}
