// Package allocclean stays on the right side of the allocfree contract:
// pointer-shaped values cross interface boundaries, amortized growth is
// annotated //ccsvm:allocok, and crash paths may allocate freely.
package allocclean

// Item is the pooled per-event payload.
type Item struct {
	Seq int
}

// Queue is a reusable ring with a bound handler, the hot-path idiom the
// engine uses: the callback is bound once, per-event state rides in the
// pointer argument.
type Queue struct {
	buf     []*Item
	scratch []byte
	handler func(any)
}

// Push runs on the hot path without steady-state allocation.
//
//ccsvm:hotpath
func Push(q *Queue, v *Item) {
	q.buf = append(q.buf, v) //ccsvm:allocok // grows to a high-water mark, then reuses
	q.handler(v)             // *Item is pointer-shaped: no boxing
}

// Pop reuses the backing array and hands the item to a bound closure.
//
//ccsvm:hotpath
func Pop(q *Queue) *Item {
	if len(q.buf) == 0 {
		return nil
	}
	v := q.buf[len(q.buf)-1]
	q.buf = q.buf[:len(q.buf)-1]
	return v
}

// Reset is hot but its refill is a reviewed amortized allocation, annotated
// on the previous line.
//
//ccsvm:hotpath
func Reset(q *Queue, n int) {
	if cap(q.scratch) < n {
		//ccsvm:allocok // one-time growth to the largest request seen
		q.scratch = make([]byte, n)
	}
	q.scratch = q.scratch[:n]
}

// Check panics on a corrupt queue; the crash path may allocate.
//
//ccsvm:hotpath
func Check(q *Queue, name string) {
	if q.buf == nil {
		panic("allocclean: uninitialized queue " + name)
	}
	f := func(x int) int { return x + 1 } // captures nothing: a static value
	_ = f(1)
}

// Constants fold at compile time; no allocation.
//
//ccsvm:hotpath
func Greeting() string {
	const hello = "hello, " + "world"
	return hello
}
