// Package det exercises the determinism analyzer: wall-clock reads, global
// math/rand, stray goroutines, and order-sensitive map iteration are all
// flagged in a package annotated deterministic.
//
//ccsvm:deterministic
package det

import (
	"math/rand"
	"sort"
	"time"
)

// Clock reads wall-clock time.
func Clock() time.Duration {
	t := time.Now()      // want "wall-clock read time.Now"
	return time.Since(t) // want "wall-clock read time.Since"
}

// Roll uses the globally seeded math/rand source.
func Roll() int {
	return rand.Intn(6) // want "global math/rand"
}

// RollSeeded uses an explicitly seeded local source and is fine.
func RollSeeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6)
}

// Spawn launches a goroutine outside the blessed launch path.
func Spawn(fn func()) {
	go fn() // want "goroutine launched in a deterministic package"
}

// launch is the blessed goroutine launch point.
//
//ccsvm:launchpath
func launch(fn func()) {
	done := make(chan struct{})
	go func() {
		fn()
		close(done)
	}()
	<-done
}

// Sum iterates a map with an order-sensitive body: it appends to a slice
// declared outside the loop, so the result depends on iteration order.
func Sum(m map[int]int) []int {
	var keys []int
	for k := range m { // want "iteration over map"
		keys = append(keys, k)
	}
	return keys
}

// SumInvariant carries the same shape but is annotated order-invariant
// (integer addition commutes), so it is not flagged.
func SumInvariant(m map[int]int) int {
	total := 0
	//ccsvm:orderinvariant
	for _, v := range m {
		total += v
	}
	return total
}

// SortedKeys materialises and sorts the keys before acting on them; the body
// of the map range only builds the key slice, which is still order-sensitive,
// so the canonical clean form annotates the collection loop.
func SortedKeys(m map[int]string) []string {
	keys := make([]int, 0, len(m))
	//ccsvm:orderinvariant
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// ReadOnly has no side effects in the loop body and is not flagged.
func ReadOnly(m map[int]int) {
	for k := range m {
		local := k * 2
		_ = local
	}
}

var _ = launch
