// Package pool exercises the poolownership analyzer: leaked, dropped and
// double-released pooled objects are flagged; release-on-every-path and
// ownership transfer are not.
package pool

// Msg is the pooled object.
type Msg struct {
	ID   int
	live bool
}

// Pool recycles Msgs.
type Pool struct {
	free []*Msg
}

// Get hands out a pooled Msg; the caller owns it.
//
//ccsvm:pooled get
func (p *Pool) Get() *Msg {
	if n := len(p.free); n > 0 {
		m := p.free[n-1]
		p.free = p.free[:n-1]
		return m
	}
	return &Msg{}
}

// Put returns a Msg to the pool.
//
//ccsvm:pooled put
func (p *Pool) Put(m *Msg) {
	p.free = append(p.free, m)
}

// sink keeps the leaked Msg reachable so Leak compiles.
var sink *Msg

// Leak binds a Msg and never releases or transfers it afterwards.
func Leak(p *Pool) {
	sink = p.Get() // want "never released or transferred"
}

// Drop discards the pooled result outright.
func Drop(p *Pool) {
	p.Get() // want "dropped"
}

// DropBlank discards it via the blank identifier.
func DropBlank(p *Pool) {
	_ = p.Get() // want "dropped"
}

// BranchLeak releases on one path but not the other.
func BranchLeak(p *Pool, c bool) {
	m := p.Get() // want "may leak"
	if c {
		p.Put(m)
	}
}

// DoubleRelease puts the same Msg back twice.
func DoubleRelease(p *Pool, m *Msg) {
	p.Put(m)
	p.Put(m) // want "double release"
}

// AllPaths releases on every path and is clean.
func AllPaths(p *Pool, c bool) {
	m := p.Get()
	if c {
		m.ID++
		p.Put(m)
		return
	}
	p.Put(m)
}

// TransferReturn hands ownership to the caller.
func TransferReturn(p *Pool) *Msg {
	m := p.Get()
	m.live = true
	return m
}

// TransferSend hands ownership to the channel receiver.
func TransferSend(p *Pool, ch chan *Msg) {
	m := p.Get()
	ch <- m
}

// TransferCall hands ownership to the callee.
func TransferCall(p *Pool, deliver func(*Msg)) {
	m := p.Get()
	deliver(m)
}

// ConvergeDouble releases on one branch and then again unconditionally: on
// the c path the Msg is released twice.
func ConvergeDouble(p *Pool, m *Msg, c bool) {
	if c {
		p.Put(m)
	}
	p.Put(m) // want "double release"
}

// LoopDouble releases the same Msg on every iteration of a loop: the second
// iteration releases an already-released object. The zero-iteration path also
// leaks it.
func LoopDouble(p *Pool, n int) {
	m := p.Get() // want "may leak"
	for i := 0; i < n; i++ {
		p.Put(m) // want "double release"
	}
}

// DeferDouble registers a deferred release and then releases explicitly too.
func DeferDouble(p *Pool) {
	m := p.Get()
	defer p.Put(m)
	p.Put(m) // want "double release"
}

// DeferInLoop registers one deferred release per iteration; every iteration
// after the first releases an already-released Msg at function exit.
func DeferInLoop(p *Pool, m *Msg, n int) {
	for i := 0; i < n; i++ {
		defer p.Put(m) // want "double release"
	}
}

// SwitchLeak consumes the Msg on the listed cases but not when the switch
// falls through without a match.
func SwitchLeak(p *Pool, k int) {
	m := p.Get() // want "may leak"
	switch k {
	case 0:
		p.Put(m)
	case 1:
		sink = m
	}
}

// LoopLeak consumes the Msg only inside a loop that may run zero times.
func LoopLeak(p *Pool, xs []int, ch chan *Msg) {
	m := p.Get() // want "may leak"
	for range xs {
		ch <- m
	}
}
