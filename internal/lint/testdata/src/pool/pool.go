// Package pool exercises the poolownership analyzer: leaked, dropped and
// double-released pooled objects are flagged; release-on-every-path and
// ownership transfer are not.
package pool

// Msg is the pooled object.
type Msg struct {
	ID   int
	live bool
}

// Pool recycles Msgs.
type Pool struct {
	free []*Msg
}

// Get hands out a pooled Msg; the caller owns it.
//
//ccsvm:pooled get
func (p *Pool) Get() *Msg {
	if n := len(p.free); n > 0 {
		m := p.free[n-1]
		p.free = p.free[:n-1]
		return m
	}
	return &Msg{}
}

// Put returns a Msg to the pool.
//
//ccsvm:pooled put
func (p *Pool) Put(m *Msg) {
	p.free = append(p.free, m)
}

// sink keeps the leaked Msg reachable so Leak compiles.
var sink *Msg

// Leak binds a Msg and never releases or transfers it afterwards.
func Leak(p *Pool) {
	sink = p.Get() // want "never released or transferred"
}

// Drop discards the pooled result outright.
func Drop(p *Pool) {
	p.Get() // want "dropped"
}

// DropBlank discards it via the blank identifier.
func DropBlank(p *Pool) {
	_ = p.Get() // want "dropped"
}

// BranchLeak releases on one path but not the other.
func BranchLeak(p *Pool, c bool) {
	m := p.Get() // want "may leak"
	if c {
		p.Put(m)
	}
}

// DoubleRelease puts the same Msg back twice.
func DoubleRelease(p *Pool, m *Msg) {
	p.Put(m)
	p.Put(m) // want "double release"
}

// AllPaths releases on every path and is clean.
func AllPaths(p *Pool, c bool) {
	m := p.Get()
	if c {
		m.ID++
		p.Put(m)
		return
	}
	p.Put(m)
}

// TransferReturn hands ownership to the caller.
func TransferReturn(p *Pool) *Msg {
	m := p.Get()
	m.live = true
	return m
}

// TransferSend hands ownership to the channel receiver.
func TransferSend(p *Pool, ch chan *Msg) {
	m := p.Get()
	ch <- m
}

// TransferCall hands ownership to the callee.
func TransferCall(p *Pool, deliver func(*Msg)) {
	m := p.Get()
	deliver(m)
}
