// Package state exercises the statesafe analyzer: //ccsvm:state root types
// whose reachable field closure holds func values, channels, unsafe.Pointer
// or sync primitives are flagged, with the offending access path.
package state

import (
	"sync"
	"unsafe"
)

// HasFunc keeps a callback, which cannot be serialized.
//
//ccsvm:state
type HasFunc struct { // want "HasFunc.step holds a func value"
	Tick uint64
	step func()
}

// HasChan keeps a channel.
//
//ccsvm:state
type HasChan struct { // want "HasChan.stop holds a channel"
	stop chan struct{}
}

// HasUnsafe keeps a raw pointer.
//
//ccsvm:state
type HasUnsafe struct { // want "HasUnsafe.raw holds unsafe.Pointer"
	raw unsafe.Pointer
}

// HasMutex embeds a sync primitive.
//
//ccsvm:state
type HasMutex struct { // want "HasMutex.mu holds sync.Mutex"
	mu sync.Mutex
}

// entry is reachable only through containers.
type entry struct {
	fire func()
}

// Deep reaches a func value through a map of slices of pointers.
//
//ccsvm:state
type Deep struct { // want "Deep.byLine\\[value\\]\\[\\].fire holds a func value"
	byLine map[uint64][]*entry
}

// Ring reaches a channel through an array element.
//
//ccsvm:state
type Ring struct { // want "Ring.lanes\\[\\].ch holds a channel"
	lanes [4]struct {
		ch chan int
	}
}
