// Package dirclean uses every directive in its documented position; the
// hygiene analyzer must stay silent.
//
//ccsvm:deterministic
package dirclean

// Buf is a pooled object.
type Buf struct {
	n int
}

// Pool recycles Bufs.
type Pool struct {
	free []*Buf
}

// Get hands out a pooled Buf.
//
//ccsvm:pooled get
func (p *Pool) Get() *Buf {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		return b
	}
	return &Buf{}
}

// Put returns a Buf to the pool.
//
//ccsvm:pooled put
func (p *Pool) Put(b *Buf) {
	p.free = append(p.free, b)
}

// Source is an allocator interface with annotated methods.
type Source interface {
	// Acquire hands out a pooled Buf.
	//
	//ccsvm:pooled get
	Acquire() *Buf
}

// Raise may only run in engine context.
//
//ccsvm:enginectx
func Raise() {}

// Spawn registers fn as a workload body.
//
//ccsvm:threadentry
func Spawn(fn func()) {
	fn()
}

// Launch is the blessed goroutine launch point.
//
//ccsvm:launchpath
func Launch(fn func()) {
	go fn()
}

// Drain is on the hot path and iterates a map whose effects commute.
//
//ccsvm:hotpath
func Drain(m map[int]int) int {
	total := 0
	//ccsvm:orderinvariant
	for _, v := range m {
		total += v
	}
	return total
}
