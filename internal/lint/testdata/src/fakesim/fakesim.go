// Package sim is an impostor: it shares the real engine package's name and
// an Engine type with an At method, but lives at a different import path.
// The hotpath analyzer resolves the receiver by object identity, so the
// capturing closure below must NOT be reported.
package sim

// Engine mimics the real scheduling API.
type Engine struct {
	queue []func()
}

// At enqueues a callback; unlike the real engine, this one is not
// allocation-sensitive.
func (e *Engine) At(when uint64, fn func()) {
	e.queue = append(e.queue, fn)
}

// Drive is hot, but schedules on the impostor engine: no finding.
//
//ccsvm:hotpath
func Drive(e *Engine, n int) {
	e.At(1, func() { _ = n })
}
