// Package ectxapi models the engine/thread API surface for the enginectx
// fixtures: a thread-entry registration API and an engine-context-only call,
// in a separate package so the test exercises cross-package fact flow.
package ectxapi

// NewThread registers fn as the body of a workload goroutine.
//
//ccsvm:threadentry
func NewThread(fn func()) {
	fn()
}

// RaiseInterrupt may only be called in engine context.
//
//ccsvm:enginectx
func RaiseInterrupt() {}

// Defer is an ordinary callback API; its arguments run in engine context, so
// they are not workload bodies.
func Defer(fn func()) {
	fn()
}
