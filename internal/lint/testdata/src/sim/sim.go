// Package sim models the engine scheduling API for the hotpath fixtures; the
// analyzer matches the receiver type Engine in a package named sim, so these
// methods stand in for the real engine.
package sim

// Time is a simulated timestamp.
type Time int64

// Duration is a simulated time delta.
type Duration int64

// Event is a scheduled callback.
type Event struct {
	when Time
}

// Engine is the event-driven core.
type Engine struct {
	now Time
}

// At schedules fn at an absolute time.
func (e *Engine) At(t Time, fn func()) *Event {
	_ = fn
	return &Event{when: t}
}

// AtArg schedules fn(arg) at an absolute time without capturing.
func (e *Engine) AtArg(t Time, fn func(any), arg any) *Event {
	_ = fn
	_ = arg
	return &Event{when: t}
}

// Schedule schedules fn after a delta.
func (e *Engine) Schedule(d Duration, fn func()) *Event {
	_ = fn
	return &Event{when: e.now + Time(d)}
}

// ScheduleArg schedules fn(arg) after a delta.
func (e *Engine) ScheduleArg(d Duration, fn func(any), arg any) *Event {
	_ = fn
	_ = arg
	return &Event{when: e.now + Time(d)}
}
