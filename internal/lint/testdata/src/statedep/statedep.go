// Package statedep provides checkpoint-safe building blocks for the
// stateclean fixture, exercising cross-package //ccsvm:stateok fact flow.
package statedep

// Line is plain serializable data.
type Line struct {
	Addr  uint64
	Dirty bool
}

// Pool recycles Lines. Its allocator hook is rebuilt on restore, so the
// field is waived — importing packages must honor the waiver through the
// exported fact.
type Pool struct {
	Free []*Line

	//ccsvm:stateok // rebuilt on restore
	alloc func() *Line
}
