// Package linttest is a small analysistest-style harness for the ccsvm lint
// suite: it loads golden packages from a testdata/src tree, runs one analyzer
// over them, and checks the produced diagnostics against // want "regexp"
// comments in the fixtures. It mirrors golang.org/x/tools/go/analysis/
// analysistest closely enough that the fixtures would work under the real
// harness unchanged.
package linttest

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"ccsvm/internal/lint"
	"ccsvm/internal/lint/analysis"
	"ccsvm/internal/lint/load"
)

// wantRE matches one // want comment; quoted regexps follow it.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// quotedRE matches one Go-quoted string.
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// Run loads the named packages (directories under dir/testdata/src), runs the
// analyzer over them and their intra-testdata dependencies, and reports any
// mismatch between produced diagnostics and // want expectations as test
// errors.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	root := filepath.Join(dir, "testdata", "src")
	loader := load.New(load.Config{Root: root})
	loaded, err := loader.Load(pkgs...)
	if err != nil {
		t.Fatalf("loading %v from %s: %v", pkgs, root, err)
	}
	findings, err := lint.Run(loader.Fset(), loaded, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, loader.Fset(), loaded)
	matchedWant := make(map[*want]bool)
	for _, f := range findings {
		key := posKey{f.Pos.Filename, f.Pos.Line}
		matched := false
		for _, w := range wants[key] {
			if !matchedWant[w] && w.re.MatchString(f.Message) {
				matchedWant[w] = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", f.Pos.Filename, f.Pos.Line, f.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !matchedWant[w] {
				t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, w.re)
			}
		}
	}
}

type posKey struct {
	file string
	line int
}

type want struct {
	re *regexp.Regexp
}

// collectWants scans every fixture file for // want comments. The expectation
// applies to the line the comment sits on.
func collectWants(t *testing.T, fset *token.FileSet, pkgs []*load.Package) map[posKey][]*want {
	t.Helper()
	wants := make(map[posKey][]*want)
	seen := make(map[string]bool)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			name := fset.Position(file.Pos()).Filename
			if seen[name] {
				continue
			}
			seen[name] = true
			data, err := os.ReadFile(name)
			if err != nil {
				t.Fatalf("reading fixture: %v", err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				m := wantRE.FindStringSubmatch(line)
				if m == nil {
					continue
				}
				for _, q := range quotedRE.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want string %s: %v", name, i+1, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", name, i+1, pat, err)
					}
					key := posKey{name, i + 1}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants
}
