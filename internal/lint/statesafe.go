package lint

import (
	"fmt"
	"go/types"
	"sort"

	"ccsvm/internal/lint/analysis"
)

// StateSafe certifies machine-state root types for checkpointing (ROADMAP
// item 2): a type annotated //ccsvm:state must have a reachable field
// closure free of func values, channels, unsafe.Pointer and sync primitives
// — anything that cannot be serialized and restored deterministically.
// Individual fields that are rebuilt on restore rather than serialized
// (bound callbacks, free lists' allocator hooks) are waived with
// //ccsvm:stateok; waivers are exported as facts so closure walks honor them
// across package boundaries. Interface-typed fields stop the walk: their
// dynamic contents are a runtime property the checkpoint layer must handle,
// not a static one.
var StateSafe = &analysis.Analyzer{
	Name: "statesafe",
	Doc: "require the reachable field closure of //ccsvm:state types to be free of\n" +
		"func, chan, unsafe.Pointer and sync primitives (checkpoint safety)",
	Run: runStateSafe,
}

// stateOkFact marks a struct field as waived from statesafe closure walks in
// importing packages.
type stateOkFact struct{}

// AFact implements analysis.Fact.
func (*stateOkFact) AFact() {}

func runStateSafe(pass *analysis.Pass) (any, error) {
	ann := ParseAnnotations(pass.Fset, pass.Files, pass.TypesInfo)
	var roots []*types.TypeName
	for obj, dirs := range ann.ByObj {
		for _, d := range dirs {
			switch d.Kind {
			case DirStateOk:
				if obj != nil {
					pass.ExportObjectFact(obj, &stateOkFact{})
				}
			case DirState:
				if tn, ok := obj.(*types.TypeName); ok {
					roots = append(roots, tn)
				}
			}
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Pos() < roots[j].Pos() })
	sc := &stateChecker{pass: pass, ann: ann}
	for _, root := range roots {
		sc.checkRoot(root)
	}
	return nil, nil
}

type stateChecker struct {
	pass *analysis.Pass
	ann  *Annotations
}

// checkRoot walks the reachable field closure of one //ccsvm:state type and
// reports every forbidden leaf, annotated with its access path from the
// root.
func (sc *stateChecker) checkRoot(root *types.TypeName) {
	visited := make(map[types.Type]bool)
	var walk func(t types.Type, path string)
	walk = func(t types.Type, path string) {
		t = types.Unalias(t)
		if visited[t] {
			return
		}
		visited[t] = true

		if named, ok := t.(*types.Named); ok {
			if pkg := named.Obj().Pkg(); pkg != nil {
				switch pkg.Path() {
				case "sync", "sync/atomic":
					sc.reportLeaf(root, path, fmt.Sprintf("%s.%s", pkg.Name(), named.Obj().Name()))
					return
				}
			}
		}

		switch u := t.Underlying().(type) {
		case *types.Signature:
			sc.reportLeaf(root, path, "a func value")
		case *types.Chan:
			sc.reportLeaf(root, path, "a channel")
		case *types.Basic:
			if u.Kind() == types.UnsafePointer {
				sc.reportLeaf(root, path, "unsafe.Pointer")
			}
		case *types.Interface:
			// Dynamic contents are the checkpoint layer's runtime concern;
			// the static walk stops here.
		case *types.Pointer:
			walk(u.Elem(), path)
		case *types.Slice:
			walk(u.Elem(), path+"[]")
		case *types.Array:
			walk(u.Elem(), path+"[]")
		case *types.Map:
			walk(u.Key(), path+"[key]")
			walk(u.Elem(), path+"[value]")
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				f := u.Field(i)
				if sc.waived(f) {
					continue
				}
				walk(f.Type(), path+"."+f.Name())
			}
		}
	}
	walk(root.Type(), root.Name())
}

// reportLeaf emits one forbidden-leaf finding at the root type's position.
func (sc *stateChecker) reportLeaf(root *types.TypeName, path, what string) {
	sc.pass.Reportf(root.Pos(),
		"//ccsvm:state type %s is not checkpoint-safe: %s holds %s "+
			"(serialize-and-restore is impossible; annotate the field //ccsvm:stateok "+
			"if it is rebuilt on restore)",
		root.Name(), path, what)
}

// waived reports whether a struct field carries a //ccsvm:stateok waiver,
// locally or exported by the field's own package.
func (sc *stateChecker) waived(f *types.Var) bool {
	if sc.ann.Has(f, DirStateOk) {
		return true
	}
	var fact stateOkFact
	return sc.pass.ImportObjectFact(f, &fact)
}
