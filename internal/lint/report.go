package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"

	"ccsvm/internal/lint/analysis"
)

// This file renders suite findings for machine consumption. Two formats are
// supported beyond the human-readable text lines the driver prints:
//
//   - JSON: a small, stable schema for scripting against lint output
//     (jq-style triage, trend dashboards).
//   - SARIF 2.1.0: the static-analysis interchange format GitHub code
//     scanning and most review tooling ingest, so ccsvm-lint findings can be
//     annotated onto pull requests without a bespoke adapter.
//
// Both writers emit a complete document even when there are no findings, so
// a clean run uploads a valid (empty) report artifact.

// jsonReport is the top-level document emitted by WriteJSON.
type jsonReport struct {
	// Findings holds one entry per diagnostic, in the driver's sorted order
	// (file, line, column, message).
	Findings []jsonFinding `json:"findings"`
	// Count duplicates len(findings) for cheap shell consumption.
	Count int `json:"count"`
}

// jsonFinding is one diagnostic in the JSON report.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// WriteJSON renders findings as a single JSON document. Paths are emitted
// slash-separated and, when they fall under root, relative to it, so reports
// are stable across checkouts; pass root == "" to keep paths verbatim.
func WriteJSON(w io.Writer, findings []Finding, root string) error {
	doc := jsonReport{Findings: make([]jsonFinding, 0, len(findings)), Count: len(findings)}
	for _, f := range findings {
		doc.Findings = append(doc.Findings, jsonFinding{
			Analyzer: f.Analyzer,
			File:     relPath(root, f.Pos.Filename),
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// SARIF 2.1.0 document skeleton — only the fields the format requires plus
// the ones review tooling actually reads (rule metadata, result locations).
type sarifDoc struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders findings as a SARIF 2.1.0 document with one run whose
// rules are the given analyzers (so rule metadata is present even for
// analyzers with no findings). Paths are relativized against root as in
// WriteJSON. Every finding is reported at level "error": the suite enforces
// invariants, it has no warnings.
func WriteSARIF(w io.Writer, findings []Finding, analyzers []*analysis.Analyzer, root string) error {
	rules := make([]sarifRule, 0, len(analyzers))
	ruleIndex := make(map[string]int, len(analyzers))
	for i, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
		ruleIndex[a.Name] = i
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		idx, ok := ruleIndex[f.Analyzer]
		if !ok {
			// A finding from an analyzer outside the rule table would make
			// ruleIndex lie; fail loudly rather than emit a corrupt report.
			return fmt.Errorf("lint: finding from unknown analyzer %q", f.Analyzer)
		}
		results = append(results, sarifResult{
			RuleID:    f.Analyzer,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: relPath(root, f.Pos.Filename)},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}
	doc := sarifDoc{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "ccsvm-lint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// relPath rewrites path relative to root (when it falls under it) and
// slash-separates it, yielding checkout-independent report paths.
func relPath(root, path string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, path); err == nil && filepath.IsLocal(rel) {
			path = rel
		}
	}
	return filepath.ToSlash(path)
}
