package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"ccsvm/internal/lint/analysis"
)

func sampleFindings() []Finding {
	return []Finding{
		{
			Analyzer: "hotpath",
			Pos:      token.Position{Filename: "/repo/internal/sim/engine.go", Line: 10, Column: 2},
			Message:  "capturing closure",
		},
		{
			Analyzer: "statesafe",
			Pos:      token.Position{Filename: "/elsewhere/x.go", Line: 3, Column: 1},
			Message:  "holds a channel",
		},
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sampleFindings(), "/repo"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Findings []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Message  string `json:"message"`
		} `json:"findings"`
		Count int `json:"count"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.Count != 2 || len(doc.Findings) != 2 {
		t.Fatalf("count = %d, len = %d, want 2, 2", doc.Count, len(doc.Findings))
	}
	// A path under the root is relativized; one outside stays absolute.
	if got := doc.Findings[0].File; got != "internal/sim/engine.go" {
		t.Errorf("in-root path = %q, want internal/sim/engine.go", got)
	}
	if got := doc.Findings[1].File; got != "/elsewhere/x.go" {
		t.Errorf("out-of-root path = %q, want /elsewhere/x.go", got)
	}
	if doc.Findings[0].Analyzer != "hotpath" || doc.Findings[0].Line != 10 || doc.Findings[0].Column != 2 {
		t.Errorf("finding fields mangled: %+v", doc.Findings[0])
	}
}

func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil, ""); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Findings []any `json:"findings"`
		Count    int   `json:"count"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Count != 0 || doc.Findings == nil {
		t.Fatalf("empty report must have count 0 and a present findings array; got %s", buf.String())
	}
}

func TestWriteSARIF(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, sampleFindings(), Analyzers(), "/repo"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.Version != "2.1.0" || !strings.Contains(doc.Schema, "sarif-2.1.0") {
		t.Fatalf("version/schema = %q / %q", doc.Version, doc.Schema)
	}
	if len(doc.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(doc.Runs))
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name != "ccsvm-lint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(Analyzers()) {
		t.Errorf("rules = %d, want one per analyzer (%d)", len(run.Tool.Driver.Rules), len(Analyzers()))
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(run.Results))
	}
	for _, r := range run.Results {
		// ruleIndex must point at the rule named by ruleId — code-scanning
		// consumers resolve metadata through the index, not the ID.
		if got := run.Tool.Driver.Rules[r.RuleIndex].ID; got != r.RuleID {
			t.Errorf("ruleIndex %d resolves to %q, want %q", r.RuleIndex, got, r.RuleID)
		}
		if r.Level != "error" {
			t.Errorf("level = %q, want error", r.Level)
		}
		if len(r.Locations) != 1 {
			t.Fatalf("locations = %d, want 1", len(r.Locations))
		}
	}
	if got := run.Results[0].Locations[0].PhysicalLocation.ArtifactLocation.URI; got != "internal/sim/engine.go" {
		t.Errorf("uri = %q, want internal/sim/engine.go", got)
	}
	if got := run.Results[0].Locations[0].PhysicalLocation.Region.StartLine; got != 10 {
		t.Errorf("startLine = %d, want 10", got)
	}
}

func TestWriteSARIFUnknownAnalyzer(t *testing.T) {
	var buf bytes.Buffer
	findings := []Finding{{Analyzer: "nosuch", Message: "x"}}
	if err := WriteSARIF(&buf, findings, []*analysis.Analyzer{HotPath}, ""); err == nil {
		t.Fatal("want error for a finding from an analyzer missing from the rule table")
	}
}
