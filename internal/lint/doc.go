// Package lint is the ccsvm static-analysis suite: compile-time enforcement
// of the invariants the simulator's correctness and performance rest on,
// which until this package existed lived only in prose and runtime stress
// tests.
//
// The suite contains six analyzers plus a directive validator, all driven by
// //ccsvm: annotations in the source (see ARCHITECTURE.md "Static
// enforcement" for the contributor-facing description):
//
//   - determinism: packages annotated //ccsvm:deterministic must not read the
//     wall clock, use the global math/rand source, launch goroutines outside
//     the blessed launch path, or iterate maps with order-sensitive bodies.
//   - poolownership: objects obtained from //ccsvm:pooled get sources must be
//     released or transferred on every control-flow path, and never released
//     twice — checked flow-sensitively over per-function control-flow graphs
//     (internal/lint/cfg) with a dataflow solver (internal/lint/dataflow), so
//     branches, loops, defers and converging paths are tracked precisely.
//   - enginectx: functions annotated //ccsvm:enginectx must not be reachable
//     from workload-goroutine entry points (arguments of //ccsvm:threadentry
//     APIs); calling them from a workload deadlocks the machine.
//   - hotpath: functions annotated //ccsvm:hotpath must not pass capturing
//     closures to the engine's At/Schedule family (the closure-free
//     contract that keeps the hot paths allocation-free).
//   - allocfree: functions annotated //ccsvm:hotpath must not contain
//     heap-allocating constructs at all — make/new/append, slice, map and
//     escaping composite literals, capturing closures, interface boxing of
//     non-pointer values, string concatenation and fmt calls — unless a
//     reviewed //ccsvm:allocok annotation marks the line as amortized.
//   - statesafe: types annotated //ccsvm:state (machine-state checkpoint
//     roots) must have a reachable field closure free of func values,
//     channels, unsafe.Pointer and sync primitives; fields rebuilt on
//     restore are waived with //ccsvm:stateok.
//   - ccsvmdirective: malformed, unknown or misplaced //ccsvm: directives are
//     errors, so the vocabulary cannot silently rot.
//
// cmd/ccsvm-lint runs the suite over the repository and is wired into CI; the
// analyzers are built on the stdlib-only framework in internal/lint/analysis
// and the loader in internal/lint/load, and findings can be emitted as text,
// JSON or SARIF for machine consumption.
package lint
