package lint

import (
	"go/ast"
	"go/types"

	"ccsvm/internal/lint/analysis"
)

// Determinism reports nondeterminism hazards in packages annotated
// //ccsvm:deterministic: wall-clock reads, use of the global math/rand
// source, goroutine launches outside a //ccsvm:launchpath function, and
// iteration over maps whose loop body has side effects (which then occur in
// Go's randomized map order). Same-seed runs of the simulator must be
// bit-identical — the determinism contract of ARCHITECTURE.md — and each of
// these constructs has broken it in a past PR.
var Determinism = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock, global rand, stray goroutines and order-sensitive map iteration\n" +
		"in packages annotated //ccsvm:deterministic",
	Run: runDeterminism,
}

// wallClockFuncs are the time package functions that read the host clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// randConstructors are the math/rand functions that build an explicitly
// seeded generator; everything else at package level draws from the global
// source, whose sequence depends on what else ran before.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *analysis.Pass) (any, error) {
	ann := ParseAnnotations(pass.Fset, pass.Files, pass.TypesInfo)
	if !ann.PkgHas(DirDeterministic) {
		return nil, nil
	}
	for _, file := range pass.Files {
		var funcStack []*ast.FuncDecl
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				funcStack = append(funcStack, n)
				if n.Body != nil {
					ast.Inspect(n.Body, walk)
				}
				funcStack = funcStack[:len(funcStack)-1]
				return false
			case *ast.GoStmt:
				if !enclosingHas(pass, ann, funcStack, DirLaunchPath) {
					pass.Reportf(n.Pos(), "goroutine launched in a deterministic package outside a "+
						"//ccsvm:launchpath function; simulated code must stay on the engine's thread")
				}
			case *ast.Ident:
				checkDeterminismIdent(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, ann, n)
			}
			return true
		}
		ast.Inspect(file, walk)
	}
	return nil, nil
}

// enclosingHas reports whether the innermost enclosing declared function
// carries the given directive.
func enclosingHas(pass *analysis.Pass, ann *Annotations, stack []*ast.FuncDecl, kind string) bool {
	if len(stack) == 0 {
		return false
	}
	obj := pass.TypesInfo.Defs[stack[len(stack)-1].Name]
	return ann.Has(obj, kind)
}

// checkDeterminismIdent flags references to wall-clock and global-rand
// functions. Working on identifier uses (rather than call expressions) also
// catches the functions being passed as values.
func checkDeterminismIdent(pass *analysis.Pass, id *ast.Ident) {
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods are fine; the hazards are package-level functions
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			pass.Reportf(id.Pos(), "wall-clock read time.%s in a deterministic package; "+
				"use the engine's simulated clock", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			pass.Reportf(id.Pos(), "global math/rand source (%s.%s) in a deterministic package; "+
				"draw from a seeded *rand.Rand instead", fn.Pkg().Name(), fn.Name())
		}
	}
}

// checkMapRange flags range statements over maps whose body has side effects:
// the body then runs in Go's randomized iteration order, and anything it does
// to shared state (schedule events, send messages, append to slices) wobbles
// between same-seed runs. A //ccsvm:orderinvariant directive on the statement
// suppresses the check — a reviewed claim that the body's effects commute.
func checkMapRange(pass *analysis.Pass, ann *Annotations, rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	if ann.OrderInvariantAt(pass.Fset, rng.Pos()) {
		return
	}
	if n, what := firstSideEffect(pass, rng); n != nil {
		pass.Reportf(rng.Pos(), "iteration over map %s has an order-sensitive body (%s); "+
			"iterate a sorted key slice, or annotate //ccsvm:orderinvariant if the effects commute",
			exprString(rng.X), what)
	}
}

// firstSideEffect scans a map-range body for constructs whose effect depends
// on iteration order: calls (other than a few pure builtins and conversions),
// writes to variables declared outside the loop, channel operations, and
// control transfers out of the loop.
func firstSideEffect(pass *analysis.Pass, rng *ast.RangeStmt) (ast.Node, string) {
	var found ast.Node
	var desc string
	isLoopLocal := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		if !ok {
			return false
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			obj = pass.TypesInfo.Defs[id]
		}
		return obj != nil && obj.Pos() >= rng.Pos() && obj.Pos() < rng.End()
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPureBuiltinOrConversion(pass, n) {
				return true
			}
			found, desc = n, "it calls "+exprString(n.Fun)
			return false
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if !isLoopLocal(lhs) && !isBlank(lhs) {
					found, desc = n, "it writes "+exprString(lhs)+" declared outside the loop"
					return false
				}
			}
		case *ast.IncDecStmt:
			if !isLoopLocal(n.X) {
				found, desc = n, "it writes "+exprString(n.X)+" declared outside the loop"
				return false
			}
		case *ast.SendStmt:
			found, desc = n, "it sends on a channel"
			return false
		case *ast.GoStmt:
			found, desc = n, "it launches a goroutine"
			return false
		case *ast.DeferStmt:
			found, desc = n, "it defers a call"
			return false
		case *ast.ReturnStmt:
			found, desc = n, "it returns from inside the loop"
			return false
		case *ast.BranchStmt:
			if n.Label != nil {
				found, desc = n, "it branches to an outer label"
				return false
			}
		}
		return true
	})
	if found == nil {
		return nil, ""
	}
	return found, desc
}

// isPureBuiltinOrConversion reports whether the call cannot have an
// order-sensitive effect: len/cap/min/max builtins and type conversions.
func isPureBuiltinOrConversion(pass *analysis.Pass, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap", "min", "max":
				return true
			}
			return false
		}
	}
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return true
	}
	return false
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// exprString renders a short expression for diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.UnaryExpr:
		return e.Op.String() + exprString(e.X)
	default:
		return "expression"
	}
}
