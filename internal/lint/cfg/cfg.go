// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies for the ccsvm lint suite, using only the standard library.
// It is a small stand-in for golang.org/x/tools/go/cfg with the features the
// flow-sensitive analyzers need: branch and loop edges (if/for/range/switch/
// type-switch/select, break/continue/goto with labels, fallthrough), a
// distinguished normal-exit block fed by returns and by falling off the end,
// and a distinguished panic-exit block fed by statements the caller
// classifies as non-returning.
//
// Deferred calls are deliberately kept in the block where the defer statement
// executes (registration order), not duplicated onto the exit edges: the
// dataflow clients interpret a DeferStmt's effect at its registration point,
// which is sound for the must-release and double-release analyses this
// package serves (a registered release is guaranteed to run exactly once per
// registration, on every exit).
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Block is one straight-line run of AST nodes with no internal control flow.
type Block struct {
	// Index is the block's position in CFG.Blocks, assigned in creation
	// order (entry first); dataflow results are indexed by it.
	Index int
	// Nodes holds statements and branch-condition expressions in execution
	// order. Compound statements never appear whole: an if contributes its
	// Init and Cond here and its branches elsewhere.
	Nodes []ast.Node
	// Succs are the possible successor blocks.
	Succs []*Block
	// Preds are the predecessor blocks.
	Preds []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks lists every block, entry first, indexed by Block.Index.
	Blocks []*Block
	// Entry is the block control enters at the top of the body.
	Entry *Block
	// Exit is the normal-return exit: every return statement and the fall
	// off the end of the body lead here. It holds no nodes.
	Exit *Block
	// Panic is the abnormal exit fed by statements classified as
	// non-returning by Options.IsPanic. It holds no nodes.
	Panic *Block
}

// Options configures graph construction.
type Options struct {
	// IsPanic classifies a call as never returning normally (the panic
	// builtin, or panic-like helpers). An expression statement consisting of
	// such a call edges to CFG.Panic instead of falling through. Nil means
	// no calls are so classified.
	IsPanic func(*ast.CallExpr) bool
}

// New builds the control-flow graph of one function (or function literal)
// body. Nested function literals are not descended into: their bodies are
// separate functions with separate graphs.
func New(body *ast.BlockStmt, opt Options) *CFG {
	b := &builder{
		g:      &CFG{},
		opt:    opt,
		labels: make(map[string]*labelInfo),
	}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.g.Panic = b.newBlock()
	b.cur = b.g.Entry
	for _, s := range body.List {
		b.stmt(s)
	}
	b.edge(b.cur, b.g.Exit)
	return b.g
}

// labelInfo tracks one label: the block a goto to it jumps to, and (once the
// labeled statement is reached) its loop/switch break and continue targets.
type labelInfo struct {
	block      *Block
	breakTo    *Block
	continueTo *Block
}

// scope is one enclosing breakable construct on the builder's stack.
type scope struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch and select scopes
}

type builder struct {
	g   *CFG
	opt Options
	cur *Block

	scopes        []scope
	labels        map[string]*labelInfo
	pendingLabel  string
	fallthroughTo *Block
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// edge records from -> to. A nil from (no live current block) is a no-op.
func (b *builder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// takeLabel consumes the label of the innermost enclosing LabeledStmt, so
// loop and switch constructs can register labeled break/continue targets.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// labelFor returns (creating on demand) the label's info, so forward gotos
// resolve.
func (b *builder) labelFor(name string) *labelInfo {
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{block: b.newBlock()}
		b.labels[name] = li
	}
	return li
}

func (b *builder) pushScope(label string, breakTo, continueTo *Block) {
	b.scopes = append(b.scopes, scope{label: label, breakTo: breakTo, continueTo: continueTo})
	if label != "" {
		li := b.labelFor(label)
		li.breakTo, li.continueTo = breakTo, continueTo
	}
}

func (b *builder) popScope() {
	b.scopes = b.scopes[:len(b.scopes)-1]
}

// isPanicStmt reports whether the statement is a call classified as
// non-returning.
func (b *builder) isPanicStmt(s ast.Stmt) bool {
	if b.opt.IsPanic == nil {
		return false
	}
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	return ok && b.opt.IsPanic(call)
}

func (b *builder) stmt(s ast.Stmt) {
	if _, isLabeled := s.(*ast.LabeledStmt); !isLabeled {
		// Any non-loop statement consumes a pending label: `L: x := 1` makes
		// L a plain goto target.
		defer func() { b.pendingLabel = "" }()
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.takeLabel()
		for _, t := range s.List {
			b.stmt(t)
		}

	case *ast.EmptyStmt:
		// nothing

	case *ast.LabeledStmt:
		li := b.labelFor(s.Label.Name)
		b.edge(b.cur, li.block)
		b.cur = li.block
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)

	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.edge(b.cur, b.g.Exit)
		b.cur = b.newBlock()

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s)

	case *ast.RangeStmt:
		b.rangeStmt(s)

	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, nil, s.Body, true)

	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Assign, s.Body, false)

	case *ast.SelectStmt:
		b.selectStmt(s)

	default:
		// Assignments, declarations, sends, inc/dec, defer, go, and plain
		// expression statements are straight-line nodes.
		b.cur.Nodes = append(b.cur.Nodes, s)
		if b.isPanicStmt(s) {
			b.edge(b.cur, b.g.Panic)
			b.cur = b.newBlock()
		}
	}
}

func (b *builder) branch(s *ast.BranchStmt) {
	var to *Block
	switch s.Tok {
	case token.BREAK:
		if s.Label != nil {
			to = b.labelFor(s.Label.Name).breakTo
		} else {
			for i := len(b.scopes) - 1; i >= 0; i-- {
				if b.scopes[i].breakTo != nil {
					to = b.scopes[i].breakTo
					break
				}
			}
		}
	case token.CONTINUE:
		if s.Label != nil {
			to = b.labelFor(s.Label.Name).continueTo
		} else {
			for i := len(b.scopes) - 1; i >= 0; i-- {
				if b.scopes[i].continueTo != nil {
					to = b.scopes[i].continueTo
					break
				}
			}
		}
	case token.GOTO:
		to = b.labelFor(s.Label.Name).block
	case token.FALLTHROUGH:
		to = b.fallthroughTo
	}
	if to == nil {
		// break/continue outside any scope would not compile; be lenient and
		// treat it as leaving the function.
		to = b.g.Exit
	}
	b.edge(b.cur, to)
	b.cur = b.newBlock()
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.cur.Nodes = append(b.cur.Nodes, s.Init)
	}
	b.cur.Nodes = append(b.cur.Nodes, s.Cond)
	cond := b.cur
	after := b.newBlock()

	then := b.newBlock()
	b.edge(cond, then)
	b.cur = then
	b.stmt(s.Body)
	b.edge(b.cur, after)

	if s.Else != nil {
		els := b.newBlock()
		b.edge(cond, els)
		b.cur = els
		b.stmt(s.Else)
		b.edge(b.cur, after)
	} else {
		b.edge(cond, after)
	}
	b.cur = after
}

func (b *builder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.cur.Nodes = append(b.cur.Nodes, s.Init)
	}
	head := b.newBlock()
	b.edge(b.cur, head)
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
	}
	body := b.newBlock()
	after := b.newBlock()
	b.edge(head, body)
	if s.Cond != nil {
		b.edge(head, after)
	}
	cont := head
	if s.Post != nil {
		post := b.newBlock()
		post.Nodes = append(post.Nodes, s.Post)
		b.edge(post, head)
		cont = post
	}
	b.pushScope(label, after, cont)
	b.cur = body
	b.stmt(s.Body)
	b.edge(b.cur, cont)
	b.popScope()
	b.cur = after
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.newBlock()
	b.edge(b.cur, head)
	// The range expression is (re-)read at the head; the per-iteration key
	// and value bindings carry no information the lint analyses need.
	head.Nodes = append(head.Nodes, s.X)
	body := b.newBlock()
	after := b.newBlock()
	b.edge(head, body)
	b.edge(head, after)
	b.pushScope(label, after, head)
	b.cur = body
	b.stmt(s.Body)
	b.edge(b.cur, head)
	b.popScope()
	b.cur = after
}

// switchStmt builds expression and type switches. tag and assign are the
// respective header parts; allowFallthrough is false for type switches.
func (b *builder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt, allowFallthrough bool) {
	label := b.takeLabel()
	if init != nil {
		b.cur.Nodes = append(b.cur.Nodes, init)
	}
	if tag != nil {
		b.cur.Nodes = append(b.cur.Nodes, tag)
	}
	if assign != nil {
		b.cur.Nodes = append(b.cur.Nodes, assign)
	}
	cond := b.cur
	after := b.newBlock()
	b.pushScope(label, after, nil)

	clauses := body.List
	bodies := make([]*Block, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
	}
	hasDefault := false
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		// Case expressions are evaluated while deciding which clause runs.
		for _, e := range cc.List {
			cond.Nodes = append(cond.Nodes, e)
		}
		b.edge(cond, bodies[i])
		savedFT := b.fallthroughTo
		if allowFallthrough && i+1 < len(clauses) {
			b.fallthroughTo = bodies[i+1]
		} else {
			b.fallthroughTo = nil
		}
		b.cur = bodies[i]
		for _, st := range cc.Body {
			b.stmt(st)
		}
		b.edge(b.cur, after)
		b.fallthroughTo = savedFT
	}
	if !hasDefault {
		b.edge(cond, after)
	}
	b.popScope()
	b.cur = after
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	cond := b.cur
	after := b.newBlock()
	b.pushScope(label, after, nil)
	hasClause := false
	for _, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		hasClause = true
		blk := b.newBlock()
		b.edge(cond, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.cur.Nodes = append(b.cur.Nodes, cc.Comm)
		}
		for _, st := range cc.Body {
			b.stmt(st)
		}
		b.edge(b.cur, after)
	}
	if !hasClause {
		// select{} blocks forever; control never reaches after, but keep the
		// graph connected for the solver.
		b.edge(cond, after)
	}
	b.popScope()
	b.cur = after
}

// String renders the graph compactly for tests and debugging: one line per
// block with its node count and successor indexes.
func (g *CFG) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "b%d[%d]:", blk.Index, len(blk.Nodes))
		for _, s := range blk.Succs {
			fmt.Fprintf(&sb, " b%d", s.Index)
		}
		switch blk {
		case g.Exit:
			sb.WriteString(" (exit)")
		case g.Panic:
			sb.WriteString(" (panic)")
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
