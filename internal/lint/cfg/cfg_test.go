package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses a function body from source and returns it.
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return file.Decls[0].(*ast.FuncDecl).Body
}

// build constructs a CFG classifying calls to the panic builtin as panics.
func build(t *testing.T, body string) *CFG {
	t.Helper()
	g := New(parseBody(t, body), Options{
		IsPanic: func(c *ast.CallExpr) bool {
			id, ok := c.Fun.(*ast.Ident)
			return ok && id.Name == "panic"
		},
	})
	checkInvariants(t, g)
	return g
}

// checkInvariants verifies pred/succ symmetry and index consistency.
func checkInvariants(t *testing.T, g *CFG) {
	t.Helper()
	for i, b := range g.Blocks {
		if b.Index != i {
			t.Fatalf("block %d has index %d", i, b.Index)
		}
		for _, s := range b.Succs {
			found := false
			for _, p := range s.Preds {
				if p == b {
					found = true
				}
			}
			if !found {
				t.Fatalf("b%d -> b%d missing pred backlink", b.Index, s.Index)
			}
		}
	}
	if len(g.Exit.Nodes) != 0 || len(g.Panic.Nodes) != 0 {
		t.Fatalf("exit/panic blocks must hold no nodes")
	}
}

// reachable returns the set of block indexes reachable from entry.
func reachable(g *CFG) map[int]bool {
	seen := map[int]bool{}
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen
}

func TestStraightLine(t *testing.T) {
	g := build(t, "x := 1\ny := 2\n_ = x\n_ = y")
	if len(g.Entry.Nodes) != 4 {
		t.Fatalf("entry nodes = %d, want 4", len(g.Entry.Nodes))
	}
	if !reachable(g)[g.Exit.Index] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
}

func TestIfElse(t *testing.T) {
	g := build(t, "x := 1\nif x > 0 {\n\tx = 2\n} else {\n\tx = 3\n}\n_ = x")
	// Entry (x:=1, cond) branches to then and else, both converge.
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("cond block succs = %d, want 2:\n%s", len(g.Entry.Succs), g)
	}
	if !reachable(g)[g.Exit.Index] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
}

func TestIfWithoutElse(t *testing.T) {
	g := build(t, "x := 1\nif x > 0 {\n\tx = 2\n}\n_ = x")
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("cond block should branch to then and after:\n%s", g)
	}
}

func TestForLoopBackEdge(t *testing.T) {
	g := build(t, "s := 0\nfor i := 0; i < 10; i++ {\n\ts += i\n}\n_ = s")
	// Some block must have a successor with a smaller index (the back edge).
	hasBack := false
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s.Index < b.Index && s != g.Exit && s != g.Panic {
				hasBack = true
			}
		}
	}
	if !hasBack {
		t.Fatalf("no loop back edge:\n%s", g)
	}
	if !reachable(g)[g.Exit.Index] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
}

func TestRange(t *testing.T) {
	g := build(t, "xs := []int{1, 2}\nt := 0\nfor _, x := range xs {\n\tt += x\n}\n_ = t")
	if !reachable(g)[g.Exit.Index] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
}

func TestInfiniteLoopNoExit(t *testing.T) {
	g := build(t, "for {\n\t_ = 1\n}")
	if reachable(g)[g.Exit.Index] {
		t.Fatalf("exit should be unreachable for for{}:\n%s", g)
	}
}

func TestBreakEscapesLoop(t *testing.T) {
	g := build(t, "for {\n\tbreak\n}\n_ = 1")
	if !reachable(g)[g.Exit.Index] {
		t.Fatalf("break should make exit reachable:\n%s", g)
	}
}

func TestLabeledBreakContinue(t *testing.T) {
	g := build(t, `outer:
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if j == 1 {
				continue outer
			}
			if i == 2 {
				break outer
			}
		}
	}
	_ = 1`)
	if !reachable(g)[g.Exit.Index] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
}

func TestGotoForward(t *testing.T) {
	g := build(t, "x := 1\ngoto done\ndone:\n_ = x")
	if !reachable(g)[g.Exit.Index] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
}

func TestGotoBackward(t *testing.T) {
	g := build(t, "x := 0\nagain:\nx++\nif x < 3 {\n\tgoto again\n}")
	hasBack := false
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s.Index < b.Index && s != g.Exit && s != g.Panic {
				hasBack = true
			}
		}
	}
	if !hasBack {
		t.Fatalf("goto back edge missing:\n%s", g)
	}
}

func TestReturnEdges(t *testing.T) {
	g := build(t, "x := 1\nif x > 0 {\n\treturn\n}\n_ = x")
	if len(g.Exit.Preds) < 2 {
		t.Fatalf("exit should have the return and the fallthrough as preds:\n%s", g)
	}
}

func TestPanicEdge(t *testing.T) {
	g := build(t, "x := 1\nif x > 0 {\n\tpanic(\"bad\")\n}\n_ = x")
	if len(g.Panic.Preds) != 1 {
		t.Fatalf("panic block preds = %d, want 1:\n%s", len(g.Panic.Preds), g)
	}
	if !reachable(g)[g.Panic.Index] {
		t.Fatalf("panic block unreachable:\n%s", g)
	}
}

func TestSwitchDefaultAndFallthrough(t *testing.T) {
	// Without default: cond must edge to after directly.
	g := build(t, "x := 1\nswitch x {\ncase 1:\n\tx = 2\ncase 2:\n\tx = 3\n}\n_ = x")
	if !reachable(g)[g.Exit.Index] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
	// Fallthrough: case 1's body must reach case 2's body.
	g = build(t, "x := 1\nswitch x {\ncase 1:\n\tx = 2\n\tfallthrough\ncase 2:\n\tx = 3\ndefault:\n\tx = 4\n}\n_ = x")
	if !reachable(g)[g.Exit.Index] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
}

func TestTypeSwitch(t *testing.T) {
	g := build(t, "var v any = 1\nswitch v.(type) {\ncase int:\n\t_ = 1\ncase string:\n\t_ = 2\ndefault:\n\t_ = 3\n}")
	if !reachable(g)[g.Exit.Index] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
}

func TestSelect(t *testing.T) {
	g := build(t, `ch := make(chan int)
	select {
	case v := <-ch:
		_ = v
	default:
		_ = 2
	}`)
	if !reachable(g)[g.Exit.Index] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
}

func TestDeferStaysInBlock(t *testing.T) {
	g := build(t, "defer println(1)\n_ = 2")
	if len(g.Entry.Nodes) != 2 {
		t.Fatalf("defer should be an ordinary node in its block:\n%s", g)
	}
}

func TestNoDescentIntoFuncLit(t *testing.T) {
	g := build(t, "f := func() {\n\tfor {\n\t}\n}\nf()")
	// The closure's infinite loop must not affect the outer graph.
	if !reachable(g)[g.Exit.Index] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
	if len(g.Blocks) != 3 {
		t.Fatalf("expected only entry/exit/panic blocks, got %d:\n%s", len(g.Blocks), g)
	}
}

func TestStringRendering(t *testing.T) {
	g := build(t, "x := 1\n_ = x")
	s := g.String()
	if !strings.Contains(s, "(exit)") || !strings.Contains(s, "(panic)") {
		t.Fatalf("String() missing exit/panic markers: %q", s)
	}
}
