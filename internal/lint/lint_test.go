package lint_test

import (
	"testing"

	"ccsvm/internal/lint"
	"ccsvm/internal/lint/linttest"
)

// Each analyzer runs over golden fixture packages under testdata/src with at
// least one true positive and one annotated-clean negative, per the suite's
// acceptance bar.

func TestDeterminism(t *testing.T) {
	linttest.Run(t, ".", lint.Determinism, "det", "detclean", "notdet")
}

func TestPoolOwnership(t *testing.T) {
	linttest.Run(t, ".", lint.PoolOwnership, "pool", "poolclean")
}

func TestEngineCtx(t *testing.T) {
	// Loading ectx pulls in ectxapi as a dependency, exercising cross-package
	// fact flow: the entry/enginectx annotations live in ectxapi.
	linttest.Run(t, ".", lint.EngineCtx, "ectx")
}

func TestHotPath(t *testing.T) {
	linttest.Run(t, ".", lint.HotPath, "hot")
}

func TestHotPathForeignEngine(t *testing.T) {
	// A type named Engine in another package named "sim" must not trigger
	// the schedule-site check: the receiver is matched by object identity.
	linttest.Run(t, ".", lint.HotPath, "fakesim")
}

func TestAllocFree(t *testing.T) {
	linttest.Run(t, ".", lint.AllocFree, "allochot", "allocclean")
}

func TestStateSafe(t *testing.T) {
	linttest.Run(t, ".", lint.StateSafe, "state", "stateclean")
}

func TestDirectives(t *testing.T) {
	linttest.Run(t, ".", lint.Directives, "dirbad", "dirclean")
}
