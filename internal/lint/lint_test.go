package lint_test

import (
	"testing"

	"ccsvm/internal/lint"
	"ccsvm/internal/lint/linttest"
)

// Each analyzer runs over golden fixture packages under testdata/src with at
// least one true positive and one annotated-clean negative, per the suite's
// acceptance bar.

func TestDeterminism(t *testing.T) {
	linttest.Run(t, ".", lint.Determinism, "det", "detclean", "notdet")
}

func TestPoolOwnership(t *testing.T) {
	linttest.Run(t, ".", lint.PoolOwnership, "pool", "poolclean")
}

func TestEngineCtx(t *testing.T) {
	// Loading ectx pulls in ectxapi as a dependency, exercising cross-package
	// fact flow: the entry/enginectx annotations live in ectxapi.
	linttest.Run(t, ".", lint.EngineCtx, "ectx")
}

func TestHotPath(t *testing.T) {
	linttest.Run(t, ".", lint.HotPath, "hot")
}

func TestDirectives(t *testing.T) {
	linttest.Run(t, ".", lint.Directives, "dirbad", "dirclean")
}
