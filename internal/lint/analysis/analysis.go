// Package analysis is a minimal, dependency-free core for writing static
// analyzers over typechecked Go packages. It mirrors the shape of
// golang.org/x/tools/go/analysis — Analyzer, Pass, Diagnostic, object facts —
// so the ccsvm analyzers could be ported to the real driver mechanically, but
// it is implemented entirely on the standard library because this repository
// vendors no third-party code.
//
// The driver contract is deliberately simple: a driver (cmd/ccsvm-lint, or the
// linttest harness) loads a set of packages in dependency order, builds one
// Pass per (analyzer, package) pair, and runs them. Facts exported on objects
// of one package are visible to later passes of the same analyzer over
// packages that import it, which is what lets the engine-context analyzer walk
// call chains across package boundaries.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
)

// Analyzer describes one static check: a name for diagnostics and CLI
// selection, user-facing documentation, and the per-package Run function.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -only selections. It
	// must be a valid identifier.
	Name string
	// Doc is the user-facing description, printed by cmd/ccsvm-lint -help.
	Doc string
	// Run performs the check on one package. Diagnostics are delivered
	// through the Pass; the result value is unused by the ccsvm drivers but
	// kept for x/tools API parity.
	Run func(*Pass) (any, error)
}

// Diagnostic is one finding, anchored at a source position.
type Diagnostic struct {
	// Pos is where the finding is reported.
	Pos token.Pos
	// Message is the human-readable finding text.
	Message string
}

// Fact is analyzer-private information attached to a types.Object, visible to
// later passes of the same analyzer over importing packages. Implementations
// must be pointer types; AFact is a marker method.
type Fact interface{ AFact() }

// Pass carries one analyzer's view of one package: its syntax, type
// information, and the reporting and fact APIs.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps positions in Files to source locations. It is shared by every
	// package of the load, so positions from facts remain meaningful.
	Fset *token.FileSet
	// Files is the package's parsed syntax (tests excluded).
	Files []*ast.File
	// Pkg is the typechecked package.
	Pkg *types.Package
	// TypesInfo holds the package's type and object resolution results.
	TypesInfo *types.Info
	// Report delivers a diagnostic to the driver.
	Report func(Diagnostic)

	facts *FactStore
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ExportObjectFact attaches fact to obj for later passes of this analyzer.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil {
		panic("analysis: ExportObjectFact on nil object")
	}
	p.facts.put(p.Analyzer, obj, fact)
}

// ImportObjectFact copies the fact previously exported on obj (by this
// analyzer, in this or an earlier pass) into fact, reporting whether one was
// found. fact must be a pointer of the same type as the exported fact.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if obj == nil {
		return false
	}
	return p.facts.get(p.Analyzer, obj, fact)
}

// FactStore holds the object facts of one driver run, keyed by analyzer and
// object. The driver owns it so facts survive across per-package passes.
type FactStore struct {
	m map[factKey]Fact
}

type factKey struct {
	analyzer *Analyzer
	obj      types.Object
	typ      reflect.Type
}

// NewFactStore returns an empty fact store.
func NewFactStore() *FactStore {
	return &FactStore{m: make(map[factKey]Fact)}
}

func (s *FactStore) put(a *Analyzer, obj types.Object, fact Fact) {
	t := reflect.TypeOf(fact)
	if t.Kind() != reflect.Pointer {
		panic(fmt.Sprintf("analysis: fact %T is not a pointer", fact))
	}
	s.m[factKey{a, obj, t}] = fact
}

func (s *FactStore) get(a *Analyzer, obj types.Object, fact Fact) bool {
	t := reflect.TypeOf(fact)
	if t.Kind() != reflect.Pointer {
		panic(fmt.Sprintf("analysis: fact %T is not a pointer", fact))
	}
	got, ok := s.m[factKey{a, obj, t}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

// NewPass assembles a Pass; drivers use it so the fact store stays private.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package,
	info *types.Info, facts *FactStore, report func(Diagnostic)) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    report,
		facts:     facts,
	}
}
