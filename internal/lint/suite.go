package lint

import (
	"ccsvm/internal/lint/analysis"
)

// Analyzers returns the full ccsvm lint suite in the order cmd/ccsvm-lint
// runs it: directive hygiene first (so a malformed annotation is reported
// rather than silently ignored by the enforcement passes), then the
// invariant analyzers — determinism, the flow-sensitive pool-ownership
// check, engine-context reachability, the two hot-path contracts and
// checkpoint safety.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Directives,
		Determinism,
		PoolOwnership,
		EngineCtx,
		HotPath,
		AllocFree,
		StateSafe,
	}
}
