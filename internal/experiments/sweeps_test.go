package experiments

import "testing"

// TestSweepsDeterministicAtAnyParallelism requires the two sensitivity
// sweeps to render byte-identical tables at parallel=1 and parallel=4 — the
// design-space layer must not reintroduce the run-to-run nondeterminism the
// Runner was built to exclude.
func TestSweepsDeterministicAtAnyParallelism(t *testing.T) {
	for name, fn := range map[string]func(Options) (interface{ String() string }, error){
		"lanes":     func(o Options) (interface{ String() string }, error) { return LaneSensitivity(o) },
		"cache":     func(o Options) (interface{ String() string }, error) { return CacheSensitivity(o) },
		"protocols": func(o Options) (interface{ String() string }, error) { return ProtocolSensitivity(o) },
	} {
		t.Run(name, func(t *testing.T) {
			seqOpts := DefaultOptions()
			parOpts := DefaultOptions()
			parOpts.Parallel = 4
			seq, err := fn(seqOpts)
			if err != nil {
				t.Fatal(err)
			}
			par, err := fn(parOpts)
			if err != nil {
				t.Fatal(err)
			}
			if seq.String() != par.String() {
				t.Errorf("parallel=4 table differs from parallel=1:\n%s\nvs\n%s", par, seq)
			}
		})
	}
}
