package experiments

import (
	"fmt"
	"strconv"

	"ccsvm"
	"ccsvm/internal/stats"
)

// The sensitivity sweeps go beyond the paper's figures: they answer the
// "what if the MTTOP had twice the lanes / half the cache?" questions the
// paper's methodology invites but never runs. Both are built entirely from
// the facade's design-space layer — a named preset as the base configuration
// and one dotted-path override per sweep point — so they double as the
// reference usage of that layer.

func (o Options) laneWidths() []int {
	if o.Full {
		return []int{2, 4, 8, 16, 32}
	}
	return []int{4, 8, 16}
}

func (o Options) l2BankBytes() []int {
	if o.Full {
		return []int{1 << 12, 1 << 13, 1 << 14, 1 << 16, 1 << 18, 1 << 20}
	}
	return []int{1 << 12, 1 << 14, 1 << 16, 1 << 20}
}

// sweepN picks the per-workload problem size for the sensitivity sweeps.
func (o Options) sweepN(workload string) int {
	quick := map[string]int{"matmul": 24, "apsp": 16, "sparse": 64}
	full := map[string]int{"matmul": 64, "apsp": 32, "sparse": 96}
	if o.Full {
		return full[workload]
	}
	return quick[workload]
}

// overriddenCCSVMSpec builds one CCSVM RunSpec from the ccsvm-base preset
// with a single parameter overridden, tagging the run with the override so
// sink output identifies the sweep point.
func (o Options) overriddenCCSVMSpec(workload, path, value string) (ccsvm.RunSpec, error) {
	sys, err := ccsvm.LookupPresetSystem("ccsvm-base", ccsvm.SystemCCSVM)
	if err != nil {
		return ccsvm.RunSpec{}, err
	}
	if err := ccsvm.Override(&sys, path, value); err != nil {
		return ccsvm.RunSpec{}, err
	}
	return ccsvm.RunSpec{
		Workload: workload,
		System:   sys,
		Params: ccsvm.Params{
			N: o.sweepN(workload), Density: 0.02, Seed: o.Seed,
		},
		Tag: path + "=" + value,
	}, nil
}

// ProtocolSensitivity compares the coherence protocol tables on the three
// CCSVM workloads: under MESI every read of a modified remote line takes a
// four-hop directory round trip (the dirty data is written back before the
// requestor is answered) instead of MOESI's three-hop owner forward, and the
// missing Owned state forces a writeback on every M->S downgrade. The table
// reports runtime per protocol relative to MOESI alongside the chip-wide
// forward and invalidation counts that explain the delta.
func ProtocolSensitivity(o Options) (*stats.Table, error) {
	protocols := ccsvm.Protocols()
	wls := []string{"matmul", "apsp", "sparse"}
	var specs []ccsvm.RunSpec
	for _, proto := range protocols {
		for _, wl := range wls {
			spec, err := o.overriddenCCSVMSpec(wl, "ccsvm.coherence.protocol", proto)
			if err != nil {
				return nil, err
			}
			specs = append(specs, spec)
		}
	}
	res, err := o.run(specs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Protocol sensitivity: CCSVM runtime by coherence protocol (relative to moesi)",
		"Protocol", "matmul", "apsp", "sparse", "forwards", "invalidations")
	for i, proto := range protocols {
		var fwds, invs float64
		for j := range wls {
			m := res[len(wls)*i+j].Result.Metrics
			fwds += m["coherence.forwards"]
			invs += m["coherence.invalidations"]
		}
		row := []any{proto}
		for j := range wls {
			row = append(row, relative(res[len(wls)*i+j].Result, res[j].Result))
		}
		row = append(row, int(fwds), int(invs))
		t.AddRow(row...)
	}
	return t, nil
}

// LaneSensitivity sweeps the MTTOP issue width (the chip's lane count per
// core) for dense matrix multiply and all-pairs shortest path, reporting
// runtime relative to the Table 2 width of 8. Sub-linear returns past the
// default width indicate the workloads are memory- rather than issue-bound.
func LaneSensitivity(o Options) (*stats.Table, error) {
	widths := o.laneWidths()
	wls := []string{"matmul", "apsp"}
	var specs []ccsvm.RunSpec
	for _, width := range widths {
		for _, wl := range wls {
			spec, err := o.overriddenCCSVMSpec(wl, "ccsvm.MTTOPIssueWidth", strconv.Itoa(width))
			if err != nil {
				return nil, err
			}
			specs = append(specs, spec)
		}
	}
	res, err := o.run(specs)
	if err != nil {
		return nil, err
	}
	// Results indexed [width][workload]; normalize to the Table 2 width.
	baseIdx := 0
	for i, w := range widths {
		if w == 8 {
			baseIdx = i
		}
	}
	t := stats.NewTable("Lane sensitivity: CCSVM runtime vs MTTOP issue width (relative to 8-wide)",
		"Issue width", "matmul", "matmul (us)", "apsp", "apsp (us)")
	for i, width := range widths {
		mm := res[len(wls)*i].Result
		ap := res[len(wls)*i+1].Result
		mmBase := res[len(wls)*baseIdx].Result
		apBase := res[len(wls)*baseIdx+1].Result
		t.AddRow(width,
			relative(mm, mmBase), float64(mm.Time)/1e6,
			relative(ap, apBase), float64(ap.Time)/1e6)
	}
	return t, nil
}

// CacheSensitivity sweeps the shared L2 bank size for dense and sparse
// matrix multiply, reporting runtime, the L2 hit rate, and off-chip accesses
// from the per-run machine metrics. At these problem sizes the signal shows
// up in Figure 9's metric — off-chip DRAM accesses climb as the L2 shrinks
// below the working set (the sparse workload's irregular reuse is the most
// sensitive) — while runtime, dominated by launch and synchronization, barely
// moves: exactly the kind of design-space answer the fixed 4 MB L2 of the
// paper hides.
func CacheSensitivity(o Options) (*stats.Table, error) {
	sizes := o.l2BankBytes()
	wls := []string{"matmul", "sparse"}
	var specs []ccsvm.RunSpec
	for _, bytes := range sizes {
		for _, wl := range wls {
			spec, err := o.overriddenCCSVMSpec(wl, "ccsvm.L2BankBytes", strconv.Itoa(bytes))
			if err != nil {
				return nil, err
			}
			specs = append(specs, spec)
		}
	}
	res, err := o.run(specs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Cache sensitivity: CCSVM vs shared L2 size (per-bank bytes x 4 banks)",
		"L2/bank (KB)", "matmul (us)", "matmul L2 hit%", "matmul DRAM", "sparse (us)", "sparse L2 hit%", "sparse DRAM")
	for i, bytes := range sizes {
		mm := res[len(wls)*i].Result
		sp := res[len(wls)*i+1].Result
		t.AddRow(bytes/1024,
			float64(mm.Time)/1e6, fmt.Sprintf("%.1f", mm.Metrics["l2.hit_rate"]*100), mm.DRAMAccesses,
			float64(sp.Time)/1e6, fmt.Sprintf("%.1f", sp.Metrics["l2.hit_rate"]*100), sp.DRAMAccesses)
	}
	return t, nil
}
