// Package experiments regenerates every table and figure of the paper's
// evaluation section (the experiment index E1–E8 in DESIGN.md). Each figure
// declares its sweep as a slice of ccsvm.RunSpec, executes it through the
// facade's Runner — optionally fanning out across Options.Parallel workers;
// every simulation is an independent engine, so the results are bit-identical
// at any parallelism — and shapes the results into a text table with the same
// rows/series the paper reports. cmd/paper-figs prints the tables and
// EXPERIMENTS.md records a captured run.
package experiments

import (
	"fmt"

	"ccsvm"
	"ccsvm/internal/apu"
	"ccsvm/internal/core"
	"ccsvm/internal/stats"
)

// Options selects the sweep sizes and execution fan-out. Quick (the default)
// keeps every sweep small enough to regenerate in a couple of minutes of host
// time; Full uses larger problem sizes that take correspondingly longer but
// show the crossovers more clearly.
type Options struct {
	Full bool
	Seed int64
	// Parallel is the Runner worker-pool size; 0 means GOMAXPROCS.
	Parallel int
}

// DefaultOptions returns the quick sweep.
func DefaultOptions() Options { return Options{Full: false, Seed: 42, Parallel: 1} }

func (o Options) matmulSizes() []int {
	if o.Full {
		return []int{16, 32, 64, 128}
	}
	return []int{16, 32, 64}
}

func (o Options) apspSizes() []int {
	if o.Full {
		return []int{16, 32, 64}
	}
	return []int{12, 24, 40}
}

func (o Options) barnesHutSizes() []int {
	if o.Full {
		return []int{128, 256, 512}
	}
	return []int{64, 128, 256}
}

func (o Options) sparseSizes() []int {
	if o.Full {
		return []int{64, 128, 192}
	}
	return []int{48, 96}
}

func (o Options) sparseDensities() []float64 {
	if o.Full {
		return []float64{0.005, 0.01, 0.02, 0.04, 0.08}
	}
	return []float64{0.01, 0.02, 0.04}
}

func (o Options) sparseFixedSize() int {
	if o.Full {
		return 128
	}
	return 64
}

// run executes a declared sweep through the facade Runner.
func (o Options) run(specs []ccsvm.RunSpec) ([]ccsvm.RunResult, error) {
	r := &ccsvm.Runner{Parallel: o.Parallel}
	return r.Run(specs)
}

// spec builds one RunSpec on the named workload and a default-configured
// system.
func (o Options) spec(workload string, kind ccsvm.SystemKind, n int, density float64, includeInit bool) ccsvm.RunSpec {
	return ccsvm.RunSpec{
		Workload: workload,
		System:   ccsvm.MustSystem(kind),
		Params: ccsvm.Params{
			N: n, Density: density, Seed: o.Seed, IncludeInit: includeInit,
		},
	}
}

// relative reports r as a multiple of the baseline.
func relative(r, baseline ccsvm.Result) float64 {
	if baseline.Time == 0 {
		return 0
	}
	return float64(r.Time) / float64(baseline.Time)
}

// Table2 returns the system-configuration table (experiment E1).
func Table2() *stats.Table {
	c := core.DefaultConfig()
	a := apu.DefaultConfig()
	t := stats.NewTable("Table 2: system configurations", "Parameter", "CCSVM (simulated)", "APU (simulated baseline)")
	t.AddRow("CPU cores", c.NumCPUs, a.NumCPUs)
	t.AddRow("CPU max IPC", 1/c.CPUCPI, 1/a.CPUCPI)
	t.AddRow("CPU clock (GHz)", c.CPUClockHz/1e9, a.CPUClockHz/1e9)
	t.AddRow("MTTOP/GPU cores", c.NumMTTOPs, fmt.Sprintf("%d SIMD x %d VLIW", a.GPUSIMDUnits, a.GPULanes))
	t.AddRow("MTTOP/GPU clock (MHz)", c.MTTOPClockHz/1e6, a.GPUClockHz/1e6)
	t.AddRow("Peak throughput (ops/cycle)", c.PeakMTTOPOpsPerCycle(), a.GPUSIMDUnits*a.GPULanes*a.GPUVLIWOpsPerInstr)
	t.AddRow("MTTOP thread contexts", c.TotalMTTOPThreadContexts(), a.GPUSIMDUnits*a.GPUContextsPerUnit)
	t.AddRow("CPU L1 (KB)", c.CPUL1.SizeBytes/1024, a.CPUCaches.L1.SizeBytes/1024)
	t.AddRow("MTTOP L1 (KB)", c.MTTOPL1.SizeBytes/1024, "32 KB local per SIMD")
	t.AddRow("Shared L2", fmt.Sprintf("%d x %d KB (inclusive, dir)", c.L2Banks, c.L2BankBytes/1024), "1 MB private per CPU core")
	t.AddRow("TLB entries/core", c.TLBEntries, "n/a (no shared VM)")
	t.AddRow("Network", "2D torus, 12 GB/s links", "crossbar + DRAM staging")
	t.AddRow("DRAM latency", c.DRAM.Latency.String(), a.DRAM.Latency.String())
	return t
}

// oclFigure is the shared shape of Figures 5 and 6: for each size, a CPU
// baseline, the OpenCL full and no-init series, and CCSVM/xthreads, all
// relative to the baseline.
func oclFigure(o Options, workload, title, sizeCol string, sizes []int) (*stats.Table, error) {
	var specs []ccsvm.RunSpec
	for _, n := range sizes {
		specs = append(specs,
			o.spec(workload, ccsvm.SystemCPU, n, 0, false),
			o.spec(workload, ccsvm.SystemOpenCL, n, 0, true),
			o.spec(workload, ccsvm.SystemOpenCL, n, 0, false),
			o.spec(workload, ccsvm.SystemCCSVM, n, 0, false),
		)
	}
	res, err := o.run(specs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(title,
		sizeCol, "APU/OpenCL full", "APU/OpenCL no-init", "CCSVM/xthreads", "CPU baseline (us)")
	for i, n := range sizes {
		cpu, full, noInit, x := res[4*i].Result, res[4*i+1].Result, res[4*i+2].Result, res[4*i+3].Result
		t.AddRow(n, relative(full, cpu), relative(noInit, cpu), relative(x, cpu),
			float64(cpu.Time)/1e6)
	}
	return t, nil
}

// Figure5 reproduces the dense matrix-multiply comparison: runtime of the APU
// running OpenCL (full and without init/compile) and of CCSVM running
// xthreads, relative to one APU CPU core, as a function of matrix size.
func Figure5(o Options) (*stats.Table, error) {
	return oclFigure(o, "matmul",
		"Figure 5: dense matrix multiply (runtime relative to one APU CPU core; lower is better)",
		"N", o.matmulSizes())
}

// Figure6 reproduces the all-pairs-shortest-path comparison.
func Figure6(o Options) (*stats.Table, error) {
	return oclFigure(o, "apsp",
		"Figure 6: all-pairs shortest path (runtime relative to one APU CPU core; lower is better)",
		"V", o.apspSizes())
}

// Figure7 reproduces the Barnes-Hut comparison: CCSVM/xthreads and pthreads
// on the 4 APU CPU cores, both as speedup over one APU CPU core.
func Figure7(o Options) (*stats.Table, error) {
	sizes := o.barnesHutSizes()
	var specs []ccsvm.RunSpec
	for _, n := range sizes {
		specs = append(specs,
			o.spec("barneshut", ccsvm.SystemCPU, n, 0, false),
			o.spec("barneshut", ccsvm.SystemPthreads, n, 0, false),
			o.spec("barneshut", ccsvm.SystemCCSVM, n, 0, false),
		)
	}
	res, err := o.run(specs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Figure 7: Barnes-Hut n-body (speedup over one APU CPU core; higher is better)",
		"Bodies", "APU pthreads x4", "CCSVM/xthreads", "CPU baseline (us)")
	for i, n := range sizes {
		cpu, pth, x := res[3*i].Result, res[3*i+1].Result, res[3*i+2].Result
		t.AddRow(n, pth.Speedup(cpu), x.Speedup(cpu), float64(cpu.Time)/1e6)
	}
	return t, nil
}

// Figure8Left reproduces the sparse matrix-multiply size sweep at fixed
// density (speedup of CCSVM/xthreads over one APU CPU core).
func Figure8Left(o Options) (*stats.Table, error) {
	const density = 0.01
	sizes := o.sparseSizes()
	var specs []ccsvm.RunSpec
	for _, n := range sizes {
		specs = append(specs,
			o.spec("sparse", ccsvm.SystemCPU, n, density, false),
			o.spec("sparse", ccsvm.SystemCCSVM, n, density, false),
		)
	}
	res, err := o.run(specs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Figure 8 (left): sparse matmul, fixed 1% density (speedup over one APU CPU core)",
		"N", "CCSVM/xthreads speedup", "CPU baseline (us)")
	for i, n := range sizes {
		cpu, x := res[2*i].Result, res[2*i+1].Result
		t.AddRow(n, x.Speedup(cpu), float64(cpu.Time)/1e6)
	}
	return t, nil
}

// Figure8Right reproduces the sparse matrix-multiply density sweep at fixed
// size.
func Figure8Right(o Options) (*stats.Table, error) {
	n := o.sparseFixedSize()
	densities := o.sparseDensities()
	var specs []ccsvm.RunSpec
	for _, d := range densities {
		specs = append(specs,
			o.spec("sparse", ccsvm.SystemCPU, n, d, false),
			o.spec("sparse", ccsvm.SystemCCSVM, n, d, false),
		)
	}
	res, err := o.run(specs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(fmt.Sprintf("Figure 8 (right): sparse matmul, fixed N=%d (speedup over one APU CPU core)", n),
		"Density %", "CCSVM/xthreads speedup", "CPU baseline (us)")
	for i, d := range densities {
		cpu, x := res[2*i].Result, res[2*i+1].Result
		t.AddRow(d*100, x.Speedup(cpu), float64(cpu.Time)/1e6)
	}
	return t, nil
}

// Figure9 reproduces the off-chip DRAM access comparison for dense matrix
// multiply.
func Figure9(o Options) (*stats.Table, error) {
	sizes := o.matmulSizes()
	var specs []ccsvm.RunSpec
	for _, n := range sizes {
		specs = append(specs,
			o.spec("matmul", ccsvm.SystemCPU, n, 0, false),
			o.spec("matmul", ccsvm.SystemOpenCL, n, 0, false),
			o.spec("matmul", ccsvm.SystemCCSVM, n, 0, false),
		)
	}
	res, err := o.run(specs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Figure 9: DRAM accesses for dense matrix multiply (lower is better)",
		"N", "APU CPU core", "APU/OpenCL", "CCSVM/xthreads")
	for i, n := range sizes {
		cpu, ocl, x := res[3*i].Result, res[3*i+1].Result, res[3*i+2].Result
		t.AddRow(n, cpu.DRAMAccesses, ocl.DRAMAccesses, x.DRAMAccesses)
	}
	return t, nil
}

// CodeComparison reproduces the qualitative Figure 3 vs Figure 4 point: the
// cost of offloading a 256-element vector add through the full OpenCL stack
// vs through xthreads.
func CodeComparison(o Options) (*stats.Table, error) {
	const n = 256
	specs := []ccsvm.RunSpec{
		o.spec("vectoradd", ccsvm.SystemCCSVM, n, 0, false),
		o.spec("vectoradd", ccsvm.SystemOpenCL, n, 0, false),
		o.spec("vectoradd", ccsvm.SystemOpenCL, n, 0, true),
	}
	res, err := o.run(specs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Figures 3/4: 256-element vector add, offload cost by programming model",
		"System", "Offload time", "DRAM accesses")
	for _, rr := range res {
		t.AddRow(rr.Result.Label, rr.Result.Time.String(), rr.Result.DRAMAccesses)
	}
	return t, nil
}

// All runs every experiment in order and returns the tables.
func All(o Options) ([]*stats.Table, error) {
	var out []*stats.Table
	out = append(out, Table2())
	steps := []func(Options) (*stats.Table, error){
		Figure5, Figure6, Figure7, Figure8Left, Figure8Right, Figure9, CodeComparison,
		LaneSensitivity, CacheSensitivity, ProtocolSensitivity,
	}
	for _, step := range steps {
		tb, err := step(o)
		if err != nil {
			return out, err
		}
		out = append(out, tb)
	}
	return out, nil
}
