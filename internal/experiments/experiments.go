// Package experiments regenerates every table and figure of the paper's
// evaluation section (the experiment index E1–E8 in DESIGN.md). Each function
// runs the relevant workloads on the relevant machines and returns a text
// table with the same rows/series the paper reports; cmd/paper-figs prints
// them and EXPERIMENTS.md records a captured run.
package experiments

import (
	"fmt"

	"ccsvm/internal/apu"
	"ccsvm/internal/core"
	"ccsvm/internal/stats"
	"ccsvm/internal/workloads"
)

// Options selects the sweep sizes. Quick (the default) keeps every sweep
// small enough to regenerate in a couple of minutes of host time; Full uses
// larger problem sizes that take correspondingly longer but show the
// crossovers more clearly.
type Options struct {
	Full bool
	Seed int64
}

// DefaultOptions returns the quick sweep.
func DefaultOptions() Options { return Options{Full: false, Seed: 42} }

func (o Options) matmulSizes() []int {
	if o.Full {
		return []int{16, 32, 64, 128}
	}
	return []int{16, 32, 64}
}

func (o Options) apspSizes() []int {
	if o.Full {
		return []int{16, 32, 64}
	}
	return []int{12, 24, 40}
}

func (o Options) barnesHutSizes() []int {
	if o.Full {
		return []int{128, 256, 512}
	}
	return []int{64, 128, 256}
}

func (o Options) sparseSizes() []int {
	if o.Full {
		return []int{64, 128, 192}
	}
	return []int{48, 96}
}

func (o Options) sparseDensities() []float64 {
	if o.Full {
		return []float64{0.005, 0.01, 0.02, 0.04, 0.08}
	}
	return []float64{0.01, 0.02, 0.04}
}

func (o Options) sparseFixedSize() int {
	if o.Full {
		return 128
	}
	return 64
}

// ccsvmConfig is the Table 2 CCSVM chip.
func ccsvmConfig() core.Config { return core.DefaultConfig() }

// apuConfig is the Table 2 APU.
func apuConfig() apu.Config { return apu.DefaultConfig() }

// relative reports t as a multiple of the baseline.
func relative(r, baseline workloads.Result) float64 {
	if baseline.Time == 0 {
		return 0
	}
	return float64(r.Time) / float64(baseline.Time)
}

// Table2 returns the system-configuration table (experiment E1).
func Table2() *stats.Table {
	c := ccsvmConfig()
	a := apuConfig()
	t := stats.NewTable("Table 2: system configurations", "Parameter", "CCSVM (simulated)", "APU (simulated baseline)")
	t.AddRow("CPU cores", c.NumCPUs, a.NumCPUs)
	t.AddRow("CPU max IPC", 1/c.CPUCPI, 1/a.CPUCPI)
	t.AddRow("CPU clock (GHz)", c.CPUClockHz/1e9, a.CPUClockHz/1e9)
	t.AddRow("MTTOP/GPU cores", c.NumMTTOPs, fmt.Sprintf("%d SIMD x %d VLIW", a.GPUSIMDUnits, a.GPULanes))
	t.AddRow("MTTOP/GPU clock (MHz)", c.MTTOPClockHz/1e6, a.GPUClockHz/1e6)
	t.AddRow("Peak throughput (ops/cycle)", c.PeakMTTOPOpsPerCycle(), a.GPUSIMDUnits*a.GPULanes*a.GPUVLIWOpsPerInstr)
	t.AddRow("MTTOP thread contexts", c.TotalMTTOPThreadContexts(), a.GPUSIMDUnits*a.GPUContextsPerUnit)
	t.AddRow("CPU L1 (KB)", c.CPUL1.SizeBytes/1024, a.CPUCaches.L1.SizeBytes/1024)
	t.AddRow("MTTOP L1 (KB)", c.MTTOPL1.SizeBytes/1024, "32 KB local per SIMD")
	t.AddRow("Shared L2", fmt.Sprintf("%d x %d KB (inclusive, dir)", c.L2Banks, c.L2BankBytes/1024), "1 MB private per CPU core")
	t.AddRow("TLB entries/core", c.TLBEntries, "n/a (no shared VM)")
	t.AddRow("Network", "2D torus, 12 GB/s links", "crossbar + DRAM staging")
	t.AddRow("DRAM latency", c.DRAM.Latency.String(), a.DRAM.Latency.String())
	return t
}

// Figure5 reproduces the dense matrix-multiply comparison: runtime of the APU
// running OpenCL (full and without init/compile) and of CCSVM running
// xthreads, relative to one APU CPU core, as a function of matrix size.
func Figure5(o Options) (*stats.Table, error) {
	t := stats.NewTable("Figure 5: dense matrix multiply (runtime relative to one APU CPU core; lower is better)",
		"N", "APU/OpenCL full", "APU/OpenCL no-init", "CCSVM/xthreads", "CPU baseline (us)")
	for _, n := range o.matmulSizes() {
		cpu, err := workloads.MatMulCPU(apuConfig(), n, o.Seed)
		if err != nil {
			return nil, fmt.Errorf("fig5 cpu n=%d: %w", n, err)
		}
		full, err := workloads.MatMulOpenCL(apuConfig(), n, o.Seed, true)
		if err != nil {
			return nil, fmt.Errorf("fig5 opencl-full n=%d: %w", n, err)
		}
		noInit, err := workloads.MatMulOpenCL(apuConfig(), n, o.Seed, false)
		if err != nil {
			return nil, fmt.Errorf("fig5 opencl n=%d: %w", n, err)
		}
		ccsvm, err := workloads.MatMulXthreads(ccsvmConfig(), n, o.Seed)
		if err != nil {
			return nil, fmt.Errorf("fig5 ccsvm n=%d: %w", n, err)
		}
		t.AddRow(n, relative(full, cpu), relative(noInit, cpu), relative(ccsvm, cpu),
			float64(cpu.Time)/1e6)
	}
	return t, nil
}

// Figure6 reproduces the all-pairs-shortest-path comparison.
func Figure6(o Options) (*stats.Table, error) {
	t := stats.NewTable("Figure 6: all-pairs shortest path (runtime relative to one APU CPU core; lower is better)",
		"V", "APU/OpenCL full", "APU/OpenCL no-init", "CCSVM/xthreads", "CPU baseline (us)")
	for _, n := range o.apspSizes() {
		cpu, err := workloads.APSPCPU(apuConfig(), n, o.Seed)
		if err != nil {
			return nil, fmt.Errorf("fig6 cpu v=%d: %w", n, err)
		}
		full, err := workloads.APSPOpenCL(apuConfig(), n, o.Seed, true)
		if err != nil {
			return nil, fmt.Errorf("fig6 opencl-full v=%d: %w", n, err)
		}
		noInit, err := workloads.APSPOpenCL(apuConfig(), n, o.Seed, false)
		if err != nil {
			return nil, fmt.Errorf("fig6 opencl v=%d: %w", n, err)
		}
		ccsvm, err := workloads.APSPXthreads(ccsvmConfig(), n, o.Seed)
		if err != nil {
			return nil, fmt.Errorf("fig6 ccsvm v=%d: %w", n, err)
		}
		t.AddRow(n, relative(full, cpu), relative(noInit, cpu), relative(ccsvm, cpu),
			float64(cpu.Time)/1e6)
	}
	return t, nil
}

// Figure7 reproduces the Barnes-Hut comparison: CCSVM/xthreads and pthreads
// on the 4 APU CPU cores, both as speedup over one APU CPU core.
func Figure7(o Options) (*stats.Table, error) {
	t := stats.NewTable("Figure 7: Barnes-Hut n-body (speedup over one APU CPU core; higher is better)",
		"Bodies", "APU pthreads x4", "CCSVM/xthreads", "CPU baseline (us)")
	for _, n := range o.barnesHutSizes() {
		cpu, err := workloads.BarnesHutCPU(apuConfig(), n, o.Seed)
		if err != nil {
			return nil, fmt.Errorf("fig7 cpu bodies=%d: %w", n, err)
		}
		pth, err := workloads.BarnesHutPthreads(apuConfig(), n, o.Seed)
		if err != nil {
			return nil, fmt.Errorf("fig7 pthreads bodies=%d: %w", n, err)
		}
		ccsvm, err := workloads.BarnesHutXthreads(ccsvmConfig(), n, o.Seed)
		if err != nil {
			return nil, fmt.Errorf("fig7 ccsvm bodies=%d: %w", n, err)
		}
		t.AddRow(n, pth.Speedup(cpu), ccsvm.Speedup(cpu), float64(cpu.Time)/1e6)
	}
	return t, nil
}

// Figure8Left reproduces the sparse matrix-multiply size sweep at fixed
// density (speedup of CCSVM/xthreads over one APU CPU core).
func Figure8Left(o Options) (*stats.Table, error) {
	const density = 0.01
	t := stats.NewTable("Figure 8 (left): sparse matmul, fixed 1% density (speedup over one APU CPU core)",
		"N", "CCSVM/xthreads speedup", "CPU baseline (us)")
	for _, n := range o.sparseSizes() {
		cpu, err := workloads.SparseMMCPU(apuConfig(), n, density, o.Seed)
		if err != nil {
			return nil, fmt.Errorf("fig8a cpu n=%d: %w", n, err)
		}
		ccsvm, err := workloads.SparseMMXthreads(ccsvmConfig(), n, density, o.Seed)
		if err != nil {
			return nil, fmt.Errorf("fig8a ccsvm n=%d: %w", n, err)
		}
		t.AddRow(n, ccsvm.Speedup(cpu), float64(cpu.Time)/1e6)
	}
	return t, nil
}

// Figure8Right reproduces the sparse matrix-multiply density sweep at fixed
// size.
func Figure8Right(o Options) (*stats.Table, error) {
	n := o.sparseFixedSize()
	t := stats.NewTable(fmt.Sprintf("Figure 8 (right): sparse matmul, fixed N=%d (speedup over one APU CPU core)", n),
		"Density %", "CCSVM/xthreads speedup", "CPU baseline (us)")
	for _, d := range o.sparseDensities() {
		cpu, err := workloads.SparseMMCPU(apuConfig(), n, d, o.Seed)
		if err != nil {
			return nil, fmt.Errorf("fig8b cpu d=%v: %w", d, err)
		}
		ccsvm, err := workloads.SparseMMXthreads(ccsvmConfig(), n, d, o.Seed)
		if err != nil {
			return nil, fmt.Errorf("fig8b ccsvm d=%v: %w", d, err)
		}
		t.AddRow(d*100, ccsvm.Speedup(cpu), float64(cpu.Time)/1e6)
	}
	return t, nil
}

// Figure9 reproduces the off-chip DRAM access comparison for dense matrix
// multiply.
func Figure9(o Options) (*stats.Table, error) {
	t := stats.NewTable("Figure 9: DRAM accesses for dense matrix multiply (lower is better)",
		"N", "APU CPU core", "APU/OpenCL", "CCSVM/xthreads")
	for _, n := range o.matmulSizes() {
		cpu, err := workloads.MatMulCPU(apuConfig(), n, o.Seed)
		if err != nil {
			return nil, fmt.Errorf("fig9 cpu n=%d: %w", n, err)
		}
		ocl, err := workloads.MatMulOpenCL(apuConfig(), n, o.Seed, false)
		if err != nil {
			return nil, fmt.Errorf("fig9 opencl n=%d: %w", n, err)
		}
		ccsvm, err := workloads.MatMulXthreads(ccsvmConfig(), n, o.Seed)
		if err != nil {
			return nil, fmt.Errorf("fig9 ccsvm n=%d: %w", n, err)
		}
		t.AddRow(n, cpu.DRAMAccesses, ocl.DRAMAccesses, ccsvm.DRAMAccesses)
	}
	return t, nil
}

// CodeComparison reproduces the qualitative Figure 3 vs Figure 4 point: the
// cost of offloading a 256-element vector add through the full OpenCL stack
// vs through xthreads.
func CodeComparison(o Options) (*stats.Table, error) {
	const n = 256
	x, err := workloads.VectorAddXthreads(ccsvmConfig(), n, o.Seed)
	if err != nil {
		return nil, err
	}
	oclFull, err := workloads.VectorAddOpenCL(apuConfig(), n, o.Seed, true)
	if err != nil {
		return nil, err
	}
	oclNoInit, err := workloads.VectorAddOpenCL(apuConfig(), n, o.Seed, false)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Figures 3/4: 256-element vector add, offload cost by programming model",
		"System", "Offload time", "DRAM accesses")
	t.AddRow(x.Label, x.Time.String(), x.DRAMAccesses)
	t.AddRow(oclNoInit.Label, oclNoInit.Time.String(), oclNoInit.DRAMAccesses)
	t.AddRow(oclFull.Label, oclFull.Time.String(), oclFull.DRAMAccesses)
	return t, nil
}

// All runs every experiment in order and returns the tables.
func All(o Options) ([]*stats.Table, error) {
	var out []*stats.Table
	out = append(out, Table2())
	steps := []func(Options) (*stats.Table, error){
		Figure5, Figure6, Figure7, Figure8Left, Figure8Right, Figure9, CodeComparison,
	}
	for _, step := range steps {
		tb, err := step(o)
		if err != nil {
			return out, err
		}
		out = append(out, tb)
	}
	return out, nil
}
