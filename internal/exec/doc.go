// Package exec provides the execution-driven bridge between workload code
// (ordinary Go functions) and the timing models of the simulated cores. Each
// software thread runs in its own goroutine and communicates with the
// single-threaded simulation engine through a strict, deterministic
// handshake: the thread produces one operation at a time (a load, store,
// atomic, compute delay, or syscall) and blocks until the core model reports
// the operation complete at some simulated time.
//
// This is the same execution-driven style the paper's gem5 evaluation uses,
// with Go functions standing in for the x86/Alpha-like binaries.
//
//ccsvm:deterministic
package exec
