package exec

import (
	"math"

	"ccsvm/internal/mem"
)

// Context is the interface workload code uses to interact with the simulated
// machine. Every method blocks (in host terms) until the simulated core has
// performed the operation, so workload functions read like ordinary
// sequential code while their memory behaviour is played out cycle by cycle
// in the timing models.
type Context struct {
	thread *Thread
}

// do publishes one operation to the owning core and waits for its
// completion — cooperatively, not by parking. The thread writes the op into
// its slot and invokes the core's resume continuation itself (the core
// consumes the op and schedules its events on this goroutine), then keeps
// the baton and drives the engine until its own result arrives. It parks
// only to hand the baton to another thread whose completion is older, or
// back to the host when the engine cannot advance. A thread whose operation
// completes while it is driving never switches goroutines at all.
//
// The first operation takes the rendezvous branch instead: the launching
// core is blocked in Thread.launch waiting to consume it, so there is no
// resume continuation yet.
func (c *Context) do(op Op) Result {
	t := c.thread
	t.op, t.hasOp = op, true
	if r := t.resume; r != nil {
		t.resume = nil
		r()
		if t.nested {
			// Nested activation (Gate.Drain): the operation is published and
			// its events are scheduled; hand the baton straight back to the
			// event handler that completed us and park for the next result.
			t.nested = false
			t.park(t.gate.drainReturn)
		} else {
			t.drive()
		}
	} else {
		t.park(t.handoff)
	}
	if t.killed {
		panic(killSignal{})
	}
	t.hasResult = false
	return t.result
}

// drive advances the simulation while this thread's operation is in flight:
// pending completions are activated in completion order, then engine events
// are dispatched. The thread discovers its own completion by popping itself
// from the queue front — the zero-switch fast path — and every hand-off of
// the baton (to an older completion, or to the host when the engine stalls)
// parks the thread until some driver pops it, which always means its result
// has been delivered or the machine is tearing it down.
//
//ccsvm:hotpath
func (t *Thread) drive() {
	g := t.gate
	for {
		if t.killed {
			return
		}
		if n := g.pop(); n != nil {
			if n == t {
				// Our own completion is the oldest pending activation: keep
				// running, no goroutine switch.
				return
			}
			t.park(n.wake)
			return
		}
		if !g.dispatch() {
			t.park(g.hostWake)
			return
		}
	}
}

// ThreadID reports the software thread's identifier (the xthreads tid).
func (c *Context) ThreadID() int { return c.thread.id }

// Compute charges n instructions of pure computation.
func (c *Context) Compute(n int64) {
	if n <= 0 {
		return
	}
	c.do(Op{Kind: OpCompute, Instrs: n})
}

// Load64 loads a 64-bit value.
func (c *Context) Load64(va mem.VAddr) uint64 {
	return c.do(Op{Kind: OpLoad, Addr: va, Size: 8}).Value
}

// Load32 loads a 32-bit value.
func (c *Context) Load32(va mem.VAddr) uint32 {
	return uint32(c.do(Op{Kind: OpLoad, Addr: va, Size: 4}).Value)
}

// Load8 loads a byte.
func (c *Context) Load8(va mem.VAddr) uint8 {
	return uint8(c.do(Op{Kind: OpLoad, Addr: va, Size: 1}).Value)
}

// Store64 stores a 64-bit value.
func (c *Context) Store64(va mem.VAddr, v uint64) {
	c.do(Op{Kind: OpStore, Addr: va, Size: 8, Value: v})
}

// Store32 stores a 32-bit value.
func (c *Context) Store32(va mem.VAddr, v uint32) {
	c.do(Op{Kind: OpStore, Addr: va, Size: 4, Value: uint64(v)})
}

// Store8 stores a byte.
func (c *Context) Store8(va mem.VAddr, v uint8) {
	c.do(Op{Kind: OpStore, Addr: va, Size: 1, Value: uint64(v)})
}

// LoadFloat64 loads an IEEE-754 double.
func (c *Context) LoadFloat64(va mem.VAddr) float64 {
	return math.Float64frombits(c.Load64(va))
}

// StoreFloat64 stores an IEEE-754 double.
func (c *Context) StoreFloat64(va mem.VAddr, v float64) {
	c.Store64(va, math.Float64bits(v))
}

// LoadFloat32 loads an IEEE-754 single.
func (c *Context) LoadFloat32(va mem.VAddr) float32 {
	return math.Float32frombits(c.Load32(va))
}

// StoreFloat32 stores an IEEE-754 single.
func (c *Context) StoreFloat32(va mem.VAddr, v float32) {
	c.Store32(va, math.Float32bits(v))
}

// AtomicAdd64 atomically adds delta to the 64-bit value at va and returns the
// previous value (fetch-and-add).
func (c *Context) AtomicAdd64(va mem.VAddr, delta uint64) uint64 {
	return c.do(Op{Kind: OpRMW, RMW: RMWAdd, Addr: va, Size: 8, Value: delta}).Value
}

// AtomicAdd32 atomically adds delta to the 32-bit value at va and returns the
// previous value.
func (c *Context) AtomicAdd32(va mem.VAddr, delta uint32) uint32 {
	return uint32(c.do(Op{Kind: OpRMW, RMW: RMWAdd, Addr: va, Size: 4, Value: uint64(delta)}).Value)
}

// AtomicCAS32 atomically replaces the 32-bit value at va with new if it
// equals old, reporting whether the swap happened.
func (c *Context) AtomicCAS32(va mem.VAddr, old, new uint32) bool {
	prev := uint32(c.do(Op{Kind: OpRMW, RMW: RMWCAS, Addr: va, Size: 4, Cmp: uint64(old), Value: uint64(new)}).Value)
	return prev == old
}

// AtomicExchange32 atomically stores new at va and returns the previous
// value.
func (c *Context) AtomicExchange32(va mem.VAddr, new uint32) uint32 {
	return uint32(c.do(Op{Kind: OpRMW, RMW: RMWExchange, Addr: va, Size: 4, Value: uint64(new)}).Value)
}

// Syscall invokes an OS service (CPU cores only; MTTOP cores reject it, as
// in the paper's design where MTTOP cores do not run the OS).
func (c *Context) Syscall(num int, args ...uint64) uint64 {
	return c.do(Op{Kind: OpSyscall, Syscall: int32(num), Args: args}).Value
}
