package exec

import (
	"math"

	"ccsvm/internal/mem"
)

// Context is the interface workload code uses to interact with the simulated
// machine. Every method blocks (in host terms) until the simulated core has
// performed the operation, so workload functions read like ordinary
// sequential code while their memory behaviour is played out cycle by cycle
// in the timing models.
type Context struct {
	thread *Thread
}

// do hands one operation to the core and waits for its completion.
func (c *Context) do(op Op) Result {
	t := c.thread
	select {
	case t.ops <- op:
	case <-t.killed:
		panic(killSignal{})
	}
	select {
	case r := <-t.results:
		return r
	case <-t.killed:
		panic(killSignal{})
	}
}

// ThreadID reports the software thread's identifier (the xthreads tid).
func (c *Context) ThreadID() int { return c.thread.id }

// Compute charges n instructions of pure computation.
func (c *Context) Compute(n int64) {
	if n <= 0 {
		return
	}
	c.do(Op{Kind: OpCompute, Instrs: n})
}

// Load64 loads a 64-bit value.
func (c *Context) Load64(va mem.VAddr) uint64 {
	return c.do(Op{Kind: OpLoad, Addr: va, Size: 8}).Value
}

// Load32 loads a 32-bit value.
func (c *Context) Load32(va mem.VAddr) uint32 {
	return uint32(c.do(Op{Kind: OpLoad, Addr: va, Size: 4}).Value)
}

// Load8 loads a byte.
func (c *Context) Load8(va mem.VAddr) uint8 {
	return uint8(c.do(Op{Kind: OpLoad, Addr: va, Size: 1}).Value)
}

// Store64 stores a 64-bit value.
func (c *Context) Store64(va mem.VAddr, v uint64) {
	c.do(Op{Kind: OpStore, Addr: va, Size: 8, Value: v})
}

// Store32 stores a 32-bit value.
func (c *Context) Store32(va mem.VAddr, v uint32) {
	c.do(Op{Kind: OpStore, Addr: va, Size: 4, Value: uint64(v)})
}

// Store8 stores a byte.
func (c *Context) Store8(va mem.VAddr, v uint8) {
	c.do(Op{Kind: OpStore, Addr: va, Size: 1, Value: uint64(v)})
}

// LoadFloat64 loads an IEEE-754 double.
func (c *Context) LoadFloat64(va mem.VAddr) float64 {
	return math.Float64frombits(c.Load64(va))
}

// StoreFloat64 stores an IEEE-754 double.
func (c *Context) StoreFloat64(va mem.VAddr, v float64) {
	c.Store64(va, math.Float64bits(v))
}

// LoadFloat32 loads an IEEE-754 single.
func (c *Context) LoadFloat32(va mem.VAddr) float32 {
	return math.Float32frombits(c.Load32(va))
}

// StoreFloat32 stores an IEEE-754 single.
func (c *Context) StoreFloat32(va mem.VAddr, v float32) {
	c.Store32(va, math.Float32bits(v))
}

// AtomicAdd64 atomically adds delta to the 64-bit value at va and returns the
// previous value (fetch-and-add).
func (c *Context) AtomicAdd64(va mem.VAddr, delta uint64) uint64 {
	return c.do(Op{Kind: OpRMW, Addr: va, Size: 8, Modify: func(old uint64) uint64 { return old + delta }}).Value
}

// AtomicAdd32 atomically adds delta to the 32-bit value at va and returns the
// previous value.
func (c *Context) AtomicAdd32(va mem.VAddr, delta uint32) uint32 {
	return uint32(c.do(Op{Kind: OpRMW, Addr: va, Size: 4, Modify: func(old uint64) uint64 {
		return uint64(uint32(old) + delta)
	}}).Value)
}

// AtomicCAS32 atomically replaces the 32-bit value at va with new if it
// equals old, reporting whether the swap happened.
func (c *Context) AtomicCAS32(va mem.VAddr, old, new uint32) bool {
	prev := uint32(c.do(Op{Kind: OpRMW, Addr: va, Size: 4, Modify: func(cur uint64) uint64 {
		if uint32(cur) == old {
			return uint64(new)
		}
		return cur
	}}).Value)
	return prev == old
}

// AtomicExchange32 atomically stores new at va and returns the previous
// value.
func (c *Context) AtomicExchange32(va mem.VAddr, new uint32) uint32 {
	return uint32(c.do(Op{Kind: OpRMW, Addr: va, Size: 4, Modify: func(uint64) uint64 {
		return uint64(new)
	}}).Value)
}

// Syscall invokes an OS service (CPU cores only; MTTOP cores reject it, as
// in the paper's design where MTTOP cores do not run the OS).
func (c *Context) Syscall(num int, args ...uint64) uint64 {
	return c.do(Op{Kind: OpSyscall, Syscall: num, Args: args}).Value
}
