package exec

import (
	"fmt"

	"ccsvm/internal/mem"
	"ccsvm/internal/sim"
)

// OpKind classifies an operation issued by a software thread.
type OpKind uint8

const (
	// OpCompute advances time by a number of instructions with no memory
	// access (the workload's arithmetic).
	OpCompute OpKind = iota
	// OpLoad reads Size bytes at Addr.
	OpLoad
	// OpStore writes Value (low Size bytes) at Addr.
	OpStore
	// OpRMW atomically applies the RMW/Cmp/Value-described modification to
	// the Size-byte value at Addr and returns the old value (fetch-and-op /
	// compare-and-swap).
	OpRMW
	// OpSyscall invokes an OS service on a CPU core.
	OpSyscall
)

// String names the kind.
func (k OpKind) String() string {
	switch k {
	case OpCompute:
		return "compute"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpRMW:
		return "rmw"
	case OpSyscall:
		return "syscall"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// RMWKind enumerates the atomic read-modify-write operations a thread can
// issue. An enum plus operands replaces the historical per-call Modify
// closure: every AtomicAdd/CAS/Exchange used to allocate a capturing closure
// on the workload's hot path, where the enum rides in the Op by value.
type RMWKind uint8

const (
	// RMWAdd is fetch-and-add: the new value is old + Value (32-bit ops wrap
	// at 32 bits).
	RMWAdd RMWKind = iota
	// RMWCAS is 32-bit compare-and-swap: the new value is Value when the low
	// 32 bits of the old value equal Cmp, otherwise the value is unchanged.
	RMWCAS
	// RMWExchange unconditionally stores Value and returns the old value.
	RMWExchange
)

// Op is one operation requested by a software thread. It is copied into the
// thread's publication slot on every simulated operation, so the layout is
// packed to exactly one 64-byte cache line: the three one-byte discriminators
// and the syscall number share the first word, followed by the operand words.
type Op struct {
	// Kind and RMW classify the operation; RMW is meaningful only for OpRMW.
	Kind OpKind
	RMW  RMWKind
	// Size is the access width in bytes of memory ops (1, 4 or 8).
	Size uint8
	// Syscall is the service number of an OpSyscall.
	Syscall int32
	// Addr is the virtual address of memory ops.
	Addr mem.VAddr
	// Value is the store data, the RMW addend/new value, or unused.
	Value uint64
	// Cmp is the compare operand of an RMWCAS.
	Cmp uint64
	// Instrs is the instruction count of an OpCompute.
	Instrs int64
	// Args holds an OpSyscall's arguments.
	Args []uint64
}

// ApplyRMW computes the post-modification value of an OpRMW from the value
// previously held in memory. It is applied atomically by the core models at
// completion time; cores truncate the result to Size bytes on the store.
func (o *Op) ApplyRMW(old uint64) uint64 {
	switch o.RMW {
	case RMWAdd:
		if o.Size == 4 {
			return uint64(uint32(old) + uint32(o.Value))
		}
		return old + o.Value
	case RMWCAS:
		if uint32(old) == uint32(o.Cmp) {
			return o.Value
		}
		return old
	case RMWExchange:
		return o.Value
	default:
		panic(fmt.Sprintf("exec: ApplyRMW of RMWKind(%d)", uint8(o.RMW)))
	}
}

// Result is the completion value returned to the thread: the loaded value,
// the pre-atomic value of an RMW, or a syscall's return value.
type Result struct {
	Value uint64
}

// NextStatus is TryNext's report on a thread's state.
type NextStatus uint8

const (
	// NextOp means an operation was returned and must be executed.
	NextOp NextStatus = iota
	// NextWait means the thread has not produced its next operation yet; it
	// will run (and call the registered resume function when the operation is
	// ready) the next time it is activated from the gate's pending queue.
	NextWait
	// NextDone means the thread function has returned; the thread is finished
	// and will produce no more operations.
	NextDone
)

// killSignal is panicked inside a workload goroutine when the machine tears
// the thread down before it finished.
type killSignal struct{}

// Gate is the cooperative scheduler shared by every software thread of one
// machine. Exactly one goroutine — the host inside Drive, or one workload
// goroutine — holds the "baton" at any instant and is the only runner; every
// other goroutine is parked. The baton holder advances the simulation itself:
// it activates threads from the pending queue (threads whose operation
// completed and whose between-ops Go code must run before the next event),
// and when the queue is empty it dispatches the next engine event via the
// step function installed by Drive.
//
// This is what lets a simulated operation complete without any goroutine
// switch: when a thread's own operation completes while that thread is
// driving, Complete queues it, and the thread finds itself at the front of
// its own queue — it just keeps running. A cross-thread completion costs one
// switch (activate + park) where the old channel rendezvous cost two.
//
// The gate is not safe for concurrent use; the baton discipline is the
// synchronization. Machines must not share gates.
type Gate struct {
	// step dispatches one engine event under the host's run policy; installed
	// by Drive for the duration of the run.
	step func() bool
	// pending is the FIFO of threads whose completed operation has not yet
	// been consumed. Queue order is exactly the order the completions
	// happened, which is what makes the cooperative schedule bit-identical to
	// the historical blocking-handoff one.
	pending []*Thread
	head    int
	// hostWake re-activates the host when a driving thread finds the engine
	// unable to advance (out of events, or the run policy said stop).
	hostWake chan struct{}
	// drainReturn hands the baton back from a nested activation (see Drain);
	// draining guards against reentry from the activated thread's own
	// scheduling, and inHandler restricts draining to schedules made inside
	// an event handler — a thread's own between-ops code schedules before
	// later completions activate, exactly as when it ran nested under the
	// completing handler.
	drainReturn chan struct{}
	draining    bool
	inHandler   bool
	// eng is the engine whose schedule hook this gate arms while completions
	// are pending (see Bind); armed mirrors the engine-side flag so enqueue
	// pays one store, not a call, in the common already-armed case.
	eng   *sim.Engine
	armed bool
}

// NewGate returns the scheduler for one machine's software threads.
func NewGate() *Gate {
	return &Gate{hostWake: make(chan struct{}, 1), drainReturn: make(chan struct{})}
}

// Bind installs the gate's drain as eng's schedule hook. The hook stays
// disarmed — a single predicted branch on the engine's schedule path — except
// while completions are pending, so bit-identical activation order costs the
// simulation nothing when no thread is waiting.
func (g *Gate) Bind(eng *sim.Engine) {
	g.eng = eng
	eng.SetScheduleHook(g.Drain)
}

//ccsvm:hotpath
func (g *Gate) enqueue(t *Thread) {
	g.pending = append(g.pending, t) //ccsvm:allocok // grows to the thread-count high-water mark, then reuses
	if !g.armed && g.eng != nil {
		g.armed = true
		g.eng.ArmScheduleHook(true)
	}
}

// disarm turns the engine-side hook off once no completion is pending.
func (g *Gate) disarm() {
	if g.armed {
		g.armed = false
		g.eng.ArmScheduleHook(false)
	}
}

// pop removes and returns the oldest pending thread, or nil. The backing
// array is recycled whenever the queue drains, which it does almost
// immediately — depth exceeds one only when a single event completes several
// operations.
func (g *Gate) pop() *Thread {
	if g.head == len(g.pending) {
		return nil
	}
	t := g.pending[g.head]
	g.pending[g.head] = nil
	g.head++
	if g.head == len(g.pending) {
		g.head = 0
		g.pending = g.pending[:0]
		g.disarm()
	}
	return t
}

// Drain activates, in completion order, every pending thread that is parked:
// each runs its between-ops code, publishes its next operation and schedules
// that operation's consequences before control returns to the caller.
// Machines install it as the engine's schedule hook, so an event handler
// that completes operations and then schedules more events observes the same
// event-creation order as the historical blocking design, where Complete
// handed control to the thread and the handler resumed only after its next
// publication. A pending thread that is not parked is the baton holder
// itself — its completion was delivered by an event it is dispatching, and
// it cannot be activated from under its own handler frame — so the drain
// stops there to preserve completion order and leaves the rest to the drive
// loop.
//
//ccsvm:hotpath
func (g *Gate) Drain() {
	if !g.inHandler || g.draining || g.head == len(g.pending) || !g.pending[g.head].parked {
		return
	}
	g.draining = true
	for g.head != len(g.pending) && g.pending[g.head].parked {
		t := g.pop()
		t.nested = true
		t.wake <- struct{}{}
		<-g.drainReturn
	}
	g.draining = false
}

// dispatch runs one engine event under the drain discipline: only schedules
// made from inside the handler activate pending completions.
//
//ccsvm:hotpath
func (g *Gate) dispatch() bool {
	g.inHandler = true
	ok := g.step()
	g.inHandler = false
	return ok
}

// Drive runs the simulation to completion: it drains pending thread
// activations, then repeatedly calls step to dispatch events, handing the
// baton to workload goroutines as their operations complete and parking
// until it returns. Drive returns when step reports false with no
// activations outstanding — every workload goroutine is parked (or finished)
// at that point, so the caller may inspect and tear down machine state
// freely.
func (g *Gate) Drive(step func() bool) {
	g.step = step
	for {
		if t := g.pop(); t != nil {
			t.wake <- struct{}{}
			<-g.hostWake
			continue
		}
		if !g.dispatch() {
			g.step = nil
			return
		}
	}
}

// Thread is the host-side handle for one software thread.
//
// The op/result handoff is a single-slot publication guarded by the gate's
// baton, not a channel rendezvous: the workload goroutine writes its next Op
// into the slot and calls the core's registered resume function itself, then
// keeps the baton and drives the engine until its own result arrives
// (Complete). Only when some other thread's activation comes up does it hand
// the baton over and park. The historical design parked the workload on
// every operation and woke the host to consume it — two goroutine switches
// per simulated operation, which dominated the sweep profile; here a
// self-completing operation costs zero switches and a cross-thread
// completion costs one.
type Thread struct {
	id   int
	name string
	fn   func(*Context)
	gate *Gate

	// op/hasOp is the publication slot the workload fills; result/hasResult
	// carries the completion value back. Both are baton-guarded.
	op        Op
	hasOp     bool
	result    Result
	hasResult bool
	// resume is the core's continuation for consuming the next published op,
	// registered by TryNext when the op was not ready (NextWait).
	resume func()

	// wake activates a parked workload goroutine (baton handoff); handoff
	// reports the first publication back to the launching core; dead is
	// closed when the goroutine exits, which Kill waits on.
	wake    chan struct{}
	handoff chan struct{}
	dead    chan struct{}

	// parked is true while the goroutine is blocked on wake; Drain reads it
	// (under the baton — the write happens before the baton handoff) to tell
	// an activatable thread from the running holder. nested is set by Drain
	// before waking the thread and tells its next publication to hand the
	// baton back through drainReturn instead of driving.
	parked bool
	nested bool

	// killed is only ever set while the goroutine is parked (the killer holds
	// the baton), so a plain bool is race-free: the wake that follows
	// publishes it.
	killed   bool
	started  bool
	launched bool
	// done flips when fn returns; finished additionally covers threads killed
	// or discarded before launch.
	done     bool
	finished bool
	err      any
}

// NewThread creates a software thread that will run fn under the machine's
// gate. The id is exposed to the workload through Context.ThreadID.
//
//ccsvm:threadentry
func NewThread(g *Gate, id int, name string, fn func(*Context)) *Thread {
	return &Thread{
		gate:    g,
		id:      id,
		name:    name,
		fn:      fn,
		wake:    make(chan struct{}, 1),
		handoff: make(chan struct{}, 1),
		dead:    make(chan struct{}),
	}
}

// ID reports the thread's identifier.
func (t *Thread) ID() int { return t.id }

// Name reports the thread's debug name.
func (t *Thread) Name() string { return t.name }

// Start marks the thread runnable. It must be called exactly once, before
// the first TryNext. The workload goroutine itself launches lazily on the
// first TryNext: this way the Go code a thread runs before its first
// operation is serialized with the engine exactly like the code between
// operations, instead of racing whatever else runs between Start and the
// first fetch — e.g. the gap code of other threads while this one sits in a
// core's run queue.
func (t *Thread) Start() {
	if t.started {
		panic("exec: thread started twice")
	}
	t.started = true
}

// launch spawns the workload goroutine and blocks until it has either
// published its first operation or returned. The synchronous rendezvous is
// deliberate: cores start threads from event handlers and from other
// threads' between-ops code, and in both places the new thread's prologue
// (and the scheduling of its first operation) must complete before the
// caller proceeds, exactly as it did when the op fetch was a blocking
// receive.
//
//ccsvm:launchpath
func (t *Thread) launch() (Op, NextStatus) {
	t.launched = true
	ctx := &Context{thread: t}
	go t.wrapper(ctx)
	<-t.handoff
	if t.hasOp {
		t.hasOp = false
		return t.op, NextOp
	}
	return Op{}, NextDone
}

// wrapper is the workload goroutine's body: the thread function plus the
// exit protocol that reports completion to the owning core and passes the
// baton on.
func (t *Thread) wrapper(ctx *Context) {
	defer func() {
		if r := recover(); r != nil {
			if _, wasKill := r.(killSignal); !wasKill {
				t.err = r
			}
		}
		t.done = true
		t.finished = true
		if t.killed {
			// The killer holds the baton and waits on dead; do not touch the
			// gate or the core.
			close(t.dead)
			return
		}
		if t.resume == nil {
			// Returned before issuing a single operation: the launching core
			// is still blocked in the rendezvous.
			t.handoff <- struct{}{}
			return
		}
		// Tell the owning core the thread is finished (it observes NextDone
		// and runs its exit processing), then hand the baton on and die: back
		// to the drainer when this was a nested activation, otherwise to the
		// next pending thread or the host.
		r := t.resume
		t.resume = nil
		r()
		if t.nested {
			t.nested = false
			t.gate.drainReturn <- struct{}{}
			return
		}
		t.handback()
	}()
	t.fn(ctx)
}

// park hands the baton away on ch and blocks until this thread is next
// woken, which always means its result was delivered (or the machine is
// tearing it down).
func (t *Thread) park(ch chan struct{}) {
	t.parked = true
	ch <- struct{}{}
	<-t.wake
	t.parked = false
}

// handback passes the baton from an exiting goroutine: to the next pending
// thread if there is one, otherwise back to the host.
func (t *Thread) handback() {
	g := t.gate
	if n := g.pop(); n != nil {
		n.wake <- struct{}{}
		return
	}
	g.hostWake <- struct{}{}
}

// TryNext fetches the thread's next operation without blocking. On NextWait
// the resume function is recorded and will be invoked — on the workload
// goroutine, under the baton — as soon as the thread publishes its next
// operation; the core must simply return to the event loop. The first
// TryNext after Start launches the workload goroutine and waits for its
// first publication (see launch).
func (t *Thread) TryNext(resume func()) (Op, NextStatus) {
	if t.hasOp {
		t.hasOp = false
		return t.op, NextOp
	}
	if t.done || t.finished {
		return Op{}, NextDone
	}
	if !t.launched {
		if !t.started {
			panic("exec: Next before Start")
		}
		return t.launch()
	}
	t.resume = resume
	return Op{}, NextWait
}

// Complete delivers the result of the thread's outstanding operation and
// queues the thread for activation: its between-ops code runs — in
// completion order relative to other threads — before the engine dispatches
// the next event.
func (t *Thread) Complete(r Result) {
	t.result = r
	t.hasResult = true
	t.gate.enqueue(t)
}

// Kill tears the thread down. It must be called with the baton held and the
// thread parked (machines call it after Drive has returned): the goroutine
// is woken into the kill check, unwinds with an internal panic, and Kill
// waits for it to exit. Safe to call on finished threads.
func (t *Thread) Kill() {
	if t.finished {
		return
	}
	if !t.launched {
		// No workload goroutine exists yet (never started, or started but
		// never fetched from), so there is nothing to unwind.
		t.finished = true
		return
	}
	t.killed = true
	t.wake <- struct{}{}
	<-t.dead
}

// Finished reports whether the thread function has returned.
func (t *Thread) Finished() bool { return t.finished }

// Err returns the panic value if the workload function panicked, or nil.
// Machines re-panic this on the host side so workload bugs fail loudly.
func (t *Thread) Err() any { return t.err }
