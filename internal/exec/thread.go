package exec

import (
	"fmt"

	"ccsvm/internal/mem"
)

// OpKind classifies an operation issued by a software thread.
type OpKind uint8

const (
	// OpCompute advances time by a number of instructions with no memory
	// access (the workload's arithmetic).
	OpCompute OpKind = iota
	// OpLoad reads Size bytes at Addr.
	OpLoad
	// OpStore writes Value (low Size bytes) at Addr.
	OpStore
	// OpRMW atomically applies Modify to the Size-byte value at Addr and
	// returns the old value (fetch-and-op / compare-and-swap).
	OpRMW
	// OpSyscall invokes an OS service on a CPU core.
	OpSyscall
)

// String names the kind.
func (k OpKind) String() string {
	switch k {
	case OpCompute:
		return "compute"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpRMW:
		return "rmw"
	case OpSyscall:
		return "syscall"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one operation requested by a software thread.
type Op struct {
	Kind OpKind
	// Addr and Size describe the virtual-memory footprint of memory ops.
	Addr mem.VAddr
	Size int
	// Value is the store data.
	Value uint64
	// Modify is the read-modify-write function of an OpRMW, applied
	// atomically by the core at completion time.
	//
	//ccsvm:stateok // in-flight RMW closure; a checkpoint quiesces the cores first
	Modify func(old uint64) uint64
	// Instrs is the instruction count of an OpCompute.
	Instrs int64
	// Syscall and Args describe an OpSyscall.
	Syscall int
	Args    []uint64
}

// Result is the completion value returned to the thread: the loaded value,
// the pre-atomic value of an RMW, or a syscall's return value.
type Result struct {
	Value uint64
}

// killSignal is panicked inside a workload goroutine when the machine tears
// the thread down before it finished.
type killSignal struct{}

// Thread is the host-side handle for one software thread.
type Thread struct {
	id   int
	name string
	fn   func(*Context)

	ops      chan Op
	results  chan Result
	killed   chan struct{}
	started  bool
	launched bool
	finished bool
	err      any
}

// NewThread creates a software thread that will run fn. The id is exposed to
// the workload through Context.ThreadID.
//
//ccsvm:threadentry
func NewThread(id int, name string, fn func(*Context)) *Thread {
	return &Thread{
		id:      id,
		name:    name,
		fn:      fn,
		ops:     make(chan Op),
		results: make(chan Result),
		killed:  make(chan struct{}),
	}
}

// ID reports the thread's identifier.
func (t *Thread) ID() int { return t.id }

// Name reports the thread's debug name.
func (t *Thread) Name() string { return t.name }

// Start marks the thread runnable. It must be called exactly once, before
// the first Next. The workload goroutine itself launches lazily on the first
// Next: this way the Go code a thread runs before its first operation is
// serialized with the engine exactly like the code between operations (the
// caller of Next blocks until the op arrives), instead of racing whatever
// else runs between Start and the first Next — e.g. the gap code of other
// threads while this one sits in a core's run queue.
func (t *Thread) Start() {
	if t.started {
		panic("exec: thread started twice")
	}
	t.started = true
}

// launch spawns the workload goroutine (on the first Next after Start).
//
//ccsvm:launchpath
func (t *Thread) launch() {
	t.launched = true
	ctx := &Context{thread: t}
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, wasKill := r.(killSignal); !wasKill {
					t.err = r
				}
			}
			close(t.ops)
		}()
		t.fn(ctx)
	}()
}

// Next blocks the (host) caller until the thread produces its next operation.
// It returns ok=false when the thread function has returned (or was killed),
// after which the thread is finished.
func (t *Thread) Next() (Op, bool) {
	if t.finished {
		// Killed before its lazy launch (or already drained): don't resurrect
		// the workload by launching it now.
		return Op{}, false
	}
	if !t.launched {
		if !t.started {
			panic("exec: Next before Start")
		}
		t.launch()
	}
	op, ok := <-t.ops
	if !ok {
		t.finished = true
	}
	return op, ok
}

// Complete delivers the result of the thread's outstanding operation and
// unblocks it so it can compute its next operation.
func (t *Thread) Complete(r Result) {
	t.results <- r
}

// Kill tears the thread down: its next (or current) blocking call panics with
// an internal signal that unwinds the workload goroutine. Safe to call on
// finished threads.
func (t *Thread) Kill() {
	if t.finished {
		return
	}
	if !t.launched {
		// No workload goroutine exists yet (never started, or started but
		// never stepped), so there is nothing to unwind — and nobody will
		// ever close the op channel, so draining it below would block
		// forever. (Runtime.KillAll reaches this when a machine shuts down
		// between thread creation and dispatch.)
		t.finished = true
		return
	}
	select {
	case <-t.killed:
	default:
		close(t.killed)
	}
	// Drain until the goroutine observes the kill and closes its op channel.
	for {
		_, ok := <-t.ops
		if !ok {
			t.finished = true
			return
		}
		// The goroutine was blocked sending an op; answer it so it reaches
		// the kill check.
		select {
		case t.results <- Result{}:
		case <-t.ops:
			t.finished = true
			return
		}
	}
}

// Finished reports whether the thread function has returned.
func (t *Thread) Finished() bool { return t.finished }

// Err returns the panic value if the workload function panicked, or nil.
// Machines re-panic this on the host side so workload bugs fail loudly.
func (t *Thread) Err() any { return t.err }
